// Regenerates Fig. 11 (benefit of the register-enhanced instruction
// scheduling): EGEMM-TC with and without the latency-hiding SASS order.
// Both runs execute the identical instruction multiset; only the order
// (and the register double-buffering it enables) differs -- see
// tcsim/instruction.cpp.
#include "bench_common.hpp"
#include "gemm/egemm.hpp"

using namespace egemm;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const tcsim::GpuSpec spec = bench::gpu_from_args(args);
  const auto sizes = bench::sizes_from_args(
      args, {1024, 2048, 4096, 8192, 16384},
      {1024, 2048, 3072, 4096, 6144, 8192, 12288, 16384});

  util::Table table(
      "Fig. 11: benefit of latency hiding, square NxNxN on " + spec.name +
      " (simulated TFLOPS)");
  table.set_header({"N", "w/o latency hiding", "w/ latency hiding",
                    "speedup", "tensor-pipe util w/", "stall cycles w/o"});
  std::vector<double> speedups;
  for (const std::int64_t n64 : sizes) {
    const auto n = static_cast<std::uint64_t>(n64);
    gemm::EgemmOptions off;
    off.latency_hiding = false;
    const gemm::KernelTiming with = gemm::egemm_timing(n, n, n, spec);
    const gemm::KernelTiming without = gemm::egemm_timing(n, n, n, spec, off);
    speedups.push_back(with.tflops / without.tflops);
    table.add_row(
        {std::to_string(n), util::fmt_fixed(without.tflops, 2),
         util::fmt_fixed(with.tflops, 2),
         util::fmt_speedup(with.tflops / without.tflops),
         util::fmt_fixed(
             with.block_stats.port_utilization(tcsim::Port::kTensor), 3),
         util::fmt_fixed(without.block_stats.stall_cycles, 0)});
  }
  table.add_footnote("paper: 1.14x mean speedup from instruction scheduling");
  table.add_footnote("measured mean: " +
                     util::fmt_speedup(bench::geomean(speedups)));
  table.print(std::cout);
  return 0;
}
