// Regenerates the precision-profiling experiment (Fig. 3, artifact §A.3
// "Profiling"): sample trials in the artifact's printout format, then the
// full generalized-workflow report over N randomized trials, including the
// failure-injection run against a deliberately broken core.
#include <cmath>

#include "bench_common.hpp"
#include "core/profiling.hpp"
#include "fp/float_bits.hpp"
#include "tcsim/tensor_core.hpp"

using namespace egemm;

namespace {

void print_sample(std::uint64_t seed) {
  const core::ProfilingSample s = core::sample_trial(seed);
  std::printf("half_result:   %14.8f, %s\n", static_cast<double>(s.half_result),
              fp::f32_hex(s.half_result).c_str());
  std::printf("single_result: %14.8f, %s\n",
              static_cast<double>(s.single_result),
              fp::f32_hex(s.single_result).c_str());
  std::printf("Tensor Core :  %14.8f, %s\n", static_cast<double>(s.tc_result),
              fp::f32_hex(s.tc_result).c_str());
  std::printf("  matching mantissa bits vs single: %d, vs half: %d\n\n",
              fp::matching_mantissa_bits(s.tc_result, s.single_result),
              fp::matching_mantissa_bits(s.tc_result, s.half_result));
}

void print_report(const char* title, const core::ProfilingReport& report) {
  util::Table table(title);
  table.set_header({"probe", "min bitwise-match bits", "min scale-rel bits",
                    "bitwise identical always", "trials"});
  for (const auto& probe : report.probes) {
    table.add_row({probe.name,
                   std::to_string(probe.min_matching_mantissa_bits),
                   util::fmt_fixed(probe.min_scale_relative_bits, 1),
                   probe.bitwise_identical_always ? "yes" : "no",
                   std::to_string(probe.trials)});
  }
  table.add_footnote("certified probe: " +
                     (report.certified() ? report.certified_probe
                                         : std::string("<none>")));
  table.add_footnote(
      std::string("licenses extended-precision emulation (>=21 bits): ") +
      (report.licenses_extended_precision() ? "YES" : "NO"));
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto trials =
      static_cast<std::uint64_t>(args.value_or("trials", std::int64_t{10000}));
  const auto seed =
      static_cast<std::uint64_t>(args.value_or("seed", std::int64_t{2021}));

  std::printf("== Sample trials (artifact A.3 printout format) ==\n\n");
  for (std::uint64_t s = 0; s < 3; ++s) print_sample(seed + s);

  core::ProfilingConfig config;
  config.trials = trials;
  config.seed = seed;
  print_report("Fig. 2a workflow on the (simulated) Tensor Core",
               core::profile_tensor_core(config));

  print_report(
      "Failure injection: broken core with binary16 accumulation",
      core::profile_core(
          [](std::span<const fp::Half> a, std::span<const fp::Half> b,
             float c) { return tcsim::broken_tc_dot(a, b, c); },
          config));
  return 0;
}
