#pragma once
// Shared plumbing for the benchmark harness: every binary regenerates one
// paper table/figure (DESIGN.md §4), prints it as an ASCII table, and
// accepts a common set of flags:
//   --gpu=t4|rtx6000   target resource model (default t4)
//   --sizes=a,b,c      override the size sweep
//   --full             run the paper's full size range (functional
//                      precision sweeps default to a laptop-scale subset)
//   --trials=N         trial count for randomized experiments
//   --seed=N           RNG seed

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/scheme.hpp"
#include "gemm/gemm_api.hpp"
#include "obs/callrec.hpp"
#include "obs/export.hpp"
#include "simd/isa.hpp"
#include "tcsim/gpu_spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace egemm::bench {

inline tcsim::GpuSpec gpu_from_args(const util::CliArgs& args) {
  return tcsim::spec_by_name(args.value_or("gpu", std::string("t4")));
}

inline std::vector<std::int64_t> sizes_from_args(
    const util::CliArgs& args, std::vector<std::int64_t> quick,
    std::vector<std::int64_t> full) {
  if (args.has_flag("sizes")) return args.int_list_or("sizes", quick);
  return args.has_flag("full") ? full : quick;
}

/// Geometric mean helper for the headline "average speedup" rows. An empty
/// sweep has no geometric mean: returning NaN (rather than a 0.0 that reads
/// as "infinitely slower") makes a silently empty sweep impossible to
/// mistake for a measurement downstream.
inline double geomean(const std::vector<double>& values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

// -- machine-readable results ------------------------------------------------

/// One measured benchmark row for the persistent JSON artifact.
struct BenchRecord {
  std::string name;            ///< benchmark name incl. size, e.g. "X/1024"
  double ns_per_iter = 0.0;    ///< real time per iteration
  double items_per_second = 0.0;  ///< rate counter (FLOP/s for GEMM benches)
};

using obs::append_json_escaped;

/// The harness-side id -> name resolvers for the per-call telemetry JSON
/// (obs/callrec.hpp cannot name gemm/core/simd enums itself -- the obs
/// layer sits below them).
inline obs::CallJsonNames call_json_names() {
  obs::CallJsonNames names;
  names.scheme = [](std::int8_t s) -> const char* {
    if (s < 0 || static_cast<std::size_t>(s) >= core::kSchemeCount) {
      return "custom";
    }
    return core::scheme_name(static_cast<core::SchemeId>(s));
  };
  names.backend = [](std::uint8_t b) -> const char* {
    return b <= static_cast<std::uint8_t>(gemm::Backend::kDekker)
               ? gemm::backend_name(static_cast<gemm::Backend>(b))
               : "?";
  };
  names.engine = [](std::uint8_t e) -> const char* {
    switch (static_cast<gemm::ExecEngine>(e)) {
      case gemm::ExecEngine::kPacked:
        return "packed";
      case gemm::ExecEngine::kReference:
        return "reference";
    }
    return "?";
  };
  names.isa = [](std::uint8_t i) -> const char* {
    return i < static_cast<std::uint8_t>(simd::kIsaLevelCount)
               ? simd::isa_name(static_cast<simd::IsaLevel>(i))
               : "?";
  };
  return names;
}

/// Writes the benchmark records as a small self-describing JSON document
/// (consumed by CI as an artifact; "gflops" is items_per_second / 1e9 and is
/// GFLOP/s for the GEMM benches, whose item count is the FLOP count). The
/// observability registry rides along as a "metrics" object so every
/// BENCH_*.json carries the pipeline counters of the run that produced it,
/// and the drained per-call records as a "calls" object with per-shape
/// stage attribution and latency quantiles (DESIGN.md §17).
inline bool write_bench_json(const std::string& path,
                             const std::string& git_sha,
                             const std::vector<BenchRecord>& records) {
  std::string out = "{\n  \"git_sha\": \"";
  append_json_escaped(out, git_sha);
  out += "\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char buf[160];
    out += "    {\"name\": \"";
    append_json_escaped(out, r.name);
    std::snprintf(buf, sizeof(buf),
                  "\", \"ns_per_iter\": %.6g, \"items_per_second\": %.6g, "
                  "\"gflops\": %.6g}%s\n",
                  r.ns_per_iter, r.items_per_second, r.items_per_second / 1e9,
                  i + 1 < records.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"calls\": ";
  {
    const std::vector<obs::CallRecord> calls = obs::drain_call_records();
    out += obs::call_summary_json_block(
        obs::summarize_calls({calls.data(), calls.size()}), "  ",
        call_json_names());
  }
  out += ",\n  \"metrics\": ";
  out += obs::metrics_json_block("  ");
  out += "\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

// -- benchmark comparison ----------------------------------------------------
// `--compare=OLD.json` support: diff a fresh run against a committed
// BENCH_*.json and fail (exit nonzero) when any shared row slows down past
// a configurable threshold. CI runs this warn-only on the release bench so
// a noisy runner cannot block a merge, but the regression is visible in
// the log; locally it is the regenerate-BENCH_micro.json gate.

/// Parses the benchmark rows out of a BENCH_*.json document previously
/// written by write_bench_json. A minimal scanner, not a JSON parser: rows
/// are the only objects with a "name" field (the metrics block keys
/// metrics BY name), and write_bench_json emits one row per line.
inline std::vector<BenchRecord> parse_bench_json_records(
    const std::string& text) {
  std::vector<BenchRecord> records;
  std::size_t pos = 0;
  while ((pos = text.find("\"name\":", pos)) != std::string::npos) {
    pos = text.find('"', pos + 7);
    if (pos == std::string::npos) break;
    std::string name;
    std::size_t end = pos + 1;
    while (end < text.size() && text[end] != '"') {
      if (text[end] == '\\' && end + 1 < text.size()) {
        name += text[end + 1];
        end += 2;
      } else {
        name += text[end++];
      }
    }
    const std::size_t obj_end = text.find('}', end);
    const auto field = [&](const char* key) {
      const std::size_t key_pos = text.find(key, end);
      if (key_pos == std::string::npos ||
          (obj_end != std::string::npos && key_pos > obj_end)) {
        return 0.0;
      }
      const std::size_t colon = text.find(':', key_pos);
      if (colon == std::string::npos) return 0.0;
      return std::strtod(text.c_str() + colon + 1, nullptr);
    };
    BenchRecord rec;
    rec.name = std::move(name);
    rec.ns_per_iter = field("\"ns_per_iter\"");
    rec.items_per_second = field("\"items_per_second\"");
    records.push_back(std::move(rec));
    pos = obj_end == std::string::npos ? end : obj_end;
  }
  return records;
}

struct BenchCompareRow {
  std::string name;
  double old_ns = 0.0;
  double new_ns = 0.0;
  double ratio = 0.0;  ///< new_ns / old_ns; > 1 is a slowdown
  bool regressed = false;
};

struct BenchCompareReport {
  std::vector<BenchCompareRow> rows;        ///< rows present in both runs
  std::vector<std::string> only_in_old;     ///< dropped benchmarks
  std::vector<std::string> only_in_new;     ///< new benchmarks (informational)
  std::size_t regressions = 0;
};

/// Compares by name; a row regresses when new_ns > old_ns * (1 +
/// threshold). Rows without a timing on either side are skipped.
inline BenchCompareReport compare_bench_records(
    const std::vector<BenchRecord>& old_records,
    const std::vector<BenchRecord>& new_records, double threshold) {
  BenchCompareReport report;
  for (const BenchRecord& old_rec : old_records) {
    const BenchRecord* new_rec = nullptr;
    for (const BenchRecord& candidate : new_records) {
      if (candidate.name == old_rec.name) {
        new_rec = &candidate;
        break;
      }
    }
    if (new_rec == nullptr) {
      report.only_in_old.push_back(old_rec.name);
      continue;
    }
    if (old_rec.ns_per_iter <= 0.0 || new_rec->ns_per_iter <= 0.0) continue;
    BenchCompareRow row;
    row.name = old_rec.name;
    row.old_ns = old_rec.ns_per_iter;
    row.new_ns = new_rec->ns_per_iter;
    row.ratio = row.new_ns / row.old_ns;
    row.regressed = row.new_ns > row.old_ns * (1.0 + threshold);
    if (row.regressed) ++report.regressions;
    report.rows.push_back(std::move(row));
  }
  for (const BenchRecord& new_rec : new_records) {
    bool found = false;
    for (const BenchRecord& old_rec : old_records) {
      if (old_rec.name == new_rec.name) {
        found = true;
        break;
      }
    }
    if (!found) report.only_in_new.push_back(new_rec.name);
  }
  return report;
}

inline void print_bench_compare(const BenchCompareReport& report,
                                double threshold, std::ostream& os) {
  char title[96];
  std::snprintf(title, sizeof(title),
                "benchmark comparison (threshold +%.0f%%)", threshold * 100.0);
  util::Table table(title);
  table.set_header(
      {"benchmark", "old ns/iter", "new ns/iter", "ratio", "status"});
  for (const BenchCompareRow& row : report.rows) {
    table.add_row({row.name, util::fmt_sci(row.old_ns, 4),
                   util::fmt_sci(row.new_ns, 4), util::fmt_fixed(row.ratio, 3),
                   row.regressed ? "REGRESSED" : "ok"});
  }
  table.print(os);
  for (const std::string& name : report.only_in_old) {
    os << "  only in old run: " << name << "\n";
  }
  for (const std::string& name : report.only_in_new) {
    os << "  only in new run: " << name << "\n";
  }
  os << (report.regressions == 0 ? "no regressions" :
         std::to_string(report.regressions) + " REGRESSION(S)")
     << " across " << report.rows.size() << " shared benchmarks\n";
}

// -- observability flags -----------------------------------------------------

/// Shared handling for the observability flags every harness binary
/// accepts (DESIGN.md §12, §17):
///   --trace=FILE                  Chrome trace of the run
///   --metrics                     human-readable registry dump
///   --metrics-format=json|openmetrics
///                                 machine-readable registry export
///   --metrics-out=FILE            destination for the export (stdout when
///                                 omitted; Prometheus scrapes this file)
/// Construct after CLI parsing (turns tracing on when --trace was given),
/// call `finish()` once the measured work is done: it writes the Chrome
/// trace, dumps the registry, and emits the structured export.
class ObsSession {
 public:
  explicit ObsSession(const util::CliArgs& args)
      : ObsSession(args.value_or("trace", std::string()),
                   args.has_flag("metrics")) {
    if (args.has_flag("metrics-format")) {
      const std::string text =
          args.value_or("metrics-format", std::string("json"));
      if (!set_metrics_export(text, args.value_or("metrics-out",
                                                  std::string()))) {
        std::cerr << "error: unknown --metrics-format '" << text
                  << "' (expected json or openmetrics)\n";
      }
    }
  }

  ObsSession(std::string trace_path, bool dump_metrics)
      : trace_path_(std::move(trace_path)), dump_metrics_(dump_metrics) {
    obs::set_thread_name("main");
    if (!trace_path_.empty()) obs::set_tracing(true);
  }

  /// Arms the finish()-time structured export. False (and no export armed)
  /// when `format_text` names no known format; the caller decides whether
  /// that is fatal.
  bool set_metrics_export(std::string_view format_text, std::string path) {
    if (!obs::parse_metrics_format(format_text, metrics_format_)) {
      flags_ok_ = false;
      return false;
    }
    export_metrics_ = true;
    metrics_out_ = std::move(path);
    return true;
  }

  /// Whether every recognized flag parsed cleanly (bad --metrics-format
  /// values clear this; the message was already printed).
  bool flags_ok() const noexcept { return flags_ok_; }

  /// Idempotent; returns false when the trace file or metrics export could
  /// not be written (or a flag failed to parse).
  bool finish() {
    if (finished_) return ok_ && flags_ok_;
    finished_ = true;
    if (!trace_path_.empty()) {
      obs::set_tracing(false);
      ok_ = obs::write_chrome_trace(trace_path_);
      if (ok_) {
        std::cout << "wrote Chrome trace to " << trace_path_
                  << " (load in chrome://tracing or ui.perfetto.dev)\n";
      } else {
        std::cerr << "error: failed to write trace to " << trace_path_
                  << "\n";
      }
    }
    if (dump_metrics_) {
      std::cout << "\n-- metrics ------------------------------------------\n";
      obs::dump_metrics(std::cout);
    }
    if (export_metrics_) {
      if (!obs::write_metrics(metrics_out_, metrics_format_)) {
        std::cerr << "error: failed to write metrics export"
                  << (metrics_out_.empty() ? "" : " to " + metrics_out_)
                  << "\n";
        ok_ = false;
      } else if (!metrics_out_.empty()) {
        std::cout << "wrote metrics export to " << metrics_out_ << "\n";
      }
    }
    return ok_ && flags_ok_;
  }

 private:
  std::string trace_path_;
  bool dump_metrics_ = false;
  bool export_metrics_ = false;
  obs::MetricsFormat metrics_format_ = obs::MetricsFormat::kJson;
  std::string metrics_out_;
  bool finished_ = false;
  bool ok_ = true;
  bool flags_ok_ = true;
};

}  // namespace egemm::bench
