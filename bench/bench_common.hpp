#pragma once
// Shared plumbing for the benchmark harness: every binary regenerates one
// paper table/figure (DESIGN.md §4), prints it as an ASCII table, and
// accepts a common set of flags:
//   --gpu=t4|rtx6000   target resource model (default t4)
//   --sizes=a,b,c      override the size sweep
//   --full             run the paper's full size range (functional
//                      precision sweeps default to a laptop-scale subset)
//   --trials=N         trial count for randomized experiments
//   --seed=N           RNG seed

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "tcsim/gpu_spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace egemm::bench {

inline tcsim::GpuSpec gpu_from_args(const util::CliArgs& args) {
  return tcsim::spec_by_name(args.value_or("gpu", std::string("t4")));
}

inline std::vector<std::int64_t> sizes_from_args(
    const util::CliArgs& args, std::vector<std::int64_t> quick,
    std::vector<std::int64_t> full) {
  if (args.has_flag("sizes")) return args.int_list_or("sizes", quick);
  return args.has_flag("full") ? full : quick;
}

/// Geometric mean helper for the headline "average speedup" rows. An empty
/// sweep has no geometric mean: returning NaN (rather than a 0.0 that reads
/// as "infinitely slower") makes a silently empty sweep impossible to
/// mistake for a measurement downstream.
inline double geomean(const std::vector<double>& values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

// -- machine-readable results ------------------------------------------------

/// One measured benchmark row for the persistent JSON artifact.
struct BenchRecord {
  std::string name;            ///< benchmark name incl. size, e.g. "X/1024"
  double ns_per_iter = 0.0;    ///< real time per iteration
  double items_per_second = 0.0;  ///< rate counter (FLOP/s for GEMM benches)
};

using obs::append_json_escaped;

/// Writes the benchmark records as a small self-describing JSON document
/// (consumed by CI as an artifact; "gflops" is items_per_second / 1e9 and is
/// GFLOP/s for the GEMM benches, whose item count is the FLOP count). The
/// observability registry rides along as a "metrics" object so every
/// BENCH_*.json carries the pipeline counters of the run that produced it.
inline bool write_bench_json(const std::string& path,
                             const std::string& git_sha,
                             const std::vector<BenchRecord>& records) {
  std::string out = "{\n  \"git_sha\": \"";
  append_json_escaped(out, git_sha);
  out += "\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char buf[160];
    out += "    {\"name\": \"";
    append_json_escaped(out, r.name);
    std::snprintf(buf, sizeof(buf),
                  "\", \"ns_per_iter\": %.6g, \"items_per_second\": %.6g, "
                  "\"gflops\": %.6g}%s\n",
                  r.ns_per_iter, r.items_per_second, r.items_per_second / 1e9,
                  i + 1 < records.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"metrics\": ";
  out += obs::metrics_json_block("  ");
  out += "\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

// -- observability flags -----------------------------------------------------

/// Shared handling for the --trace=FILE / --metrics flags every harness
/// binary accepts (DESIGN.md §12). Construct after CLI parsing (turns
/// tracing on when --trace was given), call `finish()` once the measured
/// work is done: it writes the Chrome trace and dumps the registry.
class ObsSession {
 public:
  explicit ObsSession(const util::CliArgs& args)
      : ObsSession(args.value_or("trace", std::string()),
                   args.has_flag("metrics")) {}

  ObsSession(std::string trace_path, bool dump_metrics)
      : trace_path_(std::move(trace_path)), dump_metrics_(dump_metrics) {
    obs::set_thread_name("main");
    if (!trace_path_.empty()) obs::set_tracing(true);
  }

  /// Idempotent; returns false when the trace file could not be written.
  bool finish() {
    if (finished_) return ok_;
    finished_ = true;
    if (!trace_path_.empty()) {
      obs::set_tracing(false);
      ok_ = obs::write_chrome_trace(trace_path_);
      if (ok_) {
        std::cout << "wrote Chrome trace to " << trace_path_
                  << " (load in chrome://tracing or ui.perfetto.dev)\n";
      } else {
        std::cerr << "error: failed to write trace to " << trace_path_
                  << "\n";
      }
    }
    if (dump_metrics_) {
      std::cout << "\n-- metrics ------------------------------------------\n";
      obs::dump_metrics(std::cout);
    }
    return ok_;
  }

 private:
  std::string trace_path_;
  bool dump_metrics_ = false;
  bool finished_ = false;
  bool ok_ = true;
};

}  // namespace egemm::bench
