#pragma once
// Shared plumbing for the benchmark harness: every binary regenerates one
// paper table/figure (DESIGN.md §4), prints it as an ASCII table, and
// accepts a common set of flags:
//   --gpu=t4|rtx6000   target resource model (default t4)
//   --sizes=a,b,c      override the size sweep
//   --full             run the paper's full size range (functional
//                      precision sweeps default to a laptop-scale subset)
//   --trials=N         trial count for randomized experiments
//   --seed=N           RNG seed

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "tcsim/gpu_spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace egemm::bench {

inline tcsim::GpuSpec gpu_from_args(const util::CliArgs& args) {
  return tcsim::spec_by_name(args.value_or("gpu", std::string("t4")));
}

inline std::vector<std::int64_t> sizes_from_args(
    const util::CliArgs& args, std::vector<std::int64_t> quick,
    std::vector<std::int64_t> full) {
  if (args.has_flag("sizes")) return args.int_list_or("sizes", quick);
  return args.has_flag("full") ? full : quick;
}

/// Geometric mean helper for the headline "average speedup" rows.
inline double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace egemm::bench
