// Regenerates Fig. 8 (comparison with vendor kernels on square matrices):
// simulated TFLOPS of cuBLAS-CUDA-FP32, cuBLAS-TC-Emulation and EGEMM-TC
// for N in 1024..16384 on (a) Tesla T4 and (b) RTX 6000.
#include "bench_common.hpp"
#include "gemm/gemm_api.hpp"

using namespace egemm;

namespace {

void run_gpu(const tcsim::GpuSpec& spec,
             const std::vector<std::int64_t>& sizes) {
  util::Table table("Fig. 8: vendor-kernel comparison, square NxNxN on " +
                    spec.name + " (simulated TFLOPS)");
  table.set_header({"N", "cuBLAS-CUDA-FP32", "cuBLAS-TC-Emulation",
                    "EGEMM-TC", "vs FP32", "vs TC-Emu"});
  std::vector<double> fp32_speedups, emu_speedups;
  for (const std::int64_t n64 : sizes) {
    const auto n = static_cast<std::uint64_t>(n64);
    const double fp32 =
        gemm::time_gemm(gemm::Backend::kCublasFp32, n, n, n, spec).tflops;
    const double emu =
        gemm::time_gemm(gemm::Backend::kCublasTcEmulation, n, n, n, spec)
            .tflops;
    const double egemm =
        gemm::time_gemm(gemm::Backend::kEgemmTC, n, n, n, spec).tflops;
    fp32_speedups.push_back(egemm / fp32);
    emu_speedups.push_back(egemm / emu);
    table.add_row({std::to_string(n), util::fmt_fixed(fp32, 2),
                   util::fmt_fixed(emu, 2), util::fmt_fixed(egemm, 2),
                   util::fmt_speedup(egemm / fp32),
                   util::fmt_speedup(egemm / emu)});
  }
  table.add_footnote("paper (T4): 3.13x mean vs cuBLAS-CUDA-FP32, 1.35x mean "
                     "vs cuBLAS-TC-Emulation; ~12 TFLOPS at 8192^3");
  table.add_footnote("measured means: " +
                     util::fmt_speedup(bench::geomean(fp32_speedups)) +
                     " vs FP32, " +
                     util::fmt_speedup(bench::geomean(emu_speedups)) +
                     " vs TC-Emulation");
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto sizes = bench::sizes_from_args(
      args, {1024, 2048, 4096, 8192, 16384},
      {1024, 2048, 3072, 4096, 6144, 8192, 12288, 16384});
  if (args.has_flag("gpu")) {
    run_gpu(bench::gpu_from_args(args), sizes);
  } else {
    run_gpu(tcsim::tesla_t4(), sizes);     // Fig. 8a
    run_gpu(tcsim::rtx6000(), sizes);      // Fig. 8b
  }
  return 0;
}
