// Ablation (DESIGN.md §4): round-split vs truncate-split inside the same
// 4-instruction algorithm, plus the Dekker baseline's overhead -- isolating
// the contribution of the Fig. 4b split from the rest of EGEMM-TC.
#include "bench_common.hpp"
#include "core/emulation.hpp"
#include "fp/error_stats.hpp"
#include "gemm/baselines.hpp"

using namespace egemm;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto seed =
      static_cast<std::uint64_t>(args.value_or("seed", std::int64_t{9}));
  const auto sizes =
      bench::sizes_from_args(args, {128, 256, 512}, {128, 256, 512, 1024});

  util::Table table(
      "Ablation: data-split method inside Alg. 1 (error vs binary64 "
      "reference)");
  table.set_header({"N (NxNx32)", "round-split mean", "truncate-split mean",
                    "ratio", "round max", "truncate max"});
  for (const std::int64_t n64 : sizes) {
    const auto n = static_cast<std::size_t>(n64);
    // k = 32 keeps the split's representation error visible above the
    // fp32 accumulation noise (EXPERIMENTS.md discusses the large-k
    // convergence of the two methods' max errors).
    const gemm::Matrix a = gemm::random_matrix(n, 32, -1, 1, seed + n);
    const gemm::Matrix b = gemm::random_matrix(32, n, -1, 1, seed + 2 * n);
    const gemm::MatrixD ref = gemm::gemm_reference(a, b, nullptr);

    gemm::EgemmOptions trunc;
    trunc.split = core::SplitMethod::kTruncateSplit;
    const gemm::Matrix round_d = gemm::egemm_multiply(a, b);
    const gemm::Matrix trunc_d = gemm::egemm_multiply(a, b, nullptr, trunc);
    const fp::ErrorStats round_stats =
        fp::compare(ref.data(), round_d.data());
    const fp::ErrorStats trunc_stats =
        fp::compare(ref.data(), trunc_d.data());
    table.add_row({std::to_string(n),
                   util::fmt_sci(round_stats.mean_abs(), 2),
                   util::fmt_sci(trunc_stats.mean_abs(), 2),
                   util::fmt_fixed(trunc_stats.mean_abs() /
                                       round_stats.mean_abs(), 2),
                   util::fmt_sci(round_stats.max_abs, 2),
                   util::fmt_sci(trunc_stats.max_abs, 2)});
  }
  table.add_footnote("paper §2.2: round-split buys 1 extra mantissa bit "
                     "(~2x lower representation error)");
  table.print(std::cout);

  {
    // Emulation overhead comparison (§3.2 "Emulation Overhead").
    util::Table overhead("Emulation overhead per tile MMA");
    overhead.set_header({"algorithm", "specialized-core instructions",
                         "relative"});
    overhead.add_row({"EGEMM-TC (Alg. 1)",
                      std::to_string(core::kEgemmInstructions), "1.0x"});
    overhead.add_row({"Markidis", std::to_string(core::kMarkidisInstructions),
                      "0.75x"});
    overhead.add_row({"three-way split (ablation)", "9", "2.25x"});
    overhead.add_row({"Dekker", std::to_string(core::kDekkerInstructions),
                      "4.0x"});
    overhead.add_footnote(
        "Dekker counts binary16 instructions per scalar multiply-accumulate "
        "(§1: 16 instructions -> inappropriate given the 8x TC/CUDA ratio)");
    overhead.print(std::cout);
  }

  {
    // Negative result: going past the two-way split buys nothing under a
    // binary32 accumulator (see gemm/egemm.hpp for the analysis).
    const std::size_t n = 256;
    const gemm::Matrix a = gemm::random_matrix(n, 64, -1, 1, seed + 77);
    const gemm::Matrix b = gemm::random_matrix(64, n, -1, 1, seed + 78);
    const gemm::Matrix alg1 = gemm::egemm_multiply(a, b);
    const gemm::Matrix three = gemm::egemm_multiply_3split(a, b);
    const double diff = gemm::max_abs_error(alg1, three);
    const tcsim::GpuSpec t4 = tcsim::tesla_t4();
    util::Table ablation("Ablation: three-way split (9 instructions) vs Alg. 1");
    ablation.set_header({"metric", "value"});
    ablation.add_row({"max |D_3split - D_alg1| at 256x256x64",
                      util::fmt_sci(diff, 2)});
    ablation.add_row({"modeled TFLOPS (Alg. 1, 8192^3, T4)",
                      util::fmt_fixed(
                          gemm::egemm_timing(8192, 8192, 8192, t4).tflops, 2)});
    ablation.add_row({"modeled TFLOPS (3-split, 8192^3, T4)",
                      util::fmt_fixed(
                          gemm::egemm_3split_timing(8192, 8192, 8192, t4)
                              .tflops,
                          2)});
    ablation.add_footnote(
        "identical results at 2.25x the Tensor Core work: past 21 bits the "
        "bottleneck is the fp32 accumulator, not the operand split");
    ablation.print(std::cout);
  }
  return 0;
}
