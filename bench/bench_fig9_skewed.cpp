// Regenerates Fig. 9 (vendor-kernel comparison on skewed matrices):
// (a) K enlarged 2x -- shape (N, N, 2N); (b) M enlarged 4x -- (4N, N, N).
// The cuBLAS-TC-Emulation series must show its split-K slowdown once the
// problem passes 4096 x 4096 x 8192, while EGEMM-TC stays consistent.
#include "bench_common.hpp"
#include "gemm/gemm_api.hpp"

using namespace egemm;

namespace {

void run_shape(const tcsim::GpuSpec& spec,
               const std::vector<std::int64_t>& sizes, std::string title,
               std::uint64_t m_factor, std::uint64_t k_factor) {
  util::Table table(std::move(title));
  table.set_header({"N", "M x N x K", "cuBLAS-CUDA-FP32",
                    "cuBLAS-TC-Emulation", "EGEMM-TC", "vs FP32",
                    "vs TC-Emu"});
  std::vector<double> fp32_speedups, emu_speedups;
  for (const std::int64_t n64 : sizes) {
    const auto n = static_cast<std::uint64_t>(n64);
    const std::uint64_t m = m_factor * n;
    const std::uint64_t k = k_factor * n;
    const double fp32 =
        gemm::time_gemm(gemm::Backend::kCublasFp32, m, n, k, spec).tflops;
    const double emu =
        gemm::time_gemm(gemm::Backend::kCublasTcEmulation, m, n, k, spec)
            .tflops;
    const double egemm =
        gemm::time_gemm(gemm::Backend::kEgemmTC, m, n, k, spec).tflops;
    fp32_speedups.push_back(egemm / fp32);
    emu_speedups.push_back(egemm / emu);
    table.add_row({std::to_string(n),
                   std::to_string(m) + "x" + std::to_string(n) + "x" +
                       std::to_string(k),
                   util::fmt_fixed(fp32, 2), util::fmt_fixed(emu, 2),
                   util::fmt_fixed(egemm, 2),
                   util::fmt_speedup(egemm / fp32),
                   util::fmt_speedup(egemm / emu)});
  }
  table.add_footnote("measured means: " +
                     util::fmt_speedup(bench::geomean(fp32_speedups)) +
                     " vs FP32, " +
                     util::fmt_speedup(bench::geomean(emu_speedups)) +
                     " vs TC-Emulation");
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const tcsim::GpuSpec spec = bench::gpu_from_args(args);
  const auto sizes = bench::sizes_from_args(
      args, {1024, 2048, 4096, 8192}, {1024, 2048, 3072, 4096, 6144, 8192});
  run_shape(spec, sizes,
            "Fig. 9a: skewed K -- (N, N, 2N) on " + spec.name +
                " (simulated TFLOPS); paper: 1.33x vs TC-Emu, 2.89x vs FP32, "
                "TC-Emu slows beyond 4096x4096x8192",
            1, 2);
  run_shape(spec, sizes,
            "Fig. 9b: skewed M -- (4N, N, N) on " + spec.name +
                " (simulated TFLOPS); paper: 1.40x vs TC-Emu, 2.9x vs FP32",
            4, 1);
  return 0;
}
