// Ablation (DESIGN.md §4): the analytic model's chosen tiling vs perturbed
// neighbors in the full pipeline model -- does Eq. 8's maximizer actually
// win end to end, and what do infeasible choices cost?
#include "bench_common.hpp"
#include "gemm/egemm.hpp"
#include "model/solver.hpp"

using namespace egemm;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const tcsim::GpuSpec spec = bench::gpu_from_args(args);
  const auto n =
      static_cast<std::uint64_t>(args.value_or("n", std::int64_t{8192}));

  const model::SolverResult solved =
      model::solve(model::budget_from_spec(spec));
  if (!solved.found) {
    std::printf("no feasible tiling for %s\n", spec.name.c_str());
    return 1;
  }

  util::Table table("Ablation: model-chosen tiling vs alternatives at " +
                    std::to_string(n) + "^3 on " + spec.name);
  table.set_header({"config", "model verdict", "simulated TFLOPS",
                    "regs/thread", "spill"});

  auto add_config = [&](const gemm::TileConfig& config,
                        const std::string& verdict) {
    gemm::EgemmOptions opts;
    opts.tile = config;
    const gemm::KernelTiming t = gemm::egemm_timing(n, n, n, spec, opts);
    table.add_row({config.describe(), verdict,
                   t.feasible ? util::fmt_fixed(t.tflops, 2)
                              : std::string("does not fit"),
                   t.feasible ? std::to_string(t.registers_per_thread)
                              : std::string("-"),
                   t.register_spill ? "yes" : "no"});
  };

  add_config(solved.best, "CHOSEN (max Eq. 4 s.t. Eq. 8)");
  // The next-best feasible alternatives.
  const std::size_t alternatives =
      std::min<std::size_t>(solved.feasible.size(), 5);
  for (std::size_t i = 1; i < alternatives; ++i) {
    add_config(solved.feasible[i].config, "feasible alternative");
  }
  // Representative constraint violations.
  add_config(gemm::TileConfig{128, 128, 64, 64, 32, 8},
             "rejected: register spill (bk=64)");
  add_config(gemm::TileConfig{128, 128, 32, 64, 16, 8},
             "rejected: memory bound (wn=16)");
  add_config(gemm::TileConfig{64, 64, 32, 32, 32, 8},
             "rejected: low intensity");
  add_config(gemm::TileConfig{256, 256, 32, 64, 64, 8},
             "rejected: does not fit");

  table.add_footnote("the chosen config must top every listed alternative "
                     "(verified by Integration.SolverChoiceBeatsPerturbedTilings)");
  table.print(std::cout);
  return 0;
}
