// Regenerates Fig. 7 (emulation precision) and the artifact's §A.3
// "Precision" ratio: max error relative to a reference for EGEMM-TC,
// Markidis and cuBLAS-TC-Half across square sizes, values in [-1, +1].
//
// The paper measures error against the single-precision cuBLAS result
// (Eq. 10); we report against both that and a binary64 reference (columns
// "vs fp32" use Eq. 10 exactly). Functional sizes default to N <= 1024 on
// this CPU-bound substrate; --full extends to 2048.
#include "bench_common.hpp"
#include "fp/error_stats.hpp"
#include "gemm/baselines.hpp"

using namespace egemm;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const auto sizes = bench::sizes_from_args(args, {128, 256, 512, 1024},
                                            {128, 256, 512, 1024, 2048});
  const auto seed =
      static_cast<std::uint64_t>(args.value_or("seed", std::int64_t{7}));

  util::Table table("Fig. 7: Emulation precision, max error vs single-precision (Eq. 10)");
  table.set_header({"N (NxNxN)", "cuBLAS-TC-Half", "Markidis", "EGEMM-TC",
                    "Half/EGEMM", "Markidis/EGEMM"});

  std::vector<double> half_ratios, markidis_ratios;
  for (const std::int64_t n64 : sizes) {
    const auto n = static_cast<std::size_t>(n64);
    const gemm::Matrix a = gemm::random_matrix(n, n, -1.0f, 1.0f, seed + n);
    const gemm::Matrix b =
        gemm::random_matrix(n, n, -1.0f, 1.0f, seed + 31 * n);

    // Eq. 10 reference: the single-precision kernel's result.
    const gemm::Matrix single = gemm::sgemm_fp32(a, b);
    const double egemm_err =
        gemm::max_abs_error(single, gemm::egemm_multiply(a, b));
    const double markidis_err =
        gemm::max_abs_error(single, gemm::gemm_markidis(a, b));
    const double half_err =
        gemm::max_abs_error(single, gemm::gemm_tc_half(a, b));

    half_ratios.push_back(half_err / egemm_err);
    markidis_ratios.push_back(markidis_err / egemm_err);
    table.add_row({std::to_string(n), util::fmt_sci(half_err, 2),
                   util::fmt_sci(markidis_err, 2),
                   util::fmt_sci(egemm_err, 2),
                   util::fmt_fixed(half_err / egemm_err, 1),
                   util::fmt_fixed(markidis_err / egemm_err, 2)});
  }
  table.add_footnote("paper: EGEMM-TC reduces max error by ~350x vs "
                     "cuBLAS-TC-Half and ~2.33x vs Markidis on average");
  table.add_footnote("mean over sizes: Half/EGEMM = " +
                     util::fmt_fixed(bench::geomean(half_ratios), 1) +
                     ", Markidis/EGEMM = " +
                     util::fmt_fixed(bench::geomean(markidis_ratios), 2));
  table.print(std::cout);

  // Artifact §A.3 "Precision" block at N = 1024.
  {
    const std::size_t n = 1024;
    const gemm::Matrix a = gemm::random_matrix(n, n, -1.0f, 1.0f, seed + 1);
    const gemm::Matrix b = gemm::random_matrix(n, n, -1.0f, 1.0f, seed + 2);
    const gemm::Matrix single = gemm::sgemm_fp32(a, b);
    const double emu = gemm::max_abs_error(single, gemm::egemm_multiply(a, b));
    const double half = gemm::max_abs_error(single, gemm::gemm_tc_half(a, b));
    std::printf("m*n*k: %zu.\n", n);
    std::printf("max Emulation Error: %.8f\n", emu);
    std::printf("max Half cuBLAS Error: %.8f\n", half);
    std::printf("Ratio (Max_Emulation_Error/Max_Half_cuBLAS_Error): %.8f\n",
                emu / half);
    std::printf("(artifact reports ~0.0019, i.e. error reduced by >500x)\n");
  }
  return 0;
}
