// google-benchmark microbenchmarks for the CPU-side primitives: binary16
// conversion, data splits, the functional Tensor Core tile, the emulated
// tile algorithms, the pipeline simulator and a small end-to-end GEMM.
// These measure the *substrate's* host performance (useful when extending
// the library), not the simulated GPU numbers of the fig/table benches.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/emulation.hpp"
#include "core/split.hpp"
#include "gemm/baselines.hpp"
#include "gemm/egemm.hpp"
#include "tcsim/instruction.hpp"
#include "tcsim/pipeline.hpp"
#include "tcsim/tensor_core.hpp"
#include "util/rng.hpp"

namespace {

using namespace egemm;

void BM_HalfFromFloat(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<float> values(4096);
  for (auto& v : values) v = rng.uniform(-1.0f, 1.0f);
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const float v : values) {
      acc += fp::f32_to_f16_bits(v, fp::Rounding::kNearestEven);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_HalfFromFloat);

void BM_HalfToFloat(benchmark::State& state) {
  std::vector<std::uint16_t> bits(4096);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint16_t>(i * 13);
  }
  for (auto _ : state) {
    float acc = 0.0f;
    for (const std::uint16_t b : bits) acc += fp::f16_bits_to_f32(b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_HalfToFloat);

void BM_SplitSpan(benchmark::State& state) {
  const auto method = static_cast<core::SplitMethod>(state.range(0));
  util::Xoshiro256 rng(2);
  std::vector<float> input(8192);
  for (auto& v : input) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> hi(input.size()), lo(input.size());
  for (auto _ : state) {
    core::split_span_f32(input, hi, lo, method);
    benchmark::DoNotOptimize(hi.data());
    benchmark::DoNotOptimize(lo.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_SplitSpan)
    ->Arg(static_cast<int>(core::SplitMethod::kRoundSplit))
    ->Arg(static_cast<int>(core::SplitMethod::kTruncateSplit));

void BM_TensorCoreTile(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  float a[16 * 16], b[16 * 16], d[16 * 16];
  for (auto& v : a) v = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
  for (auto& v : b) v = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
  for (auto& v : d) v = 0.0f;
  for (auto _ : state) {
    tcsim::mma_tile_f32(d, 16, a, 16, b, 16, 16, 16, 16);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 16 * 16);
}
BENCHMARK(BM_TensorCoreTile);

void BM_EmulatedTile(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  core::FragmentF32 a;
  core::FragmentF32B b;
  tcsim::FragmentAcc c, d;
  for (auto& v : a.flat()) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : b.flat()) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : c.flat()) v = rng.uniform(-1.0f, 1.0f);
  const int variant = static_cast<int>(state.range(0));
  for (auto _ : state) {
    switch (variant) {
      case 0:
        core::egemm_mma_tile(d, a, b, c);
        break;
      case 1:
        core::markidis_mma_tile(d, a, b, c);
        break;
      default:
        core::dekker_mma_tile(d, a, b, c);
        break;
    }
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel(variant == 0   ? "egemm"
                 : variant == 1 ? "markidis"
                                : "dekker");
}
BENCHMARK(BM_EmulatedTile)->Arg(0)->Arg(1)->Arg(2);

void BM_PipelineSimulate(benchmark::State& state) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const tcsim::EgemmStreamOptions opts{};
  const tcsim::IterationShape shape =
      tcsim::egemm_iteration_shape(128, 128, 32, 64, 32, 8, opts);
  const tcsim::SimProgram prog = tcsim::build_egemm_block_program(
      shape, static_cast<std::uint32_t>(state.range(0)), opts, 128);
  for (auto _ : state) {
    const tcsim::SimStats stats = tcsim::simulate_block(prog, spec);
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(prog.dynamic_size()));
}
BENCHMARK(BM_PipelineSimulate)->Arg(32)->Arg(256);

void BM_EgemmMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gemm::Matrix a = gemm::random_matrix(n, n, -1, 1, 5);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1, 1, 6);
  for (auto _ : state) {
    const gemm::Matrix d = gemm::egemm_multiply(a, b);
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_EgemmMultiply)->Arg(64)->Arg(128)->Arg(256);

void BM_SgemmFp32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gemm::Matrix a = gemm::random_matrix(n, n, -1, 1, 7);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1, 1, 8);
  for (auto _ : state) {
    const gemm::Matrix d = gemm::sgemm_fp32(a, b);
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_SgemmFp32)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
