// google-benchmark microbenchmarks for the CPU-side primitives: binary16
// conversion, data splits, the functional Tensor Core tile, the emulated
// tile algorithms, the pipeline simulator and an end-to-end GEMM on both
// execution engines. These measure the *substrate's* host performance
// (useful when extending the library), not the simulated GPU numbers of
// the fig/table benches.
//
// Extra flags on top of google-benchmark's own:
//   --smoke        drop the 1024^3 GEMM sizes and shorten the min time (CI)
//   --json=PATH    where to write the machine-readable results
//                  (default BENCH_micro.json in the working directory)
//   --compare=PATH diff this run against an older BENCH_micro.json and
//                  exit nonzero when a shared row slows down past the
//                  threshold (--compare_threshold=0.3 -> +30%, the default)
//   --trace=PATH   record pipeline spans and write a Chrome trace_event
//                  JSON (chrome://tracing, ui.perfetto.dev)
//   --metrics      dump the observability registry to stdout at exit
//   --tune=PATH    skip the benchmarks and run the offline autotuning
//                  sweep instead: profile engine x scheduler grain x
//                  available ISA tier per shape class and write the
//                  winners as a versioned tuning file (DESIGN.md §18;
//                  consumed via EGEMM_TUNING_FILE)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/emulation.hpp"
#include "core/split.hpp"
#include "gemm/baselines.hpp"
#include "gemm/egemm.hpp"
#include "gemm/gemm_api.hpp"
#include "gemm/plan.hpp"
#include "model/tuning_cache.hpp"
#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "simd/isa.hpp"
#include "tcsim/instruction.hpp"
#include "tcsim/pipeline.hpp"
#include "tcsim/tensor_core.hpp"
#include "util/rng.hpp"

namespace {

using namespace egemm;

void BM_HalfFromFloat(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<float> values(4096);
  for (auto& v : values) v = rng.uniform(-1.0f, 1.0f);
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const float v : values) {
      acc += fp::f32_to_f16_bits(v, fp::Rounding::kNearestEven);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_HalfFromFloat);

void BM_HalfToFloat(benchmark::State& state) {
  std::vector<std::uint16_t> bits(4096);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint16_t>(i * 13);
  }
  for (auto _ : state) {
    float acc = 0.0f;
    for (const std::uint16_t b : bits) acc += fp::f16_bits_to_f32(b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_HalfToFloat);

void BM_SplitSpan(benchmark::State& state) {
  const auto method = static_cast<core::SplitMethod>(state.range(0));
  util::Xoshiro256 rng(2);
  std::vector<float> input(8192);
  for (auto& v : input) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> hi(input.size()), lo(input.size());
  for (auto _ : state) {
    core::split_span_f32(input, hi, lo, method);
    benchmark::DoNotOptimize(hi.data());
    benchmark::DoNotOptimize(lo.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_SplitSpan)
    ->Arg(static_cast<int>(core::SplitMethod::kRoundSplit))
    ->Arg(static_cast<int>(core::SplitMethod::kTruncateSplit));

void BM_TensorCoreTile(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  float a[16 * 16], b[16 * 16], d[16 * 16];
  for (auto& v : a) v = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
  for (auto& v : b) v = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
  for (auto& v : d) v = 0.0f;
  for (auto _ : state) {
    tcsim::mma_tile_f32(d, 16, a, 16, b, 16, 16, 16, 16);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 16 * 16);
}
BENCHMARK(BM_TensorCoreTile);

void BM_EmulatedTile(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  core::FragmentF32 a;
  core::FragmentF32B b;
  tcsim::FragmentAcc c, d;
  for (auto& v : a.flat()) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : b.flat()) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : c.flat()) v = rng.uniform(-1.0f, 1.0f);
  const int variant = static_cast<int>(state.range(0));
  for (auto _ : state) {
    switch (variant) {
      case 0:
        core::egemm_mma_tile(d, a, b, c);
        break;
      case 1:
        core::markidis_mma_tile(d, a, b, c);
        break;
      default:
        core::dekker_mma_tile(d, a, b, c);
        break;
    }
    benchmark::DoNotOptimize(d);
  }
  state.SetLabel(variant == 0   ? "egemm"
                 : variant == 1 ? "markidis"
                                : "dekker");
  // Effective-GEMM FLOPs (one 16x16x16 tile per iteration), the same
  // convention as the end-to-end GEMM benches: without the rate counter
  // these rows land in BENCH_micro.json with items_per_second/gflops = 0.
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 16 * 16);
}
BENCHMARK(BM_EmulatedTile)->Arg(0)->Arg(1)->Arg(2);

/// One packed MMA block kernel call per iteration, per ISA tier (the table
/// is invoked directly, bypassing dispatch, so every compiled-in +
/// machine-executable variant gets a row regardless of what auto-selection
/// picks). k = 256 approximates the steady-state slab depth of a large
/// GEMM; items are effective FLOPs, so gflops in BENCH_micro.json is the
/// raw microkernel throughput.
void BM_MmaBlockPacked(benchmark::State& state,
                       const egemm::simd::KernelTable* table) {
  constexpr int kK = 256;
  constexpr int kTile = egemm::simd::kMmaTile;
  util::Xoshiro256 rng(9);
  std::vector<float> a(static_cast<std::size_t>(kTile) * kK);
  std::vector<float> b(static_cast<std::size_t>(kK) * kTile);
  std::vector<float> acc(static_cast<std::size_t>(kTile) * kTile, 0.0f);
  for (auto& v : a) v = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
  for (auto& v : b) v = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
  for (auto _ : state) {
    table->mma_block_packed(acc.data(), a.data(), kK, b.data(), kK);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kTile * kTile * kK);
}

/// Batched f32 -> f16 -> f32 round-trip (the split pass's inner loop), per
/// ISA tier. Items are converted elements; multiply by 8 bytes (one float
/// in, one out) for memory throughput.
void BM_HalfBatchRoundTrip(benchmark::State& state,
                           const egemm::simd::KernelTable* table) {
  util::Xoshiro256 rng(10);
  std::vector<float> in(1 << 16);
  std::vector<float> out(in.size());
  for (auto& v : in) v = rng.uniform(-1.0f, 1.0f);
  for (auto _ : state) {
    table->f32_round_through_f16(in.data(), out.data(), in.size(), true);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size() * 8));
}

void BM_PipelineSimulate(benchmark::State& state) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const tcsim::EgemmStreamOptions opts{};
  const tcsim::IterationShape shape =
      tcsim::egemm_iteration_shape(128, 128, 32, 64, 32, 8, opts);
  const tcsim::SimProgram prog = tcsim::build_egemm_block_program(
      shape, static_cast<std::uint32_t>(state.range(0)), opts, 128);
  for (auto _ : state) {
    const tcsim::SimStats stats = tcsim::simulate_block(prog, spec);
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(prog.dynamic_size()));
}
BENCHMARK(BM_PipelineSimulate)->Arg(32)->Arg(256);

void BM_EgemmMultiply(benchmark::State& state, gemm::ExecEngine engine) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gemm::Matrix a = gemm::random_matrix(n, n, -1, 1, 5);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1, 1, 6);
  gemm::EgemmOptions opts;
  opts.engine = engine;
  for (auto _ : state) {
    const gemm::Matrix d = gemm::egemm_multiply(a, b, nullptr, opts);
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(n * n * n));
}

/// The plan-once, execute-many path (gemm/plan.hpp): the plan and the
/// output matrix live outside the loop, so the steady state measures pure
/// execution -- no plan-cache lookup, no D allocation, recycled split/pack
/// workspaces. Compare against BM_EgemmMultiply at the same size for the
/// per-call overhead of the one-shot API.
void BM_EgemmPlanExecute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gemm::Matrix a = gemm::random_matrix(n, n, -1, 1, 5);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1, 1, 6);
  gemm::GemmContext ctx;
  const auto plan = ctx.plan(gemm::Backend::kEgemmTC, n, n, n);
  gemm::Matrix d;
  for (auto _ : state) {
    plan->execute(ctx, a, b, nullptr, d);
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(n * n * n));
}

/// The anti-pattern the plan layer exists to avoid: a fresh context per
/// call re-resolves the plan and re-allocates every split/pack workspace.
/// BM_EgemmPlanExecute at the same size is the steady state; the ratio is
/// the per-call cost of not planning.
void BM_EgemmColdPlan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gemm::Matrix a = gemm::random_matrix(n, n, -1, 1, 5);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1, 1, 6);
  for (auto _ : state) {
    gemm::GemmContext fresh;
    const gemm::Matrix d = fresh.run(gemm::Backend::kEgemmTC, a, b);
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(n * n * n));
}

/// N identical small GEMMs through gemm_batched: ONE flattened
/// (item x tile) stream with a batch-aware grain (DESIGN.md §18).
/// BM_GemmBatchedLoopSingles at the same Args runs the identical work as a
/// loop of one-shot gemm_ex calls -- the ratio of the two gflops columns
/// in BENCH_micro.json is what the grouped scheduler buys (the acceptance
/// bar is >= 2x aggregate throughput at 32 x 128^3).
void BM_GemmBatched(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<gemm::Matrix> a, b;
  a.reserve(batch);
  b.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    a.push_back(gemm::random_matrix(n, n, -1, 1, 11 + 2 * i));
    b.push_back(gemm::random_matrix(n, n, -1, 1, 12 + 2 * i));
  }
  gemm::GemmContext ctx;
  for (auto _ : state) {
    const std::vector<gemm::Matrix> d =
        gemm::gemm_batched(ctx, gemm::Backend::kEgemmTC, a, b);
    benchmark::DoNotOptimize(d.front().data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(batch * n * n * n));
}

/// The same batch as a loop of single gemm_ex calls: every item pays its
/// own pool fork/join (plus the one-shot bookkeeping), which is exactly
/// the overhead the flattened stream amortizes.
void BM_GemmBatchedLoopSingles(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<gemm::Matrix> a, b;
  a.reserve(batch);
  b.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    a.push_back(gemm::random_matrix(n, n, -1, 1, 11 + 2 * i));
    b.push_back(gemm::random_matrix(n, n, -1, 1, 12 + 2 * i));
  }
  gemm::GemmContext ctx;
  for (auto _ : state) {
    gemm::Matrix d;
    for (std::size_t i = 0; i < batch; ++i) {
      d = gemm::gemm_ex(ctx, gemm::Backend::kEgemmTC, a[i], b[i], nullptr, {});
    }
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(batch * n * n * n));
}

/// Heterogeneous shapes through gemm_grouped: the stream mixes four shape
/// classes (so four plans share one dispatch), the situation where
/// per-item scheduling wastes the most -- small items serialize behind
/// large ones.
void BM_GemmGrouped(benchmark::State& state) {
  struct Shape {
    std::size_t m, n, k;
  };
  constexpr std::array<Shape, 4> kShapes = {
      {{64, 64, 64}, {128, 64, 96}, {96, 128, 64}, {128, 128, 128}}};
  constexpr std::size_t kBatch = 24;
  std::vector<gemm::Matrix> a(kBatch), b(kBatch), d(kBatch);
  std::vector<gemm::GroupedGemmItem> items(kBatch);
  std::int64_t flops = 0;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const Shape& s = kShapes[i % kShapes.size()];
    a[i] = gemm::random_matrix(s.m, s.k, -1, 1, 31 + 2 * i);
    b[i] = gemm::random_matrix(s.k, s.n, -1, 1, 32 + 2 * i);
    items[i] = gemm::GroupedGemmItem{&a[i], &b[i], nullptr, &d[i], {}};
    flops += static_cast<std::int64_t>(2 * s.m * s.n * s.k);
  }
  gemm::GemmContext ctx;
  for (auto _ : state) {
    gemm::gemm_grouped(ctx, gemm::Backend::kEgemmTC, items);
    benchmark::DoNotOptimize(d.front().data().data());
  }
  state.SetItemsProcessed(state.iterations() * flops);
}

void BM_SgemmFp32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gemm::Matrix a = gemm::random_matrix(n, n, -1, 1, 7);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1, 1, 8);
  for (auto _ : state) {
    const gemm::Matrix d = gemm::sgemm_fp32(a, b);
    benchmark::DoNotOptimize(d.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_SgemmFp32)->Arg(128)->Arg(256);

/// The offline autotuning sweep behind --tune=PATH (DESIGN.md §18).
///
/// For every shape class it times warm plan->execute() calls across
/// engine x scheduler-grain x available ISA tier and records the winner
/// as a model::TuningEntry. The candidate grain reaches the plan the same
/// way a production consult does: the candidate is installed in the
/// process-wide TuningCache and the plan is built in a fresh context (the
/// plan cache would otherwise pin the first grain seen for the shape).
/// TileConfig deliberately is NOT a sweep axis: it feeds the simulated-GPU
/// timing model, not host wall time, so the solver's pick is recorded
/// informationally and the swept dimensions are the ones the host
/// scheduler actually feels.
int run_tuning_sweep(const std::string& path, bool smoke) {
  const std::vector<std::size_t> shapes =
      smoke ? std::vector<std::size_t>{64, 128}
            : std::vector<std::size_t>{32, 64, 128, 256};
  // Grain 0 = the pool's own chunking; nonzero = output tiles per chunk.
  constexpr std::array<std::size_t, 5> kGrains = {0, 1, 4, 16, 64};
  const double budget_ns = smoke ? 2e6 : 2e7;  // per configuration
  struct EngineChoice {
    gemm::ExecEngine engine;
    const char* name;
  };
  constexpr std::array<EngineChoice, 2> kEngines = {
      {{gemm::ExecEngine::kPacked, "packed"},
       {gemm::ExecEngine::kReference, "reference"}}};

  std::vector<model::TuningEntry> winners;
  for (int level = 0; level < simd::kIsaLevelCount; ++level) {
    const auto isa = static_cast<simd::IsaLevel>(level);
    if (!simd::isa_available(isa)) continue;
    simd::force_isa(isa);
    for (const std::size_t n : shapes) {
      const gemm::Matrix a = gemm::random_matrix(n, n, -1, 1, 21);
      const gemm::Matrix b = gemm::random_matrix(n, n, -1, 1, 22);
      model::TuningEntry best;
      for (const EngineChoice& choice : kEngines) {
        for (const std::size_t grain : kGrains) {
          model::TuningEntry candidate;
          candidate.shape = model::tuning_shape_class(n, n, n);
          candidate.grain = grain;
          candidate.engine = choice.name;
          candidate.isa = simd::isa_name(isa);
          model::TuningCache::global().set_entries({candidate});
          gemm::GemmContext ctx(4);
          gemm::EgemmOptions opts;
          opts.engine = choice.engine;
          const std::shared_ptr<const gemm::GemmPlan> plan =
              ctx.plan(gemm::Backend::kEgemmTC, n, n, n, opts);
          gemm::Matrix d;
          // Warm call: allocates the workspaces and calibrates the reps.
          const std::uint64_t w0 = obs::monotonic_ns();
          plan->execute(ctx, a, b, nullptr, d);
          const std::uint64_t w1 = obs::monotonic_ns();
          const auto reps = static_cast<int>(std::max<double>(
              3.0, budget_ns / static_cast<double>(std::max<std::uint64_t>(
                                   1, w1 - w0))));
          const std::uint64_t t0 = obs::monotonic_ns();
          for (int r = 0; r < reps; ++r) plan->execute(ctx, a, b, nullptr, d);
          const std::uint64_t t1 = obs::monotonic_ns();
          candidate.tile = plan->tile();
          candidate.ns_per_call =
              static_cast<double>(t1 - t0) / static_cast<double>(reps);
          candidate.gflops = 2.0 * static_cast<double>(n * n * n) /
                             candidate.ns_per_call;
          if (best.engine.empty() ||
              candidate.ns_per_call < best.ns_per_call) {
            best = candidate;
          }
        }
      }
      std::fprintf(stderr,
                   "tune: %s isa=%s -> engine=%s grain=%zu %.0f ns/call "
                   "(%.2f GFLOP/s)\n",
                   model::tuning_shape_class_name(best.shape).c_str(),
                   best.isa.c_str(), best.engine.c_str(), best.grain,
                   best.ns_per_call, best.gflops);
      winners.push_back(std::move(best));
    }
  }
  simd::reset_isa();
  model::TuningCache::global().clear();

  const std::string json = model::TuningCache::to_json(
      winners, "bench_micro --tune", gemm::small_gemm_inline_threshold());
  std::ofstream out(path);
  out << json;
  if (!out) {
    std::fprintf(stderr, "error: cannot write tuning file %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu shape classes)\n", path.c_str(),
               winners.size());
  return 0;
}

/// Console reporter that also captures every per-iteration run so main()
/// can persist the results as JSON after the sweep.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      egemm::bench::BenchRecord rec;
      rec.name = run.benchmark_name();
      if (run.iterations > 0) {
        rec.ns_per_iter = run.real_accumulated_time /
                          static_cast<double>(run.iterations) * 1e9;
      }
      // google-benchmark finalizes rate counters against CPU time, which
      // under-counts work done on pool worker threads; rescale to a
      // wall-clock rate so the GEMM GFLOP/s numbers are meaningful.
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end() && run.real_accumulated_time > 0.0) {
        rec.items_per_second = it->second.value * run.cpu_accumulated_time /
                               run.real_accumulated_time;
      }
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<egemm::bench::BenchRecord>& records() const {
    return records_;
  }

 private:
  std::vector<egemm::bench::BenchRecord> records_;
};

}  // namespace

#ifndef EGEMM_GIT_SHA
#define EGEMM_GIT_SHA "unknown"
#endif

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_micro.json";
  std::string compare_path;
  double compare_threshold = 0.3;
  std::string trace_path;
  std::string tune_path;
  bool dump_metrics = false;
  std::string metrics_format;
  std::string metrics_out;
  bool min_time_given = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--compare=", 10) == 0) {
      compare_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--compare_threshold=", 20) == 0) {
      compare_threshold = std::strtod(argv[i] + 20, nullptr);
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--tune=", 7) == 0) {
      tune_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strncmp(argv[i], "--metrics-format=", 17) == 0) {
      metrics_format = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else {
      if (std::strncmp(argv[i], "--benchmark_min_time", 20) == 0) {
        min_time_given = true;
      }
      passthrough.push_back(argv[i]);
    }
  }
  // The smoke sweep is a CI regression canary: tiny min time, no 1024^3.
  std::string min_time_arg = "--benchmark_min_time=0.05";
  if (smoke && !min_time_given) passthrough.push_back(min_time_arg.data());

  // --tune replaces the benchmark run entirely: it has its own timing loop
  // and writes a tuning file instead of BENCH_micro.json.
  if (!tune_path.empty()) return run_tuning_sweep(tune_path, smoke);

  // The end-to-end GEMM sweep runs both engines at each size so the JSON
  // artifact always carries the packed-vs-reference ratio. The 32^3 size
  // is where the one-shot API's per-call overhead (plan lookup, output
  // allocation) is the largest fraction of the work, making the
  // plan-execute comparison meaningful. The full sweep adds the 1024^3
  // headline size (README's perf table; several seconds on the reference
  // engine).
  // One row per compiled-in, machine-executable ISA tier for the two
  // dispatched hot loops (DESIGN.md §15). The scalar row is the seed
  // baseline; the spread to the widest row is what runtime dispatch buys.
  for (int level = 0; level < egemm::simd::kIsaLevelCount; ++level) {
    const auto isa = static_cast<egemm::simd::IsaLevel>(level);
    if (!egemm::simd::isa_available(isa)) continue;
    const egemm::simd::KernelTable* table = egemm::simd::kernels_for(isa);
    benchmark::RegisterBenchmark(
        (std::string("BM_MmaBlockPacked/") + table->name).c_str(),
        [table](benchmark::State& state) { BM_MmaBlockPacked(state, table); });
    benchmark::RegisterBenchmark(
        (std::string("BM_HalfBatchRoundTrip/") + table->name).c_str(),
        [table](benchmark::State& state) {
          BM_HalfBatchRoundTrip(state, table);
        });
  }

  std::vector<std::int64_t> sizes = {32, 64, 128, 256};
  if (!smoke) sizes.push_back(1024);
  for (const std::int64_t n : sizes) {
    benchmark::RegisterBenchmark("BM_EgemmMultiply",
                                 [](benchmark::State& state) {
                                   BM_EgemmMultiply(
                                       state, gemm::ExecEngine::kPacked);
                                 })
        ->Arg(n);
    benchmark::RegisterBenchmark("BM_EgemmMultiplyReference",
                                 [](benchmark::State& state) {
                                   BM_EgemmMultiply(
                                       state, gemm::ExecEngine::kReference);
                                 })
        ->Arg(n);
    benchmark::RegisterBenchmark("BM_EgemmPlanExecute", BM_EgemmPlanExecute)
        ->Arg(n);
    benchmark::RegisterBenchmark("BM_EgemmColdPlan", BM_EgemmColdPlan)
        ->Arg(n);
  }

  // The batched/grouped path (DESIGN.md §18), smoke set included so CI's
  // --compare gate covers the rows. The pair at {32, 128} is the README's
  // batched-throughput headline: same work, flattened stream vs a loop of
  // singles.
  // {64, 32} is the amortization extreme: per-call fixed costs (plan
  // lookup, output allocation, telemetry deposit, workspace lease) are the
  // largest fraction of a 32^3 call, so it shows the flattened stream's
  // floor win even on one core; {32, 128} adds the scheduling win, which
  // scales with the worker count.
  benchmark::RegisterBenchmark("BM_GemmBatched", BM_GemmBatched)
      ->Args({32, 128})
      ->Args({64, 32});
  benchmark::RegisterBenchmark("BM_GemmBatchedLoopSingles",
                               BM_GemmBatchedLoopSingles)
      ->Args({32, 128})
      ->Args({64, 32});
  benchmark::RegisterBenchmark("BM_GemmGrouped", BM_GemmGrouped);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  egemm::bench::ObsSession obs_session(trace_path, dump_metrics);
  if (!metrics_format.empty() &&
      !obs_session.set_metrics_export(metrics_format, metrics_out)) {
    std::fprintf(stderr,
                 "error: unknown --metrics-format '%s' "
                 "(expected json or openmetrics)\n",
                 metrics_format.c_str());
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const bool obs_ok = obs_session.finish();
  if (!egemm::bench::write_bench_json(json_path, EGEMM_GIT_SHA,
                                      reporter.records())) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  if (!obs_ok) return 1;
  std::fprintf(stderr, "wrote %s (%zu records, sha %s)\n", json_path.c_str(),
               reporter.records().size(), EGEMM_GIT_SHA);

  if (!compare_path.empty()) {
    std::ifstream old_file(compare_path);
    if (!old_file) {
      std::fprintf(stderr, "error: cannot read --compare file %s\n",
                   compare_path.c_str());
      return 1;
    }
    std::ostringstream old_text;
    old_text << old_file.rdbuf();
    const std::vector<egemm::bench::BenchRecord> old_records =
        egemm::bench::parse_bench_json_records(old_text.str());
    if (old_records.empty()) {
      std::fprintf(stderr, "error: no benchmark rows in %s\n",
                   compare_path.c_str());
      return 1;
    }
    const egemm::bench::BenchCompareReport report =
        egemm::bench::compare_bench_records(old_records, reporter.records(),
                                            compare_threshold);
    egemm::bench::print_bench_compare(report, compare_threshold, std::cout);
    if (report.regressions > 0) return 2;
  }
  return 0;
}
