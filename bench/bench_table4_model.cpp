// Regenerates Table 3 (resource budget) and Table 4 (analytic-model design
// choice) by running the §6 solver against the GPU's budget, and prints the
// top of the feasible design space for context.
#include "bench_common.hpp"
#include "model/solver.hpp"
#include "tcsim/occupancy.hpp"

using namespace egemm;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const tcsim::GpuSpec spec = bench::gpu_from_args(args);
  const model::ResourceBudget budget = model::budget_from_spec(spec);

  {
    util::Table table("Table 3: resource budget on " + spec.name);
    table.set_header({"resource", "budget"});
    table.add_row({"Shared Memory Size",
                   std::to_string(budget.shared_memory_bytes / 1024) + " KB"});
    table.add_row({"FRAG/Register Size",
                   std::to_string(budget.register_bytes / 1024) + " KB"});
    table.add_row({"Peak Computation",
                   util::fmt_fixed(budget.peak_tc_tflops, 1) + " TFLOPS"});
    table.add_row({"L2 Cache Speed",
                   util::fmt_fixed(budget.l2_gbps, 0) + " GB/s"});
    table.print(std::cout);
  }

  const model::SolverResult result = model::solve(budget);
  if (!result.found) {
    std::printf("no feasible tiling found for this budget\n");
    return 1;
  }

  {
    const gemm::TileConfig& best = result.best;
    const tcsim::Occupancy occ = tcsim::compute_occupancy(
        spec, tcsim::BlockResources{best.shared_memory_bytes(),
                                    result.best_eval.registers_per_thread,
                                    best.threads_per_block()});
    util::Table table("Table 4: design choice on " + spec.name);
    table.set_header({"parameter", "value"});
    table.add_row({"(bm, bn, bk)", "(" + std::to_string(best.bm) + ", " +
                                       std::to_string(best.bn) + ", " +
                                       std::to_string(best.bk) + ")"});
    table.add_row({"(wm, wn, wk)", "(" + std::to_string(best.wm) + ", " +
                                       std::to_string(best.wn) + ", " +
                                       std::to_string(best.wk) + ")"});
    table.add_row({"Shared memory/block",
                   std::to_string(best.shared_memory_bytes() / 1024) + " KB"});
    table.add_row({"Active Blocks/SM", std::to_string(occ.blocks_per_sm)});
    table.add_row({"Active Warps/Block",
                   std::to_string(best.warps_per_block())});
    table.add_row({"Registers/thread (232 of 256 in paper)",
                   std::to_string(result.best_eval.registers_per_thread)});
    table.add_footnote("paper Table 4: (128,128,32), (64,32,8), 36 KB, 1 "
                       "block/SM, 8 warps/block");
    table.add_footnote("design points explored: " +
                       std::to_string(result.explored) + ", feasible: " +
                       std::to_string(result.feasible.size()));
    table.print(std::cout);
  }

  {
    util::Table table("Top feasible candidates (objective order)");
    table.set_header({"rank", "config", "intensity (Eq. 4)",
                      "T_comp (cyc)", "T_mem1+T_mem2 (cyc)", "regs/thread"});
    const std::size_t top =
        std::min<std::size_t>(result.feasible.size(), 8);
    for (std::size_t i = 0; i < top; ++i) {
      const auto& candidate = result.feasible[i];
      table.add_row(
          {std::to_string(i + 1), candidate.config.describe(),
           util::fmt_fixed(candidate.eval.compute_intensity, 1),
           util::fmt_fixed(candidate.eval.t_comp, 0),
           util::fmt_fixed(candidate.eval.t_mem1 + candidate.eval.t_mem2, 0),
           std::to_string(candidate.eval.registers_per_thread)});
    }
    table.print(std::cout);
  }
  return 0;
}
