// Regenerates Fig. 10 (comparison with open-source kernels): simulated
// TFLOPS of SDK-CUDA-FP32, Markidis and EGEMM-TC on square sizes.
#include "bench_common.hpp"
#include "gemm/gemm_api.hpp"

using namespace egemm;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const tcsim::GpuSpec spec = bench::gpu_from_args(args);
  const auto sizes = bench::sizes_from_args(
      args, {1024, 2048, 4096, 8192, 16384},
      {1024, 2048, 3072, 4096, 6144, 8192, 12288, 16384});

  util::Table table("Fig. 10: open-source kernel comparison, square NxNxN on " +
                    spec.name + " (simulated TFLOPS)");
  table.set_header({"N", "SDK-CUDA-FP32", "Markidis", "EGEMM-TC", "vs SDK",
                    "vs Markidis"});
  std::vector<double> sdk_speedups, markidis_speedups;
  for (const std::int64_t n64 : sizes) {
    const auto n = static_cast<std::uint64_t>(n64);
    const double sdk =
        gemm::time_gemm(gemm::Backend::kSdkFp32, n, n, n, spec).tflops;
    const double markidis =
        gemm::time_gemm(gemm::Backend::kMarkidis, n, n, n, spec).tflops;
    const double egemm =
        gemm::time_gemm(gemm::Backend::kEgemmTC, n, n, n, spec).tflops;
    sdk_speedups.push_back(egemm / sdk);
    markidis_speedups.push_back(egemm / markidis);
    table.add_row({std::to_string(n), util::fmt_fixed(sdk, 2),
                   util::fmt_fixed(markidis, 2), util::fmt_fixed(egemm, 2),
                   util::fmt_speedup(egemm / sdk),
                   util::fmt_speedup(egemm / markidis)});
  }
  table.add_footnote(
      "paper: 11.18x mean vs SDK-CUDA-FP32, 3.0x mean vs Markidis");
  table.add_footnote("measured means: " +
                     util::fmt_speedup(bench::geomean(sdk_speedups)) +
                     " vs SDK, " +
                     util::fmt_speedup(bench::geomean(markidis_speedups)) +
                     " vs Markidis");
  table.print(std::cout);
  return 0;
}
