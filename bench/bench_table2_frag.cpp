// Regenerates Table 2 (per-warp memory access with and without intra-warp
// FRAG caching) from the tiling formulas, then shows the end-to-end effect
// of the optimization in the pipeline model (the ablation DESIGN.md §4
// calls out).
#include "bench_common.hpp"
#include "gemm/egemm.hpp"
#include "tcsim/instruction.hpp"

using namespace egemm;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const tcsim::GpuSpec spec = bench::gpu_from_args(args);
  const gemm::TileConfig cfg = gemm::table4_config();

  {
    // Table 2: shared-memory <-> FRAG/register traffic per warp per
    // main-loop iteration (one bk-deep block tile). Without FRAG caching
    // the A fragment is re-read for every TC-tile column (wn/tn times) and
    // the C tile streams through shared memory on every k'-step; with
    // caching A is read once per step and C never leaves the FRAG.
    const double wm = cfg.wm, wn = cfg.wn, wk = cfg.wk;
    const double steps = static_cast<double>(cfg.bk) / wk;
    const double a_rereads = wn / 16.0;  // TC-tile columns per warp tile
    util::Table table(
        "Table 2: per-warp shared<->FRAG traffic per block iteration, bytes "
        "(Table 4 tiling)");
    table.set_header({"type", "tile size (B)", "w/o FRAG caching",
                      "w/ FRAG caching"});
    table.add_row({"Alo (half)", util::fmt_fixed(2 * wm * wk, 0),
                   util::fmt_fixed(2 * wm * wk * steps * a_rereads, 0),
                   util::fmt_fixed(2 * wm * wk * steps, 0)});
    table.add_row({"C (fp32, resident in FRAG when cached)",
                   util::fmt_fixed(4 * wm * wn, 0),
                   util::fmt_fixed(2 * 4 * wm * wn * steps, 0),
                   util::fmt_fixed(0, 0)});
    table.add_footnote("Ahi, Blo, Bhi behave like Alo (paper Table 2 note)");
    table.add_footnote("paper's algebra: Alo 4wk*wm*wk/tk -> 2wm*wk; "
                       "C 4wm*wn*wk/tk -> 4wm*wn");
    table.print(std::cout);
  }

  {
    // Instruction-level consequence: LDS/STS volumes per main-loop
    // iteration under both strategies.
    tcsim::EgemmStreamOptions cached, uncached;
    uncached.frag_caching = false;
    const tcsim::IterationShape with = tcsim::egemm_iteration_shape(
        cfg.bm, cfg.bn, cfg.bk, cfg.wm, cfg.wn, cfg.wk, cached);
    const tcsim::IterationShape without = tcsim::egemm_iteration_shape(
        cfg.bm, cfg.bn, cfg.bk, cfg.wm, cfg.wn, cfg.wk, uncached);
    util::Table table("Shared-memory instructions per block iteration");
    table.set_header({"strategy", "LDS.32", "STS.128", "HMMA"});
    table.add_row({"w/ FRAG caching",
                   std::to_string(with.lds_per_step * with.steps),
                   std::to_string(with.sts),
                   std::to_string(with.hmma_per_step * with.steps)});
    table.add_row({"w/o FRAG caching",
                   std::to_string(without.lds_per_step * without.steps),
                   std::to_string(without.sts),
                   std::to_string(without.hmma_per_step * without.steps)});
    table.print(std::cout);
  }

  {
    util::Table table("End-to-end effect of FRAG caching on " + spec.name +
                      " (simulated TFLOPS, square)");
    table.set_header({"N", "w/o FRAG caching", "w/ FRAG caching", "speedup"});
    std::vector<double> speedups;
    for (const std::uint64_t n : {2048u, 4096u, 8192u}) {
      gemm::EgemmOptions off;
      off.frag_caching = false;
      const double with = gemm::egemm_timing(n, n, n, spec).tflops;
      const double without = gemm::egemm_timing(n, n, n, spec, off).tflops;
      speedups.push_back(with / without);
      table.add_row({std::to_string(n), util::fmt_fixed(without, 2),
                     util::fmt_fixed(with, 2),
                     util::fmt_speedup(with / without)});
    }
    table.add_footnote("measured mean: " +
                       util::fmt_speedup(bench::geomean(speedups)));
    table.print(std::cout);
  }
  return 0;
}
