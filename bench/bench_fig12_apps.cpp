// Regenerates Fig. 12 (GEMM-based scientific computing acceleration):
// kMeans (a) and kNN (b) end-to-end speedup of the EGEMM-TC backend over
// the cuBLAS-CUDA-FP32 open-source implementations, across data sizes.
// The cuBLAS baseline row is the 1.0x reference line of the figure.
#include "bench_common.hpp"
#include "apps/app_timing.hpp"
#include "apps/pca.hpp"

using namespace egemm;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const tcsim::GpuSpec spec = bench::gpu_from_args(args);
  const auto sizes = bench::sizes_from_args(args,
                                            {2048, 4096, 8192, 12288, 16384},
                                            {2048, 4096, 8192, 12288, 16384});

  {
    util::Table table("Fig. 12a: kMeans acceleration on " + spec.name +
                      " (dim=256, clusters=128, 20 Lloyd iterations)");
    table.set_header({"points", "cuBLAS total (ms)", "EGEMM total (ms)",
                      "speedup", "GEMM fraction (baseline)"});
    std::vector<double> speedups;
    for (const std::int64_t n : sizes) {
      apps::KMeansWorkload workload;
      workload.points = static_cast<std::uint64_t>(n);
      workload.dim = 256;
      workload.clusters = 128;
      const apps::AppTiming base =
          apps::kmeans_timing(workload, gemm::Backend::kCublasFp32, spec);
      const apps::AppTiming fast =
          apps::kmeans_timing(workload, gemm::Backend::kEgemmTC, spec);
      const double speedup = base.total_seconds / fast.total_seconds;
      speedups.push_back(speedup);
      table.add_row({std::to_string(n),
                     util::fmt_fixed(base.total_seconds * 1e3, 3),
                     util::fmt_fixed(fast.total_seconds * 1e3, 3),
                     util::fmt_speedup(speedup),
                     util::fmt_fixed(base.gemm_fraction, 2)});
    }
    table.add_footnote("paper: 1.3x at 2048 points rising to 1.82x at 16384, "
                       "1.9x mean; GEMM is ~67% of the baseline (§1)");
    table.add_footnote("measured mean: " +
                       util::fmt_speedup(bench::geomean(speedups)));
    table.print(std::cout);
  }

  {
    util::Table table("Fig. 12b: kNN acceleration on " + spec.name +
                      " (dim=256, k=20, queries = references)");
    table.set_header({"points", "cuBLAS total (ms)", "EGEMM total (ms)",
                      "speedup", "GEMM fraction (baseline)"});
    std::vector<double> speedups;
    for (const std::int64_t n : sizes) {
      apps::KnnWorkload workload;
      workload.references = workload.queries = static_cast<std::uint64_t>(n);
      workload.dim = 256;
      const apps::AppTiming base =
          apps::knn_timing(workload, gemm::Backend::kCublasFp32, spec);
      const apps::AppTiming fast =
          apps::knn_timing(workload, gemm::Backend::kEgemmTC, spec);
      const double speedup = base.total_seconds / fast.total_seconds;
      speedups.push_back(speedup);
      table.add_row({std::to_string(n),
                     util::fmt_fixed(base.total_seconds * 1e3, 3),
                     util::fmt_fixed(fast.total_seconds * 1e3, 3),
                     util::fmt_speedup(speedup),
                     util::fmt_fixed(base.gemm_fraction, 2)});
    }
    table.add_footnote("paper: 1.7x mean on kNN; GEMM is ~85% of the "
                       "baseline (§1)");
    table.add_footnote("measured mean: " +
                       util::fmt_speedup(bench::geomean(speedups)));
    table.print(std::cout);
  }

  {
    // Extension beyond the paper: a third GEMM-dominated application.
    util::Table table("Extension: PCA acceleration on " + spec.name +
                      " (dim=1024, 8 components, 30 power iterations)");
    table.set_header({"points", "cuBLAS total (ms)", "EGEMM total (ms)",
                      "speedup", "GEMM fraction (baseline)"});
    std::vector<double> speedups;
    for (const std::int64_t n : sizes) {
      apps::PcaWorkload workload;
      workload.points = static_cast<std::uint64_t>(n);
      const apps::AppTiming base =
          apps::pca_timing(workload, gemm::Backend::kCublasFp32, spec);
      const apps::AppTiming fast =
          apps::pca_timing(workload, gemm::Backend::kEgemmTC, spec);
      const double speedup = base.total_seconds / fast.total_seconds;
      speedups.push_back(speedup);
      table.add_row({std::to_string(n),
                     util::fmt_fixed(base.total_seconds * 1e3, 3),
                     util::fmt_fixed(fast.total_seconds * 1e3, 3),
                     util::fmt_speedup(speedup),
                     util::fmt_fixed(base.gemm_fraction, 2)});
    }
    table.add_footnote("measured mean: " +
                       util::fmt_speedup(bench::geomean(speedups)));
    table.print(std::cout);
  }
  return 0;
}
