// accuracy_audit: the differential accuracy-verification harness as a CLI
// (DESIGN.md §11). Fuzzes seed-reproducible adversarial GEMM cases, runs
// every functional path against the double-double oracle, and asserts each
// element lands inside its a-priori error-model bound.
//
//   build/examples/accuracy_audit [options]
//
//   --seed=N            master fuzz seed (default 1)
//   --cases=N           number of fuzz cases to plan (default 500)
//   --scheme=NAME       pin every case's engine differential to one ladder
//                       rung (e.g. recovery-3term); default round-robins
//                       the whole ladder
//   --time-budget-s=S   stop planning new cases after S seconds (default off)
//   --json[=PATH]       also write a JSON report (default AUDIT_accuracy.json)
//   --replay="DESC"     run one case from its replay descriptor and exit
//                       (e.g. --replay="seed=7 m=3 n=5 k=17 kind=uniform c=1")
//   --trace=PATH        record spans (oracle + per-path) to a Chrome
//                       trace_event JSON
//   --metrics           dump the observability registry to stdout at exit
//   --metrics-format=F  export the registry machine-readably at exit:
//                       json or openmetrics (Prometheus scrape format)
//   --metrics-out=PATH  destination for --metrics-format (default stdout)
//
// Exit status: 0 when every path satisfied its bound and the engines agree
// bitwise, 1 on any violation or engine mismatch, 2 on usage errors.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/scheme.hpp"
#include "gemm/egemm.hpp"
#include "gemm/plan.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "verify/differential.hpp"

#ifndef EGEMM_GIT_SHA
#define EGEMM_GIT_SHA "unknown"
#endif

using namespace egemm;
using namespace egemm::verify;

namespace {

int replay_one(const std::string& descriptor) {
  const std::optional<FuzzCase> fuzz = parse_case(descriptor);
  if (!fuzz) {
    std::fprintf(stderr, "accuracy_audit: cannot parse --replay case \"%s\"\n",
                 descriptor.c_str());
    return 2;
  }
  const CaseResult result = run_case(*fuzz);
  std::printf("case    : %s\n", format_case(*fuzz).c_str());
  std::printf("scheme  : %s\n", core::scheme_name(fuzz->scheme));
  std::printf("special : %s\n", result.special ? "yes (bounds skipped)" : "no");
  std::printf("engines : %s\n",
              result.engine_match ? "bitwise match" : "MISMATCH");
  bool ok = result.engine_match;
  if (!result.engine_match) {
    // Dump the first few differing elements with their bit patterns so an
    // engine divergence can be localized without a debugger. Re-run under
    // the case's own scheme, matching what the harness compared.
    const FuzzInputs inputs = generate_inputs(*fuzz);
    gemm::GemmContext& ctx = gemm::default_context();
    const gemm::Matrix packed =
        ctx.run_scheme(fuzz->scheme, inputs.a, inputs.b, inputs.c_ptr());
    const gemm::Matrix reference =
        ctx.run_scheme(fuzz->scheme, inputs.a, inputs.b, inputs.c_ptr(),
                       gemm::ExecEngine::kReference);
    int shown = 0;
    for (std::size_t i = 0; i < packed.rows() && shown < 8; ++i) {
      for (std::size_t j = 0; j < packed.cols() && shown < 8; ++j) {
        std::uint32_t pb, rb;
        std::memcpy(&pb, &packed.at(i, j), sizeof(pb));
        std::memcpy(&rb, &reference.at(i, j), sizeof(rb));
        if (pb != rb) {
          std::printf("  (%zu,%zu) packed=%g[%08x] reference=%g[%08x]\n", i,
                      j, static_cast<double>(packed.at(i, j)), pb,
                      static_cast<double>(reference.at(i, j)), rb);
          ++shown;
        }
      }
    }
  }
  if (!result.special) {
    for (std::size_t p = 0; p < kPathCount; ++p) {
      const PathObservation& obs = result.paths[p];
      std::printf(
          "%-15s max_ulp=%-10.3g violations=%zu worst_ratio=%.3g "
          "(measured=%.3g bound=%.3g)\n",
          path_name(static_cast<Path>(p)), obs.stats.max_ulp, obs.violations,
          obs.worst_ratio, obs.worst_measured, obs.worst_bound);
      if (obs.violations > 0) ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);

  if (const auto replay = args.value("replay")) return replay_one(*replay);

  const std::string trace_path = args.value_or("trace", std::string());
  obs::MetricsFormat metrics_format = obs::MetricsFormat::kJson;
  bool export_metrics = false;
  if (args.has_flag("metrics-format")) {
    const std::string format_text =
        args.value_or("metrics-format", std::string("json"));
    if (!obs::parse_metrics_format(format_text, metrics_format)) {
      std::fprintf(stderr,
                   "accuracy_audit: unknown --metrics-format \"%s\" "
                   "(expected json or openmetrics)\n",
                   format_text.c_str());
      return 2;
    }
    export_metrics = true;
  }
  obs::set_thread_name("main");
  if (!trace_path.empty()) obs::set_tracing(true);

  AuditOptions options;
  options.seed =
      static_cast<std::uint64_t>(args.value_or("seed", std::int64_t{1}));
  const std::int64_t cases = args.value_or("cases", std::int64_t{500});
  if (cases < 1) {
    std::fprintf(stderr, "accuracy_audit: --cases must be >= 1\n");
    return 2;
  }
  options.cases = static_cast<std::size_t>(cases);
  options.time_budget_seconds = args.value_or("time-budget-s", 0.0);
  if (const auto scheme_arg = args.value("scheme")) {
    const std::optional<core::SchemeId> scheme =
        core::parse_scheme_name(*scheme_arg);
    if (!scheme) {
      std::fprintf(stderr, "accuracy_audit: unknown --scheme \"%s\"; one of:",
                   scheme_arg->c_str());
      for (const core::SchemeId rung : core::scheme_ladder()) {
        std::fprintf(stderr, " %s", core::scheme_name(rung));
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    options.scheme = *scheme;
  }

  const AuditReport report = run_audit(options);

  if (!trace_path.empty()) {
    obs::set_tracing(false);
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "accuracy_audit: cannot write %s\n",
                   trace_path.c_str());
      return 2;
    }
    std::printf("wrote Chrome trace to %s (load in chrome://tracing)\n",
                trace_path.c_str());
  }

  util::Table table("Differential accuracy audit (seed " +
                    std::to_string(report.seed) + ", " +
                    std::to_string(report.cases_run) + "/" +
                    std::to_string(report.cases_planned) + " cases)");
  table.set_header({"path", "elements", "max ulp", "max rel", "violations",
                    "worst err/bound", "worst case"});
  for (std::size_t p = 0; p < kPathCount; ++p) {
    const PathSummary& summary = report.paths[p];
    table.add_row({path_name(static_cast<Path>(p)),
                   std::to_string(summary.observed.stats.count),
                   util::fmt_sci(summary.observed.stats.max_ulp, 3),
                   util::fmt_sci(summary.observed.stats.max_rel, 3),
                   std::to_string(summary.observed.violations),
                   util::fmt_sci(summary.observed.worst_ratio, 3),
                   summary.worst_case});
  }
  table.add_footnote("special cases (bounds skipped, IEEE propagation): " +
                     std::to_string(report.special_cases));
  table.add_footnote(std::string("engine packed==reference bitwise: ") +
                     (report.engine_mismatches == 0 ? "yes"
                                                    : "MISMATCHES SEEN") +
                     " (scheme: " + report.engine_scheme + ")");
  table.add_footnote(std::string("round-split max ulp < Markidis (paper "
                                 "Fig. 4 ordering): ") +
                     (report.round_below_markidis() ? "yes" : "NO"));
  table.print(std::cout);

  for (const std::string& failing : report.failing_cases) {
    std::printf("FAILING: %s\n", failing.c_str());
  }

  if (args.has_flag("json")) {
    const std::string path =
        args.value_or("json", std::string("AUDIT_accuracy.json"));
    if (!write_audit_json(path, report, EGEMM_GIT_SHA)) {
      std::fprintf(stderr, "accuracy_audit: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", path.c_str());
  }

  if (args.has_flag("metrics")) {
    std::printf("oracle time share: %.1f%% (%.3fs of %.3fs)\n",
                report.wall_seconds > 0.0
                    ? 100.0 * report.oracle_seconds / report.wall_seconds
                    : 0.0,
                report.oracle_seconds, report.wall_seconds);
    obs::dump_metrics(std::cout);
  }

  if (export_metrics) {
    const std::string metrics_out =
        args.value_or("metrics-out", std::string());
    if (!obs::write_metrics(metrics_out, metrics_format)) {
      std::fprintf(stderr, "accuracy_audit: cannot write metrics export%s%s\n",
                   metrics_out.empty() ? "" : " to ", metrics_out.c_str());
      return 2;
    }
    if (!metrics_out.empty()) {
      std::printf("wrote metrics export to %s\n", metrics_out.c_str());
    }
  }

  return report.ok() ? 0 : 1;
}
