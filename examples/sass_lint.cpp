// sass_lint: run the static-analysis passes over a SASS kernel and report
// diagnostics (DESIGN.md "SASS static analysis" has the code table).
//
//   build/examples/sass_lint [kernel.sass] [options]
//
// With a positional .sass file the kernel is parsed from the TuringAs-like
// text form; without one the default EGEMM kernel is generated, scheduled,
// and register-allocated, then round-tripped through the assembler before
// linting (so the lint always sees what the text form preserves).
//
//   --iters=N       loop trip count of the generated kernel (default 8)
//   --unroll=N      body trips the trace-based passes walk (default 3)
//   --naive         skip the §5.1 latency-hiding schedule
//   --no-regalloc   keep operands virtual (skips the register-bank pass)
//   --budget=N      per-thread register budget (default 255)
//   --emu=N         emulation instructions per HMMA position (default 4)
//   --physical      treat a parsed kernel's operands as physical R0..R255
//   --json          machine-readable report
//
// Exit status: 0 when no error-severity diagnostics, 1 otherwise (2 for
// usage/parse failures).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sass/analysis/passes.hpp"
#include "sass/assembler.hpp"
#include "sass/build.hpp"
#include "util/cli.hpp"

using namespace egemm;
using namespace egemm::sass;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);

  analysis::AnalysisOptions options;
  options.unroll =
      static_cast<int>(args.value_or("unroll", std::int64_t{3}));
  if (options.unroll < 1) {
    std::fprintf(stderr, "sass_lint: --unroll must be >= 1\n");
    return 2;
  }
  options.register_budget =
      static_cast<int>(args.value_or("budget", std::int64_t{255}));

  Kernel kernel;
  AllocationReport alloc;
  if (!args.positional().empty()) {
    const std::string& path = args.positional().front();
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "sass_lint: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const ParseResult parsed = parse_text(text.str());
    if (!parsed.success) {
      std::fprintf(stderr, "sass_lint: parse error in %s: %s\n", path.c_str(),
                   parsed.error.c_str());
      return 2;
    }
    kernel = parsed.kernel;
    options.physical_registers = args.has_flag("physical");
  } else {
    BuildOptions bopts;
    bopts.k_iterations =
        static_cast<std::uint32_t>(args.value_or("iters", std::int64_t{8}));
    bopts.emulation_instructions =
        static_cast<int>(args.value_or("emu", std::int64_t{4}));
    bopts.latency_hiding = !args.has_flag("naive");
    bopts.allocate = !args.has_flag("no-regalloc");
    bopts.register_budget = options.register_budget;
    BuiltKernel built = build_egemm_kernel(bopts);

    options.tile = bopts.tile;
    options.has_tile = true;
    if (bopts.allocate) {
      alloc = built.alloc;
      options.alloc = &alloc;
      options.physical_registers = alloc.success;
    }

    // Round-trip through the assembler so the lint sees exactly what the
    // text form preserves, as it would for a hand-written kernel.
    const ParseResult reparsed = parse_text(emit_text(built.kernel));
    if (!reparsed.success) {
      std::fprintf(stderr, "sass_lint: assembler round-trip failed: %s\n",
                   reparsed.error.c_str());
      return 2;
    }
    kernel = reparsed.kernel;
  }

  analysis::DiagnosticEngine engine;
  analysis::run_all_passes(kernel, options, engine);

  if (args.has_flag("json")) {
    std::printf("%s\n", engine.render_json().c_str());
  } else {
    std::printf("linting %s (%zu instructions, unroll %d)\n",
                kernel.name.empty() ? "<kernel>" : kernel.name.c_str(),
                kernel.size(), options.unroll);
    std::printf("%s", engine.render_text().c_str());
  }
  return engine.errors() == 0 ? 0 : 1;
}
