// sass_lint: run the static-analysis passes over a SASS kernel and report
// diagnostics (DESIGN.md "SASS static analysis" has the code table).
//
//   build/examples/sass_lint [kernel.sass] [options]
//
// With a positional .sass file the kernel is parsed from the TuringAs-like
// text form; without one the default EGEMM kernel is generated, scheduled,
// and register-allocated, then round-tripped through the assembler before
// linting (so the lint always sees what the text form preserves). The
// precision-dataflow certification (EG5xx) always runs on the scheduled
// kernel *before* register allocation -- physical register reuse merges
// unrelated def-use chains -- so its findings join the report regardless
// of --no-regalloc.
//
//   --iters=N       loop trip count of the generated kernel (default 8)
//   --unroll=N      body trips the trace-based passes walk (default 3)
//   --naive         skip the §5.1 latency-hiding schedule
//   --no-regalloc   keep operands virtual (skips the register-bank pass)
//   --budget=N      per-thread register budget (default 255)
//   --emu=N         emulation instructions per HMMA position (default 4)
//   --split=NAME    split method to certify against: round | truncate
//   --physical      treat a parsed kernel's operands as physical R0..R255
//   --precision     print the derived precision profile (text mode)
//   --all-tilings   lint every feasible tiling from the analytic solver
//   --json          machine-readable report, stamped with the git revision
//
// Exit status reflects the highest severity across every linted kernel:
// 0 clean (or notes only), 1 warnings, 2 errors, 3 usage/parse failures.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "model/analytic_model.hpp"
#include "model/solver.hpp"
#include "sass/analysis/passes.hpp"
#include "sass/assembler.hpp"
#include "sass/build.hpp"
#include "tcsim/gpu_spec.hpp"
#include "util/cli.hpp"

#ifndef EGEMM_GIT_SHA
#define EGEMM_GIT_SHA "unknown"
#endif

using namespace egemm;
using namespace egemm::sass;

namespace {

/// One linted kernel's findings, ready for either renderer.
struct LintReport {
  std::string name;
  std::string tile;  ///< TileConfig::describe(), empty for parsed kernels
  int emulation_instructions = 0;
  analysis::DiagnosticEngine engine;
  analysis::PrecisionProfile profile;
};

int severity_rank(const analysis::DiagnosticEngine& engine) {
  if (engine.errors() > 0) return 2;
  if (engine.count(analysis::Severity::kWarning) > 0) return 1;
  return 0;
}

std::vector<std::string> distinct_codes(
    const analysis::DiagnosticEngine& engine) {
  std::set<std::string> codes;
  for (const analysis::Diagnostic& d : engine.diagnostics()) {
    codes.insert(d.code);
  }
  return {codes.begin(), codes.end()};
}

void render_text(const LintReport& report, bool show_precision, int unroll) {
  std::printf("linting %s%s%s (unroll %d)\n",
              report.name.empty() ? "<kernel>" : report.name.c_str(),
              report.tile.empty() ? "" : " tile ",
              report.tile.c_str(), unroll);
  std::printf("%s", report.engine.render_text().c_str());
  if (show_precision) {
    std::printf("%s", report.profile.describe().c_str());
  }
}

std::string render_kernel_json(const LintReport& report) {
  std::string out = "{\"name\": \"" + report.name + "\"";
  if (!report.tile.empty()) out += ", \"tile\": \"" + report.tile + "\"";
  out += ", \"emulation_instructions\": " +
         std::to_string(report.emulation_instructions);
  out += ", \"codes\": [";
  const std::vector<std::string> codes = distinct_codes(report.engine);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + codes[i] + "\"";
  }
  out += "]";
  out += ", \"precision\": " + report.profile.render_json();
  out += ", \"report\": " + report.engine.render_json();
  out += "}";
  return out;
}

/// Lints one generated tiling through the full build pipeline; the build's
/// own engine already holds every pass's findings, EG5xx included.
LintReport lint_built(const BuildOptions& bopts) {
  LintReport report;
  BuiltKernel built = build_egemm_kernel(bopts);
  report.name = built.kernel.name;
  report.tile = bopts.tile.describe();
  report.emulation_instructions = bopts.emulation_instructions;
  report.profile = built.precision;
  for (const analysis::Diagnostic& d : built.diagnostics.diagnostics()) {
    report.engine.report(d.code, d.severity, d.loc, d.message);
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);

  analysis::AnalysisOptions options;
  options.unroll =
      static_cast<int>(args.value_or("unroll", std::int64_t{3}));
  if (options.unroll < 1) {
    std::fprintf(stderr, "sass_lint: --unroll must be >= 1\n");
    return 3;
  }
  options.register_budget =
      static_cast<int>(args.value_or("budget", std::int64_t{255}));
  const int emu = static_cast<int>(args.value_or("emu", std::int64_t{4}));
  const std::string split_name = args.value_or("split", std::string{"round"});
  core::SplitMethod split = core::SplitMethod::kRoundSplit;
  if (split_name == "truncate") {
    split = core::SplitMethod::kTruncateSplit;
  } else if (split_name != "round") {
    std::fprintf(stderr, "sass_lint: unknown --split=%s (round | truncate)\n",
                 split_name.c_str());
    return 3;
  }

  std::vector<LintReport> reports;
  if (!args.positional().empty()) {
    // Hand-written kernel: parse, then lint. The precision pass runs when
    // operands are virtual; --physical disables it (register reuse would
    // fake plane conflicts).
    const std::string& path = args.positional().front();
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "sass_lint: cannot open %s\n", path.c_str());
      return 3;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const ParseResult parsed = parse_text(text.str());
    if (!parsed.success) {
      std::fprintf(stderr, "sass_lint: parse error in %s: %s\n", path.c_str(),
                   parsed.error.c_str());
      return 3;
    }
    options.physical_registers = args.has_flag("physical");
    options.precision.enabled = true;
    options.precision.split = split;
    options.precision.emulation_instructions = emu;
    options.precision.documented_bits =
        analysis::documented_operation_bits(emu);

    LintReport report;
    report.name = parsed.kernel.name;
    report.emulation_instructions = emu;
    options.precision_profile = &report.profile;
    analysis::run_all_passes(parsed.kernel, options, report.engine);
    reports.push_back(std::move(report));
  } else if (args.has_flag("all-tilings")) {
    // Every feasible tiling of the analytic solver (Table 3 budget) --
    // the configurations a plan is allowed to pick from.
    const model::SolverResult solved =
        model::solve(model::budget_from_spec(tcsim::tesla_t4()));
    for (const model::SolverCandidate& candidate : solved.feasible) {
      BuildOptions bopts;
      bopts.tile = candidate.config;
      bopts.k_iterations =
          static_cast<std::uint32_t>(args.value_or("iters", std::int64_t{8}));
      bopts.emulation_instructions = emu;
      bopts.split = split;
      bopts.latency_hiding = !args.has_flag("naive");
      bopts.allocate = !args.has_flag("no-regalloc");
      bopts.register_budget = options.register_budget;
      bopts.lint_unroll = options.unroll;
      reports.push_back(lint_built(bopts));
    }
  } else {
    // Default kernel: build, then round-trip through the assembler so the
    // lint sees exactly what the text form preserves, as it would for a
    // hand-written kernel. EG5xx findings and the profile come from the
    // build (they are derived pre-regalloc and survive the round-trip as
    // @pa/@pb/@rnd/@term annotations).
    BuildOptions bopts;
    bopts.k_iterations =
        static_cast<std::uint32_t>(args.value_or("iters", std::int64_t{8}));
    bopts.emulation_instructions = emu;
    bopts.split = split;
    bopts.latency_hiding = !args.has_flag("naive");
    bopts.allocate = !args.has_flag("no-regalloc");
    bopts.register_budget = options.register_budget;
    bopts.lint_unroll = options.unroll;
    BuiltKernel built = build_egemm_kernel(bopts);

    options.tile = bopts.tile;
    options.has_tile = true;
    AllocationReport alloc;
    if (bopts.allocate) {
      alloc = built.alloc;
      options.alloc = &alloc;
      options.physical_registers = alloc.success;
    }

    const ParseResult reparsed = parse_text(emit_text(built.kernel));
    if (!reparsed.success) {
      std::fprintf(stderr, "sass_lint: assembler round-trip failed: %s\n",
                   reparsed.error.c_str());
      return 3;
    }

    LintReport report;
    report.name = reparsed.kernel.name;
    report.tile = bopts.tile.describe();
    report.emulation_instructions = emu;
    report.profile = built.precision;
    analysis::run_all_passes(reparsed.kernel, options, report.engine);
    for (const analysis::Diagnostic& d : built.diagnostics.diagnostics()) {
      if (d.code.rfind("EG5", 0) == 0) {
        report.engine.report(d.code, d.severity, d.loc, d.message);
      }
    }
    reports.push_back(std::move(report));
  }

  const bool show_precision = args.has_flag("precision");
  if (args.has_flag("json")) {
    std::string out = "{\"git_sha\": \"" EGEMM_GIT_SHA "\", \"kernels\": [";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i != 0) out += ", ";
      out += render_kernel_json(reports[i]);
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
  } else {
    for (const LintReport& report : reports) {
      render_text(report, show_precision, options.unroll);
    }
  }

  int rank = 0;
  for (const LintReport& report : reports) {
    rank = std::max(rank, severity_rank(report.engine));
  }
  return rank;
}
