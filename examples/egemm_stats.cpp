// egemm_stats: per-call telemetry reporter (DESIGN.md §17). Runs a sweep
// of GEMM shapes across emulation-ladder schemes, drains the structured
// call records the execute path deposits, and prints a per-shape x scheme
// table of latency quantiles, stage attribution (split/pack/mma/combine)
// and effective GFLOP/s.
//
//   build/examples/egemm_stats [options]
//
//   --shapes=LIST       comma-separated shapes, each "m:n:k" or a single
//                       "N" meaning N:N:N (default 128,256)
//   --schemes=LIST      comma-separated ladder rungs (core/scheme.hpp
//                       names) or "all" (default all)
//   --reps=N            executes per shape x scheme (default 50)
//   --batch=N           run each rep as ONE grouped execute of N copies
//                       (gemm/plan.hpp execute_grouped) instead of a
//                       single call; the table then attributes latency
//                       per batch class (batch id tagged records) and
//                       shows the covered GEMM count (default 0 = single)
//   --engine=E          packed | reference (default packed)
//   --seed=N            input RNG seed (default 1)
//   --json              print the summary as JSON instead of the table
//   --metrics-format=F  also export the metrics registry: json|openmetrics
//   --metrics-out=PATH  destination for --metrics-format (default stdout)
//
// Latency quantiles come from the log-linear accumulator and are within
// obs::kLatencyQuantileRelErr (6.25%) of the exact sorted-sample values.
// Exit status: 0 on success, 2 on usage errors.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "gemm/gemm_api.hpp"
#include "gemm/plan.hpp"
#include "obs/callrec.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "simd/isa.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace egemm;

namespace {

struct Shape {
  std::size_t m = 0, n = 0, k = 0;
};

/// "m:n:k" or a bare "N" (cube). nullopt on anything else.
std::optional<Shape> parse_shape(const std::string& token) {
  Shape shape;
  unsigned long long m = 0, n = 0, k = 0;
  char tail = '\0';
  if (std::sscanf(token.c_str(), "%llu:%llu:%llu%c", &m, &n, &k, &tail) == 3) {
    shape.m = m;
    shape.n = n;
    shape.k = k;
  } else if (std::sscanf(token.c_str(), "%llu%c", &m, &tail) == 1) {
    shape.m = shape.n = shape.k = m;
  } else {
    return std::nullopt;
  }
  if (shape.m == 0 || shape.n == 0 || shape.k == 0) return std::nullopt;
  return shape;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Same id -> name mapping the bench harness uses (bench_common.hpp);
/// duplicated here because examples do not include the bench tree.
obs::CallJsonNames stats_json_names() {
  obs::CallJsonNames names;
  names.scheme = [](std::int8_t s) -> const char* {
    if (s < 0 || static_cast<std::size_t>(s) >= core::kSchemeCount) {
      return "custom";
    }
    return core::scheme_name(static_cast<core::SchemeId>(s));
  };
  names.backend = [](std::uint8_t b) -> const char* {
    return b <= static_cast<std::uint8_t>(gemm::Backend::kDekker)
               ? gemm::backend_name(static_cast<gemm::Backend>(b))
               : "?";
  };
  names.engine = [](std::uint8_t e) -> const char* {
    return static_cast<gemm::ExecEngine>(e) == gemm::ExecEngine::kPacked
               ? "packed"
               : "reference";
  };
  names.isa = [](std::uint8_t i) -> const char* {
    return i < static_cast<std::uint8_t>(simd::kIsaLevelCount)
               ? simd::isa_name(static_cast<simd::IsaLevel>(i))
               : "?";
  };
  return names;
}

std::string pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? "-"
                    : util::fmt_fixed(100.0 * static_cast<double>(part) /
                                          static_cast<double>(whole),
                                      1);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);

  const std::int64_t reps = args.value_or("reps", std::int64_t{50});
  if (reps < 1) {
    std::fprintf(stderr, "egemm_stats: --reps must be >= 1\n");
    return 2;
  }
  const std::int64_t batch = args.value_or("batch", std::int64_t{0});
  if (batch < 0) {
    std::fprintf(stderr, "egemm_stats: --batch must be >= 0\n");
    return 2;
  }
  const auto seed =
      static_cast<std::uint64_t>(args.value_or("seed", std::int64_t{1}));

  const std::string engine_text =
      args.value_or("engine", std::string("packed"));
  gemm::ExecEngine engine = gemm::ExecEngine::kPacked;
  if (engine_text == "reference") {
    engine = gemm::ExecEngine::kReference;
  } else if (engine_text != "packed") {
    std::fprintf(stderr,
                 "egemm_stats: unknown --engine \"%s\" "
                 "(expected packed or reference)\n",
                 engine_text.c_str());
    return 2;
  }

  std::vector<Shape> shapes;
  for (const std::string& token :
       split_list(args.value_or("shapes", std::string("128,256")))) {
    const std::optional<Shape> shape = parse_shape(token);
    if (!shape) {
      std::fprintf(stderr,
                   "egemm_stats: cannot parse shape \"%s\" "
                   "(expected m:n:k or N)\n",
                   token.c_str());
      return 2;
    }
    shapes.push_back(*shape);
  }

  std::vector<core::SchemeId> schemes;
  const std::string schemes_text =
      args.value_or("schemes", std::string("all"));
  if (schemes_text == "all") {
    for (const core::SchemeId rung : core::scheme_ladder()) {
      schemes.push_back(rung);
    }
  } else {
    for (const std::string& token : split_list(schemes_text)) {
      const std::optional<core::SchemeId> rung =
          core::parse_scheme_name(token);
      if (!rung) {
        std::fprintf(stderr, "egemm_stats: unknown scheme \"%s\"; one of:",
                     token.c_str());
        for (const core::SchemeId known : core::scheme_ladder()) {
          std::fprintf(stderr, " %s", core::scheme_name(known));
        }
        std::fprintf(stderr, " all\n");
        return 2;
      }
      schemes.push_back(*rung);
    }
  }

  obs::MetricsFormat metrics_format = obs::MetricsFormat::kJson;
  bool export_metrics = false;
  if (args.has_flag("metrics-format")) {
    const std::string format_text =
        args.value_or("metrics-format", std::string("json"));
    if (!obs::parse_metrics_format(format_text, metrics_format)) {
      std::fprintf(stderr,
                   "egemm_stats: unknown --metrics-format \"%s\" "
                   "(expected json or openmetrics)\n",
                   format_text.c_str());
      return 2;
    }
    export_metrics = true;
  }

  if constexpr (!obs::kEnabled) {
    std::fprintf(stderr,
                 "egemm_stats: this binary was built with "
                 "EGEMM_OBSERVABILITY=OFF; no call records are collected\n");
  }

  // Fresh record window: the sweep below is the only thing summarized.
  obs::clear_call_records();

  gemm::GemmContext ctx;
  for (const Shape& shape : shapes) {
    const gemm::Matrix a =
        gemm::random_matrix(shape.m, shape.k, -1.0f, 1.0f,
                            /*seed=*/seed);
    const gemm::Matrix b =
        gemm::random_matrix(shape.k, shape.n, -1.0f, 1.0f,
                            /*seed=*/seed + 1);
    for (const core::SchemeId scheme : schemes) {
      if (batch > 0) {
        // One grouped execute of `batch` copies per rep: the records it
        // deposits carry a batch id and the per-class item count, which is
        // what the batch/gemms columns below attribute.
        const std::shared_ptr<const gemm::GemmPlan> plan =
            ctx.plan_scheme(scheme, shape.m, shape.n, shape.k, engine);
        std::vector<gemm::Matrix> d(static_cast<std::size_t>(batch));
        std::vector<gemm::GroupedGemm> work(d.size());
        for (std::size_t i = 0; i < d.size(); ++i) {
          work[i] = gemm::GroupedGemm{plan, &a, &b, nullptr, &d[i]};
        }
        for (std::int64_t rep = 0; rep < reps; ++rep) {
          ctx.execute_grouped(work);
        }
      } else {
        for (std::int64_t rep = 0; rep < reps; ++rep) {
          const gemm::Matrix d =
              ctx.run_scheme(scheme, a, b, nullptr, engine);
          static_cast<void>(d);
        }
      }
    }
  }

  const std::vector<obs::CallRecord> records = obs::drain_call_records();
  const obs::CallSummary summary =
      obs::summarize_calls({records.data(), records.size()});

  if (args.has_flag("json")) {
    std::string out =
        obs::call_summary_json_block(summary, "", stats_json_names());
    out += "\n";
    std::fwrite(out.data(), 1, out.size(), stdout);
  } else {
    util::Table table("per-call telemetry (" + std::to_string(reps) +
                      " reps per shape x scheme, engine " + engine_text +
                      ")");
    table.set_header({"shape", "scheme", "batch", "calls", "gemms", "hit%",
                      "p50 us", "p90 us", "p99 us", "GFLOP/s", "split%",
                      "pack%", "mma%", "comb%", "cov%"});
    const obs::CallJsonNames names = stats_json_names();
    for (const obs::CallClassSummary& cls : summary.classes) {
      const std::string shape = std::to_string(cls.m) + "x" +
                                std::to_string(cls.n) + "x" +
                                std::to_string(cls.k);
      table.add_row(
          {shape, names.scheme(cls.scheme), std::to_string(cls.batch),
           std::to_string(cls.calls), std::to_string(cls.gemms),
           pct(cls.plan_hits, cls.calls),
           util::fmt_fixed(
               static_cast<double>(cls.latency.quantile(0.50)) / 1e3, 1),
           util::fmt_fixed(
               static_cast<double>(cls.latency.quantile(0.90)) / 1e3, 1),
           util::fmt_fixed(
               static_cast<double>(cls.latency.quantile(0.99)) / 1e3, 1),
           util::fmt_fixed(cls.gflops(), 2), pct(cls.split_ns, cls.total_ns),
           pct(cls.pack_ns, cls.total_ns), pct(cls.mma_ns, cls.total_ns),
           pct(cls.combine_ns, cls.total_ns),
           pct(cls.split_ns + cls.pack_ns + cls.mma_ns + cls.combine_ns,
               cls.total_ns)});
    }
    std::uint64_t batched_records = 0;
    for (const obs::CallClassSummary& cls : summary.classes) {
      batched_records += cls.batched_records;
    }
    table.add_footnote("records aggregated: " +
                       std::to_string(summary.records) + " (" +
                       std::to_string(batched_records) +
                       " batch-tagged), dropped at full rings: " +
                       std::to_string(summary.dropped));
    // Plan-cache health for the sweep's context: the per-class hit% column
    // above covers record-level lookups; this is the cache itself.
    {
      const std::uint64_t hits = ctx.plan_hits();
      const std::uint64_t misses = ctx.plan_misses();
      table.add_footnote(
          "plan cache: " + std::to_string(ctx.cached_plans()) + "/" +
          std::to_string(ctx.plan_capacity()) + " occupied, " +
          std::to_string(hits) + " hits / " + std::to_string(misses) +
          " misses (" + pct(hits, hits + misses) + "% hit rate), " +
          std::to_string(ctx.plan_evictions()) + " evictions");
    }
    // Tuning-cache consults (gemm.tune.* counters): nonzero hit means a
    // tuning file steered these plans; fallback names why not.
    {
      std::uint64_t tune_hit = 0, tune_miss = 0, tune_fallback = 0;
      for (const obs::CounterSample& counter :
           obs::registry().snapshot().counters) {
        if (counter.name == "gemm.tune.hit") tune_hit = counter.value;
        if (counter.name == "gemm.tune.miss") tune_miss = counter.value;
        if (counter.name == "gemm.tune.fallback") {
          tune_fallback = counter.value;
        }
      }
      table.add_footnote("tuning cache: " + std::to_string(tune_hit) +
                         " hits, " + std::to_string(tune_miss) + " misses, " +
                         std::to_string(tune_fallback) + " fallbacks");
    }
    table.add_footnote(std::string("active ISA tier: ") +
                       simd::active_isa_name());
    table.add_footnote(
        "quantile relative error bound: " +
        util::fmt_fixed(100.0 * obs::kLatencyQuantileRelErr, 2) +
        "% (log-linear histogram, 16 sub-buckets per octave)");
    table.print(std::cout);
  }

  if (export_metrics) {
    const std::string metrics_out =
        args.value_or("metrics-out", std::string());
    if (!obs::write_metrics(metrics_out, metrics_format)) {
      std::fprintf(stderr, "egemm_stats: cannot write metrics export%s%s\n",
                   metrics_out.empty() ? "" : " to ", metrics_out.c_str());
      return 2;
    }
    if (!metrics_out.empty()) {
      std::printf("wrote metrics export to %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
