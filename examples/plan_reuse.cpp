// Plan reuse: the plan-once, execute-many API (gemm/plan.hpp) next to the
// one-shot entry point.
//
//   build/examples/plan_reuse [--n=256] [--calls=50] [--metrics]
//
// A GemmPlan freezes everything shape-dependent -- tile configuration,
// combo schedule, workspace sizing -- so repeated same-shape calls skip
// plan resolution, reuse the split/pack workspaces through the context
// pool, and write into a caller-owned output matrix with no per-call heap
// allocation. This program times three variants of the same GEMM sequence:
//
//   cold plan    a fresh GemmContext per call (plan rebuilt every time),
//   one-shot     egemm_multiply against the shared default context (cached
//                plan, but a freshly allocated D per call),
//   planned      plan once + execute into a reused D (the steady state).
//
// --metrics dumps the observability registry, where gemm.plan.hit /
// gemm.plan.miss show the cache doing its work.
#include <cstdio>
#include <iostream>

#include "gemm/gemm_api.hpp"
#include "gemm/plan.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace {

double now_seconds() {
  return static_cast<double>(egemm::obs::monotonic_ns()) * 1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace egemm;
  const util::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.value_or("n", std::int64_t{256}));
  const auto calls =
      static_cast<int>(args.value_or("calls", std::int64_t{50}));
  obs::set_thread_name("main");

  const gemm::Matrix a = gemm::random_matrix(n, n, -1.0f, 1.0f, /*seed=*/1);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1.0f, 1.0f, /*seed=*/2);

  // Cold plan: a fresh context per call pays plan construction (tile
  // resolution against the analytic model, workspace sizing) every time.
  double cold_seconds = 0.0;
  gemm::Matrix cold_result;
  {
    const double start = now_seconds();
    for (int i = 0; i < calls; ++i) {
      gemm::GemmContext fresh;
      cold_result = fresh.run(gemm::Backend::kEgemmTC, a, b);
    }
    cold_seconds = now_seconds() - start;
  }

  // One-shot: the public entry point; the default context caches the plan
  // but every call still allocates its own result matrix.
  double oneshot_seconds = 0.0;
  gemm::Matrix oneshot_result;
  {
    (void)gemm::egemm_multiply(a, b);  // warm the shared cache
    const double start = now_seconds();
    for (int i = 0; i < calls; ++i) {
      oneshot_result = gemm::egemm_multiply(a, b);
    }
    oneshot_seconds = now_seconds() - start;
  }

  // Planned: plan once, execute many into a caller-owned D. After the
  // first call the workspaces are warm and the loop never touches the
  // heap (asserted in debug builds).
  gemm::GemmContext ctx;
  const auto plan = ctx.plan(gemm::Backend::kEgemmTC, n, n, n);
  gemm::Matrix d;
  plan->execute(ctx, a, b, nullptr, d);  // warm-up call
  double planned_seconds = 0.0;
  {
    const double start = now_seconds();
    for (int i = 0; i < calls; ++i) {
      plan->execute(ctx, a, b, nullptr, d);
    }
    planned_seconds = now_seconds() - start;
  }

  // The three variants compute the same numbers (bit-identical paths).
  std::printf("plan-once vs one-shot, %zux%zux%zu, %d calls\n", n, n, n,
              calls);
  std::printf("  %-22s %10.3f ms/call\n", "cold plan (fresh ctx)",
              cold_seconds / calls * 1e3);
  std::printf("  %-22s %10.3f ms/call\n", "one-shot (cached plan)",
              oneshot_seconds / calls * 1e3);
  std::printf("  %-22s %10.3f ms/call\n", "planned (reused D)",
              planned_seconds / calls * 1e3);
  if (planned_seconds > 0.0) {
    std::printf("  planned is %.2fx vs one-shot, %.2fx vs cold plan\n",
                oneshot_seconds / planned_seconds,
                cold_seconds / planned_seconds);
  }
  std::printf("  context: %llu plan hits, %llu misses, %zu pooled "
              "workspaces\n",
              static_cast<unsigned long long>(ctx.plan_hits()),
              static_cast<unsigned long long>(ctx.plan_misses()),
              ctx.pooled_workspaces());

  const float checksum = d.size() != 0 ? d.at(0, 0) : 0.0f;
  std::printf("  d[0][0] = %.6f (same on all three paths: %s)\n",
              static_cast<double>(checksum),
              cold_result.at(0, 0) == checksum &&
                      oneshot_result.at(0, 0) == checksum
                  ? "yes"
                  : "NO");

  if (args.has_flag("metrics")) {
    std::cout << "\n-- metrics ------------------------------------------\n";
    obs::dump_metrics(std::cout);
  }
  return 0;
}
