// The SASS toolchain end to end (§5, artifact's TuringAs layer): generate
// the EGEMM-TC kernel, print its assembly, run the latency-hiding schedule
// pass, verify hazards, allocate physical registers, and predict cycles on
// the pipeline model.
//
//   build/examples/kernel_inspector [--iters=8] [--full-listing]
#include <cstdio>

#include "sass/assembler.hpp"
#include "sass/codegen.hpp"
#include "sass/lower.hpp"
#include "sass/regalloc.hpp"
#include "sass/schedule.hpp"
#include "sass/verifier.hpp"
#include "tcsim/pipeline.hpp"
#include "util/cli.hpp"

using namespace egemm;
using namespace egemm::sass;

namespace {

void print_excerpt(const Kernel& kernel, std::size_t lines) {
  const std::string text = emit_text(kernel);
  std::size_t printed = 0, pos = 0;
  while (printed < lines && pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::printf("%s\n", text.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++printed;
  }
  if (pos < text.size()) std::printf("  ... (%zu instructions total)\n",
                                     kernel.size());
}

void report(const char* label, const Kernel& kernel, int warps,
            const tcsim::GpuSpec& spec, bool full) {
  std::printf("== %s ==\n", label);
  print_excerpt(kernel, full ? 100000 : 28);
  const auto violations = verify_kernel(kernel, 3);
  std::printf("hazard verification: %s\n",
              violations.empty() ? "clean"
                                 : (std::to_string(violations.size()) +
                                    " violations, first: " +
                                    violations.front().message)
                                       .c_str());
  const tcsim::SimStats stats =
      tcsim::simulate_block(lower_kernel(kernel, warps), spec);
  std::printf("predicted block time: %.0f cycles, tensor-pipe utilization "
              "%.1f%%\n\n",
              stats.cycles,
              100.0 * stats.port_utilization(tcsim::Port::kTensor));
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const bool full = args.has_flag("full-listing");

  CodegenParams params;
  params.k_iterations =
      static_cast<std::uint32_t>(args.value_or("iters", std::int64_t{8}));
  const int warps = params.tile.warps_per_block();

  Kernel naive = generate_egemm_kernel(params);
  report("naive kernel (CUDA-level order)", naive, warps, spec, full);

  Kernel fast = naive;
  const ScheduleStats sched = schedule_latency_hiding(fast);
  std::printf("schedule pass: hoisted %zu LDS, spread %zu LDG, +%d "
              "double-buffer registers\n\n",
              sched.hoisted_lds, sched.spread_ldg, sched.added_registers);
  report("scheduled kernel (Fig. 6 order)", fast, warps, spec, full);

  const AllocationReport alloc = allocate_kernel_registers(fast);
  if (alloc.success) {
    std::printf("register allocation (§5.2 stage reuse): %d physical "
                "registers (naive layout would need %d); %d values live "
                "across stages, %d overlaid\n",
                alloc.physical_registers, alloc.naive_registers,
                alloc.global_values, alloc.overlay_values);
    std::printf("(the paper's hand-written kernel, with all its scalar "
                "bookkeeping, lands at 232 of 256)\n");
  } else {
    std::printf("register allocation failed: %s\n",
                alloc.errors.empty() ? "?" : alloc.errors[0].c_str());
  }

  // Round-trip through the assembler, as TuringAs does for the artifact.
  const ParseResult reparsed = parse_text(emit_text(fast));
  std::printf("assembler round-trip: %s\n\n",
              reparsed.success ? "exact" : reparsed.error.c_str());

  // Port timelines of one steady-state stretch: the Fig. 6 picture. In the
  // naive order the tensor row shows gaps at every step boundary; in the
  // scheduled order it runs solid while MIO/global fill in underneath.
  const double window_from = 15000, window_to = 21000;
  {
    const tcsim::TraceResult trace =
        tcsim::simulate_block_trace(lower_kernel(naive, warps), spec);
    std::printf("naive order, steady state:\n%s\n",
                tcsim::render_timeline(trace, window_from, window_to).c_str());
  }
  {
    const tcsim::TraceResult trace =
        tcsim::simulate_block_trace(lower_kernel(fast, warps), spec);
    std::printf("scheduled order, steady state:\n%s",
                tcsim::render_timeline(trace, window_from, window_to).c_str());
  }
  return 0;
}
