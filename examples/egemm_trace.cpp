// egemm_trace: guided walkthrough of the observability layer (DESIGN.md
// §12). Runs one instrumented EGEMM multiply with span tracing enabled,
// prints a per-stage wall-time summary straight from the recorded spans,
// dumps the metrics registry, and writes the Chrome trace_event JSON.
//
//   build/examples/egemm_trace [--n=512] [--engine=packed|reference]
//                              [--trace=egemm_trace.json]
//
// Open the emitted file in chrome://tracing or https://ui.perfetto.dev to
// see split -> pack -> mma -> combine laid out per worker-thread track.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "gemm/egemm.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace egemm;
  const util::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.value_or("n", std::int64_t{512}));
  const std::string engine = args.value_or("engine", std::string("packed"));
  const std::string trace_path =
      args.value_or("trace", std::string("egemm_trace.json"));
  if (engine != "packed" && engine != "reference") {
    std::fprintf(stderr, "egemm_trace: --engine must be packed|reference\n");
    return 2;
  }
  if (!obs::kEnabled) {
    std::fprintf(stderr,
                 "egemm_trace: built with EGEMM_OBSERVABILITY=OFF; "
                 "reconfigure with -DEGEMM_OBSERVABILITY=ON\n");
    return 2;
  }

  obs::set_thread_name("main");

  const gemm::Matrix a = gemm::random_matrix(n, n, -1.0f, 1.0f, /*seed=*/1);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1.0f, 1.0f, /*seed=*/2);

  gemm::EgemmOptions options;
  options.engine = engine == "packed" ? gemm::ExecEngine::kPacked
                                      : gemm::ExecEngine::kReference;

  obs::set_tracing(true);
  const gemm::Matrix d = gemm::egemm_multiply(a, b, nullptr, options);
  obs::set_tracing(false);
  std::printf("EGEMM %zu^3 on the %s engine, d(0,0) = %g\n\n", n,
              engine.c_str(), static_cast<double>(d.at(0, 0)));

  // Per-stage roll-up straight from the recorded spans: the same events the
  // Chrome trace carries, aggregated by name across all thread tracks.
  struct StageTotal {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, StageTotal> stages;
  std::uint64_t tracks = 0;
  for (const auto& [tid, name] : obs::trace_thread_names()) {
    static_cast<void>(tid);
    static_cast<void>(name);
    ++tracks;
  }
  for (const obs::TraceEvent& event : obs::collect_trace()) {
    StageTotal& stage = stages[event.name];
    ++stage.count;
    stage.total_ns += event.dur_ns;
  }
  util::Table table("Span roll-up (" + std::to_string(tracks) +
                    " thread tracks)");
  table.set_header({"span", "count", "total ms"});
  for (const auto& [name, stage] : stages) {
    table.add_row({name, std::to_string(stage.count),
                   util::fmt_fixed(static_cast<double>(stage.total_ns) / 1e6,
                                   3)});
  }
  if (const std::uint64_t dropped = obs::dropped_trace_events()) {
    table.add_footnote("dropped events (buffer cap): " +
                       std::to_string(dropped));
  }
  table.print(std::cout);

  std::printf("\nmetrics registry:\n");
  obs::dump_metrics(std::cout);

  if (!obs::write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "egemm_trace: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf(
      "\nwrote Chrome trace to %s -- open chrome://tracing or "
      "https://ui.perfetto.dev and drop the file in.\n",
      trace_path.c_str());
  return 0;
}
