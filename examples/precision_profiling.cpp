// The generalized emulation-design workflow (Fig. 2) as a walkthrough:
// profile an undocumented specialized-core primitive, certify its
// operation precision, and let that certification pick the emulation
// algorithm -- including what happens when the hardware is NOT what you
// hoped (the broken-core path).
//
//   build/examples/precision_profiling [--trials=5000]
#include <cstdio>

#include "core/emulation.hpp"
#include "core/profiling.hpp"
#include "fp/float_bits.hpp"
#include "tcsim/tensor_core.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace egemm;

namespace {

void describe(const core::ProfilingReport& report) {
  for (const auto& probe : report.probes) {
    std::printf("  probe %-8s worst bitwise match %2d bits, worst "
                "scale-relative %.1f bits%s\n",
                probe.name.c_str(), probe.min_matching_mantissa_bits,
                probe.min_scale_relative_bits,
                probe.bitwise_identical_always ? " (bitwise identical)" : "");
  }
  if (report.licenses_extended_precision()) {
    std::printf("  => operation precision certified at %d mantissa bits: the "
                "lightweight 4-instruction design (Alg. 1) is sound.\n\n",
                report.certified_mantissa_bits);
  } else if (report.certified()) {
    std::printf("  => certified only '%s': fall back to the Dekker-style "
                "half-only emulation (16 instructions).\n\n",
                report.certified_probe.c_str());
  } else {
    std::printf("  => nothing certified: do not emulate on this core.\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  core::ProfilingConfig config;
  config.trials =
      static_cast<std::uint64_t>(args.value_or("trials", std::int64_t{5000}));

  std::printf("step 1 -- randomized probing (a sample trial):\n");
  const core::ProfilingSample s = core::sample_trial(2021);
  std::printf("  d_HALF  = %.8f (%s)\n", static_cast<double>(s.half_result),
              fp::f32_hex(s.half_result).c_str());
  std::printf("  d_FLOAT = %.8f (%s)\n", static_cast<double>(s.single_result),
              fp::f32_hex(s.single_result).c_str());
  std::printf("  d_TC    = %.8f (%s)\n\n", static_cast<double>(s.tc_result),
              fp::f32_hex(s.tc_result).c_str());

  std::printf("step 2 -- profile the Tensor Core over %llu trials:\n",
              static_cast<unsigned long long>(config.trials));
  describe(core::profile_tensor_core(config));

  std::printf("step 3 -- the same workflow on a core that secretly "
              "accumulates in binary16:\n");
  describe(core::profile_core(
      [](std::span<const fp::Half> a, std::span<const fp::Half> b, float c) {
        return tcsim::broken_tc_dot(a, b, c);
      },
      config));

  std::printf("step 4 -- the certified design in action on one tile:\n");
  core::FragmentF32 a;
  core::FragmentF32B b;
  tcsim::FragmentAcc c, d;
  util::Xoshiro256 rng(7);
  for (auto& v : a.flat()) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : b.flat()) v = rng.uniform(-1.0f, 1.0f);
  c.fill(0.0f);
  core::egemm_mma_tile(d, a, b, c);
  tcsim::FragmentAcc half_d;
  core::half_mma_tile(half_d, a, b, c);
  double ref = 0.0, emu_err = 0.0, half_err = 0.0;
  for (int k = 0; k < tcsim::kTcK; ++k) {
    ref += static_cast<double>(a.at(0, k)) * static_cast<double>(b.at(k, 0));
  }
  emu_err = std::abs(static_cast<double>(d.at(0, 0)) - ref);
  half_err = std::abs(static_cast<double>(half_d.at(0, 0)) - ref);
  std::printf("  element (0,0): exact %.9f, Alg.1 error %.2e, plain-half "
              "error %.2e\n",
              ref, emu_err, half_err);
  return 0;
}
