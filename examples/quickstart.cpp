// Quickstart: extended-precision GEMM on the (simulated) Tensor Core in a
// dozen lines.
//
//   build/examples/quickstart [--n=512] [--trace=out.json] [--metrics]
//              [--metrics-format=json|openmetrics] [--metrics-out=FILE]
//
// --trace=PATH records the pipeline spans (split/pack/mma/combine) and
// writes a Chrome trace_event JSON; --metrics dumps the observability
// registry at exit; --metrics-format exports the registry machine-readably
// (to stdout, or to --metrics-out=FILE for a Prometheus scrape target).
//
// 1. make two binary32 matrices,
// 2. multiply them with EGEMM-TC (Algorithm 1: round-split + 4 Tensor Core
//    instructions per tile),
// 3. compare the error against plain half-precision Tensor Core compute,
// 4. ask the performance model what this costs on a Tesla T4.
#include <cstdio>
#include <iostream>
#include <string>

#include "gemm/gemm_api.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace egemm;
  const util::CliArgs args(argc, argv);
  const auto n = static_cast<std::size_t>(args.value_or("n", std::int64_t{512}));
  const std::string trace_path = args.value_or("trace", std::string());
  obs::MetricsFormat metrics_format = obs::MetricsFormat::kJson;
  bool export_metrics = false;
  if (args.has_flag("metrics-format")) {
    const std::string text =
        args.value_or("metrics-format", std::string("json"));
    if (!obs::parse_metrics_format(text, metrics_format)) {
      std::fprintf(stderr,
                   "quickstart: unknown --metrics-format '%s' "
                   "(expected json or openmetrics)\n",
                   text.c_str());
      return 1;
    }
    export_metrics = true;
  }
  obs::set_thread_name("main");
  if (!trace_path.empty()) obs::set_tracing(true);

  // Random inputs in [-1, +1], the paper's evaluation distribution.
  const gemm::Matrix a = gemm::random_matrix(n, n, -1.0f, 1.0f, /*seed=*/1);
  const gemm::Matrix b = gemm::random_matrix(n, n, -1.0f, 1.0f, /*seed=*/2);

  // The one-call public API. Everything else (split, tensorization, FRAG
  // caching) happens behind it.
  const gemm::Matrix d = gemm::egemm_multiply(a, b);

  // How good is it? Compare against a binary64 reference, next to the two
  // obvious alternatives.
  const gemm::MatrixD reference = gemm::gemm_reference(a, b, nullptr);
  const double egemm_err = gemm::max_abs_error(reference, d);
  const double half_err =
      gemm::max_abs_error(reference, gemm::gemm_tc_half(a, b));
  const double fp32_err =
      gemm::max_abs_error(reference, gemm::sgemm_fp32(a, b));

  std::printf("N = %zu, max error vs binary64 reference:\n", n);
  std::printf("  EGEMM-TC (extended precision): %.3e\n", egemm_err);
  std::printf("  cuBLAS-TC-Half (what naive TC use gets): %.3e  (%.0fx worse)\n",
              half_err, half_err / egemm_err);
  std::printf("  cuBLAS-CUDA-FP32 (the precision target): %.3e\n\n", fp32_err);

  // What would it cost on real hardware? Ask the calibrated model.
  const tcsim::GpuSpec t4 = tcsim::tesla_t4();
  const std::uint64_t big = 8192;
  const gemm::KernelTiming egemm_t =
      gemm::time_gemm(gemm::Backend::kEgemmTC, big, big, big, t4);
  const gemm::KernelTiming fp32_t =
      gemm::time_gemm(gemm::Backend::kCublasFp32, big, big, big, t4);
  std::printf("modeled on %s at %llu^3:\n", t4.name.c_str(),
              static_cast<unsigned long long>(big));
  std::printf("  EGEMM-TC:         %6.2f TFLOPS (%.1f ms)\n", egemm_t.tflops,
              egemm_t.seconds * 1e3);
  std::printf("  cuBLAS-CUDA-FP32: %6.2f TFLOPS (%.1f ms)  -> %.2fx speedup\n",
              fp32_t.tflops, fp32_t.seconds * 1e3,
              egemm_t.tflops / fp32_t.tflops);
  std::printf(
      "\nSame (extended) precision as CUDA-core FP32 GEMM, Tensor Core "
      "speed.\n");

  if (!trace_path.empty()) {
    obs::set_tracing(false);
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "quickstart: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("wrote Chrome trace to %s (load in chrome://tracing)\n",
                trace_path.c_str());
  }
  if (args.has_flag("metrics")) obs::dump_metrics(std::cout);
  if (export_metrics) {
    const std::string metrics_out =
        args.value_or("metrics-out", std::string());
    if (!obs::write_metrics(metrics_out, metrics_format)) {
      std::fprintf(stderr, "quickstart: cannot write metrics export%s%s\n",
                   metrics_out.empty() ? "" : " to ",
                   metrics_out.c_str());
      return 1;
    }
    if (!metrics_out.empty()) {
      std::printf("wrote metrics export to %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
