// The hardware-aware analytic model as an autotuner (§6): describe your
// GPU with four budget numbers and get the tiling hyper-parameters without
// trial-and-error, plus the predicted performance curve.
//
//   build/examples/autotune [--gpu=t4|rtx6000]
//                           [--smem-kb=64] [--regfile-kb=256]
//                           [--peak-tflops=65] [--l2-gbps=750]
//
// Passing any of the budget flags overrides the named GPU's value, so you
// can explore hypothetical hardware ("what if the register file doubled?").
#include <cstdio>

#include "gemm/egemm.hpp"
#include "model/solver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace egemm;
  const util::CliArgs args(argc, argv);
  tcsim::GpuSpec spec =
      tcsim::spec_by_name(args.value_or("gpu", std::string("t4")));

  model::ResourceBudget budget = model::budget_from_spec(spec);
  budget.shared_memory_bytes = static_cast<std::size_t>(
      args.value_or("smem-kb",
                    static_cast<std::int64_t>(budget.shared_memory_bytes /
                                              1024)) *
      1024);
  budget.register_bytes = static_cast<std::size_t>(
      args.value_or("regfile-kb",
                    static_cast<std::int64_t>(budget.register_bytes / 1024)) *
      1024);
  budget.peak_tc_tflops = args.value_or("peak-tflops", budget.peak_tc_tflops);
  budget.l2_gbps = args.value_or("l2-gbps", budget.l2_gbps);

  std::printf("budget: %zu KB shared, %zu KB registers, %.1f TFLOPS peak, "
              "%.0f GB/s L2\n\n",
              budget.shared_memory_bytes / 1024, budget.register_bytes / 1024,
              budget.peak_tc_tflops, budget.l2_gbps);

  const model::SolverResult result = model::solve(budget);
  if (!result.found) {
    std::printf("no feasible tiling: this budget cannot host the kernel.\n");
    return 1;
  }

  std::printf("recommended tiling: %s\n", result.best.describe().c_str());
  std::printf("  compute intensity (Eq. 4): %.1f FLOP/byte-ish units\n",
              result.best_eval.compute_intensity);
  std::printf("  per-iteration budget: T_comp %.0f cycles vs T_mem1+T_mem2 "
              "%.0f cycles (margin %.0f)\n",
              result.best_eval.t_comp,
              result.best_eval.t_mem1 + result.best_eval.t_mem2,
              result.best_eval.compute_margin());
  std::printf("  registers/thread: %d of %d, shared memory %zu KB\n",
              result.best_eval.registers_per_thread,
              budget.max_registers_per_thread,
              result.best_eval.shared_demand_bytes / 1024);
  std::printf("  design points explored: %zu, feasible: %zu\n\n",
              result.explored, result.feasible.size());

  // Apply the choice: the budget may describe hypothetical hardware, so
  // patch the spec's resources to match before timing.
  spec.shared_memory_per_sm = budget.shared_memory_bytes;
  spec.register_file_per_sm = budget.register_bytes;
  spec.peak_fp16_tc_tflops = budget.peak_tc_tflops;
  spec.l2_bandwidth_gbps = budget.l2_gbps;
  gemm::EgemmOptions opts;
  opts.tile = result.best;
  std::printf("predicted EGEMM-TC performance with this tiling:\n");
  for (const std::uint64_t n : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    const gemm::KernelTiming t = gemm::egemm_timing(n, n, n, spec, opts);
    std::printf("  %6llu^3: %6.2f TFLOPS (%8.3f ms, %u waves)\n",
                static_cast<unsigned long long>(n), t.tflops,
                t.seconds * 1e3, t.waves);
  }
  return 0;
}
