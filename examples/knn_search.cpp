// GEMM-based k-nearest-neighbor search on the EGEMM-TC backend (§7.5):
// the distance matrix comes from one big extended-precision GEMM, so the
// search is Tensor-Core fast without the half-precision mis-rankings.
//
//   build/examples/knn_search [--points=2000] [--queries=500] [--dim=64]
//                             [--k=10] [--precision=X]
//
// --precision states an accuracy contract on each cross-term element: the
// planner picks the cheapest emulation scheme whose a-priori bound meets
// it (and fails loudly when none can).
#include <cstdio>
#include <stdexcept>

#include "apps/app_timing.hpp"
#include "apps/dataset.hpp"
#include "apps/knn.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace egemm;
  const util::CliArgs args(argc, argv);
  const auto points =
      static_cast<std::size_t>(args.value_or("points", std::int64_t{2000}));
  const auto queries =
      static_cast<std::size_t>(args.value_or("queries", std::int64_t{500}));
  const auto dim =
      static_cast<std::size_t>(args.value_or("dim", std::int64_t{128}));
  const int k = static_cast<int>(args.value_or("k", std::int64_t{10}));

  const apps::PointCloud refs =
      apps::uniform_cloud(points, dim, -1.0f, 1.0f, /*seed=*/11);
  const apps::PointCloud qs =
      apps::uniform_cloud(queries, dim, -1.0f, 1.0f, /*seed=*/12);

  apps::KnnOptions opts;
  opts.k = k;
  opts.backend = gemm::Backend::kEgemmTC;
  opts.precision_target = args.value_or("precision", 0.0);
  apps::KnnResult result;
  try {
    result = apps::knn_search(qs.points, refs.points, opts);
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 2;
  }

  std::printf("kNN over %zu references, %zu queries, dim %zu, k=%d "
              "(EGEMM-TC backend)\n\n",
              points, queries, dim, k);
  if (result.scheme != nullptr) {
    std::printf("accuracy contract %.3g met by scheme: %s\n\n",
                opts.precision_target, result.scheme);
  }
  std::printf("first query's neighbors (index : squared distance):\n");
  for (int j = 0; j < k; ++j) {
    std::printf("  #%d  %6d : %.6f\n", j + 1,
                result.indices.at(0, static_cast<std::size_t>(j)),
                static_cast<double>(
                    result.distances.at(0, static_cast<std::size_t>(j))));
  }

  // Validate against brute force and compare with the half backend.
  const apps::KnnResult oracle =
      apps::knn_bruteforce(qs.points, refs.points, k);
  apps::KnnOptions half_opts = opts;
  half_opts.backend = gemm::Backend::kCublasTcHalf;
  half_opts.precision_target = 0.0;  // the demo wants genuine half numerics
  const apps::KnnResult half_result =
      apps::knn_search(qs.points, refs.points, half_opts);
  std::printf("\nneighbor agreement vs exact brute force:\n");
  std::printf("  EGEMM-TC backend:       %.2f%%\n",
              100.0 * apps::knn_agreement(result, oracle));
  std::printf("  half-precision backend: %.2f%%  (the precision problem "
              "that motivates EGEMM-TC)\n",
              100.0 * apps::knn_agreement(half_result, oracle));

  // Modeled end-to-end speedup at the paper's scale (Fig. 12b).
  const tcsim::GpuSpec t4 = tcsim::tesla_t4();
  apps::KnnWorkload workload;
  workload.references = workload.queries = 8192;
  const double speedup =
      apps::knn_timing(workload, gemm::Backend::kCublasFp32, t4).total_seconds /
      apps::knn_timing(workload, gemm::Backend::kEgemmTC, t4).total_seconds;
  std::printf("\nmodeled end-to-end speedup at 8192 points on %s: %.2fx "
              "(paper: ~1.7x mean)\n",
              t4.name.c_str(), speedup);
  return 0;
}
