// GEMM-based kMeans clustering on the EGEMM-TC backend (§7.5): every Lloyd
// iteration's assignment step is one extended-precision GEMM.
//
//   build/examples/kmeans_clustering [--points=3000] [--dim=32]
//                                    [--clusters=6] [--precision=X]
//
// --precision states an accuracy contract on each distance-GEMM element:
// the planner picks the cheapest emulation scheme whose a-priori bound
// meets it (and fails loudly when none can).
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "apps/app_timing.hpp"
#include "apps/dataset.hpp"
#include "apps/kmeans.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace egemm;
  const util::CliArgs args(argc, argv);
  const auto points =
      static_cast<std::size_t>(args.value_or("points", std::int64_t{3000}));
  const auto dim =
      static_cast<std::size_t>(args.value_or("dim", std::int64_t{32}));
  const int clusters =
      static_cast<int>(args.value_or("clusters", std::int64_t{6}));

  // A mixture the algorithm should recover.
  const apps::PointCloud cloud =
      apps::gaussian_mixture(points, dim, clusters, /*stddev=*/0.05,
                             /*seed=*/21);

  apps::KMeansOptions opts;
  opts.clusters = clusters;
  opts.backend = gemm::Backend::kEgemmTC;
  opts.precision_target = args.value_or("precision", 0.0);
  apps::KMeansResult result;
  try {
    result = apps::kmeans(cloud.points, opts);
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 2;
  }

  std::printf("kMeans on %zu points, dim %zu, %d clusters (EGEMM-TC "
              "backend)\n\n",
              points, dim, clusters);
  if (result.scheme != nullptr) {
    std::printf("accuracy contract %.3g met by scheme: %s\n",
                opts.precision_target, result.scheme);
  }
  std::printf("converged: %s after %d iterations, inertia %.4f\n",
              result.converged ? "yes" : "no", result.iterations,
              result.inertia);

  // Cluster population and purity against the generating labels.
  std::vector<std::size_t> population(static_cast<std::size_t>(clusters), 0);
  std::size_t pure = 0;
  std::vector<std::vector<std::size_t>> votes(
      static_cast<std::size_t>(clusters),
      std::vector<std::size_t>(static_cast<std::size_t>(clusters), 0));
  for (std::size_t i = 0; i < points; ++i) {
    const auto c = static_cast<std::size_t>(result.assignment[i]);
    ++population[c];
    ++votes[c][static_cast<std::size_t>(cloud.true_labels[i])];
  }
  for (const auto& cluster_votes : votes) {
    std::size_t best = 0;
    for (const std::size_t v : cluster_votes) best = std::max(best, v);
    pure += best;
  }
  std::printf("cluster purity vs generating mixture: %.2f%%\n",
              100.0 * static_cast<double>(pure) / static_cast<double>(points));
  std::printf("cluster sizes:");
  for (const std::size_t p : population) std::printf(" %zu", p);
  std::printf("\n");

  // Modeled end-to-end speedup at the paper's scale (Fig. 12a).
  const tcsim::GpuSpec t4 = tcsim::tesla_t4();
  apps::KMeansWorkload workload;
  workload.points = 16384;
  workload.dim = 256;
  workload.clusters = 128;
  const double speedup =
      apps::kmeans_timing(workload, gemm::Backend::kCublasFp32, t4)
          .total_seconds /
      apps::kmeans_timing(workload, gemm::Backend::kEgemmTC, t4).total_seconds;
  std::printf("\nmodeled end-to-end speedup at 16384 points on %s: %.2fx "
              "(paper: 1.82x at 16384)\n",
              t4.name.c_str(), speedup);
  return 0;
}
