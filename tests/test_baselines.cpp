// Tests for the Table 5 baseline kernels (gemm/baselines.hpp).
#include "gemm/baselines.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace egemm::gemm {
namespace {

TEST(BaselineFunctional, SgemmMatchesDoubleReferenceTightly) {
  const Matrix a = random_matrix(96, 64, -1, 1, 1);
  const Matrix b = random_matrix(64, 80, -1, 1, 2);
  Matrix c(96, 80);
  c.fill(0.5f);
  const Matrix d = sgemm_fp32(a, b, &c);
  const MatrixD ref = gemm_reference(a, b, &c);
  // Plain binary32 accumulation over k=64: error ~ k * 2^-24.
  EXPECT_LT(max_abs_error(ref, d), 64 * 0x1.0p-20);
}

TEST(BaselineFunctional, SdkMatchesSgemmClosely) {
  // Same math, different accumulation (mul+add vs FMA): results are close
  // but usually not identical.
  const Matrix a = random_matrix(64, 64, -1, 1, 3);
  const Matrix b = random_matrix(64, 64, -1, 1, 4);
  const Matrix s = sgemm_fp32(a, b);
  const Matrix naive = sdk_gemm_fp32(a, b);
  EXPECT_LT(max_abs_error(s, naive), 1e-4);
}

TEST(BaselineFunctional, HalfGemmHasHalfScaleError) {
  const Matrix a = random_matrix(128, 128, -1, 1, 5);
  const Matrix b = random_matrix(128, 128, -1, 1, 6);
  const MatrixD ref = gemm_reference(a, b, nullptr);
  const double err = max_abs_error(ref, gemm_tc_half(a, b));
  // Input quantization to 2^-11 relative over k=128 products in [-1,1]:
  // order 1e-2 (cuBLAS-TC-Half row of Fig. 7).
  EXPECT_GT(err, 1e-3);
  EXPECT_LT(err, 1e-1);
}

TEST(BaselineFunctional, MarkidisBetweenHalfAndEgemm) {
  const Matrix a = random_matrix(128, 128, -1, 1, 7);
  const Matrix b = random_matrix(128, 128, -1, 1, 8);
  const MatrixD ref = gemm_reference(a, b, nullptr);
  const double egemm_err = max_abs_error(ref, egemm_multiply(a, b));
  const double markidis_err = max_abs_error(ref, gemm_markidis(a, b));
  const double half_err = max_abs_error(ref, gemm_tc_half(a, b));
  EXPECT_LT(egemm_err, markidis_err);   // Fig. 7: 2.33x better on average
  EXPECT_LT(markidis_err, half_err);    // still extended-ish precision
  EXPECT_GT(half_err, 20.0 * markidis_err);
}

TEST(BaselineFunctional, TcEmulationMatchesEgemmPrecisionClass) {
  // Same algorithm, different pass structure: error magnitudes must be of
  // the same class (within 4x), though not bit-identical.
  const Matrix a = random_matrix(128, 128, -1, 1, 9);
  const Matrix b = random_matrix(128, 128, -1, 1, 10);
  const MatrixD ref = gemm_reference(a, b, nullptr);
  const double egemm_err = max_abs_error(ref, egemm_multiply(a, b));
  const double emu_err = max_abs_error(ref, gemm_cublas_tc_emulation(a, b));
  EXPECT_LT(emu_err, 4.0 * egemm_err);
  EXPECT_LT(egemm_err, 4.0 * emu_err);
}

TEST(BaselineFunctional, DekkerIsExtendedPrecision) {
  const Matrix a = random_matrix(32, 32, -0.5, 0.5, 11);
  const Matrix b = random_matrix(32, 32, -0.5, 0.5, 12);
  const MatrixD ref = gemm_reference(a, b, nullptr);
  long ops = 0;
  const Matrix d = gemm_dekker(a, b, nullptr, &ops);
  const double half_err = max_abs_error(ref, gemm_tc_half(a, b));
  const double dekker_err = max_abs_error(ref, d);
  EXPECT_LT(dekker_err, half_err);
  // 16 binary16 instructions per scalar multiply-accumulate (§1).
  EXPECT_EQ(ops, 16L * 32 * 32 * 32);
}

TEST(BaselineFunctional, CAccumulationConsistency) {
  const Matrix a = random_matrix(48, 32, -1, 1, 13);
  const Matrix b = random_matrix(32, 48, -1, 1, 14);
  Matrix c(48, 48);
  c.fill(-2.0f);
  const Matrix results[] = {sgemm_fp32(a, b, &c), gemm_tc_half(a, b, &c),
                            gemm_markidis(a, b, &c),
                            gemm_cublas_tc_emulation(a, b, &c)};
  const MatrixD ref = gemm_reference(a, b, &c);
  for (const Matrix& result : results) {
    EXPECT_EQ(result.rows(), 48u);
    EXPECT_EQ(result.cols(), 48u);
    EXPECT_LT(max_abs_error(ref, result), 0.2);  // C actually added
  }
}

// -- timing models ------------------------------------------------------------

TEST(BaselineTiming, LargeSquareOrderingMatchesFig8And10) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const double egemm = egemm_timing(8192, 8192, 8192, spec).tflops;
  const double fp32 = sgemm_fp32_timing(8192, 8192, 8192, spec).tflops;
  const double emu = tc_emulation_timing(8192, 8192, 8192, spec).tflops;
  const double sdk = sdk_gemm_timing(8192, 8192, 8192, spec).tflops;
  const double markidis = markidis_timing(8192, 8192, 8192, spec).tflops;
  const double half = tc_half_timing(8192, 8192, 8192, spec).tflops;
  // Fig. 8/10 ordering at large sizes.
  EXPECT_GT(egemm, emu);
  EXPECT_GT(emu, fp32);
  EXPECT_GT(fp32, sdk);
  EXPECT_GT(egemm, markidis);
  EXPECT_GT(half, egemm);  // no emulation overhead
  // Headline ratios (§7.3): 3.13x vs cuBLAS, 11.18x vs SDK, 1.35x vs
  // TC-Emulation, 3.0x vs Markidis -- within a credible band.
  EXPECT_NEAR(egemm / fp32, 3.13, 0.6);
  EXPECT_NEAR(egemm / sdk, 11.18, 2.5);
  EXPECT_NEAR(egemm / emu, 1.35, 0.25);
  EXPECT_NEAR(egemm / markidis, 3.0, 0.6);
}

TEST(BaselineTiming, SdkIsMemoryBoundAroundOneTflop) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const double sdk = sdk_gemm_timing(8192, 8192, 8192, spec).tflops;
  EXPECT_GT(sdk, 0.7);
  EXPECT_LT(sdk, 1.6);
}

TEST(BaselineTiming, TcEmulationSplitKSlowdown) {
  // Fig. 9a: cuBLAS-TC-Emulation slows down when K exceeds
  // 4096x4096x8192, while EGEMM-TC stays consistent.
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const double balanced = tc_emulation_timing(4096, 4096, 4096, spec).tflops;
  const double skewed = tc_emulation_timing(4096, 4096, 8192, spec).tflops;
  EXPECT_LT(skewed, 0.9 * balanced);
  const double egemm_balanced = egemm_timing(4096, 4096, 4096, spec).tflops;
  const double egemm_skewed = egemm_timing(4096, 4096, 8192, spec).tflops;
  EXPECT_GT(egemm_skewed, 0.95 * egemm_balanced);
}

TEST(BaselineTiming, WaveQuantizationHurtsSmallSizes) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const double small = sgemm_fp32_timing(1024, 1024, 1024, spec).tflops;
  const double large = sgemm_fp32_timing(16384, 16384, 16384, spec).tflops;
  EXPECT_LT(small, large);
}

TEST(BaselineTiming, AllModelsScaleOnRtx6000) {
  const tcsim::GpuSpec rtx = tcsim::rtx6000();
  const tcsim::GpuSpec t4 = tcsim::tesla_t4();
  EXPECT_GT(sgemm_fp32_timing(8192, 8192, 8192, rtx).tflops,
            sgemm_fp32_timing(8192, 8192, 8192, t4).tflops);
  EXPECT_GT(tc_emulation_timing(8192, 8192, 8192, rtx).tflops,
            tc_emulation_timing(8192, 8192, 8192, t4).tflops);
}

}  // namespace
}  // namespace egemm::gemm
