// Tests for the double-double oracle GEMM, the binary32 ulp helpers, and
// the a-priori error-bound model (DESIGN.md §11).
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "fp/float_bits.hpp"
#include "gemm/matrix.hpp"
#include "verify/error_model.hpp"
#include "verify/oracle.hpp"

namespace egemm::verify {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(F32UlpAt, NormalRange) {
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(1.0), 0x1.0p-23);
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(-1.0), 0x1.0p-23);
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(1.5), 0x1.0p-23);
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(2.0), 0x1.0p-22);
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(0x1.0p-126), 0x1.0p-149);
}

TEST(F32UlpAt, SubnormalAndOverflowClamps) {
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(0.0), 0x1.0p-149);
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(0x1.0p-140), 0x1.0p-149);
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(0x1.0p-300), 0x1.0p-149);
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(0x1.0p128), 0x1.0p104);
  EXPECT_DOUBLE_EQ(fp::f32_ulp_at(kInf), 0x1.0p104);
  EXPECT_TRUE(std::isnan(fp::f32_ulp_at(std::nan(""))));
}

TEST(UlpError, Conventions) {
  EXPECT_DOUBLE_EQ(fp::ulp_error(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fp::ulp_error(1.0, 1.0 + 0x1.0p-23), 1.0);
  EXPECT_DOUBLE_EQ(fp::ulp_error(2.0, 2.0 - 0x1.0p-22), 1.0);
  // NaN agrees with NaN; NaN vs a number is infinitely wrong.
  EXPECT_DOUBLE_EQ(fp::ulp_error(std::nan(""), std::nan("")), 0.0);
  EXPECT_DOUBLE_EQ(fp::ulp_error(std::nan(""), 1.0), kInf);
  EXPECT_DOUBLE_EQ(fp::ulp_error(1.0, std::nan("")), kInf);
  // Matching infinities agree; anything else against Inf does not.
  EXPECT_DOUBLE_EQ(fp::ulp_error(kInf, kInf), 0.0);
  EXPECT_DOUBLE_EQ(fp::ulp_error(-kInf, -kInf), 0.0);
  EXPECT_DOUBLE_EQ(fp::ulp_error(kInf, -kInf), kInf);
  EXPECT_DOUBLE_EQ(fp::ulp_error(kInf, 1.0), kInf);
}

TEST(OracleGemm, SmallIntegerCaseIsExact) {
  gemm::Matrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  const float av[] = {1, 2, 3, 4, 5, 6};
  const float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(av), std::end(av), a.data().begin());
  std::copy(std::begin(bv), std::end(bv), b.data().begin());
  const OracleMatrix d = oracle_gemm(a, b);
  EXPECT_DOUBLE_EQ(d.value(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(d.value(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(d.value(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(d.value(1, 1), 154.0);
  EXPECT_DOUBLE_EQ(d.lo.at(0, 0), 0.0);
}

TEST(OracleGemm, AddsCExactly) {
  gemm::Matrix a(1, 1), b(1, 1), c(1, 1);
  a.at(0, 0) = 3.0f;
  b.at(0, 0) = 5.0f;
  c.at(0, 0) = -14.0f;
  const OracleMatrix d = oracle_gemm(a, b, &c);
  EXPECT_DOUBLE_EQ(d.value(0, 0), 1.0);
}

TEST(OracleGemm, ExactCancellationLeavesTinyTail) {
  // [x, -x, t] . [y, y, 1]: the pair cancels exactly in double-double, so
  // the result is t on the nose -- the property a plain double accumulator
  // cannot deliver once |x*y| >> |t|.
  gemm::Matrix a(1, 3), b(3, 1);
  a.at(0, 0) = 0x1.234568p20f;
  a.at(0, 1) = -0x1.234568p20f;
  a.at(0, 2) = 0x1.0p-40f;
  b.at(0, 0) = 0x1.9abcdep10f;
  b.at(1, 0) = 0x1.9abcdep10f;
  b.at(2, 0) = 1.0f;
  const OracleMatrix d = oracle_gemm(a, b);
  EXPECT_DOUBLE_EQ(d.value(0, 0), 0x1.0p-40);
}

TEST(OracleGemm, DoubleDoubleHoldsBeyondDoublePrecision) {
  // 1 + 2^-60 cannot live in one double, but survives in the hi/lo pair.
  gemm::Matrix a(1, 2), b(2, 1);
  a.at(0, 0) = 1.0f;
  a.at(0, 1) = 0x1.0p-60f;
  b.at(0, 0) = 1.0f;
  b.at(1, 0) = 1.0f;
  const OracleMatrix d = oracle_gemm(a, b);
  EXPECT_DOUBLE_EQ(d.hi.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.lo.at(0, 0), 0x1.0p-60);
}

TEST(OracleGemm, IeeePropagation) {
  gemm::Matrix a(1, 2), b(2, 1);
  a.at(0, 0) = 0.0f;
  a.at(0, 1) = 1.0f;
  b.at(0, 0) = std::numeric_limits<float>::infinity();
  b.at(1, 0) = 1.0f;
  // 0 * Inf must poison the sum, not be skipped as "zero times anything".
  EXPECT_TRUE(std::isnan(oracle_gemm(a, b).value(0, 0)));
}

PathProfile round_profile() { return PathProfile{}; }

PathProfile markidis_profile() {
  PathProfile p;
  p.split = core::SplitMethod::kTruncateSplit;
  p.set_term(1, 1, false);  // lo x lo dropped
  return p;
}

TEST(ErrorModel, KZeroMeansExactCopy) {
  const ErrorBound bound =
      element_bound(round_profile(), BoundInputs{0, 1.0, 1.0, 10.0});
  EXPECT_EQ(bound.worst_abs, 0.0);
  EXPECT_EQ(bound.expected_abs, 0.0);
}

TEST(ErrorModel, GrowsWithK) {
  const BoundInputs small{8, 1.0, 1.0, 0.0};
  const BoundInputs large{512, 1.0, 1.0, 0.0};
  EXPECT_LT(element_bound(round_profile(), small).worst_abs,
            element_bound(round_profile(), large).worst_abs);
}

TEST(ErrorModel, RoundSplitTighterThanTruncate) {
  PathProfile truncate;
  truncate.split = core::SplitMethod::kTruncateSplit;
  const BoundInputs in{64, 1.0, 1.0, 0.0};
  EXPECT_LT(element_bound(round_profile(), in).split_term,
            element_bound(truncate, in).split_term);
}

TEST(ErrorModel, MarkidisPaysForTheDroppedTerm) {
  const BoundInputs in{64, 1.0, 1.0, 0.0};
  EXPECT_EQ(element_bound(round_profile(), in).dropped_term, 0.0);
  EXPECT_GT(element_bound(markidis_profile(), in).dropped_term, 0.0);
}

TEST(ErrorModel, HalfOnlyIsOrdersOfMagnitudeLooser) {
  // Small k keeps the binary32 accumulation term (shared by both paths,
  // quadratic in k) from masking the representation gap under test.
  PathProfile half;
  half.half_only = true;
  const BoundInputs in{8, 1.0, 1.0, 0.0};
  EXPECT_GT(element_bound(half, in).worst_abs,
            100.0 * element_bound(round_profile(), in).worst_abs);
}

TEST(ErrorModel, SubnormalFloorsKeepBoundsPositive) {
  // Scale-relative terms vanish at scale 0, but the binary16 subnormal
  // quantum does not: the bound must stay positive so underflow-dropped
  // products are covered.
  const ErrorBound bound =
      element_bound(round_profile(), BoundInputs{4, 0.0, 0.0, 0.0});
  EXPECT_GT(bound.worst_abs, 0.0);
  EXPECT_GE(core::split_residual_bound(core::SplitMethod::kRoundSplit, 0.0),
            0x1.0p-25);
  EXPECT_GE(core::split_residual_bound(core::SplitMethod::kTruncateSplit, 0.0),
            0x1.0p-24);
}

TEST(ErrorModel, TermCountMatchesProfile) {
  EXPECT_EQ(round_profile().term_count(), 4);
  EXPECT_EQ(markidis_profile().term_count(), 3);
  PathProfile half;
  half.half_only = true;
  EXPECT_EQ(half.term_count(), 1);
}

}  // namespace
}  // namespace egemm::verify
