// Tests for the plan/workspace execution layer (gemm/plan.hpp): cache
// hit/miss accounting, LRU eviction, bit-identity of the planned path with
// the one-shot APIs and the scalar reference engine, caller-owned output
// reuse, and the debug allocation guard (a reused plan performs no heap
// allocation on its second execute).
#include <gtest/gtest.h>

#include <cstring>

#include "gemm/gemm_api.hpp"
#include "gemm/plan.hpp"
#include "tcsim/gpu_spec.hpp"

namespace egemm::gemm {
namespace {

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         (x.size() == 0 ||
          std::memcmp(x.data().data(), y.data().data(),
                      x.size() * sizeof(float)) == 0);
}

TEST(GemmPlanCache, HitAndMissAccounting) {
  GemmContext ctx;
  EXPECT_EQ(ctx.plan_hits(), 0u);
  EXPECT_EQ(ctx.plan_misses(), 0u);
  EXPECT_EQ(ctx.cached_plans(), 0u);

  const auto first = ctx.plan(Backend::kEgemmTC, 32, 32, 32);
  EXPECT_EQ(ctx.plan_misses(), 1u);
  EXPECT_EQ(ctx.plan_hits(), 0u);
  EXPECT_EQ(ctx.cached_plans(), 1u);

  const auto second = ctx.plan(Backend::kEgemmTC, 32, 32, 32);
  EXPECT_EQ(ctx.plan_misses(), 1u);
  EXPECT_EQ(ctx.plan_hits(), 1u);
  EXPECT_EQ(first.get(), second.get());  // the cache hands back the same plan
}

TEST(GemmPlanCache, DistinctOptionsAreDistinctPlans) {
  GemmContext ctx;
  const auto round = ctx.plan(Backend::kEgemmTC, 32, 32, 32);
  EgemmOptions truncate;
  truncate.split = core::SplitMethod::kTruncateSplit;
  const auto trunc = ctx.plan(Backend::kEgemmTC, 32, 32, 32, truncate);
  EXPECT_EQ(ctx.plan_misses(), 2u);
  EXPECT_NE(round.get(), trunc.get());
  EXPECT_EQ(round->split(), core::SplitMethod::kRoundSplit);
  EXPECT_EQ(trunc->split(), core::SplitMethod::kTruncateSplit);
}

TEST(GemmPlanCache, LruEvictsTheColdestPlan) {
  GemmContext ctx(2);
  EXPECT_EQ(ctx.plan_capacity(), 2u);
  (void)ctx.plan(Backend::kEgemmTC, 16, 16, 16);   // A
  (void)ctx.plan(Backend::kEgemmTC, 32, 32, 32);   // B
  (void)ctx.plan(Backend::kEgemmTC, 48, 48, 48);   // C evicts A
  EXPECT_EQ(ctx.cached_plans(), 2u);

  (void)ctx.plan(Backend::kEgemmTC, 32, 32, 32);   // B still cached
  EXPECT_EQ(ctx.plan_hits(), 1u);
  (void)ctx.plan(Backend::kEgemmTC, 16, 16, 16);   // A was evicted
  EXPECT_EQ(ctx.plan_misses(), 4u);
  EXPECT_EQ(ctx.cached_plans(), 2u);
}

TEST(GemmPlanCache, EvictedPlanStaysUsableThroughSharedPtr) {
  GemmContext ctx(1);
  const auto plan = ctx.plan(Backend::kEgemmTC, 32, 32, 32);
  (void)ctx.plan(Backend::kEgemmTC, 16, 16, 16);  // evicts the first plan
  const Matrix a = random_matrix(32, 32, -1.0f, 1.0f, 11);
  const Matrix b = random_matrix(32, 32, -1.0f, 1.0f, 12);
  Matrix d;
  plan->execute(ctx, a, b, nullptr, d);  // still valid: shared ownership
  EXPECT_TRUE(bitwise_equal(d, egemm_multiply(a, b)));
}

TEST(GemmPlanExecute, MatchesOneShotAndReferenceBitwise) {
  GemmContext ctx;
  const Matrix a = random_matrix(48, 40, -2.0f, 2.0f, 21);
  const Matrix b = random_matrix(40, 24, -2.0f, 2.0f, 22);
  const Matrix c = random_matrix(48, 24, -2.0f, 2.0f, 23);

  const auto plan = ctx.plan(Backend::kEgemmTC, 48, 24, 40);
  Matrix d;
  plan->execute(ctx, a, b, &c, d);
  EXPECT_TRUE(bitwise_equal(d, egemm_multiply(a, b, &c)));

  EgemmOptions reference;
  reference.engine = ExecEngine::kReference;
  EXPECT_TRUE(bitwise_equal(d, egemm_multiply(a, b, &c, reference)));
}

TEST(GemmPlanExecute, AllBackendsMatchTheOneShotApi) {
  GemmContext ctx;
  const Matrix a = random_matrix(33, 29, -1.0f, 1.0f, 31);
  const Matrix b = random_matrix(29, 18, -1.0f, 1.0f, 32);
  for (const Backend backend : all_backends()) {
    const auto plan = ctx.plan(backend, 33, 18, 29);
    Matrix d;
    plan->execute(ctx, a, b, nullptr, d);
    EXPECT_TRUE(bitwise_equal(d, run_gemm(backend, a, b)))
        << backend_name(backend);
  }
}

TEST(GemmPlanExecute, PlanPropertiesReflectTheRecipe) {
  GemmContext ctx;
  const auto egemm = ctx.plan(Backend::kEgemmTC, 64, 64, 64);
  EXPECT_FALSE(egemm->direct());
  EXPECT_EQ(egemm->combos().size(), 4u);
  EXPECT_GT(egemm->workspace_bytes(), 0u);

  const auto half = ctx.plan(Backend::kCublasTcHalf, 64, 64, 64);
  EXPECT_EQ(half->combos().size(), 1u);
  const auto markidis = ctx.plan(Backend::kMarkidis, 64, 64, 64);
  EXPECT_EQ(markidis->combos().size(), 3u);
  EXPECT_EQ(markidis->split(), core::SplitMethod::kTruncateSplit);

  const auto direct = ctx.plan(Backend::kCublasFp32, 64, 64, 64);
  EXPECT_TRUE(direct->direct());
  EXPECT_EQ(direct->workspace_bytes(), 0u);
}

TEST(GemmPlanExecute, TimingMatchesTimeGemm) {
  GemmContext ctx;
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  for (const Backend backend : all_backends()) {
    const auto plan = ctx.plan(backend, 256, 256, 256);
    EXPECT_DOUBLE_EQ(plan->timing(spec).seconds,
                     time_gemm(backend, 256, 256, 256, spec).seconds)
        << backend_name(backend);
  }
}

TEST(GemmPlanExecute, CallerOwnedOutputIsReusedInPlace) {
  GemmContext ctx;
  const auto plan = ctx.plan(Backend::kEgemmTC, 32, 32, 32);
  const Matrix a1 = random_matrix(32, 32, -1.0f, 1.0f, 41);
  const Matrix b1 = random_matrix(32, 32, -1.0f, 1.0f, 42);
  Matrix d;
  plan->execute(ctx, a1, b1, nullptr, d);
  const float* storage = d.data().data();

  const Matrix a2 = random_matrix(32, 32, -1.0f, 1.0f, 43);
  plan->execute(ctx, a2, b1, nullptr, d);
  EXPECT_EQ(d.data().data(), storage);  // same-shape execute: no realloc
  EXPECT_TRUE(bitwise_equal(d, egemm_multiply(a2, b1)));
}

TEST(GemmPlanExecute, SecondExecutePerformsNoWorkspaceAllocation) {
  if constexpr (!debug_workspace_accounting()) {
    GTEST_SKIP() << "workspace accounting is compiled out in NDEBUG builds";
  }
  GemmContext ctx;
  const auto plan = ctx.plan(Backend::kEgemmTC, 48, 48, 48);
  const Matrix a = random_matrix(48, 48, -1.0f, 1.0f, 51);
  const Matrix b = random_matrix(48, 48, -1.0f, 1.0f, 52);
  Matrix d;
  plan->execute(ctx, a, b, nullptr, d);  // warm-up: allocates workspaces

  const std::uint64_t before = debug_workspace_allocations();
  plan->execute(ctx, a, b, nullptr, d);
  plan->execute(ctx, a, b, nullptr, d);
  EXPECT_EQ(debug_workspace_allocations(), before)
      << "a reused plan must not touch the heap for its workspaces";
}

TEST(GemmPlanExecute, WorkspacesRecycleThroughTheContextPool) {
  GemmContext ctx;
  const Matrix a = random_matrix(16, 16, -1.0f, 1.0f, 61);
  const Matrix b = random_matrix(16, 16, -1.0f, 1.0f, 62);
  (void)ctx.run(Backend::kEgemmTC, a, b);
  EXPECT_EQ(ctx.pooled_workspaces(), 1u);
  (void)ctx.run(Backend::kEgemmTC, a, b);
  EXPECT_EQ(ctx.pooled_workspaces(), 1u);  // reused, not duplicated
}

TEST(GemmPlanExecute, ZeroExtentShapesExecute) {
  GemmContext ctx;
  const auto plan = ctx.plan(Backend::kEgemmTC, 0, 8, 4);
  Matrix d;
  plan->execute(ctx, Matrix(0, 4), Matrix(4, 8), nullptr, d);
  EXPECT_EQ(d.rows(), 0u);
  EXPECT_EQ(d.cols(), 8u);

  const auto inner = ctx.plan(Backend::kEgemmTC, 3, 5, 0);
  Matrix e;
  inner->execute(ctx, Matrix(3, 0), Matrix(0, 5), nullptr, e);
  ASSERT_EQ(e.rows(), 3u);
  ASSERT_EQ(e.cols(), 5u);
  for (std::size_t i = 0; i < e.size(); ++i) EXPECT_EQ(e.data()[i], 0.0f);
}

TEST(GemmContextRun, SharesPlansWithTheOneShotWrappers) {
  // The one-shot APIs are wrappers over default_context(): an explicit
  // context reproduces them bitwise without touching the shared cache.
  GemmContext ctx;
  const Matrix a = random_matrix(20, 28, -1.0f, 1.0f, 71);
  const Matrix b = random_matrix(28, 12, -1.0f, 1.0f, 72);
  EXPECT_TRUE(bitwise_equal(ctx.run(Backend::kMarkidis, a, b),
                            gemm_markidis(a, b)));
  EXPECT_TRUE(bitwise_equal(run_gemm(ctx, Backend::kCublasTcHalf, a, b),
                            gemm_tc_half(a, b)));
  EXPECT_EQ(ctx.plan_misses(), 2u);
}

}  // namespace
}  // namespace egemm::gemm
