// Tests for the error-statistics accumulator (fp/error_stats.hpp).
#include "fp/error_stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace egemm::fp {
namespace {

TEST(ErrorStats, AccumulateTracksMaxAndMean) {
  ErrorStats stats;
  stats.accumulate(1.0, 1.5);   // err 0.5
  stats.accumulate(2.0, 2.25);  // err 0.25
  stats.accumulate(-1.0, -1.0);
  EXPECT_DOUBLE_EQ(stats.max_abs, 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_abs(), 0.75 / 3.0);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.max_rel, 0.5);
}

TEST(ErrorStats, MergeCombines) {
  ErrorStats a, b;
  a.accumulate(1.0, 2.0);
  b.accumulate(10.0, 10.1);
  b.accumulate(1.0, 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.max_abs, 1.0);
  EXPECT_EQ(a.count, 3u);
  EXPECT_NEAR(a.mean_abs(), 1.1 / 3.0, 1e-12);
}

TEST(ErrorStats, EmptyMeanIsZero) {
  ErrorStats stats;
  EXPECT_EQ(stats.mean_abs(), 0.0);
  EXPECT_EQ(stats.max_abs, 0.0);
}

TEST(ErrorStats, CompareSpansDoubleReference) {
  const std::vector<double> ref = {1.0, 2.0, 3.0};
  const std::vector<float> cand = {1.0f, 2.5f, 3.0f};
  const ErrorStats stats = compare(std::span<const double>(ref),
                                   std::span<const float>(cand));
  EXPECT_DOUBLE_EQ(stats.max_abs, 0.5);
  EXPECT_EQ(stats.count, 3u);
}

TEST(ErrorStats, CompareSpansFloatReference) {
  const std::vector<float> ref = {1.0f, -4.0f};
  const std::vector<float> cand = {1.25f, -4.0f};
  const ErrorStats stats =
      compare(std::span<const float>(ref), std::span<const float>(cand));
  EXPECT_DOUBLE_EQ(stats.max_abs, 0.25);
}

TEST(ErrorStats, RelativeErrorGuardsTinyReference) {
  ErrorStats stats;
  stats.accumulate(0.0, 1e-31);  // denominator floored at 1e-30
  EXPECT_LE(stats.max_rel, 1.0);
}

TEST(ErrorStats, CompareEmptySpansIsAValidZeroState) {
  const ErrorStats from_doubles = compare(std::span<const double>(),
                                          std::span<const float>());
  EXPECT_EQ(from_doubles.count, 0u);
  EXPECT_EQ(from_doubles.max_abs, 0.0);
  EXPECT_EQ(from_doubles.max_ulp, 0.0);
  EXPECT_EQ(from_doubles.mean_abs(), 0.0);
  const ErrorStats from_floats =
      compare(std::span<const float>(), std::span<const float>());
  EXPECT_EQ(from_floats.count, 0u);
}

TEST(ErrorStats, MergeWithZeroCountOperandIsIdentity) {
  ErrorStats stats;
  stats.accumulate(1.0, 1.5);
  const ErrorStats before = stats;
  stats.merge(ErrorStats{});  // empty right operand changes nothing
  EXPECT_EQ(stats.count, before.count);
  EXPECT_DOUBLE_EQ(stats.max_abs, before.max_abs);
  EXPECT_DOUBLE_EQ(stats.max_rel, before.max_rel);
  EXPECT_DOUBLE_EQ(stats.max_ulp, before.max_ulp);
  EXPECT_DOUBLE_EQ(stats.mean_abs(), before.mean_abs());

  ErrorStats empty;  // and merging INTO an empty one adopts the operand
  empty.merge(before);
  EXPECT_EQ(empty.count, before.count);
  EXPECT_DOUBLE_EQ(empty.max_abs, before.max_abs);
}

TEST(ErrorStats, ZeroReferenceColumnsDoNotBlowUpMaxRel) {
  // A whole column of exact zeros in the reference (e.g. a zero row times
  // anything): rel error must use the 1e-30 floor, not divide by zero.
  ErrorStats stats;
  for (int i = 0; i < 8; ++i) stats.accumulate(0.0, 0.0);
  EXPECT_EQ(stats.max_rel, 0.0);
  stats.accumulate(0.0, 2e-30);
  EXPECT_TRUE(std::isfinite(stats.max_rel));
  EXPECT_DOUBLE_EQ(stats.max_rel, 2.0);
}

TEST(ErrorStats, TracksUlpError) {
  ErrorStats stats;
  stats.accumulate(1.0, 1.0 + 0x1.0p-23);  // exactly 1 ulp at 1.0
  EXPECT_DOUBLE_EQ(stats.max_ulp, 1.0);
  stats.accumulate(1.0, 1.0 + 0x1.0p-21);  // 4 ulps
  EXPECT_DOUBLE_EQ(stats.max_ulp, 4.0);
  ErrorStats other;
  other.accumulate(2.0, 2.0 + 0x1.0p-19);  // 8 ulps at 2.0
  stats.merge(other);
  EXPECT_DOUBLE_EQ(stats.max_ulp, 8.0);
}

}  // namespace
}  // namespace egemm::fp
