// Tests for the analytic solver (model/solver.hpp).
#include "model/solver.hpp"

#include <gtest/gtest.h>

namespace egemm::model {
namespace {

TEST(Solver, ReproducesTable4OnT4Budget) {
  // The paper's Table 4: (128,128,32)/(64,32,8), 36 KB SMEM, 8 warps,
  // 1 block/SM, 232 registers/thread.
  const SolverResult result = solve(budget_from_spec(tcsim::tesla_t4()));
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best.bm, 128);
  EXPECT_EQ(result.best.bn, 128);
  EXPECT_EQ(result.best.bk, 32);
  EXPECT_EQ(result.best.wm, 64);
  EXPECT_EQ(result.best.wn, 32);
  EXPECT_EQ(result.best.wk, 8);
  EXPECT_EQ(result.best.warps_per_block(), 8);
  EXPECT_EQ(result.best_eval.registers_per_thread, 232);
  EXPECT_EQ(result.best_eval.shared_demand_bytes, 36864u);
}

TEST(Solver, EveryReturnedCandidateIsFeasible) {
  const SolverResult result = solve(budget_from_spec(tcsim::tesla_t4()));
  ASSERT_FALSE(result.feasible.empty());
  for (const SolverCandidate& candidate : result.feasible) {
    EXPECT_TRUE(candidate.config.valid());
    EXPECT_TRUE(candidate.eval.feasible()) << candidate.config.describe();
    EXPECT_GE(candidate.config.warps_per_block(), 8);
  }
}

TEST(Solver, CandidatesAreSortedBestFirst) {
  const SolverResult result = solve(budget_from_spec(tcsim::tesla_t4()));
  for (std::size_t i = 1; i < result.feasible.size(); ++i) {
    // The head never loses to a later candidate under the objective.
    EXPECT_FALSE(
        objective_less(result.feasible[i - 1], result.feasible[i]))
        << "rank " << i;
  }
  EXPECT_GE(result.feasible.front().eval.compute_intensity,
            result.feasible.back().eval.compute_intensity);
}

TEST(Solver, ExploredSpaceIsLarge) {
  const SolverResult result = solve(budget_from_spec(tcsim::tesla_t4()));
  // Trial-and-error over this space is what the model replaces (§6).
  EXPECT_GT(result.explored, 100u);
  EXPECT_LT(result.feasible.size(), result.explored);
}

TEST(Solver, TighterSharedMemoryShrinksTheTile) {
  ResourceBudget tight = budget_from_spec(tcsim::tesla_t4());
  tight.shared_memory_bytes = 24 * 1024;  // below Table 4's 36 KB demand
  const SolverResult result = solve(tight);
  if (result.found) {
    EXPECT_LE(result.best_eval.shared_demand_bytes, 24u * 1024u);
    // The winning intensity cannot beat the unconstrained one.
    const SolverResult full = solve(budget_from_spec(tcsim::tesla_t4()));
    EXPECT_LE(result.best_eval.compute_intensity,
              full.best_eval.compute_intensity);
  }
}

TEST(Solver, RtxBudgetAlsoSolvable) {
  const SolverResult result = solve(budget_from_spec(tcsim::rtx6000()));
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.best_eval.feasible());
  // Same per-SM budgets as T4 -> same tiling family.
  EXPECT_EQ(result.best.bm, 128);
  EXPECT_EQ(result.best.bn, 128);
}

TEST(Solver, ImpossibleBudgetFindsNothing) {
  ResourceBudget impossible = budget_from_spec(tcsim::tesla_t4());
  impossible.shared_memory_bytes = 1024;
  impossible.register_bytes = 4096;
  const SolverResult result = solve(impossible);
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.feasible.empty());
}

}  // namespace
}  // namespace egemm::model
