#!/usr/bin/env python3
"""Gate sass_lint --all-tilings --json against the checked-in baseline.

Usage:
    sass_lint --all-tilings --json > lint.json
    python3 tests/check_lint_baseline.py lint.json            # gate (CI)
    python3 tests/check_lint_baseline.py lint.json --update   # rewrite baseline

The gate fails when any feasible tiling:
  * reports a diagnostic code not present in its baseline entry (new EGnnn
    regressions fail even at note severity -- silence is part of the
    contract),
  * is missing from the baseline entirely (new tilings must be vetted),
  * loses precision certification: the profile must derive, reach the
    documented operation precision, and carry no EG5xx code.

Baseline entries shrinking (a code disappears) is reported as informational
only; run with --update to tighten the baseline.
"""

import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).resolve().parent / "sass_lint_baseline.json"


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--update"]
    update = "--update" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    lint = json.loads(pathlib.Path(args[0]).read_text())
    baseline = json.loads(BASELINE.read_text())

    if update:
        baseline["kernels"] = {
            k["tile"]: k["codes"] for k in lint["kernels"]
        }
        BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline rewritten: {len(lint['kernels'])} kernels")
        return 0

    documented = int(baseline.get("documented_operation_bits", 21))
    known = baseline["kernels"]
    failures = []
    for kernel in lint["kernels"]:
        tile = kernel["tile"]
        codes = set(kernel["codes"])
        if tile not in known:
            failures.append(f"{tile}: not in baseline (new tiling?)")
            continue
        new = codes - set(known[tile])
        if new:
            failures.append(f"{tile}: new diagnostic code(s) {sorted(new)}")
        gone = set(known[tile]) - codes
        if gone:
            print(f"note: {tile}: baseline code(s) {sorted(gone)} no longer "
                  "reported (tighten with --update)")
        eg5 = sorted(c for c in codes if c.startswith("EG5"))
        if eg5:
            failures.append(f"{tile}: precision certification failed: {eg5}")
        profile = kernel.get("precision", {})
        if not profile.get("derived"):
            failures.append(f"{tile}: no precision profile derived")
        elif profile.get("operation_bits", 0) < documented:
            failures.append(
                f"{tile}: derived {profile.get('operation_bits')} operation "
                f"bits, below the documented {documented}")

    if len(lint["kernels"]) < len(known):
        missing = set(known) - {k["tile"] for k in lint["kernels"]}
        failures.append(f"feasible set shrank; missing: {sorted(missing)}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"ok: {len(lint['kernels'])} kernels match the lint baseline, "
              f"all certified at >= {documented} operation bits")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
