// Tests for the shared benchmark-harness helpers (bench/bench_common.hpp):
// the geomean guard and the JSON artifact writer's metrics block.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hpp"

namespace egemm::bench {
namespace {

TEST(Geomean, EmptyInputIsNaNNotZero) {
  // 0.0 reads as "infinitely slower" in a speedup table; an empty sweep
  // must be impossible to mistake for a measurement.
  EXPECT_TRUE(std::isnan(geomean({})));
}

TEST(Geomean, SingleAndMultipleValues) {
  EXPECT_DOUBLE_EQ(geomean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-12);
}

TEST(WriteBenchJson, EmbedsRecordsAndMetricsBlock) {
  obs::registry().counter("test.bench_json");
  const std::string path =
      testing::TempDir() + "/egemm_test_bench_common.json";
  std::vector<BenchRecord> records;
  records.push_back({"BM_Demo/64", 123.5, 2.0e9});
  ASSERT_TRUE(write_bench_json(path, "deadbeef", records));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"git_sha\": \"deadbeef\""), std::string::npos);
  EXPECT_NE(json.find("\"BM_Demo/64\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.bench_json\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteBenchJson, EscapesNamesInRecords) {
  const std::string path =
      testing::TempDir() + "/egemm_test_bench_escape.json";
  std::vector<BenchRecord> records;
  records.push_back({"quote\"back\\slash", 1.0, 1.0});
  ASSERT_TRUE(write_bench_json(path, "sha", records));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ParseBenchJson, RoundTripsWriterOutput) {
  obs::registry().counter("test.parse_roundtrip");
  const std::string path =
      testing::TempDir() + "/egemm_test_bench_parse.json";
  std::vector<BenchRecord> records;
  records.push_back({"BM_A/64", 123.5, 2.0e9});
  records.push_back({"BM_MmaBlockPacked/avx2", 5.5e3, 2.4e10});
  ASSERT_TRUE(write_bench_json(path, "cafe", records));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::vector<BenchRecord> parsed =
      parse_bench_json_records(buffer.str());
  // The metrics block keys metrics BY name, so it must contribute no rows.
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].name, records[i].name);
    EXPECT_NEAR(parsed[i].ns_per_iter, records[i].ns_per_iter,
                records[i].ns_per_iter * 1e-5);
    EXPECT_NEAR(parsed[i].items_per_second, records[i].items_per_second,
                records[i].items_per_second * 1e-5);
  }
  std::remove(path.c_str());
}

TEST(ParseBenchJson, EmptyAndGarbageInputsYieldNoRows) {
  EXPECT_TRUE(parse_bench_json_records("").empty());
  EXPECT_TRUE(parse_bench_json_records("{\"benchmarks\": []}").empty());
  EXPECT_TRUE(parse_bench_json_records("not json at all").empty());
}

TEST(CompareBench, FlagsOnlyRowsPastTheThreshold) {
  const std::vector<BenchRecord> old_records = {
      {"BM_Stable", 100.0, 1.0e9},
      {"BM_Faster", 100.0, 1.0e9},
      {"BM_Slower", 100.0, 1.0e9},
      {"BM_Borderline", 100.0, 1.0e9},
  };
  const std::vector<BenchRecord> new_records = {
      {"BM_Stable", 101.0, 1.0e9},
      {"BM_Faster", 50.0, 2.0e9},
      {"BM_Slower", 200.0, 0.5e9},
      {"BM_Borderline", 110.0, 0.9e9},  // exactly at a +10% threshold
  };
  const BenchCompareReport report =
      compare_bench_records(old_records, new_records, 0.10);
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.regressions, 1u);  // only BM_Slower; at-threshold passes
  EXPECT_FALSE(report.rows[0].regressed);
  EXPECT_FALSE(report.rows[1].regressed);
  EXPECT_TRUE(report.rows[2].regressed);
  EXPECT_FALSE(report.rows[3].regressed);
  EXPECT_DOUBLE_EQ(report.rows[2].ratio, 2.0);
}

TEST(CompareBench, TracksDisjointRowsWithoutRegressing) {
  const std::vector<BenchRecord> old_records = {{"BM_Gone", 100.0, 1.0e9},
                                                {"BM_Shared", 100.0, 1.0e9}};
  const std::vector<BenchRecord> new_records = {{"BM_Shared", 90.0, 1.1e9},
                                                {"BM_New", 10.0, 1.0e9}};
  const BenchCompareReport report =
      compare_bench_records(old_records, new_records, 0.10);
  EXPECT_EQ(report.regressions, 0u);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].name, "BM_Shared");
  ASSERT_EQ(report.only_in_old.size(), 1u);
  EXPECT_EQ(report.only_in_old[0], "BM_Gone");
  ASSERT_EQ(report.only_in_new.size(), 1u);
  EXPECT_EQ(report.only_in_new[0], "BM_New");
}

TEST(CompareBench, SkipsRowsWithoutTimings) {
  // BM_EmulatedTile-style rows once had ns_per_iter but a 0 rate; a zeroed
  // timing on either side must not fabricate a ratio.
  const std::vector<BenchRecord> old_records = {{"BM_NoTiming", 0.0, 0.0},
                                                {"BM_Ok", 100.0, 1.0e9}};
  const std::vector<BenchRecord> new_records = {{"BM_NoTiming", 50.0, 1.0e9},
                                                {"BM_Ok", 100.0, 1.0e9}};
  const BenchCompareReport report =
      compare_bench_records(old_records, new_records, 0.10);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].name, "BM_Ok");
}

TEST(CompareBench, PrintReportsRegressionCount) {
  const std::vector<BenchRecord> old_records = {{"BM_X", 100.0, 1.0e9}};
  const std::vector<BenchRecord> new_records = {{"BM_X", 300.0, 0.3e9}};
  const BenchCompareReport report =
      compare_bench_records(old_records, new_records, 0.25);
  std::ostringstream os;
  print_bench_compare(report, 0.25, os);
  EXPECT_NE(os.str().find("REGRESSED"), std::string::npos);
  EXPECT_NE(os.str().find("1 REGRESSION"), std::string::npos);
}

}  // namespace
}  // namespace egemm::bench
