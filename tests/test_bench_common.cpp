// Tests for the shared benchmark-harness helpers (bench/bench_common.hpp):
// the geomean guard and the JSON artifact writer's metrics block.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hpp"

namespace egemm::bench {
namespace {

TEST(Geomean, EmptyInputIsNaNNotZero) {
  // 0.0 reads as "infinitely slower" in a speedup table; an empty sweep
  // must be impossible to mistake for a measurement.
  EXPECT_TRUE(std::isnan(geomean({})));
}

TEST(Geomean, SingleAndMultipleValues) {
  EXPECT_DOUBLE_EQ(geomean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-12);
}

TEST(WriteBenchJson, EmbedsRecordsAndMetricsBlock) {
  obs::registry().counter("test.bench_json");
  const std::string path =
      testing::TempDir() + "/egemm_test_bench_common.json";
  std::vector<BenchRecord> records;
  records.push_back({"BM_Demo/64", 123.5, 2.0e9});
  ASSERT_TRUE(write_bench_json(path, "deadbeef", records));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"git_sha\": \"deadbeef\""), std::string::npos);
  EXPECT_NE(json.find("\"BM_Demo/64\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.bench_json\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteBenchJson, EscapesNamesInRecords) {
  const std::string path =
      testing::TempDir() + "/egemm_test_bench_escape.json";
  std::vector<BenchRecord> records;
  records.push_back({"quote\"back\\slash", 1.0, 1.0});
  ASSERT_TRUE(write_bench_json(path, "sha", records));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace egemm::bench
