// Tests for the observability layer (DESIGN.md §12): registry sharding,
// span recording/export, and the compile-time OFF guarantees. The registry
// is process-global, so every test asserts deltas against a before-value or
// uses test-unique metric names.
#include <cmath>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace egemm::obs {
namespace {

// With EGEMM_OBSERVABILITY=OFF the span type must carry no state and the
// recording macros must be plain void expressions -- pinned at compile time
// so a regression cannot sneak past an OFF build.
#if !EGEMM_OBSERVABILITY_ENABLED
static_assert(std::is_empty_v<ScopedSpan>);
static_assert(std::is_void_v<decltype(EGEMM_TRACE_SCOPE("x"))>);
static_assert(std::is_void_v<decltype(EGEMM_COUNTER_ADD("x", 1))>);
static_assert(std::is_void_v<decltype(EGEMM_GAUGE_ADD("x", 1))>);
static_assert(std::is_void_v<decltype(EGEMM_GAUGE_SET("x", 1))>);
static_assert(std::is_void_v<decltype(EGEMM_HISTOGRAM_RECORD("x", 1))>);
static_assert(std::is_void_v<decltype(EGEMM_LATENCY_RECORD("x", 1))>);
#endif
static_assert(!kEnabled || !std::is_empty_v<ScopedSpan>);

TEST(Metrics, CounterHandleIsStableAndNamed) {
  Counter& a = registry().counter("test.handle");
  Counter& b = registry().counter("test.handle");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.handle");
}

TEST(Metrics, CounterConcurrentIncrementsSumExactly) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Counter& counter = registry().counter("test.concurrent");
  const std::uint64_t before = counter.value();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  // Per-thread cells are single-writer, so no increment can be lost.
  EXPECT_EQ(counter.value() - before, kThreads * kPerThread);
}

TEST(Metrics, MacroCachesHandleAndAddsDelta) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  const std::uint64_t before = registry().counter("test.macro").value();
  for (int i = 0; i < 10; ++i) EGEMM_COUNTER_ADD("test.macro", 3);
  EXPECT_EQ(registry().counter("test.macro").value() - before, 30u);
}

TEST(Metrics, GaugeLastValueSemantics) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Gauge& gauge = registry().gauge("test.gauge");
  gauge.set(5);
  EXPECT_EQ(gauge.value(), 5);
  gauge.add(-7);
  EXPECT_EQ(gauge.value(), -2);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  Histogram& hist = registry().histogram("test.hist");
  const std::uint64_t count_before = hist.count();
  const std::uint64_t sum_before = hist.sum();
  hist.record(0);   // bucket 0
  hist.record(1);   // bucket 1
  hist.record(2);   // bucket 2: [2, 4)
  hist.record(3);   // bucket 2
  hist.record(4);   // bucket 3: [4, 8)
  EXPECT_EQ(hist.count() - count_before, 5u);
  EXPECT_EQ(hist.sum() - sum_before, 10u);
  const MetricsSnapshot snap = registry().snapshot();
  for (const HistogramSample& sample : snap.histograms) {
    if (sample.name != "test.hist") continue;
    EXPECT_GE(sample.buckets[0], 1u);
    EXPECT_GE(sample.buckets[2], 2u);
    EXPECT_DOUBLE_EQ(sample.mean(),
                     static_cast<double>(sample.sum) /
                         static_cast<double>(sample.count));
    return;
  }
  FAIL() << "test.hist missing from snapshot";
}

TEST(Metrics, SnapshotIsSortedByName) {
  registry().counter("test.zzz");
  registry().counter("test.aaa");
  const MetricsSnapshot snap = registry().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST(Metrics, JsonBlockCarriesCountersAndParsesAsObject) {
  registry().counter("test.json_block");
  const std::string block = metrics_json_block();
  ASSERT_FALSE(block.empty());
  EXPECT_EQ(block.front(), '{');
  EXPECT_EQ(block.back(), '}');
  EXPECT_NE(block.find("\"counters\""), std::string::npos);
  EXPECT_NE(block.find("\"test.json_block\""), std::string::npos);
}

TEST(Trace, NestedSpansEmitWellFormedPairs) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_trace();
  set_tracing(true);
  {
    EGEMM_TRACE_SCOPE("outer");
    {
      EGEMM_TRACE_SCOPE("inner");
    }
  }
  set_tracing(false);
  const std::vector<TraceEvent> events = collect_trace();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start: outer opened first, and the inner interval must be
  // fully contained in the outer one on the same thread track.
  const TraceEvent& outer = events[0];
  const TraceEvent& inner = events[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  clear_trace();
}

TEST(Trace, DisabledTracingRecordsNothing) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_trace();
  set_tracing(false);
  {
    EGEMM_TRACE_SCOPE("ghost");
  }
  EXPECT_TRUE(collect_trace().empty());
}

TEST(Trace, ChromeExportCarriesSpansAndThreadNames) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_trace();
  set_thread_name("test-main");
  set_tracing(true);
  {
    EGEMM_TRACE_SCOPE("exported_span");
  }
  set_tracing(false);
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"exported_span\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("test-main"), std::string::npos);
  clear_trace();
}

TEST(Trace, SpansFromWorkerThreadsLandOnDistinctTracks) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_trace();
  set_tracing(true);
  const std::uint32_t main_tid = current_thread_id();
  std::uint32_t worker_tid = 0;
  std::thread worker([&worker_tid] {
    worker_tid = current_thread_id();
    EGEMM_TRACE_SCOPE("worker_span");
  });
  worker.join();
  set_tracing(false);
  EXPECT_NE(main_tid, worker_tid);
  const std::vector<TraceEvent> events = collect_trace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, worker_tid);
  clear_trace();
}

TEST(Trace, OffBuildRecordsNoEventsAtAll) {
  if (kEnabled) GTEST_SKIP() << "only meaningful with EGEMM_OBSERVABILITY=OFF";
  set_tracing(true);
  {
    EGEMM_TRACE_SCOPE("noop");
  }
  set_tracing(false);
  EXPECT_TRUE(collect_trace().empty());
}

}  // namespace
}  // namespace egemm::obs
