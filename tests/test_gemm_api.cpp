// Tests for the unified backend registry (gemm/gemm_api.hpp).
#include "gemm/gemm_api.hpp"

#include <string>

#include <gtest/gtest.h>

namespace egemm::gemm {
namespace {

TEST(GemmApi, BackendNamesMatchTable5) {
  EXPECT_STREQ(backend_name(Backend::kEgemmTC), "EGEMM-TC");
  EXPECT_STREQ(backend_name(Backend::kCublasFp32), "cuBLAS-CUDA-FP32");
  EXPECT_STREQ(backend_name(Backend::kCublasTcHalf), "cuBLAS-TC-Half");
  EXPECT_STREQ(backend_name(Backend::kCublasTcEmulation),
               "cuBLAS-TC-Emulation");
  EXPECT_STREQ(backend_name(Backend::kSdkFp32), "SDK-CUDA-FP32");
  EXPECT_STREQ(backend_name(Backend::kMarkidis), "Markidis");
  EXPECT_STREQ(backend_name(Backend::kDekker), "Dekker");
}

TEST(GemmApi, AllBackendsEnumerated) {
  const auto backends = all_backends();
  EXPECT_EQ(backends.size(), 7u);
}

class BackendDispatchTest : public ::testing::TestWithParam<Backend> {};

TEST_P(BackendDispatchTest, FunctionalResultIsCloseToReference) {
  const Backend backend = GetParam();
  const Matrix a = random_matrix(48, 32, -1, 1, 51);
  const Matrix b = random_matrix(32, 48, -1, 1, 52);
  const Matrix d = run_gemm(backend, a, b);
  const MatrixD ref = gemm_reference(a, b, nullptr);
  ASSERT_EQ(d.rows(), 48u);
  ASSERT_EQ(d.cols(), 48u);
  // Even the half backend stays within coarse absolute error at k=32.
  EXPECT_LT(max_abs_error(ref, d), 0.1) << backend_name(backend);
}

TEST_P(BackendDispatchTest, TimingIsPositiveAndFinite) {
  const Backend backend = GetParam();
  const KernelTiming t =
      time_gemm(backend, 2048, 2048, 2048, tcsim::tesla_t4());
  EXPECT_GT(t.seconds, 0.0) << backend_name(backend);
  EXPECT_GT(t.tflops, 0.0);
  EXPECT_LT(t.tflops, 70.0);  // nothing beats the Tensor Core peak
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendDispatchTest,
    ::testing::ValuesIn(all_backends()),
    [](const ::testing::TestParamInfo<Backend>& backend) {
      std::string name = backend_name(backend.param);
      for (char& c : name) {
        if (c == '-' || c == ' ') c = '_';
      }
      return name;
    });

TEST(GemmApi, DekkerTimingModelsSixteenInstructionSchedule) {
  // The Dekker schedule carries 4x the Tensor Core work of Alg. 1.
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const double alg1 = time_gemm(Backend::kEgemmTC, 4096, 4096, 4096, spec).seconds;
  const double dekker = time_gemm(Backend::kDekker, 4096, 4096, 4096, spec).seconds;
  EXPECT_GT(dekker, 3.0 * alg1);
  EXPECT_LT(dekker, 5.0 * alg1);
}

}  // namespace
}  // namespace egemm::gemm
