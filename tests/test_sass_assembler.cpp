// Tests for the SASS text assembler (sass/assembler.hpp) and the register
// allocator (sass/regalloc.hpp).
#include "sass/assembler.hpp"

#include <gtest/gtest.h>

#include "sass/codegen.hpp"
#include "sass/regalloc.hpp"
#include "sass/schedule.hpp"
#include "sass/verifier.hpp"

namespace egemm::sass {
namespace {

TEST(SassAssembler, InstrRoundTrip) {
  Instr instr;
  instr.op = Op::kLds;
  instr.dst = RegRange{40, 4};
  instr.srcs = {RegRange{3, 1}};
  instr.ctrl.wait_mask = 0x22;
  instr.ctrl.write_barrier = 0;
  instr.ctrl.stall = 2;
  instr.stage = 2;
  instr.step = 1;
  instr.comment = "fragment load";

  const std::string text = emit_instr(instr);
  EXPECT_NE(text.find("LDS.128 R40.4, R3 ;"), std::string::npos);
  EXPECT_NE(text.find("@W0"), std::string::npos);
  EXPECT_NE(text.find("@wait=0x22"), std::string::npos);

  std::string error;
  const auto parsed = parse_instr(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->op, instr.op);
  EXPECT_EQ(parsed->dst, instr.dst);
  ASSERT_EQ(parsed->srcs.size(), 1u);
  EXPECT_EQ(parsed->srcs[0], instr.srcs[0]);
  EXPECT_EQ(parsed->ctrl, instr.ctrl);
  EXPECT_EQ(parsed->stage, 2);
  EXPECT_EQ(parsed->step, 1);
  EXPECT_EQ(parsed->comment, "fragment load");
}

TEST(SassAssembler, StoreAndBranchRoundTrip) {
  Instr sts;
  sts.op = Op::kSts;
  sts.srcs = {RegRange{2, 1}, RegRange{8, 4}};
  std::string error;
  auto parsed = parse_instr(emit_instr(sts), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->dst.valid());
  EXPECT_EQ(parsed->srcs.size(), 2u);

  Instr bra;
  bra.op = Op::kBra;
  bra.target = "LOOP";
  parsed = parse_instr(emit_instr(bra), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->target.has_value());
  EXPECT_EQ(*parsed->target, "LOOP");
}

TEST(SassAssembler, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(parse_instr("FROB R1, R2 ;", &error).has_value());
  EXPECT_FALSE(parse_instr("MOV R1", &error).has_value());  // missing ';'
  EXPECT_FALSE(parse_instr("MOV R1 ; @bogus=1", &error).has_value());
}

TEST(SassAssembler, FullKernelRoundTrip) {
  CodegenParams params;
  params.k_iterations = 4;
  Kernel kernel = generate_egemm_kernel(params);
  schedule_latency_hiding(kernel);

  const std::string text = emit_text(kernel);
  const ParseResult parsed = parse_text(text);
  ASSERT_TRUE(parsed.success) << parsed.error;
  EXPECT_EQ(parsed.kernel.name, kernel.name);
  EXPECT_EQ(parsed.kernel.loop_trips, kernel.loop_trips);
  EXPECT_EQ(parsed.kernel.virtual_regs, kernel.virtual_regs);
  ASSERT_EQ(parsed.kernel.prologue.size(), kernel.prologue.size());
  ASSERT_EQ(parsed.kernel.body.size(), kernel.body.size());
  ASSERT_EQ(parsed.kernel.epilogue.size(), kernel.epilogue.size());
  for (std::size_t i = 0; i < kernel.body.size(); ++i) {
    EXPECT_EQ(emit_instr(parsed.kernel.body[i]), emit_instr(kernel.body[i]))
        << "body instruction " << i;
  }
  // A parsed kernel verifies exactly like the original.
  EXPECT_EQ(verify_kernel(parsed.kernel).size(), verify_kernel(kernel).size());
}

TEST(SassRegalloc, ScheduledTable4KernelFits) {
  CodegenParams params;
  params.k_iterations = 8;
  Kernel kernel = generate_egemm_kernel(params);
  schedule_latency_hiding(kernel);
  const AllocationReport report = allocate_kernel_registers(kernel);
  ASSERT_TRUE(report.success) << (report.errors.empty() ? "" : report.errors[0]);
  // The generated kernel is leaner than the paper's hand-written 232 (it
  // models fewer scalar temporaries) but must be solidly two-digit and
  // under the budget.
  EXPECT_GT(report.physical_registers, 100);
  EXPECT_LE(report.physical_registers, 255);
  EXPECT_GE(report.naive_registers, report.physical_registers);
  EXPECT_GT(report.overlay_values, 0);
}

TEST(SassRegalloc, DoubleBufferingCostsRegisters) {
  CodegenParams params;
  params.k_iterations = 8;
  Kernel naive = generate_egemm_kernel(params);
  Kernel fast = naive;
  schedule_latency_hiding(fast);
  const AllocationReport naive_report = allocate_kernel_registers(naive);
  const AllocationReport fast_report = allocate_kernel_registers(fast);
  ASSERT_TRUE(naive_report.success);
  ASSERT_TRUE(fast_report.success);
  EXPECT_EQ(fast_report.physical_registers,
            naive_report.physical_registers + 24);
}

TEST(SassRegalloc, RewritesOperandsConsistently) {
  CodegenParams params;
  params.k_iterations = 4;
  Kernel kernel = generate_egemm_kernel(params);
  Kernel original = kernel;
  const AllocationReport report = allocate_kernel_registers(kernel);
  ASSERT_TRUE(report.success);
  // Same virtual register => same physical register, everywhere.
  ASSERT_EQ(kernel.body.size(), original.body.size());
  std::map<std::int32_t, std::int32_t> mapping;
  for (std::size_t i = 0; i < kernel.body.size(); ++i) {
    const Instr& phys = kernel.body[i];
    const Instr& virt = original.body[i];
    if (virt.dst.valid()) {
      const auto [it, inserted] =
          mapping.emplace(virt.dst.index, phys.dst.index);
      if (!inserted) {
        EXPECT_EQ(it->second, phys.dst.index);
      }
      EXPECT_LT(phys.dst.index + phys.dst.width, 256);
    }
  }
  EXPECT_GE(mapping.size(), 4u);
}

TEST(SassRegalloc, TightBudgetFails) {
  CodegenParams params;
  params.k_iterations = 4;
  Kernel kernel = generate_egemm_kernel(params);
  const Kernel before = kernel;
  const AllocationReport report = allocate_kernel_registers(kernel, 64);
  EXPECT_FALSE(report.success);
  ASSERT_FALSE(report.errors.empty());
  // The kernel is left untouched on failure.
  EXPECT_EQ(emit_text(kernel), emit_text(before));
}

TEST(SassRegalloc, ScheduledKernelStillVerifiesAfterAllocation) {
  CodegenParams params;
  params.k_iterations = 8;
  Kernel kernel = generate_egemm_kernel(params);
  schedule_latency_hiding(kernel);
  ASSERT_TRUE(allocate_kernel_registers(kernel).success);
  const auto violations = verify_kernel(kernel, 3);
  for (const Violation& v : violations) {
    ADD_FAILURE() << v.where << "[" << v.index << "]: " << v.message;
  }
}

}  // namespace
}  // namespace egemm::sass
