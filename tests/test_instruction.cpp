// Tests for the SASS-level stream builder (tcsim/instruction.hpp).
#include "tcsim/instruction.hpp"

#include <array>
#include <vector>

#include <gtest/gtest.h>

namespace egemm::tcsim {
namespace {

EgemmStreamOptions default_opts() { return EgemmStreamOptions{}; }

TEST(IterationShape, MatchesTable4HandDerivation) {
  // (bm,bn,bk)=(128,128,32), (wm,wn,wk)=(64,32,8): the DESIGN.md §6
  // hand-derived per-iteration counts.
  const IterationShape s =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, default_opts());
  EXPECT_EQ(s.steps, 4u);                 // bk / wk
  EXPECT_EQ(s.ldg, 64u);                  // 4(bm+bn)bk / 512
  EXPECT_EQ(s.sts, 64u);
  EXPECT_EQ(s.lds_per_step, 192u);        // Eq. 7: 768 per iteration
  EXPECT_EQ(s.hmma_per_step, 512u);       // Eq. 3/5: 2048 per iteration
}

TEST(IterationShape, GlobalTrafficMatchesEq2) {
  for (const auto& [bm, bn, bk] :
       std::vector<std::array<int, 3>>{{128, 128, 32}, {64, 64, 16},
                                       {256, 128, 16}}) {
    const IterationShape s =
        egemm_iteration_shape(bm, bn, bk, 64, 32, 8, default_opts());
    EXPECT_EQ(s.ldg * 512u, static_cast<std::uint32_t>(4 * (bm + bn) * bk));
  }
}

TEST(IterationShape, HmmaCountMatchesEq3) {
  const IterationShape s =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, default_opts());
  // Eq. 3: 8 bm bn bk FLOPs per iteration; each HMMA.1688 retires 2048.
  const std::uint64_t flops = 8ull * 128 * 128 * 32;
  EXPECT_EQ(static_cast<std::uint64_t>(s.hmma_per_step) * s.steps,
            flops / 2048);
}

TEST(IterationShape, DekkerScheduleIsFourTimesAlg1) {
  EgemmStreamOptions dekker = default_opts();
  dekker.emulation_instructions = 16;
  const IterationShape a =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, default_opts());
  const IterationShape d =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, dekker);
  EXPECT_EQ(d.hmma_per_step, 4u * a.hmma_per_step);
  EXPECT_EQ(d.ldg, a.ldg);  // memory volume unchanged
}

TEST(IterationShape, NoFragCachingInflatesSharedTraffic) {
  EgemmStreamOptions no_frag = default_opts();
  no_frag.frag_caching = false;
  const IterationShape cached =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, default_opts());
  const IterationShape uncached =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, no_frag);
  // Table 2: A re-read wn/tn = 2 times, B wm/tm = 4 times, plus the C tile
  // streaming through shared memory -- strictly more LDS and extra STS.
  EXPECT_GT(uncached.lds_per_step, 2u * cached.lds_per_step);
  EXPECT_GT(uncached.sts, cached.sts);
  EXPECT_EQ(uncached.hmma_per_step, cached.hmma_per_step);
}

TEST(BlockProgram, ColdStartThenIterations) {
  const IterationShape s =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, default_opts());
  const SimProgram prog = build_egemm_block_program(s, 3, default_opts(), 128);
  ASSERT_FALSE(prog.instrs.empty());
  // Cold start leads with the LDG group.
  EXPECT_EQ(prog.instrs[0].op, Opcode::kLdg);
  EXPECT_EQ(prog.instrs[0].count, s.ldg);
  EXPECT_EQ(prog.instrs[1].op, Opcode::kSts);
  // Epilogue STG at the end.
  EXPECT_EQ(prog.instrs.back().op, Opcode::kLdg);
  EXPECT_EQ(prog.instrs.back().count, 128u);
}

TEST(BlockProgram, DynamicInstructionCountsScaleWithIterations) {
  const IterationShape s =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, default_opts());
  const SimProgram p1 = build_egemm_block_program(s, 1, default_opts());
  const SimProgram p4 = build_egemm_block_program(s, 4, default_opts());
  // HMMA work scales exactly with iterations.
  auto hmma_count = [](const SimProgram& p) {
    std::uint64_t total = 0;
    for (const auto& i : p.instrs) {
      if (i.op == Opcode::kHmma) total += i.count;
    }
    return total;
  };
  EXPECT_EQ(hmma_count(p4), 4 * hmma_count(p1));
  EXPECT_EQ(hmma_count(p1), 2048u);
}

TEST(BlockProgram, BothSchedulesCarrySameWork) {
  // The latency-hiding ablation must compare identical instruction
  // multisets -- only the order (and hazard structure) differs.
  const IterationShape s =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, default_opts());
  EgemmStreamOptions off = default_opts();
  off.latency_hiding = false;
  const SimProgram with = build_egemm_block_program(s, 8, default_opts());
  const SimProgram without = build_egemm_block_program(s, 8, off);
  auto count_op = [](const SimProgram& p, Opcode op) {
    std::uint64_t total = 0;
    for (const auto& i : p.instrs) {
      if (i.op == op) total += i.count;
    }
    return total;
  };
  for (const Opcode op :
       {Opcode::kLdg, Opcode::kSts, Opcode::kLds, Opcode::kHmma}) {
    EXPECT_EQ(count_op(with, op), count_op(without, op))
        << opcode_name(op);
  }
}

TEST(BlockProgram, TokensAreWellFormed) {
  const IterationShape s =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, default_opts());
  for (const bool hiding : {true, false}) {
    EgemmStreamOptions opts = default_opts();
    opts.latency_hiding = hiding;
    const SimProgram prog = build_egemm_block_program(s, 5, opts);
    for (const auto& instr : prog.instrs) {
      EXPECT_LT(instr.wait_token, prog.token_count);
      EXPECT_LT(instr.produce_token, prog.token_count);
      EXPECT_GE(instr.wait_token, -1);
      EXPECT_GT(instr.count, 0u);
    }
  }
}

TEST(Opcodes, PortsAndNames) {
  EXPECT_EQ(port_of(Opcode::kHmma), Port::kTensor);
  EXPECT_EQ(port_of(Opcode::kLds), Port::kMio);
  EXPECT_EQ(port_of(Opcode::kSts), Port::kMio);
  EXPECT_EQ(port_of(Opcode::kLdg), Port::kGlobal);
  EXPECT_EQ(port_of(Opcode::kFfma), Port::kCuda);
  EXPECT_STREQ(opcode_name(Opcode::kHmma), "HMMA");
  EXPECT_STREQ(opcode_name(Opcode::kLdg), "LDG");
}

}  // namespace
}  // namespace egemm::tcsim
