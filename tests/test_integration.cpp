// End-to-end integration tests across modules: the full EGEMM-TC story
// from profiling through emulation, tensorization, model selection and
// application acceleration.
#include <cmath>

#include <gtest/gtest.h>

#include "apps/app_timing.hpp"
#include "apps/dataset.hpp"
#include "apps/knn.hpp"
#include "core/profiling.hpp"
#include "fp/error_stats.hpp"
#include "gemm/gemm_api.hpp"
#include "model/solver.hpp"

namespace egemm {
namespace {

TEST(Integration, ProfilingLicensesTheEmulationDesign) {
  // Step 1 of the workflow: certify >= 21-bit operation precision...
  core::ProfilingConfig config;
  config.trials = 3000;
  const core::ProfilingReport report = core::profile_tensor_core(config);
  ASSERT_TRUE(report.certified());
  ASSERT_GE(report.certified_mantissa_bits, 21);

  // ...step 2: the 4-instruction design built on it delivers extended
  // precision end to end.
  const gemm::Matrix a = gemm::random_matrix(128, 128, -1, 1, 61);
  const gemm::Matrix b = gemm::random_matrix(128, 128, -1, 1, 62);
  const gemm::MatrixD ref = gemm::gemm_reference(a, b, nullptr);
  const double err = gemm::max_abs_error(ref, gemm::egemm_multiply(a, b));
  // 128 products of magnitude <= 1 with ~2^-21-accurate operands.
  EXPECT_LT(err, 128 * 0x1.0p-19);
}

TEST(Integration, Fig7ErrorOrderingAcrossSizes) {
  // The Fig. 7 series at functional-test scale: EGEMM-TC beats Markidis on
  // the mean element error at every size (the max errors converge at large
  // k, where fp32 accumulation noise dominates both -- Fig. 7 itself shows
  // the two nearly equal at N=128), and both are orders of magnitude below
  // cuBLAS-TC-Half.
  double prev_egemm = 0.0;
  for (const std::size_t n : {64u, 128u, 256u}) {
    const gemm::Matrix a = gemm::random_matrix(n, n, -1, 1, 70 + n);
    const gemm::Matrix b = gemm::random_matrix(n, n, -1, 1, 71 + n);
    const gemm::MatrixD ref = gemm::gemm_reference(a, b, nullptr);
    const gemm::Matrix egemm_d = gemm::egemm_multiply(a, b);
    const gemm::Matrix markidis_d = gemm::gemm_markidis(a, b);
    const double egemm_err = gemm::max_abs_error(ref, egemm_d);
    const double markidis_err = gemm::max_abs_error(ref, markidis_d);
    const double half_err =
        gemm::max_abs_error(ref, gemm::gemm_tc_half(a, b));
    const double egemm_mean =
        fp::compare(ref.data(), egemm_d.data()).mean_abs();
    const double markidis_mean =
        fp::compare(ref.data(), markidis_d.data()).mean_abs();
    EXPECT_LT(egemm_mean, markidis_mean) << n;
    EXPECT_LT(egemm_err, markidis_err * 1.25) << n;
    EXPECT_LT(markidis_err, half_err) << n;
    EXPECT_GT(half_err / egemm_err, 50.0) << n;  // paper reports ~350x
    EXPECT_GE(egemm_err, prev_egemm * 0.5) << n;  // grows (noisily) with N
    prev_egemm = egemm_err;
  }
}

TEST(Integration, SolverChoiceBeatsPerturbedTilings) {
  // The ablation DESIGN.md promises: the analytic model's pick is at least
  // as fast (in the cycle model) as its feasible neighbors.
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const model::SolverResult solved =
      model::solve(model::budget_from_spec(spec));
  ASSERT_TRUE(solved.found);

  gemm::EgemmOptions best_opts;
  best_opts.tile = solved.best;
  const double best = gemm::egemm_timing(8192, 8192, 8192, spec, best_opts)
                          .tflops;
  for (const model::SolverCandidate& alt : solved.feasible) {
    gemm::EgemmOptions opts;
    opts.tile = alt.config;
    const gemm::KernelTiming t =
        gemm::egemm_timing(8192, 8192, 8192, spec, opts);
    if (!t.feasible) continue;
    EXPECT_GE(best, 0.95 * t.tflops) << alt.config.describe();
  }
  // Also against tilings the model rejected for low intensity: even with
  // multiple blocks per SM sharing ports, they must not win.
  for (const gemm::TileConfig& rejected :
       {gemm::TileConfig{64, 64, 32, 32, 32, 8},
        gemm::TileConfig{64, 128, 32, 32, 32, 8}}) {
    gemm::EgemmOptions opts;
    opts.tile = rejected;
    const gemm::KernelTiming t =
        gemm::egemm_timing(8192, 8192, 8192, spec, opts);
    if (!t.feasible) continue;
    EXPECT_GE(best, t.tflops) << rejected.describe();
  }
}

TEST(Integration, Fig8OrderingHoldsAcrossAllSizesAndGpus) {
  for (const char* gpu : {"t4", "rtx6000"}) {
    const tcsim::GpuSpec spec = tcsim::spec_by_name(gpu);
    for (const std::uint64_t n : {1024u, 2048u, 4096u, 8192u, 16384u}) {
      const double egemm =
          gemm::time_gemm(gemm::Backend::kEgemmTC, n, n, n, spec).tflops;
      const double emu =
          gemm::time_gemm(gemm::Backend::kCublasTcEmulation, n, n, n, spec)
              .tflops;
      const double fp32 =
          gemm::time_gemm(gemm::Backend::kCublasFp32, n, n, n, spec).tflops;
      EXPECT_GT(egemm, emu) << gpu << " " << n;
      EXPECT_GT(emu, fp32) << gpu << " " << n;
    }
  }
}

TEST(Integration, EndToEndKnnWithEgemmMatchesOracle) {
  // Functional application path: build the app on the EGEMM backend and
  // verify results against brute force; then check the modeled speedup.
  const apps::PointCloud refs = apps::uniform_cloud(384, 32, -1, 1, 81);
  const apps::PointCloud queries = apps::uniform_cloud(96, 32, -1, 1, 82);
  apps::KnnOptions opts;
  opts.k = 5;
  const apps::KnnResult fast =
      apps::knn_search(queries.points, refs.points, opts);
  const apps::KnnResult oracle =
      apps::knn_bruteforce(queries.points, refs.points, 5);
  EXPECT_GE(apps::knn_agreement(fast, oracle), 0.97);

  apps::KnnWorkload workload;
  workload.references = workload.queries = 8192;
  const double speedup =
      apps::knn_timing(workload, gemm::Backend::kCublasFp32,
                       tcsim::tesla_t4())
          .total_seconds /
      apps::knn_timing(workload, gemm::Backend::kEgemmTC,
                       tcsim::tesla_t4())
          .total_seconds;
  EXPECT_GT(speedup, 1.3);  // §7.5: ~1.7x average on kNN
}

TEST(Integration, HeadlineAveragesOverPaperSizes) {
  // §7.3: 3.13x over cuBLAS and 11.18x over SDK averaged over sizes.
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  double cublas_ratio = 0.0, sdk_ratio = 0.0;
  const std::uint64_t sizes[] = {1024, 2048, 4096, 8192, 16384};
  for (const std::uint64_t n : sizes) {
    const double egemm =
        gemm::time_gemm(gemm::Backend::kEgemmTC, n, n, n, spec).tflops;
    cublas_ratio +=
        egemm /
        gemm::time_gemm(gemm::Backend::kCublasFp32, n, n, n, spec).tflops;
    sdk_ratio +=
        egemm / gemm::time_gemm(gemm::Backend::kSdkFp32, n, n, n, spec).tflops;
  }
  cublas_ratio /= 5.0;
  sdk_ratio /= 5.0;
  EXPECT_NEAR(cublas_ratio, 3.13, 0.7);
  EXPECT_NEAR(sdk_ratio, 11.18, 3.0);
}

}  // namespace
}  // namespace egemm
