// Tests for the software IEEE binary16 implementation (fp/half.hpp).
#include "fp/half.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "fp/half_batch.hpp"
#include "util/rng.hpp"

namespace egemm::fp {
namespace {

// -- golden bit patterns -----------------------------------------------------

struct Golden {
  float value;
  std::uint16_t bits;
};

class HalfGoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(HalfGoldenTest, RoundNearestMatchesGolden) {
  const Golden g = GetParam();
  EXPECT_EQ(f32_to_f16_bits(g.value, Rounding::kNearestEven), g.bits);
}

TEST_P(HalfGoldenTest, RoundTripIsExact) {
  const Golden g = GetParam();
  // Every golden value is exactly representable, so the round trip must
  // reproduce the original float.
  EXPECT_EQ(f16_bits_to_f32(g.bits), g.value);
}

INSTANTIATE_TEST_SUITE_P(
    KnownEncodings, HalfGoldenTest,
    ::testing::Values(Golden{0.0f, 0x0000}, Golden{-0.0f, 0x8000},
                      Golden{1.0f, 0x3c00}, Golden{-1.0f, 0xbc00},
                      Golden{2.0f, 0x4000}, Golden{0.5f, 0x3800},
                      Golden{65504.0f, 0x7bff},           // max finite
                      Golden{0x1.0p-14f, 0x0400},         // min normal
                      Golden{0x1.0p-24f, 0x0001},         // min subnormal
                      Golden{0x1.ff8p-15f, 0x03ff},       // large subnormal
                      Golden{1.5f, 0x3e00}, Golden{-2.25f, 0xc080},
                      Golden{0.333251953125f, 0x3555}));  // RN16(1/3)

// -- rounding behaviour ------------------------------------------------------

TEST(HalfRounding, TiesToEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half 1+2^-10: ties to the
  // even significand (1.0).
  EXPECT_EQ(f32_to_f16_bits(1.0f + 0x1.0p-11f, Rounding::kNearestEven),
            0x3c00);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
  EXPECT_EQ(f32_to_f16_bits(1.0f + 3 * 0x1.0p-11f, Rounding::kNearestEven),
            0x3c02);
}

TEST(HalfRounding, TowardZeroTruncates) {
  // Just under the tie point: both modes go down.
  EXPECT_EQ(f32_to_f16_bits(1.0f + 0x1.fp-12f, Rounding::kTowardZero), 0x3c00);
  // Just above: RN goes up, RZ still truncates.
  const float above = 1.0f + 0x1.2p-11f;
  EXPECT_EQ(f32_to_f16_bits(above, Rounding::kNearestEven), 0x3c01);
  EXPECT_EQ(f32_to_f16_bits(above, Rounding::kTowardZero), 0x3c00);
  // Negative values truncate toward zero, not toward -inf.
  EXPECT_EQ(f32_to_f16_bits(-above, Rounding::kTowardZero), 0xbc00);
}

TEST(HalfRounding, OverflowPolicyDiffersByMode) {
  // 65520 is the midpoint between 65504 and 2^16: RN -> inf (ties to even),
  // RZ -> max finite.
  EXPECT_EQ(f32_to_f16_bits(65520.0f, Rounding::kNearestEven), 0x7c00);
  EXPECT_EQ(f32_to_f16_bits(65520.0f, Rounding::kTowardZero), 0x7bff);
  // Just below the midpoint RN stays finite.
  EXPECT_EQ(f32_to_f16_bits(65519.0f, Rounding::kNearestEven), 0x7bff);
  // Far above: RN -> inf, RZ saturates.
  EXPECT_EQ(f32_to_f16_bits(1e30f, Rounding::kNearestEven), 0x7c00);
  EXPECT_EQ(f32_to_f16_bits(1e30f, Rounding::kTowardZero), 0x7bff);
  EXPECT_EQ(f32_to_f16_bits(-1e30f, Rounding::kNearestEven), 0xfc00);
}

TEST(HalfRounding, UnderflowToZeroAndSubnormals) {
  // Below half of the smallest subnormal: rounds to zero.
  EXPECT_EQ(f32_to_f16_bits(0x1.0p-26f, Rounding::kNearestEven), 0x0000);
  // Exactly half of the smallest subnormal: tie to even -> zero.
  EXPECT_EQ(f32_to_f16_bits(0x1.0p-25f, Rounding::kNearestEven), 0x0000);
  // Just above the midpoint: rounds to the smallest subnormal.
  EXPECT_EQ(f32_to_f16_bits(0x1.1p-25f, Rounding::kNearestEven), 0x0001);
  // Subnormal arithmetic grid: 3 * 2^-24.
  EXPECT_EQ(f32_to_f16_bits(3.0f * 0x1.0p-24f, Rounding::kNearestEven),
            0x0003);
  // Signed zero preserved.
  EXPECT_EQ(f32_to_f16_bits(-0x1.0p-26f, Rounding::kTowardZero), 0x8000);
  // binary32 subnormals are far below the binary16 grid.
  EXPECT_EQ(f32_to_f16_bits(std::numeric_limits<float>::denorm_min(),
                            Rounding::kNearestEven),
            0x0000);
}

TEST(HalfRounding, SubnormalCarryToMinNormal) {
  // The largest subnormal rounds up to the smallest normal when the
  // residual pushes it over.
  const float just_below_normal = 0x1.ffffp-15f;
  EXPECT_EQ(f32_to_f16_bits(just_below_normal, Rounding::kNearestEven),
            0x0400);
}

TEST(HalfSpecials, InfAndNaN) {
  EXPECT_EQ(f32_to_f16_bits(std::numeric_limits<float>::infinity(),
                            Rounding::kNearestEven),
            0x7c00);
  EXPECT_EQ(f32_to_f16_bits(-std::numeric_limits<float>::infinity(),
                            Rounding::kTowardZero),
            0xfc00);
  const std::uint16_t nan_bits = f32_to_f16_bits(
      std::numeric_limits<float>::quiet_NaN(), Rounding::kNearestEven);
  EXPECT_TRUE(Half::from_bits(nan_bits).is_nan());
  EXPECT_TRUE(std::isnan(f16_bits_to_f32(0x7e00)));
  EXPECT_TRUE(std::isinf(f16_bits_to_f32(0x7c00)));
}

// -- exhaustive properties over all 65536 bit patterns -----------------------

TEST(HalfExhaustive, RoundTripThroughFloatIsIdentity) {
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if (Half::from_bits(h).is_nan()) continue;  // NaN payloads canonicalize
    const float f = f16_bits_to_f32(h);
    EXPECT_EQ(f32_to_f16_bits(f, Rounding::kNearestEven), h) << "bits " << bits;
    EXPECT_EQ(f32_to_f16_bits(f, Rounding::kTowardZero), h) << "bits " << bits;
  }
}

TEST(HalfExhaustive, WideningMatchesDouble) {
  for (std::uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = f16_bits_to_f32(h);
    const double d = f16_bits_to_f64(h);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(d));
    } else {
      EXPECT_EQ(static_cast<double>(f), d);
    }
  }
}

// -- randomized properties ---------------------------------------------------

class HalfPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HalfPropertyTest, RoundNearestIsNearest) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 20000; ++trial) {
    const float x = rng.uniform(-70000.0f, 70000.0f);
    const Half h(x);
    if (!h.is_finite()) continue;
    const float hx = h.to_float();
    // No other half value may be strictly closer.
    const double err = std::fabs(static_cast<double>(hx) - static_cast<double>(x));
    const Half up = Half::from_bits(static_cast<std::uint16_t>(h.bits() + 1));
    const Half down = Half::from_bits(static_cast<std::uint16_t>(h.bits() - 1));
    for (const Half& neighbor : {up, down}) {
      if (!neighbor.is_finite()) continue;
      const double nerr = std::fabs(neighbor.to_double() - static_cast<double>(x));
      EXPECT_GE(nerr, err) << "x=" << x;
    }
  }
}

TEST_P(HalfPropertyTest, TowardZeroNeverIncreasesMagnitude) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 20000; ++trial) {
    const float x = rng.uniform(-65000.0f, 65000.0f);
    const Half h(x, Rounding::kTowardZero);
    EXPECT_LE(std::fabs(h.to_double()), std::fabs(static_cast<double>(x)));
    // And it is within one ulp below.
    const Half rn(x);
    EXPECT_LE(std::fabs(static_cast<double>(x)) - std::fabs(h.to_double()),
              std::fabs(static_cast<double>(x)) * 0x1.0p-10 + 0x1.0p-24);
    (void)rn;
  }
}

TEST_P(HalfPropertyTest, ConversionIsMonotonic) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 20000; ++trial) {
    const float a = rng.uniform(-70000.0f, 70000.0f);
    const float b = rng.uniform(-70000.0f, 70000.0f);
    const float lo = std::min(a, b);
    const float hi = std::max(a, b);
    EXPECT_LE(Half(lo).to_double(), Half(hi).to_double());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HalfPropertyTest,
                         ::testing::Values(1u, 7u, 1234567u));

// -- arithmetic ---------------------------------------------------------------

TEST(HalfArithmetic, BasicOperations) {
  const Half a(1.5f), b(2.5f);
  EXPECT_EQ((a + b).to_float(), 4.0f);
  EXPECT_EQ((b - a).to_float(), 1.0f);
  EXPECT_EQ((a * b).to_float(), 3.75f);
  EXPECT_EQ((b / Half(0.5f)).to_float(), 5.0f);
  EXPECT_EQ((-a).to_float(), -1.5f);
}

TEST(HalfArithmetic, AdditionRoundsOnce) {
  // 65504 + 2^-24 would need ~40 significand bits; the correctly rounded
  // binary16 result is 65504 (no double-rounding artifacts).
  const Half big = Half::max();
  const Half tiny = Half::min_subnormal();
  EXPECT_EQ((big + tiny).bits(), Half::max().bits());
  // 1 + (2^-11 + 2^-21): the addend is a representable half just above the
  // tie point, so the correctly rounded sum goes up to 1 + 2^-10.
  const Half one(1.0f);
  const Half t1 = Half::from_bits(0x1001);  // 2^-11 * (1 + 2^-10)
  EXPECT_EQ((one + t1).bits(), 0x3c01);
}

TEST(HalfArithmetic, ComparisonSemantics) {
  EXPECT_TRUE(Half(0.0f) == Half(-0.0f));
  EXPECT_FALSE(Half::quiet_nan() == Half::quiet_nan());
  EXPECT_TRUE(Half(1.0f) < Half(2.0f));
  EXPECT_TRUE(Half(1.0f) != Half(2.0f));
}

TEST(HalfClassification, Predicates) {
  EXPECT_TRUE(Half::zero().is_zero());
  EXPECT_TRUE(Half::from_bits(0x8000).is_zero());
  EXPECT_TRUE(Half::min_subnormal().is_subnormal());
  EXPECT_FALSE(Half::min_normal().is_subnormal());
  EXPECT_TRUE(Half::infinity().is_inf());
  EXPECT_FALSE(Half::infinity().is_finite());
  EXPECT_TRUE(Half::quiet_nan().is_nan());
  EXPECT_TRUE(Half(-3.0f).sign_bit());
  EXPECT_EQ(Half(2.0f).hex(), "0x4000");
}

// -- batch kernels (fp/half_batch.hpp) ---------------------------------------
// The span kernels are the scalar Half conversions restated as flat integer
// loops; they must agree bit-for-bit on every input, so the tests sweep the
// hand-picked boundary patterns plus a broad random sample in both modes.

std::vector<float> boundary_floats() {
  std::vector<float> v = {
      0.0f, -0.0f, 1.0f, -1.0f, 65504.0f, -65504.0f,
      65520.0f,                        // RN overflow midpoint -> inf
      65519.996f,                      // just under the midpoint
      100000.0f, -100000.0f,           // clear overflow
      0x1.0p-14f, 0x1.0p-24f,          // min normal / min subnormal half
      0x1.0p-25f,                      // RN ties to even -> zero
      0x1.008p-25f,                    // just above -> min subnormal
      0x1.ff8p-15f, -0x1.ff8p-15f,     // max subnormal
      1.0f + 0x1.0p-11f,               // tie -> even
      1.0f + 3 * 0x1.0p-11f,           // tie -> even (up)
      1.0f + 0x1.2p-11f,               // above tie
      0x1.0p-126f,                     // min normal float (half zero)
      std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::max(),
      -std::numeric_limits<float>::max(),
  };
  return v;
}

TEST(HalfBatch, NarrowingMatchesScalarOnBoundariesAndRandom) {
  util::Xoshiro256 rng(77);
  std::vector<float> in = boundary_floats();
  for (int i = 0; i < 50000; ++i) {
    // Random bit patterns cover the full encoding space, not just the
    // sampler's range.
    const auto bits = static_cast<std::uint32_t>(rng());
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    in.push_back(f);
  }
  std::vector<std::uint16_t> out(in.size());
  for (const Rounding mode : {Rounding::kNearestEven, Rounding::kTowardZero}) {
    f32_to_f16_bits_span(in, out, mode);
    for (std::size_t i = 0; i < in.size(); ++i) {
      ASSERT_EQ(out[i], f32_to_f16_bits(in[i], mode))
          << "i=" << i << " value=" << in[i]
          << " mode=" << (mode == Rounding::kNearestEven ? "RN" : "RZ");
    }
  }
}

TEST(HalfBatch, WideningMatchesScalarOnAllPatterns) {
  // All 2^16 encodings fit in one call.
  std::vector<std::uint16_t> bits(1 << 16);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint16_t>(i);
  }
  std::vector<float> widened(bits.size());
  f16_bits_to_f32_span(bits, widened);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const float scalar = f16_bits_to_f32(bits[i]);
    std::uint32_t got, want;
    std::memcpy(&got, &widened[i], sizeof(got));
    std::memcpy(&want, &scalar, sizeof(want));
    ASSERT_EQ(got, want) << "half bits 0x" << std::hex << bits[i];
  }
}

TEST(HalfBatch, RoundThroughComposesNarrowAndWiden) {
  util::Xoshiro256 rng(78);
  std::vector<float> in = boundary_floats();
  for (int i = 0; i < 20000; ++i) in.push_back(rng.uniform(-70000.f, 70000.f));
  std::vector<float> out(in.size());
  for (const Rounding mode : {Rounding::kNearestEven, Rounding::kTowardZero}) {
    f32_round_through_f16_span(in, out, mode);
    for (std::size_t i = 0; i < in.size(); ++i) {
      const float scalar = f16_bits_to_f32(f32_to_f16_bits(in[i], mode));
      std::uint32_t got, want;
      std::memcpy(&got, &out[i], sizeof(got));
      std::memcpy(&want, &scalar, sizeof(want));
      ASSERT_EQ(got, want) << "i=" << i << " value=" << in[i];
    }
  }
}

}  // namespace
}  // namespace egemm::fp
