// Tests for the discrete-event SM pipeline model (tcsim/pipeline.hpp).
#include "tcsim/pipeline.hpp"

#include <gtest/gtest.h>

#include "tcsim/instruction.hpp"

namespace egemm::tcsim {
namespace {

GpuSpec t4() { return tesla_t4(); }

TEST(Pipeline, EmptyProgramTakesNoTime) {
  SimProgram prog;
  const SimStats stats = simulate_block(prog, t4());
  EXPECT_EQ(stats.cycles, 0.0);
  EXPECT_EQ(stats.instructions, 0u);
}

TEST(Pipeline, SingleInstructionCostsIssuePlusLatency) {
  SimProgram prog;
  prog.emit(Opcode::kHmma, 1);
  const SimStats stats = simulate_block(prog, t4());
  const auto& timings = t4().timings;
  EXPECT_DOUBLE_EQ(stats.cycles, timings.hmma_issue + timings.hmma_latency);
}

TEST(Pipeline, GroupOccupiesPortLinearly) {
  SimProgram prog;
  prog.emit(Opcode::kHmma, 100);
  const SimStats stats = simulate_block(prog, t4());
  const auto& timings = t4().timings;
  EXPECT_DOUBLE_EQ(stats.cycles,
                   100 * timings.hmma_issue + timings.hmma_latency);
  EXPECT_DOUBLE_EQ(stats.port_busy[static_cast<std::size_t>(Port::kTensor)],
                   100 * timings.hmma_issue);
}

TEST(Pipeline, IndependentPortsOverlap) {
  // An HMMA burst and an LDS burst with no dependency must overlap almost
  // fully rather than serialize.
  SimProgram prog;
  prog.emit(Opcode::kLds, 200);   // 200 cycles on MIO
  prog.emit(Opcode::kHmma, 200);  // 470 cycles on tensor
  const SimStats stats = simulate_block(prog, t4());
  const double serial = 200 * 1.0 + 200 * 2.35;
  EXPECT_LT(stats.cycles, serial * 0.85);
}

TEST(Pipeline, TokenDependencySerializes) {
  SimProgram prog;
  const auto token = prog.new_token();
  prog.emit(Opcode::kLds, 200, -1, token);
  prog.emit(Opcode::kHmma, 200, token, -1);
  const SimStats stats = simulate_block(prog, t4());
  const auto& timings = t4().timings;
  const double expected = 200 * timings.lds_issue + timings.lds_latency +
                          200 * timings.hmma_issue + timings.hmma_latency;
  EXPECT_DOUBLE_EQ(stats.cycles, expected);
  EXPECT_GT(stats.stall_cycles, 0.0);
}

TEST(Pipeline, SamePortGroupsQueue) {
  SimProgram prog;
  prog.emit(Opcode::kLds, 100);
  prog.emit(Opcode::kSts, 100);  // same MIO port
  const SimStats stats = simulate_block(prog, t4());
  const auto& timings = t4().timings;
  EXPECT_GE(stats.cycles, 100 * timings.lds_issue + 100 * timings.sts_issue);
}

TEST(Pipeline, BarrierBlocksIssueCursor) {
  SimProgram prog;
  const auto token = prog.new_token();
  prog.emit(Opcode::kLdg, 10, -1, token);
  prog.emit(Opcode::kBar, 1, token, -1);
  prog.emit(Opcode::kHmma, 1, -1, -1);
  const SimStats stats = simulate_block(prog, t4());
  const GpuSpec spec = t4();
  // The HMMA cannot start before the LDG completion + barrier drain.
  const double ldg_issue = 512.0 / spec.l2_bytes_per_cycle_per_sm();
  const double earliest = 10 * ldg_issue + spec.timings.ldg_latency +
                          spec.timings.barrier_cost;
  EXPECT_GE(stats.cycles, earliest);
}

TEST(Pipeline, MultipleProducersMergeIntoMaxCompletion) {
  SimProgram prog;
  const auto token = prog.new_token();
  prog.emit(Opcode::kLds, 1, -1, token);    // completes early
  prog.emit(Opcode::kHmma, 300, -1, token); // completes late
  prog.emit(Opcode::kSts, 1, token, -1);    // must wait for the LATER one
  const SimStats stats = simulate_block(prog, t4());
  const auto& timings = t4().timings;
  EXPECT_GE(stats.cycles,
            300 * timings.hmma_issue + timings.hmma_latency +
                timings.sts_issue);
}

TEST(Pipeline, LatencyHidingScheduleBeatsNaive) {
  const EgemmStreamOptions on{};
  EgemmStreamOptions off;
  off.latency_hiding = false;
  const IterationShape shape = egemm_iteration_shape(128, 128, 32, 64, 32, 8, on);
  const SimProgram fast = build_egemm_block_program(shape, 64, on);
  const SimProgram slow = build_egemm_block_program(shape, 64, off);
  const SimStats fast_stats = simulate_block(fast, t4());
  const SimStats slow_stats = simulate_block(slow, t4());
  const double ratio = slow_stats.cycles / fast_stats.cycles;
  // Fig. 11: ~1.14x mean. The model must land in a credible band.
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.45);
}

TEST(Pipeline, SteadyStateIsComputeBoundForTable4) {
  // The Table 4 tiling was chosen compute-bound: the tensor port must be
  // the busiest resource by a wide margin.
  const EgemmStreamOptions opts{};
  const IterationShape shape =
      egemm_iteration_shape(128, 128, 32, 64, 32, 8, opts);
  const SimProgram prog = build_egemm_block_program(shape, 128, opts);
  const SimStats stats = simulate_block(prog, t4());
  const double tensor_util = stats.port_utilization(Port::kTensor);
  EXPECT_GT(tensor_util, 0.85);
  EXPECT_GT(tensor_util, stats.port_utilization(Port::kMio));
  EXPECT_GT(tensor_util, stats.port_utilization(Port::kGlobal));
}

TEST(PipelineTrace, RecordsEveryGroupOnItsPort) {
  SimProgram prog;
  prog.emit(Opcode::kLds, 10);
  prog.emit(Opcode::kHmma, 5);
  prog.emit(Opcode::kBar, 1);  // control flow: not a port event
  const TraceResult trace = simulate_block_trace(prog, t4());
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].op, Opcode::kLds);
  EXPECT_EQ(trace.events[0].port, Port::kMio);
  EXPECT_EQ(trace.events[0].count, 10u);
  EXPECT_EQ(trace.events[1].port, Port::kTensor);
  EXPECT_LT(trace.events[0].start, trace.events[0].busy_until);
  EXPECT_LE(trace.events[1].busy_until, trace.events[1].done);
  // Stats agree with the untraced run.
  EXPECT_EQ(trace.stats.cycles, simulate_block(prog, t4()).cycles);
}

TEST(PipelineTrace, TimelineMarksBusyBuckets) {
  SimProgram prog;
  prog.emit(Opcode::kHmma, 100);  // 235 cycles on tensor
  prog.emit(Opcode::kLds, 50);    // 50 cycles on MIO, overlapping
  const TraceResult trace = simulate_block_trace(prog, t4());
  const std::string chart = render_timeline(trace, 0, 300, 30);
  EXPECT_NE(chart.find('H'), std::string::npos);
  EXPECT_NE(chart.find('S'), std::string::npos);
  EXPECT_NE(chart.find("tensor"), std::string::npos);
  // Tensor row busy for ~235 of 300 cycles -> roughly 3/4 of its buckets.
  std::size_t h_count = 0;
  for (const char c : chart) h_count += c == 'H';
  EXPECT_GE(h_count, 20u);
  EXPECT_LE(h_count, 26u);
}

TEST(PipelineTrace, EmptyWindowRendersNothing) {
  const TraceResult trace;
  EXPECT_EQ(render_timeline(trace, 10, 10, 50), "");
  EXPECT_EQ(render_timeline(trace, 0, 100, 0), "");
}

TEST(Pipeline, InstructionsCounted) {
  SimProgram prog;
  prog.emit(Opcode::kLds, 10);
  prog.emit(Opcode::kHmma, 5);
  prog.emit(Opcode::kBar, 1);
  const SimStats stats = simulate_block(prog, t4());
  EXPECT_EQ(stats.instructions, 16u);
}

}  // namespace
}  // namespace egemm::tcsim
