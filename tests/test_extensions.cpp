// Tests for the extension features: the three-way split (exact binary32
// emulation with 9 Tensor Core instructions) and the BLAS-style gemm_ex
// entry point.
#include <cmath>

#include <gtest/gtest.h>

#include "core/split.hpp"
#include "fp/error_stats.hpp"
#include "gemm/gemm_api.hpp"
#include "util/rng.hpp"

namespace egemm {
namespace {

// -- three-way split -----------------------------------------------------------

TEST(Split3, DecompositionIsExactOnNormalRange) {
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 200000; ++trial) {
    const float x = rng.uniform(-1.0f, 1.0f);
    const core::SplitThirds t = core::split3_scalar(x);
    EXPECT_EQ(core::combine3_scalar(t), static_cast<double>(x)) << "x=" << x;
  }
}

TEST(Split3, PlanesAreOrderedByMagnitude) {
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 50000; ++trial) {
    const float x = rng.uniform(-1.0f, 1.0f);
    const core::SplitThirds t = core::split3_scalar(x);
    if (!t.mid.is_zero()) {
      EXPECT_GT(std::fabs(t.hi.to_double()), std::fabs(t.mid.to_double()));
    }
    if (!t.lo.is_zero()) {
      EXPECT_GT(std::fabs(t.mid.to_double()), std::fabs(t.lo.to_double()));
    }
  }
}

TEST(Split3, SpanVariantMatchesScalar) {
  util::Xoshiro256 rng(3);
  std::vector<float> input(300);
  for (auto& v : input) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> hi(input.size()), mid(input.size()), lo(input.size());
  core::split3_span_f32(input, hi, mid, lo);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const core::SplitThirds t = core::split3_scalar(input[i]);
    EXPECT_EQ(hi[i], t.hi.to_float());
    EXPECT_EQ(mid[i], t.mid.to_float());
    EXPECT_EQ(lo[i], t.lo.to_float());
  }
}

TEST(Split3, ThirdPlaneIsAbsorbedByTheFp32Accumulator) {
  // The documented negative result (egemm.hpp): for inputs in [-1, 1] the
  // 9-product three-way-split GEMM is BIT-IDENTICAL to Alg. 1 -- the hi
  // and mid planes coincide with Alg. 1's hi/lo, and the third plane's
  // products fall below the binary32 accumulator's ulp. Past 21 bits the
  // bottleneck is the accumulator, not the split.
  const gemm::Matrix a = gemm::random_matrix(256, 64, -1, 1, 11);
  const gemm::Matrix b = gemm::random_matrix(64, 256, -1, 1, 12);
  const gemm::Matrix alg1 = gemm::egemm_multiply(a, b);
  const gemm::Matrix three = gemm::egemm_multiply_3split(a, b);
  for (std::size_t i = 0; i < alg1.size(); ++i) {
    EXPECT_EQ(alg1.data()[i], three.data()[i]) << i;
  }
}

TEST(Split3, MidPlaneCoincidesWithTwoWayLoPlane) {
  util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 50000; ++trial) {
    const float x = rng.uniform(-1.0f, 1.0f);
    const core::SplitThirds t3 = core::split3_scalar(x);
    const core::SplitHalves t2 =
        core::split_scalar(x, core::SplitMethod::kRoundSplit);
    EXPECT_EQ(t3.hi.bits(), t2.hi.bits());
    EXPECT_EQ(t3.mid.bits(), t2.lo.bits());
  }
}

TEST(Split3, HandlesEdgeTilesAndC) {
  const gemm::Matrix a = gemm::random_matrix(33, 47, -1, 1, 15);
  const gemm::Matrix b = gemm::random_matrix(47, 29, -1, 1, 16);
  gemm::Matrix c(33, 29);
  c.fill(2.0f);
  const gemm::Matrix d = gemm::egemm_multiply_3split(a, b, &c);
  const gemm::MatrixD ref = gemm::gemm_reference(a, b, &c);
  EXPECT_LT(gemm::max_abs_error(ref, d), 1e-5);
}

TEST(Split3, TimingCostsRoughly9Over4) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const double alg1 = gemm::egemm_timing(8192, 8192, 8192, spec).seconds;
  const gemm::KernelTiming three =
      gemm::egemm_3split_timing(8192, 8192, 8192, spec);
  EXPECT_GT(three.seconds / alg1, 1.8);
  EXPECT_LT(three.seconds / alg1, 2.6);
  // Even the 9-instruction schedule stays ahead of CUDA-core FP32.
  const double fp32 =
      gemm::time_gemm(gemm::Backend::kCublasFp32, 8192, 8192, 8192, spec)
          .seconds;
  EXPECT_LT(three.seconds, fp32);
}

// -- gemm_ex ------------------------------------------------------------------

TEST(GemmEx, TransposeOps) {
  const gemm::Matrix a = gemm::random_matrix(24, 40, -1, 1, 21);  // k x m
  const gemm::Matrix b = gemm::random_matrix(32, 24, -1, 1, 22);  // n x k
  gemm::GemmExParams params;
  params.trans_a = gemm::Transpose::kTranspose;
  params.trans_b = gemm::Transpose::kTranspose;
  const gemm::Matrix d =
      gemm::gemm_ex(gemm::Backend::kEgemmTC, a, b, nullptr, params);
  ASSERT_EQ(d.rows(), 40u);
  ASSERT_EQ(d.cols(), 32u);
  const gemm::MatrixD ref =
      gemm::gemm_reference(gemm::transpose(a), gemm::transpose(b), nullptr);
  EXPECT_LT(gemm::max_abs_error(ref, d), 1e-4);
}

TEST(GemmEx, AlphaBetaScaling) {
  const gemm::Matrix a = gemm::random_matrix(32, 32, -1, 1, 23);
  const gemm::Matrix b = gemm::random_matrix(32, 32, -1, 1, 24);
  gemm::Matrix c(32, 32);
  c.fill(1.5f);
  gemm::GemmExParams params;
  params.alpha = 2.0f;
  params.beta = -0.5f;
  const gemm::Matrix d =
      gemm::gemm_ex(gemm::Backend::kEgemmTC, a, b, &c, params);
  const gemm::MatrixD product = gemm::gemm_reference(a, b, nullptr);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double expected = 2.0 * product.data()[i] - 0.5 * 1.5;
    EXPECT_NEAR(d.data()[i], expected, 1e-4);
  }
}

TEST(GemmEx, FastPathMatchesRunGemm) {
  const gemm::Matrix a = gemm::random_matrix(48, 32, -1, 1, 25);
  const gemm::Matrix b = gemm::random_matrix(32, 48, -1, 1, 26);
  gemm::Matrix c(48, 48);
  c.fill(0.25f);
  gemm::GemmExParams params;  // alpha 1, beta 0
  const gemm::Matrix d0 =
      gemm::gemm_ex(gemm::Backend::kEgemmTC, a, b, nullptr, params);
  const gemm::Matrix r0 = gemm::run_gemm(gemm::Backend::kEgemmTC, a, b);
  for (std::size_t i = 0; i < d0.size(); ++i) {
    EXPECT_EQ(d0.data()[i], r0.data()[i]);
  }
  params.beta = 1.0f;
  const gemm::Matrix d1 =
      gemm::gemm_ex(gemm::Backend::kEgemmTC, a, b, &c, params);
  const gemm::Matrix r1 = gemm::run_gemm(gemm::Backend::kEgemmTC, a, b, &c);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1.data()[i], r1.data()[i]);
  }
}

class GemmExBackendTest : public ::testing::TestWithParam<gemm::Backend> {};

TEST_P(GemmExBackendTest, AllBackendsSupportTheBlasSurface) {
  const gemm::Matrix a = gemm::random_matrix(20, 24, -1, 1, 27);  // k x m
  const gemm::Matrix b = gemm::random_matrix(20, 28, -1, 1, 28);  // k x n
  gemm::GemmExParams params;
  params.trans_a = gemm::Transpose::kTranspose;
  params.alpha = 0.5f;
  const gemm::Matrix d = gemm::gemm_ex(GetParam(), a, b, nullptr, params);
  ASSERT_EQ(d.rows(), 24u);
  ASSERT_EQ(d.cols(), 28u);
  const gemm::MatrixD ref =
      gemm::gemm_reference(gemm::transpose(a), b, nullptr);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(d.data()[i], 0.5 * ref.data()[i], 5e-3)
        << gemm::backend_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, GemmExBackendTest,
                         ::testing::ValuesIn(gemm::all_backends()),
                         [](const ::testing::TestParamInfo<gemm::Backend>& i) {
                           std::string name = gemm::backend_name(i.param);
                           for (char& ch : name) {
                             if (ch == '-' || ch == ' ') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace egemm
