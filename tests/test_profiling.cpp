// Tests for the generalized precision-profiling workflow (core/profiling.hpp).
#include "core/profiling.hpp"

#include <gtest/gtest.h>

#include "fp/float_bits.hpp"
#include "tcsim/tensor_core.hpp"

namespace egemm::core {
namespace {

ProfilingConfig quick_config(std::uint64_t trials = 2000) {
  ProfilingConfig config;
  config.trials = trials;
  config.seed = 2021;
  return config;
}

TEST(Profiling, TensorCoreCertifiesFloatHypothesis) {
  // The paper's central profiling result: the Tensor Core result matches
  // the binary32 probe on >= 21 leading mantissa bits over every trial.
  const ProfilingReport report = profile_tensor_core(quick_config(10000));
  ASSERT_TRUE(report.certified());
  EXPECT_EQ(report.certified_probe, "d_FLOAT");
  EXPECT_GE(report.certified_mantissa_bits, 21);
}

TEST(Profiling, TensorCoreRejectsHalfHypothesis) {
  const ProfilingReport report = profile_tensor_core(quick_config());
  ASSERT_EQ(report.probes.size(), 2u);
  const ProbeOutcome& half_probe = report.probes[0];
  EXPECT_EQ(half_probe.name, "d_HALF");
  EXPECT_LT(half_probe.min_matching_mantissa_bits, 21);
  EXPECT_FALSE(half_probe.bitwise_identical_always);
}

TEST(Profiling, FloatProbeIsNotAlwaysBitIdentical) {
  // The artifact shows a 1-bit difference in its example trial: the model
  // (grouped accumulation) matches sequential binary32 to >= 21 bits but
  // not always all 24 -- certify, but do not claim bitwise identity.
  const ProfilingReport report = profile_tensor_core(quick_config(10000));
  const ProbeOutcome& float_probe = report.probes[1];
  EXPECT_EQ(float_probe.name, "d_FLOAT");
  EXPECT_FALSE(float_probe.bitwise_identical_always);
  EXPECT_GE(float_probe.min_scale_relative_bits, 21.0);
}

TEST(Profiling, FailureInjectionBrokenCoreDoesNotLicenseEmulation) {
  // Fig. 2a as a *detector*: a specialized core that accumulates in
  // binary16 is correctly profiled as half-precision -- it certifies the
  // d_HALF hypothesis (bitwise identical) and must NOT license the
  // extended-precision 4-instruction design.
  const ProfilingReport report = profile_core(
      [](std::span<const fp::Half> a, std::span<const fp::Half> b, float c) {
        return tcsim::broken_tc_dot(a, b, c);
      },
      quick_config());
  EXPECT_TRUE(report.certified());
  EXPECT_EQ(report.certified_probe, "d_HALF");
  EXPECT_FALSE(report.licenses_extended_precision());
  for (const ProbeOutcome& probe : report.probes) {
    if (probe.name == "d_FLOAT") {
      EXPECT_LT(probe.min_scale_relative_bits, 21.0);
    }
  }
}

TEST(Profiling, BrokenCoreStillMatchesHalfProbeBitwise) {
  // ...and it matches the binary16 hypothesis exactly, identifying the
  // actual operation precision.
  const ProfilingReport report = profile_core(
      [](std::span<const fp::Half> a, std::span<const fp::Half> b, float c) {
        return tcsim::broken_tc_dot(a, b, c);
      },
      quick_config());
  EXPECT_TRUE(report.probes[0].bitwise_identical_always);
}

TEST(Profiling, DeterministicBySeed) {
  const ProfilingReport a = profile_tensor_core(quick_config());
  const ProfilingReport b = profile_tensor_core(quick_config());
  EXPECT_EQ(a.probes[1].min_matching_mantissa_bits,
            b.probes[1].min_matching_mantissa_bits);
  EXPECT_EQ(a.certified_mantissa_bits, b.certified_mantissa_bits);
}

TEST(Profiling, SampleTrialMirrorsArtifactPrintout) {
  const ProfilingSample sample = sample_trial(7);
  // Ordering claim from §A.3: the TC result is far from the half result and
  // within a few ulps of the single result.
  EXPECT_GE(fp::matching_mantissa_bits(sample.tc_result, sample.single_result),
            21);
  EXPECT_LT(fp::matching_mantissa_bits(sample.tc_result, sample.half_result),
            21);
}

TEST(Profiling, RequiredBitsAreConfigurable) {
  ProfilingConfig strict = quick_config();
  strict.required_mantissa_bits = 24;  // demand bitwise identity
  const ProfilingReport report = profile_tensor_core(strict);
  // The grouped accumulation differs from sequential in low bits, so full
  // 24-bit certification must fail.
  EXPECT_FALSE(report.certified());
}

TEST(Profiling, DotLengthIsConfigurable) {
  ProfilingConfig config = quick_config(500);
  config.dot_length = 64;
  const ProfilingReport report = profile_tensor_core(config);
  EXPECT_TRUE(report.certified());
  EXPECT_EQ(report.trials, 500u);
}

}  // namespace
}  // namespace egemm::core
