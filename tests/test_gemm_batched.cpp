// Tests for the batched/grouped GEMM entry points (DESIGN.md §18): bit
// identity with the loop-of-singles path per emulation-ladder rung and
// forced ISA tier, empty batches, mixed transpose/epilogue parameters,
// batches mixing every solver-feasible tiling, the strided convenience
// form, the contract overloads, the small-GEMM inline-threshold knob, and
// the batch-tagged telemetry records the flattened stream deposits.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "core/scheme.hpp"
#include "gemm/gemm_api.hpp"
#include "gemm/plan.hpp"
#include "model/analytic_model.hpp"
#include "model/solver.hpp"
#include "model/tuning_cache.hpp"
#include "obs/callrec.hpp"
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "simd/isa.hpp"
#include "tcsim/gpu_spec.hpp"

namespace egemm::gemm {
namespace {

using simd::IsaLevel;

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         (x.size() == 0 ||
          std::memcmp(x.data().data(), y.data().data(),
                      x.size() * sizeof(float)) == 0);
}

std::vector<IsaLevel> available_levels() {
  std::vector<IsaLevel> out;
  for (int level = 0; level < simd::kIsaLevelCount; ++level) {
    const auto candidate = static_cast<IsaLevel>(level);
    if (simd::isa_available(candidate)) out.push_back(candidate);
  }
  return out;
}

/// Restores ISA auto-resolution when a test that called force_isa exits.
struct IsaGuard {
  IsaGuard() = default;
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
  ~IsaGuard() { simd::reset_isa(); }
};

/// Restores the automatic small-GEMM inline threshold on exit.
struct ThresholdGuard {
  ThresholdGuard() = default;
  ThresholdGuard(const ThresholdGuard&) = delete;
  ThresholdGuard& operator=(const ThresholdGuard&) = delete;
  ~ThresholdGuard() { set_small_gemm_inline_threshold(0); }
};

// -- bit identity with the loop of singles -----------------------------------

TEST(GemmBatched, GroupedMatchesSingleLoopPerSchemeAndIsaTier) {
  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kM = 48, kN = 40, kK = 32;
  for (const IsaLevel level : available_levels()) {
    const IsaGuard guard;
    ASSERT_EQ(simd::force_isa(level), level);
    for (const core::SchemeId scheme : core::scheme_ladder()) {
      GemmContext ctx;
      const auto plan = ctx.plan_scheme(scheme, kM, kN, kK);
      std::vector<Matrix> a, b;
      std::vector<Matrix> single(kBatch), grouped(kBatch);
      for (std::size_t i = 0; i < kBatch; ++i) {
        const auto seed = static_cast<unsigned>(100u * (static_cast<unsigned>(level) + 1) + 2u * static_cast<unsigned>(i));
        a.push_back(random_matrix(kM, kK, -2.0f, 2.0f, seed));
        b.push_back(random_matrix(kK, kN, -2.0f, 2.0f, seed + 1));
      }
      for (std::size_t i = 0; i < kBatch; ++i) {
        plan->execute(ctx, a[i], b[i], nullptr, single[i]);
      }
      std::vector<GroupedGemm> work(kBatch);
      for (std::size_t i = 0; i < kBatch; ++i) {
        work[i] = GroupedGemm{plan, &a[i], &b[i], nullptr, &grouped[i]};
      }
      ctx.execute_grouped(work);
      for (std::size_t i = 0; i < kBatch; ++i) {
        EXPECT_TRUE(bitwise_equal(grouped[i], single[i]))
            << "scheme=" << core::scheme_name(scheme)
            << " isa=" << simd::isa_name(level) << " item=" << i;
      }
    }
  }
}

TEST(GemmBatched, BatchedApiMatchesGemmExLoopAcrossIsaTiers) {
  constexpr std::size_t kBatch = 6;
  constexpr std::size_t kDim = 40;
  for (const IsaLevel level : available_levels()) {
    const IsaGuard guard;
    ASSERT_EQ(simd::force_isa(level), level);
    std::vector<Matrix> a, b, c;
    for (std::size_t i = 0; i < kBatch; ++i) {
      const auto seed = static_cast<unsigned>(300u * (static_cast<unsigned>(level) + 1) + 3u * static_cast<unsigned>(i));
      a.push_back(random_matrix(kDim, kDim, -1.0f, 1.0f, seed));
      b.push_back(random_matrix(kDim, kDim, -1.0f, 1.0f, seed + 1));
      c.push_back(random_matrix(kDim, kDim, -1.0f, 1.0f, seed + 2));
    }
    GemmExParams params;
    params.alpha = 0.75f;
    params.beta = 0.25f;
    GemmContext batched_ctx;
    const std::vector<Matrix> batched =
        gemm_batched(batched_ctx, Backend::kEgemmTC, a, b, c, params);
    ASSERT_EQ(batched.size(), kBatch);
    GemmContext single_ctx;
    for (std::size_t i = 0; i < kBatch; ++i) {
      const Matrix expect =
          gemm_ex(single_ctx, Backend::kEgemmTC, a[i], b[i], &c[i], params);
      EXPECT_TRUE(bitwise_equal(batched[i], expect))
          << "isa=" << simd::isa_name(level) << " item=" << i;
    }
  }
}

TEST(GemmBatched, EmptyBatchesAreNoOps) {
  GemmContext ctx;
  const std::vector<Matrix> none =
      gemm_batched(ctx, Backend::kEgemmTC, {}, {});
  EXPECT_TRUE(none.empty());
  gemm_grouped(ctx, Backend::kEgemmTC, {});
  ctx.execute_grouped({});
  EXPECT_EQ(ctx.plan_misses(), 0u);  // nothing was planned, let alone run
}

TEST(GemmBatched, GroupedMixedTransposeAndEpilogueMatchesGemmEx) {
  // All four transpose combinations plus alpha/beta epilogues in ONE
  // grouped call; each item must land bit-identical to its own gemm_ex.
  constexpr std::size_t kM = 24, kN = 20, kK = 28;
  struct Case {
    Transpose ta, tb;
    float alpha, beta;
  };
  const std::vector<Case> cases = {
      {Transpose::kNone, Transpose::kNone, 1.0f, 0.0f},
      {Transpose::kTranspose, Transpose::kNone, 1.0f, 1.0f},
      {Transpose::kNone, Transpose::kTranspose, -0.5f, 0.25f},
      {Transpose::kTranspose, Transpose::kTranspose, 2.0f, -1.0f},
  };
  std::vector<Matrix> a, b, c;
  std::vector<GemmExParams> params(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto seed = static_cast<unsigned>(500 + 3 * i);
    const bool ta = cases[i].ta == Transpose::kTranspose;
    const bool tb = cases[i].tb == Transpose::kTranspose;
    a.push_back(random_matrix(ta ? kK : kM, ta ? kM : kK, -1.0f, 1.0f, seed));
    b.push_back(
        random_matrix(tb ? kN : kK, tb ? kK : kN, -1.0f, 1.0f, seed + 1));
    c.push_back(random_matrix(kM, kN, -1.0f, 1.0f, seed + 2));
    params[i].trans_a = cases[i].ta;
    params[i].trans_b = cases[i].tb;
    params[i].alpha = cases[i].alpha;
    params[i].beta = cases[i].beta;
  }
  std::vector<Matrix> grouped(cases.size());
  std::vector<GroupedGemmItem> items(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    items[i] = GroupedGemmItem{&a[i], &b[i], &c[i], &grouped[i], params[i]};
  }
  GemmContext grouped_ctx;
  gemm_grouped(grouped_ctx, Backend::kEgemmTC, items);
  GemmContext single_ctx;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Matrix expect =
        gemm_ex(single_ctx, Backend::kEgemmTC, a[i], b[i], &c[i], params[i]);
    EXPECT_TRUE(bitwise_equal(grouped[i], expect)) << "item=" << i;
  }
}

TEST(GemmBatched, GroupedMixesEveryFeasibleTilingBitIdentically) {
  // One batch carrying a plan per solver-feasible tiling: the flattened
  // stream interleaves blocks of every tile shape and must still match
  // the per-item execute loop exactly.
  const model::SolverResult result =
      model::solve(model::budget_from_spec(tcsim::tesla_t4()));
  ASSERT_TRUE(result.found);
  ASSERT_GE(result.feasible.size(), 2u);
  GemmContext ctx;
  std::vector<std::shared_ptr<const GemmPlan>> plans;
  plans.reserve(result.feasible.size());
  for (const model::SolverCandidate& candidate : result.feasible) {
    plans.push_back(ctx.plan_scheme(core::SchemeId::kRound2, 48, 36, 32,
                                    ExecEngine::kPacked, candidate.config));
  }
  const std::size_t batch = plans.size();
  std::vector<Matrix> a, b;
  std::vector<Matrix> single(batch), grouped(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto seed = static_cast<unsigned>(700 + 2 * i);
    a.push_back(random_matrix(48, 32, -1.0f, 1.0f, seed));
    b.push_back(random_matrix(32, 36, -1.0f, 1.0f, seed + 1));
  }
  for (std::size_t i = 0; i < batch; ++i) {
    plans[i]->execute(ctx, a[i], b[i], nullptr, single[i]);
  }
  std::vector<GroupedGemm> work(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    work[i] = GroupedGemm{plans[i], &a[i], &b[i], nullptr, &grouped[i]};
  }
  ctx.execute_grouped(work);
  for (std::size_t i = 0; i < batch; ++i) {
    EXPECT_TRUE(bitwise_equal(grouped[i], single[i]))
        << "tiling index " << i << " (bm=" << plans[i]->tile().bm
        << " bn=" << plans[i]->tile().bn << ")";
  }
}

TEST(GemmBatched, StridedFormMatchesSpanForm) {
  constexpr std::size_t kBatch = 3;
  constexpr std::size_t kM = 16, kN = 12, kK = 20;
  std::vector<Matrix> a, b;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto seed = static_cast<unsigned>(900 + 2 * i);
    a.push_back(random_matrix(kM, kK, -1.0f, 1.0f, seed));
    b.push_back(random_matrix(kK, kN, -1.0f, 1.0f, seed + 1));
  }
  // Row-major stacks: item i occupies rows [i*m, (i+1)*m) of A and
  // [i*k, (i+1)*k) of B, i.e. contiguous element blocks.
  Matrix a_stack(kBatch * kM, kK);
  Matrix b_stack(kBatch * kK, kN);
  for (std::size_t i = 0; i < kBatch; ++i) {
    std::memcpy(a_stack.data().data() + i * kM * kK, a[i].data().data(),
                kM * kK * sizeof(float));
    std::memcpy(b_stack.data().data() + i * kK * kN, b[i].data().data(),
                kK * kN * sizeof(float));
  }
  GemmContext ctx;
  const Matrix d_stack =
      gemm_batched_strided(ctx, Backend::kEgemmTC, kBatch, a_stack, b_stack);
  ASSERT_EQ(d_stack.rows(), kBatch * kM);
  ASSERT_EQ(d_stack.cols(), kN);
  const std::vector<Matrix> d = gemm_batched(ctx, Backend::kEgemmTC, a, b);
  for (std::size_t i = 0; i < kBatch; ++i) {
    EXPECT_EQ(std::memcmp(d_stack.data().data() + i * kM * kN,
                          d[i].data().data(), kM * kN * sizeof(float)),
              0)
        << "item=" << i;
  }
}

TEST(GemmBatched, ContractBatchedMatchesContractLoop) {
  // With explicit (> 0) scales the batch-wide resolution is exactly the
  // per-item resolution, so the contract batch must be bit-identical to
  // the per-item contract gemm_ex loop.
  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kDim = 32;
  core::AccuracyContract contract;
  contract.max_abs_error = 1e-2;
  contract.a_scale = 2.0;
  contract.b_scale = 2.0;
  std::vector<Matrix> a, b;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto seed = static_cast<unsigned>(1100 + 2 * i);
    a.push_back(random_matrix(kDim, kDim, -2.0f, 2.0f, seed));
    b.push_back(random_matrix(kDim, kDim, -2.0f, 2.0f, seed + 1));
  }
  GemmContext batched_ctx;
  const std::vector<Matrix> batched =
      gemm_batched(batched_ctx, a, b, {}, GemmExParams{}, contract);
  ASSERT_EQ(batched.size(), kBatch);
  GemmContext single_ctx;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const Matrix expect =
        gemm_ex(single_ctx, a[i], b[i], nullptr, GemmExParams{}, contract);
    EXPECT_TRUE(bitwise_equal(batched[i], expect)) << "item=" << i;
  }
}

// -- the small-GEMM inline-threshold knob ------------------------------------

TEST(GemmBatched, InlineThresholdKnobRoundTripsAndPreservesResults) {
  const ThresholdGuard guard;
  // The automatic threshold consults the loaded tuning file; make sure
  // this process resolves against the built-in default instead.
  ::unsetenv("EGEMM_TUNING_FILE");
  model::TuningCache::global().clear();
  set_small_gemm_inline_threshold(12345);
  EXPECT_EQ(small_gemm_inline_threshold(), 12345u);
  set_small_gemm_inline_threshold(0);
  // No tuning file is loaded in this test binary, so 0 restores the 64^3
  // built-in default.
  EXPECT_EQ(small_gemm_inline_threshold(),
            std::size_t{64} * 64 * 64);

  // Both extreme settings must leave batched results bit-identical to the
  // singles loop: the threshold selects a schedule (fused/serial vs
  // pipelined dispatch), never an operation sequence.
  constexpr std::size_t kBatch = 4;
  constexpr std::size_t kDim = 48;
  std::vector<Matrix> a, b;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto seed = static_cast<unsigned>(1300 + 2 * i);
    a.push_back(random_matrix(kDim, kDim, -1.0f, 1.0f, seed));
    b.push_back(random_matrix(kDim, kDim, -1.0f, 1.0f, seed + 1));
  }
  GemmContext single_ctx;
  std::vector<Matrix> expect;
  for (std::size_t i = 0; i < kBatch; ++i) {
    expect.push_back(
        gemm_ex(single_ctx, Backend::kEgemmTC, a[i], b[i], nullptr, {}));
  }
  for (const std::size_t threshold : {std::size_t{1}, std::size_t{1} << 30}) {
    set_small_gemm_inline_threshold(threshold);
    GemmContext ctx;
    const std::vector<Matrix> batched =
        gemm_batched(ctx, Backend::kEgemmTC, a, b);
    ASSERT_EQ(batched.size(), kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      EXPECT_TRUE(bitwise_equal(batched[i], expect[i]))
          << "threshold=" << threshold << " item=" << i;
    }
  }
}

// -- batch-tagged telemetry --------------------------------------------------

TEST(GemmBatched, GroupedDepositsBatchTaggedCallRecords) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  constexpr std::size_t kBatch = 3;
  constexpr std::size_t kDim = 32;
  GemmContext ctx;
  const auto plan = ctx.plan(Backend::kEgemmTC, kDim, kDim, kDim);
  std::vector<Matrix> a, b, d(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto seed = static_cast<unsigned>(1500 + 2 * i);
    a.push_back(random_matrix(kDim, kDim, -1.0f, 1.0f, seed));
    b.push_back(random_matrix(kDim, kDim, -1.0f, 1.0f, seed + 1));
  }
  std::vector<GroupedGemm> work(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    work[i] = GroupedGemm{plan, &a[i], &b[i], nullptr, &d[i]};
  }
  obs::clear_call_records();
  ctx.execute_grouped(work);
  const std::vector<obs::CallRecord> records = obs::drain_call_records();
  const obs::CallRecord* tagged = nullptr;
  for (const obs::CallRecord& rec : records) {
    if (rec.batch_id != 0 && rec.m == kDim) tagged = &rec;
  }
  ASSERT_NE(tagged, nullptr)
      << "no batch-tagged record among " << records.size();
  EXPECT_EQ(tagged->batch, kBatch);  // one record covers the shape class
  EXPECT_GT(tagged->total_ns, 0u);
  EXPECT_EQ(tagged->flops, kBatch * 2 * kDim * kDim * kDim);

  const obs::CallSummary summary = obs::summarize_calls(records);
  bool found_class = false;
  for (const obs::CallClassSummary& cls : summary.classes) {
    if (cls.m != kDim || cls.batch != kBatch) continue;
    found_class = true;
    EXPECT_EQ(cls.gemms, kBatch);
    EXPECT_EQ(cls.batched_records, 1u);
  }
  EXPECT_TRUE(found_class) << "batch class missing from summary";
}

// -- plan-cache occupancy/eviction observability -----------------------------

TEST(GemmBatched, PlanCacheEvictionCountersAndGaugesPublish) {
  GemmContext ctx(2);
  (void)ctx.plan(Backend::kEgemmTC, 16, 16, 16);
  (void)ctx.plan(Backend::kEgemmTC, 24, 24, 24);
  (void)ctx.plan(Backend::kEgemmTC, 32, 32, 32);  // evicts the first plan
  EXPECT_EQ(ctx.plan_evictions(), 1u);
  EXPECT_EQ(ctx.cached_plans(), 2u);
  EXPECT_EQ(ctx.plan_capacity(), 2u);
  if (!obs::kEnabled) return;
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  bool saw_size = false, saw_capacity = false, saw_evictions = false;
  for (const auto& gauge : snap.gauges) {
    if (gauge.name == "gemm.plan.cache.size") saw_size = true;
    if (gauge.name == "gemm.plan.cache.capacity") saw_capacity = true;
  }
  for (const auto& counter : snap.counters) {
    if (counter.name == "gemm.plan.cache.evictions" && counter.value >= 1) {
      saw_evictions = true;
    }
  }
  EXPECT_TRUE(saw_size);
  EXPECT_TRUE(saw_capacity);
  EXPECT_TRUE(saw_evictions);
}

}  // namespace
}  // namespace egemm::gemm
