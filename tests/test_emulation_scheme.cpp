// The emulation-precision ladder (DESIGN.md §16): scheme registry and
// classification, per-rung a-priori bounds (dominance over the regression
// corpus, ladder monotonicity), accuracy-contract resolution/selection,
// scheme identity through the plan cache, and the scheme-aware static
// cross-check that catches a kernel claiming a rung it does not implement.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "core/split.hpp"
#include "gemm/gemm_api.hpp"
#include "gemm/matrix.hpp"
#include "gemm/plan.hpp"
#include "obs/metrics.hpp"
#include "sass/analysis/precision.hpp"
#include "verify/differential.hpp"
#include "verify/error_model.hpp"
#include "verify/fuzzer.hpp"
#include "verify/oracle.hpp"

namespace egemm {
namespace {

using core::AccuracyContract;
using core::BoundInputs;
using core::SchemeId;

// -- ladder registry ---------------------------------------------------------

TEST(SchemeLadder, OrderNamesAndIds) {
  const std::span<const SchemeId> ladder = core::scheme_ladder();
  ASSERT_EQ(ladder.size(), core::kSchemeCount);
  const char* const expected[] = {"half",        "markidis",
                                  "truncate-2term", "round-2term",
                                  "slice-3term", "recovery-3term"};
  for (std::size_t i = 0; i < core::kSchemeCount; ++i) {
    EXPECT_EQ(ladder[i], static_cast<SchemeId>(i));
    EXPECT_STREQ(core::scheme_name(ladder[i]), expected[i]);
    EXPECT_EQ(core::scheme(ladder[i]).id, ladder[i]);
  }
}

TEST(SchemeLadder, SplitBitsStrictlyIncreaseAlongTheLadder) {
  const int expected_split_bits[] = {10, 19, 20, 21, 30, 32};
  const int expected_operation_bits[] = {10, 19, 20, 21, 24, 24};
  int prev = 0;
  for (std::size_t i = 0; i < core::kSchemeCount; ++i) {
    const core::SchemeDescriptor& desc =
        core::scheme(static_cast<SchemeId>(i));
    EXPECT_EQ(desc.split_bits, expected_split_bits[i]) << desc.name;
    EXPECT_EQ(desc.operation_bits, expected_operation_bits[i]) << desc.name;
    EXPECT_GT(desc.split_bits, prev) << desc.name;
    prev = desc.split_bits;
    // The binary32 accumulator caps the operation precision at 24 bits.
    EXPECT_EQ(desc.operation_bits, std::min(desc.split_bits, 24)) << desc.name;
  }
}

TEST(SchemeLadder, TermCountsAndPlanes) {
  const int expected_terms[] = {1, 3, 4, 4, 9, 9};
  const int expected_planes[] = {1, 2, 2, 2, 3, 3};
  for (std::size_t i = 0; i < core::kSchemeCount; ++i) {
    const SchemeId id = static_cast<SchemeId>(i);
    const core::SchemeDescriptor& desc = core::scheme(id);
    EXPECT_EQ(desc.term_count, expected_terms[i]) << desc.name;
    EXPECT_EQ(desc.planes, expected_planes[i]) << desc.name;
    // The descriptor's term list, the induced profile grid, and the
    // declared count must all agree.
    EXPECT_EQ(core::scheme_profile(id).term_count(), desc.term_count)
        << desc.name;
    std::set<std::pair<int, int>> unique;
    for (int t = 0; t < desc.term_count; ++t) {
      const core::SchemeTerm& term = desc.terms[static_cast<std::size_t>(t)];
      EXPECT_GE(term.a_depth, 0);
      EXPECT_LT(term.a_depth, desc.planes);
      EXPECT_GE(term.b_depth, 0);
      EXPECT_LT(term.b_depth, desc.planes);
      unique.emplace(term.a_depth, term.b_depth);
    }
    EXPECT_EQ(static_cast<int>(unique.size()), desc.term_count) << desc.name;
  }
}

TEST(SchemeLadder, ParseSchemeNameRoundTrips) {
  for (const SchemeId id : core::scheme_ladder()) {
    const std::optional<SchemeId> parsed =
        core::parse_scheme_name(core::scheme_name(id));
    ASSERT_TRUE(parsed.has_value()) << core::scheme_name(id);
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(core::parse_scheme_name("bogus").has_value());
  EXPECT_FALSE(core::parse_scheme_name("").has_value());
  EXPECT_FALSE(core::parse_scheme_name("Round-2term").has_value());
}

// -- profile classification --------------------------------------------------

TEST(SchemeClassify, ProfileRoundTripsForEveryRung) {
  for (const SchemeId id : core::scheme_ladder()) {
    const std::optional<SchemeId> back =
        core::classify_scheme(core::scheme_profile(id));
    ASSERT_TRUE(back.has_value()) << core::scheme_name(id);
    EXPECT_EQ(*back, id) << core::scheme_name(id);
  }
}

TEST(SchemeClassify, MismatchedProfilesClassifyAsNoRungOrAnotherRung) {
  // Full 4-term grid with a truncate split is truncate-2term, not round.
  core::SchemeProfile truncate4 = core::scheme_profile(SchemeId::kRound2);
  truncate4.split = core::SplitMethod::kTruncateSplit;
  EXPECT_EQ(core::classify_scheme(truncate4), SchemeId::kTruncate2);

  // Markidis' dropped lo x lo under a *round* split matches no named rung.
  core::SchemeProfile round_markidis = core::scheme_profile(SchemeId::kRound2);
  round_markidis.set_term(1, 1, false);
  EXPECT_FALSE(core::classify_scheme(round_markidis).has_value());

  // A 9-term rung missing one term matches no named rung.
  core::SchemeProfile slice_partial = core::scheme_profile(SchemeId::kSlice3);
  slice_partial.set_term(2, 2, false);
  EXPECT_FALSE(core::classify_scheme(slice_partial).has_value());
}

// -- bound ladder ------------------------------------------------------------

double representation_bound(SchemeId id, const BoundInputs& in) {
  const core::ErrorBound bound = core::scheme_bound(id, in);
  return bound.split_term + bound.dropped_term;
}

TEST(SchemeBounds, RepresentationErrorIsMonotoneAlongTheLadder) {
  // split_bits orders the rungs by representation fidelity; the split +
  // dropped-term component of the bound must respect that order at normal
  // scales (below ~1e-2 the absolute subnormal floors take over and the
  // ordering legitimately flattens).
  for (const double scale : {0.5, 1.0, 64.0}) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{4},
                                std::size_t{64}}) {
      const BoundInputs in{k, scale, scale, 0.0};
      double prev = representation_bound(SchemeId::kHalf, in);
      for (std::size_t i = 1; i < core::kSchemeCount; ++i) {
        const SchemeId id = static_cast<SchemeId>(i);
        const double rep = representation_bound(id, in);
        EXPECT_LE(rep, prev)
            << core::scheme_name(id) << " scale " << scale << " k " << k;
        prev = rep;
      }
    }
  }
}

TEST(SchemeBounds, TotalBoundStrictlyDecreasesAtKOne) {
  // With k = 1 the (term_count * k)-driven accumulation term cannot invert
  // the ladder, so the *total* sound bound is strictly decreasing.
  const BoundInputs in{1, 1.0, 1.0, 0.0};
  double prev = core::scheme_bound(SchemeId::kHalf, in).worst_abs;
  EXPECT_GT(prev, 0.0);
  for (std::size_t i = 1; i < core::kSchemeCount; ++i) {
    const SchemeId id = static_cast<SchemeId>(i);
    const double total = core::scheme_bound(id, in).worst_abs;
    EXPECT_LT(total, prev) << core::scheme_name(id);
    prev = total;
  }
}

TEST(SchemeBounds, LargeKCanInvertTheLadderTotals) {
  // The documented reason the contract resolver evaluates every rung
  // instead of trusting ladder order: 9-term rungs pay 9k binary32
  // accumulation steps, so at large k their total bound exceeds the
  // 4-term round split's.
  const BoundInputs in{4096, 1.0, 1.0, 0.0};
  EXPECT_GT(core::scheme_bound(SchemeId::kRecovery3, in).worst_abs,
            core::scheme_bound(SchemeId::kRound2, in).worst_abs);
}

// -- bound dominance over the regression corpus ------------------------------

std::vector<verify::FuzzCase> load_corpus() {
  std::vector<verify::FuzzCase> cases;
  const std::filesystem::path dir(EGEMM_CORPUS_DIR);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".txt") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (const std::optional<verify::FuzzCase> fuzz =
              verify::parse_case(line)) {
        cases.push_back(*fuzz);
      }
    }
  }
  return cases;
}

TEST(SchemeBounds, DominateMeasuredErrorOnCorpusForEveryRung) {
  // Every (non-special) corpus entry, executed under every ladder rung,
  // must land within that rung's own sound a-priori element bound against
  // the double-double oracle -- the bound-dominance certification the
  // differential harness applies per path, here applied per rung.
  const std::vector<verify::FuzzCase> corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  gemm::GemmContext ctx;
  for (const verify::FuzzCase& fuzz : corpus) {
    const verify::FuzzInputs in = verify::generate_inputs(fuzz);
    if (verify::inputs_special(in)) continue;
    const verify::OracleMatrix oracle =
        verify::oracle_gemm(in.a, in.b, in.c_ptr());
    std::vector<double> row_amax(in.a.rows(), 0.0);
    std::vector<double> col_bmax(in.b.cols(), 0.0);
    for (std::size_t i = 0; i < in.a.rows(); ++i) {
      for (std::size_t t = 0; t < in.a.cols(); ++t) {
        row_amax[i] = std::max(
            row_amax[i], std::abs(static_cast<double>(in.a.at(i, t))));
      }
    }
    for (std::size_t t = 0; t < in.b.rows(); ++t) {
      for (std::size_t j = 0; j < in.b.cols(); ++j) {
        col_bmax[j] = std::max(
            col_bmax[j], std::abs(static_cast<double>(in.b.at(t, j))));
      }
    }
    for (const SchemeId rung : core::scheme_ladder()) {
      const gemm::Matrix d = ctx.run_scheme(rung, in.a, in.b, in.c_ptr());
      const core::SchemeProfile profile = core::scheme_profile(rung);
      for (std::size_t i = 0; i < d.rows(); ++i) {
        for (std::size_t j = 0; j < d.cols(); ++j) {
          const double c_abs =
              in.use_c ? std::abs(static_cast<double>(in.c.at(i, j))) : 0.0;
          const BoundInputs element{in.a.cols(), row_amax[i], col_bmax[j],
                                    c_abs};
          const double err = std::abs(static_cast<double>(d.at(i, j)) -
                                      oracle.value(i, j));
          ASSERT_LE(err, core::scheme_element_bound(profile, element).worst_abs)
              << verify::format_case(fuzz) << " rung "
              << core::scheme_name(rung) << " element (" << i << ", " << j
              << ")";
        }
      }
    }
  }
}

// -- accuracy-contract resolution --------------------------------------------

core::ContractResolution resolve_at_unit_scale(double target,
                                               std::size_t k = 1) {
  return core::resolve_contract(AccuracyContract{target, 1.0, 1.0, 0.0}, k);
}

TEST(AccuracyContract, SelectsTheCheapestSufficientRung) {
  // At k = 1, unit scales, the rung totals are roughly: half 2e-3,
  // markidis 2.1e-6, truncate-2term 1.2e-6, round-2term 7.2e-7,
  // slice-3term 5.37e-7, recovery-3term 5.37e-7.
  struct Expect {
    double target;
    SchemeId scheme;
  };
  const Expect table[] = {
      {1e-2, SchemeId::kHalf},
      {3e-6, SchemeId::kMarkidis},
      {2e-6, SchemeId::kRound2},
      {6e-7, SchemeId::kRecovery3},
  };
  for (const Expect& expect : table) {
    const core::ContractResolution res = resolve_at_unit_scale(expect.target);
    EXPECT_TRUE(res.feasible) << expect.target;
    EXPECT_EQ(res.scheme, expect.scheme) << expect.target;
    EXPECT_LE(res.bound.worst_abs, expect.target);
    EXPECT_EQ(res.target, expect.target);
  }
}

TEST(AccuracyContract, RungTableCoversTheWholeLadder) {
  const core::ContractResolution res = resolve_at_unit_scale(2e-6);
  for (std::size_t i = 0; i < core::kSchemeCount; ++i) {
    const core::SchemeRungBound& rung = res.rungs[i];
    EXPECT_EQ(rung.scheme, static_cast<SchemeId>(i));
    EXPECT_GT(rung.worst_abs, 0.0);
    EXPECT_EQ(rung.feasible, rung.worst_abs <= res.target)
        << core::scheme_name(rung.scheme);
  }
}

TEST(AccuracyContract, TruncateTwoTermIsNeverAutoSelected) {
  // round-2term has the same term count and a strictly tighter bound, so
  // truncate-2term is dominated: no target can make the resolver pick it.
  for (double target = 1e-12; target <= 1.0; target *= 2.0) {
    const core::ContractResolution res = resolve_at_unit_scale(target);
    if (res.feasible) {
      EXPECT_NE(res.scheme, SchemeId::kTruncate2) << target;
    }
  }
}

TEST(AccuracyContract, InfeasibleTargetNamesTheTightestRung) {
  const core::ContractResolution res = resolve_at_unit_scale(1e-8);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.tightest, SchemeId::kRecovery3);
  EXPECT_GT(res.tightest_worst_abs, 1e-8);
  EXPECT_EQ(res.bound.worst_abs, 0.0);
}

TEST(AccuracyContract, NonPositiveTargetIsAlwaysInfeasible) {
  EXPECT_FALSE(resolve_at_unit_scale(0.0).feasible);
  EXPECT_FALSE(resolve_at_unit_scale(-1.0).feasible);
}

TEST(AccuracyContract, KZeroIsFeasibleOnEveryRung) {
  // D = C exactly: no products, no error, even the half rung qualifies
  // for an arbitrarily tight (positive) target and wins as cheapest.
  const core::ContractResolution res = resolve_at_unit_scale(1e-30, 0);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.scheme, SchemeId::kHalf);
  for (const core::SchemeRungBound& rung : res.rungs) {
    EXPECT_TRUE(rung.feasible) << core::scheme_name(rung.scheme);
  }
}

gemm::Matrix deterministic_matrix(std::size_t rows, std::size_t cols) {
  gemm::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const auto mix = static_cast<float>((i * 7 + j * 3) % 16);
      m.at(i, j) = 0.0625f + 0.0625f * mix;
    }
  }
  return m;
}

TEST(AccuracyContract, GemmExThrowsWhenNoRungQualifies) {
  const gemm::Matrix a = deterministic_matrix(6, 5);
  const gemm::Matrix b = deterministic_matrix(5, 4);
  const AccuracyContract contract{1e-9, 0.0, 0.0, 0.0};
  try {
    gemm::gemm_ex(a, b, nullptr, gemm::GemmExParams{}, contract);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("accuracy contract"),
              std::string::npos)
        << err.what();
  }
}

TEST(AccuracyContract, GemmExMeetsTheContractItAccepted) {
  const gemm::Matrix a = deterministic_matrix(6, 5);
  const gemm::Matrix b = deterministic_matrix(5, 4);
  const AccuracyContract contract{1e-4, 0.0, 0.0, 0.0};
  const gemm::Matrix d =
      gemm::gemm_ex(a, b, nullptr, gemm::GemmExParams{}, contract);
  const verify::OracleMatrix oracle = verify::oracle_gemm(a, b);
  for (std::size_t i = 0; i < d.rows(); ++i) {
    for (std::size_t j = 0; j < d.cols(); ++j) {
      EXPECT_LE(std::abs(static_cast<double>(d.at(i, j)) - oracle.value(i, j)),
                contract.max_abs_error);
    }
  }
}

// -- scheme identity through the plan layer ----------------------------------

TEST(SchemePlans, PlanSchemeRoundTripsTheRungIdentity) {
  gemm::GemmContext ctx;
  for (const SchemeId id : core::scheme_ladder()) {
    const std::shared_ptr<const gemm::GemmPlan> plan =
        ctx.plan_scheme(id, 8, 8, 8);
    ASSERT_NE(plan, nullptr) << core::scheme_name(id);
    ASSERT_TRUE(plan->scheme_id().has_value()) << core::scheme_name(id);
    EXPECT_EQ(*plan->scheme_id(), id) << core::scheme_name(id);
  }
}

TEST(SchemePlans, DefaultEgemmBackendClassifiesAsRoundTwoTerm) {
  gemm::GemmContext ctx;
  const std::shared_ptr<const gemm::GemmPlan> plan =
      ctx.plan(gemm::Backend::kEgemmTC, 8, 8, 8);
  ASSERT_TRUE(plan->scheme_id().has_value());
  EXPECT_EQ(*plan->scheme_id(), SchemeId::kRound2);
}

TEST(SchemePlans, CustomRecipeCarriesNoSchemeIdentity) {
  // lo x lo + hi x hi without the cross terms matches no ladder rung (a
  // lone hi x hi would be the half rung); the plan must say so instead of
  // mislabeling itself.
  gemm::GemmContext ctx;
  const gemm::PlaneCombo combos[] = {{0, 0}, {1, 1}};
  const std::shared_ptr<const gemm::GemmPlan> plan = ctx.plan_emulated(
      8, 8, 8, core::SplitMethod::kRoundSplit, combos,
      gemm::ComboOrder::kFusedPerTile);
  EXPECT_FALSE(plan->scheme_id().has_value());
}

TEST(SchemePlans, ExecuteBumpsThePerSchemeCounter) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability disabled";
  }
  gemm::GemmContext ctx;
  const gemm::Matrix a = deterministic_matrix(8, 8);
  const gemm::Matrix b = deterministic_matrix(8, 8);
  for (const SchemeId id : core::scheme_ladder()) {
    const std::string name = std::string("gemm.scheme.") +
                             core::scheme_name(id);
    const std::uint64_t before = obs::registry().counter(name).value();
    (void)ctx.run_scheme(id, a, b);
    EXPECT_EQ(obs::registry().counter(name).value(), before + 1) << name;
  }
  const std::uint64_t custom_before =
      obs::registry().counter("gemm.scheme.custom").value();
  const gemm::PlaneCombo combos[] = {{0, 0}, {1, 1}};
  const std::shared_ptr<const gemm::GemmPlan> plan = ctx.plan_emulated(
      8, 8, 8, core::SplitMethod::kRoundSplit, combos,
      gemm::ComboOrder::kFusedPerTile);
  gemm::Matrix d;
  plan->execute(ctx, a, b, nullptr, d);
  EXPECT_EQ(obs::registry().counter("gemm.scheme.custom").value(),
            custom_before + 1);
}

// -- scheme-aware static cross-check -----------------------------------------

sass::analysis::PrecisionProfile static_round2_profile() {
  sass::analysis::PrecisionProfile profile;
  profile.derived = true;
  profile.split = core::SplitMethod::kRoundSplit;
  profile.rounding = sass::Rounding::kRoundNearest;
  profile.planes = 2;
  profile.term_mask = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      profile.term_mask |= 1u << (a * 2 + b);
      profile.terms.push_back({a, b, 16, 1.0});
    }
  }
  profile.derived_bits_a = 21;
  profile.derived_bits_b = 21;
  profile.operation_bits = 21;
  profile.rel_residual = 0x1.0p-22;
  profile.lo_plane_rel = 0x1.0p-11;
  profile.k_per_term = 64;
  profile.adds_per_element = 256;
  return profile;
}

TEST(SchemeCrossCheck, MatchingClaimIsAcceptedAndDominated) {
  const sass::analysis::PrecisionProfile profile = static_round2_profile();
  const BoundInputs in{64, 1.0, 1.0, 0.0};
  const verify::StaticCrossCheck check =
      verify::cross_check_static_profile(profile, SchemeId::kRound2, in);
  EXPECT_TRUE(check.checked);
  EXPECT_TRUE(check.scheme_match);
  EXPECT_TRUE(check.dominates);
  EXPECT_GE(check.hand_worst_abs, check.derived_worst_abs);
}

TEST(SchemeCrossCheck, WrongClaimIsCaught) {
  // A kernel whose instruction stream derives as the full 4-term round
  // scheme must not certify while claiming Markidis (3 terms) or the
  // truncate split -- this was invisible to the 2-term-only cross-check.
  const sass::analysis::PrecisionProfile profile = static_round2_profile();
  const BoundInputs in{64, 1.0, 1.0, 0.0};
  EXPECT_FALSE(
      verify::cross_check_static_profile(profile, SchemeId::kMarkidis, in)
          .scheme_match);
  EXPECT_FALSE(
      verify::cross_check_static_profile(profile, SchemeId::kTruncate2, in)
          .scheme_match);

  sass::analysis::PrecisionProfile truncate = static_round2_profile();
  truncate.split = core::SplitMethod::kTruncateSplit;
  truncate.rounding = sass::Rounding::kTruncate;
  truncate.rel_residual = 0x1.0p-21;
  EXPECT_FALSE(
      verify::cross_check_static_profile(truncate, SchemeId::kRound2, in)
          .scheme_match);
  EXPECT_TRUE(
      verify::cross_check_static_profile(truncate, SchemeId::kTruncate2, in)
          .scheme_match);
}

TEST(SchemeCrossCheck, UnderivedProfileIsNotChecked) {
  const sass::analysis::PrecisionProfile profile;
  const verify::StaticCrossCheck check = verify::cross_check_static_profile(
      profile, SchemeId::kRound2, BoundInputs{8, 1.0, 1.0, 0.0});
  EXPECT_FALSE(check.checked);
  EXPECT_TRUE(check.scheme_match);
}

}  // namespace
}  // namespace egemm
