// Tests for the infrastructure: RNG, thread pool, CLI parsing, tables.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace egemm::util {
namespace {

TEST(Rng, DeterministicBySeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const float f = rng.uniform(-1.0f, 1.0f);
    EXPECT_GE(f, -1.0f);
    EXPECT_LT(f, 1.0f);
    const double d = rng.uniform_double(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Xoshiro256 rng(11);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.below(10)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, NormalSamplerHasPlausibleMoments) {
  NormalSampler normal(5);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = normal.next();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kDraws, 1.0, 0.02);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto future = pool.submit([&value] { value = 42; });
  future.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // With a single worker, a nested parallel_for that queued tasks would
  // deadlock: the worker would block on futures only it can serve. The
  // pool must detect the worker context and run the nested body inline.
  // (Entry is via submit: parallel_for on a single-worker pool never
  // reaches the worker in the first place -- it runs on the caller.)
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<int> inner_calls{0};
  pool.submit([&] {
        EXPECT_TRUE(pool.in_worker_thread());
        for (std::size_t o = 0; o < 4; ++o) {
          pool.parallel_for(16, [&](std::size_t ib, std::size_t ie) {
            inner_calls.fetch_add(1);
            for (std::size_t i = ib; i < ie; ++i) {
              hits[o * 16 + i].fetch_add(1);
            }
          });
        }
      })
      .get();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GT(inner_calls.load(), 0);
  EXPECT_FALSE(pool.in_worker_thread());
}

TEST(ThreadPool, InWorkerThreadDistinguishesPools) {
  ThreadPool a(1), b(1);
  a.submit([&] {
     EXPECT_TRUE(a.in_worker_thread());
     EXPECT_FALSE(b.in_worker_thread());
   }).get();
}

TEST(ThreadPool, ParallelFor2dCoversGridExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{64},
                                  std::size_t{100000}}) {
    constexpr std::size_t kRows = 23, kCols = 17;
    std::vector<std::atomic<int>> hits(kRows * kCols);
    pool.parallel_for_2d(
        kRows, kCols, grain,
        [&](std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1) {
          EXPECT_LE(r1, kRows);
          EXPECT_LE(c1, kCols);
          for (std::size_t r = r0; r < r1; ++r) {
            for (std::size_t c = c0; c < c1; ++c) {
              hits[r * kCols + c].fetch_add(1);
            }
          }
        });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain=" << grain;
  }
}

TEST(ThreadPool, ParallelFor2dDegenerateGrids) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_2d(0, 5, 0,
                       [&](std::size_t, std::size_t, std::size_t,
                           std::size_t) { called = true; });
  pool.parallel_for_2d(5, 0, 0,
                       [&](std::size_t, std::size_t, std::size_t,
                           std::size_t) { called = true; });
  EXPECT_FALSE(called);

  // Single row / single column grids still cover everything.
  for (const auto& [rows, cols] : {std::pair<std::size_t, std::size_t>{1, 40},
                                   std::pair<std::size_t, std::size_t>{40, 1}}) {
    std::vector<std::atomic<int>> hits(rows * cols);
    pool.parallel_for_2d(
        rows, cols, 3,
        [&](std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1) {
          for (std::size_t r = r0; r < r1; ++r) {
            for (std::size_t c = c0; c < c1; ++c) {
              hits[r * cols + c].fetch_add(1);
            }
          }
        });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, WorkerStatsCountTasksAndBusyTime) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.total_stats().tasks_executed, 0u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran] {
        // Spin long enough that busy_ns is visibly non-zero even on a
        // coarse steady_clock.
        const auto until =
            std::chrono::steady_clock::now() + std::chrono::microseconds(200);
        while (std::chrono::steady_clock::now() < until) {
        }
        ran.fetch_add(1);
      }).get();
  }
  EXPECT_EQ(ran.load(), 8);
  const WorkerStats total = pool.total_stats();
  EXPECT_EQ(total.tasks_executed, 8u);
  EXPECT_EQ(total.inline_tasks, 0u);
  EXPECT_GT(total.busy_ns, 0u);
  const std::vector<WorkerStats> per_worker = pool.worker_stats();
  ASSERT_EQ(per_worker.size(), 2u);
  std::uint64_t summed = 0;
  for (const WorkerStats& stats : per_worker) summed += stats.tasks_executed;
  EXPECT_EQ(summed, 8u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, StatsSurviveReentrantInlinePath) {
  // A nested parallel_for from a worker runs inline (no enqueue); the
  // counters must record it as an inline task without double-counting it
  // as a queued task or losing the enclosing task's accounting.
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel_for(4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for(2, [&](std::size_t ib, std::size_t ie) {
        inner.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(inner.load(), 8);
  const WorkerStats total = pool.total_stats();
  // One queued task per outer chunk (two workers cap chunks at 8), one
  // inline record per nested call.
  EXPECT_GT(total.tasks_executed, 0u);
  EXPECT_LE(total.tasks_executed, 8u);
  EXPECT_EQ(total.inline_tasks, 4u);
}

TEST(ThreadPool, SingleWorkerPoolRunsParallelForInline) {
  // With one worker the caller is the only thread that can make progress
  // while it blocks, so the whole range must run inline on the caller --
  // no queued tasks, one inline record -- in both the 1D and 2D forms.
  ThreadPool pool(1);
  std::vector<int> hits(16, 0);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    body_thread = std::this_thread::get_id();
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(body_thread, caller);
  for (const int h : hits) EXPECT_EQ(h, 1);

  std::vector<int> cells(4 * 4, 0);
  pool.parallel_for_2d(
      4, 4, 1,
      [&](std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1) {
        for (std::size_t r = r0; r < r1; ++r) {
          for (std::size_t c = c0; c < c1; ++c) ++cells[r * 4 + c];
        }
      });
  for (const int h : cells) EXPECT_EQ(h, 1);

  const WorkerStats total = pool.total_stats();
  EXPECT_EQ(total.tasks_executed, 0u);
  EXPECT_EQ(total.inline_tasks, 2u);
}

TEST(ThreadPool, ParallelFor2dExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_2d(
                   8, 8, 1,
                   [](std::size_t r0, std::size_t, std::size_t c0,
                      std::size_t) {
                     if (r0 == 0 && c0 == 0) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(Cli, ParsesFlagsValuesAndLists) {
  const char* argv[] = {"prog",          "--full",     "--sizes=1,2,3",
                        "--gpu",         "t4",         "--trials=100",
                        "--scale=0.5",   "positional"};
  const CliArgs args(8, argv);
  EXPECT_TRUE(args.has_flag("full"));
  EXPECT_FALSE(args.has_flag("missing"));
  EXPECT_EQ(args.value_or("gpu", std::string("x")), "t4");
  EXPECT_EQ(args.value_or("trials", std::int64_t{0}), 100);
  EXPECT_DOUBLE_EQ(args.value_or("scale", 1.0), 0.5);
  const auto sizes = args.int_list_or("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1);
  EXPECT_EQ(sizes[2], 3);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_EQ(args.value_or("n", std::int64_t{7}), 7);
  const auto def = args.int_list_or("sizes", {128, 256});
  ASSERT_EQ(def.size(), 2u);
  EXPECT_EQ(def[1], 256);
}

TEST(Table, RendersAlignedRowsAndNotes) {
  Table table("Demo");
  table.set_header({"a", "longer"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  table.add_footnote("note text");
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("note text"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_speedup(2.5), "2.50x");
  EXPECT_EQ(fmt_sci(0.000123, 2), "1.23e-04");
}

}  // namespace
}  // namespace egemm::util
