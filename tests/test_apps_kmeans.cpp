// Tests for GEMM-based kMeans (apps/kmeans.hpp).
#include "apps/kmeans.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "apps/dataset.hpp"

namespace egemm::apps {
namespace {

/// Cluster purity against the generating labels: fraction of points whose
/// cluster's majority true-label matches their own.
double purity(const std::vector<int>& assignment,
              const std::vector<int>& truth, int clusters) {
  std::vector<std::map<int, int>> votes(static_cast<std::size_t>(clusters));
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    ++votes[static_cast<std::size_t>(assignment[i])][truth[i]];
  }
  std::size_t correct = 0;
  for (const auto& cluster_votes : votes) {
    int best = 0;
    for (const auto& [label, count] : cluster_votes) {
      best = std::max(best, count);
      (void)label;
    }
    correct += static_cast<std::size_t>(best);
  }
  return static_cast<double>(correct) /
         static_cast<double>(assignment.size());
}

class KMeansBackendTest : public ::testing::TestWithParam<gemm::Backend> {};

TEST_P(KMeansBackendTest, RecoversWellSeparatedMixture) {
  const PointCloud cloud = gaussian_mixture(600, 16, 4, 0.02, 11);
  KMeansOptions opts;
  opts.clusters = 4;
  opts.backend = GetParam();
  opts.seed = 5;
  const KMeansResult result = kmeans(cloud.points, opts);
  EXPECT_GE(purity(result.assignment, cloud.true_labels, 4), 0.95)
      << gemm::backend_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, KMeansBackendTest,
                         ::testing::Values(gemm::Backend::kEgemmTC,
                                           gemm::Backend::kCublasFp32));

TEST(KMeans, InertiaMatchesOracle) {
  const PointCloud cloud = gaussian_mixture(300, 8, 3, 0.05, 12);
  KMeansOptions opts;
  opts.clusters = 3;
  const KMeansResult result = kmeans(cloud.points, opts);
  const double oracle =
      kmeans_inertia(cloud.points, result.centroids, result.assignment);
  // The GEMM-based distances run in fp32; allow a loose relative band.
  EXPECT_NEAR(result.inertia, oracle, 0.05 * oracle + 1e-3);
}

TEST(KMeans, AssignmentIsNearestCentroid) {
  const PointCloud cloud = gaussian_mixture(200, 8, 3, 0.1, 13);
  KMeansOptions opts;
  opts.clusters = 3;
  const KMeansResult result = kmeans(cloud.points, opts);
  for (std::size_t i = 0; i < cloud.points.rows(); ++i) {
    double assigned_dist = 0.0, best_dist = 1e300;
    for (int c = 0; c < 3; ++c) {
      double acc = 0.0;
      for (std::size_t d = 0; d < cloud.points.cols(); ++d) {
        const double diff =
            static_cast<double>(cloud.points.at(i, d)) -
            static_cast<double>(result.centroids.at(static_cast<std::size_t>(c), d));
        acc += diff * diff;
      }
      if (c == result.assignment[i]) assigned_dist = acc;
      best_dist = std::min(best_dist, acc);
    }
    // Within fp32 rounding of the best.
    EXPECT_LE(assigned_dist, best_dist + 1e-3);
  }
}

TEST(KMeans, DeterministicBySeed) {
  const PointCloud cloud = gaussian_mixture(200, 8, 3, 0.1, 14);
  KMeansOptions opts;
  opts.clusters = 3;
  const KMeansResult a = kmeans(cloud.points, opts);
  const KMeansResult b = kmeans(cloud.points, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(KMeans, ConvergesOnEasyData) {
  const PointCloud cloud = gaussian_mixture(400, 8, 4, 0.01, 15);
  KMeansOptions opts;
  opts.clusters = 4;
  opts.max_iterations = 50;
  const KMeansResult result = kmeans(cloud.points, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 50);
}

TEST(KMeans, SingleClusterDegenerates) {
  const PointCloud cloud = uniform_cloud(50, 4, -1.0f, 1.0f, 16);
  KMeansOptions opts;
  opts.clusters = 1;
  const KMeansResult result = kmeans(cloud.points, opts);
  for (const int a : result.assignment) EXPECT_EQ(a, 0);
  // The single centroid is the mean of all points.
  for (std::size_t d = 0; d < cloud.points.cols(); ++d) {
    double mean = 0.0;
    for (std::size_t i = 0; i < cloud.points.rows(); ++i) {
      mean += static_cast<double>(cloud.points.at(i, d));
    }
    mean /= static_cast<double>(cloud.points.rows());
    EXPECT_NEAR(result.centroids.at(0, d), mean, 1e-4);
  }
}

TEST(KMeans, InertiaNeverIncreasesAcrossIterations) {
  // Run with increasing max_iterations and check the final inertia is
  // monotone non-increasing (Lloyd's algorithm invariant).
  const PointCloud cloud = gaussian_mixture(300, 8, 5, 0.2, 17);
  double prev = 1e300;
  for (int iters = 1; iters <= 9; iters += 2) {
    KMeansOptions opts;
    opts.clusters = 5;
    opts.max_iterations = iters;
    opts.tolerance = 0.0;  // disable early stop
    const KMeansResult result = kmeans(cloud.points, opts);
    EXPECT_LE(result.inertia, prev * (1.0 + 1e-6)) << "iters=" << iters;
    prev = result.inertia;
  }
}

}  // namespace
}  // namespace egemm::apps
