// Tests for the error-free transformations (fp/twofold.hpp).
#include "fp/twofold.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace egemm::fp {
namespace {

class EftPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EftPropertyTest, TwoSumIsErrorFree) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50000; ++trial) {
    const double a = rng.uniform_double(-1e6, 1e6);
    const double b = rng.uniform_double(-1e-6, 1e-6);
    const TwoFold r = two_sum(a, b);
    EXPECT_EQ(r.value, a + b);
    // Error term is exact: reconstruct with long double (64-bit mantissa on
    // x86 -- enough headroom for these magnitudes).
    const long double exact = static_cast<long double>(a) + b;
    EXPECT_EQ(static_cast<long double>(r.value) + r.error, exact);
  }
}

TEST_P(EftPropertyTest, FastTwoSumMatchesTwoSumWhenOrdered) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50000; ++trial) {
    double a = rng.uniform_double(-1e3, 1e3);
    double b = rng.uniform_double(-1e3, 1e3);
    if (std::fabs(a) < std::fabs(b)) std::swap(a, b);
    const TwoFold fast = fast_two_sum(a, b);
    const TwoFold full = two_sum(a, b);
    EXPECT_EQ(fast.value, full.value);
    EXPECT_EQ(fast.error, full.error);
  }
}

TEST_P(EftPropertyTest, TwoProdIsErrorFree) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50000; ++trial) {
    const double a = rng.uniform_double(-1e3, 1e3);
    const double b = rng.uniform_double(-1e3, 1e3);
    const TwoFold r = two_prod(a, b);
    EXPECT_EQ(r.value, a * b);
    const long double exact =
        static_cast<long double>(a) * static_cast<long double>(b);
    // value + error == a*b exactly (the fma recovers the rounding error).
    EXPECT_EQ(static_cast<long double>(r.value) + r.error, exact);
  }
}

TEST_P(EftPropertyTest, VeltkampSplitReconstructsExactly) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50000; ++trial) {
    const double a = rng.uniform_double(-1e8, 1e8);
    const auto [hi, lo] = veltkamp_split(a);
    EXPECT_EQ(hi + lo, a);
    // hi carries at most 26 significand bits: hi * hi is exact.
    const TwoFold sq = two_prod(hi, hi);
    EXPECT_EQ(sq.error, 0.0) << "hi not 26-bit: " << hi;
  }
}

TEST_P(EftPropertyTest, FloatVariantsAreErrorFree) {
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50000; ++trial) {
    const float a = rng.uniform(-1e3f, 1e3f);
    const float b = rng.uniform(-1e3f, 1e3f);
    const TwoFoldF s = two_sum_f(a, b);
    EXPECT_EQ(static_cast<double>(s.value) + static_cast<double>(s.error),
              static_cast<double>(a) + static_cast<double>(b));
    const TwoFoldF p = two_prod_f(a, b);
    EXPECT_EQ(static_cast<double>(p.value) + static_cast<double>(p.error),
              static_cast<double>(a) * static_cast<double>(b));
    const auto [hi, lo] = veltkamp_split_f(a);
    EXPECT_EQ(hi + lo, a);
  }
}

TEST_P(EftPropertyTest, DoubleDoubleAccumulationBeatsPlainDouble) {
  util::Xoshiro256 rng(GetParam());
  // Sum many values whose naive double sum loses low-order bits.
  double plain = 0.0;
  double hi = 0.0, lo = 0.0;
  long double exact = 0.0L;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform_double(-1.0, 1.0) +
                     rng.uniform_double(-1e-14, 1e-14);
    plain += x;
    dd_add(hi, lo, x);
    exact += x;
  }
  const double dd_err =
      std::fabs(static_cast<double>(static_cast<long double>(hi) + lo - exact));
  const double plain_err =
      std::fabs(static_cast<double>(static_cast<long double>(plain) - exact));
  EXPECT_LE(dd_err, plain_err);
  EXPECT_LT(dd_err, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EftPropertyTest,
                         ::testing::Values(3u, 99u, 31415u));

TEST(EftEdgeCases, ZerosAndExactSums) {
  EXPECT_EQ(two_sum(0.0, 0.0).error, 0.0);
  EXPECT_EQ(two_sum(1.0, 2.0).error, 0.0);  // exact
  EXPECT_EQ(two_prod(3.0, 4.0).error, 0.0);
  // Classic inexact case: 1 + 2^-53 loses the low bit to rounding.
  const TwoFold r = two_sum(1.0, 0x1.0p-53);
  EXPECT_EQ(r.value, 1.0);
  EXPECT_EQ(r.error, 0x1.0p-53);
}

}  // namespace
}  // namespace egemm::fp
