// Tests for the tensorization hierarchy (gemm/tiling.hpp).
#include "gemm/tiling.hpp"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace egemm::gemm {
namespace {

TEST(TileConfig, Table4IsValidAndMatchesPaper) {
  const TileConfig cfg = table4_config();
  EXPECT_TRUE(cfg.valid());
  EXPECT_EQ(cfg.warps_per_block(), 8);       // Table 4: 8 active warps
  EXPECT_EQ(cfg.threads_per_block(), 256);
  EXPECT_EQ(cfg.shared_memory_bytes(), 36u * 1024u);  // Table 4: 36 KB
}

TEST(TileConfig, ValidityRules) {
  EXPECT_FALSE((TileConfig{100, 128, 32, 64, 32, 8}.valid()));  // bm % wm
  EXPECT_FALSE((TileConfig{128, 128, 32, 24, 32, 8}.valid()));  // wm % 16
  EXPECT_FALSE((TileConfig{128, 128, 30, 64, 32, 8}.valid()));  // bk % wk
  EXPECT_FALSE((TileConfig{0, 128, 32, 64, 32, 8}.valid()));
  EXPECT_TRUE((TileConfig{64, 64, 16, 32, 32, 8}.valid()));
  // 33+ warps per block is impossible on hardware.
  EXPECT_FALSE((TileConfig{256, 256, 32, 16, 16, 8}.valid()));
}

TEST(TileConfig, DerivedCounts) {
  const TileConfig cfg = table4_config();
  EXPECT_EQ(cfg.k_iterations(8192), 256u);
  EXPECT_EQ(cfg.k_iterations(1), 1u);
  EXPECT_EQ(cfg.k_iterations(33), 2u);
  EXPECT_EQ(cfg.grid_blocks(8192, 8192), 4096u);
  EXPECT_EQ(cfg.grid_blocks(100, 100), 1u);
  EXPECT_EQ(cfg.grid_blocks(129, 128), 2u);
}

TEST(TileConfig, FragBytesMatchSection6) {
  const TileConfig cfg = table4_config();
  // 4 bm bn + 4(bm+bn)bk = 64 KB + 32 KB.
  EXPECT_EQ(cfg.frag_bytes(), 4u * 128 * 128 + 4u * 256 * 32);
}

TEST(TileConfig, Describe) {
  EXPECT_EQ(table4_config().describe(),
            "(bm,bn,bk)=(128,128,32) (wm,wn,wk)=(64,32,8)");
}

class CoverageTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CoverageTest, BlockTilesPartitionTheOutput) {
  const auto [m, n] = GetParam();
  const TileConfig cfg = table4_config();
  std::vector<std::vector<int>> covered(m, std::vector<int>(n, 0));
  std::set<std::pair<std::size_t, std::size_t>> block_ids;
  for_each_block_tile(m, n, cfg, [&](const BlockTile& tile) {
    EXPECT_LE(tile.row0 + tile.rows, m);
    EXPECT_LE(tile.col0 + tile.cols, n);
    EXPECT_GT(tile.rows, 0u);
    EXPECT_GT(tile.cols, 0u);
    EXPECT_TRUE(block_ids.emplace(tile.block_row, tile.block_col).second);
    for (std::size_t r = tile.row0; r < tile.row0 + tile.rows; ++r) {
      for (std::size_t c = tile.col0; c < tile.col0 + tile.cols; ++c) {
        ++covered[r][c];
      }
    }
  });
  // Exactly-once coverage: a partition, not an overlap.
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_EQ(covered[r][c], 1) << "(" << r << "," << c << ")";
    }
  }
  EXPECT_EQ(block_ids.size(), cfg.grid_blocks(m, n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoverageTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{128, 128},
                      std::pair<std::size_t, std::size_t>{256, 384},
                      std::pair<std::size_t, std::size_t>{130, 257},
                      std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{127, 500}));

}  // namespace
}  // namespace egemm::gemm
