// Tests for matrices and the binary64 reference GEMM (gemm/matrix.hpp).
#include "gemm/matrix.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace egemm::gemm {
namespace {

TEST(Matrix, BasicAccessAndLayout) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.ld(), 4u);
  EXPECT_EQ(m.size(), 12u);
  m.at(1, 2) = 5.0f;
  EXPECT_EQ(m.data()[1 * 4 + 2], 5.0f);
  EXPECT_EQ(m.row(1)[2], 5.0f);
  m.fill(1.0f);
  for (const float v : m.data()) EXPECT_EQ(v, 1.0f);
}

TEST(Matrix, RandomIsDeterministicAndInRange) {
  const Matrix a = random_matrix(16, 16, -1.0f, 1.0f, 99);
  const Matrix b = random_matrix(16, 16, -1.0f, 1.0f, 99);
  const Matrix c = random_matrix(16, 16, -1.0f, 1.0f, 100);
  bool identical_ab = true, identical_ac = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    identical_ab &= a.data()[i] == b.data()[i];
    identical_ac &= a.data()[i] == c.data()[i];
    EXPECT_GE(a.data()[i], -1.0f);
    EXPECT_LT(a.data()[i], 1.0f);
  }
  EXPECT_TRUE(identical_ab);
  EXPECT_FALSE(identical_ac);
}

TEST(Matrix, TransposeRoundTrips) {
  const Matrix a = random_matrix(5, 9, -1.0f, 1.0f, 3);
  const Matrix t = transpose(a);
  EXPECT_EQ(t.rows(), 9u);
  EXPECT_EQ(t.cols(), 5u);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(t.at(j, i), a.at(i, j));
    }
  }
  const Matrix back = transpose(t);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(back.data()[i], a.data()[i]);
  }
}

TEST(Matrix, WidenIsExact) {
  const Matrix a = random_matrix(7, 7, -100.0f, 100.0f, 4);
  const MatrixD w = widen(a);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(w.data()[i], static_cast<double>(a.data()[i]));
  }
}

TEST(ReferenceGemm, TinyKnownProduct) {
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1;  a.at(0, 1) = 2;
  a.at(1, 0) = 3;  a.at(1, 1) = 4;
  b.at(0, 0) = 5;  b.at(0, 1) = 6;
  b.at(1, 0) = 7;  b.at(1, 1) = 8;
  const MatrixD d = gemm_reference(a, b, nullptr);
  EXPECT_EQ(d.at(0, 0), 19.0);
  EXPECT_EQ(d.at(0, 1), 22.0);
  EXPECT_EQ(d.at(1, 0), 43.0);
  EXPECT_EQ(d.at(1, 1), 50.0);
}

TEST(ReferenceGemm, AddsCWhenProvided) {
  const Matrix a = random_matrix(4, 5, -1, 1, 5);
  const Matrix b = random_matrix(5, 3, -1, 1, 6);
  Matrix c(4, 3);
  c.fill(10.0f);
  const MatrixD with_c = gemm_reference(a, b, &c);
  const MatrixD without = gemm_reference(a, b, nullptr);
  for (std::size_t i = 0; i < with_c.size(); ++i) {
    EXPECT_NEAR(with_c.data()[i], without.data()[i] + 10.0, 1e-12);
  }
}

TEST(ReferenceGemm, MatchesNaiveDoubleOnModerateSize) {
  const Matrix a = random_matrix(33, 47, -1, 1, 7);
  const Matrix b = random_matrix(47, 29, -1, 1, 8);
  const MatrixD d = gemm_reference(a, b, nullptr);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      long double acc = 0.0L;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<long double>(a.at(i, k)) *
               static_cast<long double>(b.at(k, j));
      }
      EXPECT_NEAR(d.at(i, j), static_cast<double>(acc), 1e-13);
    }
  }
}

TEST(MaxAbsError, BothOverloads) {
  Matrix ref(2, 2), cand(2, 2);
  ref.fill(1.0f);
  cand.fill(1.0f);
  cand.at(1, 1) = 1.5f;
  EXPECT_DOUBLE_EQ(max_abs_error(ref, cand), 0.5);
  const MatrixD refd = widen(ref);
  EXPECT_DOUBLE_EQ(max_abs_error(refd, cand), 0.5);
}

}  // namespace
}  // namespace egemm::gemm
