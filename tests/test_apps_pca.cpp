// Tests for GEMM-based PCA (apps/pca.hpp).
#include "apps/pca.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace egemm::apps {
namespace {

/// Anisotropic Gaussian data with known principal axes: columns 0..dim-1
/// get standard deviations sigma[d], so the principal components are the
/// coordinate axes in decreasing sigma order.
gemm::Matrix anisotropic_cloud(std::size_t n, std::size_t dim,
                               const std::vector<double>& sigma,
                               std::uint64_t seed) {
  util::NormalSampler normal(seed);
  gemm::Matrix points(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      points.at(i, d) = static_cast<float>(sigma[d] * normal.next());
    }
  }
  return points;
}

double axis_alignment(const gemm::Matrix& components, int component,
                      std::size_t axis) {
  double dot = 0.0;
  for (std::size_t d = 0; d < components.cols(); ++d) {
    const double v =
        static_cast<double>(components.at(static_cast<std::size_t>(component), d));
    if (d == axis) dot += v;
  }
  return std::fabs(dot);
}

class PcaBackendTest : public ::testing::TestWithParam<gemm::Backend> {};

TEST_P(PcaBackendTest, RecoversKnownAxes) {
  const std::vector<double> sigma = {4.0, 2.0, 1.0, 0.5, 0.25, 0.25, 0.25, 0.25};
  const gemm::Matrix points = anisotropic_cloud(3000, 8, sigma, 31);
  PcaOptions opts;
  opts.components = 3;
  opts.backend = GetParam();
  const PcaResult result = pca_power(points, opts);
  // The first three components align with axes 0, 1, 2.
  for (int c = 0; c < 3; ++c) {
    EXPECT_GT(axis_alignment(result.components, c,
                             static_cast<std::size_t>(c)),
              0.95)
        << gemm::backend_name(GetParam()) << " component " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, PcaBackendTest,
                         ::testing::Values(gemm::Backend::kEgemmTC,
                                           gemm::Backend::kCublasFp32));

TEST(Pca, ExplainedVarianceMatchesGeneratingSpectrum) {
  const std::vector<double> sigma = {3.0, 1.5, 0.5, 0.1};
  const gemm::Matrix points = anisotropic_cloud(5000, 4, sigma, 32);
  PcaOptions opts;
  opts.components = 4;
  const PcaResult result = pca_power(points, opts);
  ASSERT_EQ(result.explained_variance.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    const double expected = sigma[c] * sigma[c];
    EXPECT_NEAR(result.explained_variance[c], expected, 0.15 * expected + 0.01)
        << c;
  }
  // Descending order.
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_LE(result.explained_variance[c],
              result.explained_variance[c - 1] * 1.0001);
  }
}

TEST(Pca, ComponentsAreOrthonormal) {
  const std::vector<double> sigma = {2.0, 1.0, 0.5, 0.25, 0.125, 0.1};
  const gemm::Matrix points = anisotropic_cloud(2000, 6, sigma, 33);
  PcaOptions opts;
  opts.components = 4;
  const PcaResult result = pca_power(points, opts);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b <= a; ++b) {
      double dot = 0.0;
      for (std::size_t d = 0; d < 6; ++d) {
        dot += static_cast<double>(
                   result.components.at(static_cast<std::size_t>(a), d)) *
               static_cast<double>(
                   result.components.at(static_cast<std::size_t>(b), d));
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 0.02) << a << "," << b;
    }
  }
}

TEST(Pca, MeanIsRemoved) {
  util::Xoshiro256 rng(34);
  gemm::Matrix points(500, 3);
  for (std::size_t i = 0; i < 500; ++i) {
    points.at(i, 0) = 10.0f + rng.uniform(-0.5f, 0.5f);
    points.at(i, 1) = -4.0f + rng.uniform(-0.1f, 0.1f);
    points.at(i, 2) = rng.uniform(-1.0f, 1.0f);
  }
  PcaOptions opts;
  opts.components = 1;
  const PcaResult result = pca_power(points, opts);
  EXPECT_NEAR(result.mean[0], 10.0f, 0.1f);
  EXPECT_NEAR(result.mean[1], -4.0f, 0.1f);
  // Dominant variance is axis 2 (the offsets were removed).
  EXPECT_GT(axis_alignment(result.components, 0, 2), 0.95);
}

TEST(Pca, DeterministicBySeed) {
  const std::vector<double> sigma = {2.0, 1.0, 0.3};
  const gemm::Matrix points = anisotropic_cloud(800, 3, sigma, 35);
  PcaOptions opts;
  opts.components = 2;
  const PcaResult a = pca_power(points, opts);
  const PcaResult b = pca_power(points, opts);
  for (std::size_t i = 0; i < a.components.size(); ++i) {
    EXPECT_EQ(a.components.data()[i], b.components.data()[i]);
  }
}

TEST(PcaTiming, GemmDominatesAndEgemmAccelerates) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  PcaWorkload workload;  // 16384 points x 512 dims
  const AppTiming base = pca_timing(workload, gemm::Backend::kCublasFp32, spec);
  const AppTiming fast = pca_timing(workload, gemm::Backend::kEgemmTC, spec);
  EXPECT_GT(base.gemm_fraction, 0.5);
  const double speedup = base.total_seconds / fast.total_seconds;
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 3.2);
}

}  // namespace
}  // namespace egemm::apps
