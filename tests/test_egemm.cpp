// Tests for the EGEMM-TC kernel, functional and timed paths (gemm/egemm.hpp).
#include "gemm/egemm.hpp"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "fp/error_stats.hpp"
#include "gemm/baselines.hpp"

namespace egemm::gemm {
namespace {

struct Shape {
  std::size_t m, n, k;
};

class EgemmFunctionalTest : public ::testing::TestWithParam<Shape> {};

TEST_P(EgemmFunctionalTest, ExtendedPrecisionVsDoubleReference) {
  const Shape s = GetParam();
  const Matrix a = random_matrix(s.m, s.k, -1, 1, 100 + s.m);
  const Matrix b = random_matrix(s.k, s.n, -1, 1, 200 + s.n);
  const Matrix d = egemm_multiply(a, b);
  const MatrixD ref = gemm_reference(a, b, nullptr);
  // Per-element error: k split-products each within ~2^-21 of exact, plus
  // fp32 accumulation noise ~sqrt(k) * 2^-24 * |partial|. A linear-in-k
  // envelope with a generous constant covers both.
  const double bound = 1.5e-6 * static_cast<double>(s.k) + 1e-6;
  EXPECT_LT(max_abs_error(ref, d), bound)
      << "shape " << s.m << "x" << s.n << "x" << s.k;
}

TEST_P(EgemmFunctionalTest, FarBetterThanHalfGemm) {
  const Shape s = GetParam();
  if (s.k < 32) GTEST_SKIP() << "half error too small to compare at tiny k";
  const Matrix a = random_matrix(s.m, s.k, -1, 1, 300 + s.m);
  const Matrix b = random_matrix(s.k, s.n, -1, 1, 400 + s.n);
  const MatrixD ref = gemm_reference(a, b, nullptr);
  const double emu_err = max_abs_error(ref, egemm_multiply(a, b));
  const double half_err = max_abs_error(ref, gemm_tc_half(a, b));
  EXPECT_GT(half_err, 30.0 * emu_err);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EgemmFunctionalTest,
    ::testing::Values(Shape{16, 16, 16}, Shape{64, 64, 64},
                      Shape{128, 128, 128}, Shape{128, 64, 256},
                      Shape{33, 65, 47},    // edge tiles on every dimension
                      Shape{1, 1, 1}, Shape{256, 16, 16},
                      Shape{16, 256, 128}),
    [](const ::testing::TestParamInfo<Shape>& shape) {
      return std::to_string(shape.param.m) + "x" +
             std::to_string(shape.param.n) + "x" +
             std::to_string(shape.param.k);
    });

TEST(EgemmFunctional, AccumulatesC) {
  const Matrix a = random_matrix(32, 32, -1, 1, 1);
  const Matrix b = random_matrix(32, 32, -1, 1, 2);
  Matrix c(32, 32);
  c.fill(3.0f);
  const Matrix with_c = egemm_multiply(a, b, &c);
  const Matrix without = egemm_multiply(a, b);
  for (std::size_t i = 0; i < with_c.size(); ++i) {
    EXPECT_NEAR(with_c.data()[i], without.data()[i] + 3.0f, 1e-5f);
  }
}

TEST(EgemmFunctional, DeterministicAcrossRuns) {
  const Matrix a = random_matrix(64, 48, -1, 1, 11);
  const Matrix b = random_matrix(48, 80, -1, 1, 12);
  const Matrix d1 = egemm_multiply(a, b);
  const Matrix d2 = egemm_multiply(a, b);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1.data()[i], d2.data()[i]);
  }
}

TEST(EgemmFunctional, TruncateSplitOptionDegradesAccuracy) {
  // Compared on the mean element error at modest k, where the split's
  // representation error is visible above the fp32 accumulation noise
  // (at k in the hundreds the two methods' max errors converge -- see
  // EXPERIMENTS.md).
  const Matrix a = random_matrix(256, 32, -1, 1, 21);
  const Matrix b = random_matrix(32, 256, -1, 1, 22);
  const MatrixD ref = gemm_reference(a, b, nullptr);
  EgemmOptions trunc;
  trunc.split = core::SplitMethod::kTruncateSplit;
  const Matrix round_d = egemm_multiply(a, b);
  const Matrix trunc_d = egemm_multiply(a, b, nullptr, trunc);
  const fp::ErrorStats round_stats = fp::compare(ref.data(), round_d.data());
  const fp::ErrorStats trunc_stats = fp::compare(ref.data(), trunc_d.data());
  EXPECT_LT(round_stats.mean_abs(), trunc_stats.mean_abs());
}

// -- timed path ---------------------------------------------------------------

TEST(EgemmTiming, Table4ConfigIsFeasibleOnT4) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const KernelTiming t = egemm_timing(8192, 8192, 8192, spec);
  EXPECT_TRUE(t.feasible);
  EXPECT_EQ(t.blocks_per_sm, 1);
  EXPECT_EQ(t.registers_per_thread, 232);
  EXPECT_FALSE(t.register_spill);
  EXPECT_EQ(t.blocks, 4096u);
  EXPECT_EQ(t.waves, 103u);
  // §A.3 anchor: ~12 TFLOPS at 8192^3 on T4.
  EXPECT_GT(t.tflops, 10.0);
  EXPECT_LT(t.tflops, 14.5);
}

TEST(EgemmTiming, ThroughputRisesWithSize) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  double prev = 0.0;
  for (const std::uint64_t n : {1024u, 2048u, 4096u, 8192u}) {
    const KernelTiming t = egemm_timing(n, n, n, spec);
    EXPECT_GT(t.tflops, prev) << "n=" << n;
    prev = t.tflops;
  }
}

TEST(EgemmTiming, LatencyHidingHelps) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  EgemmOptions off;
  off.latency_hiding = false;
  const double with = egemm_timing(4096, 4096, 4096, spec).tflops;
  const double without = egemm_timing(4096, 4096, 4096, spec, off).tflops;
  EXPECT_GT(with / without, 1.05);
  EXPECT_LT(with / without, 1.4);
}

TEST(EgemmTiming, FragCachingHelps) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  EgemmOptions off;
  off.frag_caching = false;
  const double with = egemm_timing(4096, 4096, 4096, spec).tflops;
  const double without = egemm_timing(4096, 4096, 4096, spec, off).tflops;
  EXPECT_GT(with, without);
}

TEST(EgemmTiming, OversizedTileIsInfeasible) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  EgemmOptions opts;
  opts.tile = TileConfig{256, 256, 64, 64, 64, 8};  // blows shared memory
  ASSERT_TRUE(opts.tile.valid());
  const KernelTiming t = egemm_timing(4096, 4096, 4096, spec, opts);
  EXPECT_FALSE(t.feasible);
}

TEST(EgemmTiming, SpillingTileIsPenalized) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  EgemmOptions spilling;
  spilling.tile = TileConfig{128, 128, 64, 64, 32, 8};  // bk=64 spills
  const KernelTiming bad = egemm_timing(4096, 4096, 4096, spec, spilling);
  if (bad.feasible) {
    EXPECT_TRUE(bad.register_spill);
    const KernelTiming good = egemm_timing(4096, 4096, 4096, spec);
    EXPECT_GT(good.tflops, bad.tflops);
  }
}

TEST(EgemmTiming, RtxIsFasterThanT4) {
  const KernelTiming t4 = egemm_timing(8192, 8192, 8192, tcsim::tesla_t4());
  const KernelTiming rtx = egemm_timing(8192, 8192, 8192, tcsim::rtx6000());
  EXPECT_GT(rtx.tflops, 1.5 * t4.tflops);
}

TEST(EgemmTiming, TflopsFormulaEq9) {
  EXPECT_DOUBLE_EQ(gemm_tflops(1000, 1000, 1000, 2e-3), 1.0);
  EXPECT_EQ(gemm_tflops(1, 1, 1, 0.0), 0.0);
}

TEST(EgemmTiming, SplitPassScalesWithN2NotN3) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const KernelTiming small = egemm_timing(2048, 2048, 2048, spec);
  const KernelTiming large = egemm_timing(8192, 8192, 8192, spec);
  const double split_ratio =
      large.split_pass_seconds / small.split_pass_seconds;
  const double total_ratio = large.seconds / small.seconds;
  EXPECT_LT(split_ratio, total_ratio);  // O(N^2) vs O(N^3)
}

}  // namespace
}  // namespace egemm::gemm
