// Tests for the stage-based register allocator (tcsim/register_alloc.hpp).
#include "tcsim/register_alloc.hpp"

#include <gtest/gtest.h>

namespace egemm::tcsim {
namespace {

TEST(RegisterAlloc, Table4PlanLandsAt232Of256) {
  // §5.2: "we utilize 232 out of 256 registers on each thread".
  const KernelRegisterPlan plan =
      egemm_register_plan(128, 128, 32, 64, 32, 8, 256);
  const AllocationResult result = allocate_registers(plan, 256);
  EXPECT_EQ(result.per_thread, 232);
  EXPECT_FALSE(result.spills);
  EXPECT_EQ(result.spilled_registers, 0);
}

TEST(RegisterAlloc, NaiveAllocationWouldSpill) {
  // Without cross-stage reuse the same plan exceeds the 256 budget -- the
  // §5.2 motivation.
  const KernelRegisterPlan plan =
      egemm_register_plan(128, 128, 32, 64, 32, 8, 256);
  const AllocationResult result = allocate_registers(plan, 256);
  EXPECT_GT(result.naive_per_thread, 256);
}

TEST(RegisterAlloc, ComputeStageIsPeak) {
  const KernelRegisterPlan plan =
      egemm_register_plan(128, 128, 32, 64, 32, 8, 256);
  const AllocationResult result = allocate_registers(plan, 256);
  ASSERT_EQ(result.stages.size(), 4u);
  int peak_stage = 0;
  for (const StageUsage& stage : result.stages) {
    if (stage.total() > result.stages[static_cast<std::size_t>(peak_stage)]
                            .total()) {
      peak_stage = stage.stage;
    }
  }
  EXPECT_EQ(peak_stage, 2);  // the main compute loop
}

TEST(RegisterAlloc, FailureInjectionTightBudgetSpills) {
  const KernelRegisterPlan plan =
      egemm_register_plan(128, 128, 32, 64, 32, 8, 256);
  const AllocationResult result = allocate_registers(plan, 128);
  EXPECT_TRUE(result.spills);
  EXPECT_EQ(result.spilled_registers, 232 - 128);
}

TEST(RegisterAlloc, WiderTilesDemandMoreRegisters) {
  const AllocationResult narrow = allocate_registers(
      egemm_register_plan(64, 64, 32, 32, 32, 8, 128), 256);
  const AllocationResult wide = allocate_registers(
      egemm_register_plan(128, 128, 64, 64, 32, 8, 256), 256);
  EXPECT_LT(narrow.per_thread, wide.per_thread);
  EXPECT_TRUE(wide.spills);  // bk=64 staging blows the budget (§6 ablation)
}

TEST(RegisterAlloc, PersistentValuesLiveAcrossLaterStages) {
  KernelRegisterPlan plan;
  plan.stage_count = 3;
  plan.values.push_back({"persistent", 10, 1, true});
  plan.values.push_back({"local0", 5, 0, false});
  plan.values.push_back({"local2", 7, 2, false});
  const AllocationResult result = allocate_registers(plan, 64);
  EXPECT_EQ(result.stages[0].total(), 5);
  EXPECT_EQ(result.stages[1].total(), 10);
  EXPECT_EQ(result.stages[2].total(), 17);
  EXPECT_EQ(result.per_thread, 17);
  EXPECT_EQ(result.naive_per_thread, 22);
}

TEST(RegisterAlloc, EmptyPlanAllocatesNothing) {
  KernelRegisterPlan plan;
  const AllocationResult result = allocate_registers(plan, 64);
  EXPECT_EQ(result.per_thread, 0);
  EXPECT_FALSE(result.spills);
}

}  // namespace
}  // namespace egemm::tcsim
