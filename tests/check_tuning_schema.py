#!/usr/bin/env python3
"""Validate an EGEMM tuning file against the versioned schema.

Usage:
    bench_micro --tune=TUNING_sweep.json        # write a sweep
    python3 tests/check_tuning_schema.py TUNING_sweep.json

Mirrors the loader in src/model/tuning_cache.cpp (schema "egemm-tuning",
version 1) so CI catches a writer/reader drift the moment the sweep output
stops parsing, instead of the runtime silently falling back to the
analytic model. Checks:

  * top-level schema tag and version match the C++ constants,
  * every entry carries a power-of-two-bucketed shape_class (axes <= 2048),
    a 6-field positive tile, a non-negative grain, a known engine and ISA
    name, and non-negative measurements,
  * (shape_class, isa) pairs are unique -- duplicates would make lookup
    order-dependent,
  * the optional small_gemm_inline_threshold is a positive integer.

Exit status: 0 valid, 1 schema violation, 2 usage/IO error.
"""

import json
import pathlib
import sys

SCHEMA_NAME = "egemm-tuning"
SCHEMA_VERSION = 1
ENGINES = {"packed", "reference"}
ISAS = {"scalar", "avx2", "avx512"}
TILE_FIELDS = ("bm", "bn", "bk", "wm", "wn", "wk")
LARGE_BUCKET = 2048


def is_bucket(extent):
    """A bucketed axis: 1, a power of two <= 1024, or the 2048 large class."""
    return (
        isinstance(extent, int)
        and 1 <= extent <= LARGE_BUCKET
        and extent & (extent - 1) == 0
    )


def check_entry(index, entry, errors):
    where = f"entries[{index}]"
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return None
    shape = entry.get("shape_class")
    if not isinstance(shape, str):
        errors.append(f"{where}: missing shape_class")
        return None
    parts = shape.split("x")
    if len(parts) != 3 or not all(p.isdigit() and is_bucket(int(p)) for p in parts):
        errors.append(f"{where}: shape_class {shape!r} is not a bucketed MxNxK")
    tile = entry.get("tile")
    if not isinstance(tile, dict) or any(
        not isinstance(tile.get(f), int) or tile[f] <= 0 for f in TILE_FIELDS
    ):
        errors.append(f"{where} ({shape}): tile must carry positive {TILE_FIELDS}")
    grain = entry.get("grain")
    if not isinstance(grain, int) or grain < 0:
        errors.append(f"{where} ({shape}): grain must be a non-negative integer")
    if entry.get("engine") not in ENGINES:
        errors.append(f"{where} ({shape}): engine {entry.get('engine')!r} "
                      f"not in {sorted(ENGINES)}")
    if entry.get("isa") not in ISAS:
        errors.append(f"{where} ({shape}): isa {entry.get('isa')!r} "
                      f"not in {sorted(ISAS)}")
    for field in ("ns_per_call", "gflops"):
        value = entry.get(field)
        if value is not None and (
            not isinstance(value, (int, float)) or value < 0
        ):
            errors.append(f"{where} ({shape}): {field} must be >= 0")
    return (shape, entry.get("isa"))


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = pathlib.Path(sys.argv[1])
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"{path}: unreadable or not JSON: {err}", file=sys.stderr)
        return 2

    errors = []
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        doc = {}
    if doc.get("schema") != SCHEMA_NAME:
        errors.append(f"schema {doc.get('schema')!r} != {SCHEMA_NAME!r}")
    if doc.get("version") != SCHEMA_VERSION:
        errors.append(f"version {doc.get('version')!r} != {SCHEMA_VERSION}")
    threshold = doc.get("small_gemm_inline_threshold")
    if threshold is not None and (not isinstance(threshold, int) or threshold <= 0):
        errors.append("small_gemm_inline_threshold must be a positive integer")
    entries = doc.get("entries")
    if not isinstance(entries, list):
        errors.append("entries must be a list")
        entries = []
    seen = {}
    for i, entry in enumerate(entries):
        key = check_entry(i, entry, errors)
        if key is None:
            continue
        if key in seen:
            errors.append(
                f"entries[{i}]: duplicate (shape_class, isa) {key} "
                f"(first at entries[{seen[key]}])"
            )
        else:
            seen[key] = i

    if errors:
        for error in errors:
            print(f"SCHEMA: {error}", file=sys.stderr)
        print(f"{path}: {len(errors)} schema violation(s)", file=sys.stderr)
        return 1
    classes = sorted({shape for shape, _ in seen})
    print(
        f"{path}: valid {SCHEMA_NAME} v{SCHEMA_VERSION}, "
        f"{len(entries)} entries over {len(classes)} shape classes"
        + (f", inline threshold {threshold}" if threshold else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
