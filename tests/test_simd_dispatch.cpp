// The SIMD dispatch layer's contract (DESIGN.md §15): every compiled-in,
// machine-executable kernel variant is BIT-IDENTICAL to the scalar tier --
// over the full binary16 value space (plus rounding-boundary
// neighbourhoods and a large random sweep) for the converters, and over
// randomized half-valued inputs with every remainder path for the MMA
// kernels. Plus the cpuid probe, EGEMM_FORCE_ISA parsing, the programmatic
// force/clamp API, and the `tcsim.isa.level` gauge.
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/split.hpp"
#include "gemm/egemm.hpp"
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "simd/half_convert_core.hpp"
#include "simd/isa.hpp"

namespace egemm {
namespace {

using simd::IsaLevel;
using simd::KernelTable;
using simd::kMmaTile;

std::vector<IsaLevel> available_levels() {
  std::vector<IsaLevel> out;
  for (int level = 0; level < simd::kIsaLevelCount; ++level) {
    const auto candidate = static_cast<IsaLevel>(level);
    if (simd::isa_available(candidate)) out.push_back(candidate);
  }
  return out;
}

/// Restores auto-resolution (which still honors EGEMM_FORCE_ISA from the
/// environment, so CI's forced-scalar jobs stay forced) when a test that
/// called force_isa exits.
struct IsaGuard {
  IsaGuard() = default;
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
  ~IsaGuard() { simd::reset_isa(); }
};

// -- probe / parse / force ---------------------------------------------------

TEST(IsaProbe, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(simd::isa_available(IsaLevel::kScalar));
  EXPECT_NE(simd::kernels_for(IsaLevel::kScalar), nullptr);
}

TEST(IsaProbe, BestSupportedIsExecutable) {
  const simd::CpuFeatures features = simd::query_cpu_features();
  const IsaLevel best = simd::best_supported(features);
  EXPECT_TRUE(simd::isa_runtime_supported(best, features));
  EXPECT_NE(simd::kernels_for(best), nullptr);
}

TEST(IsaProbe, QueryIsStable) {
  const simd::CpuFeatures first = simd::query_cpu_features();
  const simd::CpuFeatures second = simd::query_cpu_features();
  EXPECT_EQ(first.avx2, second.avx2);
  EXPECT_EQ(first.fma, second.fma);
  EXPECT_EQ(first.avx512f, second.avx512f);
  EXPECT_EQ(first.os_ymm, second.os_ymm);
  EXPECT_EQ(first.os_zmm, second.os_zmm);
}

TEST(IsaProbe, ActiveIsaIsAvailable) {
  EXPECT_TRUE(simd::isa_available(simd::active_isa()));
}

TEST(IsaProbe, TableNamesMatchLevels) {
  for (const IsaLevel level : available_levels()) {
    const KernelTable* table = simd::kernels_for(level);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->level, level);
    EXPECT_STREQ(table->name, simd::isa_name(level));
  }
}

TEST(IsaParse, AcceptsKnownNamesOnly) {
  EXPECT_EQ(simd::parse_isa_name("scalar"), IsaLevel::kScalar);
  EXPECT_EQ(simd::parse_isa_name("avx2"), IsaLevel::kAvx2);
  EXPECT_EQ(simd::parse_isa_name("avx512"), IsaLevel::kAvx512);
  EXPECT_FALSE(simd::parse_isa_name("auto").has_value());
  EXPECT_FALSE(simd::parse_isa_name("AVX2").has_value());
  EXPECT_FALSE(simd::parse_isa_name("").has_value());
  EXPECT_FALSE(simd::parse_isa_name("sse2").has_value());
}

TEST(IsaForce, ForcingAnAvailableLevelSticks) {
  const IsaGuard guard;
  for (const IsaLevel level : available_levels()) {
    EXPECT_EQ(simd::force_isa(level), level);
    EXPECT_EQ(simd::active_isa(), level);
    EXPECT_EQ(simd::active_kernels().level, level);
  }
}

TEST(IsaForce, RequestsAboveTheMachineClamp) {
  const IsaGuard guard;
  const IsaLevel actual = simd::force_isa(IsaLevel::kAvx512);
  EXPECT_TRUE(simd::isa_available(actual));
  if (simd::isa_available(IsaLevel::kAvx512)) {
    EXPECT_EQ(actual, IsaLevel::kAvx512);
  } else {
    EXPECT_LT(static_cast<int>(actual), static_cast<int>(IsaLevel::kAvx512));
  }
}

#if EGEMM_OBSERVABILITY_ENABLED
TEST(IsaForce, RecordsLevelGauge) {
  const IsaGuard guard;
  for (const IsaLevel level : available_levels()) {
    simd::force_isa(level);
    EXPECT_EQ(obs::registry().gauge("tcsim.isa.level").value(),
              static_cast<int>(level));
  }
}
#endif

// -- converters --------------------------------------------------------------

/// Every binary16 value widened to binary32 plus its +-1-ulp binary32
/// neighbours (the nearest/truncate decision boundaries), hand-picked
/// boundary patterns (+-0, subnormal edges, the 65504 -> inf midpoint,
/// +-inf, NaN payloads), and a 2^20 LCG random sweep of the full u32
/// space. Deliberately not a multiple of the 8/16-lane widths so the span
/// kernels' scalar tails execute too.
std::vector<float> f32_conversion_corpus() {
  std::vector<std::uint32_t> bits;
  bits.reserve((1u << 16) * 3 + 64 + (1u << 20) + 3);
  for (std::uint32_t h = 0; h < (1u << 16); ++h) {
    const float widened =
        simd::detail::f16_bits_to_f32_one(static_cast<std::uint16_t>(h));
    const std::uint32_t wb = std::bit_cast<std::uint32_t>(widened);
    bits.push_back(wb);
    bits.push_back(wb + 1);
    bits.push_back(wb - 1);
  }
  for (const std::uint32_t b :
       {0x00000000u, 0x00000001u, 0x007fffffu, 0x00800000u, 0x33000000u,
        0x33000001u, 0x337fffffu, 0x33800000u, 0x38000000u, 0x387fffffu,
        0x38800000u, 0x477fefffu, 0x477ff000u, 0x477ff001u, 0x47800000u,
        0x7f7fffffu, 0x7f800000u, 0x7f800001u, 0x7fc00000u, 0x7fffffffu}) {
    bits.push_back(b);
    bits.push_back(b | 0x80000000u);
  }
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::uint32_t i = 0; i < (1u << 20); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    bits.push_back(static_cast<std::uint32_t>(state >> 32));
  }
  bits.push_back(0x3f800000u);  // pad to a non-lane-multiple length
  bits.push_back(0x40000000u);
  bits.push_back(0xc0400000u);
  std::vector<float> out(bits.size());
  std::memcpy(out.data(), bits.data(), bits.size() * sizeof(float));
  return out;
}

TEST(SimdConverters, F32ToF16BitsMatchesScalarCore) {
  const std::vector<float> in = f32_conversion_corpus();
  std::vector<std::uint16_t> got(in.size());
  for (const IsaLevel level : available_levels()) {
    const KernelTable& table = *simd::kernels_for(level);
    for (const bool nearest : {true, false}) {
      table.f32_to_f16_bits(in.data(), got.data(), in.size(), nearest);
      for (std::size_t i = 0; i < in.size(); ++i) {
        const std::uint16_t want = simd::detail::f32_bits_to_f16_bits(
            std::bit_cast<std::uint32_t>(in[i]), nearest);
        ASSERT_EQ(got[i], want)
            << table.name << " nearest=" << nearest << " input bits 0x"
            << std::hex << std::bit_cast<std::uint32_t>(in[i]);
      }
    }
  }
}

TEST(SimdConverters, F16BitsToF32ExhaustiveMatchesScalarCore) {
  std::vector<std::uint16_t> in(1u << 16);
  for (std::uint32_t h = 0; h < in.size(); ++h) {
    in[h] = static_cast<std::uint16_t>(h);
  }
  std::vector<float> got(in.size());
  for (const IsaLevel level : available_levels()) {
    const KernelTable& table = *simd::kernels_for(level);
    table.f16_bits_to_f32(in.data(), got.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const float want = simd::detail::f16_bits_to_f32_one(in[i]);
      ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                std::bit_cast<std::uint32_t>(want))
          << table.name << " input bits 0x" << std::hex << i;
    }
  }
}

TEST(SimdConverters, RoundThroughF16MatchesComposition) {
  const std::vector<float> in = f32_conversion_corpus();
  std::vector<float> got(in.size());
  for (const IsaLevel level : available_levels()) {
    const KernelTable& table = *simd::kernels_for(level);
    for (const bool nearest : {true, false}) {
      table.f32_round_through_f16(in.data(), got.data(), in.size(), nearest);
      for (std::size_t i = 0; i < in.size(); ++i) {
        const float want =
            simd::detail::f16_bits_to_f32_one(simd::detail::f32_bits_to_f16_bits(
                std::bit_cast<std::uint32_t>(in[i]), nearest));
        ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                  std::bit_cast<std::uint32_t>(want))
            << table.name << " nearest=" << nearest << " input bits 0x"
            << std::hex << std::bit_cast<std::uint32_t>(in[i]);
      }
    }
  }
}

TEST(SimdConverters, EveryTailLengthMatches) {
  // n in [0, 40] covers every remainder class of both lane widths with
  // main-loop iterations before the tail.
  std::vector<float> in(41);
  std::uint64_t state = 42;
  for (auto& x : in) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    x = static_cast<float>(static_cast<std::int64_t>(state >> 40)) * 0x1p-10f;
  }
  for (const IsaLevel level : available_levels()) {
    const KernelTable& table = *simd::kernels_for(level);
    for (std::size_t n = 0; n <= in.size(); ++n) {
      std::vector<std::uint16_t> got(n, 0xabcd);
      table.f32_to_f16_bits(in.data(), got.data(), n, true);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], simd::detail::f32_bits_to_f16_bits(
                              std::bit_cast<std::uint32_t>(in[i]), true))
            << table.name << " n=" << n << " i=" << i;
      }
    }
  }
}

// -- MMA kernels -------------------------------------------------------------

/// Random half-valued floats (what the packed planes hold after a split):
/// binary32 values exactly representable in binary16, in a range where no
/// product or pair sum overflows.
std::vector<float> half_valued(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-4.0f, 4.0f);
  std::vector<float> out(n);
  for (auto& x : out) {
    x = simd::detail::f16_bits_to_f32_one(simd::detail::f32_bits_to_f16_bits(
        std::bit_cast<std::uint32_t>(dist(rng)), true));
  }
  return out;
}

std::vector<float> random_acc(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  std::vector<float> out(n);
  for (auto& x : out) x = dist(rng);
  return out;
}

// Odd k, k = 1, lane-width edges, and beyond-one-slab extents.
const int kMmaKs[] = {1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 63, 100, 513};

TEST(SimdMma, BlockKernelMatchesScalarBitwise) {
  const KernelTable& scalar = *simd::kernels_for(IsaLevel::kScalar);
  for (const IsaLevel level : available_levels()) {
    if (level == IsaLevel::kScalar) continue;
    const KernelTable& table = *simd::kernels_for(level);
    for (const int k : kMmaKs) {
      // lda == k (packed planes) and an over-allocated stride.
      for (const std::size_t lda :
           {static_cast<std::size_t>(k), static_cast<std::size_t>(k) + 5}) {
        const std::vector<float> a =
            half_valued(kMmaTile * lda, 10 + static_cast<std::uint32_t>(k));
        const std::vector<float> b = half_valued(
            static_cast<std::size_t>(k) * kMmaTile,
            20 + static_cast<std::uint32_t>(k));
        const std::vector<float> acc0 =
            random_acc(kMmaTile * kMmaTile, 30 + static_cast<std::uint32_t>(k));
        std::vector<float> want = acc0;
        std::vector<float> got = acc0;
        scalar.mma_block_packed(want.data(), a.data(), lda, b.data(), k);
        table.mma_block_packed(got.data(), a.data(), lda, b.data(), k);
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              want.size() * sizeof(float)),
                  0)
            << table.name << " k=" << k << " lda=" << lda;
      }
    }
  }
}

/// The documented recipe semantics, written as the plain loop nest over
/// the SCALAR block kernel -- the oracle every dispatched recipe variant
/// (and slab choice) must reproduce bit for bit.
void reference_recipe(float* acc, const float* const* a_blocks,
                      const float* const* b_blocks, int ncombos,
                      std::size_t lda, int k, int k_slab, bool fused) {
  const KernelTable& scalar = *simd::kernels_for(IsaLevel::kScalar);
  auto slab = [&](int c, int k0) {
    const int kt = k - k0 < k_slab ? k - k0 : k_slab;
    scalar.mma_block_packed(
        acc, a_blocks[c] + k0, lda,
        b_blocks[c] + static_cast<std::size_t>(k0) * kMmaTile, kt);
  };
  if (fused) {
    for (int k0 = 0; k0 < k; k0 += k_slab) {
      for (int c = 0; c < ncombos; ++c) slab(c, k0);
    }
  } else {
    for (int c = 0; c < ncombos; ++c) {
      for (int k0 = 0; k0 < k; k0 += k_slab) slab(c, k0);
    }
  }
}

TEST(SimdMma, TileRecipeMatchesBlockKernelLoop) {
  constexpr int kNcombos = 4;
  for (const int k : {16, 17, 48, 100, 513}) {
    const std::size_t lda = static_cast<std::size_t>(k);
    std::vector<std::vector<float>> astore;
    std::vector<std::vector<float>> bstore;
    std::array<const float*, kNcombos> a_blocks{};
    std::array<const float*, kNcombos> b_blocks{};
    for (int c = 0; c < kNcombos; ++c) {
      astore.push_back(half_valued(kMmaTile * lda,
                                   100 + static_cast<std::uint32_t>(k + c)));
      bstore.push_back(half_valued(static_cast<std::size_t>(k) * kMmaTile,
                                   200 + static_cast<std::uint32_t>(k + c)));
      a_blocks[static_cast<std::size_t>(c)] = astore.back().data();
      b_blocks[static_cast<std::size_t>(c)] = bstore.back().data();
    }
    const std::vector<float> acc0 =
        random_acc(kMmaTile * kMmaTile, 300 + static_cast<std::uint32_t>(k));
    for (const bool fused : {true, false}) {
      const int k_slab = 16;  // the packed engine's fused (semantic) slab
      std::vector<float> want = acc0;
      reference_recipe(want.data(), a_blocks.data(), b_blocks.data(),
                       kNcombos, lda, k, k_slab, fused);
      for (const IsaLevel level : available_levels()) {
        const KernelTable& table = *simd::kernels_for(level);
        std::vector<float> got = acc0;
        table.mma_tile_recipe(got.data(), a_blocks.data(), b_blocks.data(),
                              kNcombos, lda, k, k_slab, fused);
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              want.size() * sizeof(float)),
                  0)
            << table.name << " k=" << k << " fused=" << fused;
      }
    }
  }
}

TEST(SimdMma, SeparateOrderIsSlabLengthInvariant) {
  // Any EVEN slab (or one >= k) must give bit-identical results in the
  // !fused order: pair boundaries stay on even k offsets, so the blocking
  // never re-pairs products. This is what lets the packed engine pick its
  // slab for locality alone.
  constexpr int kNcombos = 3;
  const int k = 200;
  const std::size_t lda = static_cast<std::size_t>(k);
  std::vector<std::vector<float>> astore;
  std::vector<std::vector<float>> bstore;
  std::array<const float*, kNcombos> a_blocks{};
  std::array<const float*, kNcombos> b_blocks{};
  for (int c = 0; c < kNcombos; ++c) {
    astore.push_back(
        half_valued(kMmaTile * lda, 400 + static_cast<std::uint32_t>(c)));
    bstore.push_back(half_valued(static_cast<std::size_t>(k) * kMmaTile,
                                 500 + static_cast<std::uint32_t>(c)));
    a_blocks[static_cast<std::size_t>(c)] = astore.back().data();
    b_blocks[static_cast<std::size_t>(c)] = bstore.back().data();
  }
  const std::vector<float> acc0 = random_acc(kMmaTile * kMmaTile, 600);
  std::vector<float> want = acc0;
  reference_recipe(want.data(), a_blocks.data(), b_blocks.data(), kNcombos,
                   lda, k, /*k_slab=*/16, /*fused=*/false);
  for (const IsaLevel level : available_levels()) {
    const KernelTable& table = *simd::kernels_for(level);
    for (const int k_slab : {2, 16, 34, 128, 200, 512, 1001}) {
      std::vector<float> got = acc0;
      table.mma_tile_recipe(got.data(), a_blocks.data(), b_blocks.data(),
                            kNcombos, lda, k, k_slab, false);
      ASSERT_EQ(
          std::memcmp(got.data(), want.data(), want.size() * sizeof(float)),
          0)
          << table.name << " k_slab=" << k_slab;
    }
  }
}

// -- whole-pipeline pinning --------------------------------------------------

bool bitwise_equal(const gemm::Matrix& x, const gemm::Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         (x.data().empty() ||
          std::memcmp(x.data().data(), y.data().data(),
                      x.data().size() * sizeof(float)) == 0);
}

TEST(SimdDispatchEndToEnd, PackedEngineMatchesReferenceUnderEveryIsa) {
  const IsaGuard guard;
  static constexpr gemm::Combo kAlg1[] = {
      {false, false}, {false, true}, {true, false}, {true, true}};
  const gemm::Matrix a = gemm::random_matrix(33, 47, -1, 1, 7001);
  const gemm::Matrix b = gemm::random_matrix(47, 65, -1, 1, 7002);
  const gemm::Matrix c = gemm::random_matrix(33, 65, -1, 1, 7003);
  for (const IsaLevel level : available_levels()) {
    simd::force_isa(level);
    for (const auto order : {gemm::ComboOrder::kFusedPerTile,
                             gemm::ComboOrder::kSeparatePasses}) {
      const gemm::Matrix packed =
          gemm::emulated_gemm(a, b, &c, core::SplitMethod::kRoundSplit, kAlg1,
                              order, gemm::ExecEngine::kPacked);
      const gemm::Matrix reference =
          gemm::emulated_gemm(a, b, &c, core::SplitMethod::kRoundSplit, kAlg1,
                              order, gemm::ExecEngine::kReference);
      EXPECT_TRUE(bitwise_equal(packed, reference))
          << simd::isa_name(level) << " order="
          << (order == gemm::ComboOrder::kFusedPerTile ? "fused" : "separate");
    }
  }
}

TEST(SimdDispatchEndToEnd, EveryIsaProducesTheSameGemmBits) {
  // Stronger than packed == reference per level: the RESULT itself must not
  // depend on the level (the reference engine never dispatches its inner
  // dot, so this pins the dispatched converters + MMA jointly).
  const IsaGuard guard;
  static constexpr gemm::Combo kAlg1[] = {
      {false, false}, {false, true}, {true, false}, {true, true}};
  const gemm::Matrix a = gemm::random_matrix(40, 100, -1, 1, 8001);
  const gemm::Matrix b = gemm::random_matrix(100, 24, -1, 1, 8002);
  simd::force_isa(IsaLevel::kScalar);
  const gemm::Matrix want =
      gemm::emulated_gemm(a, b, nullptr, core::SplitMethod::kRoundSplit,
                          kAlg1, gemm::ComboOrder::kFusedPerTile,
                          gemm::ExecEngine::kPacked);
  for (const IsaLevel level : available_levels()) {
    simd::force_isa(level);
    const gemm::Matrix got =
        gemm::emulated_gemm(a, b, nullptr, core::SplitMethod::kRoundSplit,
                            kAlg1, gemm::ComboOrder::kFusedPerTile,
                            gemm::ExecEngine::kPacked);
    EXPECT_TRUE(bitwise_equal(got, want)) << simd::isa_name(level);
  }
}

}  // namespace
}  // namespace egemm
