// Cross-cutting property sweeps: invariants that must hold over whole
// families of configurations, not just the defaults the other suites pin.
#include <gtest/gtest.h>

#include "gemm/gemm_api.hpp"
#include "model/solver.hpp"
#include "sass/codegen.hpp"
#include "sass/lower.hpp"
#include "sass/regalloc.hpp"
#include "sass/schedule.hpp"
#include "sass/verifier.hpp"
#include "tcsim/pipeline.hpp"

namespace egemm {
namespace {

std::vector<gemm::TileConfig> feasible_tilings() {
  const model::SolverResult solved =
      model::solve(model::budget_from_spec(tcsim::tesla_t4()));
  std::vector<gemm::TileConfig> configs;
  for (const auto& candidate : solved.feasible) {
    configs.push_back(candidate.config);
  }
  return configs;
}

class FeasibleTilingTest
    : public ::testing::TestWithParam<gemm::TileConfig> {};

TEST_P(FeasibleTilingTest, TimedPathAcceptsEverySolverCandidate) {
  // Anything the analytic model calls feasible must run on the pipeline
  // model without spilling, and below the effective Tensor Core ceiling
  // (peak / 4 emulation instructions).
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  gemm::EgemmOptions opts;
  opts.tile = GetParam();
  const gemm::KernelTiming t = gemm::egemm_timing(4096, 4096, 4096, spec, opts);
  EXPECT_TRUE(t.feasible) << GetParam().describe();
  EXPECT_FALSE(t.register_spill);
  EXPECT_GT(t.tflops, 1.0);
  EXPECT_LT(t.tflops, spec.peak_fp16_tc_tflops / 4.0);
}

TEST_P(FeasibleTilingTest, LatencyHidingNeverHurts) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  gemm::EgemmOptions on, off;
  on.tile = off.tile = GetParam();
  off.latency_hiding = false;
  const double with = gemm::egemm_timing(4096, 4096, 4096, spec, on).tflops;
  const double without =
      gemm::egemm_timing(4096, 4096, 4096, spec, off).tflops;
  EXPECT_GE(with, without * 0.999) << GetParam().describe();
}

TEST_P(FeasibleTilingTest, FragCachingNeverHurts) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  gemm::EgemmOptions on, off;
  on.tile = off.tile = GetParam();
  off.frag_caching = false;
  const double with = gemm::egemm_timing(4096, 4096, 4096, spec, on).tflops;
  const double without =
      gemm::egemm_timing(4096, 4096, 4096, spec, off).tflops;
  EXPECT_GE(with, without * 0.999) << GetParam().describe();
}

TEST_P(FeasibleTilingTest, GeneratedKernelVerifiesAndAllocates) {
  // The SASS toolchain must handle every solver-feasible tiling: codegen,
  // the schedule pass, hazard verification, and register allocation.
  sass::CodegenParams params;
  params.tile = GetParam();
  params.k_iterations = 4;
  sass::Kernel kernel = sass::generate_egemm_kernel(params);
  sass::schedule_latency_hiding(kernel);
  const auto violations = sass::verify_kernel(kernel, 3);
  EXPECT_TRUE(violations.empty())
      << GetParam().describe() << ": " << violations.size() << " violations, "
      << (violations.empty() ? "" : violations.front().message);
  const sass::AllocationReport report =
      sass::allocate_kernel_registers(kernel);
  EXPECT_TRUE(report.success) << GetParam().describe();
}

INSTANTIATE_TEST_SUITE_P(
    SolverFeasible, FeasibleTilingTest, ::testing::ValuesIn(feasible_tilings()),
    [](const ::testing::TestParamInfo<gemm::TileConfig>& tiling) {
      const gemm::TileConfig& c = tiling.param;
      return std::to_string(c.bm) + "_" + std::to_string(c.bn) + "_" +
             std::to_string(c.bk) + "__" + std::to_string(c.wm) + "_" +
             std::to_string(c.wn) + "_" + std::to_string(c.wk);
    });

class GpuSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GpuSweepTest, OrderingInvariantsHoldAtEverySize) {
  const tcsim::GpuSpec spec = tcsim::spec_by_name(GetParam());
  for (const std::uint64_t n : {1024u, 2048u, 4096u, 8192u, 16384u}) {
    const double egemm =
        gemm::time_gemm(gemm::Backend::kEgemmTC, n, n, n, spec).tflops;
    const double half =
        gemm::time_gemm(gemm::Backend::kCublasTcHalf, n, n, n, spec).tflops;
    const double dekker =
        gemm::time_gemm(gemm::Backend::kDekker, n, n, n, spec).tflops;
    const double sdk =
        gemm::time_gemm(gemm::Backend::kSdkFp32, n, n, n, spec).tflops;
    // Half (no emulation) > EGEMM (4x) > Dekker schedule (16x) > SDK.
    EXPECT_GT(half, egemm) << GetParam() << " " << n;
    EXPECT_GT(egemm, dekker) << GetParam() << " " << n;
    EXPECT_GT(dekker, sdk) << GetParam() << " " << n;
  }
}

TEST_P(GpuSweepTest, SolverFindsAFeasibleTiling) {
  const model::SolverResult solved = model::solve(
      model::budget_from_spec(tcsim::spec_by_name(GetParam())));
  ASSERT_TRUE(solved.found);
  EXPECT_TRUE(solved.best_eval.feasible());
}

INSTANTIATE_TEST_SUITE_P(Gpus, GpuSweepTest,
                         ::testing::Values("t4", "rtx6000"));

TEST(TimingMonotonicity, MoreWorkNeverRunsFaster) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  double prev = 0.0;
  for (const std::uint64_t k : {512u, 1024u, 2048u, 4096u, 8192u}) {
    const double seconds =
        gemm::time_gemm(gemm::Backend::kEgemmTC, 4096, 4096, k, spec).seconds;
    EXPECT_GT(seconds, prev) << "k=" << k;
    prev = seconds;
  }
}

}  // namespace
}  // namespace egemm
