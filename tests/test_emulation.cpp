// Tests for the tile-level emulation algorithms (core/emulation.hpp).
#include "core/emulation.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "tcsim/tensor_core.hpp"
#include "util/rng.hpp"

namespace egemm::core {
namespace {

using tcsim::FragmentAcc;
using tcsim::kTcK;
using tcsim::kTcM;
using tcsim::kTcN;

struct TileSet {
  FragmentF32 a;
  FragmentF32B b;
  FragmentAcc c;
};

TileSet random_tiles(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  TileSet t;
  for (int i = 0; i < kTcM; ++i) {
    for (int k = 0; k < kTcK; ++k) t.a.at(i, k) = rng.uniform(-1.0f, 1.0f);
  }
  for (int k = 0; k < kTcK; ++k) {
    for (int j = 0; j < kTcN; ++j) t.b.at(k, j) = rng.uniform(-1.0f, 1.0f);
  }
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) t.c.at(i, j) = rng.uniform(-1.0f, 1.0f);
  }
  return t;
}

/// Binary64 reference for one tile.
void reference_tile(const TileSet& t, double out[kTcM][kTcN]) {
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      double acc = static_cast<double>(t.c.at(i, j));
      for (int k = 0; k < kTcK; ++k) {
        acc += static_cast<double>(t.a.at(i, k)) *
               static_cast<double>(t.b.at(k, j));
      }
      out[i][j] = acc;
    }
  }
}

double max_tile_error(const FragmentAcc& d, const double ref[kTcM][kTcN]) {
  double max_err = 0.0;
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      max_err = std::max(
          max_err, std::fabs(static_cast<double>(d.at(i, j)) - ref[i][j]));
    }
  }
  return max_err;
}

class EmulationTileTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmulationTileTest, Alg1AchievesExtendedPrecision) {
  const TileSet t = random_tiles(GetParam());
  double ref[kTcM][kTcN];
  reference_tile(t, ref);
  FragmentAcc d;
  egemm_mma_tile(d, t.a, t.b, t.c);
  // With |inputs| <= 1, each output sums 16 products in [-1,1] plus C: the
  // split error per product is ~2^-21; accumulated over 16 terms plus fp32
  // accumulation noise, 16 * 2^-20 is a safe (loose) bound.
  EXPECT_LT(max_tile_error(d, ref), 16 * 0x1.0p-20);
}

TEST_P(EmulationTileTest, Alg1BeatsMarkidis) {
  // Aggregated over many tiles, EGEMM-TC's round-split + 4th product term
  // must reduce the max error vs Markidis (paper: 2.33x on large GEMMs).
  double egemm_err = 0.0, markidis_err = 0.0;
  for (std::uint64_t s = 0; s < 40; ++s) {
    const TileSet t = random_tiles(GetParam() * 1000 + s);
    double ref[kTcM][kTcN];
    reference_tile(t, ref);
    FragmentAcc d1, d2;
    egemm_mma_tile(d1, t.a, t.b, t.c);
    markidis_mma_tile(d2, t.a, t.b, t.c);
    egemm_err = std::max(egemm_err, max_tile_error(d1, ref));
    markidis_err = std::max(markidis_err, max_tile_error(d2, ref));
  }
  EXPECT_LT(egemm_err, markidis_err);
}

TEST_P(EmulationTileTest, HalfTileIsOrdersOfMagnitudeWorse) {
  const TileSet t = random_tiles(GetParam());
  double ref[kTcM][kTcN];
  reference_tile(t, ref);
  FragmentAcc emu, half;
  egemm_mma_tile(emu, t.a, t.b, t.c);
  half_mma_tile(half, t.a, t.b, t.c);
  EXPECT_GT(max_tile_error(half, ref), 20.0 * max_tile_error(emu, ref));
}

TEST_P(EmulationTileTest, DekkerAchievesExtendedPrecisionAt16xCost) {
  const TileSet t = random_tiles(GetParam());
  double ref[kTcM][kTcN];
  reference_tile(t, ref);
  FragmentAcc d, half;
  long ops = 0;
  dekker_mma_tile(d, t.a, t.b, t.c, &ops);
  half_mma_tile(half, t.a, t.b, t.c);
  // Dekker emulation must beat plain half compute by a wide margin...
  EXPECT_LT(max_tile_error(d, ref), 0.2 * max_tile_error(half, ref));
  // ...and cost 16 binary16 instructions per emulated multiply-accumulate.
  EXPECT_EQ(ops, long{kDekkerInstructions} * kTcM * kTcN * kTcK);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmulationTileTest,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

TEST(Emulation, TruncateSplitVariantMatchesMarkidisPlusLoLo) {
  // Ablation sanity: Alg. 1 run with truncate-split differs from Markidis
  // only by the Alo x Blo term, so it must be at least as accurate.
  double alg1_trunc_err = 0.0, markidis_err = 0.0;
  for (std::uint64_t s = 0; s < 40; ++s) {
    const TileSet t = random_tiles(777000 + s);
    double ref[kTcM][kTcN];
    reference_tile(t, ref);
    FragmentAcc d1, d2;
    egemm_mma_tile(d1, t.a, t.b, t.c, SplitMethod::kTruncateSplit);
    markidis_mma_tile(d2, t.a, t.b, t.c);
    alg1_trunc_err = std::max(alg1_trunc_err, max_tile_error(d1, ref));
    markidis_err = std::max(markidis_err, max_tile_error(d2, ref));
  }
  EXPECT_LE(alg1_trunc_err, markidis_err * 1.05);
}

TEST(Emulation, ZeroInputsGiveExactC) {
  TileSet t{};  // zero tiles
  util::Xoshiro256 rng(1);
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) t.c.at(i, j) = rng.uniform(-1.0f, 1.0f);
  }
  FragmentAcc d;
  egemm_mma_tile(d, t.a, t.b, t.c);
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) EXPECT_EQ(d.at(i, j), t.c.at(i, j));
  }
}

TEST(Emulation, HalfRepresentableInputsAreExactThroughAlg1) {
  // When A and B are already binary16, the lo planes vanish and Alg. 1
  // degenerates to a single Tensor Core product -- bit-identical to it.
  util::Xoshiro256 rng(2);
  TileSet t;
  for (int i = 0; i < kTcM; ++i) {
    for (int k = 0; k < kTcK; ++k) {
      t.a.at(i, k) = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
    }
  }
  for (int k = 0; k < kTcK; ++k) {
    for (int j = 0; j < kTcN; ++j) {
      t.b.at(k, j) = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
    }
  }
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) t.c.at(i, j) = rng.uniform(-1.0f, 1.0f);
  }
  FragmentAcc emulated, direct;
  egemm_mma_tile(emulated, t.a, t.b, t.c);
  half_mma_tile(direct, t.a, t.b, t.c);
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      EXPECT_EQ(emulated.at(i, j), direct.at(i, j));
    }
  }
}

TEST(Emulation, DekkerTwoProdRecoversProductError) {
  // Unlike binary64, binary16 cannot represent the 5x6-bit cross terms
  // exactly, so the compensation is approximate (~4-5 extra bits beyond
  // plain binary16), and it degrades further once the error term falls
  // into the binary16 subnormal range -- restrict |a*b| >= 2^-8.
  util::Xoshiro256 rng(3);
  int checked = 0;
  while (checked < 20000) {
    const fp::Half a(rng.uniform(-1.0f, 1.0f));
    const fp::Half b(rng.uniform(-1.0f, 1.0f));
    const double exact = a.to_double() * b.to_double();
    if (std::fabs(exact) < 0x1.0p-8) continue;
    ++checked;
    const HalfProduct r = dekker_two_prod_half(a, b);
    const double reconstructed = r.p.to_double() + r.e.to_double();
    EXPECT_LE(std::fabs(reconstructed - exact), std::fabs(exact) * 0x1.0p-14)
        << "a=" << a.to_float() << " b=" << b.to_float();
  }
}

TEST(Emulation, DekkerTwoProdBeatsPlainHalfInAggregate) {
  // Individual low-magnitude products can see the compensation misround
  // (binary16 has no headroom for an exact error term), but over the whole
  // input domain p + e is far more accurate than the bare binary16
  // product, both in total and in the worst case.
  util::Xoshiro256 rng(4);
  double sum_comp = 0.0, sum_plain = 0.0;
  double max_comp = 0.0, max_plain = 0.0;
  for (int trial = 0; trial < 20000; ++trial) {
    const fp::Half a(rng.uniform(-1.0f, 1.0f));
    const fp::Half b(rng.uniform(-1.0f, 1.0f));
    const double exact = a.to_double() * b.to_double();
    const HalfProduct r = dekker_two_prod_half(a, b);
    const double comp_err =
        std::fabs(r.p.to_double() + r.e.to_double() - exact);
    const double plain_err = std::fabs((a * b).to_double() - exact);
    sum_comp += comp_err;
    sum_plain += plain_err;
    max_comp = std::max(max_comp, comp_err);
    max_plain = std::max(max_plain, plain_err);
  }
  EXPECT_LT(sum_comp, 0.1 * sum_plain);
  EXPECT_LT(max_comp, 0.5 * max_plain);
}

}  // namespace
}  // namespace egemm::core
