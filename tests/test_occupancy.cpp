// Tests for the occupancy/wave model (tcsim/occupancy.hpp).
#include "tcsim/occupancy.hpp"

#include <gtest/gtest.h>

namespace egemm::tcsim {
namespace {

TEST(Occupancy, Table4BlockGetsOneBlockPerSm) {
  // 36 KB shared memory + 232 registers x 256 threads on a T4 SM: exactly
  // one resident block (Table 4 "Active Blocks/SM: 1").
  const GpuSpec spec = tesla_t4();
  const BlockResources res{36 * 1024, 232, 256};
  const Occupancy occ = compute_occupancy(spec, res);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_EQ(occ.limited_by, OccupancyLimit::kSharedMemory);
}

TEST(Occupancy, SmallBlocksStackUp) {
  const GpuSpec spec = tesla_t4();
  const BlockResources res{8 * 1024, 32, 128};
  const Occupancy occ = compute_occupancy(spec, res);
  EXPECT_EQ(occ.blocks_per_sm, 8);  // shared-memory limited: 64/8
}

TEST(Occupancy, RegisterLimit) {
  const GpuSpec spec = tesla_t4();
  // 256 threads x 128 regs x 4 B = 128 KB -> 2 blocks by registers.
  const BlockResources res{4 * 1024, 128, 256};
  const Occupancy occ = compute_occupancy(spec, res);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limited_by, OccupancyLimit::kRegisters);
}

TEST(Occupancy, WarpLimitWithoutOtherPressure) {
  const GpuSpec spec = tesla_t4();
  const BlockResources res{0, 0, 256};  // 8 warps, nothing else
  const Occupancy occ = compute_occupancy(spec, res);
  EXPECT_EQ(occ.blocks_per_sm, 4);  // 32 warps / 8
  EXPECT_EQ(occ.limited_by, OccupancyLimit::kWarps);
}

TEST(Occupancy, OversizedBlockDoesNotFit) {
  const GpuSpec spec = tesla_t4();
  const BlockResources res{128 * 1024, 64, 256};  // > 64 KB shared
  EXPECT_EQ(compute_occupancy(spec, res).blocks_per_sm, 0);
}

TEST(Waves, CeilDivision) {
  const GpuSpec spec = tesla_t4();  // 40 SMs
  EXPECT_EQ(wave_count(0, spec, 1), 0u);
  EXPECT_EQ(wave_count(1, spec, 1), 1u);
  EXPECT_EQ(wave_count(40, spec, 1), 1u);
  EXPECT_EQ(wave_count(41, spec, 1), 2u);
  EXPECT_EQ(wave_count(4096, spec, 1), 103u);
  EXPECT_EQ(wave_count(80, spec, 2), 1u);
}

TEST(Waves, KernelCyclesQuantize) {
  const GpuSpec spec = tesla_t4();
  EXPECT_DOUBLE_EQ(kernel_cycles(41, 1000.0, spec, 1), 2000.0);
  EXPECT_DOUBLE_EQ(kernel_cycles(40, 1000.0, spec, 1), 1000.0);
}

TEST(GpuSpec, DerivedRates) {
  const GpuSpec spec = tesla_t4();
  // 750 GB/s over 40 SMs at 1.59 GHz: ~11.8 B/cycle/SM.
  EXPECT_NEAR(spec.l2_bytes_per_cycle_per_sm(), 11.79, 0.05);
  // 65 TFLOPS over 40 SMs at 1.59 GHz: ~1022 FLOP/cycle/SM.
  EXPECT_NEAR(spec.tc_flops_per_cycle_per_sm(), 1022.0, 2.0);
  EXPECT_NEAR(spec.cycles_to_seconds(1.59e9), 1.0, 1e-9);
}

TEST(GpuSpec, LookupByName) {
  EXPECT_EQ(spec_by_name("t4").sm_count, 40);
  EXPECT_EQ(spec_by_name("rtx6000").sm_count, 72);
  EXPECT_EQ(spec_by_name("RTX6000").tensor_cores_per_sm, 8);
}

}  // namespace
}  // namespace egemm::tcsim
