// Golden snapshot of the Fig. 7 precision experiment (DESIGN.md §11):
// MaxError (Eq. 10, vs the single-precision kernel) for EGEMM-TC, Markidis
// and TC-Half at the bench's default seed 7, pinned to the exact bits.
//
// The functional path is deterministic by construction: every output
// element performs a fixed operation sequence (pair-sum accumulation,
// -ffp-contract=off), thread partitioning only splits rows, and max() is
// order-independent -- so these values must reproduce to the last bit on
// any machine. A golden mismatch means the numerics of a kernel changed,
// which is exactly what this test exists to catch; if the change is
// intentional, re-capture with the hexfloat printed in the failure message.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "gemm/baselines.hpp"
#include "gemm/egemm.hpp"
#include "gemm/matrix.hpp"

namespace egemm::gemm {
namespace {

struct Golden {
  std::size_t n;
  double egemm;
  double markidis;
  double tc_half;
};

// Captured from bench_fig7_precision's pipeline at seed 7 (a = seed + n,
// b = seed + 31 * n, values in [-1, 1]). At n = 128 the EGEMM and Markidis
// max errors happen to quantize to the same value against the fp32 kernel
// (which is itself inexact); by n = 256 the gap is visible.
const Golden kGolden[] = {
    {128, 0x1.8p-17, 0x1.8p-17, 0x1.0bap-8},
    {256, 0x1.cp-16, 0x1.2p-15, 0x1.a428p-8},
};

class Fig7GoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(Fig7GoldenTest, MaxErrorMatchesToTheBit) {
  const Golden golden = GetParam();
  const std::uint64_t seed = 7;
  const std::size_t n = golden.n;
  const Matrix a = random_matrix(n, n, -1.0f, 1.0f, seed + n);
  const Matrix b = random_matrix(n, n, -1.0f, 1.0f, seed + 31 * n);
  const Matrix single = sgemm_fp32(a, b);

  const double egemm_err = max_abs_error(single, egemm_multiply(a, b));
  const double markidis_err = max_abs_error(single, gemm_markidis(a, b));
  const double half_err = max_abs_error(single, gemm_tc_half(a, b));

  EXPECT_EQ(egemm_err, golden.egemm)
      << std::string(64, '-') << "\n  re-capture: egemm=" << std::hexfloat
      << egemm_err << " markidis=" << markidis_err << " half=" << half_err;
  EXPECT_EQ(markidis_err, golden.markidis)
      << "re-capture: " << std::hexfloat << markidis_err;
  EXPECT_EQ(half_err, golden.tc_half)
      << "re-capture: " << std::hexfloat << half_err;

  // The figure's qualitative content, independent of the exact bits (LE for
  // the first pair: small sizes can quantize the two errors to a tie).
  EXPECT_LE(egemm_err, markidis_err);
  EXPECT_LT(markidis_err, half_err);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fig7GoldenTest, ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& golden) {
                           return "N" + std::to_string(golden.param.n);
                         });

}  // namespace
}  // namespace egemm::gemm
