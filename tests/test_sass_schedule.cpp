// Tests for the latency-hiding scheduling pass (sass/schedule.hpp), the
// hazard verifier on both schedules, and the lowered cycle comparison
// (the IR-level version of Fig. 11).
#include "sass/schedule.hpp"

#include <gtest/gtest.h>

#include "sass/codegen.hpp"
#include "sass/lower.hpp"
#include "sass/verifier.hpp"
#include "tcsim/pipeline.hpp"

namespace egemm::sass {
namespace {

CodegenParams table4_params(std::uint32_t iters = 16) {
  CodegenParams params;
  params.k_iterations = iters;
  return params;
}

std::uint64_t count_op(const std::vector<Instr>& instrs, Op op) {
  std::uint64_t total = 0;
  for (const Instr& instr : instrs) {
    if (instr.op == op) ++total;
  }
  return total;
}

TEST(SassSchedule, PreservesTheInstructionMultiset) {
  Kernel kernel = generate_egemm_kernel(table4_params());
  const Kernel naive = kernel;
  schedule_latency_hiding(kernel);
  for (const Op op : {Op::kLds, Op::kHmma, Op::kLdg, Op::kSts, Op::kBar,
                      Op::kIadd, Op::kBra}) {
    EXPECT_EQ(count_op(kernel.body, op), count_op(naive.body, op))
        << op_name(op);
  }
  EXPECT_EQ(kernel.body.size(), naive.body.size());
}

TEST(SassSchedule, AddsDoubleBufferRegisters) {
  Kernel kernel = generate_egemm_kernel(table4_params());
  const std::int32_t before = kernel.virtual_regs;
  const ScheduleStats stats = schedule_latency_hiding(kernel);
  // 6 LDS.128 destinations x 4 registers get shadow copies.
  EXPECT_EQ(stats.added_registers, 24);
  EXPECT_EQ(kernel.virtual_regs, before + 24);
  EXPECT_GT(stats.hoisted_lds, 0u);
  EXPECT_GT(stats.spread_ldg, 0u);
}

TEST(SassSchedule, InterleavesFragmentLoadsIntoTheCompute) {
  Kernel kernel = generate_egemm_kernel(table4_params());
  schedule_latency_hiding(kernel);
  // In the scheduled body, step s+1's LDS group must sit *inside* step s's
  // HMMA burst (after its first instruction, before its last) -- the
  // Fig. 6 interleave.
  std::vector<std::size_t> first_lds(5, 0), first_hmma(5, 0), last_hmma(5, 0);
  for (std::size_t i = 0; i < kernel.body.size(); ++i) {
    const Instr& instr = kernel.body[i];
    if (instr.step < 0) continue;
    const auto s = static_cast<std::size_t>(instr.step);
    if (instr.op == Op::kLds && first_lds[s] == 0) first_lds[s] = i + 1;
    if (instr.op == Op::kHmma) {
      if (first_hmma[s] == 0) first_hmma[s] = i + 1;
      last_hmma[s] = i + 1;
    }
  }
  for (std::size_t s = 0; s + 1 < 4; ++s) {
    EXPECT_GT(first_lds[s + 1], first_hmma[s]) << "step " << s;
    EXPECT_LT(first_lds[s + 1], last_hmma[s]) << "step " << s;
  }
}

TEST(SassSchedule, ScheduledKernelIsHazardFree) {
  Kernel kernel = generate_egemm_kernel(table4_params());
  schedule_latency_hiding(kernel);
  const std::vector<Violation> violations = verify_kernel(kernel, 3);
  for (const Violation& v : violations) {
    ADD_FAILURE() << v.where << "[" << v.index << "]: " << v.message;
  }
}

TEST(SassSchedule, OddStepsUseTheShadowBuffer) {
  Kernel kernel = generate_egemm_kernel(table4_params());
  const Kernel naive = kernel;
  schedule_latency_hiding(kernel);
  // Collect the naive fragment destinations.
  std::set<std::int32_t> original;
  for (const Instr& instr : naive.body) {
    if (instr.op == Op::kLds) original.insert(instr.dst.index);
  }
  for (const Instr& instr : kernel.body) {
    if (instr.op != Op::kLds || instr.step < 0) continue;
    const bool uses_original = original.count(instr.dst.index) != 0;
    if (instr.step % 2 == 0) {
      EXPECT_TRUE(uses_original) << "step " << instr.step;
    } else {
      EXPECT_FALSE(uses_original) << "step " << instr.step;
    }
  }
}

TEST(SassSchedule, LoweredCyclesReproduceFig11) {
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const int warps = gemm::table4_config().warps_per_block();
  Kernel naive = generate_egemm_kernel(table4_params(64));
  Kernel fast = naive;
  schedule_latency_hiding(fast);
  const tcsim::SimStats naive_stats =
      tcsim::simulate_block(lower_kernel(naive, warps), spec);
  const tcsim::SimStats fast_stats =
      tcsim::simulate_block(lower_kernel(fast, warps), spec);
  const double ratio = naive_stats.cycles / fast_stats.cycles;
  EXPECT_GT(ratio, 1.05);  // Fig. 11 band
  EXPECT_LT(ratio, 1.5);
}

TEST(SassSchedule, LoweredCyclesTrackTheHandBuiltStream) {
  // The generated+scheduled kernel and the hand-built aggregate stream
  // (tcsim::build_egemm_block_program) must agree within ~15% -- they
  // describe the same kernel.
  const tcsim::GpuSpec spec = tcsim::tesla_t4();
  const gemm::TileConfig tile = gemm::table4_config();
  const tcsim::EgemmStreamOptions opts{};
  const auto iters = 64u;

  Kernel kernel = generate_egemm_kernel(table4_params(iters));
  schedule_latency_hiding(kernel);
  const tcsim::SimStats ir_stats = tcsim::simulate_block(
      lower_kernel(kernel, tile.warps_per_block()), spec);

  const tcsim::IterationShape shape = tcsim::egemm_iteration_shape(
      tile.bm, tile.bn, tile.bk, tile.wm, tile.wn, tile.wk, opts);
  const tcsim::SimStats hand_stats = tcsim::simulate_block(
      tcsim::build_egemm_block_program(shape, iters, opts, 128), spec);

  EXPECT_NEAR(ir_stats.cycles / hand_stats.cycles, 1.0, 0.15);
}

TEST(SassVerifier, FailureInjectionMissingWaitIsCaught) {
  Kernel kernel = generate_egemm_kernel(table4_params());
  // Drop the HMMA wait on the fragment-ready barrier: a classic scheduling
  // bug the verifier must catch as a RAW hazard.
  bool mutated = false;
  for (Instr& instr : kernel.body) {
    if (instr.op == Op::kHmma && instr.ctrl.wait_mask != 0) {
      instr.ctrl.wait_mask = 0;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(verify_kernel(kernel).empty());
}

TEST(SassVerifier, FailureInjectionEarlyOverwriteIsCaught) {
  Kernel kernel = generate_egemm_kernel(table4_params());
  schedule_latency_hiding(kernel);
  // Remove the WAR wait from an LDS group: overwriting a buffer with
  // pending guarded reads must be flagged.
  bool mutated = false;
  for (Instr& instr : kernel.body) {
    if (instr.op == Op::kLds && instr.ctrl.wait_mask != 0) {
      instr.ctrl.wait_mask = 0;
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  EXPECT_FALSE(verify_kernel(kernel, 3).empty());
}

TEST(SassVerifier, BarrierReuseIsCaught) {
  Kernel kernel;
  Instr ldg;
  ldg.op = Op::kLdg;
  ldg.dst = RegRange{0, 4};
  ldg.ctrl.write_barrier = 0;
  kernel.body.push_back(ldg);
  Instr ldg2 = ldg;
  ldg2.dst = RegRange{4, 4};
  kernel.body.push_back(ldg2);  // re-arms barrier 0 with no wait
  kernel.loop_trips = 1;
  kernel.virtual_regs = 8;
  const auto violations = verify_kernel(kernel, 1);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("re-armed"), std::string::npos);
}

}  // namespace
}  // namespace egemm::sass
