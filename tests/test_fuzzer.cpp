// Tests for the deterministic fuzz-case generator and its replayable
// one-line descriptor format (verify/fuzzer.hpp).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "verify/fuzzer.hpp"

namespace egemm::verify {
namespace {

bool same_bits(const gemm::Matrix& x, const gemm::Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data().data(), y.data().data(),
                     x.size() * sizeof(float)) == 0;
}

TEST(Fuzzer, GenerateInputsIsPureInTheCase) {
  FuzzCase fuzz;
  fuzz.seed = 42;
  fuzz.m = 7;
  fuzz.n = 5;
  fuzz.k = 13;
  fuzz.kind = InputKind::kLogUniform;
  fuzz.with_c = true;
  const FuzzInputs first = generate_inputs(fuzz);
  const FuzzInputs second = generate_inputs(fuzz);
  EXPECT_TRUE(same_bits(first.a, second.a));
  EXPECT_TRUE(same_bits(first.b, second.b));
  EXPECT_TRUE(same_bits(first.c, second.c));
  EXPECT_EQ(first.a.rows(), 7u);
  EXPECT_EQ(first.a.cols(), 13u);
  EXPECT_EQ(first.b.rows(), 13u);
  EXPECT_EQ(first.b.cols(), 5u);
  EXPECT_NE(first.c_ptr(), nullptr);
}

TEST(Fuzzer, SeedChangesTheData) {
  FuzzCase fuzz;
  fuzz.seed = 1;
  fuzz.m = fuzz.n = fuzz.k = 8;
  FuzzCase other = fuzz;
  other.seed = 2;
  EXPECT_FALSE(same_bits(generate_inputs(fuzz).a, generate_inputs(other).a));
}

TEST(Fuzzer, CancellationBuildsExactPairs) {
  FuzzCase fuzz;
  fuzz.seed = 9;
  fuzz.m = 4;
  fuzz.n = 3;
  fuzz.k = 6;
  fuzz.kind = InputKind::kCancellation;
  const FuzzInputs inputs = generate_inputs(fuzz);
  for (std::size_t i = 0; i < fuzz.m; ++i) {
    for (std::size_t t = 1; t < fuzz.k; t += 2) {
      EXPECT_EQ(inputs.a.at(i, t), -inputs.a.at(i, t - 1));
    }
  }
  for (std::size_t t = 1; t < fuzz.k; t += 2) {
    for (std::size_t j = 0; j < fuzz.n; ++j) {
      EXPECT_EQ(inputs.b.at(t, j), inputs.b.at(t - 1, j));
    }
  }
}

TEST(Fuzzer, PlanIsDeterministicAndCoversEveryKindAndScheme) {
  const std::vector<FuzzCase> plan = fuzz_plan(123, 50);
  const std::vector<FuzzCase> again = fuzz_plan(123, 50);
  ASSERT_EQ(plan.size(), 50u);
  std::set<int> kinds;
  std::set<int> schemes;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].seed, again[i].seed);
    EXPECT_EQ(plan[i].m, again[i].m);
    EXPECT_EQ(plan[i].kind, again[i].kind);
    EXPECT_EQ(plan[i].scheme, again[i].scheme);
    EXPECT_GE(plan[i].m, 1u);
    EXPECT_GE(plan[i].n, 1u);
    EXPECT_GE(plan[i].k, 1u);
    kinds.insert(static_cast<int>(plan[i].kind));
    schemes.insert(static_cast<int>(plan[i].scheme));
  }
  EXPECT_EQ(kinds.size(), static_cast<std::size_t>(InputKind::kCount));
  EXPECT_EQ(schemes.size(), core::kSchemeCount);
}

TEST(Fuzzer, PlanPairsEveryKindWithEverySchemeOverOnePeriod) {
  // 9 kinds and 6 schemes share a factor of 3, so the generator shifts the
  // scheme lane one step per 18-case super-period: all 54 (kind, scheme)
  // pairs must appear within 108 cases.
  const std::vector<FuzzCase> plan = fuzz_plan(7, 108);
  std::set<std::pair<int, int>> pairs;
  for (const FuzzCase& fuzz : plan) {
    pairs.emplace(static_cast<int>(fuzz.kind), static_cast<int>(fuzz.scheme));
  }
  EXPECT_EQ(pairs.size(),
            static_cast<std::size_t>(InputKind::kCount) * core::kSchemeCount);
}

TEST(Fuzzer, DifferentMasterSeedsGiveDifferentPlans) {
  const std::vector<FuzzCase> one = fuzz_plan(1, 10);
  const std::vector<FuzzCase> two = fuzz_plan(2, 10);
  EXPECT_NE(one[0].seed, two[0].seed);
}

TEST(Fuzzer, FormatParseRoundTrip) {
  for (int kind = 0; kind < static_cast<int>(InputKind::kCount); ++kind) {
    FuzzCase fuzz;
    fuzz.seed = std::uint64_t{0xdeadbeef} + static_cast<std::uint64_t>(kind);
    fuzz.m = 17;
    fuzz.n = 1;
    fuzz.k = 33;
    fuzz.kind = static_cast<InputKind>(kind);
    fuzz.with_c = (kind % 2) == 0;
    fuzz.scheme = core::scheme_ladder()[static_cast<std::size_t>(kind) %
                                        core::kSchemeCount];
    const std::optional<FuzzCase> parsed = parse_case(format_case(fuzz));
    ASSERT_TRUE(parsed.has_value()) << format_case(fuzz);
    EXPECT_EQ(parsed->seed, fuzz.seed);
    EXPECT_EQ(parsed->m, fuzz.m);
    EXPECT_EQ(parsed->n, fuzz.n);
    EXPECT_EQ(parsed->k, fuzz.k);
    EXPECT_EQ(parsed->kind, fuzz.kind);
    EXPECT_EQ(parsed->with_c, fuzz.with_c);
    EXPECT_EQ(parsed->scheme, fuzz.scheme);
  }
}

TEST(Fuzzer, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_case("").has_value());            // blank
  EXPECT_FALSE(parse_case("# comment").has_value());   // comment only
  EXPECT_FALSE(parse_case("seed=1 m=2").has_value());  // missing fields
  EXPECT_FALSE(parse_case("seed=1 m=2 n=3 k=4 kind=bogus").has_value());
  EXPECT_FALSE(parse_case("seed=x m=2 n=3 k=4 kind=uniform").has_value());
  EXPECT_FALSE(parse_case("seed=1 m=2 n=3 k=4 kind=uniform junk").has_value());
  EXPECT_FALSE(
      parse_case("seed=1 m=2 n=3 k=4 kind=uniform scheme=bogus").has_value());
}

TEST(Fuzzer, ParseAcceptsCommentsAndWhitespace) {
  const std::optional<FuzzCase> parsed =
      parse_case("  seed=7 m=2 n=3 k=4 kind=denormal c=1  # why it is here");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_EQ(parsed->kind, InputKind::kDenormal);
  EXPECT_TRUE(parsed->with_c);
  // Descriptors predating the ladder default to the legacy 2-term rung.
  EXPECT_EQ(parsed->scheme, core::SchemeId::kRound2);
}

TEST(Fuzzer, ParseReadsSchemeToken) {
  const std::optional<FuzzCase> parsed =
      parse_case("seed=7 m=2 n=3 k=4 kind=uniform c=0 scheme=slice-3term");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->scheme, core::SchemeId::kSlice3);
}

TEST(Fuzzer, NewKindsFillWithFiniteAdversarialValues) {
  for (const InputKind kind :
       {InputKind::kExponentSpread, InputKind::kWideMantissa}) {
    FuzzCase fuzz;
    fuzz.seed = 5;
    fuzz.m = 16;
    fuzz.n = 16;
    fuzz.k = 16;
    fuzz.kind = kind;
    const FuzzInputs inputs = generate_inputs(fuzz);
    for (const float v : inputs.a.data()) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_NE(v, 0.0f);
    }
  }
  // Wide-mantissa values carry an odd low mantissa bit: no value can be
  // represented exactly by the hi half-precision plane alone.
  FuzzCase fuzz;
  fuzz.seed = 6;
  fuzz.m = 8;
  fuzz.n = 8;
  fuzz.k = 8;
  fuzz.kind = InputKind::kWideMantissa;
  const FuzzInputs inputs = generate_inputs(fuzz);
  for (const float v : inputs.a.data()) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    EXPECT_EQ(bits & 1u, 1u);
  }
}

TEST(Fuzzer, SpecialsKindActuallyEmitsSpecials) {
  FuzzCase fuzz;
  fuzz.seed = 3;
  fuzz.m = 32;
  fuzz.n = 32;
  fuzz.k = 32;
  fuzz.kind = InputKind::kSpecials;
  const FuzzInputs inputs = generate_inputs(fuzz);
  bool any_nonfinite = false;
  for (const float v : inputs.a.data()) {
    if (!std::isfinite(v)) any_nonfinite = true;
  }
  for (const float v : inputs.b.data()) {
    if (!std::isfinite(v)) any_nonfinite = true;
  }
  EXPECT_TRUE(any_nonfinite);
}

}  // namespace
}  // namespace egemm::verify
