// Regression-corpus replay (DESIGN.md §11): every descriptor under
// tests/corpus/ -- past fuzz failures and near-misses -- re-runs through the
// full differential harness on every build. EGEMM_CORPUS_DIR points at the
// source-tree corpus directory (set by tests/CMakeLists.txt).
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "gemm/plan.hpp"
#include "verify/differential.hpp"

namespace egemm::verify {
namespace {

std::vector<FuzzCase> load_corpus() {
  std::vector<FuzzCase> cases;
  const std::filesystem::path dir(EGEMM_CORPUS_DIR);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".txt") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (const std::optional<FuzzCase> fuzz = parse_case(line)) {
        cases.push_back(*fuzz);
      }
    }
  }
  return cases;
}

TEST(CorpusReplay, CorpusIsNonEmptyAndParses) {
  EXPECT_GE(load_corpus().size(), 10u);
}

TEST(CorpusReplay, CorpusCoversEveryLadderRung) {
  // The per-scheme adversarial block must keep at least one entry pinned
  // to every rung of the ladder.
  const std::vector<FuzzCase> corpus = load_corpus();
  std::vector<bool> seen(core::kSchemeCount, false);
  for (const FuzzCase& fuzz : corpus) {
    seen[static_cast<std::size_t>(fuzz.scheme)] = true;
  }
  for (const core::SchemeId rung : core::scheme_ladder()) {
    EXPECT_TRUE(seen[static_cast<std::size_t>(rung)])
        << core::scheme_name(rung);
  }
}

TEST(CorpusReplay, EveryEntryPassesTheDifferentialHarness) {
  const std::vector<FuzzCase> corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  for (const FuzzCase& fuzz : corpus) {
    const CaseResult result = run_case(fuzz);
    EXPECT_TRUE(result.engine_match) << format_case(fuzz);
    if (!result.special) {
      for (std::size_t p = 0; p < kPathCount; ++p) {
        EXPECT_EQ(result.paths[p].violations, 0u)
            << format_case(fuzz) << " path "
            << path_name(static_cast<Path>(p));
      }
    }
  }
}

TEST(CorpusReplay, EveryEntryPassesOnEveryLadderRung) {
  // Re-pin each corpus entry's engine differential to every rung in turn:
  // a past failure input must keep packed == reference bitwise no matter
  // which scheme executes it, not only under the rung it was filed for.
  const std::vector<FuzzCase> corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  gemm::GemmContext ctx;
  for (const FuzzCase& base : corpus) {
    for (const core::SchemeId rung : core::scheme_ladder()) {
      FuzzCase fuzz = base;
      fuzz.scheme = rung;
      const CaseResult result = run_case(fuzz, ctx);
      EXPECT_TRUE(result.engine_match) << format_case(fuzz);
    }
  }
}

}  // namespace
}  // namespace egemm::verify
