// Regression-corpus replay (DESIGN.md §11): every descriptor under
// tests/corpus/ -- past fuzz failures and near-misses -- re-runs through the
// full differential harness on every build. EGEMM_CORPUS_DIR points at the
// source-tree corpus directory (set by tests/CMakeLists.txt).
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "verify/differential.hpp"

namespace egemm::verify {
namespace {

std::vector<FuzzCase> load_corpus() {
  std::vector<FuzzCase> cases;
  const std::filesystem::path dir(EGEMM_CORPUS_DIR);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".txt") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (const std::optional<FuzzCase> fuzz = parse_case(line)) {
        cases.push_back(*fuzz);
      }
    }
  }
  return cases;
}

TEST(CorpusReplay, CorpusIsNonEmptyAndParses) {
  EXPECT_GE(load_corpus().size(), 10u);
}

TEST(CorpusReplay, EveryEntryPassesTheDifferentialHarness) {
  const std::vector<FuzzCase> corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  for (const FuzzCase& fuzz : corpus) {
    const CaseResult result = run_case(fuzz);
    EXPECT_TRUE(result.engine_match) << format_case(fuzz);
    if (!result.special) {
      for (std::size_t p = 0; p < kPathCount; ++p) {
        EXPECT_EQ(result.paths[p].violations, 0u)
            << format_case(fuzz) << " path "
            << path_name(static_cast<Path>(p));
      }
    }
  }
}

}  // namespace
}  // namespace egemm::verify
