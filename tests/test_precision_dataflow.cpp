// Precision-dataflow certification (EG5xx) tests: the abstract
// interpretation must derive the documented 21-bit profile from every
// feasible tiling's instruction stream, catch hand-built kernels that
// drop, mis-route, or mis-round split-product terms, and agree with the
// hand-written a-priori error model (DESIGN.md §14).

#include <gtest/gtest.h>

#include "model/analytic_model.hpp"
#include "model/solver.hpp"
#include "sass/analysis/passes.hpp"
#include "sass/analysis/precision.hpp"
#include "sass/assembler.hpp"
#include "sass/build.hpp"
#include "tcsim/gpu_spec.hpp"
#include "verify/error_model.hpp"

namespace {

using namespace egemm;
using namespace egemm::sass;
using analysis::Dataflow;
using analysis::DiagnosticEngine;
using analysis::PrecisionOptions;
using analysis::PrecisionProfile;
using analysis::run_precision_dataflow_pass;

bool has_any_eg5(const DiagnosticEngine& engine) {
  for (const analysis::Diagnostic& d : engine.diagnostics()) {
    if (d.code.rfind("EG5", 0) == 0) return true;
  }
  return false;
}

// -- hand-built kernel scaffolding -------------------------------------------
// A minimal tagged kernel: four plane loads feed one accumulator through a
// configurable set of HMMA terms, committed by an epilogue store. Register
// map: R0 a_hi, R1 a_lo, R2 b_hi, R3 b_lo, R4..R7 acc.

struct HandKernelSpec {
  std::vector<std::pair<int, int>> terms = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  Rounding rounding = Rounding::kRoundNearest;
  bool tagged = true;
  /// Route every B operand from the hi plane register regardless of the
  /// term's claimed B plane (the mis-route EG502 catches).
  bool misroute_b = false;
};

Kernel hand_kernel(const HandKernelSpec& spec) {
  Kernel kernel;
  kernel.name = "hand";
  kernel.loop_trips = 1;
  kernel.virtual_regs = 8;

  auto ldg = [&](int reg, bool is_a, int plane) {
    Instr instr;
    instr.op = Op::kLdg;
    instr.dst = RegRange{reg, 1};
    if (spec.tagged) {
      if (is_a) {
        instr.num.a_planes = static_cast<std::uint8_t>(1u << plane);
      } else {
        instr.num.b_planes = static_cast<std::uint8_t>(1u << plane);
      }
      instr.num.rounding = spec.rounding;
    }
    kernel.prologue.push_back(instr);
  };
  ldg(0, true, 0);
  ldg(1, true, 1);
  ldg(2, false, 0);
  ldg(3, false, 1);
  {
    Instr init;
    init.op = Op::kMov;
    init.dst = RegRange{4, 4};
    kernel.prologue.push_back(init);
  }
  for (const auto& [ta, tb] : spec.terms) {
    Instr hmma;
    hmma.op = Op::kHmma;
    hmma.dst = RegRange{4, 4};
    const RegRange a_src{ta == 0 ? 0 : 1, 1};
    const RegRange b_src{spec.misroute_b ? 2 : (tb == 0 ? 2 : 3), 1};
    hmma.srcs = {a_src, b_src, RegRange{4, 4}};
    if (spec.tagged) {
      hmma.num.term_a = static_cast<std::int8_t>(ta);
      hmma.num.term_b = static_cast<std::int8_t>(tb);
    }
    kernel.body.push_back(hmma);
  }
  {
    Instr stg;
    stg.op = Op::kStg;
    stg.srcs = {RegRange{4, 4}};
    kernel.epilogue.push_back(stg);
  }
  {
    Instr exit;
    exit.op = Op::kExit;
    kernel.epilogue.push_back(exit);
  }
  return kernel;
}

PrecisionProfile run_hand(const Kernel& kernel, const PrecisionOptions& options,
                          DiagnosticEngine& engine) {
  const Dataflow dataflow(kernel);
  return run_precision_dataflow_pass(kernel, dataflow, options, engine);
}

PrecisionOptions hand_options() {
  PrecisionOptions options;
  options.enabled = true;
  options.emulation_instructions = 4;
  return options;
}

// -- generated kernels: every feasible tiling certifies ----------------------

TEST(PrecisionDataflow, EveryFeasibleTilingDerivesDocumentedProfile) {
  const model::SolverResult solved =
      model::solve(model::budget_from_spec(tcsim::tesla_t4()));
  ASSERT_TRUE(solved.found);
  ASSERT_FALSE(solved.feasible.empty());
  for (const model::SolverCandidate& candidate : solved.feasible) {
    BuildOptions options;
    options.tile = candidate.config;
    options.k_iterations = 8;
    const BuiltKernel built = build_egemm_kernel(options);

    SCOPED_TRACE(candidate.config.describe());
    ASSERT_TRUE(built.precision.derived);
    EXPECT_GE(built.precision.operation_bits, 21);
    EXPECT_EQ(built.precision.planes, 2);
    EXPECT_EQ(built.precision.rounding, Rounding::kRoundNearest);
    EXPECT_EQ(built.precision.term_mask, 0xFu);
    EXPECT_FALSE(built.diagnostics.has_code("EG501"));
    EXPECT_FALSE(built.diagnostics.has_code("EG502"));
    EXPECT_FALSE(built.diagnostics.has_code("EG503"));
    EXPECT_FALSE(built.diagnostics.has_code("EG510"));

    // The hand-written a-priori bound must dominate the statically
    // derived bound for a representative element context.
    verify::BoundInputs in;
    in.k = 256;
    in.a_scale = 1.0;
    in.b_scale = 1.0;
    const verify::StaticCrossCheck check =
        verify::cross_check_static_profile(built.precision, in);
    ASSERT_TRUE(check.checked);
    EXPECT_TRUE(check.dominates);
    EXPECT_GT(check.derived_worst_abs, 0.0);
    EXPECT_GE(check.hand_worst_abs, check.derived_worst_abs);
  }
}

TEST(PrecisionDataflow, EachEmulationSchemeDerivesItsBits) {
  struct Case {
    int emu;
    int bits;
    int planes;
    Rounding rounding;
  };
  for (const Case& c :
       {Case{1, 10, 1, Rounding::kHalfDirect},
        Case{4, 21, 2, Rounding::kRoundNearest},
        Case{9, 24, 3, Rounding::kRoundNearest},
        Case{16, 21, 2, Rounding::kRoundNearest}}) {
    BuildOptions options;
    options.k_iterations = 8;
    options.emulation_instructions = c.emu;
    const BuiltKernel built = build_egemm_kernel(options);
    SCOPED_TRACE(c.emu);
    ASSERT_TRUE(built.precision.derived);
    EXPECT_EQ(built.precision.operation_bits, c.bits);
    EXPECT_EQ(built.precision.planes, c.planes);
    EXPECT_EQ(built.precision.rounding, c.rounding);
    EXPECT_FALSE(has_any_eg5(built.diagnostics));
    EXPECT_EQ(static_cast<int>(built.precision.terms.size()),
              c.planes * c.planes);
  }
}

TEST(PrecisionDataflow, TruncateSplitLosesOneBitAndWarns) {
  BuildOptions options;
  options.k_iterations = 8;
  options.split = core::SplitMethod::kTruncateSplit;
  const BuiltKernel built = build_egemm_kernel(options);
  ASSERT_TRUE(built.precision.derived);
  EXPECT_EQ(built.precision.operation_bits, 20);
  EXPECT_EQ(built.precision.split, core::SplitMethod::kTruncateSplit);
  EXPECT_EQ(built.precision.rounding, Rounding::kTruncate);
  // One bit below the 21-bit profile: warning, not error -- and the
  // rounding matches the configuration, so no EG503.
  EXPECT_TRUE(built.diagnostics.has_code("EG501"));
  EXPECT_FALSE(built.diagnostics.has_code("EG502"));
  EXPECT_FALSE(built.diagnostics.has_code("EG503"));
  EXPECT_FALSE(built.diagnostics.has_code("EG510"));
}

TEST(PrecisionDataflow, KernelCoversTheTilingReduction) {
  BuildOptions options;
  options.k_iterations = 8;
  const BuiltKernel built = build_egemm_kernel(options);
  ASSERT_TRUE(built.precision.derived);
  for (const analysis::TermInfo& term : built.precision.terms) {
    EXPECT_EQ(term.k_lanes_per_trip,
              static_cast<std::uint64_t>(options.tile.bk));
  }
  EXPECT_EQ(built.precision.k_per_term,
            static_cast<std::uint64_t>(options.tile.bk) *
                built.kernel.loop_trips);
}

// -- hand-built kernels: the defect detectors --------------------------------

TEST(PrecisionDataflow, CleanHandKernelCertifies) {
  DiagnosticEngine engine;
  const PrecisionProfile profile =
      run_hand(hand_kernel({}), hand_options(), engine);
  ASSERT_TRUE(profile.derived);
  EXPECT_EQ(profile.operation_bits, 21);
  EXPECT_EQ(profile.term_mask, 0xFu);
  EXPECT_TRUE(profile.term_computed(1, 1));
  EXPECT_FALSE(has_any_eg5(engine));
}

TEST(PrecisionDataflow, DroppedLoLoTermTriggersEG502) {
  HandKernelSpec spec;
  spec.terms = {{0, 0}, {0, 1}, {1, 0}};  // Markidis: no Alo x Blo
  DiagnosticEngine engine;
  const PrecisionProfile profile =
      run_hand(hand_kernel(spec), hand_options(), engine);
  ASSERT_TRUE(profile.derived);
  EXPECT_TRUE(engine.has_code("EG502"));
  EXPECT_FALSE(profile.term_computed(1, 1));
  EXPECT_EQ(profile.term_mask, 0x7u);
  // A dropped term is a blocking correctness error, like EG1xx/EG2xx.
  EXPECT_TRUE(has_blocking_errors(engine));
}

TEST(PrecisionDataflow, MisroutedTermTriggersEG502) {
  HandKernelSpec spec;
  spec.misroute_b = true;  // every HMMA consumes Bhi, whatever it claims
  DiagnosticEngine engine;
  run_hand(hand_kernel(spec), hand_options(), engine);
  EXPECT_TRUE(engine.has_code("EG502"));
}

TEST(PrecisionDataflow, RoundingMismatchTriggersEG503) {
  HandKernelSpec spec;
  spec.rounding = Rounding::kTruncate;  // planes are RZ16...
  PrecisionOptions options = hand_options();
  options.split = core::SplitMethod::kRoundSplit;  // ...config says RN16
  DiagnosticEngine engine;
  const PrecisionProfile profile =
      run_hand(hand_kernel(spec), options, engine);
  EXPECT_TRUE(engine.has_code("EG503"));
  // The derivation reports what the kernel actually does: 20 bits.
  ASSERT_TRUE(profile.derived);
  EXPECT_EQ(profile.operation_bits, 20);
  EXPECT_TRUE(engine.has_code("EG501"));
}

TEST(PrecisionDataflow, HandModelDisagreementTriggersEG510) {
  // An "unsound" hand constant: smaller than the derived residual.
  {
    PrecisionOptions options = hand_options();
    options.hand_residual_rel = 0x1.0p-30;
    DiagnosticEngine engine;
    run_hand(hand_kernel({}), options, engine);
    EXPECT_TRUE(engine.has_code("EG510"));
  }
  // A uselessly loose one: more than 2x the derived residual.
  {
    PrecisionOptions options = hand_options();
    options.hand_residual_rel = 0x1.0p-18;
    DiagnosticEngine engine;
    run_hand(hand_kernel({}), options, engine);
    EXPECT_TRUE(engine.has_code("EG510"));
  }
  // The real core::split_* constants agree (the default path).
  {
    DiagnosticEngine engine;
    run_hand(hand_kernel({}), hand_options(), engine);
    EXPECT_FALSE(engine.has_code("EG510"));
  }
}

TEST(PrecisionDataflow, UntaggedKernelYieldsNoProfileAndNoDiagnostics) {
  HandKernelSpec spec;
  spec.tagged = false;
  DiagnosticEngine engine;
  const PrecisionProfile profile =
      run_hand(hand_kernel(spec), hand_options(), engine);
  EXPECT_FALSE(profile.derived);
  EXPECT_TRUE(engine.diagnostics().empty());
}

// -- integration: run_all_passes, assembler round-trip, error model ----------

TEST(PrecisionDataflow, RunAllPassesIntegrationFillsProfile) {
  analysis::AnalysisOptions options;
  options.precision = hand_options();
  PrecisionProfile profile;
  options.precision_profile = &profile;
  DiagnosticEngine engine;
  analysis::run_all_passes(hand_kernel({}), options, engine);
  EXPECT_TRUE(profile.derived);
  EXPECT_EQ(profile.operation_bits, 21);

  // With physical registers the pass is skipped: register reuse would
  // merge unrelated def-use chains and fake conflicts.
  analysis::AnalysisOptions physical = options;
  PrecisionProfile skipped;
  physical.precision_profile = &skipped;
  physical.physical_registers = true;
  DiagnosticEngine engine2;
  analysis::run_all_passes(hand_kernel({}), physical, engine2);
  EXPECT_FALSE(skipped.derived);
}

TEST(PrecisionDataflow, NumericTagsSurviveAssemblerRoundTrip) {
  BuildOptions options;
  options.k_iterations = 8;
  options.allocate = false;  // keep operands virtual for the re-derivation
  const BuiltKernel built = build_egemm_kernel(options);
  ASSERT_TRUE(built.precision.derived);

  const ParseResult reparsed = parse_text(emit_text(built.kernel));
  ASSERT_TRUE(reparsed.success) << reparsed.error;
  auto check_section = [](const std::vector<Instr>& before,
                          const std::vector<Instr>& after) {
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i].num, after[i].num) << "instr " << i;
    }
  };
  check_section(built.kernel.prologue, reparsed.kernel.prologue);
  check_section(built.kernel.body, reparsed.kernel.body);
  check_section(built.kernel.epilogue, reparsed.kernel.epilogue);

  // The re-parsed kernel derives the identical profile.
  PrecisionOptions popts;
  popts.enabled = true;
  popts.emulation_instructions = options.emulation_instructions;
  DiagnosticEngine engine;
  const Dataflow dataflow(reparsed.kernel);
  const PrecisionProfile reprofile =
      run_precision_dataflow_pass(reparsed.kernel, dataflow, popts, engine);
  ASSERT_TRUE(reprofile.derived);
  EXPECT_EQ(reprofile.render_json(), built.precision.render_json());
}

TEST(PrecisionDataflow, StaticBoundStraddlesTheFig4Gap) {
  // The round-split and truncate-split kernels differ by exactly the
  // paper's Fig. 4 gap: the statically derived worst-case bound of the
  // round kernel must sit strictly below the truncate kernel's.
  BuildOptions round;
  round.k_iterations = 8;
  BuildOptions truncate = round;
  truncate.split = core::SplitMethod::kTruncateSplit;
  const BuiltKernel round_built = build_egemm_kernel(round);
  const BuiltKernel trunc_built = build_egemm_kernel(truncate);
  ASSERT_TRUE(round_built.precision.derived);
  ASSERT_TRUE(trunc_built.precision.derived);

  verify::BoundInputs in;
  in.k = 256;
  in.a_scale = 1.0;
  in.b_scale = 1.0;
  const double round_bound =
      verify::static_profile_bound(round_built.precision, in).worst_abs;
  const double trunc_bound =
      verify::static_profile_bound(trunc_built.precision, in).worst_abs;
  EXPECT_GT(round_bound, 0.0);
  EXPECT_LT(round_bound, trunc_bound);

  // And both hand-model projections dominate their derived bounds.
  EXPECT_TRUE(
      verify::cross_check_static_profile(round_built.precision, in).dominates);
  EXPECT_TRUE(
      verify::cross_check_static_profile(trunc_built.precision, in).dominates);
}

TEST(PrecisionDataflow, FromStaticProfileMapsTermsOntoThePath) {
  BuildOptions options;
  options.k_iterations = 8;
  const BuiltKernel built = build_egemm_kernel(options);
  const verify::PathProfile path =
      verify::from_static_profile(built.precision);
  EXPECT_EQ(path.split, core::SplitMethod::kRoundSplit);
  EXPECT_FALSE(path.half_only);
  EXPECT_TRUE(path.term(0, 0));  // hi x hi
  EXPECT_TRUE(path.term(0, 1));  // hi x lo
  EXPECT_TRUE(path.term(1, 0));  // lo x hi
  EXPECT_TRUE(path.term(1, 1));  // lo x lo
  EXPECT_EQ(core::classify_scheme(path), core::SchemeId::kRound2);

  BuildOptions half = options;
  half.emulation_instructions = 1;
  const verify::PathProfile half_path =
      verify::from_static_profile(build_egemm_kernel(half).precision);
  EXPECT_TRUE(half_path.half_only);
}

TEST(PrecisionDataflow, DerivedConstantsMatchTheConventions) {
  EXPECT_DOUBLE_EQ(
      analysis::derived_residual_rel(Rounding::kRoundNearest, 2), 0x1.0p-22);
  EXPECT_DOUBLE_EQ(analysis::derived_residual_rel(Rounding::kTruncate, 2),
                   0x1.0p-21);
  EXPECT_DOUBLE_EQ(analysis::derived_residual_rel(Rounding::kHalfDirect, 1),
                   0x1.0p-11);
  EXPECT_EQ(analysis::effective_bits(0x1.0p-22), 21);
  EXPECT_EQ(analysis::effective_bits(0x1.0p-21), 20);
  EXPECT_EQ(analysis::effective_bits(0x1.0p-11), 10);
  EXPECT_EQ(analysis::effective_bits(0x1.0p-33), 24);  // binary32 ceiling
  EXPECT_EQ(analysis::documented_operation_bits(1), 10);
  EXPECT_EQ(analysis::documented_operation_bits(4), 21);
  EXPECT_EQ(analysis::documented_operation_bits(9), 24);
  EXPECT_EQ(analysis::documented_operation_bits(16), 21);
}

}  // namespace
