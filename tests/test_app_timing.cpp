// Tests for the application timing composition (apps/app_timing.hpp).
#include "apps/app_timing.hpp"

#include <gtest/gtest.h>

namespace egemm::apps {
namespace {

const tcsim::GpuSpec& t4() {
  static const tcsim::GpuSpec spec = tcsim::tesla_t4();
  return spec;
}

TEST(AppTiming, KnnGemmFractionNearPaperFigure) {
  // §1: GEMM takes ~85% of the open-source kNN's time. The model should
  // land in that neighborhood with the cuBLAS-CUDA-FP32 backend.
  KnnWorkload workload;
  workload.references = workload.queries = 8192;
  const AppTiming timing =
      knn_timing(workload, gemm::Backend::kCublasFp32, t4());
  EXPECT_GT(timing.gemm_fraction, 0.65);
  EXPECT_LT(timing.gemm_fraction, 0.95);
}

TEST(AppTiming, KMeansGemmFractionNearPaperFigure) {
  // §1: ~67% for kMeans.
  KMeansWorkload workload;
  workload.points = 8192;
  workload.dim = 256;
  workload.clusters = 128;
  const AppTiming timing =
      kmeans_timing(workload, gemm::Backend::kCublasFp32, t4());
  EXPECT_GT(timing.gemm_fraction, 0.5);
  EXPECT_LT(timing.gemm_fraction, 0.85);
}

TEST(AppTiming, EgemmAcceleratesBothApps) {
  KnnWorkload knn;
  knn.references = knn.queries = 8192;
  const double knn_speedup =
      knn_timing(knn, gemm::Backend::kCublasFp32, t4()).total_seconds /
      knn_timing(knn, gemm::Backend::kEgemmTC, t4()).total_seconds;
  EXPECT_GT(knn_speedup, 1.3);
  EXPECT_LT(knn_speedup, 2.6);  // Fig. 12b band

  KMeansWorkload km;
  km.points = 8192;
  km.dim = 256;
  km.clusters = 128;
  const double km_speedup =
      kmeans_timing(km, gemm::Backend::kCublasFp32, t4()).total_seconds /
      kmeans_timing(km, gemm::Backend::kEgemmTC, t4()).total_seconds;
  EXPECT_GT(km_speedup, 1.2);
  EXPECT_LT(km_speedup, 2.2);  // Fig. 12a band
}

TEST(AppTiming, SpeedupGrowsWithDataSize) {
  // Fig. 12: larger point counts amortize the fixed overheads.
  KMeansWorkload small, large;
  small.points = 2048;
  large.points = 16384;
  small.dim = large.dim = 256;
  small.clusters = large.clusters = 128;
  auto speedup = [&](const KMeansWorkload& w) {
    return kmeans_timing(w, gemm::Backend::kCublasFp32, t4()).total_seconds /
           kmeans_timing(w, gemm::Backend::kEgemmTC, t4()).total_seconds;
  };
  EXPECT_GT(speedup(large), speedup(small));
}

TEST(AppTiming, ComponentsAddUp) {
  KnnWorkload workload;
  const AppTiming timing =
      knn_timing(workload, gemm::Backend::kEgemmTC, t4());
  EXPECT_NEAR(timing.total_seconds,
              timing.gemm_seconds + timing.other_seconds, 1e-12);
  EXPECT_GT(timing.gemm_seconds, 0.0);
  EXPECT_GT(timing.other_seconds, 0.0);
}

TEST(AppTiming, KMeansSplitAmortizationHelps) {
  // The one-time point split must cost less than re-splitting every
  // iteration: EGEMM's kMeans GEMM time is below iterations x standalone.
  KMeansWorkload workload;
  workload.points = 8192;
  workload.dim = 256;
  workload.clusters = 128;
  const AppTiming timing =
      kmeans_timing(workload, gemm::Backend::kEgemmTC, t4());
  const gemm::KernelTiming standalone = gemm::time_gemm(
      gemm::Backend::kEgemmTC, workload.points,
      static_cast<std::uint64_t>(workload.clusters), workload.dim, t4());
  EXPECT_LT(timing.gemm_seconds,
            standalone.seconds * workload.iterations);
}

TEST(AppTiming, NonGemmPhasesAreBackendIndependent) {
  KnnWorkload workload;
  const AppTiming a = knn_timing(workload, gemm::Backend::kEgemmTC, t4());
  const AppTiming b = knn_timing(workload, gemm::Backend::kCublasFp32, t4());
  EXPECT_DOUBLE_EQ(a.other_seconds, b.other_seconds);
}

}  // namespace
}  // namespace egemm::apps
