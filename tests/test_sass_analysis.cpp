// Tests for the SASS static-analysis framework (sass/analysis/): the
// dataflow engine, every lint pass's broken-kernel trigger, the diagnostic
// engine, and the acceptance property that the default EGEMM build lints
// clean of errors.
#include "sass/analysis/passes.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sass/analysis/dataflow.hpp"
#include "sass/build.hpp"
#include "sass/codegen.hpp"
#include "sass/schedule.hpp"
#include "sass/verifier.hpp"

namespace egemm::sass::analysis {
namespace {

Instr make(Op op, RegRange dst, std::vector<RegRange> srcs = {}) {
  Instr instr;
  instr.op = op;
  instr.dst = dst;
  instr.srcs = std::move(srcs);
  return instr;
}

BuiltKernel default_build() {
  BuildOptions options;
  options.k_iterations = 8;
  return build_egemm_kernel(options);
}

// -- acceptance: the shipped kernel is clean -------------------------------

TEST(SassAnalysis, DefaultKernelLintsWithZeroErrors) {
  const BuiltKernel built = default_build();
  ASSERT_TRUE(built.alloc.success);
  EXPECT_GT(built.schedule.hoisted_lds, 0u);
  EXPECT_EQ(built.diagnostics.errors(), 0u)
      << built.diagnostics.render_text();
  EXPECT_FALSE(has_blocking_errors(built.diagnostics))
      << built.diagnostics.render_text();
}

TEST(SassAnalysis, DefaultKernelKnownFindings) {
  const BuiltKernel built = default_build();
  // The one expected warning: codegen's sixth context MOV is never read.
  EXPECT_TRUE(built.diagnostics.has_code("EG202"));
  // Barrier lifetime is clean -- in particular the loop-carried waits
  // (arm rides the back edge, first trip finds nothing pending) must NOT
  // be called redundant.
  EXPECT_FALSE(built.diagnostics.has_code("EG110"));
  EXPECT_FALSE(built.diagnostics.has_code("EG111"));
  EXPECT_FALSE(built.diagnostics.has_code("EG112"));
  // The padded shared layout and the accumulator-exempt register-bank rule
  // keep the bank passes quiet.
  EXPECT_FALSE(built.diagnostics.has_code("EG301"));
  EXPECT_FALSE(built.diagnostics.has_code("EG302"));
  EXPECT_FALSE(built.diagnostics.has_code("EG310"));
}

// -- dataflow engine -------------------------------------------------------

TEST(SassDataflow, LivenessCrossesTheLoopBackEdge) {
  Kernel kernel;
  kernel.prologue.push_back(make(Op::kMov, RegRange{0, 1}));
  kernel.body.push_back(
      make(Op::kIadd, RegRange{1, 1}, {RegRange{0, 1}}));  // reads R0
  kernel.body.push_back(
      make(Op::kIadd, RegRange{0, 1}, {RegRange{1, 1}}));  // rewrites R0
  kernel.epilogue.push_back(make(Op::kStg, RegRange{}, {RegRange{1, 1}}));
  const Dataflow dataflow(kernel);

  // R0 written by the last body instruction is consumed by the next trip's
  // first instruction: live across the back edge.
  EXPECT_TRUE(dataflow.live_out(2, 0));
  // The read of R0 at body[0] may see the prologue MOV or the previous
  // trip's IADD -- both definitions reach around the loop.
  EXPECT_EQ(dataflow.defs_of_use(1).size(), 2u);
  // The prologue MOV is definitely initialized everywhere downstream.
  EXPECT_TRUE(dataflow.definitely_initialized(1, 0));
  EXPECT_GE(dataflow.peak_live(), 1);
}

TEST(SassDataflow, MustInitializationRejectsUnwrittenRegisters) {
  Kernel kernel;
  kernel.body.push_back(
      make(Op::kIadd, RegRange{0, 1}, {RegRange{5, 1}}));  // R5 never written
  const Dataflow dataflow(kernel);
  EXPECT_FALSE(dataflow.definitely_initialized(0, 5));
  EXPECT_TRUE(dataflow.defs_of_use(0).empty());
}

// -- scoreboard pass (EG101-EG105) ----------------------------------------

AnalysisOptions trace_options(int unroll = 3) {
  AnalysisOptions options;
  options.unroll = unroll;
  return options;
}

TEST(SassAnalysis, MissingHmmaWaitIsEG101) {
  Kernel kernel = generate_egemm_kernel(CodegenParams{});
  bool mutated = false;
  for (Instr& instr : kernel.body) {
    if (instr.op == Op::kHmma && instr.ctrl.wait_mask != 0) {
      instr.ctrl.wait_mask = 0;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  DiagnosticEngine engine;
  run_scoreboard_pass(kernel, trace_options(), engine);
  EXPECT_TRUE(engine.has_code("EG101")) << engine.render_text();
}

TEST(SassAnalysis, UnguardedInFlightReadIsEG102) {
  Kernel kernel;
  kernel.body.push_back(make(Op::kLds, RegRange{0, 4}, {RegRange{8, 1}}));
  kernel.body.push_back(
      make(Op::kFfma, RegRange{4, 1}, {RegRange{0, 1}}));  // no barrier at all
  DiagnosticEngine engine;
  run_scoreboard_pass(kernel, trace_options(1), engine);
  EXPECT_TRUE(engine.has_code("EG102")) << engine.render_text();
}

TEST(SassAnalysis, CrossIterationWarNeedsUnrollTwoPlus) {
  // The ISSUE's edge case: strip the WAR wait from the scheduled kernel's
  // first body LDS group (the buffer-0 prime). Trip 0 is clean -- nothing
  // guards the buffer yet -- so walking one trip misses the hazard; from
  // trip 1 on, the previous trip's HMMA read guard is pending and the
  // overwrite is a WAR violation.
  Kernel kernel = generate_egemm_kernel(CodegenParams{});
  schedule_latency_hiding(kernel);
  bool mutated = false;
  for (Instr& instr : kernel.body) {
    if (instr.op == Op::kLds) {
      ASSERT_NE(instr.ctrl.wait_mask, 0);
      instr.ctrl.wait_mask = 0;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);

  DiagnosticEngine one_trip;
  run_scoreboard_pass(kernel, trace_options(1), one_trip);
  EXPECT_FALSE(one_trip.has_code("EG103")) << one_trip.render_text();

  DiagnosticEngine three_trips;
  run_scoreboard_pass(kernel, trace_options(3), three_trips);
  ASSERT_TRUE(three_trips.has_code("EG103")) << three_trips.render_text();
  for (const Diagnostic& d : three_trips.diagnostics()) {
    if (d.code == "EG103") {
      EXPECT_GE(d.loc.trip, 1);
    }
  }
}

TEST(SassAnalysis, OverwritingInFlightLoadIsEG104) {
  Kernel kernel;
  Instr ldg = make(Op::kLdg, RegRange{0, 4}, {RegRange{8, 1}});
  ldg.ctrl.write_barrier = 0;
  kernel.body.push_back(ldg);
  kernel.body.push_back(make(Op::kIadd, RegRange{0, 1}, {RegRange{8, 1}}));
  DiagnosticEngine engine;
  run_scoreboard_pass(kernel, trace_options(1), engine);
  EXPECT_TRUE(engine.has_code("EG104")) << engine.render_text();
}

TEST(SassAnalysis, GuardedBarrierReuseIsEG105) {
  // The ISSUE's edge case: re-arming a barrier whose registers are still
  // guarded (no intervening wait).
  Kernel kernel;
  Instr ldg = make(Op::kLdg, RegRange{0, 4}, {RegRange{8, 1}});
  ldg.ctrl.write_barrier = 0;
  kernel.body.push_back(ldg);
  Instr ldg2 = make(Op::kLdg, RegRange{4, 4}, {RegRange{8, 1}});
  ldg2.ctrl.write_barrier = 0;
  kernel.body.push_back(ldg2);
  DiagnosticEngine engine;
  run_scoreboard_pass(kernel, trace_options(1), engine);
  EXPECT_TRUE(engine.has_code("EG105")) << engine.render_text();
}

// -- barrier lifetime (EG110-EG112) ---------------------------------------

TEST(SassAnalysis, ArmedButNeverWaitedIsEG110) {
  Kernel kernel;
  Instr ldg = make(Op::kLdg, RegRange{0, 4}, {RegRange{8, 1}});
  ldg.ctrl.write_barrier = 2;
  kernel.body.push_back(ldg);
  DiagnosticEngine engine;
  run_barrier_lifetime_pass(kernel, trace_options(), engine);
  EXPECT_TRUE(engine.has_code("EG110")) << engine.render_text();
}

TEST(SassAnalysis, WaitOnNeverArmedBarrierIsEG111) {
  Kernel kernel;
  Instr iadd = make(Op::kIadd, RegRange{0, 1}, {RegRange{0, 1}});
  iadd.ctrl.wait_mask = 1u << 3;
  kernel.body.push_back(iadd);
  DiagnosticEngine engine;
  run_barrier_lifetime_pass(kernel, trace_options(), engine);
  EXPECT_TRUE(engine.has_code("EG111")) << engine.render_text();
  EXPECT_EQ(engine.errors(), 1u);
}

TEST(SassAnalysis, WaitRedundantInEveryTripIsEG112) {
  Kernel kernel;
  Instr ldg = make(Op::kLdg, RegRange{0, 4}, {RegRange{8, 1}});
  ldg.ctrl.write_barrier = 0;
  Instr wait_once = make(Op::kIadd, RegRange{4, 1}, {RegRange{4, 1}});
  wait_once.ctrl.wait_mask = 1u << 0;
  Instr wait_again = wait_once;
  kernel.body.push_back(ldg);
  kernel.body.push_back(wait_once);   // clears barrier 0
  kernel.body.push_back(wait_again);  // never finds it pending
  DiagnosticEngine engine;
  run_barrier_lifetime_pass(kernel, trace_options(), engine);
  ASSERT_TRUE(engine.has_code("EG112")) << engine.render_text();
  // Only the second wait site is redundant; and it is a note, not an error.
  EXPECT_EQ(engine.errors(), 0u);
  for (const Diagnostic& d : engine.diagnostics()) {
    if (d.code == "EG112") {
      EXPECT_EQ(d.loc.index, 2u);
    }
  }
}

// -- liveness passes (EG201-EG203) ----------------------------------------

TEST(SassAnalysis, UninitializedHmmaSourceIsEG201) {
  // The ISSUE's edge case: an HMMA consuming fragment registers no load
  // ever wrote.
  Kernel kernel;
  kernel.prologue.push_back(make(Op::kMov, RegRange{0, 4}));  // acc only
  kernel.body.push_back(make(
      Op::kHmma, RegRange{0, 4},
      {RegRange{4, 4}, RegRange{8, 4}, RegRange{0, 4}}));  // A/B unwritten
  const Dataflow dataflow(kernel);
  DiagnosticEngine engine;
  run_uninitialized_read_pass(kernel, dataflow, engine);
  ASSERT_TRUE(engine.has_code("EG201")) << engine.render_text();
  EXPECT_GT(engine.errors(), 0u);
}

TEST(SassAnalysis, DeadRegisterWriteIsEG202) {
  Kernel kernel;
  kernel.prologue.push_back(make(Op::kMov, RegRange{0, 1}));
  kernel.prologue.push_back(make(Op::kMov, RegRange{1, 1}));
  kernel.epilogue.push_back(make(Op::kStg, RegRange{}, {RegRange{0, 1}}));
  const Dataflow dataflow(kernel);
  DiagnosticEngine engine;
  run_dead_code_pass(kernel, dataflow, trace_options(), engine);
  ASSERT_TRUE(engine.has_code("EG202")) << engine.render_text();
  for (const Diagnostic& d : engine.diagnostics()) {
    EXPECT_EQ(d.loc.index, 1u);  // only the unread MOV
  }
}

TEST(SassAnalysis, DeadSharedStoreIsEG203) {
  // The ISSUE's edge case: an STS whose data no LDS ever consumes. The
  // body STS is live (it feeds the next trip's fragment loads around the
  // back edge); the epilogue STS is past every LDS in the trace -- dead.
  Kernel kernel;
  kernel.prologue.push_back(make(Op::kMov, RegRange{0, 4}));
  kernel.prologue.push_back(make(Op::kMov, RegRange{8, 1}));
  kernel.body.push_back(
      make(Op::kLds, RegRange{4, 4}, {RegRange{8, 1}}));
  kernel.body.push_back(
      make(Op::kSts, RegRange{}, {RegRange{8, 1}, RegRange{0, 4}}));
  kernel.epilogue.push_back(
      make(Op::kSts, RegRange{}, {RegRange{8, 1}, RegRange{4, 4}}));
  const Dataflow dataflow(kernel);
  DiagnosticEngine engine;
  run_dead_code_pass(kernel, dataflow, trace_options(), engine);
  ASSERT_TRUE(engine.has_code("EG203")) << engine.render_text();
  for (const Diagnostic& d : engine.diagnostics()) {
    if (d.code == "EG203") {
      EXPECT_EQ(d.loc.section, Section::kEpilogue);
    }
  }
}

// -- bank conflicts (EG301/EG302/EG310) -----------------------------------

TEST(SassAnalysis, UnpaddedSharedPitchIsEG301) {
  Kernel kernel = generate_egemm_kernel(CodegenParams{});
  AnalysisOptions options = trace_options();
  options.tile = gemm::table4_config();
  options.has_tile = true;
  options.shared_pitch_halves = options.tile.bk;  // power-of-two pitch
  DiagnosticEngine engine;
  run_bank_conflict_pass(kernel, options, engine);
  EXPECT_TRUE(engine.has_code("EG301")) << engine.render_text();
  EXPECT_EQ(engine.errors(), 0u);  // bank findings are warnings
}

TEST(SassAnalysis, PaddedSharedPitchIsCleanOfEG301) {
  Kernel kernel = generate_egemm_kernel(CodegenParams{});
  AnalysisOptions options = trace_options();
  options.tile = gemm::table4_config();
  options.has_tile = true;  // default pitch bk + 4
  DiagnosticEngine engine;
  run_bank_conflict_pass(kernel, options, engine);
  EXPECT_FALSE(engine.has_code("EG301")) << engine.render_text();
  EXPECT_FALSE(engine.has_code("EG302")) << engine.render_text();
}

TEST(SassAnalysis, ConflictingStagingPitchIsEG302) {
  Kernel kernel = generate_egemm_kernel(CodegenParams{});
  AnalysisOptions options = trace_options();
  options.tile = gemm::table4_config();
  options.has_tile = true;
  // A 64-half (32-word) pitch folds successive lane rows onto the same
  // banks during the 128-bit staging stores.
  options.shared_pitch_halves = 64;
  DiagnosticEngine engine;
  run_bank_conflict_pass(kernel, options, engine);
  EXPECT_TRUE(engine.has_code("EG302")) << engine.render_text();
}

TEST(SassAnalysis, ThreeSameBankSourcesAreEG310) {
  Kernel kernel;
  kernel.prologue.push_back(make(Op::kMov, RegRange{0, 1}));
  kernel.prologue.push_back(make(Op::kMov, RegRange{2, 1}));
  kernel.prologue.push_back(make(Op::kMov, RegRange{4, 1}));
  kernel.body.push_back(
      make(Op::kFfma, RegRange{7, 1},
           {RegRange{0, 1}, RegRange{2, 1}, RegRange{4, 1}}));  // bank 0 x3
  AnalysisOptions options = trace_options();
  options.physical_registers = true;
  DiagnosticEngine engine;
  run_bank_conflict_pass(kernel, options, engine);
  EXPECT_TRUE(engine.has_code("EG310")) << engine.render_text();

  // Without the physical-register claim the pass stays silent: virtual
  // indexes carry no bank assignment.
  AnalysisOptions virtual_options = trace_options();
  DiagnosticEngine virtual_engine;
  run_bank_conflict_pass(kernel, virtual_options, virtual_engine);
  EXPECT_FALSE(virtual_engine.has_code("EG310"));
}

// -- register pressure (EG401-EG403) --------------------------------------

TEST(SassAnalysis, NearBudgetAllocationIsEG401) {
  BuiltKernel built = default_build();
  ASSERT_TRUE(built.alloc.success);
  const Dataflow dataflow(built.kernel);
  AnalysisOptions options = trace_options();
  options.alloc = &built.alloc;
  options.register_budget = built.alloc.physical_registers;  // exactly fits
  DiagnosticEngine engine;
  run_register_pressure_pass(built.kernel, dataflow, options, engine);
  EXPECT_TRUE(engine.has_code("EG401")) << engine.render_text();
  EXPECT_FALSE(engine.has_code("EG402"));
}

TEST(SassAnalysis, OverBudgetAllocationIsEG402) {
  BuiltKernel built = default_build();
  ASSERT_TRUE(built.alloc.success);
  const Dataflow dataflow(built.kernel);
  AnalysisOptions options = trace_options();
  options.alloc = &built.alloc;
  options.register_budget = built.alloc.physical_registers - 1;
  DiagnosticEngine engine;
  run_register_pressure_pass(built.kernel, dataflow, options, engine);
  EXPECT_TRUE(engine.has_code("EG402")) << engine.render_text();
  EXPECT_GT(engine.errors(), 0u);
}

TEST(SassAnalysis, ModelDivergenceIsEG403) {
  // A trivial kernel claiming to implement the Table 4 tiling: its
  // register demand sits far below the model's estimate.
  Kernel kernel;
  kernel.prologue.push_back(make(Op::kMov, RegRange{0, 1}));
  kernel.body.push_back(make(Op::kIadd, RegRange{0, 1}, {RegRange{0, 1}}));
  const Dataflow dataflow(kernel);
  AnalysisOptions options = trace_options();
  options.tile = gemm::table4_config();
  options.has_tile = true;
  DiagnosticEngine engine;
  run_register_pressure_pass(kernel, dataflow, options, engine);
  EXPECT_TRUE(engine.has_code("EG403")) << engine.render_text();
}

// -- blocking-error classification ----------------------------------------

TEST(SassAnalysis, OnlyHazardAndLivenessErrorsBlock) {
  DiagnosticEngine resource_only;
  resource_only.report("EG402", Severity::kError, SourceLoc{}, "over budget");
  EXPECT_FALSE(has_blocking_errors(resource_only));

  DiagnosticEngine hazard;
  hazard.report("EG101", Severity::kError, SourceLoc{}, "raw");
  EXPECT_TRUE(has_blocking_errors(hazard));

  DiagnosticEngine warning_only;
  warning_only.report("EG202", Severity::kWarning, SourceLoc{}, "dead");
  EXPECT_FALSE(has_blocking_errors(warning_only));
}

// -- diagnostics engine ----------------------------------------------------

TEST(SassDiagnostics, PerCodeCapSuppresses) {
  DiagnosticEngine engine(2);
  for (int i = 0; i < 5; ++i) {
    engine.report("EG101", Severity::kError, SourceLoc{}, "x");
  }
  engine.report("EG202", Severity::kWarning, SourceLoc{}, "y");
  EXPECT_EQ(engine.diagnostics().size(), 3u);
  EXPECT_EQ(engine.suppressed(), 3u);
  EXPECT_EQ(engine.errors(), 2u);
  EXPECT_NE(engine.render_text().find("suppressed"), std::string::npos);
}

TEST(SassDiagnostics, JsonRendererEscapes) {
  DiagnosticEngine engine;
  engine.report("EG101", Severity::kError,
                SourceLoc{Section::kBody, 7, 2}, "says \"quoted\"");
  const std::string json = engine.render_json();
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"section\":\"body\""), std::string::npos);
  EXPECT_NE(json.find("\"index\":7"), std::string::npos);
  EXPECT_NE(json.find("\"trip\":2"), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(SassDiagnostics, SourceLocTextFormat) {
  EXPECT_EQ((SourceLoc{Section::kPrologue, 3, -1}.text()), "prologue[3]");
  EXPECT_EQ((SourceLoc{Section::kBody, 12, 1}.text()), "body[1][12]");
  EXPECT_EQ((SourceLoc{Section::kEpilogue, 0, -1}.text()), "epilogue[0]");
}

// -- verify_kernel adapter -------------------------------------------------

TEST(SassVerifierAdapter, PreservesWhereStrings) {
  Kernel kernel;
  Instr ldg = make(Op::kLdg, RegRange{0, 4}, {RegRange{8, 1}});
  ldg.ctrl.write_barrier = 0;
  kernel.prologue.push_back(ldg);
  kernel.prologue.push_back(
      make(Op::kIadd, RegRange{0, 1}, {RegRange{8, 1}}));  // WAW in prologue
  Instr body_ldg = ldg;
  body_ldg.dst = RegRange{4, 4};
  kernel.body.push_back(body_ldg);  // re-arms barrier 0 each trip
  const std::vector<Violation> violations = verify_kernel(kernel, 2);
  ASSERT_GE(violations.size(), 3u);
  EXPECT_EQ(violations[0].where, "prologue");
  EXPECT_EQ(violations[0].index, 1u);
  bool saw_trip0 = false, saw_trip1 = false;
  for (const Violation& v : violations) {
    saw_trip0 = saw_trip0 || v.where == "body[0]";
    saw_trip1 = saw_trip1 || v.where == "body[1]";
  }
  EXPECT_TRUE(saw_trip0);
  EXPECT_TRUE(saw_trip1);
}

}  // namespace
}  // namespace egemm::sass::analysis
