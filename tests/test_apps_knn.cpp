// Tests for GEMM-based kNN (apps/knn.hpp).
#include "apps/knn.hpp"

#include <set>

#include <gtest/gtest.h>

#include "apps/dataset.hpp"

namespace egemm::apps {
namespace {

TEST(Knn, SelfQueryFindsItselfFirst) {
  const PointCloud cloud = uniform_cloud(128, 16, -1.0f, 1.0f, 1);
  KnnOptions opts;
  opts.k = 1;
  const KnnResult result = knn_search(cloud.points, cloud.points, opts);
  for (std::size_t i = 0; i < cloud.points.rows(); ++i) {
    EXPECT_EQ(result.indices.at(i, 0), static_cast<std::int32_t>(i));
    EXPECT_NEAR(result.distances.at(i, 0), 0.0f, 1e-4f);
  }
}

class KnnBackendTest : public ::testing::TestWithParam<gemm::Backend> {};

TEST_P(KnnBackendTest, AgreesWithBruteForce) {
  const PointCloud refs = uniform_cloud(256, 24, -1.0f, 1.0f, 2);
  const PointCloud queries = uniform_cloud(64, 24, -1.0f, 1.0f, 3);
  KnnOptions opts;
  opts.k = 8;
  opts.backend = GetParam();
  const KnnResult fast = knn_search(queries.points, refs.points, opts);
  const KnnResult oracle = knn_bruteforce(queries.points, refs.points, 8);
  // Extended-precision and fp32 backends must recover virtually all
  // neighbors; ties at equal distance may swap, so demand >= 97%.
  EXPECT_GE(knn_agreement(fast, oracle), 0.97)
      << gemm::backend_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, KnnBackendTest,
                         ::testing::Values(gemm::Backend::kEgemmTC,
                                           gemm::Backend::kCublasFp32,
                                           gemm::Backend::kCublasTcEmulation));

TEST(Knn, HalfBackendDegradesNeighborQuality) {
  // The motivation for extended precision (§1): half-precision distance
  // matrices mis-rank neighbors more often.
  const PointCloud refs = uniform_cloud(512, 64, -1.0f, 1.0f, 4);
  const PointCloud queries = uniform_cloud(128, 64, -1.0f, 1.0f, 5);
  const KnnResult oracle = knn_bruteforce(queries.points, refs.points, 8);
  KnnOptions emu_opts;
  emu_opts.k = 8;
  KnnOptions half_opts = emu_opts;
  half_opts.backend = gemm::Backend::kCublasTcHalf;
  const double emu_agreement =
      knn_agreement(knn_search(queries.points, refs.points, emu_opts), oracle);
  const double half_agreement = knn_agreement(
      knn_search(queries.points, refs.points, half_opts), oracle);
  EXPECT_GE(emu_agreement, half_agreement);
  EXPECT_GE(emu_agreement, 0.97);
}

TEST(Knn, DistancesAreSortedAscending) {
  const PointCloud refs = uniform_cloud(200, 8, -1.0f, 1.0f, 6);
  const PointCloud queries = uniform_cloud(50, 8, -1.0f, 1.0f, 7);
  KnnOptions opts;
  opts.k = 10;
  const KnnResult result = knn_search(queries.points, refs.points, opts);
  for (std::size_t i = 0; i < queries.points.rows(); ++i) {
    for (int j = 1; j < opts.k; ++j) {
      EXPECT_LE(result.distances.at(i, static_cast<std::size_t>(j - 1)),
                result.distances.at(i, static_cast<std::size_t>(j)));
    }
  }
}

TEST(Knn, AgreementMetric) {
  KnnResult a, b;
  a.indices = gemm::BasicMatrix<std::int32_t>(2, 2);
  b.indices = gemm::BasicMatrix<std::int32_t>(2, 2);
  a.indices.at(0, 0) = 1;
  b.indices.at(0, 0) = 1;
  a.indices.at(1, 1) = 5;
  b.indices.at(1, 1) = 6;
  EXPECT_DOUBLE_EQ(knn_agreement(a, b), 0.75);
}

TEST(Knn, KEqualsReferenceCount) {
  const PointCloud refs = uniform_cloud(8, 4, -1.0f, 1.0f, 8);
  const PointCloud queries = uniform_cloud(3, 4, -1.0f, 1.0f, 9);
  KnnOptions opts;
  opts.k = 8;  // every reference is a neighbor
  const KnnResult result = knn_search(queries.points, refs.points, opts);
  for (std::size_t i = 0; i < 3; ++i) {
    std::set<std::int32_t> seen;
    for (int j = 0; j < 8; ++j) {
      seen.insert(result.indices.at(i, static_cast<std::size_t>(j)));
    }
    EXPECT_EQ(seen.size(), 8u);  // a permutation of all references
  }
}

}  // namespace
}  // namespace egemm::apps
