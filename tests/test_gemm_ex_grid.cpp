// gemm_ex over the full (trans_a, trans_b) x (alpha, beta) grid, checked
// against the double-double oracle (verify/): every element must land
// within the a-priori kernel bound scaled by the epilogue, for each
// scaling configuration. The fast paths (alpha = 1, beta in {0, 1}) are
// additionally required to be bitwise identical to run_gemm -- they must
// ride the kernel accumulator, not the epilogue.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gemm/gemm_api.hpp"
#include "gemm/plan.hpp"
#include "verify/error_model.hpp"
#include "verify/oracle.hpp"

namespace egemm::gemm {
namespace {

constexpr std::size_t kM = 24;
constexpr std::size_t kN = 20;
constexpr std::size_t kK = 36;

struct GridInputs {
  Matrix op_a;  ///< m x k, the logical (post-op) operand
  Matrix op_b;  ///< k x n
  Matrix a;     ///< as stored (transposed when trans_a)
  Matrix b;
  Matrix c;     ///< m x n
};

GridInputs make_inputs(Transpose trans_a, Transpose trans_b) {
  GridInputs in;
  in.op_a = random_matrix(kM, kK, -2.0f, 2.0f, 101);
  in.op_b = random_matrix(kK, kN, -2.0f, 2.0f, 102);
  in.a = trans_a == Transpose::kTranspose ? transpose(in.op_a) : in.op_a;
  in.b = trans_b == Transpose::kTranspose ? transpose(in.op_b) : in.op_b;
  in.c = random_matrix(kM, kN, -4.0f, 4.0f, 103);
  return in;
}

/// Worst-case |error| for D[i][j] = alpha * (op_a x op_b)[i][j] + beta * c:
/// the kernel bound scales by |alpha|, and the two binary32 epilogue
/// roundings (the alpha product and the beta fma) add 2 eps of the
/// intermediate magnitude `mag` = |alpha * (AB)| + |beta * c| (which
/// dominates |ref| when the two terms cancel).
double grid_bound(const verify::ErrorBound& kernel, float alpha, double mag) {
  const double eps = static_cast<double>(std::numeric_limits<float>::epsilon());
  return std::fabs(static_cast<double>(alpha)) * kernel.worst_abs +
         2.0 * eps * mag + 1e-30;
}

TEST(GemmExGrid, EveryScalingConfigurationStaysInsideTheOracleBound) {
  const float alphas[] = {1.0f, 0.5f, -2.0f};
  const float betas[] = {0.0f, 1.0f, 0.75f};
  const Transpose ops[] = {Transpose::kNone, Transpose::kTranspose};
  const verify::PathProfile profile;  // EGEMM-TC: round-split, all 4 terms

  for (const Transpose trans_a : ops) {
    for (const Transpose trans_b : ops) {
      const GridInputs in = make_inputs(trans_a, trans_b);
      const verify::OracleMatrix oracle =
          verify::oracle_gemm(in.op_a, in.op_b, nullptr);

      // Scale context per output element (same scheme as the
      // differential runner).
      std::vector<double> row_amax(kM, 0.0);
      for (std::size_t i = 0; i < kM; ++i) {
        for (std::size_t t = 0; t < kK; ++t) {
          row_amax[i] = std::max(
              row_amax[i], std::fabs(static_cast<double>(in.op_a.at(i, t))));
        }
      }
      std::vector<double> col_bmax(kN, 0.0);
      for (std::size_t t = 0; t < kK; ++t) {
        for (std::size_t j = 0; j < kN; ++j) {
          col_bmax[j] = std::max(
              col_bmax[j], std::fabs(static_cast<double>(in.op_b.at(t, j))));
        }
      }

      for (const float alpha : alphas) {
        for (const float beta : betas) {
          GemmExParams params;
          params.trans_a = trans_a;
          params.trans_b = trans_b;
          params.alpha = alpha;
          params.beta = beta;
          const Matrix* c = beta != 0.0f ? &in.c : nullptr;
          const Matrix d =
              gemm_ex(Backend::kEgemmTC, in.a, in.b, c, params);
          ASSERT_EQ(d.rows(), kM);
          ASSERT_EQ(d.cols(), kN);

          for (std::size_t i = 0; i < kM; ++i) {
            for (std::size_t j = 0; j < kN; ++j) {
              const double ref =
                  static_cast<double>(alpha) * oracle.value(i, j) +
                  static_cast<double>(beta) *
                      (c != nullptr
                           ? static_cast<double>(in.c.at(i, j))
                           : 0.0);
              verify::BoundInputs context;
              context.k = kK;
              context.a_scale = row_amax[i];
              context.b_scale = col_bmax[j];
              // beta = 1 rides the kernel accumulator, where C feeds the
              // binary32 sum directly and widens the bound.
              context.c_abs =
                  (alpha == 1.0f && beta == 1.0f)
                      ? std::fabs(static_cast<double>(in.c.at(i, j)))
                      : 0.0;
              const verify::ErrorBound kernel =
                  verify::element_bound(profile, context);
              const double err =
                  std::fabs(static_cast<double>(d.at(i, j)) - ref);
              const double mag =
                  std::fabs(static_cast<double>(alpha) * oracle.value(i, j)) +
                  std::fabs(static_cast<double>(beta)) *
                      (c != nullptr
                           ? std::fabs(static_cast<double>(in.c.at(i, j)))
                           : 0.0);
              EXPECT_LE(err, grid_bound(kernel, alpha, mag))
                  << "trans_a=" << (trans_a == Transpose::kTranspose)
                  << " trans_b=" << (trans_b == Transpose::kTranspose)
                  << " alpha=" << alpha << " beta=" << beta << " at (" << i
                  << ", " << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(GemmExGrid, FastPathsAreBitwiseIdenticalToRunGemm) {
  const GridInputs in = make_inputs(Transpose::kNone, Transpose::kTranspose);
  GemmExParams params;
  params.trans_b = Transpose::kTranspose;

  // alpha = 1, beta = 0: pure kernel call.
  const Matrix d0 = gemm_ex(Backend::kEgemmTC, in.a, in.b, nullptr, params);
  const Matrix r0 = run_gemm(Backend::kEgemmTC, in.op_a, in.op_b);
  ASSERT_EQ(d0.size(), r0.size());
  EXPECT_EQ(std::memcmp(d0.data().data(), r0.data().data(),
                        d0.size() * sizeof(float)),
            0);

  // alpha = 1, beta = 1: C rides the kernel accumulator.
  params.beta = 1.0f;
  const Matrix d1 = gemm_ex(Backend::kEgemmTC, in.a, in.b, &in.c, params);
  const Matrix r1 = run_gemm(Backend::kEgemmTC, in.op_a, in.op_b, &in.c);
  ASSERT_EQ(d1.size(), r1.size());
  EXPECT_EQ(std::memcmp(d1.data().data(), r1.data().data(),
                        d1.size() * sizeof(float)),
            0);
}

TEST(GemmExGrid, ExplicitContextMatchesTheDefaultContext) {
  GemmContext ctx;
  const GridInputs in = make_inputs(Transpose::kTranspose, Transpose::kNone);
  GemmExParams params;
  params.trans_a = Transpose::kTranspose;
  params.alpha = -0.5f;
  params.beta = 0.75f;
  const Matrix via_ctx = gemm_ex(ctx, Backend::kEgemmTC, in.a, in.b, &in.c,
                                 params);
  const Matrix via_default =
      gemm_ex(Backend::kEgemmTC, in.a, in.b, &in.c, params);
  ASSERT_EQ(via_ctx.size(), via_default.size());
  EXPECT_EQ(std::memcmp(via_ctx.data().data(), via_default.data().data(),
                        via_ctx.size() * sizeof(float)),
            0);
  EXPECT_GE(ctx.plan_misses(), 1u);
}

}  // namespace
}  // namespace egemm::gemm
