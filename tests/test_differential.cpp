// Tests for the differential accuracy runner (verify/differential.hpp):
// engine bitwise agreement, a-priori bound satisfaction, and the paper's
// round-vs-truncate precision ordering as measured facts.
#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/split.hpp"
#include "verify/differential.hpp"
#include "verify/oracle.hpp"

namespace egemm::verify {
namespace {

TEST(PathProfiles, MatchTheirAlgorithms) {
  EXPECT_EQ(path_profile(Path::kEgemmRound).split,
            core::SplitMethod::kRoundSplit);
  EXPECT_EQ(path_profile(Path::kEgemmRound).term_count(), 4);
  EXPECT_EQ(path_profile(Path::kEgemmTruncate).split,
            core::SplitMethod::kTruncateSplit);
  EXPECT_EQ(path_profile(Path::kMarkidis).term_count(), 3);
  EXPECT_FALSE(path_profile(Path::kMarkidis).term(1, 1));  // lo x lo dropped
  EXPECT_TRUE(path_profile(Path::kTcHalf).half_only);
  EXPECT_EQ(path_profile(Path::kRecovery3).planes, 3);
  EXPECT_EQ(path_profile(Path::kRecovery3).term_count(), 9);
  EXPECT_EQ(path_profile(Path::kSlice3).split,
            core::SplitMethod::kTruncateSplit);
  EXPECT_EQ(path_profile(Path::kSlice3).term_count(), 9);
  for (std::size_t p = 0; p < kPathCount; ++p) {
    EXPECT_STRNE(path_name(static_cast<Path>(p)), "?");
  }
}

TEST(PathProfiles, PathSchemeMapsAreConsistent) {
  // Every rung's canonical path maps back to the rung, and every path's
  // rung profile is exactly its scheme's profile.
  for (const core::SchemeId scheme : core::scheme_ladder()) {
    EXPECT_EQ(path_scheme(scheme_path(scheme)), scheme)
        << core::scheme_name(scheme);
  }
  for (std::size_t p = 0; p < kPathCount; ++p) {
    const Path path = static_cast<Path>(p);
    EXPECT_EQ(core::classify_scheme(path_profile(path)), path_scheme(path))
        << path_name(path);
  }
  // The two round-2term pass orders share one rung.
  EXPECT_EQ(path_scheme(Path::kSeparatePasses), core::SchemeId::kRound2);
  EXPECT_EQ(scheme_path(core::SchemeId::kRound2), Path::kEgemmRound);
}

TEST(RunCase, UniformCaseSatisfiesEveryBound) {
  FuzzCase fuzz;
  fuzz.seed = 17;
  fuzz.m = 24;
  fuzz.n = 20;
  fuzz.k = 40;
  fuzz.kind = InputKind::kUniform;
  fuzz.with_c = true;
  const CaseResult result = run_case(fuzz);
  EXPECT_FALSE(result.special);
  EXPECT_TRUE(result.engine_match);
  for (std::size_t p = 0; p < kPathCount; ++p) {
    EXPECT_EQ(result.paths[p].violations, 0u)
        << path_name(static_cast<Path>(p));
    EXPECT_LE(result.paths[p].worst_ratio, 1.0);
    EXPECT_EQ(result.paths[p].stats.count, fuzz.m * fuzz.n);
  }
}

TEST(RunCase, SpecialsCaseSkipsBoundsButEnginesAgree) {
  FuzzCase fuzz;
  fuzz.seed = 23;
  fuzz.m = 19;
  fuzz.n = 15;
  fuzz.k = 33;
  fuzz.kind = InputKind::kSpecials;
  fuzz.with_c = true;
  const CaseResult result = run_case(fuzz);
  EXPECT_TRUE(result.special);
  EXPECT_TRUE(result.engine_match);
  EXPECT_EQ(result.paths[0].stats.count, 0u);
}

TEST(RunCase, DegenerateShapesWork) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{17}}) {
    FuzzCase fuzz;
    fuzz.seed = 31 + k;
    fuzz.m = 1;
    fuzz.n = 1;
    fuzz.k = k;
    fuzz.kind = InputKind::kLogUniform;
    const CaseResult result = run_case(fuzz);
    EXPECT_TRUE(result.engine_match);
    for (std::size_t p = 0; p < kPathCount; ++p) {
      EXPECT_EQ(result.paths[p].violations, 0u);
    }
  }
}

TEST(RunAudit, FixedSeedIsCleanAndOrdersThePaths) {
  AuditOptions options;
  options.seed = 1;
  options.cases = 144;  // covers all 54 (kind, scheme) pairs (period 108)
  const AuditReport report = run_audit(options);
  EXPECT_EQ(report.cases_run, 144u);
  EXPECT_EQ(report.engine_mismatches, 0u);
  EXPECT_EQ(report.total_violations(), 0u);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.failing_cases.empty());
  // The paper's Fig. 4/Fig. 7 ordering on the uniform distribution:
  // round-split EGEMM strictly more accurate than truncate-split Markidis.
  EXPECT_TRUE(report.round_below_markidis());
  // And TC-Half is far worse than either (the ~350x Fig. 7 gap).
  const double egemm_ulp =
      report.uniform_stats[static_cast<std::size_t>(Path::kEgemmRound)].max_ulp;
  const double half_ulp =
      report.uniform_stats[static_cast<std::size_t>(Path::kTcHalf)].max_ulp;
  EXPECT_GT(half_ulp, 10.0 * egemm_ulp);
}

TEST(RunAudit, TimeBudgetStopsEarly) {
  AuditOptions options;
  options.seed = 5;
  options.cases = 1000000;  // far more than the budget allows
  options.time_budget_seconds = 0.2;
  const AuditReport report = run_audit(options);
  EXPECT_LT(report.cases_run, report.cases_planned);
  EXPECT_TRUE(report.ok());
}

TEST(RunAudit, JsonReportRoundTrips) {
  AuditOptions options;
  options.seed = 2;
  options.cases = 21;
  const AuditReport report = run_audit(options);
  const std::string path = ::testing::TempDir() + "audit.json";
  ASSERT_TRUE(write_audit_json(path, report, "testsha"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 14, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_NE(text.find("\"git_sha\": \"testsha\""), std::string::npos);
  EXPECT_NE(text.find("\"seed\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"engine_scheme\": \"ladder\""), std::string::npos);
  EXPECT_NE(text.find("\"egemm-round\""), std::string::npos);
  EXPECT_NE(text.find("\"markidis\""), std::string::npos);
  EXPECT_NE(text.find("\"recovery-3term\""), std::string::npos);
  EXPECT_NE(text.find("\"slice-3term\""), std::string::npos);
  EXPECT_NE(text.find("\"violations\": 0"), std::string::npos);
}

TEST(RunAudit, PinnedSchemeSoaksOneRung) {
  AuditOptions options;
  options.seed = 3;
  options.cases = 18;
  options.scheme = core::SchemeId::kRecovery3;
  const AuditReport report = run_audit(options);
  EXPECT_EQ(report.engine_scheme, "recovery-3term");
  EXPECT_TRUE(report.ok());
  // Every case descriptor the audit would replay carries the pinned rung.
  const std::string path = ::testing::TempDir() + "audit_pinned.json";
  ASSERT_TRUE(write_audit_json(path, report, "testsha"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 14, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  EXPECT_NE(text.find("\"engine_scheme\": \"recovery-3term\""),
            std::string::npos);
}

// The §3.2 claim made executable: on cancellation-free positive inputs the
// truncate-split residuals are one-signed and accumulate linearly, while
// round-split residuals random-walk. The binary32 accumulation noise is
// shared by both paths and dominates each path's absolute error, so the
// split behaviour shows up in the *drift between the paths*: Markidis'
// worst error sits measurably above the round-split path's, and the gap
// exceeds the entire random-walk envelope the round split allows for its
// own residuals.
TEST(RoundVsTruncate, MarkidisExceedsTheRoundSplitEnvelope) {
  FuzzCase fuzz;
  fuzz.seed = 77;
  fuzz.m = 16;
  fuzz.n = 16;
  fuzz.k = 96;
  fuzz.kind = InputKind::kPositive;
  const FuzzInputs inputs = generate_inputs(fuzz);
  const OracleMatrix oracle = oracle_gemm(inputs.a, inputs.b, nullptr);
  const gemm::Matrix round =
      run_path(Path::kEgemmRound, inputs.a, inputs.b, nullptr);
  const gemm::Matrix markidis =
      run_path(Path::kMarkidis, inputs.a, inputs.b, nullptr);

  double round_worst = 0.0, markidis_worst = 0.0;
  for (std::size_t i = 0; i < fuzz.m; ++i) {
    for (std::size_t j = 0; j < fuzz.n; ++j) {
      const double ref = oracle.value(i, j);
      round_worst = std::max(
          round_worst, std::fabs(static_cast<double>(round.at(i, j)) - ref));
      markidis_worst = std::max(
          markidis_worst,
          std::fabs(static_cast<double>(markidis.at(i, j)) - ref));
    }
  }
  EXPECT_LT(round_worst, markidis_worst);

  // Positive kind draws from [0.5, 1), so scale 1.0 upper-bounds every row
  // and column: the random-walk envelope sqrt(k) * residual is the most the
  // round split's own residuals are expected to contribute.
  const double round_split_envelope =
      std::sqrt(static_cast<double>(fuzz.k)) *
      core::split_residual_bound(core::SplitMethod::kRoundSplit, 1.0);
  EXPECT_GT(markidis_worst - round_worst, round_split_envelope);
}

}  // namespace
}  // namespace egemm::verify
