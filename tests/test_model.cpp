// Tests for the hardware-aware analytic model (model/analytic_model.hpp).
#include "model/analytic_model.hpp"

#include <gtest/gtest.h>

namespace egemm::model {
namespace {

ResourceBudget t4_budget() {
  return budget_from_spec(tcsim::tesla_t4());
}

TEST(AnalyticModel, BudgetFromSpecMatchesTable3) {
  const ResourceBudget budget = t4_budget();
  EXPECT_EQ(budget.shared_memory_bytes, 64u * 1024u);
  EXPECT_EQ(budget.register_bytes, 256u * 1024u);
  EXPECT_DOUBLE_EQ(budget.peak_tc_tflops, 65.0);  // ~2^6 TFLOPS
  EXPECT_DOUBLE_EQ(budget.l2_gbps, 750.0);
  EXPECT_EQ(budget.max_registers_per_thread, 256);
}

TEST(AnalyticModel, Table4ConfigEvaluation) {
  const ModelEval eval =
      evaluate_config(gemm::table4_config(), t4_budget());
  // Eq. 2: 4(bm+bn)bk = 32768 bytes.
  EXPECT_DOUBLE_EQ(eval.global_bytes_per_iter, 32768.0);
  // Eq. 3: 8 bm bn bk.
  EXPECT_DOUBLE_EQ(eval.flops_per_iter, 8.0 * 128 * 128 * 32);
  // Eq. 4: 2*128*128/256 = 128.
  EXPECT_DOUBLE_EQ(eval.compute_intensity, 128.0);
  // Demands: 96 KB registers (Eq. 8 line 1), 36 KB shared (Table 4).
  EXPECT_EQ(eval.register_demand_bytes, 98304u);
  EXPECT_EQ(eval.shared_demand_bytes, 36864u);
  EXPECT_EQ(eval.registers_per_thread, 232);
  EXPECT_TRUE(eval.fits_registers);
  EXPECT_TRUE(eval.fits_register_file);
  EXPECT_TRUE(eval.fits_shared);
  EXPECT_TRUE(eval.no_register_spill);
  EXPECT_TRUE(eval.compute_bound);
  EXPECT_TRUE(eval.feasible());
  EXPECT_GT(eval.compute_margin(), 0.0);
}

TEST(AnalyticModel, Eq5To7CycleCounts) {
  const ModelEval eval =
      evaluate_config(gemm::table4_config(), t4_budget());
  const ModelTimes times = times_from_budget(t4_budget());
  // 2048 HMMA per iteration at the sustained interval.
  EXPECT_NEAR(eval.t_comp, 2048.0 * times.t_hmma, 1e-9);
  // 64 (LDG+STS).128 pairs.
  EXPECT_NEAR(eval.t_mem1, 64.0 * (times.t_ldg128 + times.t_sts128), 1e-9);
  // Eq. 7: 32 chains x 24 LDS.32.
  EXPECT_NEAR(eval.t_mem2, 768.0 * times.t_lds32, 1e-9);
}

TEST(AnalyticModel, IntensityIsIndependentOfBk) {
  // §6.1's observation: Eq. 4 does not involve bk.
  const ResourceBudget budget = t4_budget();
  gemm::TileConfig a = gemm::table4_config();
  gemm::TileConfig b = gemm::table4_config();
  b.bk = 16;
  EXPECT_DOUBLE_EQ(evaluate_config(a, budget).compute_intensity,
                   evaluate_config(b, budget).compute_intensity);
}

TEST(AnalyticModel, Bk64SpillsRegisters) {
  // §6's pressure argument: growing bk raises the staging footprint past
  // the per-thread budget.
  gemm::TileConfig config = gemm::table4_config();
  config.bk = 64;
  const ModelEval eval = evaluate_config(config, t4_budget());
  EXPECT_FALSE(eval.no_register_spill);
  EXPECT_FALSE(eval.feasible());
}

TEST(AnalyticModel, NarrowWarpTileIsMemoryBound) {
  // wn=16 doubles the LDS chains per output: T_mem1 + T_mem2 > T_comp.
  gemm::TileConfig config = gemm::table4_config();
  config.wn = 16;
  const ModelEval eval = evaluate_config(config, t4_budget());
  EXPECT_FALSE(eval.compute_bound);
}

TEST(AnalyticModel, WideBlockTileBlowsRegisterFile) {
  // (256,128) fits the FRAG demand but not threads x per-thread registers.
  gemm::TileConfig config{256, 128, 16, 64, 32, 8};
  ASSERT_TRUE(config.valid());
  const ModelEval eval = evaluate_config(config, t4_budget());
  EXPECT_TRUE(eval.fits_registers);
  EXPECT_FALSE(eval.fits_register_file);
  EXPECT_FALSE(eval.feasible());
}

TEST(AnalyticModel, BiggerTilesRaiseIntensity) {
  const ResourceBudget budget = t4_budget();
  const ModelEval small =
      evaluate_config(gemm::TileConfig{64, 64, 32, 32, 32, 8}, budget);
  const ModelEval large = evaluate_config(gemm::table4_config(), budget);
  EXPECT_GT(large.compute_intensity, small.compute_intensity);
}

TEST(AnalyticModel, TimesScaleWithBudget) {
  ResourceBudget fast = t4_budget();
  fast.l2_gbps = 1500.0;
  const ModelTimes slow_times = times_from_budget(t4_budget());
  const ModelTimes fast_times = times_from_budget(fast);
  EXPECT_LT(fast_times.t_ldg128, slow_times.t_ldg128);
  EXPECT_DOUBLE_EQ(fast_times.t_hmma, slow_times.t_hmma);
}

}  // namespace
}  // namespace egemm::model
