// Tests for the per-call telemetry layer (DESIGN.md §17): log-linear
// latency histogram geometry and quantile accuracy, the lock-free call
// record rings under concurrency (the TSan CI lane runs this binary), the
// per-shape aggregation, the execute-path integration, and the exporters
// (OpenMetrics exposition + latency JSON section).
#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "gemm/gemm_api.hpp"
#include "gemm/matrix.hpp"
#include "gemm/plan.hpp"
#include "obs/callrec.hpp"
#include "obs/export.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace egemm::obs {
namespace {

// -- bucket geometry ---------------------------------------------------------

TEST(LatencyBuckets, LinearRegionIsExact) {
  for (std::uint64_t v = 0; v < kLatencyLinearMax; ++v) {
    EXPECT_EQ(latency_bucket_index(v), static_cast<std::size_t>(v));
    EXPECT_EQ(latency_bucket_lower(latency_bucket_index(v)), v);
    EXPECT_EQ(latency_bucket_width(latency_bucket_index(v)), 1u);
    EXPECT_EQ(latency_bucket_representative(latency_bucket_index(v)), v);
  }
}

TEST(LatencyBuckets, EveryValueLandsInsideItsBucket) {
  // Sweep magnitudes with a few offsets per octave; the invariant is
  // lower <= v < lower + width, and indices never decrease with v.
  std::vector<std::uint64_t> values;
  for (int w = 0; w < 63; ++w) {
    for (const std::uint64_t off :
         {std::uint64_t{0}, std::uint64_t{1}, (std::uint64_t{1} << w) / 3,
          (std::uint64_t{1} << w) - 1}) {
      values.push_back((std::uint64_t{1} << w) + off);
    }
  }
  std::sort(values.begin(), values.end());
  std::size_t prev_index = 0;
  for (const std::uint64_t v : values) {
    const std::size_t bucket = latency_bucket_index(v);
    ASSERT_LT(bucket, kLatencyBuckets);
    EXPECT_GE(bucket, prev_index) << "v=" << v;
    if (bucket + 1 < kLatencyBuckets) {
      EXPECT_GE(v, latency_bucket_lower(bucket));
      EXPECT_LT(v,
                latency_bucket_lower(bucket) + latency_bucket_width(bucket));
    }
    prev_index = bucket;
  }
  EXPECT_EQ(latency_bucket_index(~std::uint64_t{0}), kLatencyBuckets - 1);
}

TEST(LatencyBuckets, RelativeWidthBoundHolds) {
  // The quantile error contract: every non-saturating bucket is narrower
  // than kLatencyQuantileRelErr of its lower bound (octave region), or
  // exact (linear region).
  for (std::size_t b = kLatencyLinearMax; b + 1 < kLatencyBuckets; ++b) {
    EXPECT_LE(static_cast<double>(latency_bucket_width(b)),
              kLatencyQuantileRelErr *
                  static_cast<double>(latency_bucket_lower(b)))
        << "bucket " << b;
  }
}

// -- quantile accuracy -------------------------------------------------------

/// Exact nearest-rank quantile of a sorted sample -- the definition the
/// histogram-side latency_quantile mirrors bucket-wise.
std::uint64_t exact_quantile(std::vector<std::uint64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto count = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

void expect_quantiles_within_bound(const std::vector<std::uint64_t>& sample,
                                   const char* label) {
  LatencyAccumulator acc;
  for (const std::uint64_t v : sample) acc.record(v);
  ASSERT_EQ(acc.count(), sample.size());
  // A representative can sit up to half a bucket width from the exact
  // value; kLatencyQuantileRelErr bounds the full width, so it bounds the
  // representative error with slack. Allow a hair of float headroom.
  const double tol = kLatencyQuantileRelErr + 1e-9;
  for (const double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double exact = static_cast<double>(exact_quantile(sample, q));
    const double approx = static_cast<double>(acc.quantile(q));
    EXPECT_LE(std::abs(approx - exact), tol * exact)
        << label << " q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(LatencyQuantiles, UniformDistribution) {
  util::Xoshiro256 rng(7);
  std::vector<std::uint64_t> sample;
  sample.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    sample.push_back(1 + rng.below(1'000'000));
  }
  expect_quantiles_within_bound(sample, "uniform");
}

TEST(LatencyQuantiles, LognormalDistribution) {
  // exp(N(10, 2)) ns: median ~22 us with a heavy tail into seconds --
  // the shape real per-call latencies have.
  util::NormalSampler normal(11);
  std::vector<std::uint64_t> sample;
  sample.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(10.0 + 2.0 * normal.next());
    sample.push_back(static_cast<std::uint64_t>(std::max(v, 1.0)));
  }
  expect_quantiles_within_bound(sample, "lognormal");
}

TEST(LatencyQuantiles, BimodalDistribution) {
  // Plan-hit fast path vs cold miss: two tight modes three decades apart.
  util::Xoshiro256 rng(13);
  std::vector<std::uint64_t> sample;
  sample.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const bool fast = rng.below(100) < 90;
    sample.push_back(fast ? 2'000 + rng.below(500)
                          : 3'000'000 + rng.below(400'000));
  }
  expect_quantiles_within_bound(sample, "bimodal");
}

TEST(LatencyQuantiles, EmptyAndSingleton) {
  LatencyAccumulator acc;
  EXPECT_EQ(acc.quantile(0.5), 0u);
  acc.record(17);
  EXPECT_EQ(acc.quantile(0.0), 17u);
  EXPECT_EQ(acc.quantile(0.5), 17u);
  EXPECT_EQ(acc.quantile(1.0), 17u);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.sum(), 17u);
}

TEST(LatencyQuantiles, MergeMatchesCombinedRecording) {
  util::Xoshiro256 rng(17);
  LatencyAccumulator a, b, combined;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = 1 + rng.below(1u << 20);
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  for (const double q : {0.5, 0.99}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q));
  }
}

// -- call-record rings -------------------------------------------------------

TEST(CallRecords, RoundTripPreservesFields) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_call_records();
  CallRecord rec;
  rec.start_ns = 123;
  rec.total_ns = 456;
  rec.split_ns = 40;
  rec.pack_ns = 50;
  rec.mma_ns = 300;
  rec.combine_ns = 60;
  rec.flops = 2ULL * 64 * 64 * 64;
  rec.bytes_moved = 99;
  rec.m = 64;
  rec.n = 64;
  rec.k = 64;
  rec.tid = current_thread_id();
  rec.scheme = 3;
  rec.backend = 0;
  rec.engine = 1;
  rec.isa = 2;
  rec.lookup = PlanLookup::kMiss;
  record_call(rec);
  const std::vector<CallRecord> drained = drain_call_records();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].start_ns, 123u);
  EXPECT_EQ(drained[0].total_ns, 456u);
  EXPECT_EQ(drained[0].mma_ns, 300u);
  EXPECT_EQ(drained[0].scheme, 3);
  EXPECT_EQ(drained[0].engine, 1);
  EXPECT_EQ(drained[0].lookup, PlanLookup::kMiss);
  EXPECT_TRUE(drain_call_records().empty());
}

TEST(CallRecords, ConcurrentProducersAndDrainer) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_call_records();
  const std::uint64_t dropped_before = dropped_call_records();
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  std::atomic<bool> stop{false};
  std::vector<CallRecord> drained;
  // Concurrent drainer: exercises the release/acquire head/tail protocol
  // while producers append (the TSan lane would flag any racy slot access).
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<CallRecord> batch = drain_call_records();
      drained.insert(drained.end(), batch.begin(), batch.end());
    }
    std::vector<CallRecord> batch = drain_call_records();
    drained.insert(drained.end(), batch.begin(), batch.end());
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        CallRecord rec;
        rec.m = static_cast<std::uint32_t>(p);
        rec.start_ns = i;
        rec.total_ns = i * 2 + 1;  // field checksum: torn reads would break
        record_call(rec);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();
  const std::uint64_t dropped = dropped_call_records() - dropped_before;
  EXPECT_EQ(drained.size() + dropped, kPerProducer * kProducers);
  // Per-producer order and integrity: sequence numbers strictly increase
  // in drain order (drains preserve per-ring FIFO), and every record's
  // derived field is consistent with its sequence number.
  std::array<std::int64_t, kProducers> last;
  last.fill(-1);
  for (const CallRecord& rec : drained) {
    ASSERT_LT(rec.m, static_cast<std::uint32_t>(kProducers));
    EXPECT_GT(static_cast<std::int64_t>(rec.start_ns), last[rec.m]);
    last[rec.m] = static_cast<std::int64_t>(rec.start_ns);
    EXPECT_EQ(rec.total_ns, rec.start_ns * 2 + 1);
  }
  clear_call_records();
}

TEST(CallRecords, DisableStopsRecording) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_call_records();
  set_call_records(false);
  record_call(CallRecord{});
  EXPECT_TRUE(drain_call_records().empty());
  set_call_records(true);
  record_call(CallRecord{});
  EXPECT_EQ(drain_call_records().size(), 1u);
}

// -- aggregation -------------------------------------------------------------

TEST(CallSummary, GroupsByShapeAndScheme) {
  std::vector<CallRecord> records;
  for (int i = 0; i < 3; ++i) {
    CallRecord rec;
    rec.m = 64;
    rec.n = 64;
    rec.k = 64;
    rec.scheme = 3;
    rec.total_ns = 1000;
    rec.split_ns = 100;
    rec.pack_ns = 100;
    rec.mma_ns = 600;
    rec.combine_ns = 100;
    rec.flops = 2000;
    rec.lookup = i == 0 ? PlanLookup::kMiss : PlanLookup::kHit;
    records.push_back(rec);
  }
  CallRecord other;
  other.m = 128;
  other.n = 32;
  other.k = 16;
  other.scheme = 5;
  other.total_ns = 4000;
  records.push_back(other);

  const CallSummary summary =
      summarize_calls({records.data(), records.size()});
  EXPECT_EQ(summary.records, 4u);
  ASSERT_EQ(summary.classes.size(), 2u);
  const CallClassSummary& cls = summary.classes[0];
  EXPECT_EQ(cls.m, 64u);
  EXPECT_EQ(cls.calls, 3u);
  EXPECT_EQ(cls.plan_hits, 2u);
  EXPECT_EQ(cls.plan_misses, 1u);
  EXPECT_EQ(cls.total_ns, 3000u);
  EXPECT_EQ(cls.mma_ns, 1800u);
  EXPECT_EQ(cls.flops, 6000u);
  EXPECT_DOUBLE_EQ(cls.gflops(), 2.0);  // 6000 FLOP / 3000 ns
  EXPECT_DOUBLE_EQ(cls.stage_coverage(), 0.9);
  // Quantiles report the bucket representative of the recorded value.
  EXPECT_EQ(cls.latency.quantile(0.5),
            latency_bucket_representative(latency_bucket_index(1000)));
  EXPECT_EQ(summary.classes[1].m, 128u);
  EXPECT_EQ(summary.classes[1].calls, 1u);
}

TEST(CallSummary, JsonBlockCarriesNamesAndQuantiles) {
  CallRecord rec;
  rec.m = 8;
  rec.n = 8;
  rec.k = 8;
  rec.scheme = 0;
  rec.total_ns = 16;  // linear-region bucket: quantiles are exact
  const CallSummary summary = summarize_calls({&rec, 1});
  CallJsonNames names;
  names.scheme = [](std::int8_t) -> const char* { return "half"; };
  const std::string json = call_summary_json_block(summary, "", names);
  EXPECT_NE(json.find("\"records\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"scheme_name\": \"half\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"stage_coverage\": 0"), std::string::npos);
  // Embeddable block contract: no trailing newline, object-shaped.
  EXPECT_EQ(json.back(), '}');
}

// -- execute-path integration ------------------------------------------------

TEST(CallRecords, ExecuteEmitsHitMissAndStageAttribution) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_call_records();
  gemm::GemmContext ctx;
  const gemm::Matrix a = gemm::random_matrix(33, 29, -1.0f, 1.0f, 1);
  const gemm::Matrix b = gemm::random_matrix(29, 31, -1.0f, 1.0f, 2);
  const gemm::Matrix d1 =
      ctx.run_scheme(core::SchemeId::kRound2, a, b, nullptr);
  const gemm::Matrix d2 =
      ctx.run_scheme(core::SchemeId::kRound2, a, b, nullptr);
  static_cast<void>(d1);
  static_cast<void>(d2);
  const std::vector<CallRecord> records = drain_call_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lookup, PlanLookup::kMiss);
  EXPECT_EQ(records[1].lookup, PlanLookup::kHit);
  for (const CallRecord& rec : records) {
    EXPECT_EQ(rec.m, 33u);
    EXPECT_EQ(rec.n, 31u);
    EXPECT_EQ(rec.k, 29u);
    EXPECT_EQ(rec.flops, 2ULL * 33 * 31 * 29);
    EXPECT_GT(rec.bytes_moved, 0u);
    EXPECT_GT(rec.total_ns, 0u);
    // The four stages are measured segments of the same wall interval.
    EXPECT_LE(rec.split_ns + rec.pack_ns + rec.mma_ns + rec.combine_ns,
              rec.total_ns);
    EXPECT_GT(rec.split_ns + rec.pack_ns + rec.mma_ns + rec.combine_ns, 0u);
    EXPECT_EQ(rec.backend,
              static_cast<std::uint8_t>(gemm::Backend::kEgemmTC));
  }
  // Same plan shared across both calls -> one class, one miss, one hit.
  const CallSummary summary =
      summarize_calls({records.data(), records.size()});
  ASSERT_EQ(summary.classes.size(), 1u);
  EXPECT_EQ(summary.classes[0].plan_hits, 1u);
  EXPECT_EQ(summary.classes[0].plan_misses, 1u);
}

TEST(CallRecords, DirectBackendRecordsTotalOnly) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_call_records();
  gemm::GemmContext ctx;
  const gemm::Matrix a = gemm::random_matrix(24, 24, -1.0f, 1.0f, 3);
  const gemm::Matrix b = gemm::random_matrix(24, 24, -1.0f, 1.0f, 4);
  const gemm::Matrix d = ctx.run(gemm::Backend::kCublasFp32, a, b);
  static_cast<void>(d);
  const std::vector<CallRecord> records = drain_call_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GT(records[0].total_ns, 0u);
  EXPECT_EQ(records[0].split_ns, 0u);
  EXPECT_EQ(records[0].pack_ns, 0u);
  EXPECT_EQ(records[0].mma_ns, 0u);
  EXPECT_EQ(records[0].scheme, -1);
}

// -- registry latency histograms ---------------------------------------------

TEST(LatencyHistogram, MacroRecordsIntoSnapshot) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  for (int i = 0; i < 100; ++i) {
    EGEMM_LATENCY_RECORD("test.telemetry.latency", 1000 + i);
  }
  const MetricsSnapshot snap = registry().snapshot();
  const auto it =
      std::find_if(snap.latencies.begin(), snap.latencies.end(),
                   [](const LatencySample& s) {
                     return s.name == "test.telemetry.latency";
                   });
  ASSERT_NE(it, snap.latencies.end());
  EXPECT_GE(it->count, 100u);
  EXPECT_GT(it->quantile(0.5), 0u);
  // p50 of 1000..1099 within the bucket bound of the exact value.
  EXPECT_NEAR(static_cast<double>(it->quantile(0.5)), 1050.0,
              kLatencyQuantileRelErr * 1100.0);
  // The JSON exporter carries a latency section keyed by name.
  const std::string json = metrics_json_block(snap, "");
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"test.telemetry.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
}

// -- OpenMetrics exposition --------------------------------------------------

TEST(OpenMetrics, ExpositionShape) {
  MetricsSnapshot snap;
  snap.counters.push_back(CounterSample{"egemm.calls", 42});
  snap.gauges.push_back(GaugeSample{"tcsim.isa-level", 2});
  HistogramSample hist;
  hist.name = "gemm.k";
  hist.buckets[3] = 5;
  hist.buckets[4] = 7;
  hist.count = 12;
  hist.sum = 123;
  snap.histograms.push_back(hist);
  LatencySample lat;
  lat.name = "egemm.execute.latency";
  lat.buckets.assign(kLatencyBuckets, 0);
  lat.buckets[latency_bucket_index(1000)] = 9;
  lat.buckets[latency_bucket_index(64000)] = 1;
  lat.count = 10;
  lat.sum = 73000;
  snap.latencies.push_back(lat);

  const std::string text = openmetrics_text(snap);
  // Names sanitized, counters suffixed _total, document ends with # EOF.
  EXPECT_NE(text.find("# TYPE egemm_calls counter\negemm_calls_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("tcsim_isa_level 2\n"), std::string::npos);
  // Bit-width histogram: cumulative buckets, inclusive upper bounds.
  EXPECT_NE(text.find("gemm_k_bucket{le=\"7\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("gemm_k_bucket{le=\"15\"} 12\n"), std::string::npos);
  EXPECT_NE(text.find("gemm_k_bucket{le=\"+Inf\"} 12\n"), std::string::npos);
  EXPECT_NE(text.find("gemm_k_count 12\n"), std::string::npos);
  // Latency histogram in seconds with cumulative buckets.
  EXPECT_NE(text.find("# TYPE egemm_execute_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("egemm_execute_latency_seconds_bucket{le=\"+Inf\"} 10\n"),
      std::string::npos);
  EXPECT_NE(text.find("egemm_execute_latency_seconds_sum 7.3e-05\n"),
            std::string::npos);
  EXPECT_TRUE(text.ends_with("# EOF\n"));
  // Cumulative bucket counts never decrease and end at _count.
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  while ((pos = text.find("egemm_execute_latency_seconds_bucket{le=",
                          pos)) != std::string::npos) {
    const std::size_t brace = text.find("} ", pos);
    ASSERT_NE(brace, std::string::npos);
    const std::uint64_t cumulative =
        std::strtoull(text.c_str() + brace + 2, nullptr, 10);
    EXPECT_GE(cumulative, prev);
    prev = cumulative;
    pos = brace;
  }
  EXPECT_EQ(prev, 10u);
}

TEST(OpenMetrics, FormatParsing) {
  MetricsFormat format = MetricsFormat::kJson;
  EXPECT_TRUE(parse_metrics_format("openmetrics", format));
  EXPECT_EQ(format, MetricsFormat::kOpenMetrics);
  EXPECT_TRUE(parse_metrics_format("json", format));
  EXPECT_EQ(format, MetricsFormat::kJson);
  EXPECT_FALSE(parse_metrics_format("xml", format));
  EXPECT_NE(render_metrics(MetricsSnapshot{}, MetricsFormat::kOpenMetrics)
                .find("# EOF"),
            std::string::npos);
}

// -- trace drop accounting ---------------------------------------------------

TEST(TraceDrops, CapBumpsDroppedSpansCounter) {
  if (!kEnabled) GTEST_SKIP() << "observability compiled out";
  clear_trace();
  set_trace_buffer_capacity(4);
  set_tracing(true);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("telemetry-test-span");
  }
  set_tracing(false);
  set_trace_buffer_capacity(0);  // restore default
  EXPECT_GE(dropped_trace_events(), 6u);
  EXPECT_GE(registry().counter("trace.dropped_spans").value(), 6u);
  clear_trace();
}

}  // namespace
}  // namespace egemm::obs
