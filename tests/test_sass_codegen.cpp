// Tests for the SASS code generator (sass/codegen.hpp) and its agreement
// with the block-level instruction-shape accounting.
#include "sass/codegen.hpp"

#include <gtest/gtest.h>

#include "sass/verifier.hpp"
#include "tcsim/instruction.hpp"

namespace egemm::sass {
namespace {

CodegenParams table4_params(std::uint32_t iters = 8) {
  CodegenParams params;
  params.k_iterations = iters;
  return params;
}

std::uint64_t count_op(const std::vector<Instr>& instrs, Op op) {
  std::uint64_t total = 0;
  for (const Instr& instr : instrs) {
    if (instr.op == op) ++total;
  }
  return total;
}

TEST(SassCodegen, WarpShapeMatchesHandDerivation) {
  const WarpShape ws = warp_shape(gemm::table4_config(), 4);
  EXPECT_EQ(ws.steps, 4u);
  EXPECT_EQ(ws.ldg_per_iter, 8u);   // 64 block LDG.128 over 8 warps
  EXPECT_EQ(ws.sts_per_iter, 8u);
  EXPECT_EQ(ws.lds_per_step, 6u);   // 3072 B / 512 B
  EXPECT_EQ(ws.hmma_per_step, 64u); // 16 tiles x 4 emulation terms
  EXPECT_EQ(ws.tile_positions, 16u);
}

TEST(SassCodegen, WarpShapeAgreesWithBlockShape) {
  // Per-warp SASS counts x warps must equal the SM-aggregate stream's
  // per-iteration counts (tcsim::egemm_iteration_shape).
  const gemm::TileConfig tile = gemm::table4_config();
  const tcsim::EgemmStreamOptions opts{};
  const tcsim::IterationShape block = tcsim::egemm_iteration_shape(
      tile.bm, tile.bn, tile.bk, tile.wm, tile.wn, tile.wk, opts);
  const WarpShape warp = warp_shape(tile, 4);
  const auto warps = static_cast<std::uint32_t>(tile.warps_per_block());
  EXPECT_EQ(warp.ldg_per_iter * warps, block.ldg);
  EXPECT_EQ(warp.sts_per_iter * warps, block.sts);
  // LDS.128 moves 4x the 128-byte LDS.32 unit.
  EXPECT_EQ(warp.lds_per_step * warps * 4, block.lds_per_step);
  EXPECT_EQ(warp.hmma_per_step * warps, block.hmma_per_step);
}

TEST(SassCodegen, BodyCarriesTheExpectedInstructionMix) {
  const Kernel kernel = generate_egemm_kernel(table4_params());
  const WarpShape ws = warp_shape(gemm::table4_config(), 4);
  EXPECT_EQ(count_op(kernel.body, Op::kLds), ws.lds_per_step * ws.steps);
  EXPECT_EQ(count_op(kernel.body, Op::kHmma), ws.hmma_per_step * ws.steps);
  EXPECT_EQ(count_op(kernel.body, Op::kLdg), ws.ldg_per_iter);
  EXPECT_EQ(count_op(kernel.body, Op::kSts), ws.sts_per_iter);
  EXPECT_EQ(count_op(kernel.body, Op::kBar), 2u);
  EXPECT_EQ(count_op(kernel.body, Op::kBra), 1u);
}

TEST(SassCodegen, PrologueColdStartAndEpilogueStore) {
  const Kernel kernel = generate_egemm_kernel(table4_params());
  EXPECT_EQ(count_op(kernel.prologue, Op::kLdg), 8u);
  EXPECT_EQ(count_op(kernel.prologue, Op::kSts), 8u);
  EXPECT_EQ(count_op(kernel.epilogue, Op::kStg), 16u);  // wm*wn*4B / 512B
  EXPECT_EQ(kernel.epilogue.back().op, Op::kExit);
  EXPECT_EQ(kernel.loop_trips, 8u);
}

TEST(SassCodegen, StagesAreTagged) {
  const Kernel kernel = generate_egemm_kernel(table4_params());
  bool saw_stage0 = false, saw_stage1 = false;
  for (const Instr& instr : kernel.prologue) {
    saw_stage0 |= instr.stage == 0;
    saw_stage1 |= instr.stage == 1;
  }
  EXPECT_TRUE(saw_stage0);
  EXPECT_TRUE(saw_stage1);
  for (const Instr& instr : kernel.body) EXPECT_EQ(instr.stage, 2);
  for (const Instr& instr : kernel.epilogue) EXPECT_EQ(instr.stage, 3);
}

TEST(SassCodegen, NaiveKernelIsHazardFree) {
  const Kernel kernel = generate_egemm_kernel(table4_params());
  const std::vector<Violation> violations = verify_kernel(kernel, 3);
  for (const Violation& v : violations) {
    ADD_FAILURE() << v.where << "[" << v.index << "]: " << v.message;
  }
}

TEST(SassCodegen, DekkerScheduleQuadruplesHmma) {
  CodegenParams dekker = table4_params();
  dekker.emulation_instructions = 16;
  const Kernel alg1 = generate_egemm_kernel(table4_params());
  const Kernel dk = generate_egemm_kernel(dekker);
  EXPECT_EQ(count_op(dk.body, Op::kHmma), 4 * count_op(alg1.body, Op::kHmma));
  EXPECT_EQ(count_op(dk.body, Op::kLds), count_op(alg1.body, Op::kLds));
}

TEST(SassCodegen, VirtualRegistersAreDense) {
  const Kernel kernel = generate_egemm_kernel(table4_params());
  EXPECT_GT(kernel.virtual_regs, 0);
  auto check = [&kernel](const std::vector<Instr>& instrs) {
    for (const Instr& instr : instrs) {
      if (instr.dst.valid()) {
        EXPECT_LE(instr.dst.index + instr.dst.width, kernel.virtual_regs);
      }
      for (const RegRange& src : instr.srcs) {
        EXPECT_LE(src.index + src.width, kernel.virtual_regs);
      }
    }
  };
  check(kernel.prologue);
  check(kernel.body);
  check(kernel.epilogue);
}

}  // namespace
}  // namespace egemm::sass
