// Tests for the bit-accurate Tensor Core model (tcsim/tensor_core.hpp).
#include "tcsim/tensor_core.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "fp/float_bits.hpp"
#include "util/rng.hpp"

namespace egemm::tcsim {
namespace {

std::vector<fp::Half> random_halves(std::size_t n, util::Xoshiro256& rng,
                                    float lo = -1.0f, float hi = 1.0f) {
  std::vector<fp::Half> out(n);
  for (auto& h : out) h = fp::Half(rng.uniform(lo, hi));
  return out;
}

TEST(TensorCore, ProductOfHalvesIsExactInFloat) {
  // The model's foundation: any binary16 x binary16 product fits binary32.
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 100000; ++trial) {
    const fp::Half a(rng.uniform(-100.0f, 100.0f));
    const fp::Half b(rng.uniform(-100.0f, 100.0f));
    const double exact = a.to_double() * b.to_double();
    const float prod = a.to_float() * b.to_float();
    EXPECT_EQ(static_cast<double>(prod), exact);
  }
}

TEST(TensorCore, DotMatchesPairChainedReference) {
  // Hand-evaluate the modeled accumulation: adjacent-pair product sums
  // chained onto the accumulator starting from C.
  std::vector<fp::Half> a(8), b(8);
  for (int i = 0; i < 8; ++i) {
    a[static_cast<std::size_t>(i)] = fp::Half(0.1f * static_cast<float>(i + 1));
    b[static_cast<std::size_t>(i)] = fp::Half(0.25f);
  }
  float acc = 0.5f;
  for (int i = 0; i < 8; i += 2) {
    acc += a[static_cast<std::size_t>(i)].to_float() *
               b[static_cast<std::size_t>(i)].to_float() +
           a[static_cast<std::size_t>(i + 1)].to_float() *
               b[static_cast<std::size_t>(i + 1)].to_float();
  }
  EXPECT_EQ(tc_dot(a, b, 0.5f), acc);
}

TEST(TensorCore, DotHandlesNonMultipleOfFourK) {
  util::Xoshiro256 rng(2);
  for (const std::size_t k : {1u, 2u, 3u, 5u, 7u, 13u}) {
    const auto a = random_halves(k, rng);
    const auto b = random_halves(k, rng);
    const float result = tc_dot(a, b, 0.0f);
    const double exact = probe_dot_double(a, b, 0.0);
    EXPECT_NEAR(result, exact, 1e-5) << "k=" << k;
  }
}

TEST(TensorCore, AgreesWithFloatProbeTo21Bits) {
  // The profiling claim, asserted directly at the primitive level: the TC
  // result stays within 2^-21 of the sequential binary32 result relative
  // to the accumulated magnitude, for every trial.
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto a = random_halves(16, rng);
    const auto b = random_halves(16, rng);
    const float c = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
    const float tc = tc_dot(a, b, c);
    const float probe = probe_dot_float(a, b, c);
    double scale = std::fabs(static_cast<double>(c));
    for (std::size_t i = 0; i < a.size(); ++i) {
      scale += std::fabs(a[i].to_double() * b[i].to_double());
    }
    EXPECT_LE(std::fabs(static_cast<double>(tc) - static_cast<double>(probe)),
              scale * 0x1.0p-21);
  }
}

TEST(TensorCore, TypicallyMatchesFloatProbeTo21MantissaBitsBitwise) {
  // The artifact-style bitwise comparison. The typical trial agrees on
  // >= 21 leading mantissa bits; the exceptions are trials whose dot
  // product cancels toward zero, where a few-ulp absolute difference
  // dominates the tiny result (EXPERIMENTS.md discusses this caveat to the
  // paper's "all 10,000 trials" phrasing).
  util::Xoshiro256 rng(3);
  int ge21 = 0, ge18 = 0;
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto a = random_halves(16, rng);
    const auto b = random_halves(16, rng);
    const float c = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
    const int bits = fp::matching_mantissa_bits(tc_dot(a, b, c),
                                                probe_dot_float(a, b, c));
    if (bits >= 21) ++ge21;
    if (bits >= 18) ++ge18;
  }
  EXPECT_GT(ge21, kTrials * 88 / 100);
  EXPECT_GT(ge18, kTrials * 97 / 100);
}

TEST(TensorCore, FarFromHalfProbe) {
  util::Xoshiro256 rng(4);
  double max_half_err = 0.0, max_tc_err = 0.0;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = random_halves(16, rng);
    const auto b = random_halves(16, rng);
    const double exact = probe_dot_double(a, b, 0.0);
    max_half_err = std::max(
        max_half_err, std::fabs(static_cast<double>(probe_dot_half(a, b, 0.0f)) - exact));
    max_tc_err = std::max(
        max_tc_err, std::fabs(static_cast<double>(tc_dot(a, b, 0.0f)) - exact));
  }
  // Binary16 accumulation is orders of magnitude worse than the TC model.
  EXPECT_GT(max_half_err, 50.0 * max_tc_err);
}

TEST(TensorCore, BrokenCoreMatchesHalfProbe) {
  util::Xoshiro256 rng(5);
  const auto a = random_halves(16, rng);
  const auto b = random_halves(16, rng);
  EXPECT_EQ(broken_tc_dot(a, b, 0.25f), probe_dot_half(a, b, 0.25f));
}

TEST(TensorCore, MmaSyncMatchesTcDotPerElement) {
  util::Xoshiro256 rng(6);
  FragmentA a;
  FragmentB b;
  FragmentAcc c, d;
  for (int i = 0; i < kTcM; ++i) {
    for (int k = 0; k < kTcK; ++k) a.at(i, k) = fp::Half(rng.uniform(-1, 1));
  }
  for (int k = 0; k < kTcK; ++k) {
    for (int j = 0; j < kTcN; ++j) b.at(k, j) = fp::Half(rng.uniform(-1, 1));
  }
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) c.at(i, j) = rng.uniform(-1, 1);
  }
  mma_sync(d, a, b, c);
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      std::vector<fp::Half> arow(kTcK), bcol(kTcK);
      for (int k = 0; k < kTcK; ++k) {
        arow[static_cast<std::size_t>(k)] = a.at(i, k);
        bcol[static_cast<std::size_t>(k)] = b.at(k, j);
      }
      EXPECT_EQ(d.at(i, j), tc_dot(arow, bcol, c.at(i, j)))
          << "element (" << i << "," << j << ")";
    }
  }
}

TEST(TensorCore, MmaTileF32MatchesMmaSync) {
  util::Xoshiro256 rng(7);
  FragmentA a;
  FragmentB b;
  FragmentAcc c, d;
  float af[kTcM * kTcK], bf[kTcK * kTcN], df[kTcM * kTcN];
  for (int i = 0; i < kTcM; ++i) {
    for (int k = 0; k < kTcK; ++k) {
      a.at(i, k) = fp::Half(rng.uniform(-1, 1));
      af[i * kTcK + k] = a.at(i, k).to_float();
    }
  }
  for (int k = 0; k < kTcK; ++k) {
    for (int j = 0; j < kTcN; ++j) {
      b.at(k, j) = fp::Half(rng.uniform(-1, 1));
      bf[k * kTcN + j] = b.at(k, j).to_float();
    }
  }
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      c.at(i, j) = rng.uniform(-1, 1);
      df[i * kTcN + j] = c.at(i, j);
    }
  }
  mma_sync(d, a, b, c);
  mma_tile_f32(df, kTcN, af, kTcK, bf, kTcN, kTcM, kTcN, kTcK);
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      EXPECT_EQ(df[i * kTcN + j], d.at(i, j));
    }
  }
}

TEST(TensorCore, TcDotMatchesMmaSyncBitwiseOnRandomInputs) {
  // The dedup contract: tc_dot and mma_sync reduce to the same shared
  // pair-sum core, so for matching operands the per-element results must be
  // bitwise identical -- not merely close.
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    FragmentA a;
    FragmentB b;
    FragmentAcc c, d;
    for (int i = 0; i < kTcM; ++i) {
      for (int k = 0; k < kTcK; ++k) {
        a.at(i, k) = fp::Half(rng.uniform(-4.0f, 4.0f));
      }
    }
    for (int k = 0; k < kTcK; ++k) {
      for (int j = 0; j < kTcN; ++j) {
        b.at(k, j) = fp::Half(rng.uniform(-4.0f, 4.0f));
      }
    }
    for (int i = 0; i < kTcM; ++i) {
      for (int j = 0; j < kTcN; ++j) c.at(i, j) = rng.uniform(-4.0f, 4.0f);
    }
    mma_sync(d, a, b, c);
    std::vector<fp::Half> arow(kTcK), bcol(kTcK);
    for (int i = 0; i < kTcM; ++i) {
      for (int j = 0; j < kTcN; ++j) {
        for (int k = 0; k < kTcK; ++k) {
          arow[static_cast<std::size_t>(k)] = a.at(i, k);
          bcol[static_cast<std::size_t>(k)] = b.at(k, j);
        }
        ASSERT_EQ(d.at(i, j), tc_dot(arow, bcol, c.at(i, j)))
            << "trial " << trial << " element (" << i << "," << j << ")";
      }
    }
  }
}

TEST(TensorCore, TcDotVariantsAgreeBitwiseIncludingOddK) {
  // tc_dot (Half spans) and tc_dot_f32 (pre-widened floats) share the same
  // core; odd k exercises the single-product remainder.
  util::Xoshiro256 rng(10);
  for (const std::size_t k : {1u, 2u, 3u, 5u, 8u, 13u, 15u, 16u, 17u, 31u}) {
    for (int trial = 0; trial < 50; ++trial) {
      const auto a = random_halves(k, rng, -4.0f, 4.0f);
      const auto b = random_halves(k, rng, -4.0f, 4.0f);
      std::vector<float> af(k), bf(k);
      for (std::size_t i = 0; i < k; ++i) {
        af[i] = a[i].to_float();
        bf[i] = b[i].to_float();
      }
      const float c = rng.uniform(-4.0f, 4.0f);
      EXPECT_EQ(tc_dot(a, b, c),
                tc_dot_f32(af.data(), bf.data(), static_cast<int>(k), c))
          << "k=" << k << " trial=" << trial;
    }
  }
}

TEST(TensorCore, MmaBlockPackedMatchesMmaTileF32Bitwise) {
  // The packed block kernel against the strided tile path, including the
  // odd-k remainder and k < kTcK slabs. A is packed with leading dimension
  // lda >= k (a k-slab of a wider pack); B is k contiguous rows of kTcN.
  util::Xoshiro256 rng(11);
  for (const int k : {1, 2, 3, 7, 15, 16}) {
    const std::size_t lda = 24;  // slab inside a wider pack row
    std::vector<float> a(kTcM * lda), b(static_cast<std::size_t>(k) * kTcN);
    for (auto& v : a) v = fp::Half(rng.uniform(-2.0f, 2.0f)).to_float();
    for (auto& v : b) v = fp::Half(rng.uniform(-2.0f, 2.0f)).to_float();
    std::vector<float> acc_packed(kTcM * kTcN), acc_ref(kTcM * kTcN);
    for (std::size_t i = 0; i < acc_packed.size(); ++i) {
      acc_packed[i] = acc_ref[i] = rng.uniform(-1.0f, 1.0f);
    }
    mma_block_packed(acc_packed.data(), a.data(), lda, b.data(), k);
    mma_tile_f32(acc_ref.data(), kTcN, a.data(), lda, b.data(), kTcN, kTcM,
                 kTcN, k);
    for (std::size_t i = 0; i < acc_packed.size(); ++i) {
      ASSERT_EQ(acc_packed[i], acc_ref[i]) << "k=" << k << " flat=" << i;
    }
  }
}

TEST(Fragment, LoadStoreRoundTrip) {
  std::vector<float> memory(20 * 32, 0.0f);
  util::Xoshiro256 rng(8);
  for (auto& v : memory) v = rng.uniform(-1, 1);
  Fragment<float, 16, 16> frag;
  frag.load(std::span<const float>(memory), 32);
  EXPECT_EQ(frag.at(0, 0), memory[0]);
  EXPECT_EQ(frag.at(1, 0), memory[32]);
  EXPECT_EQ(frag.at(15, 15), memory[15 * 32 + 15]);
  std::vector<float> out(20 * 32, 0.0f);
  frag.store(std::span<float>(out), 32);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      EXPECT_EQ(out[static_cast<std::size_t>(r * 32 + c)],
                memory[static_cast<std::size_t>(r * 32 + c)]);
    }
  }
}

TEST(Fragment, FillSetsEveryElement) {
  FragmentAcc frag;
  frag.fill(3.5f);
  for (const float v : frag.flat()) EXPECT_EQ(v, 3.5f);
}

}  // namespace
}  // namespace egemm::tcsim
