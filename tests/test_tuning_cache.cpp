// Tests for the shape-class autotuning cache (model/tuning_cache.hpp):
// power-of-two shape bucketing, staleness rejection (wrong schema or
// version never crashes, only falls back), the to_json/load_file round
// trip, ISA-tier preference on lookup, the gemm.tune.{hit,miss,fallback}
// counters, the file-level inline-threshold knob, and -- the layer above
// -- GemmPlan provably adopting a tuned grain/tile with an analytic-solver
// fallback when the tuned tile is infeasible or the file is absent.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gemm/plan.hpp"
#include "gemm/tiling.hpp"
#include "model/analytic_model.hpp"
#include "model/solver.hpp"
#include "model/tuning_cache.hpp"
#include "obs/metrics.hpp"
#include "simd/isa.hpp"
#include "tcsim/gpu_spec.hpp"

namespace egemm::model {
namespace {

/// Every test leaves the process-wide tuning state exactly as it found a
/// fresh process: no loaded table, no env-file memo, no threshold
/// override. The constructor also scrubs EGEMM_TUNING_FILE so a CI job
/// that exports it for the bench harness cannot leak into these tests.
struct GlobalTuningGuard {
  GlobalTuningGuard() {
    ::unsetenv("EGEMM_TUNING_FILE");
    TuningCache::global().clear();
    gemm::set_small_gemm_inline_threshold(0);
  }
  GlobalTuningGuard(const GlobalTuningGuard&) = delete;
  GlobalTuningGuard& operator=(const GlobalTuningGuard&) = delete;
  ~GlobalTuningGuard() {
    TuningCache::global().clear();
    gemm::set_small_gemm_inline_threshold(0);
  }
};

/// A unique temp-file path per call; removed by TempFile's destructor.
struct TempFile {
  explicit TempFile(const std::string& contents) {
    static int counter = 0;
    path = ::testing::TempDir() + "egemm_tuning_test_" +
           std::to_string(::getpid()) + "_" + std::to_string(counter++) +
           ".json";
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
  ~TempFile() { std::remove(path.c_str()); }

  std::string path;
};

TuningEntry make_entry(std::size_t m, std::size_t n, std::size_t k,
                       std::size_t grain, const std::string& isa) {
  TuningEntry entry;
  entry.shape = tuning_shape_class(m, n, k);
  entry.tile = gemm::table4_config();
  entry.grain = grain;
  entry.engine = "packed";
  entry.isa = isa;
  entry.ns_per_call = 1000.0;
  entry.gflops = 1.0;
  return entry;
}

std::uint64_t counter_value(const char* name) {
  for (const auto& counter : obs::registry().snapshot().counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

// -- shape classes -----------------------------------------------------------

TEST(TuningShapeClass, BucketsEachExtentToItsNextPowerOfTwo) {
  const TuningShapeClass cls = tuning_shape_class(65, 100, 1);
  EXPECT_EQ(cls.m, 128u);
  EXPECT_EQ(cls.n, 128u);
  EXPECT_EQ(cls.k, 1u);
  EXPECT_EQ(tuning_shape_class_name(cls), "128x128x1");
  // Exact powers are their own bucket; everything above 1024 shares one
  // "large" class per axis.
  EXPECT_EQ(tuning_shape_class(64, 64, 64),
            (TuningShapeClass{64, 64, 64}));
  EXPECT_EQ(tuning_shape_class(1025, 4096, 1 << 20),
            (TuningShapeClass{2048, 2048, 2048}));
}

// -- load / staleness --------------------------------------------------------

TEST(TuningCacheLoad, AbsentFileIsRejectedAndLookupReportsNoFile) {
  const GlobalTuningGuard guard;
  TuningCache cache;
  std::string error;
  EXPECT_FALSE(cache.load_file("/nonexistent/egemm-tuning.json", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
  EXPECT_FALSE(cache.loaded());
  TuningEntry entry;
  EXPECT_EQ(cache.lookup(64, 64, 64, &entry), TuningLookup::kNoFile);
}

TEST(TuningCacheLoad, StaleVersionIsRejectedNotCrashed) {
  const GlobalTuningGuard guard;
  const TempFile file(R"({"schema": "egemm-tuning", "version": 999,
                          "entries": []})");
  TuningCache cache;
  std::string error;
  EXPECT_FALSE(cache.load_file(file.path, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  EXPECT_EQ(cache.lookup(64, 64, 64), TuningLookup::kNoFile);
}

TEST(TuningCacheLoad, ForeignSchemaIsRejected) {
  const GlobalTuningGuard guard;
  const TempFile file(R"({"schema": "other-tool", "version": 1,
                          "entries": []})");
  TuningCache cache;
  std::string error;
  EXPECT_FALSE(cache.load_file(file.path, &error));
  EXPECT_EQ(cache.lookup(64, 64, 64), TuningLookup::kNoFile);
}

TEST(TuningCacheLoad, MalformedJsonIsRejected) {
  const GlobalTuningGuard guard;
  const TempFile file("{\"schema\": \"egemm-tuning\", \"version\": 1,");
  TuningCache cache;
  EXPECT_FALSE(cache.load_file(file.path));
  EXPECT_EQ(cache.lookup(64, 64, 64), TuningLookup::kNoFile);
}

TEST(TuningCacheLoad, RejectedLoadClearsAPreviouslyGoodTable) {
  const GlobalTuningGuard guard;
  TuningCache cache;
  cache.set_entries({make_entry(64, 64, 64, 3, "scalar")});
  EXPECT_EQ(cache.lookup(64, 64, 64), TuningLookup::kHit);
  const TempFile stale(R"({"schema": "egemm-tuning", "version": 999,
                           "entries": []})");
  EXPECT_FALSE(cache.load_file(stale.path));
  EXPECT_EQ(cache.lookup(64, 64, 64), TuningLookup::kNoFile);
}

// -- round trip --------------------------------------------------------------

TEST(TuningCacheRoundTrip, ToJsonLoadsBackWithEveryField) {
  const GlobalTuningGuard guard;
  std::vector<TuningEntry> entries = {make_entry(64, 64, 64, 7, "scalar"),
                                      make_entry(128, 128, 128, 2, "scalar")};
  entries[1].engine = "reference";
  const std::string json =
      TuningCache::to_json(entries, "test-writer", std::size_t{4096});
  const TempFile file(json);
  TuningCache cache;
  std::string error;
  ASSERT_TRUE(cache.load_file(file.path, &error)) << error;
  EXPECT_TRUE(cache.loaded());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.source(), file.path);
  ASSERT_TRUE(cache.inline_threshold().has_value());
  EXPECT_EQ(*cache.inline_threshold(), 4096u);

  // Off-bucket shapes resolve through their class: (60, 50, 40) buckets
  // to 64x64x64.
  TuningEntry out;
  ASSERT_EQ(cache.lookup(60, 50, 40, &out), TuningLookup::kHit);
  EXPECT_EQ(out.grain, 7u);
  EXPECT_EQ(out.engine, "packed");
  EXPECT_EQ(out.tile, gemm::table4_config());
  ASSERT_EQ(cache.lookup(100, 128, 90, &out), TuningLookup::kHit);
  EXPECT_EQ(out.grain, 2u);
  EXPECT_EQ(out.engine, "reference");
  // A class the file does not cover is a miss, not a fallback.
  EXPECT_EQ(cache.lookup(512, 512, 512), TuningLookup::kMiss);
}

TEST(TuningCacheRoundTrip, LookupPrefersTheActiveIsaTier) {
  const GlobalTuningGuard guard;
  const std::string active = simd::active_isa_name();
  const std::string other = active == "scalar" ? "avx512" : "scalar";
  TuningCache cache;
  cache.set_entries({make_entry(64, 64, 64, 3, other),
                     make_entry(64, 64, 64, 9, active)});
  TuningEntry out;
  ASSERT_EQ(cache.lookup(64, 64, 64, &out), TuningLookup::kHit);
  EXPECT_EQ(out.isa, active);
  EXPECT_EQ(out.grain, 9u);
  // An any-tier entry still hits when no entry matches the active tier.
  cache.set_entries({make_entry(64, 64, 64, 3, other)});
  ASSERT_EQ(cache.lookup(64, 64, 64, &out), TuningLookup::kHit);
  EXPECT_EQ(out.grain, 3u);
}

TEST(TuningCacheRoundTrip, LookupBumpsTheOutcomeCounters) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const GlobalTuningGuard guard;
  TuningCache cache;
  const std::uint64_t fallback_before = counter_value("gemm.tune.fallback");
  EXPECT_EQ(cache.lookup(64, 64, 64), TuningLookup::kNoFile);
  EXPECT_EQ(counter_value("gemm.tune.fallback"), fallback_before + 1);
  cache.set_entries({make_entry(64, 64, 64, 1, "scalar")});
  const std::uint64_t hit_before = counter_value("gemm.tune.hit");
  const std::uint64_t miss_before = counter_value("gemm.tune.miss");
  EXPECT_EQ(cache.lookup(64, 64, 64), TuningLookup::kHit);
  EXPECT_EQ(cache.lookup(256, 256, 256), TuningLookup::kMiss);
  EXPECT_EQ(counter_value("gemm.tune.hit"), hit_before + 1);
  EXPECT_EQ(counter_value("gemm.tune.miss"), miss_before + 1);
}

// -- the inline-threshold knob -----------------------------------------------

TEST(TuningCacheThreshold, FileThresholdFlowsIntoTheGemmLayer) {
  const GlobalTuningGuard guard;
  const std::string json =
      TuningCache::to_json({}, "test-writer", std::size_t{777});
  const TempFile file(json);
  std::string error;
  ASSERT_TRUE(TuningCache::global().load_file(file.path, &error)) << error;
  EXPECT_EQ(gemm::small_gemm_inline_threshold(), 777u);
  // An explicit set_ wins over the file; 0 hands control back to it.
  gemm::set_small_gemm_inline_threshold(555);
  EXPECT_EQ(gemm::small_gemm_inline_threshold(), 555u);
  gemm::set_small_gemm_inline_threshold(0);
  EXPECT_EQ(gemm::small_gemm_inline_threshold(), 777u);
  // Without any file the built-in 64^3 default applies.
  TuningCache::global().clear();
  EXPECT_EQ(gemm::small_gemm_inline_threshold(), std::size_t{64} * 64 * 64);
}

// -- plan adoption (the layer the cache exists for) --------------------------

TEST(TuningCachePlan, PlanAdoptsTunedGrainAndFeasibleTile) {
  const GlobalTuningGuard guard;
  const SolverResult solved = solve(budget_from_spec(tcsim::tesla_t4()));
  ASSERT_TRUE(solved.found);
  ASSERT_GE(solved.feasible.size(), 2u);
  // A feasible tile that is NOT the solver's own pick, so adoption is
  // distinguishable from the fallback.
  const gemm::TileConfig tuned_tile = solved.feasible.back().config;
  ASSERT_FALSE(tuned_tile == solved.best);
  TuningEntry entry = make_entry(64, 64, 64, 5, simd::active_isa_name());
  entry.tile = tuned_tile;
  TuningCache::global().set_entries({entry});
  gemm::GemmContext ctx;
  const auto plan = ctx.plan(gemm::Backend::kEgemmTC, 64, 64, 64);
  EXPECT_EQ(plan->schedule_grain(), 5u);
  EXPECT_TRUE(plan->tile() == tuned_tile);
}

TEST(TuningCachePlan, InfeasibleTunedTileFallsBackToTheSolverTile) {
  const GlobalTuningGuard guard;
  const SolverResult solved = solve(budget_from_spec(tcsim::tesla_t4()));
  ASSERT_TRUE(solved.found);
  TuningEntry entry = make_entry(64, 64, 64, 5, simd::active_isa_name());
  entry.tile = gemm::TileConfig{999, 999, 999, 999, 999, 999};
  TuningCache::global().set_entries({entry});
  gemm::GemmContext ctx;
  const auto plan = ctx.plan(gemm::Backend::kEgemmTC, 64, 64, 64);
  // The grain is schedule-only and survives; the unschedulable tile does
  // not make it into the plan.
  EXPECT_EQ(plan->schedule_grain(), 5u);
  EXPECT_TRUE(plan->tile() == solved.best);
}

TEST(TuningCachePlan, WithoutAFilePlansFallBackToTheAnalyticSolver) {
  const GlobalTuningGuard guard;
  const SolverResult solved = solve(budget_from_spec(tcsim::tesla_t4()));
  ASSERT_TRUE(solved.found);
  gemm::GemmContext ctx;
  const auto plan = ctx.plan(gemm::Backend::kEgemmTC, 64, 64, 64);
  EXPECT_EQ(plan->schedule_grain(), 0u);
  EXPECT_TRUE(plan->tile() == solved.best);
}

TEST(TuningCachePlan, PlansAreBitIdenticalWithAndWithoutTuning) {
  const GlobalTuningGuard guard;
  const gemm::Matrix a = gemm::random_matrix(64, 64, -1.0f, 1.0f, 1701);
  const gemm::Matrix b = gemm::random_matrix(64, 64, -1.0f, 1.0f, 1702);
  gemm::GemmContext untuned_ctx;
  const gemm::Matrix untuned =
      untuned_ctx.run(gemm::Backend::kEgemmTC, a, b);
  TuningCache::global().set_entries(
      {make_entry(64, 64, 64, 13, simd::active_isa_name())});
  gemm::GemmContext tuned_ctx;
  const gemm::Matrix tuned = tuned_ctx.run(gemm::Backend::kEgemmTC, a, b);
  ASSERT_EQ(tuned.size(), untuned.size());
  EXPECT_EQ(std::memcmp(tuned.data().data(), untuned.data().data(),
                        tuned.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace egemm::model
