// Tests for the two-phase warp collaboration layouts (tcsim/warp_layout.hpp,
// §4 / Fig. 5).
#include "tcsim/warp_layout.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace egemm::tcsim {
namespace {

TEST(WarpLayout, PaperExampleSixteenByTwo) {
  // §4: "when loading a 16x16 block of data, it is much easier to program
  // with the 16x2 thread configuration than with the default 32x1".
  // 16x16 binary32 elements: 4 elements per 128-bit thread transaction ->
  // 4 threads per row would underuse the warp; the widest divisor-of-32
  // shape matching the row is x=4... with half elements (8 per thread)
  // a 16-wide row takes 2 threads -> 2x16. The paper's 16x2 arises for
  // 4-byte elements with 16-byte rows of 4 elements... verify our rule on
  // both element widths and that y = 32/x always.
  const ThreadLayout half16 = loading_layout(16, 16, 2);
  EXPECT_TRUE(half16.valid());
  EXPECT_EQ(half16.x * half16.y, 32);
  const ThreadLayout fp16x16 = loading_layout(16, 16, 4);
  EXPECT_TRUE(fp16x16.valid());
  EXPECT_EQ(fp16x16.x, 4);
  EXPECT_EQ(fp16x16.y, 8);
}

TEST(WarpLayout, ComputePhaseIsThirtyTwoByOne) {
  EXPECT_EQ(compute_layout().x, 32);
  EXPECT_EQ(compute_layout().y, 1);
  EXPECT_TRUE(compute_layout().valid());
}

struct LayoutCase {
  int rows, cols, element_bytes;
};

class SliceCoverageTest : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(SliceCoverageTest, SlicesAreDisjointAndCover) {
  const LayoutCase layout_case = GetParam();
  const ThreadLayout layout = loading_layout(
      layout_case.rows, layout_case.cols, layout_case.element_bytes);
  ASSERT_TRUE(layout.valid());
  const std::vector<ThreadSlice> slices = loading_slices(
      layout_case.rows, layout_case.cols, layout_case.element_bytes, layout);

  std::vector<std::vector<int>> touched(
      static_cast<std::size_t>(layout_case.rows),
      std::vector<int>(static_cast<std::size_t>(layout_case.cols), 0));
  for (const ThreadSlice& slice : slices) {
    EXPECT_GE(slice.thread, 0);
    EXPECT_LT(slice.thread, 32);
    for (int e = 0; e < slice.elements; ++e) {
      ASSERT_LT(slice.col + e, layout_case.cols);
      ++touched[static_cast<std::size_t>(slice.row)]
               [static_cast<std::size_t>(slice.col + e)];
    }
  }
  // Non-overlapping (§4) and complete coverage.
  for (const auto& row : touched) {
    for (const int count : row) EXPECT_EQ(count, 1);
  }
}

TEST_P(SliceCoverageTest, FullSlicesAre128Bits) {
  const LayoutCase layout_case = GetParam();
  const ThreadLayout layout = loading_layout(
      layout_case.rows, layout_case.cols, layout_case.element_bytes);
  for (const ThreadSlice& slice :
       loading_slices(layout_case.rows, layout_case.cols,
                      layout_case.element_bytes, layout)) {
    EXPECT_LE(slice.elements * layout_case.element_bytes, 16);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, SliceCoverageTest,
    ::testing::Values(LayoutCase{16, 16, 2}, LayoutCase{16, 16, 4},
                      LayoutCase{128, 32, 2},   // the Table 4 A block tile
                      LayoutCase{32, 128, 2},   // the Table 4 B block tile
                      LayoutCase{8, 64, 4}, LayoutCase{64, 8, 2},
                      LayoutCase{16, 20, 4}));  // ragged row length

TEST(BankModel, ConflictDegreeCountsDistinctWordsPerBank) {
  EXPECT_EQ(bank_conflict_degree({}), 0);
  EXPECT_EQ(bank_conflict_degree({0, 1, 2, 3}), 1);   // all different banks
  EXPECT_EQ(bank_conflict_degree({0, 32}), 2);        // same bank, new word
  EXPECT_EQ(bank_conflict_degree({0, 0, 0}), 1);      // broadcast is free
  EXPECT_EQ(bank_conflict_degree({5, 37, 69, 6}), 3);
}

TEST(BankModel, PaddedStagingPitchIsConflictFree) {
  // The padded Table 4 layout: bk = 32 halves staged at pitch bk + 4 = 36.
  EXPECT_EQ(staging_conflict_degree(32, 36), 1);
  // An unpadded power-of-two pitch also happens to be clean for the
  // row-major 128-bit staging stores (successive lanes walk the row).
  EXPECT_EQ(staging_conflict_degree(32, 32), 1);
  // A two-row (64-half) pitch folds the phase's two lane rows onto the
  // same banks.
  EXPECT_EQ(staging_conflict_degree(32, 64), 2);
}

TEST(BankModel, FragmentLoadsNeedThePaddedPitch) {
  // The fragment LDS reads a column of tile rows; with a 16-word row the
  // octet lands on two banks (4-way conflict), the 18-word padded row
  // spreads it across eight.
  EXPECT_EQ(fragment_conflict_degree(64, 36), 1);
  EXPECT_EQ(fragment_conflict_degree(64, 32), 4);
  EXPECT_EQ(fragment_conflict_degree(8, 36), 1);
}

TEST(WarpSharingMap, Table4FragmentsAreShared) {
  const WarpSharing sharing = warp_sharing(gemm::table4_config());
  // 2 row bands x 4 column bands of warps.
  ASSERT_EQ(sharing.a_bands.size(), 2u);
  ASSERT_EQ(sharing.b_bands.size(), 4u);
  // Each A band feeds 4 warps, each B band 2 warps (Fig. 5 sharing).
  for (const auto& band : sharing.a_bands) EXPECT_EQ(band.size(), 4u);
  for (const auto& band : sharing.b_bands) EXPECT_EQ(band.size(), 2u);
  // Every warp appears exactly once per dimension.
  std::vector<int> seen(8, 0);
  for (const auto& band : sharing.a_bands) {
    for (const int w : band) ++seen[static_cast<std::size_t>(w)];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(WarpSharingMap, SharingJustifiesSharedMemoryStaging) {
  // The point of Fig. 5: fragments consumed by >1 warp should be staged
  // once in shared memory rather than loaded per warp. Verify the sharing
  // factor matches the ratio between per-warp demand and the block tile.
  const gemm::TileConfig cfg = gemm::table4_config();
  const WarpSharing sharing = warp_sharing(cfg);
  const std::size_t a_sharing = sharing.a_bands.front().size();
  // Without sharing every warp would re-load its A band: total traffic
  // warps x band; with staging it is loaded once -- factor bn / wn.
  EXPECT_EQ(a_sharing, static_cast<std::size_t>(cfg.bn / cfg.wn));
  EXPECT_EQ(sharing.b_bands.front().size(),
            static_cast<std::size_t>(cfg.bm / cfg.wm));
}

}  // namespace
}  // namespace egemm::tcsim
