// Tests for the data-split algorithms (core/split.hpp, Fig. 4).
#include "core/split.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace egemm::core {
namespace {

double residual(float x, SplitMethod method) {
  const SplitHalves s = split_scalar(x, method);
  return std::fabs(static_cast<double>(x) - combine_scalar(s));
}

class SplitPropertyTest
    : public ::testing::TestWithParam<std::tuple<SplitMethod, std::uint64_t>> {
};

TEST_P(SplitPropertyTest, RepresentationErrorWithinBound) {
  const auto [method, seed] = GetParam();
  util::Xoshiro256 rng(seed);
  const double bound = split_error_bound(method, 1.0);
  for (int trial = 0; trial < 100000; ++trial) {
    const float x = rng.uniform(-1.0f, 1.0f);
    EXPECT_LE(residual(x, method), bound) << "x=" << x;
  }
}

TEST_P(SplitPropertyTest, HiIsTheRoundedHalf) {
  const auto [method, seed] = GetParam();
  const fp::Rounding mode = method == SplitMethod::kRoundSplit
                                ? fp::Rounding::kNearestEven
                                : fp::Rounding::kTowardZero;
  util::Xoshiro256 rng(seed);
  for (int trial = 0; trial < 50000; ++trial) {
    const float x = rng.uniform(-1.0f, 1.0f);
    const SplitHalves s = split_scalar(x, method);
    EXPECT_EQ(s.hi.bits(), fp::f32_to_f16_bits(x, mode));
  }
}

TEST_P(SplitPropertyTest, HalfRepresentableValuesSplitExactly) {
  const auto [method, seed] = GetParam();
  util::Xoshiro256 rng(seed);
  for (int trial = 0; trial < 50000; ++trial) {
    // Any value already in binary16 must split to (x, 0).
    const float x = fp::Half(rng.uniform(-1.0f, 1.0f)).to_float();
    const SplitHalves s = split_scalar(x, method);
    EXPECT_EQ(s.hi.to_float(), x);
    EXPECT_TRUE(s.lo.is_zero()) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndSeeds, SplitPropertyTest,
    ::testing::Combine(::testing::Values(SplitMethod::kRoundSplit,
                                         SplitMethod::kTruncateSplit),
                       ::testing::Values(17u, 99u)));

TEST(Split, TruncateResidualKeepsSign) {
  // Fig. 4a: with truncate-split the residual of a positive x is always
  // >= 0, so the sign bit of x_lo carries no information.
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 100000; ++trial) {
    const float x = rng.uniform(0.0f, 1.0f);
    const SplitHalves s = split_scalar(x, SplitMethod::kTruncateSplit);
    EXPECT_FALSE(s.lo.sign_bit() && !s.lo.is_zero()) << "x=" << x;
  }
}

TEST(Split, RoundSplitUsesTheSignBit) {
  // Fig. 4b: round-split produces negative residuals for about half of the
  // positive inputs -- that sign bit is the extra mantissa bit.
  util::Xoshiro256 rng(6);
  int negative = 0, total = 0;
  for (int trial = 0; trial < 100000; ++trial) {
    const float x = rng.uniform(0.0f, 1.0f);
    const SplitHalves s = split_scalar(x, SplitMethod::kRoundSplit);
    if (s.lo.is_zero()) continue;
    ++total;
    if (s.lo.sign_bit()) ++negative;
  }
  EXPECT_GT(negative, total / 4);
  EXPECT_LT(negative, 3 * total / 4);
}

TEST(Split, RoundSplitIsOneBitBetterOnAverage) {
  // §2.2: round-split achieves 1 extra mantissa bit, i.e. roughly half the
  // worst-case and mean representation error of truncate-split.
  util::Xoshiro256 rng(7);
  double sum_round = 0.0, sum_trunc = 0.0;
  double max_round = 0.0, max_trunc = 0.0;
  for (int trial = 0; trial < 200000; ++trial) {
    const float x = rng.uniform(-1.0f, 1.0f);
    const double r = residual(x, SplitMethod::kRoundSplit);
    const double t = residual(x, SplitMethod::kTruncateSplit);
    sum_round += r;
    sum_trunc += t;
    max_round = std::max(max_round, r);
    max_trunc = std::max(max_trunc, t);
  }
  EXPECT_LT(sum_round, 0.6 * sum_trunc);
  EXPECT_LT(max_round, 0.6 * max_trunc);
}

TEST(Split, EdgeCases) {
  for (const SplitMethod method :
       {SplitMethod::kRoundSplit, SplitMethod::kTruncateSplit}) {
    // Zeros split to zeros.
    EXPECT_TRUE(split_scalar(0.0f, method).hi.is_zero());
    EXPECT_TRUE(split_scalar(0.0f, method).lo.is_zero());
    EXPECT_TRUE(split_scalar(-0.0f, method).hi.sign_bit());
    // Max binary16 splits exactly.
    EXPECT_EQ(residual(65504.0f, method), 0.0);
    // Tiny values are fully captured by hi.
    EXPECT_EQ(residual(0x1.0p-20f, method), 0.0);
  }
  // Beyond the binary16 range the hi half saturates to infinity under
  // round-to-nearest, mirroring real Tensor Core input conversion.
  EXPECT_TRUE(split_scalar(1e6f, SplitMethod::kRoundSplit).hi.is_inf());
}

TEST(Split, SpanVariantsAgreeWithScalar) {
  util::Xoshiro256 rng(8);
  std::vector<float> input(257);
  for (auto& v : input) v = rng.uniform(-1.0f, 1.0f);
  std::vector<fp::Half> hi(input.size()), lo(input.size());
  std::vector<float> hif(input.size()), lof(input.size());
  split_span(input, hi, lo, SplitMethod::kRoundSplit);
  split_span_f32(input, hif, lof, SplitMethod::kRoundSplit);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const SplitHalves s = split_scalar(input[i], SplitMethod::kRoundSplit);
    EXPECT_EQ(hi[i].bits(), s.hi.bits());
    EXPECT_EQ(lo[i].bits(), s.lo.bits());
    EXPECT_EQ(hif[i], s.hi.to_float());
    EXPECT_EQ(lof[i], s.lo.to_float());
  }
}

TEST(Split, EffectiveMantissaBitsMeetTable1) {
  // Table 1: extended precision carries 21 mantissa bits. Verify that
  // round-split reconstructs values with at least 2^-21 relative accuracy
  // for magnitudes spanning several binades.
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 100000; ++trial) {
    const float x = rng.uniform(-8.0f, 8.0f);
    if (std::fabs(x) < 1e-3f) continue;
    const double rel = residual(x, SplitMethod::kRoundSplit) /
                       std::fabs(static_cast<double>(x));
    EXPECT_LE(rel, 0x1.0p-21) << "x=" << x;
  }
}

TEST(Split, MethodNames) {
  EXPECT_STREQ(split_method_name(SplitMethod::kRoundSplit), "round-split");
  EXPECT_STREQ(split_method_name(SplitMethod::kTruncateSplit),
               "truncate-split");
}

}  // namespace
}  // namespace egemm::core
