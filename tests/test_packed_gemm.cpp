// The packed execution engine's contract (DESIGN.md §10): bit-identical to
// the retained scalar reference across every shape, split method, combo
// order, and C-accumulation variant -- including shapes smaller than one
// tile, odd k, and k = 1, where the padding and remainder paths differ most
// between the two engines.
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/split.hpp"
#include "gemm/egemm.hpp"

namespace egemm::gemm {
namespace {

bool bitwise_equal(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         (x.data().empty() ||
          std::memcmp(x.data().data(), y.data().data(),
                      x.data().size() * sizeof(float)) == 0);
}

struct Shape {
  std::size_t m, n, k;
};

// Below-tile extents, odd k, k = 1, exact multiples, and ragged edges on
// every dimension.
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 1},     {16, 16, 16}, {16, 16, 3},
    {5, 3, 31},   {17, 16, 1},   {33, 65, 47}, {64, 64, 64},
    {128, 64, 96}, {16, 48, 17}, {2, 2, 2},    {31, 1, 63},
};

class PackedEngineTest : public ::testing::TestWithParam<Shape> {};

TEST_P(PackedEngineTest, BitIdenticalAcrossSplitsOrdersAndC) {
  const Shape s = GetParam();
  const Matrix a = random_matrix(s.m, s.k, -1, 1, 1000 + s.m + s.k);
  const Matrix b = random_matrix(s.k, s.n, -1, 1, 2000 + s.n + s.k);
  const Matrix c = random_matrix(s.m, s.n, -1, 1, 3000 + s.m + s.n);

  static constexpr Combo kAlg1[] = {
      {false, false}, {false, true}, {true, false}, {true, true}};
  for (const auto split : {core::SplitMethod::kRoundSplit,
                           core::SplitMethod::kTruncateSplit}) {
    for (const auto order :
         {ComboOrder::kFusedPerTile, ComboOrder::kSeparatePasses}) {
      for (const Matrix* cp : {static_cast<const Matrix*>(nullptr), &c}) {
        const Matrix packed = emulated_gemm(a, b, cp, split, kAlg1, order,
                                            ExecEngine::kPacked);
        const Matrix reference = emulated_gemm(a, b, cp, split, kAlg1, order,
                                               ExecEngine::kReference);
        EXPECT_TRUE(bitwise_equal(packed, reference))
            << "shape " << s.m << "x" << s.n << "x" << s.k
            << " split=" << core::split_method_name(split)
            << " order=" << (order == ComboOrder::kFusedPerTile ? "fused"
                                                                : "separate")
            << " c=" << (cp != nullptr);
      }
    }
  }
}

TEST_P(PackedEngineTest, ThreeSplitBitIdentical) {
  const Shape s = GetParam();
  const Matrix a = random_matrix(s.m, s.k, -1, 1, 4000 + s.m);
  const Matrix b = random_matrix(s.k, s.n, -1, 1, 5000 + s.n);
  const Matrix c = random_matrix(s.m, s.n, -1, 1, 6000 + s.k);
  EXPECT_TRUE(
      bitwise_equal(egemm_multiply_3split(a, b, &c, ExecEngine::kPacked),
                    egemm_multiply_3split(a, b, &c, ExecEngine::kReference)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedEngineTest, ::testing::ValuesIn(kShapes),
    [](const ::testing::TestParamInfo<Shape>& shape) {
      return std::to_string(shape.param.m) + "x" +
             std::to_string(shape.param.n) + "x" +
             std::to_string(shape.param.k);
    });

TEST(PackedEngine, EgemmMultiplyUsesPackedByDefault) {
  const Matrix a = random_matrix(40, 24, -1, 1, 7);
  const Matrix b = random_matrix(24, 56, -1, 1, 8);
  EgemmOptions reference;
  reference.engine = ExecEngine::kReference;
  EXPECT_TRUE(
      bitwise_equal(egemm_multiply(a, b), egemm_multiply(a, b, nullptr,
                                                         reference)));
}

TEST(PackedEngine, WideValueRangeStaysBitIdentical) {
  // Values spanning many binades (plus exact zeros) exercise the rounding
  // and subnormal paths of the batched split as well as -0/+0 handling in
  // the padded lanes.
  Matrix a = random_matrix(37, 29, -1024.0f, 1024.0f, 11);
  Matrix b = random_matrix(29, 41, -1e-6f, 1e-6f, 12);
  a.at(0, 0) = 0.0f;
  a.at(1, 1) = -0.0f;
  b.at(0, 0) = -0.0f;
  EgemmOptions packed, reference;
  reference.engine = ExecEngine::kReference;
  EXPECT_TRUE(bitwise_equal(egemm_multiply(a, b, nullptr, packed),
                            egemm_multiply(a, b, nullptr, reference)));
}

TEST(PackedEngine, SpecialValuesStayBitIdentical) {
  // NaN/Inf/signed-zero/denormal inputs: both engines must produce the
  // same bits, including the canonical NaN the modeled hardware emits
  // (payload-propagation differences between scalar and vector x86 code
  // are exactly what the canonicalizing store erases).
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const float kNan = std::nanf("");
  Matrix a = random_matrix(21, 19, -2, 2, 31);
  Matrix b = random_matrix(19, 23, -2, 2, 32);
  Matrix c = random_matrix(21, 23, -2, 2, 33);
  a.at(0, 0) = kNan;
  a.at(1, 2) = kInf;
  a.at(2, 4) = -kInf;
  a.at(3, 6) = 0x1.0p-140f;  // binary32 denormal
  a.at(4, 8) = -0.0f;
  a.at(5, 10) = 65520.0f;  // splits to an infinite hi plane
  b.at(0, 1) = kNan;
  b.at(2, 3) = kInf;
  b.at(4, 5) = 0.0f;  // meets Inf rows: 0 * Inf = NaN inside the dot
  b.at(6, 7) = 0x1.0p-149f;
  c.at(0, 5) = kNan;
  c.at(1, 6) = -kInf;

  EgemmOptions reference;
  reference.engine = ExecEngine::kReference;
  for (const Matrix* cp :
       {static_cast<const Matrix*>(nullptr), static_cast<const Matrix*>(&c)}) {
    const Matrix packed = egemm_multiply(a, b, cp);
    const Matrix scalar = egemm_multiply(a, b, cp, reference);
    EXPECT_TRUE(bitwise_equal(packed, scalar)) << "c=" << (cp != nullptr);
    // And the NaNs that do appear are canonical (positive quiet NaN).
    for (const float v : packed.data()) {
      if (std::isnan(v)) {
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        EXPECT_EQ(bits, 0x7fc00000u);
      }
    }
  }
}

TEST(PackedEngine, EmptyShapesAgreeAndHaveTheRightSize) {
  // m*n*k = 0: every combination of an empty extent must work on both
  // engines and agree bitwise (k = 0 means D is a copy of C).
  for (const auto [m, n, k] :
       {std::array<std::size_t, 3>{0, 4, 3}, std::array<std::size_t, 3>{4, 0, 3},
        std::array<std::size_t, 3>{4, 3, 0}, std::array<std::size_t, 3>{0, 0, 0}}) {
    const Matrix a = random_matrix(m, k, -1, 1, 41);
    const Matrix b = random_matrix(k, n, -1, 1, 42);
    const Matrix c = random_matrix(m, n, -1, 1, 43);
    EgemmOptions reference;
    reference.engine = ExecEngine::kReference;
    const Matrix packed = egemm_multiply(a, b, &c);
    const Matrix scalar = egemm_multiply(a, b, &c, reference);
    EXPECT_EQ(packed.rows(), m);
    EXPECT_EQ(packed.cols(), n);
    EXPECT_TRUE(bitwise_equal(packed, scalar))
        << m << "x" << n << "x" << k;
    if (k == 0 && m > 0 && n > 0) {
      EXPECT_TRUE(bitwise_equal(packed, c));  // D = C exactly
    }
  }
}

#ifndef NDEBUG
TEST(PackedEngine, SplitsEachInputExactlyOncePerCall) {
  // The plane cache is the point: one split + widen per input matrix per
  // GEMM call, no re-splitting anywhere downstream.
  const Matrix a = random_matrix(48, 33, -1, 1, 21);
  const Matrix b = random_matrix(33, 50, -1, 1, 22);
  const std::uint64_t before = core::debug_split_elements();
  (void)egemm_multiply(a, b);
  EXPECT_EQ(core::debug_split_elements() - before,
            a.data().size() + b.data().size());

  const std::uint64_t before3 = core::debug_split_elements();
  (void)egemm_multiply_3split(a, b);
  EXPECT_EQ(core::debug_split_elements() - before3,
            a.data().size() + b.data().size());
}
#endif

}  // namespace
}  // namespace egemm::gemm
