#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace egemm::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  EGEMM_EXPECTS(static_cast<bool>(task));
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    EGEMM_EXPECTS(!stopping_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    futures.push_back(submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& future : futures) future.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace egemm::util
