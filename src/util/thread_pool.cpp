#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace egemm::util {

namespace {

/// Set for the duration of worker_loop; identifies which pool (if any) the
/// calling thread belongs to, so nested parallel_for calls can run inline
/// instead of deadlocking a worker on its own queue.
thread_local const ThreadPool* tl_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::in_worker_thread() const noexcept {
  return tl_worker_pool == this;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  EGEMM_EXPECTS(static_cast<bool>(task));
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    EGEMM_EXPECTS(!stopping_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (in_worker_thread()) {
    // Nested call from our own worker: the caller already holds one of the
    // pool's threads, so run inline rather than blocking it on futures
    // that this same pool has to serve.
    body(0, count);
    return;
  }
  const std::size_t chunks = std::min(count, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    futures.push_back(submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& future : futures) future.get();
}

void ThreadPool::parallel_for_2d(
    std::size_t rows, std::size_t cols, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& body) {
  if (rows == 0 || cols == 0) return;
  if (in_worker_thread()) {
    body(0, rows, 0, cols);
    return;
  }
  const std::size_t cells = rows * cols;
  if (grain == 0) grain = cells / (size() * 8);
  grain = std::clamp<std::size_t>(grain, 1, cells);
  // Blocks as square as the grain allows, clipped to the grid: a square
  // block maximizes the number of independent blocks on skewed grids while
  // keeping per-block working sets compact.
  std::size_t block_cols = std::min(
      cols, static_cast<std::size_t>(
                std::ceil(std::sqrt(static_cast<double>(grain)))));
  std::size_t block_rows =
      std::min(rows, std::max<std::size_t>(1, grain / block_cols));
  // Degenerate grids: spend the whole grain along the long axis.
  if (block_rows == rows) {
    block_cols = std::min(cols, std::max<std::size_t>(1, grain / block_rows));
  }
  std::vector<std::future<void>> futures;
  futures.reserve(((rows + block_rows - 1) / block_rows) *
                  ((cols + block_cols - 1) / block_cols));
  for (std::size_t r0 = 0; r0 < rows; r0 += block_rows) {
    const std::size_t r1 = std::min(rows, r0 + block_rows);
    for (std::size_t c0 = 0; c0 < cols; c0 += block_cols) {
      const std::size_t c1 = std::min(cols, c0 + block_cols);
      futures.push_back(
          submit([&body, r0, r1, c0, c1] { body(r0, r1, c0, c1); }));
    }
  }
  for (auto& future : futures) future.get();
}

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace egemm::util
