#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace egemm::util {

namespace {

/// Set for the duration of worker_loop; identifies which pool (if any) the
/// calling thread belongs to, so nested parallel_for calls can run inline
/// instead of deadlocking a worker on its own queue.
thread_local const ThreadPool* tl_worker_pool = nullptr;

/// This thread's index in its pool; valid only when tl_worker_pool is set.
thread_local std::size_t tl_worker_index = 0;

std::uint64_t now_ns() noexcept { return obs::monotonic_ns(); }

/// Waits on EVERY future before rethrowing the first exception. Bailing on
/// the first throw would unwind the caller's frame while queued chunks
/// still hold references into it (the chunk lambdas capture `body` — and,
/// through it, the caller's locals — by reference).
void join_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  slots_ = std::make_unique<WorkerSlot[]>(threads);
  EGEMM_GAUGE_ADD("threadpool.workers", threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  EGEMM_GAUGE_ADD("threadpool.workers",
                  -static_cast<std::int64_t>(workers_.size()));
}

bool ThreadPool::in_worker_thread() const noexcept {
  return tl_worker_pool == this;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  EGEMM_EXPECTS(static_cast<bool>(task));
  // Busy-time/task accounting lives inside the packaged task (via an RAII
  // guard so a throwing task still counts): it is then sequenced before
  // the future is satisfied, so a caller that joined on the future always
  // observes the task in worker_stats().
  std::packaged_task<void()> packaged(
      [this, fn = std::move(task)] {
        struct TaskAccounting {
          WorkerSlot& slot;
          std::uint64_t run_start = now_ns();
          ~TaskAccounting() {
            const std::uint64_t run_ns = now_ns() - run_start;
            slot.busy_ns.fetch_add(run_ns, std::memory_order_relaxed);
            slot.tasks.fetch_add(1, std::memory_order_relaxed);
            EGEMM_COUNTER_ADD("threadpool.tasks", 1);
            EGEMM_COUNTER_ADD("threadpool.busy_ns", run_ns);
          }
        } accounting{slots_[tl_worker_index]};
        fn();
      });
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    EGEMM_EXPECTS(!stopping_);
    tasks_.push(std::move(packaged));
  }
  EGEMM_GAUGE_ADD("threadpool.queue_depth", 1);
  cv_.notify_one();
  return future;
}

void ThreadPool::record_inline_task() noexcept {
  // tl_worker_index belongs to the caller's own pool; when an outside
  // thread (or another pool's worker) runs inline here, bill slot 0.
  const std::size_t slot = tl_worker_pool == this ? tl_worker_index : 0;
  slots_[slot].inline_tasks.fetch_add(1, std::memory_order_relaxed);
  EGEMM_COUNTER_ADD("threadpool.inline_tasks", 1);
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(count, /*grain=*/0, body);
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (in_worker_thread() || size() <= 1) {
    // Nested call from our own worker: the caller already holds one of the
    // pool's threads, so run inline rather than blocking it on futures
    // that this same pool has to serve. A single-worker pool runs inline
    // for the same reason in spirit: it cannot overlap anything with the
    // blocked caller, so the handoff (queue mutex, cv wakeup, future
    // join) is pure cost -- on one-core hosts this is the difference
    // between a tiny GEMM and a tiny GEMM plus a thread round-trip.
    record_inline_task();
    body(0, count);
    return;
  }
  std::size_t chunks = std::min(count, std::max<std::size_t>(1, size() * 4));
  if (grain > 1) {
    chunks = std::min(chunks, (count + grain - 1) / grain);
  }
  const std::size_t chunk = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    futures.push_back(submit([&body, begin, end] { body(begin, end); }));
  }
  join_all(futures);
}

void ThreadPool::parallel_for_2d(
    std::size_t rows, std::size_t cols, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& body) {
  if (rows == 0 || cols == 0) return;
  if (in_worker_thread() || size() <= 1) {
    record_inline_task();
    body(0, rows, 0, cols);
    return;
  }
  const std::size_t cells = rows * cols;
  if (grain == 0) grain = cells / (size() * 8);
  grain = std::clamp<std::size_t>(grain, 1, cells);
  // Blocks as square as the grain allows, clipped to the grid: a square
  // block maximizes the number of independent blocks on skewed grids while
  // keeping per-block working sets compact.
  std::size_t block_cols = std::min(
      cols, static_cast<std::size_t>(
                std::ceil(std::sqrt(static_cast<double>(grain)))));
  std::size_t block_rows =
      std::min(rows, std::max<std::size_t>(1, grain / block_cols));
  // Degenerate grids: spend the whole grain along the long axis.
  if (block_rows == rows) {
    block_cols = std::min(cols, std::max<std::size_t>(1, grain / block_rows));
  }
  std::vector<std::future<void>> futures;
  futures.reserve(((rows + block_rows - 1) / block_rows) *
                  ((cols + block_cols - 1) / block_cols));
  for (std::size_t r0 = 0; r0 < rows; r0 += block_rows) {
    const std::size_t r1 = std::min(rows, r0 + block_rows);
    for (std::size_t c0 = 0; c0 < cols; c0 += block_cols) {
      const std::size_t c1 = std::min(cols, c0 + block_cols);
      futures.push_back(
          submit([&body, r0, r1, c0, c1] { body(r0, r1, c0, c1); }));
    }
  }
  join_all(futures);
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_worker_pool = this;
  tl_worker_index = index;
  obs::set_thread_name("pool-worker-" + std::to_string(index));
  WorkerSlot& slot = slots_[index];
  for (;;) {
    std::packaged_task<void()> task;
    const std::uint64_t wait_start = now_ns();
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    EGEMM_GAUGE_ADD("threadpool.queue_depth", -1);
    slot.idle_ns.fetch_add(now_ns() - wait_start, std::memory_order_relaxed);
    // Busy time and the task count are recorded inside the task wrapper
    // (see submit()) so they are visible before the future resolves.
    task();
  }
}

std::vector<WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> stats(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerSlot& slot = slots_[i];
    stats[i].tasks_executed = slot.tasks.load(std::memory_order_relaxed);
    stats[i].inline_tasks = slot.inline_tasks.load(std::memory_order_relaxed);
    stats[i].busy_ns = slot.busy_ns.load(std::memory_order_relaxed);
    stats[i].idle_ns = slot.idle_ns.load(std::memory_order_relaxed);
  }
  return stats;
}

WorkerStats ThreadPool::total_stats() const {
  WorkerStats total;
  for (const WorkerStats& stats : worker_stats()) {
    total.tasks_executed += stats.tasks_executed;
    total.inline_tasks += stats.inline_tasks;
    total.busy_ns += stats.busy_ns;
    total.idle_ns += stats.idle_ns;
  }
  return total;
}

std::size_t ThreadPool::queue_depth() const {
  const std::lock_guard lock(mutex_);
  return tasks_.size();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace egemm::util
