#pragma once
// Deterministic, seedable pseudo-random number generation for experiments.
//
// All experiments in the repository draw randomness through this header so
// every table/figure is reproducible from a seed printed in its output.
// The generator is xoshiro256++ (public domain, Blackman & Vigna), seeded
// through splitmix64 so that small consecutive seeds give independent
// streams.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace egemm::util {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform float in [lo, hi). Uses the top 24 bits for an unbiased mantissa.
  constexpr float uniform(float lo, float hi) noexcept {
    const auto bits = static_cast<std::uint32_t>((*this)() >> 40);  // 24 bits
    const float unit = static_cast<float>(bits) * 0x1.0p-24f;       // [0,1)
    return lo + (hi - lo) * unit;
  }

  /// Uniform double in [lo, hi) using 53 random bits.
  constexpr double uniform_double(double lo, double hi) noexcept {
    const auto bits = (*this)() >> 11;  // 53 bits
    const double unit = static_cast<double>(bits) * 0x1.0p-53;
    return lo + (hi - lo) * unit;
  }

  /// Uniform integer in [0, bound) by rejection (unbiased).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Standard-normal variates via the Marsaglia polar method.
class NormalSampler {
 public:
  explicit NormalSampler(std::uint64_t seed) noexcept : rng_(seed) {}

  double next() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    for (;;) {
      const double u = rng_.uniform_double(-1.0, 1.0);
      const double v = rng_.uniform_double(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        const double scale = sqrt_(-2.0 * log_(s) / s);
        cached_ = v * scale;
        has_cached_ = true;
        return u * scale;
      }
    }
  }

  Xoshiro256& rng() noexcept { return rng_; }

 private:
  static double sqrt_(double x) noexcept { return std::sqrt(x); }
  static double log_(double x) noexcept { return std::log(x); }

  Xoshiro256 rng_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace egemm::util
