#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>

namespace egemm::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    Option option;
    if (eq != std::string_view::npos) {
      option.name = std::string(body.substr(0, eq));
      option.value = std::string(body.substr(eq + 1));
    } else {
      option.name = std::string(body);
      // `--key value` form: consume the next token if it is not an option.
      if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        option.value = std::string(argv[i + 1]);
        ++i;
      }
    }
    options_.push_back(std::move(option));
  }
}

bool CliArgs::has_flag(std::string_view name) const {
  for (const auto& option : options_) {
    if (option.name == name) return true;
  }
  return false;
}

std::optional<std::string> CliArgs::value(std::string_view name) const {
  for (const auto& option : options_) {
    if (option.name == name) return option.value;
  }
  return std::nullopt;
}

std::int64_t CliArgs::value_or(std::string_view name,
                               std::int64_t fallback) const {
  const auto v = value(name);
  if (!v || v->empty()) return fallback;
  std::int64_t out = fallback;
  std::from_chars(v->data(), v->data() + v->size(), out);
  return out;
}

double CliArgs::value_or(std::string_view name, double fallback) const {
  const auto v = value(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

std::string CliArgs::value_or(std::string_view name,
                              std::string fallback) const {
  const auto v = value(name);
  return (v && !v->empty()) ? *v : fallback;
}

std::vector<std::int64_t> CliArgs::int_list_or(
    std::string_view name, std::vector<std::int64_t> fallback) const {
  const auto v = value(name);
  if (!v || v->empty()) return fallback;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < v->size()) {
    std::size_t comma = v->find(',', pos);
    if (comma == std::string::npos) comma = v->size();
    std::int64_t item = 0;
    std::from_chars(v->data() + pos, v->data() + comma, item);
    out.push_back(item);
    pos = comma + 1;
  }
  return out;
}

}  // namespace egemm::util
