#pragma once
// Minimal work-stealing-free thread pool used to parallelize functional
// GEMM tiles and Monte-Carlo profiling sweeps across host cores.
//
// Design notes (CppCoreGuidelines CP.*): all synchronization is confined to
// this class; user tasks communicate only through their own captured state
// and the returned futures, so callers never touch a mutex.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace egemm::util {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a nullary task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Splits [0, count) into roughly even chunks, runs `body(begin, end)` on
  /// the pool, and blocks until every chunk finished. Exceptions from tasks
  /// propagate to the caller (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool shared by the functional kernels.
ThreadPool& global_pool();

}  // namespace egemm::util
