#pragma once
// Minimal work-stealing-free thread pool used to parallelize functional
// GEMM tiles and Monte-Carlo profiling sweeps across host cores.
//
// Design notes (CppCoreGuidelines CP.*): all synchronization is confined to
// this class; user tasks communicate only through their own captured state
// and the returned futures, so callers never touch a mutex.
//
// Reentrancy: parallel_for / parallel_for_2d called from inside one of this
// pool's own workers run the body inline on the calling thread instead of
// enqueueing -- a nested call would otherwise park a worker on futures that
// only the same (possibly single-threaded) pool can serve.
//
// Single-worker pools (one-core hosts) also run parallel_for /
// parallel_for_2d inline on the caller: with the caller blocked there is
// one runnable thread either way, so the enqueue/wakeup/join round-trip
// buys nothing and costs a context switch per chunk. submit() still
// enqueues (its future IS the deliverable).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace egemm::util {

/// Per-worker execution counters (DESIGN.md §12). `inline_tasks` counts
/// parallel_for/parallel_for_2d bodies that ran inline on the calling
/// thread -- reentrant calls from the pool's own workers (whose run time
/// is already inside the enclosing task's `busy_ns`, so it is not
/// re-added) and whole-range calls on single-worker pools (billed to
/// slot 0).
struct WorkerStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t inline_tasks = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t idle_ns = 0;
};

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers.
  bool in_worker_thread() const noexcept;

  /// Enqueue a nullary task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Splits [0, count) into roughly even chunks, runs `body(begin, end)` on
  /// the pool, and blocks until every chunk finished. Exceptions from tasks
  /// propagate to the caller (first one wins). Called from a worker of this
  /// pool, the whole range runs inline on the calling thread.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// parallel_for with a lower bound on items per chunk: chunks never carry
  /// fewer than `grain` items (except the last), so fine-grained streams --
  /// the batched GEMM scheduler's flattened (item x tile) index space --
  /// keep per-chunk work above the dispatch overhead. grain 0 or 1 is the
  /// plain ~4-chunks-per-worker split above.
  void parallel_for(std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// 2D blocked schedule: splits the [0, rows) x [0, cols) grid into
  /// rectangular blocks of roughly `grain` cells each (0 picks a block size
  /// that yields ~8 blocks per worker) and runs
  /// body(row_begin, row_end, col_begin, col_end) per block on the pool.
  /// Blocks are as square as the grain allows, so skewed grids (tall-skinny
  /// GEMMs) still produce enough independent blocks to load-balance.
  /// Same blocking, exception, and reentrancy behavior as parallel_for.
  void parallel_for_2d(
      std::size_t rows, std::size_t cols, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t,
                               std::size_t)>& body);

  /// Point-in-time copy of every worker's counters (index = worker id).
  std::vector<WorkerStats> worker_stats() const;

  /// All workers' counters summed.
  WorkerStats total_stats() const;

  /// Tasks currently enqueued and not yet picked up.
  std::size_t queue_depth() const;

 private:
  /// One cache line per worker so the hot-path relaxed updates never
  /// false-share.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> inline_tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  void worker_loop(std::size_t index);
  void record_inline_task() noexcept;

  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerSlot[]> slots_;
  std::queue<std::packaged_task<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool shared by the functional kernels.
ThreadPool& global_pool();

}  // namespace egemm::util
