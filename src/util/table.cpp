#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace egemm::util {

void Table::set_header(std::vector<std::string> header) {
  EGEMM_EXPECTS(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  EGEMM_EXPECTS(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_footnote(std::string note) {
  footnotes_.push_back(std::move(note));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  total = std::max<std::size_t>(total, title_.size());

  os << title_ << '\n' << std::string(total, '=') << '\n';
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  for (const auto& note : footnotes_) os << "  note: " << note << '\n';
  os << '\n';
}

std::string fmt_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string fmt_sci(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*e", digits, value);
  return buffer;
}

std::string fmt_speedup(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2fx", value);
  return buffer;
}

}  // namespace egemm::util
