#pragma once
// Tiny command-line option parser shared by the bench binaries and
// examples. Supports `--flag`, `--key=value`, and `--key value` styles plus
// comma-separated integer lists (used for `--sizes=128,256,...`).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace egemm::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  bool has_flag(std::string_view name) const;

  std::optional<std::string> value(std::string_view name) const;

  std::int64_t value_or(std::string_view name, std::int64_t fallback) const;
  double value_or(std::string_view name, double fallback) const;
  std::string value_or(std::string_view name, std::string fallback) const;

  /// Parses `--name=a,b,c` into integers; returns fallback when absent.
  std::vector<std::int64_t> int_list_or(
      std::string_view name, std::vector<std::int64_t> fallback) const;

  /// Positional (non `--`) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  const std::string& program() const noexcept { return program_; }

 private:
  struct Option {
    std::string name;
    std::optional<std::string> value;
  };
  std::string program_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace egemm::util
