#pragma once
// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects() for expressing preconditions").
//
// EGEMM_EXPECTS(cond)  -- precondition; aborts with a diagnostic on failure.
// EGEMM_ENSURES(cond)  -- postcondition; same behaviour.
//
// Contracts are kept in release builds: this library backs numerical
// experiments where silently continuing past a violated precondition would
// corrupt results.

#include <cstdio>
#include <cstdlib>

namespace egemm::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "egemm: %s violated: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace egemm::detail

#define EGEMM_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                         \
          : ::egemm::detail::contract_failure("precondition", #cond,    \
                                              __FILE__, __LINE__))

#define EGEMM_ENSURES(cond)                                              \
  ((cond) ? static_cast<void>(0)                                         \
          : ::egemm::detail::contract_failure("postcondition", #cond,   \
                                              __FILE__, __LINE__))
