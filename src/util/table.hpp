#pragma once
// Plain-text table formatting for the benchmark harness. Every bench binary
// prints the rows/series of the paper table or figure it regenerates; this
// keeps the output format uniform and diffable.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace egemm::util {

/// A column-aligned text table with a title and optional footnotes.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void add_footnote(std::string note);

  /// Renders to the stream with box-drawing-free ASCII (CI friendly).
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footnotes_;
};

/// Fixed-precision float formatting helpers used by the bench binaries.
std::string fmt_fixed(double value, int digits);
std::string fmt_sci(double value, int digits);
std::string fmt_speedup(double value);

}  // namespace egemm::util
