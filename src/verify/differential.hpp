#pragma once
// Differential accuracy runner (DESIGN.md §11): pits every functional GEMM
// path against the double-double oracle and asserts each lands inside its
// a-priori error-model bound, element by element.
//
// Three kinds of checks per fuzz case:
//  * engine differential -- the case's emulation scheme (FuzzCase::scheme,
//    round-robined across the whole ladder by fuzz_plan) on the packed
//    engine must be bitwise identical to the retained scalar reference
//    engine, for every input class including non-finite values;
//  * oracle differential -- for finite cases, each path's per-element error
//    against the oracle must stay below its own scheme's worst-case bound
//    (a violation is a harness failure: either the kernel or the model is
//    wrong, and both are bugs);
//  * special-value cases (any NaN/Inf or split-overflow input) skip the
//    numeric bounds -- IEEE propagation makes the "exact" value a
//    convention, not a number -- but still run every path to prove the
//    kernels neither crash nor disagree between engines.
//
// Every reported failure carries the replayable one-line case descriptor
// (verify/fuzzer.hpp) so a nightly fuzz hit can be turned into a corpus
// entry under tests/corpus/ verbatim.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fp/error_stats.hpp"
#include "gemm/matrix.hpp"
#include "verify/error_model.hpp"
#include "verify/fuzzer.hpp"

namespace egemm::gemm {
class GemmContext;  // gemm/plan.hpp: plan cache + reusable workspaces
}

namespace egemm::verify {

/// The functional paths under differential test. Every path realizes one
/// ladder rung (core/scheme.hpp); kEgemmRound and kSeparatePasses share the
/// round-2term rung through different pass orders.
enum class Path : int {
  kEgemmRound = 0,  ///< EGEMM-TC: round-split, all 4 terms (packed engine)
  kEgemmTruncate,   ///< ablation: Alg. 1 with truncate-split
  kSeparatePasses,  ///< cuBLAS-TC-Emulation: round-split, one pass per term
  kMarkidis,        ///< truncate-split, Alo x Blo dropped
  kTcHalf,          ///< cublasGemmEx with binary16 inputs
  kRecovery3,       ///< 3-term FP32-recovery split (9 emulation products)
  kSlice3,          ///< 3-term truncate multi-word slices (Ozaki-style)
  kCount
};

inline constexpr std::size_t kPathCount = static_cast<std::size_t>(Path::kCount);

const char* path_name(Path path) noexcept;

/// The ladder rung a path realizes (total: every path has one).
core::SchemeId path_scheme(Path path) noexcept;

/// The canonical path realizing a rung (inverse of path_scheme up to the
/// round-2term rung, whose canonical path is kEgemmRound).
Path scheme_path(core::SchemeId scheme) noexcept;

/// The numeric profile the error model uses for a path.
PathProfile path_profile(Path path) noexcept;

/// True when the case's inputs contain a non-finite value or a magnitude
/// at/over the binary16 split-overflow edge: numeric bounds do not apply
/// (IEEE propagation makes the "exact" value a convention, not a number).
bool inputs_special(const FuzzInputs& inputs);

/// Executes a path functionally (against the shared default context).
gemm::Matrix run_path(Path path, const gemm::Matrix& a, const gemm::Matrix& b,
                      const gemm::Matrix* c);

/// run_path against an explicit plan/workspace context, so a long audit
/// reuses split/pack workspaces instead of reallocating them per case.
gemm::Matrix run_path(Path path, gemm::GemmContext& ctx, const gemm::Matrix& a,
                      const gemm::Matrix& b, const gemm::Matrix* c);

/// Per-path measurements for one case (or aggregated over many).
struct PathObservation {
  fp::ErrorStats stats;        ///< vs the oracle
  std::size_t violations = 0;  ///< elements with error > worst-case bound
  double worst_ratio = 0.0;    ///< max over elements of error / bound
  double worst_measured = 0.0; ///< |error| at the worst-ratio element
  double worst_bound = 0.0;    ///< bound at the worst-ratio element

  void merge(const PathObservation& other);
};

struct CaseResult {
  FuzzCase fuzz;
  bool special = false;      ///< non-finite or split-overflow inputs
  bool engine_match = true;  ///< packed == reference, bitwise
  std::array<PathObservation, kPathCount> paths;  ///< empty when special
  double oracle_seconds = 0.0;  ///< wall time in the oracle (0 when special)
  std::array<double, kPathCount> path_seconds{};  ///< wall time per path
};

/// Runs one case end to end (pure in the FuzzCase value).
CaseResult run_case(const FuzzCase& fuzz);

/// run_case against an explicit context. Results are bit-identical to the
/// default-context overload -- plans only cache shape/option resolution,
/// never numerics -- but repeated cases stop paying per-call allocation.
CaseResult run_case(const FuzzCase& fuzz, gemm::GemmContext& ctx);

struct AuditOptions {
  std::uint64_t seed = 1;
  std::size_t cases = 500;
  /// Stop planning new cases once this much wall time elapsed (0 = off);
  /// the report's cases_run says how far the budget reached.
  double time_budget_seconds = 0.0;
  /// Pin every case's engine scheme to one rung (nullopt = fuzz_plan's
  /// round-robin over the full ladder). The CI scheme matrix sets this so
  /// each lane's engine differential soaks one rung.
  std::optional<core::SchemeId> scheme;
};

struct PathSummary {
  PathObservation observed;
  std::string worst_case;  ///< descriptor of the case with the worst ratio
};

struct AuditReport {
  std::uint64_t seed = 0;
  /// Scheme the engine differential ran under: a rung name when
  /// AuditOptions::scheme pinned one, "ladder" for the round-robin.
  std::string engine_scheme = "ladder";
  std::size_t cases_planned = 0;
  std::size_t cases_run = 0;
  std::size_t special_cases = 0;
  std::size_t engine_mismatches = 0;
  std::array<PathSummary, kPathCount> paths;
  /// Per-path stats restricted to kUniform cases (the paper's §7.2 input
  /// distribution). The adversarial kinds saturate every path identically
  /// -- e.g. below-binary16 denormals are dropped by ALL splits -- so the
  /// Fig. 4 round-vs-truncate ordering is measured where it is defined.
  std::array<fp::ErrorStats, kPathCount> uniform_stats;
  /// Replayable descriptors of every case with a violation or engine
  /// mismatch (capped at 64 entries).
  std::vector<std::string> failing_cases;
  /// Wall-time breakdown of the audit (observability, DESIGN.md §12): how
  /// the budget splits between the oracle and each candidate path.
  double wall_seconds = 0.0;
  double oracle_seconds = 0.0;
  std::array<double, kPathCount> path_seconds{};

  std::size_t total_violations() const noexcept;
  /// The paper's §3.2 ordering as measured on the uniform kind: EGEMM-TC's
  /// round-split max ulp error strictly below Markidis' truncate-split on
  /// the same inputs.
  bool round_below_markidis() const noexcept;
  bool ok() const noexcept {
    return engine_mismatches == 0 && total_violations() == 0;
  }
};

AuditReport run_audit(const AuditOptions& options);

/// Persists the report as a small self-describing JSON document (the
/// accuracy analogue of BENCH_micro.json; consumed by the nightly
/// accuracy-fuzz CI job).
bool write_audit_json(const std::string& path, const AuditReport& report,
                      const std::string& git_sha);

}  // namespace egemm::verify
