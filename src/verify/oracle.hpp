#pragma once
// Oracle GEMM for the accuracy-verification subsystem (DESIGN.md §11).
//
// The differential harness needs a reference that is *effectively exact* --
// far below every bound it checks -- for arbitrary binary32 inputs, not
// just the well-scaled matrices of the precision figures. The oracle
// computes D = A x B + C with an unevaluated double-double accumulator per
// output element (fp::dd_add over exact binary64 products; the product of
// two binary32 values widened to binary64 is exact), so the only error in
// the final value is the one collapse hi + lo at the end: relative 2^-105
// before collapse, 2^-53 after -- at least 2^70 below the tightest bound
// the error model ever emits (DESIGN.md §11 quantifies the slack).
//
// Unlike gemm::gemm_reference (which collapses eagerly per row and returns
// a MatrixD), the oracle keeps the hi/lo planes so callers can measure a
// candidate's error without first destroying the extra precision. Ulp
// measurement against the binary32 grid lives in fp/float_bits.hpp
// (fp::f32_ulp_at / fp::ulp_error).

#include <cstddef>

#include "gemm/matrix.hpp"

namespace egemm::verify {

/// D = A x B + C held as an unevaluated double-double sum per element.
struct OracleMatrix {
  gemm::MatrixD hi;
  gemm::MatrixD lo;

  std::size_t rows() const noexcept { return hi.rows(); }
  std::size_t cols() const noexcept { return hi.cols(); }

  /// Collapsed binary64 value (correctly rounded from the dd pair).
  double value(std::size_t r, std::size_t c) const noexcept {
    return hi.at(r, c) + lo.at(r, c);
  }
};

/// Computes the oracle GEMM. A is m x k, B is k x n, C (optional) m x n.
/// Finite inputs give an effectively exact result; non-finite inputs
/// propagate through IEEE semantics (the differential runner classifies
/// those cases separately and does not apply numeric bounds to them).
OracleMatrix oracle_gemm(const gemm::Matrix& a, const gemm::Matrix& b,
                         const gemm::Matrix* c = nullptr);

}  // namespace egemm::verify
