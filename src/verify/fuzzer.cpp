#include "verify/fuzzer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace egemm::verify {

namespace {

/// Random sign * mantissa in [1, 2) * 2^e with e uniform in [e_lo, e_hi].
float log_uniform(util::Xoshiro256& rng, int e_lo, int e_hi) {
  const int e = e_lo + static_cast<int>(rng.below(
                           static_cast<std::uint64_t>(e_hi - e_lo + 1)));
  const float mant = rng.uniform(1.0f, 2.0f);
  const float sign = (rng() & 1u) != 0 ? -1.0f : 1.0f;
  return sign * std::ldexp(mant, e);
}

void fill_uniform(gemm::Matrix& m, util::Xoshiro256& rng) {
  for (float& v : m.data()) v = rng.uniform(-1.0f, 1.0f);
}

void fill_log_uniform(gemm::Matrix& m, util::Xoshiro256& rng) {
  for (float& v : m.data()) v = log_uniform(rng, -12, 3);
}

void fill_positive(gemm::Matrix& m, util::Xoshiro256& rng) {
  for (float& v : m.data()) v = rng.uniform(0.5f, 1.0f);
}

void fill_denormal(gemm::Matrix& m, util::Xoshiro256& rng) {
  // Mostly the binary16-subnormal-and-below band; a tail deep in the
  // binary32 denormal range so plane products underflow to zero.
  for (float& v : m.data()) {
    v = rng.below(10) == 0 ? log_uniform(rng, -140, -45)
                           : log_uniform(rng, -44, -13);
  }
}

void fill_exponent_spread(gemm::Matrix& m, util::Xoshiro256& rng) {
  // ~40 binades in one matrix: the per-case scale context is dominated by
  // a few huge entries while most products sit far below it, so the
  // scale-proportional bound terms and the absolute floors both matter.
  for (float& v : m.data()) v = log_uniform(rng, -30, 10);
}

void fill_wide_mantissa(gemm::Matrix& m, util::Xoshiro256& rng) {
  // Full 23-bit mantissas with the low bit forced on: every split plane
  // (hi, lo, and the 3-term residual word) carries nonzero payload, which
  // probes the residual floors the truncate rungs round away.
  for (float& v : m.data()) {
    const std::uint32_t mant_bits =
        static_cast<std::uint32_t>(rng()) & 0x7fffffu;
    const float mant = 1.0f + static_cast<float>(mant_bits | 1u) * 0x1.0p-23f;
    const int e = -6 + static_cast<int>(rng.below(13));
    const float sign = (rng() & 1u) != 0 ? -1.0f : 1.0f;
    v = sign * std::ldexp(mant, e);
  }
}

void fill_specials(gemm::Matrix& m, util::Xoshiro256& rng) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  // 65520 is the binary16 overflow threshold: it splits to an infinite hi
  // plane, the saturation edge the harness must survive.
  constexpr float kSpecials[] = {kNan,     kInf,   -kInf,   -0.0f,
                                 65504.0f, 65520.0f, 1e38f, 0x1.0p-149f};
  for (float& v : m.data()) {
    v = rng.below(20) == 0
            ? kSpecials[rng.below(sizeof(kSpecials) / sizeof(kSpecials[0]))]
            : rng.uniform(-1.0f, 1.0f);
  }
}

/// Hilbert-like rows with random per-row binade scales: entries decay
/// slowly and rows are nearly linearly dependent, the classic
/// ill-conditioned profile.
void fill_hilbert(gemm::Matrix& m, util::Xoshiro256& rng) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float scale = log_uniform(rng, -3, 3);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      m.at(i, j) = scale / static_cast<float>(i + j + 1);
    }
  }
}

void fill_kind(InputKind kind, gemm::Matrix& m, util::Xoshiro256& rng) {
  switch (kind) {
    case InputKind::kUniform:
      fill_uniform(m, rng);
      return;
    case InputKind::kLogUniform:
      fill_log_uniform(m, rng);
      return;
    case InputKind::kPositive:
      fill_positive(m, rng);
      return;
    case InputKind::kCancellation:  // pair structure applied by the caller
      fill_log_uniform(m, rng);
      return;
    case InputKind::kIllConditioned:
      fill_hilbert(m, rng);
      return;
    case InputKind::kDenormal:
      fill_denormal(m, rng);
      return;
    case InputKind::kExponentSpread:
      fill_exponent_spread(m, rng);
      return;
    case InputKind::kWideMantissa:
      fill_wide_mantissa(m, rng);
      return;
    case InputKind::kSpecials:
      fill_specials(m, rng);
      return;
    case InputKind::kCount:
      break;
  }
  EGEMM_EXPECTS(false && "invalid InputKind");
}

}  // namespace

const char* input_kind_name(InputKind kind) noexcept {
  switch (kind) {
    case InputKind::kUniform:
      return "uniform";
    case InputKind::kLogUniform:
      return "log-uniform";
    case InputKind::kPositive:
      return "positive";
    case InputKind::kCancellation:
      return "cancellation";
    case InputKind::kIllConditioned:
      return "ill-conditioned";
    case InputKind::kDenormal:
      return "denormal";
    case InputKind::kExponentSpread:
      return "exponent-spread";
    case InputKind::kWideMantissa:
      return "wide-mantissa";
    case InputKind::kSpecials:
      return "specials";
    case InputKind::kCount:
      break;
  }
  return "?";
}

FuzzInputs generate_inputs(const FuzzCase& fuzz) {
  EGEMM_EXPECTS(fuzz.kind != InputKind::kCount);
  // Independent streams per matrix so shapes do not alias values.
  util::Xoshiro256 rng_a(fuzz.seed * 3 + 1);
  util::Xoshiro256 rng_b(fuzz.seed * 3 + 2);
  util::Xoshiro256 rng_c(fuzz.seed * 3 + 3);

  FuzzInputs inputs{gemm::Matrix(fuzz.m, fuzz.k), gemm::Matrix(fuzz.k, fuzz.n),
                    gemm::Matrix(fuzz.m, fuzz.n), fuzz.with_c};
  fill_kind(fuzz.kind, inputs.a, rng_a);
  fill_kind(fuzz.kind, inputs.b, rng_b);
  if (fuzz.with_c) fill_kind(fuzz.kind, inputs.c, rng_c);

  if (fuzz.kind == InputKind::kCancellation) {
    // Exact +/- pairs along k: A negates odd columns, B duplicates odd
    // rows, so each pair of products cancels exactly and the true sum is
    // just the odd tail (or C) -- huge intermediate magnitudes over a tiny
    // reference.
    for (std::size_t i = 0; i < fuzz.m; ++i) {
      for (std::size_t t = 1; t < fuzz.k; t += 2) {
        inputs.a.at(i, t) = -inputs.a.at(i, t - 1);
      }
    }
    for (std::size_t t = 1; t < fuzz.k; t += 2) {
      for (std::size_t j = 0; j < fuzz.n; ++j) {
        inputs.b.at(t, j) = inputs.b.at(t - 1, j);
      }
    }
  }
  return inputs;
}

std::vector<FuzzCase> fuzz_plan(std::uint64_t master_seed, std::size_t count) {
  std::vector<FuzzCase> plan;
  plan.reserve(count);
  util::Xoshiro256 rng(master_seed ^ 0x5eedfa11ULL);
  // Small ragged/degenerate extents get extra weight: k = 1, vectors, and
  // sub-tile shapes are where padding and remainder paths diverge.
  static constexpr std::size_t kDegenerate[] = {1, 1, 2, 3, 5, 15, 16, 17, 31};
  static constexpr std::size_t kDegenerateCount =
      sizeof(kDegenerate) / sizeof(kDegenerate[0]);
  for (std::size_t i = 0; i < count; ++i) {
    FuzzCase fuzz;
    fuzz.seed = master_seed * 0x9e3779b97f4a7c15ULL + i;
    const std::uint64_t shape_class = rng.below(100);
    auto draw = [&rng](std::size_t hi) {
      return static_cast<std::size_t>(1 + rng.below(hi));
    };
    if (shape_class < 30) {
      fuzz.m = kDegenerate[rng.below(kDegenerateCount)];
      fuzz.n = kDegenerate[rng.below(kDegenerateCount)];
      fuzz.k = kDegenerate[rng.below(kDegenerateCount)];
    } else if (shape_class < 90) {
      fuzz.m = draw(48);
      fuzz.n = draw(48);
      fuzz.k = draw(48);
    } else {
      // One long axis: skewed shapes stress the wave/remainder logic and
      // give the k-linear bound terms room to act.
      fuzz.m = draw(24);
      fuzz.n = draw(24);
      fuzz.k = draw(24);
      switch (rng.below(3)) {
        case 0: fuzz.m = draw(160); break;
        case 1: fuzz.n = draw(160); break;
        default: fuzz.k = draw(160); break;
      }
    }
    // Round-robin kinds so every distribution appears even in short runs.
    // The 9 kind and 6 scheme periods share a factor of 3, so a plain dual
    // round-robin would only ever pair kinds and schemes with equal
    // residue mod 3; shifting the scheme lane one extra step per 18-case
    // super-period walks all 54 (kind, scheme) pairs within 108 cases
    // while still changing scheme on every case.
    fuzz.kind = static_cast<InputKind>(
        i % static_cast<std::size_t>(InputKind::kCount));
    fuzz.scheme = core::scheme_ladder()[(i + i / 18) % core::kSchemeCount];
    fuzz.with_c = (rng() & 1u) != 0;
    plan.push_back(fuzz);
  }
  return plan;
}

std::string format_case(const FuzzCase& fuzz) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "seed=%llu m=%zu n=%zu k=%zu kind=%s c=%d scheme=%s",
                static_cast<unsigned long long>(fuzz.seed), fuzz.m, fuzz.n,
                fuzz.k, input_kind_name(fuzz.kind), fuzz.with_c ? 1 : 0,
                core::scheme_name(fuzz.scheme));
  return buffer;
}

std::optional<FuzzCase> parse_case(std::string_view line) {
  // Strip comments and whitespace-only lines.
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  FuzzCase fuzz;
  bool have_seed = false, have_m = false, have_n = false, have_k = false,
       have_kind = false;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
      ++pos;
    }
    if (pos >= line.size()) break;
    const std::size_t end = std::min(line.find(' ', pos), line.size());
    const std::string_view token = line.substr(pos, end - pos);
    pos = end;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = token.substr(0, eq);
    const std::string value(token.substr(eq + 1));
    if (key == "kind") {
      for (int kind = 0; kind < static_cast<int>(InputKind::kCount); ++kind) {
        if (value == input_kind_name(static_cast<InputKind>(kind))) {
          fuzz.kind = static_cast<InputKind>(kind);
          have_kind = true;
        }
      }
      if (!have_kind) return std::nullopt;
      continue;
    }
    if (key == "scheme") {
      // Optional: corpus entries predating the ladder have no scheme token
      // and keep the legacy round-2term default.
      const std::optional<core::SchemeId> scheme =
          core::parse_scheme_name(value);
      if (!scheme) return std::nullopt;
      fuzz.scheme = *scheme;
      continue;
    }
    char* parse_end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &parse_end, 10);
    if (parse_end == value.c_str() || *parse_end != '\0') return std::nullopt;
    if (key == "seed") {
      fuzz.seed = parsed;
      have_seed = true;
    } else if (key == "m") {
      fuzz.m = parsed;
      have_m = true;
    } else if (key == "n") {
      fuzz.n = parsed;
      have_n = true;
    } else if (key == "k") {
      fuzz.k = parsed;
      have_k = true;
    } else if (key == "c") {
      fuzz.with_c = parsed != 0;
    } else {
      return std::nullopt;
    }
  }
  if (!(have_seed && have_m && have_n && have_k && have_kind)) {
    return std::nullopt;
  }
  return fuzz;
}

}  // namespace egemm::verify
