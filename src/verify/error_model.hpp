#pragma once
// A-priori error bounds for emulated GEMM paths (DESIGN.md §11).
//
// Given a path's numeric profile -- split method, which of Alg. 1's four
// split-product terms it executes, whether it consumes raw binary16 inputs
// instead of a two-plane split -- and an output element's scale context
// (k, row/column magnitudes, |C|), the model emits
//
//   worst_abs     a sound per-element bound on |candidate - exact|, the sum
//                 of three components derived from the paper's 21-bit
//                 operation-precision profile (§3.2):
//                   split_term    representation error of the planes,
//                   dropped_term  split products the path does not compute,
//                   accum_term    binary32 pair-sum accumulation (Higham's
//                                 gamma_n over the product magnitudes);
//   expected_abs  a statistical estimate of the typical max error under
//                 random inputs -- NOT sound, used only to make the paper's
//                 round-vs-truncate gap executable: truncate-split residuals
//                 are one-signed, so their contribution grows linearly in k
//                 while round-split residuals random-walk at sqrt(k); a
//                 truncate path therefore lands far above the round-split
//                 expected bound on cancellation-free inputs.
//
// The differential runner asserts measured <= worst_abs element-wise for
// every path on every finite fuzz case; the bounds must hold for ALL
// representable inputs below the binary16 overflow threshold, including
// denormals (hence the subnormal floors from core::split_residual_bound).

#include <cstddef>

#include "core/split.hpp"
#include "sass/analysis/precision.hpp"

namespace egemm::verify {

/// Numeric description of an emulated-GEMM path.
struct PathProfile {
  core::SplitMethod split = core::SplitMethod::kRoundSplit;
  bool term_hi_hi = true;
  bool term_hi_lo = true;  ///< Ahi x Blo
  bool term_lo_hi = true;  ///< Alo x Bhi
  bool term_lo_lo = true;
  /// cuBLAS-TC-Half: inputs are RN16(x) with no lo plane at all; the
  /// representation error is a single binary16 rounding (2^-11 relative)
  /// and the dropped/lo machinery does not apply.
  bool half_only = false;

  int combo_count() const noexcept {
    if (half_only) return 1;
    return (term_hi_hi ? 1 : 0) + (term_hi_lo ? 1 : 0) +
           (term_lo_hi ? 1 : 0) + (term_lo_lo ? 1 : 0);
  }
};

/// Scale context of one output element D[i][j].
struct BoundInputs {
  std::size_t k = 0;
  double a_scale = 0.0;  ///< max |A[i][t]| over the element's row
  double b_scale = 0.0;  ///< max |B[t][j]| over the element's column
  double c_abs = 0.0;    ///< |C[i][j]|, 0 when C is absent
};

struct ErrorBound {
  double split_term = 0.0;
  double dropped_term = 0.0;
  double accum_term = 0.0;
  double worst_abs = 0.0;
  double expected_abs = 0.0;
};

/// Per-element a-priori bound. Requires every |A|, |B| input magnitude to
/// be below the binary16 overflow threshold (the split itself saturates
/// beyond it); the differential runner classifies such cases as
/// special-value cases and does not call the model on them.
ErrorBound element_bound(const PathProfile& path,
                         const BoundInputs& in) noexcept;

// -- static certification bridge (EG5xx pass, DESIGN.md §14) -----------------
// The precision-dataflow pass derives a kernel's numeric profile from its
// instruction stream; these entry points close the loop between that
// derivation and the hand-written model above.

/// Maps a statically derived kernel profile onto the path description the
/// hand model consumes. Planes beyond the second are projected onto the lo
/// plane (the hand model is two-plane); an underived profile maps to the
/// default all-terms round-split path.
PathProfile from_static_profile(
    const sass::analysis::PrecisionProfile& profile) noexcept;

/// element_bound analogue computed from the statically derived constants
/// (profile.rel_residual / lo_plane_rel, the kernel's own term grid)
/// instead of the hand-coded core::split_* bounds. expected_abs is left 0:
/// the static derivation is worst-case only.
ErrorBound static_profile_bound(
    const sass::analysis::PrecisionProfile& profile,
    const BoundInputs& in) noexcept;

/// Cross-check: the hand-written a-priori bound must dominate (>=) the
/// statically derived bound for the same element context -- otherwise the
/// error model promises less error than the kernel's instruction stream
/// justifies. `checked` is false when the profile was never derived.
struct StaticCrossCheck {
  bool checked = false;
  bool dominates = false;
  double hand_worst_abs = 0.0;
  double derived_worst_abs = 0.0;
};
StaticCrossCheck cross_check_static_profile(
    const sass::analysis::PrecisionProfile& profile,
    const BoundInputs& in) noexcept;

}  // namespace egemm::verify
