#pragma once
// A-priori error bounds for emulated GEMM paths (DESIGN.md §11/§16).
//
// Given a path's numeric profile -- split method, plane count, which of
// the scheme's plane-pair terms it executes, whether it consumes raw
// binary16 inputs instead of a split -- and an output element's scale
// context (k, row/column magnitudes, |C|), the model emits
//
//   worst_abs     a sound per-element bound on |candidate - exact|, the sum
//                 of three components derived from the scheme's
//                 operation-precision profile (§3.2, DESIGN.md §16):
//                   split_term    representation error of the planes,
//                   dropped_term  split products the path does not compute,
//                   accum_term    binary32 pair-sum accumulation (Higham's
//                                 gamma_n over the product magnitudes);
//   expected_abs  a statistical estimate of the typical max error under
//                 random inputs -- NOT sound, used only to make the paper's
//                 round-vs-truncate gap executable: truncate-split residuals
//                 are one-signed, so their contribution grows linearly in k
//                 while round-split residuals random-walk at sqrt(k); a
//                 truncate path therefore lands far above the round-split
//                 expected bound on cancellation-free inputs.
//
// The bound engine itself lives in core/scheme.hpp (the plan layer and the
// accuracy-contract resolver need it without linking the verify library);
// this header keeps the verify-side names and adds the bridge to the
// statically derived EG5xx kernel profiles, which core cannot see.
//
// The differential runner asserts measured <= worst_abs element-wise for
// every path on every finite fuzz case; the bounds must hold for ALL
// representable inputs below the binary16 overflow threshold, including
// denormals (hence the subnormal floors from core::split_residual_bound).

#include <cstddef>

#include "core/scheme.hpp"
#include "core/split.hpp"
#include "sass/analysis/precision.hpp"

namespace egemm::verify {

/// Numeric description of an emulated-GEMM path: the generalized scheme
/// profile (split method, plane count, term coverage grid, half-only
/// flag). Term (a_depth, b_depth) indexes by split depth, 0 = hi plane.
using PathProfile = core::SchemeProfile;

/// Scale context of one output element D[i][j].
using BoundInputs = core::BoundInputs;

using ErrorBound = core::ErrorBound;

/// Per-element a-priori bound. Requires every |A|, |B| input magnitude to
/// be below the binary16 overflow threshold (the split itself saturates
/// beyond it); the differential runner classifies such cases as
/// special-value cases and does not call the model on them.
ErrorBound element_bound(const PathProfile& path,
                         const BoundInputs& in) noexcept;

// -- static certification bridge (EG5xx pass, DESIGN.md §14) -----------------
// The precision-dataflow pass derives a kernel's numeric profile from its
// instruction stream; these entry points close the loop between that
// derivation and the hand-written model above.

/// Maps a statically derived kernel profile onto the path description the
/// hand model consumes, preserving the plane structure up to three planes
/// (terms on deeper planes project onto the deepest modeled one). An
/// underived profile maps to the default all-terms round-split path.
PathProfile from_static_profile(
    const sass::analysis::PrecisionProfile& profile) noexcept;

/// element_bound analogue computed from the statically derived constants
/// (profile.rel_residual / lo_plane_rel, the kernel's own term grid)
/// instead of the hand-coded core::split_* bounds. expected_abs is left 0:
/// the static derivation is worst-case only.
ErrorBound static_profile_bound(
    const sass::analysis::PrecisionProfile& profile,
    const BoundInputs& in) noexcept;

/// Cross-check: the hand-written a-priori bound must dominate (>=) the
/// statically derived bound for the same element context -- otherwise the
/// error model promises less error than the kernel's instruction stream
/// justifies. `checked` is false when the profile was never derived.
/// `scheme_match` is false when the kernel's derived profile does not
/// classify as the scheme the caller claimed it implements (only the
/// scheme-aware overload sets it).
struct StaticCrossCheck {
  bool checked = false;
  bool dominates = false;
  bool scheme_match = true;
  double hand_worst_abs = 0.0;
  double derived_worst_abs = 0.0;
};
StaticCrossCheck cross_check_static_profile(
    const sass::analysis::PrecisionProfile& profile,
    const BoundInputs& in) noexcept;

/// Scheme-aware cross-check: additionally verifies that the kernel's
/// derived profile classifies as `claimed` on the ladder, and compares the
/// claimed rung's hand bound (not the derived profile's projection)
/// against the statically derived one -- the certification path for every
/// new rung.
StaticCrossCheck cross_check_static_profile(
    const sass::analysis::PrecisionProfile& profile, core::SchemeId claimed,
    const BoundInputs& in) noexcept;

}  // namespace egemm::verify
