#pragma once
// Deterministic, seed-reproducible adversarial input generation for the
// differential accuracy harness (DESIGN.md §11).
//
// Every case is fully described by a FuzzCase value; generate_inputs() is a
// pure function of it, so any failure reported by the harness can be
// replayed from the one-line descriptor format_case() prints (and the
// regression corpus under tests/corpus/ stores). fuzz_plan() expands a
// master seed into a case list that mixes adversarial value distributions
// with degenerate shapes (k = 1, vectors, sub-tile and ragged extents).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheme.hpp"
#include "gemm/matrix.hpp"

namespace egemm::verify {

enum class InputKind : int {
  kUniform = 0,     ///< uniform in [-1, 1): the paper's §7.2 distribution
  kLogUniform,      ///< random sign, exponent uniform across many binades
  kPositive,        ///< [0.5, 1): cancellation-free; exposes truncate bias
  kCancellation,    ///< exact +/- pairs along k: reference sums near zero
  kIllConditioned,  ///< Hilbert-like 1/(i+j+1) rows with random row scales
  kDenormal,        ///< magnitudes below the binary16 normal range
  kExponentSpread,  ///< exponents across ~40 binades: stresses scale terms
  kWideMantissa,    ///< all 23 mantissa bits set-able, odd low bit: every
                    ///< split plane carries payload (residual-floor prober)
  kSpecials,        ///< NaN/Inf/signed-zero/overflow values sprinkled in
  kCount
};

const char* input_kind_name(InputKind kind) noexcept;

struct FuzzCase {
  std::uint64_t seed = 0;
  std::size_t m = 1;
  std::size_t n = 1;
  std::size_t k = 1;
  InputKind kind = InputKind::kUniform;
  bool with_c = false;
  /// Emulation-scheme rung the engine runs this case under; each rung is
  /// judged against its own a-priori bound. Descriptors without a scheme
  /// token parse as the legacy 2-term round scheme.
  core::SchemeId scheme = core::SchemeId::kRound2;
};

struct FuzzInputs {
  gemm::Matrix a;
  gemm::Matrix b;
  gemm::Matrix c;
  bool use_c = false;

  const gemm::Matrix* c_ptr() const noexcept { return use_c ? &c : nullptr; }
};

/// Materializes the case's inputs; pure in the FuzzCase value.
FuzzInputs generate_inputs(const FuzzCase& fuzz);

/// Expands a master seed into `count` cases (deterministic).
std::vector<FuzzCase> fuzz_plan(std::uint64_t master_seed, std::size_t count);

/// One-line replayable descriptor:
/// "seed=7 m=3 n=5 k=17 kind=log-uniform c=1 scheme=round-2term".
std::string format_case(const FuzzCase& fuzz);

/// Parses format_case() output (also the tests/corpus entry format).
/// Returns nullopt for blank lines, '#' comments, and malformed input.
std::optional<FuzzCase> parse_case(std::string_view line);

}  // namespace egemm::verify
