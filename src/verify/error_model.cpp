#include "verify/error_model.hpp"

#include <cmath>
#include <limits>

namespace egemm::verify {

namespace {

constexpr double kU32 = 0x1.0p-24;  // binary32 unit roundoff

/// Worst-case magnitude of a hi plane for |x| <= scale: round-to-nearest
/// can push the plane half a binary16 ulp above x (padded to 2^-10
/// relative), plus the subnormal half-quantum.
double hi_plane_bound(double scale) noexcept {
  return scale * (1.0 + 0x1.0p-10) + 0x1.0p-25;
}

/// Per-input representation error of the path's decomposition of x.
double residual_bound(const PathProfile& path, double scale) noexcept {
  if (path.half_only) {
    // Single RN16 rounding: half a binary16 ulp (2^-11 relative), with the
    // subnormal half-quantum floor.
    return std::max(scale * 0x1.0p-11, 0x1.0p-25);
  }
  return core::split_residual_bound(path.split, scale);
}

}  // namespace

ErrorBound element_bound(const PathProfile& path,
                         const BoundInputs& in) noexcept {
  ErrorBound bound;
  const double k = static_cast<double>(in.k);
  if (in.k == 0) {
    // D = C exactly: every path copies C through untouched.
    return bound;
  }

  const double eps_a = residual_bound(path, in.a_scale);
  const double eps_b = residual_bound(path, in.b_scale);
  const double hi_a = hi_plane_bound(in.a_scale);
  const double hi_b = hi_plane_bound(in.b_scale);
  const double lo_a = core::split_lo_plane_bound(path.split, in.a_scale);
  const double lo_b = core::split_lo_plane_bound(path.split, in.b_scale);

  // Representation: each term's computed planes multiply out to
  // (a - ra)(b - rb), so the per-term slip against the exact product is
  // ra*b + rb*a - ra*rb.
  bound.split_term = k * (eps_a * in.b_scale + eps_b * in.a_scale +
                          eps_a * eps_b);

  // Terms the path never computes (Markidis drops Alo x Blo).
  double dropped = 0.0;
  if (!path.half_only) {
    if (!path.term_lo_lo) dropped += lo_a * lo_b;
    if (!path.term_hi_lo) dropped += hi_a * lo_b;
    if (!path.term_lo_hi) dropped += lo_a * hi_b;
    if (!path.term_hi_hi) dropped += hi_a * hi_b;
  }
  bound.dropped_term = k * dropped;

  // Accumulation: combo_count * k exact products summed in binary32 in some
  // association (pair sums chained onto C). Higham's gamma_n over the
  // magnitude sum is association-independent, so one bound covers the
  // fused, separate-pass, and pair-sum orders alike.
  double product_mag = 0.0;
  if (path.half_only) {
    product_mag = hi_a * hi_b;
  } else {
    if (path.term_hi_hi) product_mag += hi_a * hi_b;
    if (path.term_hi_lo) product_mag += hi_a * lo_b;
    if (path.term_lo_hi) product_mag += lo_a * hi_b;
    if (path.term_lo_lo) product_mag += lo_a * lo_b;
  }
  const double n_adds = static_cast<double>(path.combo_count()) * k;
  const double nu = n_adds * kU32;
  if (nu >= 0.5) {
    // gamma_n degenerates; no shape in the harness gets near this (it
    // needs combo_count * k > 2^23), but stay sound if one ever does.
    bound.accum_term = std::numeric_limits<double>::infinity();
  } else {
    const double magnitude_sum = in.c_abs + k * product_mag;
    bound.accum_term =
        (nu / (1.0 - nu)) * magnitude_sum + n_adds * 0x1.0p-149;
  }

  // Sound total, with a 2^-20 relative pad absorbing the oracle's 2^-53
  // collapse and the binary64 arithmetic of the measurement itself.
  bound.worst_abs = (bound.split_term + bound.dropped_term +
                     bound.accum_term) *
                        (1.0 + 0x1.0p-20) +
                    0x1.0p-300;

  // Statistical estimate (NOT sound): typical input magnitude scale/2,
  // round-split residuals random-walk at sqrt(k), truncate-split residuals
  // are one-signed and accumulate linearly at ~1/4 of the worst case --
  // the executable form of the paper's Fig. 4 round-vs-truncate gap.
  const double tau =
      0.5 * (eps_a * in.b_scale + eps_b * in.a_scale);  // typical per-term
  const bool one_signed =
      !path.half_only && path.split == core::SplitMethod::kTruncateSplit;
  const double split_exp =
      one_signed ? k * tau * 0.25 : std::sqrt(k) * tau;
  const double dropped_exp = one_signed ? k * dropped * 0.0625
                                        : std::sqrt(k) * dropped * 0.25;
  const double accum_exp =
      kU32 * std::sqrt(n_adds) * (in.c_abs + k * product_mag) * 0.5;
  bound.expected_abs = split_exp + dropped_exp + accum_exp;
  return bound;
}

PathProfile from_static_profile(
    const sass::analysis::PrecisionProfile& profile) noexcept {
  PathProfile path;
  if (!profile.derived) return path;
  path.split = profile.split;
  path.half_only = profile.half_only || profile.planes <= 1;
  if (path.half_only) return path;
  path.term_hi_hi = false;
  path.term_hi_lo = false;
  path.term_lo_hi = false;
  path.term_lo_lo = false;
  for (const sass::analysis::TermInfo& term : profile.terms) {
    const bool a_hi = term.a_plane == 0;
    const bool b_hi = term.b_plane == 0;
    if (a_hi && b_hi) {
      path.term_hi_hi = true;
    } else if (a_hi) {
      path.term_hi_lo = true;
    } else if (b_hi) {
      path.term_lo_hi = true;
    } else {
      path.term_lo_lo = true;
    }
  }
  return path;
}

ErrorBound static_profile_bound(const sass::analysis::PrecisionProfile& profile,
                                const BoundInputs& in) noexcept {
  ErrorBound bound;
  if (!profile.derived || in.k == 0) return bound;
  const double k = static_cast<double>(in.k);

  // The derived constants are relative; re-attach the subnormal floors the
  // hand model carries (the binary16 quantum does not scale with |x|).
  const double residual_floor =
      profile.rounding == sass::Rounding::kTruncate ? 0x1.0p-24 : 0x1.0p-25;
  auto residual = [&](double scale) {
    return std::max(scale * profile.rel_residual, residual_floor);
  };
  // Magnitude of plane p: the hi plane sits at the input scale (plus the
  // RN16 overshoot); each deeper plane is one lo-plane factor down.
  auto plane_mag = [&](int plane, double scale) {
    if (plane == 0) return hi_plane_bound(scale);
    return std::max(scale * std::pow(profile.lo_plane_rel, plane), 0x1.0p-24);
  };

  const double eps_a = residual(in.a_scale);
  const double eps_b = residual(in.b_scale);
  bound.split_term =
      k * (eps_a * in.b_scale + eps_b * in.a_scale + eps_a * eps_b);

  double dropped = 0.0;
  double product_mag = 0.0;
  int combos = 0;
  for (int a = 0; a < profile.planes; ++a) {
    for (int b = 0; b < profile.planes; ++b) {
      const double mag =
          plane_mag(a, in.a_scale) * plane_mag(b, in.b_scale);
      if (profile.term_computed(a, b)) {
        product_mag += mag;
        ++combos;
      } else {
        dropped += mag;
      }
    }
  }
  bound.dropped_term = k * dropped;

  const double n_adds = static_cast<double>(combos) * k;
  const double nu = n_adds * kU32;
  if (nu >= 0.5) {
    bound.accum_term = std::numeric_limits<double>::infinity();
  } else {
    const double magnitude_sum = in.c_abs + k * product_mag;
    bound.accum_term =
        (nu / (1.0 - nu)) * magnitude_sum + n_adds * 0x1.0p-149;
  }

  bound.worst_abs = (bound.split_term + bound.dropped_term +
                     bound.accum_term) *
                        (1.0 + 0x1.0p-20) +
                    0x1.0p-300;
  return bound;  // expected_abs stays 0: worst-case derivation only
}

StaticCrossCheck cross_check_static_profile(
    const sass::analysis::PrecisionProfile& profile,
    const BoundInputs& in) noexcept {
  StaticCrossCheck check;
  if (!profile.derived) return check;
  check.checked = true;
  check.hand_worst_abs =
      element_bound(from_static_profile(profile), in).worst_abs;
  check.derived_worst_abs = static_profile_bound(profile, in).worst_abs;
  check.dominates = check.hand_worst_abs >= check.derived_worst_abs;
  return check;
}

}  // namespace egemm::verify
