#include "verify/error_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace egemm::verify {

namespace {

constexpr double kU32 = 0x1.0p-24;  // binary32 unit roundoff

/// Worst-case magnitude of a hi plane for |x| <= scale: round-to-nearest
/// can push the plane half a binary16 ulp above x (padded to 2^-10
/// relative), plus the subnormal half-quantum.
double hi_plane_bound(double scale) noexcept {
  return scale * (1.0 + 0x1.0p-10) + 0x1.0p-25;
}

}  // namespace

ErrorBound element_bound(const PathProfile& path,
                         const BoundInputs& in) noexcept {
  return core::scheme_element_bound(path, in);
}

PathProfile from_static_profile(
    const sass::analysis::PrecisionProfile& profile) noexcept {
  PathProfile path;
  if (!profile.derived) return path;
  path.split = profile.split;
  if (profile.half_only || profile.planes <= 1) {
    path.half_only = true;
    path.planes = 1;
    path.term_mask = 0x1;
    return path;
  }
  path.planes = std::min(profile.planes, 3);
  path.term_mask = 0;
  for (const sass::analysis::TermInfo& term : profile.terms) {
    // The static pass numbers planes by depth already (0 = hi); terms on
    // planes deeper than the modeled stack project onto the deepest one.
    const int a = std::min(term.a_plane, path.planes - 1);
    const int b = std::min(term.b_plane, path.planes - 1);
    path.set_term(a, b, true);
  }
  return path;
}

ErrorBound static_profile_bound(const sass::analysis::PrecisionProfile& profile,
                                const BoundInputs& in) noexcept {
  ErrorBound bound;
  if (!profile.derived || in.k == 0) return bound;
  const double k = static_cast<double>(in.k);

  // The derived constants are relative; re-attach the subnormal floors the
  // hand model carries (the binary16 quantum does not scale with |x|).
  const double residual_floor =
      profile.rounding == sass::Rounding::kTruncate ? 0x1.0p-24 : 0x1.0p-25;
  auto residual = [&](double scale) {
    return std::max(scale * profile.rel_residual, residual_floor);
  };
  // Magnitude of plane p: the hi plane sits at the input scale (plus the
  // RN16 overshoot); each deeper plane is one lo-plane factor down.
  auto plane_mag = [&](int plane, double scale) {
    if (plane == 0) return hi_plane_bound(scale);
    return std::max(scale * std::pow(profile.lo_plane_rel, plane), 0x1.0p-24);
  };

  const double eps_a = residual(in.a_scale);
  const double eps_b = residual(in.b_scale);
  bound.split_term =
      k * (eps_a * in.b_scale + eps_b * in.a_scale + eps_a * eps_b);

  double dropped = 0.0;
  double product_mag = 0.0;
  int combos = 0;
  for (int a = 0; a < profile.planes; ++a) {
    for (int b = 0; b < profile.planes; ++b) {
      const double mag =
          plane_mag(a, in.a_scale) * plane_mag(b, in.b_scale);
      if (profile.term_computed(a, b)) {
        product_mag += mag;
        ++combos;
      } else {
        dropped += mag;
      }
    }
  }
  bound.dropped_term = k * dropped;

  const double n_adds = static_cast<double>(combos) * k;
  const double nu = n_adds * kU32;
  if (nu >= 0.5) {
    bound.accum_term = std::numeric_limits<double>::infinity();
  } else {
    const double magnitude_sum = in.c_abs + k * product_mag;
    bound.accum_term =
        (nu / (1.0 - nu)) * magnitude_sum + n_adds * 0x1.0p-149;
  }

  bound.worst_abs = (bound.split_term + bound.dropped_term +
                     bound.accum_term) *
                        (1.0 + 0x1.0p-20) +
                    0x1.0p-300;
  return bound;  // expected_abs stays 0: worst-case derivation only
}

StaticCrossCheck cross_check_static_profile(
    const sass::analysis::PrecisionProfile& profile,
    const BoundInputs& in) noexcept {
  StaticCrossCheck check;
  if (!profile.derived) return check;
  check.checked = true;
  check.hand_worst_abs =
      element_bound(from_static_profile(profile), in).worst_abs;
  check.derived_worst_abs = static_profile_bound(profile, in).worst_abs;
  check.dominates = check.hand_worst_abs >= check.derived_worst_abs;
  return check;
}

StaticCrossCheck cross_check_static_profile(
    const sass::analysis::PrecisionProfile& profile, core::SchemeId claimed,
    const BoundInputs& in) noexcept {
  StaticCrossCheck check;
  if (!profile.derived) return check;
  check.checked = true;
  check.scheme_match =
      core::classify_scheme(from_static_profile(profile)) == claimed;
  check.hand_worst_abs = core::scheme_bound(claimed, in).worst_abs;
  check.derived_worst_abs = static_profile_bound(profile, in).worst_abs;
  check.dominates = check.hand_worst_abs >= check.derived_worst_abs;
  return check;
}

}  // namespace egemm::verify
