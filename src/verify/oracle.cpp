#include "verify/oracle.hpp"

#include "fp/twofold.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace egemm::verify {

OracleMatrix oracle_gemm(const gemm::Matrix& a, const gemm::Matrix& b,
                         const gemm::Matrix* c) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == a.rows() && c->cols() == b.cols()));
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  const std::size_t k = a.cols();

  OracleMatrix d{gemm::MatrixD(m, n), gemm::MatrixD(m, n)};
  util::global_pool().parallel_for(m, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double* hrow = d.hi.row(i);
      double* lrow = d.lo.row(i);
      if (c != nullptr) {
        for (std::size_t j = 0; j < n; ++j) {
          hrow[j] = static_cast<double>(c->at(i, j));
        }
      }
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double av = static_cast<double>(a.at(i, kk));
        const float* brow = b.row(kk);
        for (std::size_t j = 0; j < n; ++j) {
          // binary32 x binary32 widened to binary64 multiplies exactly, so
          // the dd accumulation is the only (2^-105) rounding in the loop.
          fp::dd_add(hrow[j], lrow[j], av * static_cast<double>(brow[j]));
        }
      }
    }
  });
  return d;
}

}  // namespace egemm::verify
