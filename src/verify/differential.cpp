#include "verify/differential.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "gemm/baselines.hpp"
#include "gemm/egemm.hpp"
#include "gemm/plan.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "verify/oracle.hpp"

namespace egemm::verify {

namespace {

/// Inputs at or beyond this magnitude risk an infinite hi plane (the
/// binary16 overflow threshold is 65520); together with non-finite values
/// they classify a case as special.
constexpr float kSplitOverflowEdge = 32768.0f;

bool span_special(std::span<const float> values, bool magnitude_check) {
  for (const float v : values) {
    if (!std::isfinite(v)) return true;
    if (magnitude_check && std::fabs(v) >= kSplitOverflowEdge) return true;
  }
  return false;
}

bool bitwise_equal(const gemm::Matrix& x, const gemm::Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         (x.size() == 0 ||
          std::memcmp(x.data().data(), y.data().data(),
                      x.size() * sizeof(float)) == 0);
}

using obs::append_json_escaped;

double now_seconds() noexcept {
  return static_cast<double>(obs::monotonic_ns()) * 1e-9;
}

/// Bumps the per-path case counter ("verify.cases.<path>"). Handles are
/// resolved once for all paths; path_name returns static literals, so the
/// registry never stores dangling views.
void count_path_case(Path path) {
  if constexpr (obs::kEnabled) {
    static const std::array<obs::Counter*, kPathCount> counters = [] {
      std::array<obs::Counter*, kPathCount> handles{};
      for (std::size_t p = 0; p < kPathCount; ++p) {
        handles[p] = &obs::registry().counter(
            std::string("verify.cases.") + path_name(static_cast<Path>(p)));
      }
      return handles;
    }();
    counters[static_cast<std::size_t>(path)]->add(1);
  }
}

}  // namespace

bool inputs_special(const FuzzInputs& inputs) {
  // C feeds the accumulator directly (no split), so only non-finite C is
  // special; A and B also trip on split overflow.
  return span_special(inputs.a.data(), true) ||
         span_special(inputs.b.data(), true) ||
         (inputs.use_c && span_special(inputs.c.data(), false));
}

const char* path_name(Path path) noexcept {
  switch (path) {
    case Path::kEgemmRound:
      return "egemm-round";
    case Path::kEgemmTruncate:
      return "egemm-truncate";
    case Path::kSeparatePasses:
      return "separate-passes";
    case Path::kMarkidis:
      return "markidis";
    case Path::kTcHalf:
      return "tc-half";
    case Path::kRecovery3:
      return "recovery-3term";
    case Path::kSlice3:
      return "slice-3term";
    case Path::kCount:
      break;
  }
  return "?";
}

core::SchemeId path_scheme(Path path) noexcept {
  switch (path) {
    case Path::kEgemmRound:
    case Path::kSeparatePasses:  // same rung, different pass order
      return core::SchemeId::kRound2;
    case Path::kEgemmTruncate:
      return core::SchemeId::kTruncate2;
    case Path::kMarkidis:
      return core::SchemeId::kMarkidis;
    case Path::kTcHalf:
      return core::SchemeId::kHalf;
    case Path::kRecovery3:
      return core::SchemeId::kRecovery3;
    case Path::kSlice3:
      return core::SchemeId::kSlice3;
    case Path::kCount:
      break;
  }
  EGEMM_EXPECTS(false && "invalid Path");
  return core::SchemeId::kRound2;
}

Path scheme_path(core::SchemeId scheme) noexcept {
  switch (scheme) {
    case core::SchemeId::kHalf:
      return Path::kTcHalf;
    case core::SchemeId::kMarkidis:
      return Path::kMarkidis;
    case core::SchemeId::kTruncate2:
      return Path::kEgemmTruncate;
    case core::SchemeId::kRound2:
      return Path::kEgemmRound;
    case core::SchemeId::kSlice3:
      return Path::kSlice3;
    case core::SchemeId::kRecovery3:
      return Path::kRecovery3;
    case core::SchemeId::kCount:
      break;
  }
  EGEMM_EXPECTS(false && "invalid SchemeId");
  return Path::kEgemmRound;
}

PathProfile path_profile(Path path) noexcept {
  return core::scheme_profile(path_scheme(path));
}

gemm::Matrix run_path(Path path, const gemm::Matrix& a, const gemm::Matrix& b,
                      const gemm::Matrix* c) {
  return run_path(path, gemm::default_context(), a, b, c);
}

gemm::Matrix run_path(Path path, gemm::GemmContext& ctx, const gemm::Matrix& a,
                      const gemm::Matrix& b, const gemm::Matrix* c) {
  // path_name returns string literals, so the span name outlives the trace.
  const obs::ScopedSpan span(path_name(path));
  switch (path) {
    case Path::kEgemmRound:
      return ctx.run(gemm::Backend::kEgemmTC, a, b, c);
    case Path::kEgemmTruncate: {
      gemm::EgemmOptions options;
      options.split = core::SplitMethod::kTruncateSplit;
      return ctx.run(gemm::Backend::kEgemmTC, a, b, c, options);
    }
    case Path::kSeparatePasses:
      return ctx.run(gemm::Backend::kCublasTcEmulation, a, b, c);
    case Path::kMarkidis:
      return ctx.run(gemm::Backend::kMarkidis, a, b, c);
    case Path::kTcHalf:
      return ctx.run(gemm::Backend::kCublasTcHalf, a, b, c);
    case Path::kRecovery3:
      return ctx.run_scheme(core::SchemeId::kRecovery3, a, b, c);
    case Path::kSlice3:
      return ctx.run_scheme(core::SchemeId::kSlice3, a, b, c);
    case Path::kCount:
      break;
  }
  EGEMM_EXPECTS(false && "invalid Path");
  return gemm::Matrix();
}

void PathObservation::merge(const PathObservation& other) {
  stats.merge(other.stats);
  violations += other.violations;
  if (other.worst_ratio > worst_ratio) {
    worst_ratio = other.worst_ratio;
    worst_measured = other.worst_measured;
    worst_bound = other.worst_bound;
  }
}

CaseResult run_case(const FuzzCase& fuzz) {
  return run_case(fuzz, gemm::default_context());
}

CaseResult run_case(const FuzzCase& fuzz, gemm::GemmContext& ctx) {
  CaseResult result;
  result.fuzz = fuzz;
  const FuzzInputs inputs = generate_inputs(fuzz);
  result.special = inputs_special(inputs);

  // Engine differential: the packed engine's contract is bitwise equality
  // with the scalar reference for EVERY input class, specials included --
  // run under the case's ladder rung so every scheme's packed path gets
  // soaked, not just the round-2term default.
  const Path engine_path = scheme_path(fuzz.scheme);
  const auto engine_index = static_cast<std::size_t>(engine_path);
  count_path_case(engine_path);
  const double packed_start = now_seconds();
  const gemm::Matrix packed =
      ctx.run_scheme(fuzz.scheme, inputs.a, inputs.b, inputs.c_ptr());
  result.path_seconds[engine_index] = now_seconds() - packed_start;
  const gemm::Matrix reference =
      ctx.run_scheme(fuzz.scheme, inputs.a, inputs.b, inputs.c_ptr(),
                     gemm::ExecEngine::kReference);
  result.engine_match = bitwise_equal(packed, reference);

  if (result.special) {
    EGEMM_COUNTER_ADD("verify.special_cases", 1);
    // No numeric bounds for IEEE-propagation cases, but every path must
    // still execute without tripping a contract or crashing.
    for (std::size_t p = 0; p < kPathCount; ++p) {
      if (p == engine_index) continue;
      count_path_case(static_cast<Path>(p));
      const double path_start = now_seconds();
      (void)run_path(static_cast<Path>(p), ctx, inputs.a, inputs.b,
                     inputs.c_ptr());
      result.path_seconds[p] = now_seconds() - path_start;
    }
    return result;
  }

  const double oracle_start = now_seconds();
  const OracleMatrix oracle = [&] {
    EGEMM_TRACE_SCOPE("oracle");
    return oracle_gemm(inputs.a, inputs.b, inputs.c_ptr());
  }();
  result.oracle_seconds = now_seconds() - oracle_start;
  EGEMM_COUNTER_ADD("verify.oracle_calls", 1);

  // Per-row / per-column scale context for the element bounds.
  std::vector<double> row_amax(fuzz.m, 0.0);
  for (std::size_t i = 0; i < fuzz.m; ++i) {
    for (std::size_t t = 0; t < fuzz.k; ++t) {
      row_amax[i] = std::max(
          row_amax[i], std::fabs(static_cast<double>(inputs.a.at(i, t))));
    }
  }
  std::vector<double> col_bmax(fuzz.n, 0.0);
  for (std::size_t t = 0; t < fuzz.k; ++t) {
    for (std::size_t j = 0; j < fuzz.n; ++j) {
      col_bmax[j] = std::max(
          col_bmax[j], std::fabs(static_cast<double>(inputs.b.at(t, j))));
    }
  }

  for (std::size_t p = 0; p < kPathCount; ++p) {
    const Path path = static_cast<Path>(p);
    if (path != engine_path) count_path_case(path);
    const double path_start = now_seconds();
    const gemm::Matrix candidate =
        path == engine_path
            ? packed
            : run_path(path, ctx, inputs.a, inputs.b, inputs.c_ptr());
    if (path != engine_path) {
      result.path_seconds[p] = now_seconds() - path_start;
    }
    const PathProfile profile = path_profile(path);
    PathObservation& observed = result.paths[p];
    for (std::size_t i = 0; i < fuzz.m; ++i) {
      for (std::size_t j = 0; j < fuzz.n; ++j) {
        const double ref = oracle.value(i, j);
        const double cand = static_cast<double>(candidate.at(i, j));
        observed.stats.accumulate(ref, cand);
        BoundInputs context;
        context.k = fuzz.k;
        context.a_scale = row_amax[i];
        context.b_scale = col_bmax[j];
        context.c_abs =
            inputs.use_c
                ? std::fabs(static_cast<double>(inputs.c.at(i, j)))
                : 0.0;
        const ErrorBound bound = element_bound(profile, context);
        const double err = std::fabs(cand - ref);
        const double ratio =
            bound.worst_abs > 0.0
                ? err / bound.worst_abs
                : (err > 0.0 ? std::numeric_limits<double>::infinity() : 0.0);
        if (err > bound.worst_abs) ++observed.violations;
        if (ratio > observed.worst_ratio) {
          observed.worst_ratio = ratio;
          observed.worst_measured = err;
          observed.worst_bound = bound.worst_abs;
        }
      }
    }
  }
  return result;
}

std::size_t AuditReport::total_violations() const noexcept {
  std::size_t total = 0;
  for (const PathSummary& path : paths) total += path.observed.violations;
  return total;
}

bool AuditReport::round_below_markidis() const noexcept {
  const fp::ErrorStats& round =
      uniform_stats[static_cast<std::size_t>(Path::kEgemmRound)];
  const fp::ErrorStats& markidis =
      uniform_stats[static_cast<std::size_t>(Path::kMarkidis)];
  return round.count > 0 && round.max_ulp < markidis.max_ulp;
}

AuditReport run_audit(const AuditOptions& options) {
  AuditReport report;
  report.seed = options.seed;
  std::vector<FuzzCase> plan = fuzz_plan(options.seed, options.cases);
  if (options.scheme) {
    // CI scheme-matrix lane: every case's engine differential on one rung.
    for (FuzzCase& fuzz : plan) fuzz.scheme = *options.scheme;
    report.engine_scheme = core::scheme_name(*options.scheme);
  }
  report.cases_planned = plan.size();
  const auto start = std::chrono::steady_clock::now();
  constexpr std::size_t kMaxFailingCases = 64;

  // One context for the whole audit: plans for recurring fuzz shapes are
  // resolved once and the split/pack workspaces recycle across cases.
  gemm::GemmContext ctx;

  for (const FuzzCase& fuzz : plan) {
    if (options.time_budget_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= options.time_budget_seconds) break;
    }
    const CaseResult result = run_case(fuzz, ctx);
    EGEMM_COUNTER_ADD("verify.cases", 1);
    ++report.cases_run;
    report.oracle_seconds += result.oracle_seconds;
    for (std::size_t p = 0; p < kPathCount; ++p) {
      report.path_seconds[p] += result.path_seconds[p];
    }
    if (result.special) ++report.special_cases;
    bool failing = !result.engine_match;
    if (!result.engine_match) ++report.engine_mismatches;
    for (std::size_t p = 0; p < kPathCount; ++p) {
      const PathObservation& observed = result.paths[p];
      if (observed.violations > 0) failing = true;
      PathSummary& summary = report.paths[p];
      if (observed.worst_ratio > summary.observed.worst_ratio) {
        summary.worst_case = format_case(fuzz);
      }
      summary.observed.merge(observed);
      if (fuzz.kind == InputKind::kUniform) {
        report.uniform_stats[p].merge(observed.stats);
      }
    }
    if (failing && report.failing_cases.size() < kMaxFailingCases) {
      report.failing_cases.push_back(format_case(fuzz));
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  report.wall_seconds = elapsed.count();
  return report;
}

bool write_audit_json(const std::string& path, const AuditReport& report,
                      const std::string& git_sha) {
  std::string out = "{\n  \"git_sha\": \"";
  append_json_escaped(out, git_sha);
  out += "\",\n  \"engine_scheme\": \"";
  append_json_escaped(out, report.engine_scheme);
  out += "\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"seed\": %llu,\n  \"cases_planned\": %zu,\n"
                "  \"cases_run\": %zu,\n  \"special_cases\": %zu,\n"
                "  \"engine_mismatches\": %zu,\n"
                "  \"total_violations\": %zu,\n"
                "  \"round_below_markidis\": %s,\n  \"paths\": [\n",
                static_cast<unsigned long long>(report.seed),
                report.cases_planned, report.cases_run, report.special_cases,
                report.engine_mismatches, report.total_violations(),
                report.round_below_markidis() ? "true" : "false");
  out += buf;
  for (std::size_t p = 0; p < kPathCount; ++p) {
    const PathSummary& summary = report.paths[p];
    out += "    {\"name\": \"";
    append_json_escaped(out, path_name(static_cast<Path>(p)));
    out += "\", \"scheme\": \"";
    append_json_escaped(out,
                        core::scheme_name(path_scheme(static_cast<Path>(p))));
    std::snprintf(buf, sizeof(buf),
                  "\", \"max_abs\": %.9g, \"mean_abs\": %.9g, "
                  "\"max_rel\": %.9g, \"max_ulp\": %.9g, "
                  "\"uniform_max_ulp\": %.9g, \"elements\": %zu, "
                  "\"violations\": %zu, \"worst_bound_ratio\": %.9g, "
                  "\"worst_case\": \"",
                  summary.observed.stats.max_abs,
                  summary.observed.stats.mean_abs(),
                  summary.observed.stats.max_rel,
                  summary.observed.stats.max_ulp,
                  report.uniform_stats[p].max_ulp,
                  summary.observed.stats.count, summary.observed.violations,
                  summary.observed.worst_ratio);
    out += buf;
    append_json_escaped(out, summary.worst_case);
    out += "\"}";
    out += p + 1 < kPathCount ? ",\n" : "\n";
  }
  // Observability block (DESIGN.md §12): wall-time split between the
  // oracle and each path, plus the process-wide metrics registry.
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"metrics\": {\n"
                "    \"wall_seconds\": %.9g,\n"
                "    \"oracle_seconds\": %.9g,\n"
                "    \"oracle_time_share\": %.9g,\n"
                "    \"paths\": [\n",
                report.wall_seconds, report.oracle_seconds,
                report.wall_seconds > 0.0
                    ? report.oracle_seconds / report.wall_seconds
                    : 0.0);
  out += buf;
  for (std::size_t p = 0; p < kPathCount; ++p) {
    out += "      {\"name\": \"";
    append_json_escaped(out, path_name(static_cast<Path>(p)));
    const double seconds = report.path_seconds[p];
    std::snprintf(buf, sizeof(buf),
                  "\", \"seconds\": %.9g, \"cases_per_second\": %.9g}%s",
                  seconds,
                  seconds > 0.0
                      ? static_cast<double>(report.cases_run) / seconds
                      : 0.0,
                  p + 1 < kPathCount ? ",\n" : "\n");
    out += buf;
  }
  out += "    ],\n    \"registry\": ";
  out += obs::metrics_json_block("    ");
  out += "\n  },\n  \"failing_cases\": [";
  for (std::size_t i = 0; i < report.failing_cases.size(); ++i) {
    out += i == 0 ? "\n    \"" : ",\n    \"";
    append_json_escaped(out, report.failing_cases[i]);
    out += "\"";
  }
  out += report.failing_cases.empty() ? "]\n}\n" : "\n  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace egemm::verify
