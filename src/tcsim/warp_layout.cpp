#include "tcsim/warp_layout.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace egemm::tcsim {

ThreadLayout loading_layout(int rows, int cols, int element_bytes) {
  EGEMM_EXPECTS(rows >= 1 && cols >= 1);
  EGEMM_EXPECTS(element_bytes == 2 || element_bytes == 4);

  // Each thread moves 16 bytes (one 128-bit transaction) per step.
  const int elems_per_thread = 16 / element_bytes;
  // Threads along a row: as many as the row supports.
  int x = std::max(1, cols / elems_per_thread);
  x = std::min(x, 32);
  // Round x down to a power of two that divides 32 so y = 32/x is whole.
  while (32 % x != 0) --x;
  return ThreadLayout{x, 32 / x};
}

std::vector<ThreadSlice> loading_slices(int rows, int cols, int element_bytes,
                                        const ThreadLayout& layout) {
  EGEMM_EXPECTS(layout.valid());
  const int elems_per_thread = 16 / element_bytes;

  std::vector<ThreadSlice> slices;
  // Threads sweep the tile in row blocks of layout.y rows; within a block,
  // lane (tx, ty) owns the tx-th 16-byte chunk of row ty. Rows whose
  // length exceeds x * elems_per_thread wrap to additional column passes.
  const int row_chunk = layout.x * elems_per_thread;
  for (int row0 = 0; row0 < rows; row0 += layout.y) {
    for (int col0 = 0; col0 < cols; col0 += row_chunk) {
      for (int lane = 0; lane < 32; ++lane) {
        const int tx = lane % layout.x;
        const int ty = lane / layout.x;
        const int row = row0 + ty;
        const int col = col0 + tx * elems_per_thread;
        if (row >= rows || col >= cols) continue;
        ThreadSlice slice;
        slice.thread = lane;
        slice.row = row;
        slice.col = col;
        slice.elements = std::min(elems_per_thread, cols - col);
        slices.push_back(slice);
      }
    }
  }
  return slices;
}

int bank_conflict_degree(const std::vector<int>& word_addrs) {
  constexpr int kBanks = 32;
  // Distinct starting words per bank; duplicates broadcast for free.
  std::array<std::vector<int>, kBanks> words_in_bank{};
  for (const int word : word_addrs) {
    EGEMM_EXPECTS(word >= 0);
    std::vector<int>& words = words_in_bank[static_cast<std::size_t>(
        word % kBanks)];
    if (std::find(words.begin(), words.end(), word) == words.end()) {
      words.push_back(word);
    }
  }
  std::size_t worst = 0;
  for (const std::vector<int>& words : words_in_bank) {
    worst = std::max(worst, words.size());
  }
  EGEMM_COUNTER_ADD("tcsim.bank_conflict_checks", 1);
  EGEMM_HISTOGRAM_RECORD("tcsim.bank_conflict_degree", worst);
  return static_cast<int>(worst);
}

int staging_conflict_degree(int cols, int pitch_halves) {
  EGEMM_EXPECTS(cols >= 8 && cols % 8 == 0);
  EGEMM_EXPECTS(pitch_halves >= cols && pitch_halves % 2 == 0);
  const ThreadLayout layout = loading_layout(32, cols, /*element_bytes=*/2);
  EGEMM_EXPECTS(cols % (layout.x * 8) == 0);

  // Walk enough passes (32 rows) to expose mod-32 wrap effects, grouping
  // each pass's slices into its four quarter-warp phases.
  const std::vector<ThreadSlice> slices =
      loading_slices(32, cols, /*element_bytes=*/2, layout);
  struct PhaseWords {
    std::array<std::vector<int>, 4> words;
  };
  std::map<std::pair<int, int>, PhaseWords> passes;  // (row0, col0) -> phases
  for (const ThreadSlice& slice : slices) {
    const int ty = slice.thread / layout.x;
    const int tx = slice.thread % layout.x;
    const auto pass_key = std::make_pair(slice.row - ty, slice.col - tx * 8);
    const int word = (slice.row * pitch_halves + slice.col) / 2;
    passes[pass_key]
        .words[static_cast<std::size_t>(slice.thread / 8)]
        .push_back(word);
  }
  int worst = 0;
  for (const auto& [key, phases] : passes) {
    (void)key;
    for (const std::vector<int>& words : phases.words) {
      worst = std::max(worst, bank_conflict_degree(words));
    }
  }
  return worst;
}

int fragment_conflict_degree(int rows, int pitch_halves) {
  EGEMM_EXPECTS(rows >= 1);
  EGEMM_EXPECTS(pitch_halves >= 2 && pitch_halves % 2 == 0);
  const int pitch_words = pitch_halves / 2;
  int worst = 0;
  for (int row0 = 0; row0 < rows; row0 += 8) {
    std::vector<int> words;
    for (int row = row0; row < std::min(row0 + 8, rows); ++row) {
      words.push_back(row * pitch_words);
    }
    worst = std::max(worst, bank_conflict_degree(words));
  }
  return worst;
}

WarpSharing warp_sharing(const gemm::TileConfig& config) {
  EGEMM_EXPECTS(config.valid());
  WarpSharing sharing;
  const int row_warps = config.bm / config.wm;
  const int col_warps = config.bn / config.wn;

  // Warp w covers warp-tile (w / col_warps, w % col_warps) of the block.
  sharing.a_bands.resize(static_cast<std::size_t>(row_warps));
  sharing.b_bands.resize(static_cast<std::size_t>(col_warps));
  for (int w = 0; w < config.warps_per_block(); ++w) {
    const int wr = w / col_warps;
    const int wc = w % col_warps;
    // The A band of rows [wr*wm, (wr+1)*wm) feeds every warp in that row
    // of the warp grid; the B band of columns likewise (Fig. 5's "a data
    // fragment may be used by multiple warps").
    sharing.a_bands[static_cast<std::size_t>(wr)].push_back(w);
    sharing.b_bands[static_cast<std::size_t>(wc)].push_back(w);
  }
  return sharing;
}

}  // namespace egemm::tcsim
