#include "tcsim/warp_layout.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace egemm::tcsim {

ThreadLayout loading_layout(int rows, int cols, int element_bytes) {
  EGEMM_EXPECTS(rows >= 1 && cols >= 1);
  EGEMM_EXPECTS(element_bytes == 2 || element_bytes == 4);

  // Each thread moves 16 bytes (one 128-bit transaction) per step.
  const int elems_per_thread = 16 / element_bytes;
  // Threads along a row: as many as the row supports.
  int x = std::max(1, cols / elems_per_thread);
  x = std::min(x, 32);
  // Round x down to a power of two that divides 32 so y = 32/x is whole.
  while (32 % x != 0) --x;
  return ThreadLayout{x, 32 / x};
}

std::vector<ThreadSlice> loading_slices(int rows, int cols, int element_bytes,
                                        const ThreadLayout& layout) {
  EGEMM_EXPECTS(layout.valid());
  const int elems_per_thread = 16 / element_bytes;

  std::vector<ThreadSlice> slices;
  // Threads sweep the tile in row blocks of layout.y rows; within a block,
  // lane (tx, ty) owns the tx-th 16-byte chunk of row ty. Rows whose
  // length exceeds x * elems_per_thread wrap to additional column passes.
  const int row_chunk = layout.x * elems_per_thread;
  for (int row0 = 0; row0 < rows; row0 += layout.y) {
    for (int col0 = 0; col0 < cols; col0 += row_chunk) {
      for (int lane = 0; lane < 32; ++lane) {
        const int tx = lane % layout.x;
        const int ty = lane / layout.x;
        const int row = row0 + ty;
        const int col = col0 + tx * elems_per_thread;
        if (row >= rows || col >= cols) continue;
        ThreadSlice slice;
        slice.thread = lane;
        slice.row = row;
        slice.col = col;
        slice.elements = std::min(elems_per_thread, cols - col);
        slices.push_back(slice);
      }
    }
  }
  return slices;
}

WarpSharing warp_sharing(const gemm::TileConfig& config) {
  EGEMM_EXPECTS(config.valid());
  WarpSharing sharing;
  const int row_warps = config.bm / config.wm;
  const int col_warps = config.bn / config.wn;

  // Warp w covers warp-tile (w / col_warps, w % col_warps) of the block.
  sharing.a_bands.resize(static_cast<std::size_t>(row_warps));
  sharing.b_bands.resize(static_cast<std::size_t>(col_warps));
  for (int w = 0; w < config.warps_per_block(); ++w) {
    const int wr = w / col_warps;
    const int wc = w % col_warps;
    // The A band of rows [wr*wm, (wr+1)*wm) feeds every warp in that row
    // of the warp grid; the B band of columns likewise (Fig. 5's "a data
    // fragment may be used by multiple warps").
    sharing.a_bands[static_cast<std::size_t>(wr)].push_back(w);
    sharing.b_bands[static_cast<std::size_t>(wc)].push_back(w);
  }
  return sharing;
}

}  // namespace egemm::tcsim
