#pragma once
// Stage-based heuristic register allocation (§5.2).
//
// The paper observes that a Tensor-Core GEMM kernel runs through four
// stages -- (1) context/index computation, (2) loading C, (3) the main
// compute loop, (4) storing C -- whose register demands barely overlap, and
// manually reuses registers across stages, landing at 232 of the 256
// per-thread registers with no spill. This module models that allocator:
// values are declared with a stage and a persistence flag; persistent
// values (the C accumulator FRAG, double-buffered A/B fragments, loop
// state) live across stages, stage-local values are overlaid.

#include <string>
#include <vector>

namespace egemm::tcsim {

struct RegisterValue {
  std::string name;
  int registers = 0;   ///< 32-bit registers per thread
  int stage = 0;       ///< 0-based stage index
  bool persistent = false;  ///< lives across all stages from `stage` on
};

struct KernelRegisterPlan {
  std::vector<RegisterValue> values;
  int stage_count = 4;
};

struct StageUsage {
  int stage = 0;
  int persistent_registers = 0;
  int local_registers = 0;
  int total() const noexcept { return persistent_registers + local_registers; }
};

struct AllocationResult {
  int per_thread = 0;        ///< registers with cross-stage reuse
  int naive_per_thread = 0;  ///< registers if every value got its own slot
  bool spills = false;       ///< per_thread exceeded the budget
  int spilled_registers = 0;
  std::vector<StageUsage> stages;
};

/// Allocates `plan` against a per-thread register budget.
AllocationResult allocate_registers(const KernelRegisterPlan& plan,
                                    int budget);

/// Builds the EGEMM-TC register plan for a block tiling (bm,bn,bk) and warp
/// tiling (wm,wn,wk) with `threads` threads per block. With the paper's
/// Table 4 configuration this lands at 232 registers per thread.
KernelRegisterPlan egemm_register_plan(int bm, int bn, int bk, int wm, int wn,
                                       int wk, int threads);

}  // namespace egemm::tcsim
