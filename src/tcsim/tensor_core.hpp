#pragma once
// Bit-accurate functional model of the Tensor Core compute primitive
// D = A x B + C (§2.1) plus the probing primitives used by the
// generalized emulation-design workflow (§3.1, Fig. 2a / Fig. 3).
//
// Modeled operation precision (and what the profiling harness verifies):
//  * A, B entries are IEEE binary16;
//  * each product float(a)*float(b) is exact in binary32 (11-bit x 11-bit
//    significands fit in 24 bits);
//  * products are summed two at a time (adjacent pairs) and the pair sums
//    chain onto the running accumulator starting from C -- the two-element
//    inner step documented for Volta/Turing HMMA [12, 13].
//
// The within-pair reassociation is the only difference from the natural
// sequential CPU loop, which reproduces the paper's empirical observation:
// the Tensor Core result agrees with a sequential binary32 computation
// ("d_FLOAT") on the leading 21+ mantissa bits in the typical trial while
// not always being bit-identical (the artifact's example shows a 1-bit
// difference), and is far from the binary16-accumulated probe ("d_HALF").

#include <cstddef>
#include <span>

#include "fp/half.hpp"
#include "tcsim/fragment.hpp"

namespace egemm::tcsim {

namespace detail {

/// The ONE pair-sum accumulation core every Tensor-Core path shares:
/// exact binary16 products are summed two at a time (adjacent pairs) and
/// the pair sums chain onto the running accumulator starting from C -- the
/// two-element inner step documented for Volta/Turing HMMA [12, 13].
/// `product(i)` returns the i-th (exact) widened product. mma_sync,
/// mma_tile_f32, tc_dot and the packed block kernel all reduce to this
/// sequence per output element, so the semantics cannot drift between
/// paths (tests pin them bitwise against each other).
template <typename ProductAt>
inline float pair_sum_accumulate(std::size_t k, float c,
                                 ProductAt product) noexcept {
  float acc = c;
  std::size_t i = 0;
  for (; i + 1 < k; i += 2) {
    const float p0 = product(i);
    const float p1 = product(i + 1);
    acc += p0 + p1;
  }
  if (i < k) acc += product(i);
  return acc;
}

}  // namespace detail

/// wmma::mma_sync equivalent on 16x16x16 tiles: d = a x b + c.
void mma_sync(FragmentAcc& d, const FragmentA& a, const FragmentB& b,
              const FragmentAcc& c) noexcept;

/// Fast-path tile MMA on half-valued float arrays (the bulk GEMM path).
/// `a` is m x k row-major with leading dimension `lda` (similarly b, d);
/// every a/b entry must be exactly representable in binary16 -- callers get
/// this for free because the values come from a data split. Accumulates
/// into d (d += a x b) with the exact semantics described above.
void mma_tile_f32(float* d, std::size_t ldd, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, int m, int n,
                  int k) noexcept;

/// Dot product with Tensor-Core accumulation semantics (one output element
/// of the primitive); exposed for the profiling workflow and tests.
float tc_dot(std::span<const fp::Half> a, std::span<const fp::Half> b,
             float c) noexcept;

/// Contiguous fast-path variant of tc_dot over half-valued float arrays;
/// the bulk-GEMM inner loop. Same accumulation semantics as mma_sync.
float tc_dot_f32(const float* a, const float* b, int k, float c) noexcept;

/// Packed-tile MMA: the vectorized bulk-GEMM kernel (DESIGN.md §10).
/// Accumulates a kTcM x kTcN tile: acc (row-major, leading dimension kTcN)
/// += Ablk x Bblk, where Ablk is kTcM rows of pre-widened half-valued
/// floats with leading dimension `lda` (a packed A-plane tile) and Bblk is
/// `k` contiguous rows of kTcN floats (a packed B-plane k-slab). Each
/// output element performs exactly the pair_sum_accumulate sequence; the
/// column index is the SIMD lane dimension, so the inner loop walks both
/// packs at unit stride and vectorizes without reassociating anything.
/// Dispatches to the runtime-selected ISA variant (simd/dispatch.hpp,
/// DESIGN.md §15); every variant is pinned bit-identical to the scalar
/// sequence above.
void mma_block_packed(float* acc, const float* a, std::size_t lda,
                      const float* b, int k) noexcept;

/// Whole-tile packed recipe: runs the packed engine's full per-tile
/// combo x k-slab loop in one dispatched call so the SIMD variants can
/// keep the kTcM x kTcN accumulator tile in registers across the entire k
/// extent. `a_blocks[c]` / `b_blocks[c]` are the combo-c packed A-plane
/// tile base (leading dimension `lda`) and B-plane block base. Semantics
/// are exactly the loop nest
///
///   fused:  for k0 step k_slab: for c: mma_block_packed(acc,
///           a_blocks[c] + k0, lda, b_blocks[c] + k0 * kTcN, kt)
///   !fused: the same with the c / k0 loops exchanged
///
/// with kt = min(k_slab, k - k0). `k_slab` must be even or >= k: even slab
/// boundaries keep the pair-sum pairing on even k offsets, making the slab
/// length a pure blocking choice in the !fused order (any even value gives
/// bit-identical results). In the fused order the slab length is part of
/// the emulation recipe and callers pass the semantic value (16).
void mma_tile_recipe(float* acc, const float* const* a_blocks,
                     const float* const* b_blocks, int ncombos,
                     std::size_t lda, int k, int k_slab,
                     bool fused) noexcept;

// -- Probing compute primitives (Fig. 2a) -----------------------------------
// Each computes the same dot product under a hypothesised intermediate
// precision; the profiling harness compares them bitwise against tc_dot.

/// Hypothesis 1: multiply and accumulate entirely in binary16 ("d_HALF").
float probe_dot_half(std::span<const fp::Half> a, std::span<const fp::Half> b,
                     float c) noexcept;

/// Hypothesis 2: operands widened to binary32, sequential binary32
/// accumulation ("d_FLOAT").
float probe_dot_float(std::span<const fp::Half> a, std::span<const fp::Half> b,
                      float c) noexcept;

/// CPU ground truth at binary64 (used to bound both hypotheses).
double probe_dot_double(std::span<const fp::Half> a,
                        std::span<const fp::Half> b, double c) noexcept;

/// A deliberately wrong specialized core (binary16 accumulation) used by
/// the failure-injection tests: the workflow must reject the binary32
/// hypothesis for it.
float broken_tc_dot(std::span<const fp::Half> a, std::span<const fp::Half> b,
                    float c) noexcept;

}  // namespace egemm::tcsim
