#include "tcsim/register_alloc.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace egemm::tcsim {

AllocationResult allocate_registers(const KernelRegisterPlan& plan,
                                    int budget) {
  EGEMM_EXPECTS(budget > 0);
  EGEMM_EXPECTS(plan.stage_count > 0);

  AllocationResult result;
  result.stages.resize(static_cast<std::size_t>(plan.stage_count));
  for (int s = 0; s < plan.stage_count; ++s) {
    result.stages[static_cast<std::size_t>(s)].stage = s;
  }

  for (const RegisterValue& value : plan.values) {
    EGEMM_EXPECTS(value.stage >= 0 && value.stage < plan.stage_count);
    EGEMM_EXPECTS(value.registers >= 0);
    result.naive_per_thread += value.registers;
    if (value.persistent) {
      // A persistent value is live from its declaring stage to the end.
      for (int s = value.stage; s < plan.stage_count; ++s) {
        result.stages[static_cast<std::size_t>(s)].persistent_registers +=
            value.registers;
      }
    } else {
      result.stages[static_cast<std::size_t>(value.stage)].local_registers +=
          value.registers;
    }
  }

  for (const StageUsage& stage : result.stages) {
    result.per_thread = std::max(result.per_thread, stage.total());
  }
  result.spills = result.per_thread > budget;
  result.spilled_registers = std::max(0, result.per_thread - budget);
  return result;
}

KernelRegisterPlan egemm_register_plan(int bm, int bn, int bk, int wm, int wn,
                                       int wk, int threads) {
  EGEMM_EXPECTS(threads > 0 && threads % 32 == 0);
  KernelRegisterPlan plan;
  plan.stage_count = 4;  // context, load-C, compute, store-C (§5.2)

  auto per_thread_regs = [threads](std::size_t bytes_per_block) {
    return static_cast<int>(
        (bytes_per_block + static_cast<std::size_t>(threads) * 4 - 1) /
        (static_cast<std::size_t>(threads) * 4));
  };
  const int warps = (bm / wm) * (bn / wn);

  // Persistent values (live for the whole kernel once declared).
  // C accumulator FRAG: bm x bn binary32, resident per Table 2's caching.
  plan.values.push_back({"c_accumulator_frag",
                         per_thread_regs(static_cast<std::size_t>(bm) *
                                         static_cast<std::size_t>(bn) * 4),
                         1, true});
  // Double-buffered A fragments: wm x wk, lo+hi halves, two buffers.
  plan.values.push_back(
      {"a_fragments",
       per_thread_regs(static_cast<std::size_t>(warps) *
                       static_cast<std::size_t>(wm) *
                       static_cast<std::size_t>(wk) * 2 * 2 * 2),
       2, true});
  // Double-buffered B fragments: wk x wn, lo+hi halves, two buffers.
  plan.values.push_back(
      {"b_fragments",
       per_thread_regs(static_cast<std::size_t>(warps) *
                       static_cast<std::size_t>(wk) *
                       static_cast<std::size_t>(wn) * 2 * 2 * 2),
       2, true});
  // Global->register staging for the software-pipelined LDG stream
  // (register-enhanced scheduling, §5.1): one block tile of A+B halves.
  plan.values.push_back(
      {"ldg_staging",
       per_thread_regs(4 * static_cast<std::size_t>(bm + bn) *
                       static_cast<std::size_t>(bk)),
       0, true});
  // Loop counters, matrix pointers, predicates.
  plan.values.push_back({"loop_state", 16, 0, true});

  // Stage-local values, overlaid across stages by the allocator.
  plan.values.push_back({"context_indices", 24, 0, false});
  plan.values.push_back({"c_load_addresses", 40, 1, false});
  plan.values.push_back({"compute_temporaries", 72, 2, false});
  plan.values.push_back({"c_store_addresses", 48, 3, false});
  return plan;
}

}  // namespace egemm::tcsim
