#include "tcsim/occupancy.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace egemm::tcsim {

Occupancy compute_occupancy(const GpuSpec& spec,
                            const BlockResources& resources) {
  EGEMM_EXPECTS(resources.threads > 0);
  EGEMM_EXPECTS(resources.threads % 32 == 0);

  Occupancy occ;
  occ.blocks_per_sm = spec.max_warps_per_sm * 32 / resources.threads;
  occ.limited_by = OccupancyLimit::kWarps;

  if (resources.shared_memory_bytes > 0) {
    const auto by_smem = static_cast<int>(spec.shared_memory_per_sm /
                                          resources.shared_memory_bytes);
    if (by_smem < occ.blocks_per_sm) {
      occ.blocks_per_sm = by_smem;
      occ.limited_by = OccupancyLimit::kSharedMemory;
    }
  }
  if (resources.registers_per_thread > 0) {
    const std::size_t regs_per_block =
        static_cast<std::size_t>(resources.registers_per_thread) *
        static_cast<std::size_t>(resources.threads) * 4u;  // 4 bytes each
    const auto by_regs =
        static_cast<int>(spec.register_file_per_sm / regs_per_block);
    if (by_regs < occ.blocks_per_sm) {
      occ.blocks_per_sm = by_regs;
      occ.limited_by = OccupancyLimit::kRegisters;
    }
  }
  if (occ.blocks_per_sm <= 0) {
    occ.blocks_per_sm = 0;
    return occ;
  }
  return occ;
}

std::uint32_t wave_count(std::uint64_t blocks, const GpuSpec& spec,
                         int blocks_per_sm) noexcept {
  if (blocks == 0 || blocks_per_sm <= 0) return 0;
  const std::uint64_t concurrent =
      static_cast<std::uint64_t>(spec.sm_count) *
      static_cast<std::uint64_t>(blocks_per_sm);
  return static_cast<std::uint32_t>((blocks + concurrent - 1) / concurrent);
}

double kernel_cycles(std::uint64_t blocks, double block_cycles,
                     const GpuSpec& spec, int blocks_per_sm) noexcept {
  return static_cast<double>(wave_count(blocks, spec, blocks_per_sm)) *
         block_cycles;
}

}  // namespace egemm::tcsim
