#pragma once
// Occupancy and wave model: how many blocks fit on an SM given the shared
// memory / register budgets, and how a grid of identical blocks schedules
// onto the whole GPU (wave quantization). Feeds both the kernel-level
// timing composition and the analytic model's feasibility checks.

#include <cstddef>
#include <cstdint>

#include "tcsim/gpu_spec.hpp"

namespace egemm::tcsim {

struct BlockResources {
  std::size_t shared_memory_bytes = 0;
  int registers_per_thread = 0;
  int threads = 0;
};

enum class OccupancyLimit { kSharedMemory, kRegisters, kWarps, kNone };

struct Occupancy {
  int blocks_per_sm = 0;
  OccupancyLimit limited_by = OccupancyLimit::kNone;
};

/// Blocks per SM under the hardware budgets; 0 means the block does not
/// fit at all (e.g. shared-memory demand above 64 KB).
Occupancy compute_occupancy(const GpuSpec& spec,
                            const BlockResources& resources);

/// Number of sequential waves needed to run `blocks` blocks.
std::uint32_t wave_count(std::uint64_t blocks, const GpuSpec& spec,
                         int blocks_per_sm) noexcept;

/// Kernel makespan in cycles: per-block cycles quantized into waves, i.e.
/// ceil(blocks / (sm_count * blocks_per_sm)) * block_cycles.
double kernel_cycles(std::uint64_t blocks, double block_cycles,
                     const GpuSpec& spec, int blocks_per_sm) noexcept;

}  // namespace egemm::tcsim
