#include "tcsim/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace egemm::tcsim {

namespace {

struct OpTiming {
  double issue;    ///< port occupancy per instruction
  double latency;  ///< completion delay after the last issue
};

OpTiming timing_of(Opcode op, const InstructionTimings& t,
                   double ldg_issue) noexcept {
  switch (op) {
    case Opcode::kLdg:
      return {ldg_issue, t.ldg_latency};
    case Opcode::kSts:
      return {t.sts_issue, t.sts_latency};
    case Opcode::kLds:
      return {t.lds_issue, t.lds_latency};
    case Opcode::kHmma:
      return {t.hmma_issue, t.hmma_latency};
    case Opcode::kFfma:
      return {t.ffma_issue, t.ffma_latency};
    case Opcode::kBar:
      return {0.0, t.barrier_cost};
  }
  return {0.0, 0.0};
}

}  // namespace

namespace {

SimStats simulate_impl(const SimProgram& program, const GpuSpec& spec,
                       std::vector<TraceEvent>* trace) {
  // One LDG.128 warp instruction moves 512 bytes; its sustained issue rate
  // is limited by this SM's share of the L2 bandwidth (Table 3 budget).
  const double ldg_issue =
      512.0 / std::max(1e-9, spec.l2_bytes_per_cycle_per_sm());

  std::vector<double> token_time(
      static_cast<std::size_t>(std::max<std::int32_t>(1, program.token_count)),
      0.0);
  std::array<double, 4> port_free{};
  SimStats stats;

  double cursor = 0.0;  // in-order issue cursor
  double makespan = 0.0;

  for (const SimInstr& instr : program.instrs) {
    const OpTiming timing =
        timing_of(instr.op, spec.timings, ldg_issue);
    double wait_until =
        instr.wait_token >= 0
            ? token_time[static_cast<std::size_t>(instr.wait_token)]
            : 0.0;
    if (instr.wait_token2 >= 0) {
      wait_until = std::max(
          wait_until, token_time[static_cast<std::size_t>(instr.wait_token2)]);
    }

    if (instr.op == Opcode::kBar) {
      const double start = std::max(cursor, wait_until);
      stats.stall_cycles += std::max(0.0, wait_until - cursor);
      cursor = start + timing.latency;
      makespan = std::max(makespan, cursor);
      if (instr.produce_token >= 0) {
        auto& token = token_time[static_cast<std::size_t>(instr.produce_token)];
        token = std::max(token, cursor);
      }
      ++stats.instructions;
      continue;
    }

    auto& free_at = port_free[static_cast<std::size_t>(port_of(instr.op))];
    const double earliest = std::max(cursor, free_at);
    const double start = std::max(earliest, wait_until);
    stats.stall_cycles += std::max(0.0, wait_until - earliest);

    const double count = static_cast<double>(instr.count);
    const double occupy = count * timing.issue;
    const double done = start + occupy + timing.latency;

    free_at = start + occupy;
    stats.port_busy[static_cast<std::size_t>(port_of(instr.op))] += occupy;
    // The decode cursor advances at the scheduler's aggregate rate, NOT by
    // the port occupancy: younger instructions bound for *other* ports may
    // issue while this group is still draining -- that concurrency is the
    // latency-hiding opportunity the Fig. 6 schedule exploits. A scoreboard
    // stall (token wait) does block the in-order stream, which is why
    // instruction *ordering* changes performance at all.
    cursor = start + count / spec.timings.decode_rate;
    makespan = std::max(makespan, done);

    if (instr.produce_token >= 0) {
      auto& token = token_time[static_cast<std::size_t>(instr.produce_token)];
      token = std::max(token, instr.produce_at_issue ? free_at : done);
    }
    stats.instructions += instr.count;
    if (trace != nullptr) {
      trace->push_back(TraceEvent{instr.op, port_of(instr.op), start, free_at,
                                  done, instr.count});
    }
  }

  stats.cycles = makespan;
  return stats;
}

}  // namespace

SimStats simulate_block(const SimProgram& program, const GpuSpec& spec) {
  return simulate_impl(program, spec, nullptr);
}

TraceResult simulate_block_trace(const SimProgram& program,
                                 const GpuSpec& spec) {
  TraceResult result;
  result.stats = simulate_impl(program, spec, &result.events);
  return result;
}

std::string render_timeline(const TraceResult& trace, double from, double to,
                            int width) {
  if (to <= from || width <= 0) return "";
  const double bucket = (to - from) / width;

  // One row per port, plus a header with the cycle range.
  static constexpr char kPortChar[4] = {'H', 'S', 'G', 'C'};
  static const char* kPortName[4] = {"tensor (HMMA)", "MIO (LDS/STS)",
                                     "global (LDG/STG)", "CUDA (FFMA)"};
  std::vector<std::string> rows(4, std::string(static_cast<std::size_t>(width), '.'));
  for (const TraceEvent& event : trace.events) {
    if (event.busy_until <= from || event.start >= to) continue;
    const double begin = std::max(event.start, from);
    const double end = std::min(event.busy_until, to);
    auto first = static_cast<int>((begin - from) / bucket);
    auto last = static_cast<int>((end - from) / bucket);
    first = std::clamp(first, 0, width - 1);
    last = std::clamp(last, first, width - 1);
    const auto port = static_cast<std::size_t>(event.port);
    for (int i = first; i <= last; ++i) {
      rows[port][static_cast<std::size_t>(i)] = kPortChar[port];
    }
  }

  std::string out = "cycles " + std::to_string(static_cast<long long>(from)) +
                    " .. " + std::to_string(static_cast<long long>(to)) +
                    " (one column ~ " +
                    std::to_string(static_cast<long long>(bucket)) +
                    " cycles)\n";
  for (std::size_t p = 0; p < 4; ++p) {
    char label[24];
    std::snprintf(label, sizeof label, "%-17s|", kPortName[p]);
    out += label;
    out += rows[p];
    out += "|\n";
  }
  return out;
}

}  // namespace egemm::tcsim
