#pragma once
// SASS-level instruction-stream model (§5).
//
// The simulator works at SM-aggregate granularity: one GPU block runs on
// one SM (the paper's chosen occupancy, Table 4) and the instructions of
// its warps are folded into a single in-order issue stream, the way the
// hand-written SASS kernel lays them out. Four instruction kinds matter
// (§5.1): LDG (global->register), STS (register->shared), LDS
// (shared->register) and HMMA (Tensor Core compute); FFMA stands in for
// CUDA-core epilogue work and BAR for __syncthreads().
//
// Dependencies are expressed with tokens: an instruction may wait on one
// token (all its producers complete) and contribute to one token. The
// register-enhanced scheduling of Fig. 6 is purely an *ordering* choice
// over the same multiset of instructions -- exactly like the real SASS
// optimization -- so the latency-hiding ablation (Fig. 11) compares two
// orderings of identical work.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tcsim/gpu_spec.hpp"

namespace egemm::tcsim {

enum class Opcode : std::uint8_t { kLdg, kSts, kLds, kHmma, kFfma, kBar };

enum class Port : std::uint8_t {
  kTensor,  ///< HMMA
  kMio,     ///< LDS / STS (shared-memory pipe)
  kGlobal,  ///< LDG (L2/DRAM bandwidth share)
  kCuda,    ///< FFMA and other CUDA-core work
};

Port port_of(Opcode op) noexcept;
const char* opcode_name(Opcode op) noexcept;

struct SimInstr {
  Opcode op;
  std::int32_t wait_token = -1;     ///< issue only after this token completes
  std::int32_t produce_token = -1;  ///< completion feeds this token
  /// Replication count: `count` back-to-back identical instructions. Groups
  /// keep program vectors small without changing simulated behaviour.
  std::uint32_t count = 1;
  /// Optional second wait (e.g. a SASS wait mask naming two barriers).
  std::int32_t wait_token2 = -1;
  /// When true the produced token fires at issue completion (the moment
  /// sources are consumed -- SASS *read* barriers) instead of at result
  /// completion (SASS *write* barriers).
  bool produce_at_issue = false;
};

struct SimProgram {
  std::vector<SimInstr> instrs;
  std::int32_t token_count = 0;

  std::int32_t new_token() { return token_count++; }
  void emit(Opcode op, std::uint32_t count = 1, std::int32_t wait = -1,
            std::int32_t produce = -1) {
    instrs.push_back(SimInstr{op, wait, produce, count});
  }
  /// Total dynamic instruction count (expanding replication).
  std::uint64_t dynamic_size() const noexcept;
};

/// Work volumes of one EGEMM-TC main-loop iteration, derived from the
/// tiling; shared by the stream builder and the analytic model.
struct IterationShape {
  std::uint32_t ldg = 0;            ///< LDG.128 warp instructions
  std::uint32_t sts = 0;            ///< STS.128 warp instructions
  std::uint32_t lds_per_step = 0;   ///< LDS.32 warp instructions per k'-step
  std::uint32_t hmma_per_step = 0;  ///< HMMA.1688 instructions per k'-step
  std::uint32_t steps = 0;          ///< k'-steps per iteration (bk / wk)
};

struct EgemmStreamOptions {
  bool latency_hiding = true;  ///< Fig. 6 interleaved order vs naive order
  bool frag_caching = true;    ///< Table 2 intra-warp FRAG caching
  std::uint32_t emulation_instructions = 4;  ///< Alg. 1 (4) vs Dekker (16)
};

/// Computes the per-iteration instruction counts for a block tiling
/// (bm, bn, bk) / warp tiling (wm, wn, wk); see DESIGN.md §6 for the
/// derivation that matches the paper's Eqs. 2, 3 and 7 and Table 2.
IterationShape egemm_iteration_shape(int bm, int bn, int bk, int wm, int wn,
                                     int wk, const EgemmStreamOptions& opts);

/// Builds the full block program for `iterations` main-loop iterations:
/// cold-start load, software-pipelined (or naive) main loop, and an
/// epilogue that writes the C block tile back through the global port
/// (`epilogue_stg` STG.128-equivalent warp instructions).
SimProgram build_egemm_block_program(const IterationShape& shape,
                                     std::uint32_t iterations,
                                     const EgemmStreamOptions& opts,
                                     std::uint32_t epilogue_stg = 0);

}  // namespace egemm::tcsim
