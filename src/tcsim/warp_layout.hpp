#pragma once
// Warp collaboration and two-phase thread layouts (§4, Fig. 5).
//
// A Tensor Core kernel runs each warp in two phases with *different*
// logical thread organizations:
//   * data-loading phase: the 32 threads take a 2D layout (e.g. 16x2) so
//     each thread owns a disjoint, contiguous slice of the tile being
//     staged -- "assigning non-overlapping memory access workload to each
//     thread";
//   * computation phase: the default (32,1) layout required for the
//     collaborative mma_sync call.
// And across the block, warps collaborate: during loading, all warps
// together stage the whole block tile (each data fragment may later be
// consumed by several warps -- Fig. 5's colored sharing).
//
// This module computes those assignments and exposes the invariants the
// tests verify: per-thread slices are disjoint and cover the tile; vector
// width matches the 128-bit transactions the stream model counts; warp
// tile consumption maps every warp to the block-tile rows/columns it
// reads.

#include <cstdint>
#include <vector>

#include "gemm/tiling.hpp"

namespace egemm::tcsim {

/// A thread's slice of a staged tile, in elements of the tile's row-major
/// storage.
struct ThreadSlice {
  int thread = 0;     ///< lane 0..31
  int row = 0;        ///< tile row the slice starts in
  int col = 0;        ///< tile column (elements)
  int elements = 0;   ///< contiguous elements owned by this thread
};

/// 2D thread organization for the loading phase.
struct ThreadLayout {
  int x = 32;  ///< threads along rows
  int y = 1;   ///< rows covered concurrently
  bool valid() const noexcept { return x >= 1 && y >= 1 && x * y == 32; }
};

/// Picks the loading-phase layout for a (rows x cols) tile of
/// `element_bytes`-sized elements: the widest 128-bit-per-thread shape
/// whose x extent matches the tile's row length (the paper's example:
/// a 16x16 tile is "much easier to program" as 16x2 than as 32x1).
ThreadLayout loading_layout(int rows, int cols, int element_bytes);

/// Per-thread slices for one pass of a warp loading a (rows x cols) tile
/// under `layout`; threads sweep row blocks until the tile is covered.
std::vector<ThreadSlice> loading_slices(int rows, int cols, int element_bytes,
                                        const ThreadLayout& layout);

/// The computation-phase organization (fixed by the CUDA programming
/// guide: one warp, 32 lanes, collaborative fragment ops).
constexpr ThreadLayout compute_layout() noexcept { return ThreadLayout{32, 1}; }

/// Shared memory has 32 banks of 4-byte words; a 128-bit access issues in
/// quarter-warp phases of 8 lanes and conflicts when two lanes of a phase
/// start in *different* words of the same bank (same-word access is a
/// broadcast/merge). Returns the worst per-bank multiplicity of the given
/// starting-word addresses (1 = conflict-free, 0 for no addresses).
int bank_conflict_degree(const std::vector<int>& word_addrs);

/// Worst phase conflict degree of the staging stores (STS.128): a warp
/// stores tile rows of `cols` halves under loading_layout/loading_slices
/// into shared rows of `pitch_halves` halves. `cols` must fill whole
/// lane rows (cols % (layout.x * 8) == 0) and the pitch whole words.
int staging_conflict_degree(int cols, int pitch_halves);

/// Worst octet conflict degree of the fragment loads (LDS): groups of 8
/// lanes read 8 consecutive tile rows at `pitch_halves`. The padded pitch
/// (bk + 4 halves) makes this 1; the unpadded power-of-two pitch makes
/// every octet collide 4-way (the conflict Table 4's padding removes).
int fragment_conflict_degree(int rows, int pitch_halves);

/// Which warps of a block consume a given block-tile fragment during the
/// computation phase (Fig. 5's sharing): for the A block tile, every warp
/// whose warp-tile rows intersect the fragment's rows.
struct WarpSharing {
  /// sharing[f] = warp indexes reading fragment f (one fragment per
  /// wm-rows band of A / wn-cols band of B).
  std::vector<std::vector<int>> a_bands;
  std::vector<std::vector<int>> b_bands;
};
WarpSharing warp_sharing(const gemm::TileConfig& config);

}  // namespace egemm::tcsim
