#include "tcsim/instruction.hpp"

#include "tcsim/fragment.hpp"
#include "util/assert.hpp"

namespace egemm::tcsim {

Port port_of(Opcode op) noexcept {
  switch (op) {
    case Opcode::kHmma:
      return Port::kTensor;
    case Opcode::kLds:
    case Opcode::kSts:
      return Port::kMio;
    case Opcode::kLdg:
      return Port::kGlobal;
    case Opcode::kFfma:
    case Opcode::kBar:
      return Port::kCuda;
  }
  return Port::kCuda;
}

const char* opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::kLdg:
      return "LDG";
    case Opcode::kSts:
      return "STS";
    case Opcode::kLds:
      return "LDS";
    case Opcode::kHmma:
      return "HMMA";
    case Opcode::kFfma:
      return "FFMA";
    case Opcode::kBar:
      return "BAR";
  }
  return "?";
}

std::uint64_t SimProgram::dynamic_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& instr : instrs) total += instr.count;
  return total;
}

IterationShape egemm_iteration_shape(int bm, int bn, int bk, int wm, int wn,
                                     int wk,
                                     const EgemmStreamOptions& opts) {
  EGEMM_EXPECTS(bm > 0 && bn > 0 && bk > 0 && wm > 0 && wn > 0 && wk > 0);
  EGEMM_EXPECTS(bm % wm == 0 && bn % wn == 0 && bk % wk == 0);

  const auto warps = static_cast<std::uint32_t>((bm / wm) * (bn / wn));
  IterationShape shape;
  shape.steps = static_cast<std::uint32_t>(bk / wk);

  // Global loads per iteration (Eq. 2): lo+hi halves of the A (bm x bk) and
  // B (bk x bn) block tiles, 2 bytes each -> 4(bm+bn)bk bytes. One LDG.128
  // warp instruction moves 32 threads x 16 B = 512 B.
  const auto global_bytes = static_cast<std::uint32_t>(4 * (bm + bn) * bk);
  shape.ldg = global_bytes / 512;
  shape.sts = global_bytes / 512;

  // Shared-memory loads per k'-step. With FRAG caching each warp reads the
  // lo+hi A (wm x wk) and B (wk x wn) fragments exactly once per step and
  // the C accumulator never leaves the FRAG (Table 2, "w/ FRAG caching").
  // One LDS.32 warp instruction moves 32 x 4 B = 128 B.
  std::uint64_t lds_bytes_per_step;
  std::uint64_t extra_sts = 0;
  if (opts.frag_caching) {
    lds_bytes_per_step =
        static_cast<std::uint64_t>(warps) * 4u *
        static_cast<std::uint64_t>(wk) * static_cast<std::uint64_t>(wm + wn);
  } else {
    // Without FRAG caching the A fragment is re-read for every TC-tile
    // column (wn / tn re-reads) and B for every TC-tile row, and the C tile
    // is streamed through shared memory each step (4 wm wn bytes each way)
    // -- the "w/o FRAG caching" column of Table 2.
    const auto a_rereads = static_cast<std::uint64_t>(wn / kTcN);
    const auto b_rereads = static_cast<std::uint64_t>(wm / kTcM);
    lds_bytes_per_step =
        static_cast<std::uint64_t>(warps) * 4u *
            static_cast<std::uint64_t>(wk) *
            (static_cast<std::uint64_t>(wm) * a_rereads +
             static_cast<std::uint64_t>(wn) * b_rereads) +
        static_cast<std::uint64_t>(warps) * 4u *
            static_cast<std::uint64_t>(wm) * static_cast<std::uint64_t>(wn);
    extra_sts = static_cast<std::uint64_t>(warps) * 4u *
                static_cast<std::uint64_t>(wm) *
                static_cast<std::uint64_t>(wn) / 128u;
  }
  shape.lds_per_step = static_cast<std::uint32_t>(lds_bytes_per_step / 128);
  shape.sts += static_cast<std::uint32_t>(extra_sts * shape.steps);

  // Tensor-core instructions per k'-step (Eq. 3 / Eq. 5): the block-level
  // product bm x bn x wk decomposed into HMMA.1688 (2*16*8*8 FLOPs each),
  // multiplied by the emulation factor (4 for Alg. 1, 16 for Dekker).
  const std::uint64_t hmma_flops = std::uint64_t{2} * 16 * 8 * 8;
  const std::uint64_t step_flops = std::uint64_t{2} *
                                   static_cast<std::uint64_t>(bm) *
                                   static_cast<std::uint64_t>(bn) *
                                   static_cast<std::uint64_t>(wk);
  shape.hmma_per_step = static_cast<std::uint32_t>(
      step_flops / hmma_flops * opts.emulation_instructions);
  return shape;
}

SimProgram build_egemm_block_program(const IterationShape& shape,
                                     std::uint32_t iterations,
                                     const EgemmStreamOptions& opts,
                                     std::uint32_t epilogue_stg) {
  EGEMM_EXPECTS(iterations > 0 && shape.steps > 0);
  SimProgram prog;

  // Cold start: first block tile travels global -> registers -> shared.
  std::int32_t t_ldg = prog.new_token();
  prog.emit(Opcode::kLdg, shape.ldg, -1, t_ldg);
  std::int32_t t_shm = prog.new_token();
  prog.emit(Opcode::kSts, shape.sts, t_ldg, t_shm);
  prog.emit(Opcode::kBar, 1, t_shm, -1);

  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    const bool has_next = iter + 1 < iterations;
    const std::int32_t t_ldg_next = has_next ? prog.new_token() : -1;
    // Both the last HMMA step and the next tile's LDG feed this token: the
    // deferred STS may only run once the shared tile was fully consumed and
    // the replacement data arrived (Fig. 6 "delay STS to the end").
    const std::int32_t t_overwrite_ok = prog.new_token();

    if (opts.latency_hiding) {
      // Register-enhanced schedule (Fig. 6): prefetch the step-0 fragments,
      // then for each k'-step issue the *next* step's LDS and a slice of the
      // next tile's LDG ahead of the current step's HMMA burst, so the MIO
      // and global ports run ahead of the tensor pipe.
      std::int32_t t_frag = prog.new_token();
      prog.emit(Opcode::kLds, shape.lds_per_step, t_shm, t_frag);
      const std::uint32_t ldg_share =
          has_next ? shape.ldg / shape.steps : 0;
      std::uint32_t ldg_emitted = 0;
      for (std::uint32_t s = 0; s < shape.steps; ++s) {
        if (has_next) {
          const std::uint32_t share = (s + 1 == shape.steps)
                                          ? shape.ldg - ldg_emitted
                                          : ldg_share;
          if (share > 0) prog.emit(Opcode::kLdg, share, -1, t_ldg_next);
          ldg_emitted += share;
        }
        std::int32_t t_frag_next = -1;
        if (s + 1 < shape.steps) {
          t_frag_next = prog.new_token();
          prog.emit(Opcode::kLds, shape.lds_per_step, t_shm, t_frag_next);
        }
        const bool last_step = s + 1 == shape.steps;
        prog.emit(Opcode::kHmma, shape.hmma_per_step, t_frag,
                  last_step ? t_overwrite_ok : -1);
        t_frag = t_frag_next;
      }
    } else {
      // Naive order: the CUDA-level tensorization still double-buffers the
      // *global* loads (the LDG clump for the next tile issues up front and
      // overlaps on its own port), but inside the compute loop fragments
      // are loaded immediately before use into the same registers every
      // step -- a write-after-read hazard against the previous step's HMMA
      // burst -- so each step exposes the full LDS port time and latency.
      // This is exactly what the Fig. 6 reordering removes.
      if (has_next) prog.emit(Opcode::kLdg, shape.ldg, -1, t_ldg_next);
      std::int32_t t_prev_hmma = -1;
      for (std::uint32_t s = 0; s < shape.steps; ++s) {
        const std::int32_t t_frag = prog.new_token();
        prog.emit(Opcode::kLds, shape.lds_per_step, t_prev_hmma, t_frag);
        const bool last_step = s + 1 == shape.steps;
        t_prev_hmma = prog.new_token();
        prog.emit(Opcode::kHmma, shape.hmma_per_step, t_frag, t_prev_hmma);
        if (last_step) {
          prog.emit(Opcode::kBar, 1, t_prev_hmma, t_overwrite_ok);
        }
      }
    }

    if (has_next) {
      // LDG completion must also gate the STS that overwrites the tile.
      // (The group above already produces into t_ldg_next; merge the two
      // conditions by re-tagging through a zero-cost barrier.)
      prog.emit(Opcode::kBar, 1, t_ldg_next, t_overwrite_ok);
      t_shm = prog.new_token();
      prog.emit(Opcode::kSts, shape.sts, t_overwrite_ok, t_shm);
      prog.emit(Opcode::kBar, 1, t_shm, -1);
    } else {
      prog.emit(Opcode::kBar, 1, t_overwrite_ok, -1);
    }
  }

  // Epilogue: the C block tile leaves the FRAG for global memory (STG
  // shares the global port with LDG in this model).
  if (epilogue_stg > 0) {
    prog.emit(Opcode::kLdg, epilogue_stg, -1, -1);
  }
  return prog;
}

}  // namespace egemm::tcsim
