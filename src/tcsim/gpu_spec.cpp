#include "tcsim/gpu_spec.hpp"

#include "util/assert.hpp"

namespace egemm::tcsim {

double GpuSpec::l2_bytes_per_cycle_per_sm() const noexcept {
  return l2_bandwidth_gbps * 1e9 / (clock_ghz * 1e9) /
         static_cast<double>(sm_count);
}

double GpuSpec::dram_bytes_per_cycle_per_sm() const noexcept {
  return dram_bandwidth_gbps * 1e9 / (clock_ghz * 1e9) /
         static_cast<double>(sm_count);
}

double GpuSpec::tc_flops_per_cycle_per_sm() const noexcept {
  return peak_fp16_tc_tflops * 1e12 / (clock_ghz * 1e9) /
         static_cast<double>(sm_count);
}

double GpuSpec::cycles_to_seconds(double cycles) const noexcept {
  return cycles / (clock_ghz * 1e9);
}

GpuSpec tesla_t4() {
  GpuSpec spec;
  spec.name = "Tesla T4";
  spec.sm_count = 40;
  spec.tensor_cores_per_sm = 8;  // 320 total
  spec.clock_ghz = 1.59;
  spec.shared_memory_per_sm = 64 * 1024;
  spec.register_file_per_sm = 256 * 1024;
  spec.max_registers_per_thread = 256;
  spec.max_warps_per_sm = 32;
  spec.peak_fp32_tflops = 8.1;
  spec.peak_fp16_tc_tflops = 65.0;  // Table 3: 2^6 TFLOPS
  spec.dram_bandwidth_gbps = 320.0;
  spec.l2_bandwidth_gbps = 750.0;  // Table 3
  spec.l2_cache_bytes = 4 * 1024 * 1024;
  // HMMA.1688.F32 retires 2*16*8*8 = 2048 FLOPs; at theoretical peak one SM
  // retires 65e12 / 40 / 1.59e9 = ~1022 FLOP/cycle, i.e. one HMMA every 2
  // cycles. Sustained dense-GEMM issue runs at ~85% of that (operand-bank
  // conflicts and dual-issue gaps, cf. the Turing microbenchmark studies
  // [12, 13]), giving the 2.35-cycle interval used here.
  spec.timings.hmma_issue = 2.35;
  return spec;
}

GpuSpec rtx6000() {
  GpuSpec spec;
  spec.name = "Quadro RTX 6000";
  spec.sm_count = 72;
  spec.tensor_cores_per_sm = 8;  // 576 total
  spec.clock_ghz = 1.77;
  spec.shared_memory_per_sm = 64 * 1024;
  spec.register_file_per_sm = 256 * 1024;
  spec.max_registers_per_thread = 256;
  spec.max_warps_per_sm = 32;
  spec.peak_fp32_tflops = 16.3;
  spec.peak_fp16_tc_tflops = 130.5;
  spec.dram_bandwidth_gbps = 672.0;
  spec.l2_bandwidth_gbps = 1400.0;
  spec.l2_cache_bytes = 6 * 1024 * 1024;
  // 130.5e12 / 72 / 1.77e9 = ~1024 FLOP/cycle per SM -> 2 cycles/HMMA at
  // theoretical peak; same 85% sustained-issue derate as the T4.
  spec.timings.hmma_issue = 2.35;
  return spec;
}

GpuSpec spec_by_name(const std::string& name) {
  if (name == "t4" || name == "T4") return tesla_t4();
  if (name == "rtx6000" || name == "RTX6000") return rtx6000();
  EGEMM_EXPECTS(!"unknown GPU spec name");
  return tesla_t4();  // unreachable
}

}  // namespace egemm::tcsim
