#include "tcsim/tensor_core.hpp"

#include <cstdint>

#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "util/assert.hpp"

namespace egemm::tcsim {

// The SIMD layer hard-codes the packed microtile extent so it need not
// depend on tcsim headers; pin the two constants to each other here.
static_assert(kTcM == simd::kMmaTile && kTcN == simd::kMmaTile,
              "simd::kMmaTile must mirror the Tensor Core tile extents");

namespace {

/// Strided instantiation of the shared pair-sum core (detail::
/// pair_sum_accumulate): the dot product of two half-valued float
/// sequences with the modeled Tensor Core semantics. The within-pair
/// reassociation is the only difference from a sequential binary32 CPU
/// loop, which is why the result typically matches the sequential probe on
/// >= 21 leading mantissa bits yet is not always bit-identical (the
/// artifact's example shows a 1-bit difference, §A.3).
inline float tc_accumulate(const float* a, std::size_t stride_a,
                           const float* b, std::size_t stride_b, int k,
                           float c) noexcept {
  return detail::pair_sum_accumulate(
      static_cast<std::size_t>(k), c, [=](std::size_t i) noexcept {
        return a[i * stride_a] * b[i * stride_b];
      });
}

}  // namespace

void mma_sync(FragmentAcc& d, const FragmentA& a, const FragmentB& b,
              const FragmentAcc& c) noexcept {
  EGEMM_COUNTER_ADD("tcsim.mma_sync_ops", 1);
  // Widen the half tiles once; the widening is exact.
  float af[kTcM][kTcK];
  float bf[kTcK][kTcN];
  for (int i = 0; i < kTcM; ++i) {
    for (int kk = 0; kk < kTcK; ++kk) af[i][kk] = a.at(i, kk).to_float();
  }
  for (int kk = 0; kk < kTcK; ++kk) {
    for (int j = 0; j < kTcN; ++j) bf[kk][j] = b.at(kk, j).to_float();
  }
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      d.at(i, j) = tc_accumulate(&af[i][0], 1, &bf[0][j], kTcN, kTcK,
                                 c.at(i, j));
    }
  }
}

void mma_tile_f32(float* d, std::size_t ldd, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, int m, int n,
                  int k) noexcept {
  EGEMM_EXPECTS(m > 0 && n > 0 && k > 0);
  EGEMM_COUNTER_ADD("tcsim.mma_tile_ops", 1);
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * lda;
    float* drow = d + static_cast<std::size_t>(i) * ldd;
    for (int j = 0; j < n; ++j) {
      drow[j] = tc_accumulate(arow, 1, b + j, ldb, k, drow[j]);
    }
  }
}

float tc_dot(std::span<const fp::Half> a, std::span<const fp::Half> b,
             float c) noexcept {
  EGEMM_EXPECTS(a.size() == b.size());
  return detail::pair_sum_accumulate(
      a.size(), c, [&](std::size_t i) noexcept {
        return a[i].to_float() * b[i].to_float();
      });
}

float tc_dot_f32(const float* a, const float* b, int k, float c) noexcept {
  return tc_accumulate(a, 1, b, 1, k, c);
}

void mma_block_packed(float* acc, const float* a, std::size_t lda,
                      const float* b, int k) noexcept {
  // The seed's scalar loop moved verbatim to simd/kernels_scalar.cpp; this
  // front door dispatches to the runtime-selected variant (all of them
  // reproduce the pair_sum_accumulate sequence bit for bit).
  EGEMM_COUNTER_ADD("tcsim.mma_block_ops", 1);
  simd::active_kernels().mma_block_packed(acc, a, lda, b, k);
}

void mma_tile_recipe(float* acc, const float* const* a_blocks,
                     const float* const* b_blocks, int ncombos,
                     std::size_t lda, int k, int k_slab,
                     bool fused) noexcept {
  // Count the equivalent number of block-kernel calls so the counter keeps
  // its meaning across the driver's move from per-slab calls to one
  // whole-tile recipe call.
  const int slabs = (k + k_slab - 1) / k_slab;
  static_cast<void>(slabs);  // unused when observability is compiled out
  EGEMM_COUNTER_ADD("tcsim.mma_block_ops",
                    static_cast<std::uint64_t>(ncombos) *
                        static_cast<std::uint64_t>(slabs));
  simd::active_kernels().mma_tile_recipe(acc, a_blocks, b_blocks, ncombos,
                                         lda, k, k_slab, fused);
}

float probe_dot_half(std::span<const fp::Half> a, std::span<const fp::Half> b,
                     float c) noexcept {
  EGEMM_EXPECTS(a.size() == b.size());
  fp::Half acc(c);
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = acc + a[i] * b[i];  // every operation rounds to binary16
  }
  return acc.to_float();
}

float probe_dot_float(std::span<const fp::Half> a, std::span<const fp::Half> b,
                      float c) noexcept {
  EGEMM_EXPECTS(a.size() == b.size());
  float acc = c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i].to_float() * b[i].to_float();
  }
  return acc;
}

double probe_dot_double(std::span<const fp::Half> a,
                        std::span<const fp::Half> b, double c) noexcept {
  EGEMM_EXPECTS(a.size() == b.size());
  double acc = c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i].to_double() * b[i].to_double();
  }
  return acc;
}

float broken_tc_dot(std::span<const fp::Half> a, std::span<const fp::Half> b,
                    float c) noexcept {
  return probe_dot_half(a, b, c);
}

}  // namespace egemm::tcsim
