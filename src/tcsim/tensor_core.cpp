#include "tcsim/tensor_core.hpp"

#include "util/assert.hpp"

namespace egemm::tcsim {

namespace {

/// Accumulates the dot product of two half-valued float sequences onto `c`
/// with the modeled Tensor Core semantics: exact binary16 products are
/// summed two at a time (adjacent pairs) and the pair sums are chained
/// onto the running accumulator starting from C -- the two-element
/// inner-step documented for Volta/Turing HMMA [12, 13]. The within-pair
/// reassociation is the only difference from a sequential binary32 CPU
/// loop, which is why the result typically matches the sequential probe on
/// >= 21 leading mantissa bits yet is not always bit-identical (the
/// artifact's example shows a 1-bit difference, §A.3).
inline float tc_accumulate(const float* a, std::size_t stride_a,
                           const float* b, std::size_t stride_b, int k,
                           float c) noexcept {
  float acc = c;
  int i = 0;
  for (; i + 1 < k; i += 2) {
    acc += a[static_cast<std::size_t>(i) * stride_a] *
               b[static_cast<std::size_t>(i) * stride_b] +
           a[static_cast<std::size_t>(i + 1) * stride_a] *
               b[static_cast<std::size_t>(i + 1) * stride_b];
  }
  if (i < k) {
    acc += a[static_cast<std::size_t>(i) * stride_a] *
           b[static_cast<std::size_t>(i) * stride_b];
  }
  return acc;
}

}  // namespace

void mma_sync(FragmentAcc& d, const FragmentA& a, const FragmentB& b,
              const FragmentAcc& c) noexcept {
  // Widen the half tiles once; the widening is exact.
  float af[kTcM][kTcK];
  float bf[kTcK][kTcN];
  for (int i = 0; i < kTcM; ++i) {
    for (int kk = 0; kk < kTcK; ++kk) af[i][kk] = a.at(i, kk).to_float();
  }
  for (int kk = 0; kk < kTcK; ++kk) {
    for (int j = 0; j < kTcN; ++j) bf[kk][j] = b.at(kk, j).to_float();
  }
  for (int i = 0; i < kTcM; ++i) {
    for (int j = 0; j < kTcN; ++j) {
      d.at(i, j) = tc_accumulate(&af[i][0], 1, &bf[0][j], kTcN, kTcK,
                                 c.at(i, j));
    }
  }
}

void mma_tile_f32(float* d, std::size_t ldd, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, int m, int n,
                  int k) noexcept {
  EGEMM_EXPECTS(m > 0 && n > 0 && k > 0);
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * lda;
    float* drow = d + static_cast<std::size_t>(i) * ldd;
    for (int j = 0; j < n; ++j) {
      drow[j] = tc_accumulate(arow, 1, b + j, ldb, k, drow[j]);
    }
  }
}

float tc_dot(std::span<const fp::Half> a, std::span<const fp::Half> b,
             float c) noexcept {
  EGEMM_EXPECTS(a.size() == b.size());
  float acc = c;
  std::size_t i = 0;
  for (; i + 1 < a.size(); i += 2) {
    acc += a[i].to_float() * b[i].to_float() +
           a[i + 1].to_float() * b[i + 1].to_float();
  }
  if (i < a.size()) acc += a[i].to_float() * b[i].to_float();
  return acc;
}

float tc_dot_f32(const float* a, const float* b, int k, float c) noexcept {
  return tc_accumulate(a, 1, b, 1, k, c);
}

float probe_dot_half(std::span<const fp::Half> a, std::span<const fp::Half> b,
                     float c) noexcept {
  EGEMM_EXPECTS(a.size() == b.size());
  fp::Half acc(c);
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = acc + a[i] * b[i];  // every operation rounds to binary16
  }
  return acc.to_float();
}

float probe_dot_float(std::span<const fp::Half> a, std::span<const fp::Half> b,
                      float c) noexcept {
  EGEMM_EXPECTS(a.size() == b.size());
  float acc = c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i].to_float() * b[i].to_float();
  }
  return acc;
}

double probe_dot_double(std::span<const fp::Half> a,
                        std::span<const fp::Half> b, double c) noexcept {
  EGEMM_EXPECTS(a.size() == b.size());
  double acc = c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i].to_double() * b[i].to_double();
  }
  return acc;
}

float broken_tc_dot(std::span<const fp::Half> a, std::span<const fp::Half> b,
                    float c) noexcept {
  return probe_dot_half(a, b, c);
}

}  // namespace egemm::tcsim
