#pragma once
// Hardware resource budgets and instruction timings for the simulated GPUs.
//
// This is the "small set of resource budgets" the paper's analytic model
// consumes (Table 3) plus the pipeline-model calibration constants
// (DESIGN.md §6). Two concrete parts are provided, matching the paper's
// evaluation platforms: Tesla T4 and Quadro RTX 6000 (both Turing).

#include <cstddef>
#include <string>

namespace egemm::tcsim {

/// Per-instruction timing at SM-aggregate granularity (one GPU block per
/// SM, all warps folded into one in-order stream; see pipeline.hpp).
struct InstructionTimings {
  // Tensor pipe.
  double hmma_issue = 2.0;    ///< cycles/HMMA.1688 at SM aggregate issue rate
  double hmma_latency = 16.0; ///< cycles until the accumulator is readable

  // Memory-IO pipe (shared memory).
  double lds_issue = 1.0;     ///< cycles/LDS.32 warp instruction
  double lds_latency = 25.0;
  double sts_issue = 1.0;     ///< cycles/STS.128 warp instruction
  double sts_latency = 20.0;

  // Global-memory port. Issue interval is derived from the L2 budget; the
  // latency models the DRAM/L2 round trip the cold start pays.
  double ldg_latency = 400.0;

  // CUDA-core FMA pipe (used for split/round work and baseline kernels).
  double ffma_issue = 0.5;    ///< cycles/warp FFMA at SM aggregate rate
  double ffma_latency = 6.0;

  double barrier_cost = 24.0; ///< __syncthreads() pipeline drain

  /// Aggregate warp-scheduler decode rate (instructions/cycle across the
  /// SM's four scheduler partitions). Issue *order* is still program order;
  /// this bounds how fast the stream can feed the ports.
  double decode_rate = 4.0;
};

/// Resource budgets of one GPU (Table 3 generalized to both parts).
struct GpuSpec {
  std::string name;

  int sm_count = 0;
  int tensor_cores_per_sm = 0;
  double clock_ghz = 0.0;

  std::size_t shared_memory_per_sm = 0;   ///< bytes (64 KB on Turing)
  std::size_t register_file_per_sm = 0;   ///< bytes (256 KB)
  int max_registers_per_thread = 0;       ///< 256 on Turing
  int max_warps_per_sm = 0;

  double peak_fp32_tflops = 0.0;          ///< CUDA cores
  double peak_fp16_tc_tflops = 0.0;       ///< Tensor Cores, FP32 accumulate
  double dram_bandwidth_gbps = 0.0;
  double l2_bandwidth_gbps = 0.0;         ///< Table 3 "L2 Cache Speed"
  std::size_t l2_cache_bytes = 0;

  double kernel_launch_us = 4.0;          ///< per-kernel launch overhead

  InstructionTimings timings;

  /// L2 bytes per cycle available to one SM (bandwidth share).
  double l2_bytes_per_cycle_per_sm() const noexcept;
  /// DRAM bytes per cycle available to one SM.
  double dram_bytes_per_cycle_per_sm() const noexcept;
  /// Tensor-core FLOPs one SM retires per cycle at peak.
  double tc_flops_per_cycle_per_sm() const noexcept;
  /// Converts SM cycles to seconds.
  double cycles_to_seconds(double cycles) const noexcept;
};

/// Tesla T4 (Turing TU104): 40 SMs, 320 Tensor Cores, 64 KB SMEM/SM,
/// 256 KB registers/SM — the paper's Table 3 budget.
GpuSpec tesla_t4();

/// Quadro RTX 6000 (Turing TU102): 72 SMs, 576 Tensor Cores.
GpuSpec rtx6000();

/// Looks a spec up by name ("t4" or "rtx6000"); aborts on unknown names.
GpuSpec spec_by_name(const std::string& name);

}  // namespace egemm::tcsim
