#pragma once
// Discrete-event SM pipeline model.
//
// Executes a SimProgram on four issue ports (tensor, MIO, global, CUDA)
// with in-order issue, per-port occupancy and token scoreboarding -- the
// minimal machine that distinguishes the paper's two instruction
// schedules (Fig. 6 / Fig. 11) and exposes compute- vs memory-bound
// behaviour of a tiling (§6).
//
// Semantics:
//  * instructions issue strictly in program order;
//  * an instruction issues at max(previous issue cursor, its port's free
//    time, its wait-token completion time);
//  * a replicated group of N instructions occupies its port for N x issue
//    cycles and completes N x issue + latency after its start;
//  * a token's completion time is the max over all producers;
//  * BAR stalls the issue cursor for barrier_cost after its wait resolves.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tcsim/gpu_spec.hpp"
#include "tcsim/instruction.hpp"

namespace egemm::tcsim {

struct SimStats {
  double cycles = 0.0;        ///< makespan of the program
  double stall_cycles = 0.0;  ///< issue-cursor time spent waiting on tokens
  std::array<double, 4> port_busy{};  ///< indexed by Port
  std::uint64_t instructions = 0;

  double port_utilization(Port port) const noexcept {
    return cycles > 0.0
               ? port_busy[static_cast<std::size_t>(port)] / cycles
               : 0.0;
  }
};

/// Runs `program` against the spec's instruction timings; LDG issue
/// intervals are derived from the spec's per-SM L2 bandwidth share.
SimStats simulate_block(const SimProgram& program, const GpuSpec& spec);

/// One port-occupancy interval of an executed instruction group.
struct TraceEvent {
  Opcode op;
  Port port;
  double start = 0.0;  ///< first issue cycle
  double busy_until = 0.0;
  double done = 0.0;   ///< completion (last result lands)
  std::uint32_t count = 1;
};

struct TraceResult {
  SimStats stats;
  std::vector<TraceEvent> events;
};

/// As simulate_block, but records every group's occupancy interval
/// (intended for inspection of short programs; events scale with the
/// program's group count).
TraceResult simulate_block_trace(const SimProgram& program,
                                 const GpuSpec& spec);

/// ASCII Gantt chart of the window [from, to): one row per port, `width`
/// buckets; a bucket prints the port letter when any group occupied it.
std::string render_timeline(const TraceResult& trace, double from, double to,
                            int width = 96);

}  // namespace egemm::tcsim
