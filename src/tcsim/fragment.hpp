#pragma once
// FRAG: the Tensor-Core register-tile abstraction (§2.1, §4).
//
// On real hardware a fragment is a matrix tile striped across the 32
// threads of a warp's register file; the simulator models it as a plain
// fixed-size tile owned by the warp. The intra-warp FRAG-caching
// optimization (Table 2) manipulates these objects: an accumulator
// fragment stays resident for a whole block computation and the A-lo/hi
// fragments are loaded once per k-step instead of once per HMMA.

#include <array>
#include <cstddef>
#include <span>

#include "fp/half.hpp"
#include "util/assert.hpp"

namespace egemm::tcsim {

/// Fixed-size row-major register tile.
template <typename T, int Rows, int Cols>
class Fragment {
 public:
  static constexpr int kRows = Rows;
  static constexpr int kCols = Cols;

  constexpr T& at(int r, int c) noexcept {
    return data_[static_cast<std::size_t>(r * Cols + c)];
  }
  constexpr const T& at(int r, int c) const noexcept {
    return data_[static_cast<std::size_t>(r * Cols + c)];
  }

  constexpr std::span<T> flat() noexcept { return data_; }
  constexpr std::span<const T> flat() const noexcept { return data_; }

  constexpr void fill(T value) noexcept { data_.fill(value); }

  /// Collaborative warp load (wmma::load_matrix_sync equivalent): copies a
  /// Rows x Cols tile from row-major memory with leading dimension `ld`.
  void load(std::span<const T> memory, std::size_t ld) {
    EGEMM_EXPECTS(ld >= static_cast<std::size_t>(Cols));
    EGEMM_EXPECTS(memory.size() >= (Rows - 1) * ld + Cols);
    for (int r = 0; r < Rows; ++r) {
      for (int c = 0; c < Cols; ++c) {
        at(r, c) = memory[static_cast<std::size_t>(r) * ld +
                          static_cast<std::size_t>(c)];
      }
    }
  }

  /// Collaborative warp store (wmma::store_matrix_sync equivalent).
  void store(std::span<T> memory, std::size_t ld) const {
    EGEMM_EXPECTS(ld >= static_cast<std::size_t>(Cols));
    EGEMM_EXPECTS(memory.size() >= (Rows - 1) * ld + Cols);
    for (int r = 0; r < Rows; ++r) {
      for (int c = 0; c < Cols; ++c) {
        memory[static_cast<std::size_t>(r) * ld +
               static_cast<std::size_t>(c)] = at(r, c);
      }
    }
  }

 private:
  std::array<T, static_cast<std::size_t>(Rows) * Cols> data_{};
};

/// The wmma-style 16x16x16 compute-primitive tile shapes.
inline constexpr int kTcM = 16;
inline constexpr int kTcN = 16;
inline constexpr int kTcK = 16;

using FragmentA = Fragment<fp::Half, kTcM, kTcK>;    ///< half, row-major
using FragmentB = Fragment<fp::Half, kTcK, kTcN>;    ///< half, row-major
using FragmentAcc = Fragment<float, kTcM, kTcN>;     ///< fp32 accumulator

}  // namespace egemm::tcsim
