#include "gemm/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "core/emulation.hpp"
#include "gemm/plan.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace egemm::gemm {

namespace {

/// Shared roofline + wave-quantization timing for the CUDA-level baseline
/// kernels (these are not the paper's contribution, so they are modeled at
/// kernel granularity rather than instruction granularity).
///
/// `dram_bytes` is the compulsory traffic (each matrix streamed once);
/// `l2_bytes` is the tile re-read traffic that blocked kernels serve from
/// L2 (Table 3 budgets L2 separately from DRAM for exactly this reason).
KernelTiming roofline_timing(const tcsim::GpuSpec& spec, double flops,
                             double dram_bytes, double l2_bytes,
                             double efficiency, double peak_tflops,
                             std::uint64_t blocks, int launches) {
  KernelTiming timing;
  const double t_compute = flops / (efficiency * peak_tflops * 1e12);
  const double t_memory =
      std::max(dram_bytes / (spec.dram_bandwidth_gbps * 1e9),
               l2_bytes / (spec.l2_bandwidth_gbps * 1e9));
  double core = std::max(t_compute, t_memory);
  if (blocks > 0) {
    const double waves_exact =
        static_cast<double>(blocks) / static_cast<double>(spec.sm_count);
    core *= std::ceil(waves_exact) / waves_exact;  // tail-wave quantization
    timing.waves = static_cast<std::uint32_t>(std::ceil(waves_exact));
  }
  timing.blocks = blocks;
  timing.seconds = core + launches * spec.kernel_launch_us * 1e-6;
  return timing;
}

std::uint64_t tile_grid(std::uint64_t m, std::uint64_t n, std::uint64_t tm,
                        std::uint64_t tn) {
  return ((m + tm - 1) / tm) * ((n + tn - 1) / tn);
}

double dbl(std::uint64_t v) { return static_cast<double>(v); }

}  // namespace

// ---------------------------------------------------------------------------
// Functional paths
// ---------------------------------------------------------------------------

void sgemm_fp32_into(const Matrix& a, const Matrix& b, const Matrix* c,
                     Matrix& d) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  const std::size_t m = a.rows(), n = b.cols(), k = a.cols();
  d.resize(m, n);
  if (c != nullptr) {
    EGEMM_EXPECTS(c->rows() == m && c->cols() == n);
    std::copy(c->data().begin(), c->data().end(), d.data().begin());
  } else {
    d.fill(0.0f);
  }
  // FMA accumulation, k-outer cache blocking -- the numerics of a vendor
  // binary32 kernel.
  util::global_pool().parallel_for(m, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* drow = d.row(i);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = a.at(i, kk);
        const float* brow = b.row(kk);
        for (std::size_t j = 0; j < n; ++j) {
          drow[j] = std::fmaf(av, brow[j], drow[j]);
        }
      }
    }
  });
}

Matrix sgemm_fp32(const Matrix& a, const Matrix& b, const Matrix* c) {
  Matrix d;
  sgemm_fp32_into(a, b, c, d);
  return d;
}

void sdk_gemm_fp32_into(const Matrix& a, const Matrix& b, Matrix& d) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  const std::size_t m = a.rows(), n = b.cols(), k = a.cols();
  d.resize(m, n);
  d.fill(0.0f);
  // Separate multiply and add (the SDK sample predates pervasive FMA).
  util::global_pool().parallel_for(m, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* drow = d.row(i);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = a.at(i, kk);
        const float* brow = b.row(kk);
        for (std::size_t j = 0; j < n; ++j) {
          drow[j] = drow[j] + av * brow[j];
        }
      }
    }
  });
}

Matrix sdk_gemm_fp32(const Matrix& a, const Matrix& b) {
  Matrix d;
  sdk_gemm_fp32_into(a, b, d);
  return d;
}

// The emulated baselines route through the shared plan cache so that the
// one-shot calls and run_gemm land on the same cached plan (the recipes
// themselves are normalized in GemmContext::plan and stay exactly what
// the pre-plan implementations executed).

Matrix gemm_tc_half(const Matrix& a, const Matrix& b, const Matrix* c) {
  // The hi plane of a round-split is exactly RN16(x): a single-combo
  // emulated GEMM reproduces cublasGemmEx with binary16 inputs.
  return default_context().run(Backend::kCublasTcHalf, a, b, c);
}

Matrix gemm_markidis(const Matrix& a, const Matrix& b, const Matrix* c) {
  // Markidis [20]: truncate-split, the Alo x Blo term dropped.
  return default_context().run(Backend::kMarkidis, a, b, c);
}

Matrix gemm_cublas_tc_emulation(const Matrix& a, const Matrix& b,
                                const Matrix* c) {
  // Alg. 1 via 4 separate vendor GEMM calls: same combos, separate passes.
  return default_context().run(Backend::kCublasTcEmulation, a, b, c);
}

void gemm_dekker_into(const Matrix& a, const Matrix& b, const Matrix* c,
                      Matrix& d, long* instruction_count) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  const std::size_t m = a.rows(), n = b.cols(), k = a.cols();
  d.resize(m, n);

  constexpr std::size_t kT = 16;
  long ops = 0;
  for (std::size_t i0 = 0; i0 < m; i0 += kT) {
    for (std::size_t j0 = 0; j0 < n; j0 += kT) {
      tcsim::FragmentAcc acc;
      acc.fill(0.0f);
      if (c != nullptr) {
        for (std::size_t i = i0; i < std::min(m, i0 + kT); ++i) {
          for (std::size_t j = j0; j < std::min(n, j0 + kT); ++j) {
            acc.at(static_cast<int>(i - i0), static_cast<int>(j - j0)) =
                c->at(i, j);
          }
        }
      }
      for (std::size_t k0 = 0; k0 < k; k0 += kT) {
        core::FragmentF32 atile;
        core::FragmentF32B btile;
        atile.fill(0.0f);
        btile.fill(0.0f);
        for (std::size_t i = i0; i < std::min(m, i0 + kT); ++i) {
          for (std::size_t kk = k0; kk < std::min(k, k0 + kT); ++kk) {
            atile.at(static_cast<int>(i - i0), static_cast<int>(kk - k0)) =
                a.at(i, kk);
          }
        }
        for (std::size_t kk = k0; kk < std::min(k, k0 + kT); ++kk) {
          for (std::size_t j = j0; j < std::min(n, j0 + kT); ++j) {
            btile.at(static_cast<int>(kk - k0), static_cast<int>(j - j0)) =
                b.at(kk, j);
          }
        }
        core::dekker_mma_tile(acc, atile, btile, acc, &ops);
      }
      for (std::size_t i = i0; i < std::min(m, i0 + kT); ++i) {
        for (std::size_t j = j0; j < std::min(n, j0 + kT); ++j) {
          d.at(i, j) =
              acc.at(static_cast<int>(i - i0), static_cast<int>(j - j0));
        }
      }
    }
  }
  if (instruction_count != nullptr) *instruction_count += ops;
}

Matrix gemm_dekker(const Matrix& a, const Matrix& b, const Matrix* c,
                   long* instruction_count) {
  Matrix d;
  gemm_dekker_into(a, b, c, d, instruction_count);
  return d;
}

// ---------------------------------------------------------------------------
// Timing models
// ---------------------------------------------------------------------------

KernelTiming sgemm_fp32_timing(std::uint64_t m, std::uint64_t n,
                               std::uint64_t k, const tcsim::GpuSpec& spec) {
  // cublasSgemm: ~52% of FP32 peak sustained on Turing, 128x64 block tiles.
  const double flops = 2.0 * dbl(m) * dbl(n) * dbl(k);
  const double dram_bytes =
      4.0 * (dbl(m) * dbl(k) + dbl(k) * dbl(n) + 2.0 * dbl(m) * dbl(n));
  const double l2_bytes = 4.0 * (dbl(m) * dbl(k) * dbl(n) / 64.0 +
                                 dbl(k) * dbl(n) * dbl(m) / 128.0);
  KernelTiming t = roofline_timing(spec, flops, dram_bytes, l2_bytes, 0.52,
                                   spec.peak_fp32_tflops,
                                   tile_grid(m, n, 128, 64), 1);
  t.tflops = gemm_tflops(m, n, k, t.seconds);
  return t;
}

KernelTiming sdk_gemm_timing(std::uint64_t m, std::uint64_t n,
                             std::uint64_t k, const tcsim::GpuSpec& spec) {
  // CUDA-SDK matrixMul: 16x16 shared-memory tiles, so every input element
  // is re-read from DRAM/L2 once per 16-wide tile -- firmly memory bound.
  const double flops = 2.0 * dbl(m) * dbl(n) * dbl(k);
  // 16-wide tiles re-stream everything; the working set blows past L2, so
  // the re-reads mostly hit DRAM.
  const double dram_bytes = 8.0 * dbl(m) * dbl(n) * dbl(k) / 16.0;
  KernelTiming t =
      roofline_timing(spec, flops, dram_bytes, 0.0, 0.13,
                      spec.peak_fp32_tflops, tile_grid(m, n, 16, 16), 1);
  t.tflops = gemm_tflops(m, n, k, t.seconds);
  return t;
}

KernelTiming tc_half_timing(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                            const tcsim::GpuSpec& spec) {
  // cublasGemmEx FP16 in / FP32 out: ~60% of Tensor Core peak.
  const double flops = 2.0 * dbl(m) * dbl(n) * dbl(k);
  const double dram_bytes =
      2.0 * (dbl(m) * dbl(k) + dbl(k) * dbl(n)) + 4.0 * dbl(m) * dbl(n);
  const double l2_bytes = 2.0 * (dbl(m) * dbl(k) * dbl(n) / 128.0 +
                                 dbl(k) * dbl(n) * dbl(m) / 128.0);
  KernelTiming t = roofline_timing(spec, flops, dram_bytes, l2_bytes, 0.60,
                                   spec.peak_fp16_tc_tflops,
                                   tile_grid(m, n, 128, 128), 1);
  t.tflops = gemm_tflops(m, n, k, t.seconds);
  return t;
}

KernelTiming tc_emulation_timing(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t k,
                                 const tcsim::GpuSpec& spec) {
  // Algorithm 1 as 4 independent cublasGemmEx calls: each call re-reads the
  // half planes and reads+writes the binary32 D (beta = 1 accumulation);
  // large K triggers cuBLAS' split-K kernels whose partial-sum workspace
  // traffic erodes efficiency (the Fig. 9a slowdown).
  const double flops_per_call = 2.0 * dbl(m) * dbl(n) * dbl(k);
  double efficiency = 0.55;
  const std::uint64_t split_k = k > 4096 ? (k + 4095) / 4096 : 1;
  double extra_dram = 0.0;
  if (split_k > 1 && k >= 2 * std::max(m, n)) {
    // Partial results written and re-read once per extra split.
    extra_dram = dbl(split_k) * 8.0 * dbl(m) * dbl(n);
    efficiency *= 0.72;
  }
  const double dram_per_call = 2.0 * (dbl(m) * dbl(k) + dbl(k) * dbl(n)) +
                               8.0 * dbl(m) * dbl(n) + extra_dram;
  const double l2_per_call = 2.0 * (dbl(m) * dbl(k) * dbl(n) / 128.0 +
                                    dbl(k) * dbl(n) * dbl(m) / 128.0);

  KernelTiming call = roofline_timing(
      spec, flops_per_call, dram_per_call, l2_per_call, efficiency,
      spec.peak_fp16_tc_tflops, tile_grid(m, n, 128, 128), 1);
  KernelTiming t;
  t.blocks = call.blocks;
  t.waves = call.waves;
  // Split pass (same as EGEMM-TC's) + 4 GEMM calls.
  t.split_pass_seconds =
      8.0 * (dbl(m) * dbl(k) + dbl(k) * dbl(n)) /
          (spec.dram_bandwidth_gbps * 1e9) +
      spec.kernel_launch_us * 1e-6;
  t.seconds = 4.0 * call.seconds + t.split_pass_seconds;
  t.tflops = gemm_tflops(m, n, k, t.seconds);
  return t;
}

KernelTiming markidis_timing(std::uint64_t m, std::uint64_t n,
                             std::uint64_t k, const tcsim::GpuSpec& spec) {
  // CUDA-level wmma emulation: 3 tile products, no FRAG caching and no
  // instruction-level scheduling, so only ~20% of Tensor Core peak is
  // reachable (§7.3 attributes this to the CUDA programming interface).
  const double flops = 3.0 * 2.0 * dbl(m) * dbl(n) * dbl(k);
  const double dram_bytes =
      2.0 * 2.0 * (dbl(m) * dbl(k) + dbl(k) * dbl(n)) + 4.0 * dbl(m) * dbl(n);
  const double l2_bytes = 2.0 * 2.0 * (dbl(m) * dbl(k) * dbl(n) / 64.0 +
                                       dbl(k) * dbl(n) * dbl(m) / 64.0);
  KernelTiming t = roofline_timing(spec, flops, dram_bytes, l2_bytes, 0.20,
                                   spec.peak_fp16_tc_tflops,
                                   tile_grid(m, n, 64, 64), 1);
  t.split_pass_seconds =
      8.0 * (dbl(m) * dbl(k) + dbl(k) * dbl(n)) /
      (spec.dram_bandwidth_gbps * 1e9);
  t.seconds += t.split_pass_seconds;
  t.tflops = gemm_tflops(m, n, k, t.seconds);
  return t;
}

}  // namespace egemm::gemm
