#include "gemm/tiling.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace egemm::gemm {

bool TileConfig::valid() const noexcept {
  if (bm <= 0 || bn <= 0 || bk <= 0 || wm <= 0 || wn <= 0 || wk <= 0) {
    return false;
  }
  if (bm % wm != 0 || bn % wn != 0 || bk % wk != 0) return false;
  // Warp tiles decompose into Tensor Core primitive tiles (m16n8k8 for the
  // instruction stream; the wmma-level functional tile is 16x16x16).
  if (wm % 16 != 0 || wn % 8 != 0 || wk % 8 != 0) return false;
  const int warps = warps_per_block();
  return warps >= 1 && warps <= 32;
}

std::string TileConfig::describe() const {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "(bm,bn,bk)=(%d,%d,%d) (wm,wn,wk)=(%d,%d,%d)",
                bm, bn, bk, wm, wn, wk);
  return buffer;
}

std::size_t TileConfig::shared_memory_bytes() const noexcept {
  // 2 x (bm + bn) x (bk + 4) x 2 bytes: lo+hi half planes of the A and B
  // block tiles with 4-column padding against bank conflicts. With the
  // Table 4 tiling this is exactly the 36 KB/block the paper reports.
  return static_cast<std::size_t>(2) * static_cast<std::size_t>(bm + bn) *
         static_cast<std::size_t>(bk + 4) * 2;
}

std::size_t TileConfig::frag_bytes() const noexcept {
  // 4 bm bn for the resident C accumulator + 2 x 2(bm + bn)bk staging for
  // the register-enhanced LDG pipeline (§6.1).
  return static_cast<std::size_t>(4) * static_cast<std::size_t>(bm) *
             static_cast<std::size_t>(bn) +
         static_cast<std::size_t>(4) * static_cast<std::size_t>(bm + bn) *
             static_cast<std::size_t>(bk);
}

std::uint64_t TileConfig::k_iterations(std::uint64_t k) const noexcept {
  const auto bku = static_cast<std::uint64_t>(bk);
  return (k + bku - 1) / bku;
}

std::uint64_t TileConfig::grid_blocks(std::uint64_t m,
                                      std::uint64_t n) const noexcept {
  const auto bmu = static_cast<std::uint64_t>(bm);
  const auto bnu = static_cast<std::uint64_t>(bn);
  return ((m + bmu - 1) / bmu) * ((n + bnu - 1) / bnu);
}

TileConfig table4_config() noexcept {
  return TileConfig{128, 128, 32, 64, 32, 8};
}

void for_each_block_tile(std::size_t m, std::size_t n, const TileConfig& cfg,
                         const std::function<void(const BlockTile&)>& body) {
  EGEMM_EXPECTS(cfg.valid());
  const auto bm = static_cast<std::size_t>(cfg.bm);
  const auto bn = static_cast<std::size_t>(cfg.bn);
  std::size_t block_row = 0;
  for (std::size_t r = 0; r < m; r += bm, ++block_row) {
    std::size_t block_col = 0;
    for (std::size_t c = 0; c < n; c += bn, ++block_col) {
      BlockTile tile;
      tile.row0 = r;
      tile.col0 = c;
      tile.rows = std::min(bm, m - r);
      tile.cols = std::min(bn, n - c);
      tile.block_row = block_row;
      tile.block_col = block_col;
      body(tile);
    }
  }
}

}  // namespace egemm::gemm
