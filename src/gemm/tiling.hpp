#pragma once
// Hierarchical tensorization (§4): block tiles -> warp tiles -> TC tiles.
//
// A TileConfig carries the six hyper-parameters (bm, bn, bk, wm, wn, wk)
// the analytic model selects (§6) plus derived resource demands, and the
// coverage iterators decompose an (M, N, K) GEMM into block tiles the way
// the kernel's grid does.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace egemm::gemm {

struct TileConfig {
  int bm = 128, bn = 128, bk = 32;  ///< block tile (Table 4)
  int wm = 64, wn = 32, wk = 8;     ///< warp tile (Table 4)

  bool valid() const noexcept;
  std::string describe() const;

  friend bool operator==(const TileConfig&, const TileConfig&) = default;

  int warps_per_block() const noexcept { return (bm / wm) * (bn / wn); }
  int threads_per_block() const noexcept { return warps_per_block() * 32; }

  /// Shared memory per block: lo+hi halves of the A and B block tiles,
  /// 2 bytes each, with anti-bank-conflict padding -- 2(bm+bn)(bk+4)x2
  /// bytes, which reproduces Table 4's 36 KB/block.
  std::size_t shared_memory_bytes() const noexcept;

  /// Register/FRAG bytes per block: the resident C accumulator (4 bm bn)
  /// plus double-buffered A/B fragments (Eq. in §6.1).
  std::size_t frag_bytes() const noexcept;

  /// Main-loop iterations for a given K extent.
  std::uint64_t k_iterations(std::uint64_t k) const noexcept;

  /// Grid size for an (M, N) output.
  std::uint64_t grid_blocks(std::uint64_t m, std::uint64_t n) const noexcept;
};

/// The Table 4 design choice for the T4 budget.
TileConfig table4_config() noexcept;

/// One block tile's coordinates and extents (edge tiles are clipped).
struct BlockTile {
  std::size_t row0, col0;    ///< top-left of the C tile
  std::size_t rows, cols;    ///< clipped extents
  std::size_t block_row, block_col;
};

/// Invokes `body` for every block tile covering an m x n output, in the
/// row-major grid order the kernel launches.
void for_each_block_tile(std::size_t m, std::size_t n, const TileConfig& cfg,
                         const std::function<void(const BlockTile&)>& body);

}  // namespace egemm::gemm
