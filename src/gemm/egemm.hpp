#pragma once
// EGEMM-TC: the paper's primary contribution as a library kernel.
//
// Two execution paths share one tiling/algorithm description:
//  * the *functional* path computes D = A x B + C with extended precision
//    on the bit-accurate Tensor Core model (real numerics, used by the
//    precision experiments and every correctness test);
//  * the *timed* path lays the same work out as a SASS-like instruction
//    stream, runs it through the SM pipeline model, and composes block
//    cycles into kernel time via the occupancy/wave model (used by every
//    performance experiment).

#include <cstdint>
#include <span>

#include "core/split.hpp"
#include "gemm/matrix.hpp"
#include "gemm/tiling.hpp"
#include "tcsim/gpu_spec.hpp"
#include "tcsim/pipeline.hpp"

namespace egemm::gemm {

/// Which host-side execution engine the functional path runs on
/// (DESIGN.md §10). Both are bit-identical by construction and by test;
/// the reference engine is retained as the semantics oracle.
enum class ExecEngine {
  kPacked,     ///< plane-cached, tile-packed, vectorized block kernel
  kReference,  ///< the seed's scalar per-tile dot-product path
};

struct EgemmOptions {
  core::SplitMethod split = core::SplitMethod::kRoundSplit;
  bool latency_hiding = true;   ///< §5.1 register-enhanced scheduling
  bool frag_caching = true;     ///< §4 intra-warp FRAG caching
  int emulation_instructions = 4;  ///< Alg. 1; 16 models a Dekker schedule
  TileConfig tile = table4_config();
  ExecEngine engine = ExecEngine::kPacked;  ///< functional-path engine
};

/// Functional extended-precision GEMM: D = A x B (+ C).
/// A is m x k, B is k x n, C (optional) m x n; any sizes >= 1 are accepted
/// (edge tiles are clipped, equivalent to the kernel's zero padding).
Matrix egemm_multiply(const Matrix& a, const Matrix& b,
                      const Matrix* c = nullptr, const EgemmOptions& opts = {});

/// How an emulated GEMM sequences its split-product passes.
enum class ComboOrder {
  kFusedPerTile,    ///< EGEMM-TC: all combos inside each k-tile (one kernel)
  kSeparatePasses,  ///< cuBLAS-TC-Emulation: one full GEMM per combo
};

/// A split-product term: which plane of A and of B it multiplies.
struct Combo {
  bool a_hi;
  bool b_hi;
};

/// Generic emulated-GEMM driver shared with the baselines: computes
/// D = sum over combos of Aplane x Bplane (+ C) on the Tensor Core model.
/// Splits + widens each input matrix exactly once, then runs the
/// requested engine over the cached planes.
Matrix emulated_gemm(const Matrix& a, const Matrix& b, const Matrix* c,
                     core::SplitMethod split, std::span<const Combo> combos,
                     ComboOrder order,
                     ExecEngine engine = ExecEngine::kPacked);

/// Extension ablation (DESIGN.md §4 "optional/extension features"): the
/// three-way split generalization of Alg. 1 -- each input decomposes
/// *exactly* into three binary16 planes, and all 9 cross products run on
/// the Tensor Core.
///
/// Measured finding (tests/test_extensions.cpp, bench_ablation_split): for
/// inputs in the usual [-1, 1] range this is BIT-IDENTICAL to Alg. 1. The
/// third plane's products sit ~2^-23 below the operand scale, under the
/// binary32 accumulator's ulp, so they are absorbed; the hi and mid planes
/// coincide with Alg. 1's hi/lo. The precision bottleneck past 21 bits is
/// the *accumulator*, not the split -- exactly why integer-accumulating
/// schemes (Ozaki-style int8 emulation) exist. Kept as a public API so the
/// negative result stays reproducible.
Matrix egemm_multiply_3split(const Matrix& a, const Matrix& b,
                             const Matrix* c = nullptr,
                             ExecEngine engine = ExecEngine::kPacked);

/// Result of the timed path.
struct KernelTiming {
  double seconds = 0.0;        ///< end-to-end kernel(s) time
  double tflops = 0.0;         ///< Eq. 9
  bool feasible = true;        ///< false when the tiling does not fit
  double block_cycles = 0.0;
  std::uint64_t blocks = 0;
  std::uint32_t waves = 0;
  int blocks_per_sm = 0;
  int registers_per_thread = 0;
  bool register_spill = false;
  double split_pass_seconds = 0.0;
  tcsim::SimStats block_stats;
};

/// Timed path: simulated execution of EGEMM-TC for an (m, n, k) problem.
KernelTiming egemm_timing(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                          const tcsim::GpuSpec& spec,
                          const EgemmOptions& opts = {});

/// Timed path for the 9-instruction (three-way split) schedule.
KernelTiming egemm_3split_timing(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t k, const tcsim::GpuSpec& spec);

/// Eq. 9: TFLOPS from problem shape and seconds.
double gemm_tflops(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                   double seconds) noexcept;

}  // namespace egemm::gemm
