#include "gemm/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "fp/twofold.hpp"
#include "util/assert.hpp"

namespace egemm::gemm {

Matrix random_matrix(std::size_t rows, std::size_t cols, float lo, float hi,
                     std::uint64_t seed) {
  Matrix m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& value : m.data()) value = rng.uniform(lo, hi);
  return m;
}

MatrixD widen(const Matrix& m) {
  MatrixD wide(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    wide.data()[i] = static_cast<double>(m.data()[i]);
  }
  return wide;
}

Matrix transpose(const Matrix& m) {
  Matrix t(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) t.at(j, i) = m.at(i, j);
  }
  return t;
}

void transpose_into(const Matrix& m, Matrix& out) {
  EGEMM_EXPECTS(&m != &out);
  out.resize(m.cols(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out.at(j, i) = m.at(i, j);
  }
}

MatrixD gemm_reference(const Matrix& a, const Matrix& b, const Matrix* c) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == a.rows() && c->cols() == b.cols()));
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  const std::size_t k = a.cols();

  MatrixD d(m, n);
  // Cache-blocked with a double-double accumulator per output element so
  // the reference stays trustworthy at the largest test sizes.
  constexpr std::size_t kBlock = 64;
  std::vector<double> lo_part(n);
  for (std::size_t i = 0; i < m; ++i) {
    double* drow = d.row(i);
    std::fill(lo_part.begin(), lo_part.end(), 0.0);
    if (c != nullptr) {
      for (std::size_t j = 0; j < n; ++j) {
        drow[j] = static_cast<double>(c->at(i, j));
      }
    }
    for (std::size_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::size_t k1 = std::min(k, k0 + kBlock);
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double av = static_cast<double>(a.at(i, kk));
        const float* brow = b.row(kk);
        for (std::size_t j = 0; j < n; ++j) {
          // two_prod is exact for float inputs widened to double, so only
          // the double-double sum matters.
          const double prod = av * static_cast<double>(brow[j]);
          fp::dd_add(drow[j], lo_part[j], prod);
        }
      }
    }
    for (std::size_t j = 0; j < n; ++j) drow[j] += lo_part[j];
  }
  return d;
}

double max_abs_error(const MatrixD& reference, const Matrix& candidate) {
  EGEMM_EXPECTS(reference.rows() == candidate.rows() &&
                reference.cols() == candidate.cols());
  double max_err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_err = std::max(max_err,
                       std::fabs(static_cast<double>(candidate.data()[i]) -
                                 reference.data()[i]));
  }
  return max_err;
}

double max_abs(const Matrix& m) noexcept {
  double max_mag = 0.0;
  for (const float value : m.data()) {
    max_mag = std::max(max_mag, std::fabs(static_cast<double>(value)));
  }
  return max_mag;
}

double max_abs_error(const Matrix& reference, const Matrix& candidate) {
  EGEMM_EXPECTS(reference.rows() == candidate.rows() &&
                reference.cols() == candidate.cols());
  double max_err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_err = std::max(
        max_err, std::fabs(static_cast<double>(candidate.data()[i]) -
                           static_cast<double>(reference.data()[i])));
  }
  return max_err;
}

}  // namespace egemm::gemm
