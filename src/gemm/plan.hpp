#pragma once
// Plan-once / execute-many GEMM (DESIGN.md §13).
//
// The repository's iterative callers (kMeans/kNN Lloyd loops, the fuzz
// harness, the benchmarks) run the same (m, n, k) GEMM hundreds of times,
// yet the one-shot entry points re-derive the tile configuration,
// re-allocate split planes and packed tile buffers, and re-size the output
// on every call. Production GEMM stacks (cuBLAS handles, cuDNN execution
// plans) separate *planning* from *execution*; this layer adopts that
// architecture:
//
//   GemmPlan     an immutable, fully-normalized execution recipe for one
//                (shape, options, backend): split method, plane count, the
//                ordered split-product combos, engine, and the tile
//                configuration resolved through the §6 analytic solver.
//                execute(ctx, A, B, C, D) runs it into a caller-owned D
//                with zero per-call heap allocation once the leased
//                workspace has warmed up (guarded in debug builds).
//   GemmContext  owns the reusable workspaces (LIFO free list, so
//                back-to-back same-shape calls get the same warm buffers)
//                and an LRU plan cache keyed by the normalized recipe.
//                Cache behaviour is observable as the gemm.plan.{hit,miss}
//                counters and a "plan" span around plan construction.
//
// The one-shot APIs (egemm_multiply, emulated_gemm, run_gemm, gemm_ex)
// are thin wrappers over default_context(), so every caller shares one
// warm cache unless it opts into its own context. Both engines remain
// bit-identical: a plan executes the exact operation sequence of the
// pre-plan code paths.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/scheme.hpp"
#include "core/split.hpp"
#include "gemm/gemm_api.hpp"
#include "gemm/matrix.hpp"
#include "gemm/packing.hpp"
#include "gemm/tiling.hpp"
#include "tcsim/gpu_spec.hpp"

namespace egemm::gemm {

class GemmContext;

/// A split-product term over arbitrary plane stacks: multiply A-plane
/// `a_plane` by B-plane `b_plane`. Plane 0 is always the lowest-order
/// plane (lo; for three-way splits: lo, mid, hi).
struct PlaneCombo {
  int a_plane;
  int b_plane;

  friend bool operator==(const PlaneCombo&, const PlaneCombo&) = default;
};

/// Most combos a plan can carry (the cache key packs the ordered sequence
/// into 4 bits per combo; order is numerically significant, so the key
/// must preserve it, not just the set).
inline constexpr std::size_t kMaxPlanCombos = 16;

/// The normalized identity of a plan: problem shape plus every knob that
/// changes the executed operation sequence. Two requests with equal keys
/// are interchangeable by construction, which is what makes the LRU cache
/// sound.
struct PlanKey {
  std::size_t m = 0, n = 0, k = 0;
  Backend backend = Backend::kEgemmTC;  ///< timing dispatch + direct target
  bool direct = false;  ///< plain binary32 path, no plane decomposition
  core::SplitMethod split = core::SplitMethod::kRoundSplit;
  ExecEngine engine = ExecEngine::kPacked;
  ComboOrder order = ComboOrder::kFusedPerTile;
  std::uint8_t planes = 2;
  std::uint8_t combo_count = 0;
  std::uint64_t combo_seq = 0;  ///< ordered combos, 4 bits each
  /// The core::SchemeId this recipe realizes on the emulation-precision
  /// ladder, or -1 for direct backends and custom recipes that match no
  /// named rung. Derived from (split, planes, combos) at key construction;
  /// carried in the key so scheme identity is part of the cached plan's
  /// observable contract (obs counters, plan introspection).
  std::int8_t scheme = -1;
  int bm = 0, bn = 0, bk = 0, wm = 0, wn = 0, wk = 0;  ///< resolved tile

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& key) const noexcept;
};

/// Reusable per-call scratch owned by a GemmContext: the split planes of A
/// and B plus the tile-packed copies the packed engine streams. ensure()
/// and pack() only ever grow storage; in debug builds every actual growth
/// bumps the process-wide counter below, which is how the reuse guard test
/// proves a warm execute() allocates nothing.
class Workspace {
 public:
  /// Grows (never shrinks) the plane matrices to fit `planes` split planes
  /// of an (m x k) x (k x n) problem.
  void ensure(std::size_t m, std::size_t n, std::size_t k, int planes);

  std::span<Matrix> a_planes() noexcept { return {ap_.data(), count_}; }
  std::span<Matrix> b_planes() noexcept { return {bp_.data(), count_}; }
  std::span<const Matrix> a_planes() const noexcept {
    return {ap_.data(), count_};
  }
  std::span<const Matrix> b_planes() const noexcept {
    return {bp_.data(), count_};
  }

  /// Repacks the current planes into the tile-blocked buffers in place.
  void pack();
  const PackedPlanesA& packed_a() const noexcept { return apack_; }
  const PackedPlanesB& packed_b() const noexcept { return bpack_; }

 private:
  std::size_t count_ = 0;
  std::vector<Matrix> ap_, bp_;
  PackedPlanesA apack_;
  PackedPlanesB bpack_;
};

/// Work threshold (in m*n*k multiply-adds) below which a single GEMM
/// executes inline on the calling thread instead of dispatching to the
/// pool: under ~64^3 the per-GEMM 2D schedule produces more chunks than
/// useful work per chunk, so the pool round-trip costs more than it buys.
/// The effective value is, in order: the last set_ value (when nonzero),
/// the loaded tuning file's small_gemm_inline_threshold
/// (model/tuning_cache.hpp), else 64^3. Set 1 to never inline.
std::size_t small_gemm_inline_threshold() noexcept;

/// Overrides the threshold process-wide; 0 restores the automatic value
/// (tuning file, else the 64^3 default).
void set_small_gemm_inline_threshold(std::size_t work) noexcept;

/// Process-wide count of workspace buffer growths. Debug builds only: in
/// NDEBUG builds the accounting compiles out and this always returns 0
/// (gate tests on debug_workspace_accounting()).
std::uint64_t debug_workspace_allocations() noexcept;

/// True when the build performs the allocation accounting above.
constexpr bool debug_workspace_accounting() noexcept {
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

/// RAII lease of a context-owned workspace; returns it to the context's
/// free list on destruction.
class WorkspaceLease {
 public:
  WorkspaceLease(WorkspaceLease&& other) noexcept;
  WorkspaceLease& operator=(WorkspaceLease&&) = delete;
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  ~WorkspaceLease();

  Workspace& operator*() noexcept { return *ws_; }
  Workspace* operator->() noexcept { return ws_.get(); }

 private:
  friend class GemmContext;
  WorkspaceLease(GemmContext* ctx, std::unique_ptr<Workspace> ws) noexcept
      : ctx_(ctx), ws_(std::move(ws)) {}

  GemmContext* ctx_ = nullptr;
  std::unique_ptr<Workspace> ws_;
};

/// An immutable execution recipe, created once per (shape, options,
/// backend) by a GemmContext and shared via the cache. Thread-safe to
/// execute concurrently (all mutable state lives in the leased workspace
/// and the caller-owned D).
class GemmPlan {
 public:
  std::size_t m() const noexcept { return key_.m; }
  std::size_t n() const noexcept { return key_.n; }
  std::size_t k() const noexcept { return key_.k; }
  /// True for plain binary32 backends (no plane decomposition).
  bool direct() const noexcept { return key_.direct; }
  /// The backend the recipe was normalized from (timing dispatch target).
  Backend backend() const noexcept { return key_.backend; }
  ExecEngine engine() const noexcept { return key_.engine; }
  ComboOrder order() const noexcept { return key_.order; }
  core::SplitMethod split() const noexcept { return key_.split; }
  int planes() const noexcept { return key_.planes; }
  /// The emulation-ladder rung this plan realizes (core/scheme.hpp), when
  /// its recipe matches one; nullopt for direct backends and custom
  /// emulated recipes.
  std::optional<core::SchemeId> scheme_id() const noexcept {
    if (key_.direct || key_.scheme < 0) return std::nullopt;
    return static_cast<core::SchemeId>(key_.scheme);
  }
  std::span<const PlaneCombo> combos() const noexcept { return combos_; }
  /// Tile configuration after consulting the tuning cache (DESIGN.md §18)
  /// and then the §6 analytic solver.
  const TileConfig& tile() const noexcept { return tile_; }
  /// Scheduler grain (output tiles per 2D block) from the tuning cache;
  /// 0 = the pool's default heuristic. Scheduling only -- results are
  /// bit-identical for every grain, so it is not part of the plan key.
  std::size_t schedule_grain() const noexcept { return grain_; }
  /// Steady-state workspace footprint of one execute() (planes + packs).
  std::size_t workspace_bytes() const noexcept { return workspace_bytes_; }
  const PlanKey& key() const noexcept { return key_; }

  /// Runs the plan: D = A x B (+ C) into caller-owned `d` (resized in
  /// place). A/B/C extents must match the planned shape. Allocation-free
  /// once `d` and the context's workspace pool have warmed up.
  void execute(GemmContext& ctx, const Matrix& a, const Matrix& b,
               const Matrix* c, Matrix& d) const;

  /// Simulated execution time on `spec` for the planned shape, dispatched
  /// like time_gemm. Custom emulated recipes (plan_emulated) are modeled
  /// as the Alg. 1 EGEMM schedule. Requires a non-degenerate shape.
  KernelTiming timing(const tcsim::GpuSpec& spec) const;

 private:
  friend class GemmContext;
  GemmPlan(const PlanKey& key, std::size_t grain);

  PlanKey key_;
  TileConfig tile_;
  std::vector<PlaneCombo> combos_;
  std::size_t workspace_bytes_ = 0;
  std::size_t grain_ = 0;
};

/// One item of a grouped execute (GemmContext::execute_grouped): a planned
/// GEMM plus its operands. Plans may mix shapes, schemes, and engines
/// freely; direct-backend items fall back to a per-item execute.
struct GroupedGemm {
  std::shared_ptr<const GemmPlan> plan;
  const Matrix* a = nullptr;
  const Matrix* b = nullptr;
  const Matrix* c = nullptr;  ///< optional accumulator input
  Matrix* d = nullptr;        ///< caller-owned output, resized in place
};

/// Owns the plan cache and the workspace pool. Create one per long-lived
/// pipeline (or use default_context()); all members are thread-safe.
class GemmContext {
 public:
  static constexpr std::size_t kDefaultPlanCapacity = 64;

  explicit GemmContext(std::size_t plan_capacity = kDefaultPlanCapacity);
  GemmContext(const GemmContext&) = delete;
  GemmContext& operator=(const GemmContext&) = delete;

  /// Plan for a Table 5 backend: normalizes (backend, opts) into the
  /// recipe the backend's one-shot path executes. For Backend::kEgemmTC,
  /// opts.emulation_instructions selects Alg. 1 (4) or the three-way-split
  /// ablation (9); other emulated backends ignore the EGEMM-specific
  /// options except the engine.
  std::shared_ptr<const GemmPlan> plan(Backend backend, std::size_t m,
                                       std::size_t n, std::size_t k,
                                       const EgemmOptions& opts = {});

  /// Plan for a custom emulated recipe (the generalized emulated_gemm):
  /// `combos` is the ordered split-product sequence over `planes` planes.
  std::shared_ptr<const GemmPlan> plan_emulated(
      std::size_t m, std::size_t n, std::size_t k, core::SplitMethod split,
      std::span<const PlaneCombo> combos, ComboOrder order,
      ExecEngine engine = ExecEngine::kPacked, int planes = 2,
      const TileConfig& tile = table4_config());

  /// Convenience: plan (cached) + execute in one call.
  Matrix run(Backend backend, const Matrix& a, const Matrix& b,
             const Matrix* c = nullptr, const EgemmOptions& opts = {});

  /// Plan a named rung of the emulation-precision ladder
  /// (core/scheme.hpp) for the shape: the canonical executable recipe
  /// whose plan classifies back to `scheme` (plan->scheme_id()).
  std::shared_ptr<const GemmPlan> plan_scheme(
      core::SchemeId scheme, std::size_t m, std::size_t n, std::size_t k,
      ExecEngine engine = ExecEngine::kPacked,
      const TileConfig& tile = table4_config());

  /// plan_scheme + execute in one call.
  Matrix run_scheme(core::SchemeId scheme, const Matrix& a, const Matrix& b,
                    const Matrix* c = nullptr,
                    ExecEngine engine = ExecEngine::kPacked);

  /// A resolved accuracy contract: the per-rung bound table plus (when
  /// feasible) the plan for the cheapest provably sufficient rung.
  struct ContractPlan {
    core::ContractResolution resolution;
    std::shared_ptr<const GemmPlan> plan;  ///< null when infeasible
  };

  /// Resolves an accuracy contract for D = A x B (+ C) at the given shape
  /// and plans the selected scheme. The contract's scales must be the
  /// caller's element-magnitude context (max |A|, max |B|, max |C|); this
  /// layer cannot derive them from data -- gemm_ex's contract overload
  /// can. When no rung meets the target, `plan` is null and
  /// resolution.feasible is false (no throw: planning is noexcept-ish by
  /// convention; the executing APIs raise the error).
  ContractPlan plan_contract(std::size_t m, std::size_t n, std::size_t k,
                             const core::AccuracyContract& contract,
                             ExecEngine engine = ExecEngine::kPacked);

  /// Executes a batch of planned GEMMs as ONE flattened (item x tile) task
  /// stream (DESIGN.md §18): per-item prep (split, output init, pack) runs
  /// parallel over items, then every output tile of every item enters a
  /// single pool dispatch with a batch-aware grain, so small items no
  /// longer serialize behind each other. Results are bit-identical to
  /// calling item.plan->execute() in a loop (each output tile runs the
  /// exact same operation sequence; only the schedule changes). Per-call
  /// telemetry deposits one CallRecord per shape class, tagged with a
  /// process-unique batch id and the class's item count.
  void execute_grouped(std::span<const GroupedGemm> items);

  /// Leases a warm workspace (LIFO, so repeated same-shape calls reuse the
  /// same buffers). execute() does this internally.
  WorkspaceLease lease_workspace();

  std::uint64_t plan_hits() const noexcept;
  std::uint64_t plan_misses() const noexcept;
  /// Plans evicted from the LRU since construction (also the process-wide
  /// gemm.plan.cache.evictions counter and the gemm.plan.cache.{size,
  /// capacity} gauges, last-writing context wins on the gauges).
  std::uint64_t plan_evictions() const noexcept;
  std::size_t cached_plans() const noexcept;
  std::size_t plan_capacity() const noexcept { return capacity_; }
  std::size_t pooled_workspaces() const noexcept;

 private:
  friend class WorkspaceLease;

  std::shared_ptr<const GemmPlan> plan_for(const PlanKey& key,
                                           std::size_t grain);
  void recycle(std::unique_ptr<Workspace> ws);

  struct CacheEntry {
    PlanKey key;
    std::shared_ptr<const GemmPlan> plan;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, std::list<CacheEntry>::iterator, PlanKeyHash>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;

  mutable std::mutex ws_mutex_;
  std::vector<std::unique_ptr<Workspace>> free_workspaces_;
};

/// The process-wide context behind the one-shot APIs.
GemmContext& default_context();

}  // namespace egemm::gemm
