#pragma once
// The baseline kernels of Table 5, as functional implementations (real
// numerics) and calibrated timing models (simulated TFLOPS).
//
//   cuBLAS-CUDA-FP32      cublasSgemm on CUDA cores (binary32, FMA)
//   cuBLAS-TC-Half        cublasGemmEx, binary16 inputs on Tensor Cores
//   cuBLAS-TC-Emulation   Alg. 1 expressed as 4 separate cublasGemmEx calls
//   SDK-CUDA-FP32         the CUDA-SDK matrixMul sample (naive 16x16 tiles)
//   Markidis              truncate-split, 3 wmma products, CUDA-level code
//   Dekker                classical 16-instruction half-only emulation

#include <cstdint>

#include "gemm/egemm.hpp"
#include "gemm/matrix.hpp"
#include "tcsim/gpu_spec.hpp"

namespace egemm::gemm {

// -- functional paths --------------------------------------------------------

/// cublasSgemm stand-in: binary32 GEMM with FMA accumulation.
Matrix sgemm_fp32(const Matrix& a, const Matrix& b, const Matrix* c = nullptr);

/// sgemm_fp32 into caller-owned `d` (resized in place; allocation-free at
/// steady-state capacity). The direct plans (gemm/plan.hpp) execute these.
void sgemm_fp32_into(const Matrix& a, const Matrix& b, const Matrix* c,
                     Matrix& d);

/// CUDA-SDK matrixMul stand-in: binary32, separate multiply and add.
Matrix sdk_gemm_fp32(const Matrix& a, const Matrix& b);

/// sdk_gemm_fp32 into caller-owned `d`.
void sdk_gemm_fp32_into(const Matrix& a, const Matrix& b, Matrix& d);

/// cublasGemmEx stand-in: inputs rounded to binary16, Tensor Core compute.
Matrix gemm_tc_half(const Matrix& a, const Matrix& b,
                    const Matrix* c = nullptr);

/// Markidis emulation: truncate-split, 3 products (drops Alo x Blo).
Matrix gemm_markidis(const Matrix& a, const Matrix& b,
                     const Matrix* c = nullptr);

/// Algorithm 1 via 4 separate vendor GEMM calls (cuBLAS-TC-Emulation).
Matrix gemm_cublas_tc_emulation(const Matrix& a, const Matrix& b,
                                const Matrix* c = nullptr);

/// Dekker 16-instruction half-only emulation (slow; small sizes).
/// `instruction_count`, when non-null, accumulates emitted binary16 ops.
Matrix gemm_dekker(const Matrix& a, const Matrix& b,
                   const Matrix* c = nullptr,
                   long* instruction_count = nullptr);

/// gemm_dekker into caller-owned `d`.
void gemm_dekker_into(const Matrix& a, const Matrix& b, const Matrix* c,
                      Matrix& d, long* instruction_count = nullptr);

// -- timing models -----------------------------------------------------------

KernelTiming sgemm_fp32_timing(std::uint64_t m, std::uint64_t n,
                               std::uint64_t k, const tcsim::GpuSpec& spec);
KernelTiming sdk_gemm_timing(std::uint64_t m, std::uint64_t n,
                             std::uint64_t k, const tcsim::GpuSpec& spec);
KernelTiming tc_half_timing(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                            const tcsim::GpuSpec& spec);
KernelTiming tc_emulation_timing(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t k, const tcsim::GpuSpec& spec);
KernelTiming markidis_timing(std::uint64_t m, std::uint64_t n,
                             std::uint64_t k, const tcsim::GpuSpec& spec);

}  // namespace egemm::gemm
