#pragma once
// Unified backend registry: every kernel of Table 5 behind one functional
// and one timed entry point. The benchmark harness and the applications
// select kernels through this API.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "gemm/baselines.hpp"
#include "gemm/egemm.hpp"

namespace egemm::gemm {

class GemmContext;  // gemm/plan.hpp: plan cache + reusable workspaces

enum class Backend {
  kEgemmTC,            ///< this paper (Alg. 1 + §4/§5 optimizations)
  kCublasFp32,         ///< cuBLAS-CUDA-FP32
  kCublasTcHalf,       ///< cuBLAS-TC-Half
  kCublasTcEmulation,  ///< cuBLAS-TC-Emulation
  kSdkFp32,            ///< SDK-CUDA-FP32
  kMarkidis,           ///< Markidis [20]
  kDekker,             ///< Dekker [7] (functional + schedule model only)
};

const char* backend_name(Backend backend) noexcept;
std::vector<Backend> all_backends();

/// Functional D = A x B (+ C) on the chosen backend's numerics. Plans
/// against default_context(), so repeated same-shape calls hit the plan
/// cache; pass an explicit context (overload below) to isolate or warm a
/// cache of your own.
Matrix run_gemm(Backend backend, const Matrix& a, const Matrix& b,
                const Matrix* c = nullptr);

/// run_gemm against an explicit plan/workspace context (gemm/plan.hpp).
Matrix run_gemm(GemmContext& ctx, Backend backend, const Matrix& a,
                const Matrix& b, const Matrix* c = nullptr);

/// Simulated execution time/TFLOPS of the backend on `spec`.
/// Backend::kDekker is timed as an EGEMM schedule with 16 emulation
/// instructions (a Dekker-style Tensor Core schedule), since the original
/// CPU algorithm has no GPU kernel to model.
KernelTiming time_gemm(Backend backend, std::uint64_t m, std::uint64_t n,
                       std::uint64_t k, const tcsim::GpuSpec& spec);

// -- BLAS-style extended entry point -----------------------------------------

enum class Transpose { kNone, kTranspose };

/// cublasSgemm-style parameters: D = alpha * op(A) x op(B) + beta * C.
struct GemmExParams {
  Transpose trans_a = Transpose::kNone;
  Transpose trans_b = Transpose::kNone;
  float alpha = 1.0f;
  float beta = 0.0f;
};

/// BLAS-style GEMM on any backend. Dimensions follow the ops: with
/// trans_a, A is stored k x m; with trans_b, B is stored n x k. When
/// alpha == 1 and beta is 0 or 1 the accumulation happens inside the
/// kernel (same numerics as run_gemm); otherwise the scaling is a binary32
/// epilogue pass, as cuBLAS does it.
Matrix gemm_ex(Backend backend, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params);

/// gemm_ex against an explicit plan/workspace context.
Matrix gemm_ex(GemmContext& ctx, Backend backend, const Matrix& a,
               const Matrix& b, const Matrix* c, const GemmExParams& params);

// -- batched / grouped entry points (DESIGN.md §18) --------------------------

/// One item of gemm_grouped: operands, a caller-owned output (resized in
/// place), and BLAS-style parameters. Shapes, transposes, and alpha/beta
/// may differ freely across items; `c` is required when params.beta != 0.
struct GroupedGemmItem {
  const Matrix* a = nullptr;
  const Matrix* b = nullptr;
  const Matrix* c = nullptr;
  Matrix* d = nullptr;
  GemmExParams params;
};

/// Heterogeneous grouped GEMM: every item runs gemm_ex semantics on
/// `backend`, but all items execute as ONE flattened (item x tile) task
/// stream through GemmContext::execute_grouped, so many small GEMMs stop
/// serializing behind each other. Items with equal op-shapes share one
/// cached GemmPlan. Results are bit-identical to calling gemm_ex per item
/// in order.
void gemm_grouped(GemmContext& ctx, Backend backend,
                  std::span<const GroupedGemmItem> items);

/// gemm_grouped against the shared default context.
void gemm_grouped(Backend backend, std::span<const GroupedGemmItem> items);

/// Uniform-shape batched GEMM: d[i] = gemm_ex(backend, a[i], b[i], c[i],
/// params) for every i, planned ONCE (all items share a single cached
/// GemmPlan) and executed as one flattened task stream. All a[i] must
/// share a shape, as must all b[i]; `c` is empty or one matrix per item.
std::vector<Matrix> gemm_batched(GemmContext& ctx, Backend backend,
                                 std::span<const Matrix> a,
                                 std::span<const Matrix> b,
                                 std::span<const Matrix> c = {},
                                 const GemmExParams& params = {});

/// gemm_batched against the shared default context.
std::vector<Matrix> gemm_batched(Backend backend, std::span<const Matrix> a,
                                 std::span<const Matrix> b,
                                 std::span<const Matrix> c = {},
                                 const GemmExParams& params = {});

/// Strided convenience form: the batch is packed into tall row-major
/// stacks -- A is (batch * m_a) x k_a, B is (batch * k_b) x n_b, C (when
/// present) (batch * m) x n -- and the result D comes back as one
/// (batch * m) x n stack. Matrices are owning (no view type), so the
/// items are sliced by copy before dispatch; prefer the span form when the
/// operands already exist as separate matrices.
Matrix gemm_batched_strided(GemmContext& ctx, Backend backend,
                            std::size_t batch, const Matrix& a,
                            const Matrix& b, const Matrix* c = nullptr,
                            const GemmExParams& params = {});

/// gemm_batched_strided against the shared default context.
Matrix gemm_batched_strided(Backend backend, std::size_t batch,
                            const Matrix& a, const Matrix& b,
                            const Matrix* c = nullptr,
                            const GemmExParams& params = {});

// -- accuracy-contract entry points (core/scheme.hpp, DESIGN.md §16) ---------

/// Resolves an accuracy contract for D = alpha op(A) op(B) + beta C
/// without executing anything: derives missing scale context from the
/// data (contract scales <= 0 mean "measure max |x| here"), folds the
/// alpha/beta epilogue rounding into the target, and reports every ladder
/// rung's a-priori bound plus the selected scheme. resolution.feasible is
/// false when no rung meets the target. Requires alpha != 0 (the kernel
/// error cannot be scaled away through a zero alpha).
core::ContractResolution gemm_ex_contract_resolution(
    const Matrix& a, const Matrix& b, const Matrix* c,
    const GemmExParams& params, const core::AccuracyContract& contract);

/// gemm_ex under an accuracy contract: instead of a caller-chosen
/// backend, the planner selects the cheapest emulation scheme whose sound
/// a-priori element-wise bound meets contract.max_abs_error for this
/// data's scale context. Throws std::invalid_argument when no rung
/// qualifies; the message names the target and the tightest rung's bound.
Matrix gemm_ex(GemmContext& ctx, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params,
               const core::AccuracyContract& contract);

/// Contract overload against the shared default context.
Matrix gemm_ex(const Matrix& a, const Matrix& b, const Matrix* c,
               const GemmExParams& params,
               const core::AccuracyContract& contract);

/// gemm_batched under an accuracy contract: the contract is resolved ONCE
/// against the batch-wide worst-case scale context (max |a[i]|, max
/// |b[i]|, max |c[i]|), so the whole batch shares one scheme and one plan
/// and every item's bound is sound. With explicit (> 0) contract scales
/// this matches the per-item contract gemm_ex exactly. Throws
/// std::invalid_argument when no rung qualifies.
std::vector<Matrix> gemm_batched(GemmContext& ctx,
                                 std::span<const Matrix> a,
                                 std::span<const Matrix> b,
                                 std::span<const Matrix> c,
                                 const GemmExParams& params,
                                 const core::AccuracyContract& contract);

/// Batched contract overload against the shared default context.
std::vector<Matrix> gemm_batched(std::span<const Matrix> a,
                                 std::span<const Matrix> b,
                                 std::span<const Matrix> c,
                                 const GemmExParams& params,
                                 const core::AccuracyContract& contract);

/// gemm_grouped under an accuracy contract: each item resolves the
/// contract for its own shape, parameters, and data (exactly as the
/// contract gemm_ex would), then all selected schemes execute as one
/// flattened stream -- bit-identical to the per-item contract loop.
/// Throws std::invalid_argument when any item is infeasible (no item
/// executes in that case).
void gemm_grouped(GemmContext& ctx, std::span<const GroupedGemmItem> items,
                  const core::AccuracyContract& contract);

/// Grouped contract overload against the shared default context.
void gemm_grouped(std::span<const GroupedGemmItem> items,
                  const core::AccuracyContract& contract);

}  // namespace egemm::gemm
