#pragma once
// Unified backend registry: every kernel of Table 5 behind one functional
// and one timed entry point. The benchmark harness and the applications
// select kernels through this API.

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "gemm/baselines.hpp"
#include "gemm/egemm.hpp"

namespace egemm::gemm {

class GemmContext;  // gemm/plan.hpp: plan cache + reusable workspaces

enum class Backend {
  kEgemmTC,            ///< this paper (Alg. 1 + §4/§5 optimizations)
  kCublasFp32,         ///< cuBLAS-CUDA-FP32
  kCublasTcHalf,       ///< cuBLAS-TC-Half
  kCublasTcEmulation,  ///< cuBLAS-TC-Emulation
  kSdkFp32,            ///< SDK-CUDA-FP32
  kMarkidis,           ///< Markidis [20]
  kDekker,             ///< Dekker [7] (functional + schedule model only)
};

const char* backend_name(Backend backend) noexcept;
std::vector<Backend> all_backends();

/// Functional D = A x B (+ C) on the chosen backend's numerics. Plans
/// against default_context(), so repeated same-shape calls hit the plan
/// cache; pass an explicit context (overload below) to isolate or warm a
/// cache of your own.
Matrix run_gemm(Backend backend, const Matrix& a, const Matrix& b,
                const Matrix* c = nullptr);

/// run_gemm against an explicit plan/workspace context (gemm/plan.hpp).
Matrix run_gemm(GemmContext& ctx, Backend backend, const Matrix& a,
                const Matrix& b, const Matrix* c = nullptr);

/// Simulated execution time/TFLOPS of the backend on `spec`.
/// Backend::kDekker is timed as an EGEMM schedule with 16 emulation
/// instructions (a Dekker-style Tensor Core schedule), since the original
/// CPU algorithm has no GPU kernel to model.
KernelTiming time_gemm(Backend backend, std::uint64_t m, std::uint64_t n,
                       std::uint64_t k, const tcsim::GpuSpec& spec);

// -- BLAS-style extended entry point -----------------------------------------

enum class Transpose { kNone, kTranspose };

/// cublasSgemm-style parameters: D = alpha * op(A) x op(B) + beta * C.
struct GemmExParams {
  Transpose trans_a = Transpose::kNone;
  Transpose trans_b = Transpose::kNone;
  float alpha = 1.0f;
  float beta = 0.0f;
};

/// BLAS-style GEMM on any backend. Dimensions follow the ops: with
/// trans_a, A is stored k x m; with trans_b, B is stored n x k. When
/// alpha == 1 and beta is 0 or 1 the accumulation happens inside the
/// kernel (same numerics as run_gemm); otherwise the scaling is a binary32
/// epilogue pass, as cuBLAS does it.
Matrix gemm_ex(Backend backend, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params);

/// gemm_ex against an explicit plan/workspace context.
Matrix gemm_ex(GemmContext& ctx, Backend backend, const Matrix& a,
               const Matrix& b, const Matrix* c, const GemmExParams& params);

// -- accuracy-contract entry points (core/scheme.hpp, DESIGN.md §16) ---------

/// Resolves an accuracy contract for D = alpha op(A) op(B) + beta C
/// without executing anything: derives missing scale context from the
/// data (contract scales <= 0 mean "measure max |x| here"), folds the
/// alpha/beta epilogue rounding into the target, and reports every ladder
/// rung's a-priori bound plus the selected scheme. resolution.feasible is
/// false when no rung meets the target. Requires alpha != 0 (the kernel
/// error cannot be scaled away through a zero alpha).
core::ContractResolution gemm_ex_contract_resolution(
    const Matrix& a, const Matrix& b, const Matrix* c,
    const GemmExParams& params, const core::AccuracyContract& contract);

/// gemm_ex under an accuracy contract: instead of a caller-chosen
/// backend, the planner selects the cheapest emulation scheme whose sound
/// a-priori element-wise bound meets contract.max_abs_error for this
/// data's scale context. Throws std::invalid_argument when no rung
/// qualifies; the message names the target and the tightest rung's bound.
Matrix gemm_ex(GemmContext& ctx, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params,
               const core::AccuracyContract& contract);

/// Contract overload against the shared default context.
Matrix gemm_ex(const Matrix& a, const Matrix& b, const Matrix* c,
               const GemmExParams& params,
               const core::AccuracyContract& contract);

}  // namespace egemm::gemm
