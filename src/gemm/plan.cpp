#include "gemm/plan.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "gemm/baselines.hpp"
#include "model/analytic_model.hpp"
#include "model/solver.hpp"
#include "model/tuning_cache.hpp"
#include "obs/callrec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/isa.hpp"
#include "tcsim/tensor_core.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace egemm::gemm {

namespace {

constexpr std::size_t kTile = 16;  // wmma primitive extent
static_assert(kTile == kPackTile && kTile == tcsim::kTcM &&
              kTile == tcsim::kTcN);

#ifndef NDEBUG
std::atomic<std::uint64_t> g_workspace_allocations{0};
#endif

void count_workspace_allocation() noexcept {
#ifndef NDEBUG
  g_workspace_allocations.fetch_add(1, std::memory_order_relaxed);
#endif
}

/// Worker-side stage attribution for one engine invocation (DESIGN.md
/// §17). Each pool chunk adds its locally accumulated combine time and its
/// own wall clock's remainder as mma -- one relaxed fetch_add pair per
/// chunk, read by the issuing thread after the pool join. Chunks overlap
/// in time across workers, so the totals are *weights*: execute() scales
/// the single-threaded engine wall segment by mma/(mma+combine) to get
/// per-stage nanoseconds that sum to the wall time. Engines take the
/// accumulator as a nullable pointer so the disabled path costs one
/// predictable branch per chunk.
struct StageAccum {
  std::atomic<std::uint64_t> mma{0};
  std::atomic<std::uint64_t> combine{0};
};

#if EGEMM_OBSERVABILITY_ENABLED
/// Thread-local breadcrumb from plan_for to execute: when a caller runs a
/// plan immediately after looking it up (the GemmContext::run / gemm_ex
/// path), the record can say whether that lookup hit the plan cache.
/// Consumed on first use; a plan held across calls reports kUnknown.
thread_local const void* tl_last_plan = nullptr;
thread_local obs::PlanLookup tl_last_lookup = obs::PlanLookup::kUnknown;
#endif

/// NaN canonicalization at the D store, as the modeled hardware does: the
/// Tensor Core emits a canonical quiet NaN, never an input payload. Without
/// this, x86 NaN propagation picks the *first* operand's payload, so the
/// packed and reference engines could return bitwise-different NaNs for the
/// same case purely from compiler register allocation.
inline float canonical_store(float x) noexcept {
  return std::isnan(x) ? std::numeric_limits<float>::quiet_NaN() : x;
}

/// Computes one 16x16 C tile over plane decompositions of A and B:
/// iterates k-tiles and, per the requested order, the split-product
/// combos; every dot runs with Tensor Core accumulation semantics. `acc`
/// is the fp32 accumulator tile.
void compute_c_tile(float acc[kTile][kTile], std::span<const Matrix> ap,
                    std::span<const Matrix> bp, std::size_t i0,
                    std::size_t j0, std::size_t mt, std::size_t nt,
                    std::span<const PlaneCombo> combos, ComboOrder order) {
  const std::size_t k = ap[0].cols();

  auto k_tile_pass = [&](std::size_t k0, const PlaneCombo& combo) {
    const std::size_t kt = std::min(kTile, k - k0);
    // Transpose the B tile plane into a contiguous [j][k] buffer so the
    // inner dot walks unit strides.
    float bt[kTile][kTile];
    const Matrix& bplane = bp[static_cast<std::size_t>(combo.b_plane)];
    for (std::size_t kk = 0; kk < kt; ++kk) {
      const float* brow = bplane.row(k0 + kk) + j0;
      for (std::size_t j = 0; j < nt; ++j) bt[j][kk] = brow[j];
    }
    const Matrix& aplane = ap[static_cast<std::size_t>(combo.a_plane)];
    for (std::size_t i = 0; i < mt; ++i) {
      const float* arow = aplane.row(i0 + i) + k0;
      for (std::size_t j = 0; j < nt; ++j) {
        acc[i][j] = tcsim::tc_dot_f32(arow, bt[j], static_cast<int>(kt),
                                      acc[i][j]);
      }
    }
  };

  if (order == ComboOrder::kFusedPerTile) {
    // Alg. 1: inside each k-tile all combos accumulate before moving on.
    for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
      for (const PlaneCombo& combo : combos) k_tile_pass(k0, combo);
    }
  } else {
    // cuBLAS-TC-Emulation: one full-K GEMM per combo, D re-read between
    // passes (numerically identical to staying in registers, since D is
    // binary32 either way).
    for (const PlaneCombo& combo : combos) {
      for (std::size_t k0 = 0; k0 < k; k0 += kTile) k_tile_pass(k0, combo);
    }
  }
}

/// One 16-row output band (all column tiles) of the scalar reference
/// driver -- the seed's execution path, kept as the semantics oracle the
/// packed engine is pinned against (tests/test_packed_gemm.cpp). Shared
/// verbatim by the single-GEMM schedule and the grouped flattened stream,
/// so both are bit-identical by construction. Returns the combine
/// (writeback) nanoseconds when `timed`.
std::uint64_t reference_row_block(Matrix& d, std::span<const Matrix> ap,
                                  std::span<const Matrix> bp,
                                  std::span<const PlaneCombo> combos,
                                  ComboOrder order, std::size_t rb,
                                  bool timed) {
  const std::size_t m = d.rows();
  const std::size_t n = d.cols();
  const std::size_t i0 = rb * kTile;
  const std::size_t mt = std::min(kTile, m - i0);
  std::uint64_t combine_local = 0;
  for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
    const std::size_t nt = std::min(kTile, n - j0);
    float acc[kTile][kTile];
    for (std::size_t i = 0; i < mt; ++i) {
      for (std::size_t j = 0; j < nt; ++j) {
        acc[i][j] = d.at(i0 + i, j0 + j);
      }
    }
    compute_c_tile(acc, ap, bp, i0, j0, mt, nt, combos, order);
    EGEMM_TRACE_SCOPE("combine");
    const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
    for (std::size_t i = 0; i < mt; ++i) {
      for (std::size_t j = 0; j < nt; ++j) {
        d.at(i0 + i, j0 + j) = canonical_store(acc[i][j]);
      }
    }
    if (timed) combine_local += obs::monotonic_ns() - t0;
  }
  return combine_local;
}

/// Retained scalar reference driver: D += sum over combos of Aplane x
/// Bplane, tiled and parallelized over row blocks (or run inline when
/// `serial`, for sub-threshold shapes). `d` arrives initialized with C
/// (or zeros).
void reference_engine(Matrix& d, std::span<const Matrix> ap,
                      std::span<const Matrix> bp,
                      std::span<const PlaneCombo> combos, ComboOrder order,
                      bool serial, StageAccum* stages) {
  const std::size_t row_blocks = (d.rows() + kTile - 1) / kTile;
  const auto run_range = [&](std::size_t rb0, std::size_t rb1) {
    EGEMM_TRACE_SCOPE("mma");
    const std::uint64_t chunk_start =
        stages != nullptr ? obs::monotonic_ns() : 0;
    std::uint64_t combine_local = 0;
    for (std::size_t rb = rb0; rb < rb1; ++rb) {
      combine_local += reference_row_block(d, ap, bp, combos, order, rb,
                                           stages != nullptr);
    }
    if (stages != nullptr) {
      const std::uint64_t wall = obs::monotonic_ns() - chunk_start;
      stages->combine.fetch_add(combine_local, std::memory_order_relaxed);
      stages->mma.fetch_add(wall > combine_local ? wall - combine_local : 0,
                            std::memory_order_relaxed);
    }
  };
  if (serial) {
    run_range(0, row_blocks);
    return;
  }
  util::global_pool().parallel_for(row_blocks, run_range);
}

/// k-slab length for the kSeparatePasses combo order. Any EVEN value is
/// bit-identical to any other (pair boundaries stay on even k offsets), so
/// the length is a pure blocking choice: 512 keeps one B slab (512 x 16
/// floats = 32 KiB) L1-resident while the recipe kernel streams it. The
/// kFusedPerTile order is different -- there the slab length is part of
/// the emulation recipe (combos interleave per slab) and stays at the
/// semantic kTile.
constexpr int kSeparateSlab = 512;
static_assert(kSeparateSlab % 2 == 0);

/// One 16x16 output tile of the packed engine: the whole combo x k-slab
/// recipe runs in ONE dispatched tcsim::mma_tile_recipe call over the
/// workspace's pre-packed planes, so the SIMD variants keep the
/// accumulator in registers across the entire k extent. Shared verbatim by
/// the single-GEMM 2D schedule and the grouped flattened stream. Returns
/// the combine (writeback) nanoseconds when `timed`.
std::uint64_t packed_tile(Matrix& d, const PackedPlanesA& apack,
                          const PackedPlanesB& bpack, std::size_t k,
                          std::span<const PlaneCombo> combos, int k_slab,
                          bool fused, std::size_t rb, std::size_t cb,
                          bool timed) {
  const std::size_t m = d.rows();
  const std::size_t n = d.cols();
  const auto ncombos = static_cast<int>(combos.size());
  const std::size_t i0 = rb * kTile;
  const std::size_t mt = std::min(kTile, m - i0);
  const std::size_t j0 = cb * kTile;
  const std::size_t nt = std::min(kTile, n - j0);
  const float* a_blocks[kMaxPlanCombos];
  const float* b_blocks[kMaxPlanCombos];
  for (int ci = 0; ci < ncombos; ++ci) {
    a_blocks[ci] = apack.block(
        static_cast<std::size_t>(combos[static_cast<std::size_t>(ci)].a_plane),
        rb);
    b_blocks[ci] = bpack.block(
        static_cast<std::size_t>(combos[static_cast<std::size_t>(ci)].b_plane),
        cb);
    // Warm the first lines of each combo's B block; the recipe kernel
    // prefetches ahead within each stream but cannot see across the combo
    // boundary.
    __builtin_prefetch(b_blocks[ci]);
  }
  // Full 16x16 accumulator; lanes past (mt, nt) compute against the packs'
  // zero padding and are never copied back.
  alignas(64) float acc[kTile][kTile] = {};
  for (std::size_t i = 0; i < mt; ++i) {
    for (std::size_t j = 0; j < nt; ++j) {
      acc[i][j] = d.at(i0 + i, j0 + j);
    }
  }
  if (k > 0) {  // zero-extent K: the tile is the C passthrough
    tcsim::mma_tile_recipe(&acc[0][0], a_blocks, b_blocks, ncombos, k,
                           static_cast<int>(k), k_slab, fused);
  }
  EGEMM_TRACE_SCOPE("combine");
  const std::uint64_t t0 = timed ? obs::monotonic_ns() : 0;
  for (std::size_t i = 0; i < mt; ++i) {
    for (std::size_t j = 0; j < nt; ++j) {
      d.at(i0 + i, j0 + j) = canonical_store(acc[i][j]);
    }
  }
  return timed ? obs::monotonic_ns() - t0 : 0;
}

/// Packed engine (DESIGN.md §10): walks the output tiles on a 2D block
/// schedule (or inline when `serial`, for sub-threshold shapes). `grain`
/// is the tuned block size in output tiles (0 = pool default). Per output
/// element the operation sequence is identical to the reference driver, so
/// the result is bit-identical. `d` arrives initialized with C (or zeros).
void packed_engine(Matrix& d, const PackedPlanesA& apack,
                   const PackedPlanesB& bpack, std::size_t k,
                   std::span<const PlaneCombo> combos, ComboOrder order,
                   std::size_t grain, bool serial, StageAccum* stages) {
  const bool fused = order == ComboOrder::kFusedPerTile;
  const int k_slab = fused ? static_cast<int>(kTile) : kSeparateSlab;
  const auto run_block = [&](std::size_t rb0, std::size_t rb1,
                             std::size_t cb0, std::size_t cb1) {
    EGEMM_TRACE_SCOPE("mma");
    EGEMM_COUNTER_ADD("egemm.tiles", (rb1 - rb0) * (cb1 - cb0));
    const std::uint64_t chunk_start =
        stages != nullptr ? obs::monotonic_ns() : 0;
    std::uint64_t combine_local = 0;
    for (std::size_t rb = rb0; rb < rb1; ++rb) {
      for (std::size_t cb = cb0; cb < cb1; ++cb) {
        combine_local += packed_tile(d, apack, bpack, k, combos, k_slab,
                                     fused, rb, cb, stages != nullptr);
      }
    }
    if (stages != nullptr) {
      const std::uint64_t wall = obs::monotonic_ns() - chunk_start;
      stages->combine.fetch_add(combine_local, std::memory_order_relaxed);
      stages->mma.fetch_add(wall > combine_local ? wall - combine_local : 0,
                            std::memory_order_relaxed);
    }
  };
  if (serial) {
    run_block(0, apack.row_blocks(), 0, bpack.col_blocks());
    return;
  }
  util::global_pool().parallel_for_2d(apack.row_blocks(), bpack.col_blocks(),
                                      grain, run_block);
}

/// Grows `m` to (rows x cols), counting an actual storage growth.
void grow_matrix(Matrix& m, std::size_t rows, std::size_t cols) {
  if (rows * cols > m.capacity()) count_workspace_allocation();
  m.resize(rows, cols);
}

/// The analytic solver's pick over the T4 budget (reproduces Table 4
/// exactly, so this is behavior-neutral by the solver's own tests).
const TileConfig& solver_default_tile() {
  static const TileConfig solved = [] {
    const model::SolverResult result =
        model::solve(model::budget_from_spec(tcsim::tesla_t4()));
    return result.found ? result.best : table4_config();
  }();
  return solved;
}

/// True when `tile` is in the solver's feasible set. A tuned tile is
/// applied only if the analytic model admits it, so a hand-edited tuning
/// file can never smuggle an unschedulable tiling into the plans (debug
/// builds lint every distinct tiling).
bool tile_is_feasible(const TileConfig& tile) {
  static const std::vector<TileConfig> feasible = [] {
    const model::SolverResult result =
        model::solve(model::budget_from_spec(tcsim::tesla_t4()));
    std::vector<TileConfig> tiles;
    tiles.reserve(result.feasible.size());
    for (const model::SolverCandidate& candidate : result.feasible) {
      tiles.push_back(candidate.config);
    }
    return tiles;
  }();
  return std::find(feasible.begin(), feasible.end(), tile) != feasible.end();
}

/// Tile resolution for direct backends and explicit tiles: the analytic
/// solver applies whenever the caller left the tile at the paper's
/// default; an explicitly chosen tile is honored as-is.
TileConfig analytic_tile(const TileConfig& requested) {
  return requested == table4_config() ? solver_default_tile() : requested;
}

/// Tile + scheduler-grain resolution for emulated plans (DESIGN.md §18):
/// an explicitly chosen tile is honored as-is; otherwise the shape class's
/// tuning-cache entry wins (gemm.tune.hit), and absent a usable entry the
/// analytic solver decides (gemm.tune.{miss,fallback} name why not).
struct ResolvedSchedule {
  TileConfig tile;
  std::size_t grain = 0;
};

ResolvedSchedule resolve_schedule(const TileConfig& requested, std::size_t m,
                                  std::size_t n, std::size_t k) {
  if (!(requested == table4_config())) return {requested, 0};
  model::TuningEntry entry;
  if (model::TuningCache::global().lookup(m, n, k, &entry) ==
      model::TuningLookup::kHit) {
    return {tile_is_feasible(entry.tile) ? entry.tile : solver_default_tile(),
            entry.grain};
  }
  return {solver_default_tile(), 0};
}

/// Automatic small-GEMM inline threshold override; 0 = automatic.
std::atomic<std::size_t> g_inline_threshold{0};
constexpr std::size_t kDefaultInlineThreshold = std::size_t{64} * 64 * 64;

/// Process-unique grouped-execute ids for CallRecord::batch_id (0 means
/// unbatched, so the first batch is 1).
std::atomic<std::uint32_t> g_batch_counter{0};

/// Floor on the FLOPs a flattened-stream chunk should carry: below ~4
/// MFLOP the pool round-trip dominates the chunk. The batch grain is this
/// divided by the stream's mean per-block FLOPs, so batches of tiny items
/// coalesce many items into one task while large items still fan out.
constexpr std::uint64_t kMinChunkFlops = std::uint64_t{1} << 22;

/// Splits A and B into the workspace's plane stacks per the plan's recipe.
/// Plane 0 = lo; for three-way splits: lo, mid, hi.
void split_into_workspace(Workspace& ws, const Matrix& a, const Matrix& b,
                          const PlanKey& key) {
  const std::span<Matrix> ap = ws.a_planes();
  const std::span<Matrix> bp = ws.b_planes();
  if (key.planes == 3) {
    core::split3_span_f32(a.data(), ap[2].data(), ap[1].data(), ap[0].data(),
                          key.split);
    core::split3_span_f32(b.data(), bp[2].data(), bp[1].data(), bp[0].data(),
                          key.split);
  } else {
    core::split_span_f32(a.data(), ap[1].data(), ap[0].data(), key.split);
    core::split_span_f32(b.data(), bp[1].data(), bp[0].data(), key.split);
  }
}

std::uint64_t encode_combos(std::span<const PlaneCombo> combos, int planes) {
  EGEMM_EXPECTS(!combos.empty() && combos.size() <= kMaxPlanCombos);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    EGEMM_EXPECTS(combos[i].a_plane >= 0 && combos[i].a_plane < planes);
    EGEMM_EXPECTS(combos[i].b_plane >= 0 && combos[i].b_plane < planes);
    const std::uint64_t enc =
        (static_cast<std::uint64_t>(combos[i].a_plane) << 2) |
        static_cast<std::uint64_t>(combos[i].b_plane);
    seq |= enc << (4 * i);
  }
  return seq;
}

void set_key_tile(PlanKey& key, const TileConfig& tile) {
  key.bm = tile.bm;
  key.bn = tile.bn;
  key.bk = tile.bk;
  key.wm = tile.wm;
  key.wn = tile.wn;
  key.wk = tile.wk;
}

/// Maps an executable recipe onto the emulation-precision ladder
/// (core/scheme.hpp): the SchemeId whose split method and term grid the
/// recipe realizes, or -1 for custom recipes that match no named rung.
/// PlaneCombo numbers planes from the LOWEST order (plan layer
/// convention); scheme terms number by split depth (0 = hi), so the grid
/// index flips: depth = planes - 1 - plane.
std::int8_t classify_combos(core::SplitMethod split, int planes,
                            std::span<const PlaneCombo> combos) {
  core::SchemeProfile profile;
  profile.split = split;
  if (combos.size() == 1 && combos[0].a_plane == planes - 1 &&
      combos[0].b_plane == planes - 1) {
    // A single hi x hi product consumes raw RN16 numerics: that is the
    // half-only rung regardless of how many planes the key nominally
    // decomposes into (the kCublasTcHalf recipe keeps planes = 2).
    profile.half_only = true;
    profile.planes = 1;
    profile.term_mask = 0x1;
  } else {
    profile.planes = planes;
    profile.term_mask = 0;
    for (const PlaneCombo& combo : combos) {
      profile.set_term(planes - 1 - combo.a_plane, planes - 1 - combo.b_plane,
                       true);
    }
    // A recipe that repeats a combo executes more adds than the rung's
    // bound accounts for; such a recipe is custom, never a named rung.
    if (profile.term_count() != static_cast<int>(combos.size())) return -1;
  }
  const std::optional<core::SchemeId> id = core::classify_scheme(profile);
  return id ? static_cast<std::int8_t>(*id) : std::int8_t{-1};
}

void set_key_recipe(PlanKey& key, core::SplitMethod split,
                    std::span<const PlaneCombo> combos, ComboOrder order,
                    int planes) {
  key.split = split;
  key.order = order;
  key.planes = static_cast<std::uint8_t>(planes);
  key.combo_count = static_cast<std::uint8_t>(combos.size());
  key.combo_seq = encode_combos(combos, planes);
  key.scheme = classify_combos(split, planes, combos);
}

/// Bumps the per-scheme execute counter: gemm.scheme.<name>, with custom
/// recipes landing on gemm.scheme.custom. Static handles, same pattern as
/// the differential runner's per-path counters.
void count_scheme_execute(std::int8_t scheme) {
  if constexpr (obs::kEnabled) {
    static const std::array<obs::Counter*, core::kSchemeCount + 1> counters =
        [] {
          std::array<obs::Counter*, core::kSchemeCount + 1> handles{};
          for (std::size_t s = 0; s < core::kSchemeCount; ++s) {
            handles[s] = &obs::registry().counter(
                std::string("gemm.scheme.") +
                core::scheme_name(static_cast<core::SchemeId>(s)));
          }
          handles[core::kSchemeCount] =
              &obs::registry().counter("gemm.scheme.custom");
          return handles;
        }();
    const std::size_t index = scheme >= 0 ? static_cast<std::size_t>(scheme)
                                          : core::kSchemeCount;
    counters[index]->add(1);
  }
}

#if EGEMM_OBSERVABILITY_ENABLED
/// Assembles and deposits the per-call telemetry for one execute: the
/// egemm.execute.latency histogram sample plus a structured CallRecord.
/// `engine_ns` is the wall segment spent inside the engine; the worker
/// StageAccum weights apportion it between mma and combine so the four
/// stage fields sum to at most total_ns. Direct backends pass engine_ns =
/// 0 and a null accumulator (total only).
void record_execute_call(const PlanKey& key, std::uint64_t workspace_bytes,
                         bool with_c, std::uint64_t start_ns,
                         std::uint64_t split_ns, std::uint64_t pack_ns,
                         std::uint64_t engine_ns, const StageAccum* stages,
                         obs::PlanLookup lookup) {
  const std::uint64_t now = obs::monotonic_ns();
  const std::uint64_t total = now > start_ns ? now - start_ns : 0;
  EGEMM_LATENCY_RECORD("egemm.execute.latency", total);
  obs::CallRecord rec;
  rec.start_ns = start_ns;
  rec.total_ns = total;
  rec.split_ns = split_ns;
  rec.pack_ns = pack_ns;
  if (stages != nullptr) {
    const std::uint64_t wm = stages->mma.load(std::memory_order_relaxed);
    const std::uint64_t wc = stages->combine.load(std::memory_order_relaxed);
    if (wm + wc > 0) {
      rec.mma_ns = static_cast<std::uint64_t>(
          static_cast<double>(engine_ns) * static_cast<double>(wm) /
          static_cast<double>(wm + wc));
      rec.combine_ns = engine_ns - rec.mma_ns;
    } else {
      rec.mma_ns = engine_ns;
    }
  }
  rec.flops = 2ULL * key.m * key.n * key.k;
  const std::size_t d_elems = key.m * key.n;
  rec.bytes_moved =
      (key.m * key.k + key.k * key.n + d_elems + (with_c ? d_elems : 0)) *
          sizeof(float) +
      workspace_bytes;
  rec.m = static_cast<std::uint32_t>(key.m);
  rec.n = static_cast<std::uint32_t>(key.n);
  rec.k = static_cast<std::uint32_t>(key.k);
  rec.tid = obs::current_thread_id();
  rec.scheme = key.scheme;
  rec.backend = static_cast<std::uint8_t>(key.backend);
  rec.engine = static_cast<std::uint8_t>(key.engine);
  rec.isa = static_cast<std::uint8_t>(simd::active_isa());
  rec.lookup = lookup;
  obs::record_call(rec);
}
#endif  // EGEMM_OBSERVABILITY_ENABLED

}  // namespace

std::uint64_t debug_workspace_allocations() noexcept {
#ifndef NDEBUG
  return g_workspace_allocations.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

std::size_t small_gemm_inline_threshold() noexcept {
  const std::size_t forced = g_inline_threshold.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  if (const std::optional<std::size_t> file =
          model::TuningCache::global().inline_threshold()) {
    return *file;
  }
  return kDefaultInlineThreshold;
}

void set_small_gemm_inline_threshold(std::size_t work) noexcept {
  g_inline_threshold.store(work, std::memory_order_relaxed);
}

std::size_t PlanKeyHash::operator()(const PlanKey& key) const noexcept {
  auto mix = [](std::size_t h, std::uint64_t v) {
    return h ^ (static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
  };
  std::size_t h = 0;
  h = mix(h, key.m);
  h = mix(h, key.n);
  h = mix(h, key.k);
  h = mix(h, static_cast<std::uint64_t>(key.backend));
  h = mix(h, key.direct ? 1u : 0u);
  h = mix(h, static_cast<std::uint64_t>(key.split));
  h = mix(h, static_cast<std::uint64_t>(key.engine));
  h = mix(h, static_cast<std::uint64_t>(key.order));
  h = mix(h, static_cast<std::uint64_t>(key.planes));
  h = mix(h, static_cast<std::uint64_t>(key.combo_count));
  h = mix(h, key.combo_seq);
  h = mix(h, static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(key.scheme)));
  h = mix(h, static_cast<std::uint64_t>(key.bm));
  h = mix(h, static_cast<std::uint64_t>(key.bn));
  h = mix(h, static_cast<std::uint64_t>(key.bk));
  h = mix(h, static_cast<std::uint64_t>(key.wm));
  h = mix(h, static_cast<std::uint64_t>(key.wn));
  h = mix(h, static_cast<std::uint64_t>(key.wk));
  return h;
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

void Workspace::ensure(std::size_t m, std::size_t n, std::size_t k,
                       int planes) {
  const auto count = static_cast<std::size_t>(planes);
  if (ap_.size() < count) {
    count_workspace_allocation();
    ap_.resize(count);
  }
  if (bp_.size() < count) {
    count_workspace_allocation();
    bp_.resize(count);
  }
  count_ = count;
  for (std::size_t p = 0; p < count; ++p) {
    grow_matrix(ap_[p], m, k);
    grow_matrix(bp_[p], k, n);
  }
}

void Workspace::pack() {
  // Deliberately not short-circuited: both packs must refresh.
  const bool a_grew = apack_.assign(a_planes());
  const bool b_grew = bpack_.assign(b_planes());
  if (a_grew || b_grew) count_workspace_allocation();
}

// ---------------------------------------------------------------------------
// GemmPlan
// ---------------------------------------------------------------------------

GemmPlan::GemmPlan(const PlanKey& key, std::size_t grain)
    : key_(key), grain_(grain) {
  tile_ = TileConfig{key.bm, key.bn, key.bk, key.wm, key.wn, key.wk};
  combos_.reserve(key.combo_count);
  for (std::uint8_t i = 0; i < key.combo_count; ++i) {
    const std::uint64_t enc = (key.combo_seq >> (4 * i)) & 0xF;
    combos_.push_back(PlaneCombo{static_cast<int>(enc >> 2),
                                 static_cast<int>(enc & 3)});
  }
  if (!key.direct) {
    const std::size_t planes = key.planes;
    const std::size_t plane_elems = key.m * key.k + key.k * key.n;
    workspace_bytes_ = planes * plane_elems * sizeof(float);
    if (key.engine == ExecEngine::kPacked) {
      const std::size_t row_blocks = (key.m + kTile - 1) / kTile;
      const std::size_t col_blocks = (key.n + kTile - 1) / kTile;
      workspace_bytes_ += planes * (row_blocks + col_blocks) * kTile * key.k *
                          sizeof(float);
    }
  }
}

void GemmPlan::execute(GemmContext& ctx, const Matrix& a, const Matrix& b,
                       const Matrix* c, Matrix& d) const {
  EGEMM_EXPECTS(a.rows() == key_.m && a.cols() == key_.k);
  EGEMM_EXPECTS(b.rows() == key_.k && b.cols() == key_.n);
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == key_.m && c->cols() == key_.n));
  EGEMM_EXPECTS(&a != &d && &b != &d && c != &d);

#if EGEMM_OBSERVABILITY_ENABLED
  // Consume the plan_for breadcrumb whether or not recording is on, so a
  // stale hit/miss never attaches to a later call through a held plan.
  obs::PlanLookup lookup = obs::PlanLookup::kUnknown;
  if (tl_last_plan == this) {
    lookup = tl_last_lookup;
    tl_last_plan = nullptr;
    tl_last_lookup = obs::PlanLookup::kUnknown;
  }
  const bool telemetry = obs::call_records_enabled();
  const std::uint64_t t_start = telemetry ? obs::monotonic_ns() : 0;
#endif

  if (key_.direct) {
    switch (key_.backend) {
      case Backend::kCublasFp32:
        sgemm_fp32_into(a, b, c, d);
        break;
      case Backend::kSdkFp32:
        EGEMM_EXPECTS(c == nullptr);
        sdk_gemm_fp32_into(a, b, d);
        break;
      case Backend::kDekker:
        gemm_dekker_into(a, b, c, d);
        break;
      default:
        EGEMM_EXPECTS(!"unreachable direct backend");
        break;
    }
#if EGEMM_OBSERVABILITY_ENABLED
    if (telemetry) {
      record_execute_call(key_, workspace_bytes_, c != nullptr, t_start,
                          /*split_ns=*/0, /*pack_ns=*/0, /*engine_ns=*/0,
                          /*stages=*/nullptr, lookup);
    }
#endif
    return;
  }

  EGEMM_TRACE_SCOPE("egemm_multiply");
  EGEMM_COUNTER_ADD("egemm.calls", 1);
  count_scheme_execute(key_.scheme);

  WorkspaceLease lease = ctx.lease_workspace();
  Workspace& ws = *lease;
  ws.ensure(key_.m, key_.n, key_.k, key_.planes);

#if EGEMM_OBSERVABILITY_ENABLED
  std::uint64_t split_ns = 0;
  std::uint64_t pack_ns = 0;
  StageAccum stage_accum;
  StageAccum* const stages = telemetry ? &stage_accum : nullptr;
#else
  StageAccum* const stages = nullptr;
#endif

  // The O(N^2) data-split pass (runs on CUDA cores in the real kernel).
  // Plane 0 = lo; for three-way splits: lo, mid, hi.
#ifndef NDEBUG
  const std::uint64_t split_before = core::debug_split_elements();
#endif
  {
    EGEMM_TRACE_SCOPE("split");
#if EGEMM_OBSERVABILITY_ENABLED
    const std::uint64_t t0 = telemetry ? obs::monotonic_ns() : 0;
#endif
    split_into_workspace(ws, a, b, key_);
#if EGEMM_OBSERVABILITY_ENABLED
    if (telemetry) split_ns = obs::monotonic_ns() - t0;
#endif
  }
#ifndef NDEBUG
  // Each input element must be split exactly once per GEMM call -- the
  // plane cache is the point of the packed engine, so re-splitting
  // anywhere downstream is a bug.
  EGEMM_ENSURES(core::debug_split_elements() - split_before ==
                a.data().size() + b.data().size());
#endif

  d.resize(key_.m, key_.n);
  if (c != nullptr) {
    std::copy(c->data().begin(), c->data().end(), d.data().begin());
  } else {
    d.fill(0.0f);
  }

  // Sub-threshold shapes run the engine inline: the pool round-trip costs
  // more than the work it would distribute (satellite knob; DESIGN.md §18).
  const bool serial =
      key_.m * key_.n * key_.k < small_gemm_inline_threshold();

#if EGEMM_OBSERVABILITY_ENABLED
  std::uint64_t t_engine = 0;
#endif
  if (key_.engine == ExecEngine::kPacked) {
    {
      EGEMM_TRACE_SCOPE("pack");
#if EGEMM_OBSERVABILITY_ENABLED
      const std::uint64_t t0 = telemetry ? obs::monotonic_ns() : 0;
#endif
      ws.pack();
#if EGEMM_OBSERVABILITY_ENABLED
      if (telemetry) pack_ns = obs::monotonic_ns() - t0;
#endif
    }
#if EGEMM_OBSERVABILITY_ENABLED
    if (telemetry) t_engine = obs::monotonic_ns();
#endif
    packed_engine(d, ws.packed_a(), ws.packed_b(), key_.k, combos_,
                  key_.order, grain_, serial, stages);
  } else {
#if EGEMM_OBSERVABILITY_ENABLED
    if (telemetry) t_engine = obs::monotonic_ns();
#endif
    reference_engine(d, ws.a_planes(), ws.b_planes(), combos_, key_.order,
                     serial, stages);
  }
#if EGEMM_OBSERVABILITY_ENABLED
  if (telemetry) {
    record_execute_call(key_, workspace_bytes_, c != nullptr, t_start,
                        split_ns, pack_ns, obs::monotonic_ns() - t_engine,
                        stages, lookup);
  }
#endif
}

KernelTiming GemmPlan::timing(const tcsim::GpuSpec& spec) const {
  EGEMM_EXPECTS(key_.m > 0 && key_.n > 0 && key_.k > 0);
  const auto m = static_cast<std::uint64_t>(key_.m);
  const auto n = static_cast<std::uint64_t>(key_.n);
  const auto k = static_cast<std::uint64_t>(key_.k);
  switch (key_.backend) {
    case Backend::kEgemmTC: {
      if (key_.planes == 3) return egemm_3split_timing(m, n, k, spec);
      EgemmOptions opts;
      opts.split = key_.split;
      opts.tile = tile_;
      return egemm_timing(m, n, k, spec, opts);
    }
    case Backend::kDekker: {
      EgemmOptions opts;
      opts.emulation_instructions = 16;
      opts.tile = tile_;
      return egemm_timing(m, n, k, spec, opts);
    }
    default:
      return time_gemm(key_.backend, m, n, k, spec);
  }
}

// ---------------------------------------------------------------------------
// GemmContext
// ---------------------------------------------------------------------------

GemmContext::GemmContext(std::size_t plan_capacity)
    : capacity_(plan_capacity) {
  EGEMM_GAUGE_SET("gemm.plan.cache.capacity",
                  static_cast<std::int64_t>(capacity_));
}

std::shared_ptr<const GemmPlan> GemmContext::plan(Backend backend,
                                                  std::size_t m, std::size_t n,
                                                  std::size_t k,
                                                  const EgemmOptions& opts) {
  // Alg. 1's term order: low-order products first. The other recipes
  // mirror the one-shot baselines exactly (gemm/baselines.cpp).
  static constexpr PlaneCombo kAlg1[] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  static constexpr PlaneCombo kHalfOnly[] = {{1, 1}};
  static constexpr PlaneCombo kMarkidis[] = {{0, 1}, {1, 0}, {1, 1}};
  // All 9 three-way-split products, smallest-magnitude terms first so they
  // are absorbed before the dominant hi x hi partial product.
  static constexpr PlaneCombo k3Split[] = {{0, 0}, {0, 1}, {1, 0},
                                           {0, 2}, {1, 1}, {2, 0},
                                           {1, 2}, {2, 1}, {2, 2}};

  PlanKey key;
  key.m = m;
  key.n = n;
  key.k = k;
  key.backend = backend;
  key.engine = opts.engine;
  const bool direct = backend == Backend::kCublasFp32 ||
                      backend == Backend::kSdkFp32 ||
                      backend == Backend::kDekker;
  // Direct binary32 backends skip the tuning consult -- their tile only
  // feeds the timing model, so a tune.{hit,miss} there would be noise.
  const ResolvedSchedule sched =
      direct ? ResolvedSchedule{analytic_tile(opts.tile), 0}
             : resolve_schedule(opts.tile, m, n, k);
  set_key_tile(key, sched.tile);

  switch (backend) {
    case Backend::kCublasFp32:
    case Backend::kSdkFp32:
    case Backend::kDekker:
      key.direct = true;
      key.engine = ExecEngine::kPacked;  // canonical; engines do not apply
      return plan_for(key, sched.grain);
    case Backend::kEgemmTC:
      if (opts.emulation_instructions == 9) {
        // Three-way split: opts.split selects the rung -- round-split is
        // the FP32-recovery scheme (exact decomposition, the default),
        // truncate-split the Ozaki-style one-signed word slices.
        set_key_recipe(key, opts.split, k3Split, ComboOrder::kFusedPerTile,
                       3);
      } else {
        EGEMM_EXPECTS(opts.emulation_instructions == 4);
        set_key_recipe(key, opts.split, kAlg1, ComboOrder::kFusedPerTile, 2);
      }
      break;
    case Backend::kCublasTcHalf:
      set_key_recipe(key, core::SplitMethod::kRoundSplit, kHalfOnly,
                     ComboOrder::kFusedPerTile, 2);
      break;
    case Backend::kCublasTcEmulation:
      set_key_recipe(key, core::SplitMethod::kRoundSplit, kAlg1,
                     ComboOrder::kSeparatePasses, 2);
      break;
    case Backend::kMarkidis:
      set_key_recipe(key, core::SplitMethod::kTruncateSplit, kMarkidis,
                     ComboOrder::kFusedPerTile, 2);
      break;
  }
  return plan_for(key, sched.grain);
}

std::shared_ptr<const GemmPlan> GemmContext::plan_emulated(
    std::size_t m, std::size_t n, std::size_t k, core::SplitMethod split,
    std::span<const PlaneCombo> combos, ComboOrder order, ExecEngine engine,
    int planes, const TileConfig& tile) {
  EGEMM_EXPECTS(planes == 2 || planes == 3);
  PlanKey key;
  key.m = m;
  key.n = n;
  key.k = k;
  key.backend = Backend::kEgemmTC;
  key.engine = engine;
  const ResolvedSchedule sched = resolve_schedule(tile, m, n, k);
  set_key_tile(key, sched.tile);
  set_key_recipe(key, split, combos, order, planes);
  return plan_for(key, sched.grain);
}

std::shared_ptr<const GemmPlan> GemmContext::plan_for(const PlanKey& key,
                                                      std::size_t grain) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      EGEMM_COUNTER_ADD("gemm.plan.hit", 1);
#if EGEMM_OBSERVABILITY_ENABLED
      tl_last_plan = lru_.front().plan.get();
      tl_last_lookup = obs::PlanLookup::kHit;
#endif
      return lru_.front().plan;
    }
  }

  std::shared_ptr<const GemmPlan> created;
  {
    EGEMM_TRACE_SCOPE("plan");
#if EGEMM_OBSERVABILITY_ENABLED
    const std::uint64_t t0 = obs::monotonic_ns();
#endif
    created = std::shared_ptr<const GemmPlan>(new GemmPlan(key, grain));
#if EGEMM_OBSERVABILITY_ENABLED
    EGEMM_LATENCY_RECORD("gemm.plan.build.latency", obs::monotonic_ns() - t0);
#endif
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  EGEMM_COUNTER_ADD("gemm.plan.miss", 1);
  // A racing thread may have built the same plan meanwhile; either copy is
  // interchangeable (plans are immutable), so keep the cached one. The
  // caller still paid a plan build, so the breadcrumb says miss either way.
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
#if EGEMM_OBSERVABILITY_ENABLED
    tl_last_plan = lru_.front().plan.get();
    tl_last_lookup = obs::PlanLookup::kMiss;
#endif
    return lru_.front().plan;
  }
  lru_.push_front(CacheEntry{key, created});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    EGEMM_COUNTER_ADD("gemm.plan.cache.evictions", 1);
  }
  EGEMM_GAUGE_SET("gemm.plan.cache.size",
                  static_cast<std::int64_t>(lru_.size()));
#if EGEMM_OBSERVABILITY_ENABLED
  tl_last_plan = created.get();
  tl_last_lookup = obs::PlanLookup::kMiss;
#endif
  return created;
}

Matrix GemmContext::run(Backend backend, const Matrix& a, const Matrix& b,
                        const Matrix* c, const EgemmOptions& opts) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  const std::shared_ptr<const GemmPlan> p =
      plan(backend, a.rows(), b.cols(), a.cols(), opts);
  Matrix d;
  p->execute(*this, a, b, c, d);
  return d;
}

std::shared_ptr<const GemmPlan> GemmContext::plan_scheme(
    core::SchemeId scheme, std::size_t m, std::size_t n, std::size_t k,
    ExecEngine engine, const TileConfig& tile) {
  EgemmOptions opts;
  opts.engine = engine;
  opts.tile = tile;
  switch (scheme) {
    case core::SchemeId::kHalf:
      return plan(Backend::kCublasTcHalf, m, n, k, opts);
    case core::SchemeId::kMarkidis:
      return plan(Backend::kMarkidis, m, n, k, opts);
    case core::SchemeId::kTruncate2:
      opts.split = core::SplitMethod::kTruncateSplit;
      return plan(Backend::kEgemmTC, m, n, k, opts);
    case core::SchemeId::kRound2:
      return plan(Backend::kEgemmTC, m, n, k, opts);
    case core::SchemeId::kSlice3:
      opts.split = core::SplitMethod::kTruncateSplit;
      opts.emulation_instructions = 9;
      return plan(Backend::kEgemmTC, m, n, k, opts);
    case core::SchemeId::kRecovery3:
      opts.emulation_instructions = 9;
      return plan(Backend::kEgemmTC, m, n, k, opts);
    case core::SchemeId::kCount:
      break;
  }
  EGEMM_EXPECTS(!"invalid SchemeId");
  return nullptr;
}

Matrix GemmContext::run_scheme(core::SchemeId scheme, const Matrix& a,
                               const Matrix& b, const Matrix* c,
                               ExecEngine engine) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  const std::shared_ptr<const GemmPlan> p =
      plan_scheme(scheme, a.rows(), b.cols(), a.cols(), engine);
  Matrix d;
  p->execute(*this, a, b, c, d);
  return d;
}

GemmContext::ContractPlan GemmContext::plan_contract(
    std::size_t m, std::size_t n, std::size_t k,
    const core::AccuracyContract& contract, ExecEngine engine) {
  ContractPlan result;
  result.resolution = core::resolve_contract(contract, k);
  if (result.resolution.feasible) {
    result.plan = plan_scheme(result.resolution.scheme, m, n, k, engine);
  }
  return result;
}

void GemmContext::execute_grouped(std::span<const GroupedGemm> items) {
  if (items.empty()) return;
  for (const GroupedGemm& item : items) {
    EGEMM_EXPECTS(item.plan != nullptr && item.a != nullptr &&
                  item.b != nullptr && item.d != nullptr);
    const PlanKey& key = item.plan->key_;
    EGEMM_EXPECTS(item.a->rows() == key.m && item.a->cols() == key.k);
    EGEMM_EXPECTS(item.b->rows() == key.k && item.b->cols() == key.n);
    EGEMM_EXPECTS(item.c == nullptr ||
                  (item.c->rows() == key.m && item.c->cols() == key.n));
    EGEMM_EXPECTS(item.a != item.d && item.b != item.d && item.c != item.d);
  }
#ifndef NDEBUG
  // Outputs must not alias across items: the flattened stream writes every
  // item's tiles concurrently.
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      EGEMM_EXPECTS(items[i].d != items[j].d);
    }
  }
#endif

  EGEMM_COUNTER_ADD("gemm.batch.calls", 1);
  EGEMM_COUNTER_ADD("gemm.batch.items",
                    static_cast<std::int64_t>(items.size()));

  // Direct binary32 items have no plane pipeline to flatten; run them as
  // plain executes and group only the emulated items.
  std::vector<std::size_t> emulated;
  emulated.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].plan->key_.direct) {
      items[i].plan->execute(*this, *items[i].a, *items[i].b, items[i].c,
                             *items[i].d);
    } else {
      emulated.push_back(i);
    }
  }
  if (emulated.empty()) return;

  EGEMM_TRACE_SCOPE("egemm_grouped");
#if EGEMM_OBSERVABILITY_ENABLED
  const bool telemetry = obs::call_records_enabled();
#else
  constexpr bool telemetry = false;
#endif
  const std::uint64_t t_start = telemetry ? obs::monotonic_ns() : 0;
  const std::uint32_t batch_id =
      g_batch_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  static_cast<void>(batch_id);

  // The flattened (item x block) stream layout. A "block" is one packed
  // output tile, or one 16-row reference band; `first[j]` is item j's
  // offset into the stream, so workers binary-search their chunk's start.
  // (Each run's workspace is attached below, once the execution mode --
  // pipelined or serial-fused -- has decided how many leases exist.)
  struct ItemRun {
    const GemmPlan* plan = nullptr;
    Matrix* d = nullptr;
    Workspace* ws = nullptr;
    std::size_t col_blocks = 1;  ///< packed engine only
    int k_slab = 0;
    bool fused = false;
    bool packed = false;
  };
  std::vector<ItemRun> runs(emulated.size());
  std::vector<std::size_t> first(emulated.size() + 1, 0);
  std::uint64_t total_flops = 0;
  for (std::size_t j = 0; j < emulated.size(); ++j) {
    const GroupedGemm& item = items[emulated[j]];
    const PlanKey& key = item.plan->key_;
    ItemRun& run = runs[j];
    run.plan = item.plan.get();
    run.d = item.d;
    run.packed = key.engine == ExecEngine::kPacked;
    run.fused = key.order == ComboOrder::kFusedPerTile;
    run.k_slab = run.fused ? static_cast<int>(kTile) : kSeparateSlab;
    const std::size_t row_blocks = (key.m + kTile - 1) / kTile;
    std::size_t blocks = row_blocks;
    if (run.packed) {
      run.col_blocks = (key.n + kTile - 1) / kTile;
      blocks = key.n == 0 ? 0 : row_blocks * run.col_blocks;
    } else if (key.n == 0) {
      blocks = 0;
    }
    first[j + 1] = first[j] + blocks;
    total_flops += 2ULL * key.m * key.n * key.k;
  }
  const std::size_t total_blocks = first.back();

  std::vector<std::uint64_t> split_ns(emulated.size(), 0);
  std::vector<std::uint64_t> pack_ns(emulated.size(), 0);
#ifndef NDEBUG
  const std::uint64_t split_before = core::debug_split_elements();
  std::uint64_t expected_split = 0;
  for (const std::size_t i : emulated) {
    expected_split += items[i].a->data().size() + items[i].b->data().size();
  }
#endif
  // Per-item prep: workspace split, output init, pack.
  const auto prep_one = [&](std::size_t j, Workspace& ws) {
    const GroupedGemm& item = items[emulated[j]];
    const PlanKey& key = item.plan->key_;
    ws.ensure(key.m, key.n, key.k, key.planes);
    {
      EGEMM_TRACE_SCOPE("split");
      const std::uint64_t t0 = telemetry ? obs::monotonic_ns() : 0;
      split_into_workspace(ws, *item.a, *item.b, key);
      if (telemetry) split_ns[j] = obs::monotonic_ns() - t0;
    }
    item.d->resize(key.m, key.n);
    if (item.c != nullptr) {
      std::copy(item.c->data().begin(), item.c->data().end(),
                item.d->data().begin());
    } else {
      item.d->fill(0.0f);
    }
    if (key.engine == ExecEngine::kPacked) {
      EGEMM_TRACE_SCOPE("pack");
      const std::uint64_t t0 = telemetry ? obs::monotonic_ns() : 0;
      ws.pack();
      if (telemetry) pack_ns[j] = obs::monotonic_ns() - t0;
    }
    EGEMM_COUNTER_ADD("egemm.calls", 1);
    count_scheme_execute(key.scheme);
  };

#if EGEMM_OBSERVABILITY_ENABLED
  StageAccum stage_accum;
  StageAccum* const stages = telemetry ? &stage_accum : nullptr;
#else
  StageAccum* const stages = nullptr;
#endif
  const auto run_blocks = [&](std::size_t g0, std::size_t g1) {
    EGEMM_TRACE_SCOPE("mma");
    const std::uint64_t chunk_start =
        stages != nullptr ? obs::monotonic_ns() : 0;
    std::uint64_t combine_local = 0;
    auto idx = static_cast<std::size_t>(
        std::upper_bound(first.begin(), first.end(), g0) - first.begin() - 1);
    for (std::size_t g = g0; g < g1; ++idx) {
      const ItemRun& run = runs[idx];
      const std::size_t end = std::min(g1, first[idx + 1]);
      const PlanKey& key = run.plan->key_;
      if (run.packed) {
        EGEMM_COUNTER_ADD("egemm.tiles", end - g);
        for (; g < end; ++g) {
          const std::size_t local = g - first[idx];
          combine_local += packed_tile(
              *run.d, run.ws->packed_a(), run.ws->packed_b(), key.k,
              run.plan->combos_, run.k_slab, run.fused,
              local / run.col_blocks, local % run.col_blocks,
              stages != nullptr);
        }
      } else {
        for (; g < end; ++g) {
          combine_local += reference_row_block(
              *run.d, run.ws->a_planes(), run.ws->b_planes(),
              run.plan->combos_, key.order, g - first[idx],
              stages != nullptr);
        }
      }
    }
    if (stages != nullptr) {
      const std::uint64_t wall = obs::monotonic_ns() - chunk_start;
      stages->combine.fetch_add(combine_local, std::memory_order_relaxed);
      stages->mma.fetch_add(wall > combine_local ? wall - combine_local : 0,
                            std::memory_order_relaxed);
    }
  };

  // Serial fusion: when the stream runs on one thread anyway -- a
  // single-worker pool, or a sub-threshold batch (same inline knob as
  // single executes, applied to the aggregate work) -- prep and run each
  // item back-to-back on ONE recycled workspace. The two-stage pipeline
  // leases a workspace per item, trading cache locality for parallelism;
  // with no parallelism to buy, fusing keeps the hot split/pack planes
  // resident across items exactly as a loop of single executes would,
  // while still amortizing the per-call costs the batch API exists to
  // amortize.
  const bool fuse_serial =
      util::global_pool().size() <= 1 ||
      total_flops / 2 < small_gemm_inline_threshold();
  std::uint64_t t_engine = 0;
  std::vector<WorkspaceLease> leases;
  if (fuse_serial) {
    WorkspaceLease lease = lease_workspace();
    for (std::size_t j = 0; j < emulated.size(); ++j) {
      runs[j].ws = &*lease;
      prep_one(j, *lease);
      run_blocks(first[j], first[j + 1]);
    }
  } else {
    // Stage A: per-item prep, parallel over items. Leases are taken
    // serially so the pool stays contention-free.
    leases.reserve(emulated.size());
    for (std::size_t j = 0; j < emulated.size(); ++j) {
      leases.push_back(lease_workspace());
      runs[j].ws = &*leases[j];
    }
    util::global_pool().parallel_for(
        emulated.size(), [&](std::size_t j0, std::size_t j1) {
          for (std::size_t j = j0; j < j1; ++j) prep_one(j, *runs[j].ws);
        });
    // Stage B: the whole stream through one pool dispatch with a
    // batch-aware grain (~kMinChunkFlops of work per chunk).
    t_engine = telemetry ? obs::monotonic_ns() : 0;
    const std::uint64_t avg_block_flops =
        total_blocks == 0 ? 1
                          : std::max<std::uint64_t>(
                                1, total_flops / total_blocks);
    const auto grain = static_cast<std::size_t>(
        std::max<std::uint64_t>(1, kMinChunkFlops / avg_block_flops));
    util::global_pool().parallel_for(total_blocks, grain, run_blocks);
  }
#ifndef NDEBUG
  // Every input element of the batch is split exactly once (aggregate
  // form of the per-call guard in GemmPlan::execute).
  EGEMM_ENSURES(core::debug_split_elements() - split_before ==
                expected_split);
#endif

#if EGEMM_OBSERVABILITY_ENABLED
  if (!telemetry) return;
  // One CallRecord per shape class (= per distinct plan), all tagged with
  // this batch's id. The batch wall and the engine wall are apportioned by
  // each class's FLOP share; split/pack are exact per-class sums.
  const std::uint64_t now = obs::monotonic_ns();
  const std::uint64_t batch_wall = now > t_start ? now - t_start : 0;
  EGEMM_LATENCY_RECORD("egemm.execute.latency", batch_wall);
  const std::uint64_t wm = stage_accum.mma.load(std::memory_order_relaxed);
  const std::uint64_t wc =
      stage_accum.combine.load(std::memory_order_relaxed);
  // Fused mode interleaves prep and engine work, so the engine wall is the
  // sum of the per-chunk walls (serial chunks never overlap); pipelined
  // mode reads it off the stage B dispatch window.
  const std::uint64_t engine_wall =
      fuse_serial ? wm + wc : (now > t_engine ? now - t_engine : 0);
  std::vector<const GemmPlan*> seen;
  seen.reserve(runs.size());
  for (const ItemRun& head : runs) {
    if (std::find(seen.begin(), seen.end(), head.plan) != seen.end()) {
      continue;
    }
    seen.push_back(head.plan);
    const PlanKey& key = head.plan->key_;
    obs::CallRecord rec;
    rec.start_ns = t_start;
    std::uint64_t class_items = 0;
    for (std::size_t j = 0; j < runs.size(); ++j) {
      if (runs[j].plan != head.plan) continue;
      ++class_items;
      rec.split_ns += split_ns[j];
      rec.pack_ns += pack_ns[j];
      const GroupedGemm& item = items[emulated[j]];
      const std::size_t d_elems = key.m * key.n;
      rec.bytes_moved += (key.m * key.k + key.k * key.n + d_elems +
                          (item.c != nullptr ? d_elems : 0)) *
                             sizeof(float) +
                         head.plan->workspace_bytes_;
    }
    rec.flops = class_items * 2ULL * key.m * key.n * key.k;
    const double share =
        total_flops == 0
            ? 1.0 / static_cast<double>(emulated.size())
            : static_cast<double>(rec.flops) /
                  static_cast<double>(total_flops);
    rec.total_ns = static_cast<std::uint64_t>(
        static_cast<double>(batch_wall) * share);
    const auto engine_share = static_cast<std::uint64_t>(
        static_cast<double>(engine_wall) * share);
    if (wm + wc > 0) {
      rec.mma_ns = static_cast<std::uint64_t>(
          static_cast<double>(engine_share) * static_cast<double>(wm) /
          static_cast<double>(wm + wc));
      rec.combine_ns = engine_share - rec.mma_ns;
    } else {
      rec.mma_ns = engine_share;
    }
    rec.m = static_cast<std::uint32_t>(key.m);
    rec.n = static_cast<std::uint32_t>(key.n);
    rec.k = static_cast<std::uint32_t>(key.k);
    rec.tid = obs::current_thread_id();
    rec.batch_id = batch_id;
    rec.batch = static_cast<std::uint32_t>(class_items);
    rec.scheme = key.scheme;
    rec.backend = static_cast<std::uint8_t>(key.backend);
    rec.engine = static_cast<std::uint8_t>(key.engine);
    rec.isa = static_cast<std::uint8_t>(simd::active_isa());
    rec.lookup = obs::PlanLookup::kUnknown;
    obs::record_call(rec);
  }
#endif  // EGEMM_OBSERVABILITY_ENABLED
}

WorkspaceLease GemmContext::lease_workspace() {
  std::unique_ptr<Workspace> ws;
  {
    const std::lock_guard<std::mutex> lock(ws_mutex_);
    if (!free_workspaces_.empty()) {
      ws = std::move(free_workspaces_.back());
      free_workspaces_.pop_back();
    }
  }
  if (!ws) ws = std::make_unique<Workspace>();
  return WorkspaceLease(this, std::move(ws));
}

void GemmContext::recycle(std::unique_ptr<Workspace> ws) {
  const std::lock_guard<std::mutex> lock(ws_mutex_);
  free_workspaces_.push_back(std::move(ws));
}

std::uint64_t GemmContext::plan_hits() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t GemmContext::plan_misses() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t GemmContext::plan_evictions() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t GemmContext::cached_plans() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::size_t GemmContext::pooled_workspaces() const noexcept {
  const std::lock_guard<std::mutex> lock(ws_mutex_);
  return free_workspaces_.size();
}

WorkspaceLease::WorkspaceLease(WorkspaceLease&& other) noexcept
    : ctx_(std::exchange(other.ctx_, nullptr)), ws_(std::move(other.ws_)) {}

WorkspaceLease::~WorkspaceLease() {
  if (ctx_ != nullptr && ws_ != nullptr) ctx_->recycle(std::move(ws_));
}

GemmContext& default_context() {
  static GemmContext ctx;
  return ctx;
}

}  // namespace egemm::gemm
