#pragma once
// Row-major owning matrices and reference GEMMs.
//
// Two element types are used throughout the repository: binary32 for the
// kernels under test and binary64 for the CPU ground-truth reference (the
// high-precision side of the emulation-design workflow, Fig. 2a).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace egemm::gemm {

template <typename T>
class BasicMatrix {
 public:
  BasicMatrix() = default;
  BasicMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t ld() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  T& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  const T& at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::span<T> data() noexcept { return data_; }
  std::span<const T> data() const noexcept { return data_; }
  T* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes in place, reusing the existing storage; allocates only when
  /// the new extent exceeds capacity(). Element values are unspecified
  /// afterwards. Plan workspaces (gemm/plan.hpp) rely on this staying
  /// allocation-free for repeated same-shape calls.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Elements the current storage can hold without reallocating.
  std::size_t capacity() const noexcept { return data_.capacity(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrix = BasicMatrix<float>;
using MatrixD = BasicMatrix<double>;

/// Uniform random matrix in [lo, hi), reproducible from the seed. The
/// paper's precision experiments sample from [-1, +1] (§7.2).
Matrix random_matrix(std::size_t rows, std::size_t cols, float lo, float hi,
                     std::uint64_t seed);

/// Widens a binary32 matrix to binary64 (exact).
MatrixD widen(const Matrix& m);

/// Out-of-place transpose.
Matrix transpose(const Matrix& m);

/// transpose() into caller-owned storage (`out` is resized in place):
/// the iteration-loop form that avoids a fresh allocation per call once
/// `out` has reached its steady-state capacity. `out` must not alias `m`.
void transpose_into(const Matrix& m, Matrix& out);

/// Ground-truth D = A x B + C in binary64 with compensated accumulation
/// (double-double), giving a reference accurate far beyond binary32.
MatrixD gemm_reference(const Matrix& a, const Matrix& b, const Matrix* c);

/// Max |candidate - reference| over all elements (Eq. 10 generalized to a
/// binary64 reference).
double max_abs_error(const MatrixD& reference, const Matrix& candidate);

/// Max |a - b| between two binary32 matrices (the paper's Eq. 10 uses the
/// single-precision result as reference).
double max_abs_error(const Matrix& reference, const Matrix& candidate);

/// Max |x| over all elements (0 for an empty matrix): the scale context
/// the accuracy-contract resolution derives a-priori bounds from.
double max_abs(const Matrix& m) noexcept;

}  // namespace egemm::gemm
