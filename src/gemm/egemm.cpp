#include "gemm/egemm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>
#ifndef NDEBUG
#include <mutex>
#include <set>
#include <string>
#endif

#include "gemm/plan.hpp"
#include "sass/build.hpp"
#include "tcsim/instruction.hpp"
#include "tcsim/occupancy.hpp"
#include "tcsim/register_alloc.hpp"
#include "util/assert.hpp"

// The functional path lives in gemm/plan.cpp since the plan/context
// refactor (DESIGN.md §13): the entry points here are thin wrappers that
// plan against default_context() and execute into a fresh D, preserving
// the original one-shot signatures bit-for-bit. This file keeps the timed
// path (SASS stream -> SM pipeline -> occupancy composition).

namespace egemm::gemm {

namespace {

#ifndef NDEBUG
/// Debug self-check: the SASS kernel this configuration implies must lint
/// clean of hazard/liveness errors (EG1xx/EG2xx) before we trust its
/// timing. Checked once per distinct configuration; resource findings
/// (EG4xx) are not asserted on -- an infeasible tiling is a legitimate
/// query here, answered through timing.feasible.
void debug_lint_kernel(const TileConfig& tile, const EgemmOptions& opts) {
  const sass::WarpShape shape =
      sass::warp_shape(tile, opts.emulation_instructions);
  // Codegen needs at least one LDG per warp and a split-able LDS group.
  if (shape.ldg_per_iter < 1 || shape.lds_per_step < 2 ||
      shape.tile_positions < 1) {
    return;
  }
  static std::mutex mutex;
  static std::set<std::string> checked;
  const std::string key = tile.describe() +
                          (opts.latency_hiding ? "+sched" : "+naive") + ":" +
                          std::to_string(opts.emulation_instructions);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!checked.insert(key).second) return;
  }
  sass::BuildOptions bopts;
  bopts.tile = tile;
  bopts.k_iterations = 4;  // loop analysis does not depend on the trip count
  bopts.emulation_instructions = opts.emulation_instructions;
  bopts.latency_hiding = opts.latency_hiding;
  const sass::BuiltKernel built = sass::build_egemm_kernel(bopts);
  EGEMM_ENSURES(!sass::has_blocking_errors(built.diagnostics));
}
#endif

}  // namespace

Matrix emulated_gemm(const Matrix& a, const Matrix& b, const Matrix* c,
                     core::SplitMethod split, std::span<const Combo> combos,
                     ComboOrder order, ExecEngine engine) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == a.rows() && c->cols() == b.cols()));
  EGEMM_EXPECTS(!combos.empty());

  std::vector<PlaneCombo> plane_combos;
  plane_combos.reserve(combos.size());
  for (const Combo& combo : combos) {
    plane_combos.push_back(PlaneCombo{combo.a_hi ? 1 : 0, combo.b_hi ? 1 : 0});
  }
  GemmContext& ctx = default_context();
  const auto plan = ctx.plan_emulated(a.rows(), b.cols(), a.cols(), split,
                                      plane_combos, order, engine);
  Matrix d;
  plan->execute(ctx, a, b, c, d);
  return d;
}

Matrix egemm_multiply_3split(const Matrix& a, const Matrix& b, const Matrix* c,
                             ExecEngine engine) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == a.rows() && c->cols() == b.cols()));

  GemmContext& ctx = default_context();
  EgemmOptions opts;
  opts.emulation_instructions = 9;
  opts.engine = engine;
  const auto plan =
      ctx.plan(Backend::kEgemmTC, a.rows(), b.cols(), a.cols(), opts);
  Matrix d;
  plan->execute(ctx, a, b, c, d);
  return d;
}

KernelTiming egemm_3split_timing(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t k, const tcsim::GpuSpec& spec) {
  EgemmOptions opts;
  opts.emulation_instructions = 9;
  KernelTiming timing = egemm_timing(m, n, k, spec, opts);
  // Three half planes instead of two: the split pass writes 1.5x the
  // bytes (the main loop's global traffic is handled by the stream shape).
  timing.seconds += timing.split_pass_seconds * 0.5;
  timing.split_pass_seconds *= 1.5;
  timing.tflops = gemm_tflops(m, n, k, timing.seconds);
  return timing;
}

Matrix egemm_multiply(const Matrix& a, const Matrix& b, const Matrix* c,
                      const EgemmOptions& opts) {
  EGEMM_EXPECTS(opts.emulation_instructions == 4);
  EGEMM_EXPECTS(a.cols() == b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == a.rows() && c->cols() == b.cols()));

  GemmContext& ctx = default_context();
  const auto plan =
      ctx.plan(Backend::kEgemmTC, a.rows(), b.cols(), a.cols(), opts);
  Matrix d;
  plan->execute(ctx, a, b, c, d);
  return d;
}

KernelTiming egemm_timing(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                          const tcsim::GpuSpec& spec,
                          const EgemmOptions& opts) {
  EGEMM_EXPECTS(m > 0 && n > 0 && k > 0);
  EGEMM_EXPECTS(opts.tile.valid());
  const TileConfig& tile = opts.tile;
#ifndef NDEBUG
  debug_lint_kernel(tile, opts);
#endif

  KernelTiming timing;

  // Register allocation (§5.2) decides the per-thread footprint; a plan
  // that spills slows the block down (spilled values bounce off local
  // memory), and one that does not fit at all is infeasible.
  const tcsim::KernelRegisterPlan plan = tcsim::egemm_register_plan(
      tile.bm, tile.bn, tile.bk, tile.wm, tile.wn, tile.wk,
      tile.threads_per_block());
  const tcsim::AllocationResult regs =
      tcsim::allocate_registers(plan, spec.max_registers_per_thread);
  timing.registers_per_thread = std::min(
      regs.per_thread, spec.max_registers_per_thread);
  timing.register_spill = regs.spills;

  const tcsim::BlockResources resources{
      tile.shared_memory_bytes(), timing.registers_per_thread,
      tile.threads_per_block()};
  const tcsim::Occupancy occ = tcsim::compute_occupancy(spec, resources);
  if (occ.blocks_per_sm == 0) {
    timing.feasible = false;
    return timing;
  }
  timing.blocks_per_sm = occ.blocks_per_sm;

  // Per-block instruction stream -> cycles.
  tcsim::EgemmStreamOptions sopts;
  sopts.latency_hiding = opts.latency_hiding;
  sopts.frag_caching = opts.frag_caching;
  sopts.emulation_instructions =
      static_cast<std::uint32_t>(opts.emulation_instructions);
  const tcsim::IterationShape shape = tcsim::egemm_iteration_shape(
      tile.bm, tile.bn, tile.bk, tile.wm, tile.wn, tile.wk, sopts);
  const auto iterations =
      static_cast<std::uint32_t>(tile.k_iterations(k));
  const auto epilogue_stg = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(tile.bm) * static_cast<std::uint64_t>(tile.bn) *
      4 / 512);
  const tcsim::SimProgram program =
      tcsim::build_egemm_block_program(shape, iterations, sopts, epilogue_stg);
  timing.block_stats = tcsim::simulate_block(program, spec);
  timing.block_cycles = timing.block_stats.cycles;
  if (occ.blocks_per_sm > 1) {
    // Co-resident blocks share the SM's issue ports: each extra block
    // stretches this block's busiest-port time by its utilization share
    // (idle latency slots still interleave for free).
    double max_util = 0.0;
    for (const tcsim::Port port :
         {tcsim::Port::kTensor, tcsim::Port::kMio, tcsim::Port::kGlobal,
          tcsim::Port::kCuda}) {
      max_util = std::max(max_util,
                          timing.block_stats.port_utilization(port));
    }
    timing.block_cycles *=
        1.0 + static_cast<double>(occ.blocks_per_sm - 1) * max_util;
  }
  if (regs.spills) {
    // Each spilled register adds local-memory round trips to the main
    // loop; 2% per register is the calibrated penalty.
    timing.block_cycles *=
        1.0 + 0.02 * static_cast<double>(regs.spilled_registers);
  }

  timing.blocks = tile.grid_blocks(m, n);
  timing.waves =
      tcsim::wave_count(timing.blocks, spec, occ.blocks_per_sm);
  const double main_cycles = tcsim::kernel_cycles(
      timing.blocks, timing.block_cycles, spec, occ.blocks_per_sm);
  const double main_seconds = spec.cycles_to_seconds(main_cycles);

  // The O(N^2) split pass on CUDA cores: reads A and B in binary32 and
  // writes the lo+hi binary16 planes -- 8(mk + kn) bytes at DRAM speed --
  // plus its own kernel launch.
  const double split_bytes =
      8.0 * (static_cast<double>(m) * static_cast<double>(k) +
             static_cast<double>(k) * static_cast<double>(n));
  timing.split_pass_seconds =
      split_bytes / (spec.dram_bandwidth_gbps * 1e9) +
      spec.kernel_launch_us * 1e-6;

  timing.seconds = main_seconds + timing.split_pass_seconds +
                   spec.kernel_launch_us * 1e-6;
  timing.tflops = gemm_tflops(m, n, k, timing.seconds);
  return timing;
}

double gemm_tflops(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                   double seconds) noexcept {
  if (seconds <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k) / seconds / 1e12;
}

}  // namespace egemm::gemm
