#include "gemm/egemm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#ifndef NDEBUG
#include <mutex>
#include <set>
#include <string>
#endif

#include "gemm/packing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sass/build.hpp"
#include "tcsim/instruction.hpp"
#include "tcsim/occupancy.hpp"
#include "tcsim/register_alloc.hpp"
#include "tcsim/tensor_core.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace egemm::gemm {

namespace {

constexpr std::size_t kTile = 16;  // wmma primitive extent
static_assert(kTile == kPackTile && kTile == tcsim::kTcM &&
              kTile == tcsim::kTcN);

/// NaN canonicalization at the D store, as the modeled hardware does: the
/// Tensor Core emits a canonical quiet NaN, never an input payload. Without
/// this, x86 NaN propagation picks the *first* operand's payload, so the
/// packed and reference engines could return bitwise-different NaNs for the
/// same case purely from compiler register allocation.
inline float canonical_store(float x) noexcept {
  return std::isnan(x) ? std::numeric_limits<float>::quiet_NaN() : x;
}

/// A split-product term over arbitrary plane sets: multiply A-plane
/// `a_plane` by B-plane `b_plane`.
struct PlaneCombo {
  int a_plane;
  int b_plane;
};

/// Computes one 16x16 C tile over plane decompositions of A and B:
/// iterates k-tiles and, per the requested order, the split-product
/// combos; every dot runs with Tensor Core accumulation semantics. `acc`
/// is the fp32 accumulator tile.
void compute_c_tile(float acc[kTile][kTile], std::span<const Matrix> ap,
                    std::span<const Matrix> bp, std::size_t i0,
                    std::size_t j0, std::size_t mt, std::size_t nt,
                    std::span<const PlaneCombo> combos, ComboOrder order) {
  const std::size_t k = ap[0].cols();

  auto k_tile_pass = [&](std::size_t k0, const PlaneCombo& combo) {
    const std::size_t kt = std::min(kTile, k - k0);
    // Transpose the B tile plane into a contiguous [j][k] buffer so the
    // inner dot walks unit strides.
    float bt[kTile][kTile];
    const Matrix& bplane = bp[static_cast<std::size_t>(combo.b_plane)];
    for (std::size_t kk = 0; kk < kt; ++kk) {
      const float* brow = bplane.row(k0 + kk) + j0;
      for (std::size_t j = 0; j < nt; ++j) bt[j][kk] = brow[j];
    }
    const Matrix& aplane = ap[static_cast<std::size_t>(combo.a_plane)];
    for (std::size_t i = 0; i < mt; ++i) {
      const float* arow = aplane.row(i0 + i) + k0;
      for (std::size_t j = 0; j < nt; ++j) {
        acc[i][j] = tcsim::tc_dot_f32(arow, bt[j], static_cast<int>(kt),
                                      acc[i][j]);
      }
    }
  };

  if (order == ComboOrder::kFusedPerTile) {
    // Alg. 1: inside each k-tile all combos accumulate before moving on.
    for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
      for (const PlaneCombo& combo : combos) k_tile_pass(k0, combo);
    }
  } else {
    // cuBLAS-TC-Emulation: one full-K GEMM per combo, D re-read between
    // passes (numerically identical to staying in registers, since D is
    // binary32 either way).
    for (const PlaneCombo& combo : combos) {
      for (std::size_t k0 = 0; k0 < k; k0 += kTile) k_tile_pass(k0, combo);
    }
  }
}

/// Retained scalar reference driver: D = sum over combos of Aplane x
/// Bplane (+ C), tiled and parallelized over row blocks. This is the
/// seed's execution path, kept as the semantics oracle the packed engine
/// is pinned against (tests/test_packed_gemm.cpp).
Matrix plane_gemm_reference(std::span<const Matrix> ap,
                            std::span<const Matrix> bp, const Matrix* c,
                            std::span<const PlaneCombo> combos,
                            ComboOrder order) {
  const std::size_t m = ap[0].rows();
  const std::size_t n = bp[0].cols();

  Matrix d(m, n);
  if (c != nullptr) {
    std::copy(c->data().begin(), c->data().end(), d.data().begin());
  }

  const std::size_t row_blocks = (m + kTile - 1) / kTile;
  util::global_pool().parallel_for(
      row_blocks, [&](std::size_t rb0, std::size_t rb1) {
        EGEMM_TRACE_SCOPE("mma");
        for (std::size_t rb = rb0; rb < rb1; ++rb) {
          const std::size_t i0 = rb * kTile;
          const std::size_t mt = std::min(kTile, m - i0);
          for (std::size_t j0 = 0; j0 < n; j0 += kTile) {
            const std::size_t nt = std::min(kTile, n - j0);
            float acc[kTile][kTile];
            for (std::size_t i = 0; i < mt; ++i) {
              for (std::size_t j = 0; j < nt; ++j) {
                acc[i][j] = d.at(i0 + i, j0 + j);
              }
            }
            compute_c_tile(acc, ap, bp, i0, j0, mt, nt, combos, order);
            EGEMM_TRACE_SCOPE("combine");
            for (std::size_t i = 0; i < mt; ++i) {
              for (std::size_t j = 0; j < nt; ++j) {
                d.at(i0 + i, j0 + j) = canonical_store(acc[i][j]);
              }
            }
          }
        }
      });
  return d;
}

/// Packed engine (DESIGN.md §10): packs every plane once into tile-blocked
/// contiguous buffers, then walks the output tiles on a 2D block schedule;
/// each tile streams its k-slabs through the vectorized
/// tcsim::mma_block_packed kernel. Per output element the operation
/// sequence is identical to the reference driver, so the result is
/// bit-identical.
Matrix plane_gemm_packed(std::span<const Matrix> ap,
                         std::span<const Matrix> bp, const Matrix* c,
                         std::span<const PlaneCombo> combos,
                         ComboOrder order) {
  const std::size_t m = ap[0].rows();
  const std::size_t n = bp[0].cols();
  const std::size_t k = ap[0].cols();

  // Pack once per call; reused by every k-tile, combo, and output tile.
  const auto packs = [&] {
    EGEMM_TRACE_SCOPE("pack");
    return std::pair<PackedPlanesA, PackedPlanesB>(PackedPlanesA(ap),
                                                   PackedPlanesB(bp));
  }();
  const PackedPlanesA& apack = packs.first;
  const PackedPlanesB& bpack = packs.second;

  Matrix d(m, n);
  if (c != nullptr) {
    std::copy(c->data().begin(), c->data().end(), d.data().begin());
  }

  util::global_pool().parallel_for_2d(
      apack.row_blocks(), bpack.col_blocks(), /*grain=*/0,
      [&](std::size_t rb0, std::size_t rb1, std::size_t cb0, std::size_t cb1) {
        EGEMM_TRACE_SCOPE("mma");
        EGEMM_COUNTER_ADD("egemm.tiles", (rb1 - rb0) * (cb1 - cb0));
        for (std::size_t rb = rb0; rb < rb1; ++rb) {
          const std::size_t i0 = rb * kTile;
          const std::size_t mt = std::min(kTile, m - i0);
          for (std::size_t cb = cb0; cb < cb1; ++cb) {
            const std::size_t j0 = cb * kTile;
            const std::size_t nt = std::min(kTile, n - j0);
            // Full 16x16 accumulator; lanes past (mt, nt) compute against
            // the packs' zero padding and are never copied back.
            alignas(64) float acc[kTile][kTile] = {};
            for (std::size_t i = 0; i < mt; ++i) {
              for (std::size_t j = 0; j < nt; ++j) {
                acc[i][j] = d.at(i0 + i, j0 + j);
              }
            }
            const auto k_slab = [&](const PlaneCombo& combo, std::size_t k0) {
              const std::size_t kt = std::min(kTile, k - k0);
              tcsim::mma_block_packed(
                  &acc[0][0],
                  apack.block(static_cast<std::size_t>(combo.a_plane), rb) + k0,
                  k,
                  bpack.block(static_cast<std::size_t>(combo.b_plane), cb) +
                      k0 * kTile,
                  static_cast<int>(kt));
            };
            if (order == ComboOrder::kFusedPerTile) {
              for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
                for (const PlaneCombo& combo : combos) k_slab(combo, k0);
              }
            } else {
              for (const PlaneCombo& combo : combos) {
                for (std::size_t k0 = 0; k0 < k; k0 += kTile) {
                  k_slab(combo, k0);
                }
              }
            }
            EGEMM_TRACE_SCOPE("combine");
            for (std::size_t i = 0; i < mt; ++i) {
              for (std::size_t j = 0; j < nt; ++j) {
                d.at(i0 + i, j0 + j) = canonical_store(acc[i][j]);
              }
            }
          }
        }
      });
  return d;
}

Matrix plane_gemm(std::span<const Matrix> ap, std::span<const Matrix> bp,
                  const Matrix* c, std::span<const PlaneCombo> combos,
                  ComboOrder order, ExecEngine engine) {
  return engine == ExecEngine::kPacked
             ? plane_gemm_packed(ap, bp, c, combos, order)
             : plane_gemm_reference(ap, bp, c, combos, order);
}

#ifndef NDEBUG
/// Debug self-check: the SASS kernel this configuration implies must lint
/// clean of hazard/liveness errors (EG1xx/EG2xx) before we trust its
/// timing. Checked once per distinct configuration; resource findings
/// (EG4xx) are not asserted on -- an infeasible tiling is a legitimate
/// query here, answered through timing.feasible.
void debug_lint_kernel(const TileConfig& tile, const EgemmOptions& opts) {
  const sass::WarpShape shape =
      sass::warp_shape(tile, opts.emulation_instructions);
  // Codegen needs at least one LDG per warp and a split-able LDS group.
  if (shape.ldg_per_iter < 1 || shape.lds_per_step < 2 ||
      shape.tile_positions < 1) {
    return;
  }
  static std::mutex mutex;
  static std::set<std::string> checked;
  const std::string key = tile.describe() +
                          (opts.latency_hiding ? "+sched" : "+naive") + ":" +
                          std::to_string(opts.emulation_instructions);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!checked.insert(key).second) return;
  }
  sass::BuildOptions bopts;
  bopts.tile = tile;
  bopts.k_iterations = 4;  // loop analysis does not depend on the trip count
  bopts.emulation_instructions = opts.emulation_instructions;
  bopts.latency_hiding = opts.latency_hiding;
  const sass::BuiltKernel built = sass::build_egemm_kernel(bopts);
  EGEMM_ENSURES(!sass::has_blocking_errors(built.diagnostics));
}
#endif

}  // namespace

Matrix emulated_gemm(const Matrix& a, const Matrix& b, const Matrix* c,
                     core::SplitMethod split, std::span<const Combo> combos,
                     ComboOrder order, ExecEngine engine) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == a.rows() && c->cols() == b.cols()));
  EGEMM_EXPECTS(!combos.empty());

  EGEMM_TRACE_SCOPE("egemm_multiply");
  EGEMM_COUNTER_ADD("egemm.calls", 1);

  // The O(N^2) data-split pass (runs on CUDA cores in the real kernel).
  // Plane 0 = lo, plane 1 = hi.
#ifndef NDEBUG
  const std::uint64_t split_before = core::debug_split_elements();
#endif
  std::vector<Matrix> ap(2, Matrix(a.rows(), a.cols()));
  std::vector<Matrix> bp(2, Matrix(b.rows(), b.cols()));
  {
    EGEMM_TRACE_SCOPE("split");
    core::split_span_f32(a.data(), ap[1].data(), ap[0].data(), split);
    core::split_span_f32(b.data(), bp[1].data(), bp[0].data(), split);
  }
#ifndef NDEBUG
  // Each input element must be split exactly once per GEMM call -- the
  // plane cache is the point of the packed engine, so re-splitting
  // anywhere downstream is a bug.
  EGEMM_ENSURES(core::debug_split_elements() - split_before ==
                a.data().size() + b.data().size());
#endif

  std::vector<PlaneCombo> plane_combos;
  plane_combos.reserve(combos.size());
  for (const Combo& combo : combos) {
    plane_combos.push_back(PlaneCombo{combo.a_hi ? 1 : 0, combo.b_hi ? 1 : 0});
  }
  return plane_gemm(ap, bp, c, plane_combos, order, engine);
}

Matrix egemm_multiply_3split(const Matrix& a, const Matrix& b, const Matrix* c,
                             ExecEngine engine) {
  EGEMM_EXPECTS(a.cols() == b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == a.rows() && c->cols() == b.cols()));

  EGEMM_TRACE_SCOPE("egemm_multiply_3split");
  EGEMM_COUNTER_ADD("egemm.calls", 1);

  // Planes 0 = lo, 1 = mid, 2 = hi; x == p0 + p1 + p2 exactly.
#ifndef NDEBUG
  const std::uint64_t split_before = core::debug_split_elements();
#endif
  std::vector<Matrix> ap(3, Matrix(a.rows(), a.cols()));
  std::vector<Matrix> bp(3, Matrix(b.rows(), b.cols()));
  {
    EGEMM_TRACE_SCOPE("split");
    core::split3_span_f32(a.data(), ap[2].data(), ap[1].data(), ap[0].data());
    core::split3_span_f32(b.data(), bp[2].data(), bp[1].data(), bp[0].data());
  }
#ifndef NDEBUG
  EGEMM_ENSURES(core::debug_split_elements() - split_before ==
                a.data().size() + b.data().size());
#endif

  // All 9 products, smallest-magnitude terms first so they are absorbed
  // before the dominant hi x hi partial product.
  static constexpr PlaneCombo kCombos[] = {
      {0, 0}, {0, 1}, {1, 0}, {0, 2}, {1, 1}, {2, 0}, {1, 2}, {2, 1}, {2, 2}};
  return plane_gemm(ap, bp, c, kCombos, ComboOrder::kFusedPerTile, engine);
}

KernelTiming egemm_3split_timing(std::uint64_t m, std::uint64_t n,
                                 std::uint64_t k, const tcsim::GpuSpec& spec) {
  EgemmOptions opts;
  opts.emulation_instructions = 9;
  KernelTiming timing = egemm_timing(m, n, k, spec, opts);
  // Three half planes instead of two: the split pass writes 1.5x the
  // bytes (the main loop's global traffic is handled by the stream shape).
  timing.seconds += timing.split_pass_seconds * 0.5;
  timing.split_pass_seconds *= 1.5;
  timing.tflops = gemm_tflops(m, n, k, timing.seconds);
  return timing;
}

Matrix egemm_multiply(const Matrix& a, const Matrix& b, const Matrix* c,
                      const EgemmOptions& opts) {
  // Alg. 1's term order: low-order products first.
  static constexpr Combo kAlg1[] = {
      {false, false}, {false, true}, {true, false}, {true, true}};
  EGEMM_EXPECTS(opts.emulation_instructions == 4);
  return emulated_gemm(a, b, c, opts.split, kAlg1, ComboOrder::kFusedPerTile,
                       opts.engine);
}

KernelTiming egemm_timing(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                          const tcsim::GpuSpec& spec,
                          const EgemmOptions& opts) {
  EGEMM_EXPECTS(m > 0 && n > 0 && k > 0);
  EGEMM_EXPECTS(opts.tile.valid());
  const TileConfig& tile = opts.tile;
#ifndef NDEBUG
  debug_lint_kernel(tile, opts);
#endif

  KernelTiming timing;

  // Register allocation (§5.2) decides the per-thread footprint; a plan
  // that spills slows the block down (spilled values bounce off local
  // memory), and one that does not fit at all is infeasible.
  const tcsim::KernelRegisterPlan plan = tcsim::egemm_register_plan(
      tile.bm, tile.bn, tile.bk, tile.wm, tile.wn, tile.wk,
      tile.threads_per_block());
  const tcsim::AllocationResult regs =
      tcsim::allocate_registers(plan, spec.max_registers_per_thread);
  timing.registers_per_thread = std::min(
      regs.per_thread, spec.max_registers_per_thread);
  timing.register_spill = regs.spills;

  const tcsim::BlockResources resources{
      tile.shared_memory_bytes(), timing.registers_per_thread,
      tile.threads_per_block()};
  const tcsim::Occupancy occ = tcsim::compute_occupancy(spec, resources);
  if (occ.blocks_per_sm == 0) {
    timing.feasible = false;
    return timing;
  }
  timing.blocks_per_sm = occ.blocks_per_sm;

  // Per-block instruction stream -> cycles.
  tcsim::EgemmStreamOptions sopts;
  sopts.latency_hiding = opts.latency_hiding;
  sopts.frag_caching = opts.frag_caching;
  sopts.emulation_instructions =
      static_cast<std::uint32_t>(opts.emulation_instructions);
  const tcsim::IterationShape shape = tcsim::egemm_iteration_shape(
      tile.bm, tile.bn, tile.bk, tile.wm, tile.wn, tile.wk, sopts);
  const auto iterations =
      static_cast<std::uint32_t>(tile.k_iterations(k));
  const auto epilogue_stg = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(tile.bm) * static_cast<std::uint64_t>(tile.bn) *
      4 / 512);
  const tcsim::SimProgram program =
      tcsim::build_egemm_block_program(shape, iterations, sopts, epilogue_stg);
  timing.block_stats = tcsim::simulate_block(program, spec);
  timing.block_cycles = timing.block_stats.cycles;
  if (occ.blocks_per_sm > 1) {
    // Co-resident blocks share the SM's issue ports: each extra block
    // stretches this block's busiest-port time by its utilization share
    // (idle latency slots still interleave for free).
    double max_util = 0.0;
    for (const tcsim::Port port :
         {tcsim::Port::kTensor, tcsim::Port::kMio, tcsim::Port::kGlobal,
          tcsim::Port::kCuda}) {
      max_util = std::max(max_util,
                          timing.block_stats.port_utilization(port));
    }
    timing.block_cycles *=
        1.0 + static_cast<double>(occ.blocks_per_sm - 1) * max_util;
  }
  if (regs.spills) {
    // Each spilled register adds local-memory round trips to the main
    // loop; 2% per register is the calibrated penalty.
    timing.block_cycles *=
        1.0 + 0.02 * static_cast<double>(regs.spilled_registers);
  }

  timing.blocks = tile.grid_blocks(m, n);
  timing.waves =
      tcsim::wave_count(timing.blocks, spec, occ.blocks_per_sm);
  const double main_cycles = tcsim::kernel_cycles(
      timing.blocks, timing.block_cycles, spec, occ.blocks_per_sm);
  const double main_seconds = spec.cycles_to_seconds(main_cycles);

  // The O(N^2) split pass on CUDA cores: reads A and B in binary32 and
  // writes the lo+hi binary16 planes -- 8(mk + kn) bytes at DRAM speed --
  // plus its own kernel launch.
  const double split_bytes =
      8.0 * (static_cast<double>(m) * static_cast<double>(k) +
             static_cast<double>(k) * static_cast<double>(n));
  timing.split_pass_seconds =
      split_bytes / (spec.dram_bandwidth_gbps * 1e9) +
      spec.kernel_launch_us * 1e-6;

  timing.seconds = main_seconds + timing.split_pass_seconds +
                   spec.kernel_launch_us * 1e-6;
  timing.tflops = gemm_tflops(m, n, k, timing.seconds);
  return timing;
}

double gemm_tflops(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                   double seconds) noexcept {
  if (seconds <= 0.0) return 0.0;
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k) / seconds / 1e12;
}

}  // namespace egemm::gemm
