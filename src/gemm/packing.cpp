#include "gemm/packing.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace egemm::gemm {

bool PackedPlanesA::assign(std::span<const Matrix> planes) {
  EGEMM_EXPECTS(!planes.empty());
  const std::size_t m = planes[0].rows();
  k_ = planes[0].cols();
  row_blocks_ = (m + kPackTile - 1) / kPackTile;
  bool grew = planes_.capacity() < planes.size();
  planes_.resize(planes.size());
  const std::size_t pack_size = row_blocks_ * kPackTile * k_;
  for (std::size_t p = 0; p < planes.size(); ++p) {
    const Matrix& plane = planes[p];
    EGEMM_EXPECTS(plane.rows() == m && plane.cols() == k_);
    std::vector<float>& pack = planes_[p];
    grew |= pack.capacity() < pack_size;
    pack.assign(pack_size, 0.0f);
    // Rows of a block are consecutive in both layouts, so the copy is one
    // contiguous memcpy per source row (padded rows stay zero).
    if (k_ != 0) {
      for (std::size_t r = 0; r < m; ++r) {
        std::memcpy(pack.data() + r * k_, plane.row(r), k_ * sizeof(float));
      }
    }
    EGEMM_COUNTER_ADD("pack.a_bytes", pack.size() * sizeof(float));
  }
  EGEMM_COUNTER_ADD("pack.calls", 1);
  return grew;
}

bool PackedPlanesB::assign(std::span<const Matrix> planes) {
  EGEMM_EXPECTS(!planes.empty());
  k_ = planes[0].rows();
  const std::size_t n = planes[0].cols();
  col_blocks_ = (n + kPackTile - 1) / kPackTile;
  bool grew = planes_.capacity() < planes.size();
  planes_.resize(planes.size());
  const std::size_t pack_size = col_blocks_ * k_ * kPackTile;
  for (std::size_t p = 0; p < planes.size(); ++p) {
    const Matrix& plane = planes[p];
    EGEMM_EXPECTS(plane.rows() == k_ && plane.cols() == n);
    std::vector<float>& pack = planes_[p];
    grew |= pack.capacity() < pack_size;
    pack.assign(pack_size, 0.0f);
    for (std::size_t r = 0; r < k_; ++r) {
      const float* src = plane.row(r);
      for (std::size_t cb = 0; cb < col_blocks_; ++cb) {
        const std::size_t width = std::min(kPackTile, n - cb * kPackTile);
        std::memcpy(pack.data() + cb * k_ * kPackTile + r * kPackTile,
                    src + cb * kPackTile, width * sizeof(float));
      }
    }
    EGEMM_COUNTER_ADD("pack.b_bytes", pack.size() * sizeof(float));
  }
  EGEMM_COUNTER_ADD("pack.calls", 1);
  return grew;
}

}  // namespace egemm::gemm
