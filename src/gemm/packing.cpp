#include "gemm/packing.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace egemm::gemm {

PackedPlanesA::PackedPlanesA(std::span<const Matrix> planes) {
  EGEMM_EXPECTS(!planes.empty());
  const std::size_t m = planes[0].rows();
  k_ = planes[0].cols();
  row_blocks_ = (m + kPackTile - 1) / kPackTile;
  planes_.reserve(planes.size());
  for (const Matrix& plane : planes) {
    EGEMM_EXPECTS(plane.rows() == m && plane.cols() == k_);
    std::vector<float>& pack =
        planes_.emplace_back(row_blocks_ * kPackTile * k_, 0.0f);
    // Rows of a block are consecutive in both layouts, so the copy is one
    // contiguous memcpy per source row (padded rows stay zero).
    for (std::size_t r = 0; r < m; ++r) {
      std::memcpy(pack.data() + r * k_, plane.row(r), k_ * sizeof(float));
    }
    EGEMM_COUNTER_ADD("pack.a_bytes", pack.size() * sizeof(float));
  }
  EGEMM_COUNTER_ADD("pack.calls", 1);
}

PackedPlanesB::PackedPlanesB(std::span<const Matrix> planes) {
  EGEMM_EXPECTS(!planes.empty());
  k_ = planes[0].rows();
  const std::size_t n = planes[0].cols();
  col_blocks_ = (n + kPackTile - 1) / kPackTile;
  planes_.reserve(planes.size());
  for (const Matrix& plane : planes) {
    EGEMM_EXPECTS(plane.rows() == k_ && plane.cols() == n);
    std::vector<float>& pack =
        planes_.emplace_back(col_blocks_ * k_ * kPackTile, 0.0f);
    for (std::size_t r = 0; r < k_; ++r) {
      const float* src = plane.row(r);
      for (std::size_t cb = 0; cb < col_blocks_; ++cb) {
        const std::size_t width = std::min(kPackTile, n - cb * kPackTile);
        std::memcpy(pack.data() + cb * k_ * kPackTile + r * kPackTile,
                    src + cb * kPackTile, width * sizeof(float));
      }
    }
    EGEMM_COUNTER_ADD("pack.b_bytes", pack.size() * sizeof(float));
  }
  EGEMM_COUNTER_ADD("pack.calls", 1);
}

}  // namespace egemm::gemm
