#pragma once
// Tile packing for the packed execution engine (DESIGN.md §10).
//
// Per GEMM call, each input matrix is split into binary16 planes exactly
// once (the O(N^2) pass), and each plane is then copied ONCE into a
// tile-blocked contiguous layout that the packed block kernel
// (tcsim::mma_block_packed) streams at unit stride:
//
//   A plane (m x k)  ->  row blocks: block rb holds rows
//       [rb*16, rb*16+16) as 16 contiguous rows of k floats (rows past m
//       are zero). A k-slab of the block starts at column offset k0 with
//       leading dimension k.
//   B plane (k x n)  ->  column blocks: block cb holds columns
//       [cb*16, cb*16+16) as k contiguous rows of 16 floats (columns past
//       n are zero). A k-slab starts at row offset k0*16 and is fully
//       contiguous -- this is what turns the seed path's stride-n column
//       walk into the kernel's unit-stride vector loads.
//
// The packs are shared across every k-tile, every plane combo, and every
// output tile of the call -- the host-side analogue of §4's FRAG caching
// (stage once, reuse across the O(N^3) loop). Zero padding is harmless:
// padded lanes are computed and discarded (never copied back into D), and
// the k extent is never padded, so the pair-sum structure over k -- the
// bit-exactness-critical part -- is untouched.

#include <cstddef>
#include <span>
#include <vector>

#include "gemm/matrix.hpp"

namespace egemm::gemm {

/// Extent of the packing tiles; matches the wmma primitive and the packed
/// block kernel's fixed shape.
inline constexpr std::size_t kPackTile = 16;

/// Row-blocked packed copy of a stack of A planes.
class PackedPlanesA {
 public:
  /// Empty pack; fill with assign(). Lets a plan workspace hold the pack
  /// across calls and repack in place.
  PackedPlanesA() = default;
  explicit PackedPlanesA(std::span<const Matrix> planes) { assign(planes); }

  /// Repacks from `planes`, reusing the existing buffers. Returns true
  /// when any buffer had to grow (i.e. the call allocated) -- the plan
  /// layer's debug allocation guard keys off this.
  bool assign(std::span<const Matrix> planes);

  std::size_t row_blocks() const noexcept { return row_blocks_; }
  std::size_t k() const noexcept { return k_; }

  /// 16 x k row-major block (leading dimension k) for `block_row` of
  /// plane `plane`.
  const float* block(std::size_t plane, std::size_t block_row) const noexcept {
    return planes_[plane].data() + block_row * kPackTile * k_;
  }

 private:
  std::size_t row_blocks_ = 0;
  std::size_t k_ = 0;
  std::vector<std::vector<float>> planes_;
};

/// Column-blocked packed copy of a stack of B planes.
class PackedPlanesB {
 public:
  PackedPlanesB() = default;
  explicit PackedPlanesB(std::span<const Matrix> planes) { assign(planes); }

  /// Repacks from `planes`, reusing the existing buffers; returns true
  /// when any buffer had to grow.
  bool assign(std::span<const Matrix> planes);

  std::size_t col_blocks() const noexcept { return col_blocks_; }
  std::size_t k() const noexcept { return k_; }

  /// k x 16 row-major contiguous block for `block_col` of plane `plane`;
  /// the k-slab at row offset k0 starts at `block(...) + k0 * kPackTile`.
  const float* block(std::size_t plane, std::size_t block_col) const noexcept {
    return planes_[plane].data() + block_col * k_ * kPackTile;
  }

 private:
  std::size_t col_blocks_ = 0;
  std::size_t k_ = 0;
  std::vector<std::vector<float>> planes_;
};

}  // namespace egemm::gemm
