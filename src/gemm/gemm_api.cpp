#include "gemm/gemm_api.hpp"

#include <cmath>

#include "gemm/plan.hpp"
#include "util/assert.hpp"

namespace egemm::gemm {

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kEgemmTC:
      return "EGEMM-TC";
    case Backend::kCublasFp32:
      return "cuBLAS-CUDA-FP32";
    case Backend::kCublasTcHalf:
      return "cuBLAS-TC-Half";
    case Backend::kCublasTcEmulation:
      return "cuBLAS-TC-Emulation";
    case Backend::kSdkFp32:
      return "SDK-CUDA-FP32";
    case Backend::kMarkidis:
      return "Markidis";
    case Backend::kDekker:
      return "Dekker";
  }
  return "?";
}

std::vector<Backend> all_backends() {
  return {Backend::kEgemmTC,       Backend::kCublasFp32,
          Backend::kCublasTcHalf,  Backend::kCublasTcEmulation,
          Backend::kSdkFp32,       Backend::kMarkidis,
          Backend::kDekker};
}

Matrix run_gemm(Backend backend, const Matrix& a, const Matrix& b,
                const Matrix* c) {
  return run_gemm(default_context(), backend, a, b, c);
}

Matrix run_gemm(GemmContext& ctx, Backend backend, const Matrix& a,
                const Matrix& b, const Matrix* c) {
  if (backend == Backend::kSdkFp32) EGEMM_EXPECTS(c == nullptr);
  return ctx.run(backend, a, b, c);
}

Matrix gemm_ex(Backend backend, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params) {
  return gemm_ex(default_context(), backend, a, b, c, params);
}

Matrix gemm_ex(GemmContext& ctx, Backend backend, const Matrix& a,
               const Matrix& b, const Matrix* c, const GemmExParams& params) {
  EGEMM_EXPECTS(params.beta == 0.0f || c != nullptr);
  const Matrix op_a =
      params.trans_a == Transpose::kTranspose ? transpose(a) : a;
  const Matrix op_b =
      params.trans_b == Transpose::kTranspose ? transpose(b) : b;
  EGEMM_EXPECTS(op_a.cols() == op_b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == op_a.rows() && c->cols() == op_b.cols()));

  // Fast paths keep the accumulation inside the kernel (beta = 1 rides the
  // Tensor Core accumulator; the SDK sample has no C input).
  if (params.alpha == 1.0f) {
    if (params.beta == 0.0f) {
      return run_gemm(ctx, backend, op_a, op_b, nullptr);
    }
    if (params.beta == 1.0f && backend != Backend::kSdkFp32) {
      return run_gemm(ctx, backend, op_a, op_b, c);
    }
  }

  // The (alpha, beta) scaling is a binary32 epilogue over the kernel
  // result, in place in D -- the epilogue needs no extra scratch.
  Matrix d = run_gemm(ctx, backend, op_a, op_b, nullptr);
  for (std::size_t i = 0; i < d.size(); ++i) {
    float value = params.alpha * d.data()[i];
    if (c != nullptr && params.beta != 0.0f) {
      value = std::fmaf(params.beta, c->data()[i], value);
    }
    d.data()[i] = value;
  }
  return d;
}

KernelTiming time_gemm(Backend backend, std::uint64_t m, std::uint64_t n,
                       std::uint64_t k, const tcsim::GpuSpec& spec) {
  switch (backend) {
    case Backend::kEgemmTC:
      return egemm_timing(m, n, k, spec);
    case Backend::kCublasFp32:
      return sgemm_fp32_timing(m, n, k, spec);
    case Backend::kCublasTcHalf:
      return tc_half_timing(m, n, k, spec);
    case Backend::kCublasTcEmulation:
      return tc_emulation_timing(m, n, k, spec);
    case Backend::kSdkFp32:
      return sdk_gemm_timing(m, n, k, spec);
    case Backend::kMarkidis:
      return markidis_timing(m, n, k, spec);
    case Backend::kDekker: {
      EgemmOptions opts;
      opts.emulation_instructions = 16;
      return egemm_timing(m, n, k, spec, opts);
    }
  }
  EGEMM_EXPECTS(!"unreachable backend");
  return KernelTiming{};
}

}  // namespace egemm::gemm
