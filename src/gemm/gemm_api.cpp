#include "gemm/gemm_api.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "gemm/plan.hpp"
#include "util/assert.hpp"

namespace egemm::gemm {

namespace {

/// The (alpha, beta) scaling epilogue shared by gemm_ex and the grouped
/// entry points, in place in D: one binary32 multiply plus one fma per
/// element, exactly as cuBLAS does it.
void apply_epilogue(Matrix& d, const Matrix* c, const GemmExParams& params) {
  for (std::size_t i = 0; i < d.size(); ++i) {
    float value = params.alpha * d.data()[i];
    if (c != nullptr && params.beta != 0.0f) {
      value = std::fmaf(params.beta, c->data()[i], value);
    }
    d.data()[i] = value;
  }
}

[[noreturn]] void throw_contract_infeasible(
    const core::AccuracyContract& contract,
    const core::ContractResolution& resolution) {
  char message[192];
  std::snprintf(message, sizeof(message),
                "no emulation scheme meets the accuracy contract: target "
                "%.6g, tightest rung (%s) only proves %.6g",
                contract.max_abs_error,
                core::scheme_name(resolution.tightest),
                resolution.tightest_worst_abs);
  throw std::invalid_argument(message);
}

/// Shared core of the grouped/batched entry points: materializes the
/// transposed operands, plans every item through `make_plan(item_index,
/// m, n, k)`, runs the whole set as one GemmContext::execute_grouped
/// stream, then applies the per-item alpha/beta epilogues. The fast-path
/// rules mirror gemm_ex exactly, so results stay bit-identical to the
/// per-item loop.
void run_grouped_items(
    GemmContext& ctx, std::span<const GroupedGemmItem> items,
    const std::function<std::shared_ptr<const GemmPlan>(
        std::size_t, std::size_t, std::size_t, std::size_t)>& make_plan) {
  std::size_t transposes = 0;
  for (const GroupedGemmItem& item : items) {
    EGEMM_EXPECTS(item.a != nullptr && item.b != nullptr &&
                  item.d != nullptr);
    EGEMM_EXPECTS(item.params.beta == 0.0f || item.c != nullptr);
    if (item.params.trans_a == Transpose::kTranspose) ++transposes;
    if (item.params.trans_b == Transpose::kTranspose) ++transposes;
  }
  // Reserved up front: the GroupedGemm work list keeps raw pointers into
  // this storage, so it must never reallocate.
  std::vector<Matrix> storage;
  storage.reserve(transposes);
  std::vector<GroupedGemm> work;
  work.reserve(items.size());
  std::vector<std::size_t> epilogue;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const GroupedGemmItem& item = items[i];
    const Matrix* op_a = item.a;
    if (item.params.trans_a == Transpose::kTranspose) {
      storage.push_back(transpose(*item.a));
      op_a = &storage.back();
    }
    const Matrix* op_b = item.b;
    if (item.params.trans_b == Transpose::kTranspose) {
      storage.push_back(transpose(*item.b));
      op_b = &storage.back();
    }
    EGEMM_EXPECTS(op_a->cols() == op_b->rows());
    EGEMM_EXPECTS(item.c == nullptr ||
                  (item.c->rows() == op_a->rows() &&
                   item.c->cols() == op_b->cols()));
    std::shared_ptr<const GemmPlan> plan =
        make_plan(i, op_a->rows(), op_b->cols(), op_a->cols());
    // Same fast-path rules as gemm_ex: beta = 1 rides the kernel
    // accumulator except on the SDK sample (no C input there).
    const bool fast =
        item.params.alpha == 1.0f &&
        (item.params.beta == 0.0f ||
         (item.params.beta == 1.0f &&
          plan->backend() != Backend::kSdkFp32));
    const Matrix* kernel_c =
        fast && item.params.beta == 1.0f ? item.c : nullptr;
    if (!fast) epilogue.push_back(i);
    work.push_back(GroupedGemm{std::move(plan), op_a, op_b, kernel_c,
                               item.d});
  }
  ctx.execute_grouped(work);
  for (const std::size_t i : epilogue) {
    apply_epilogue(*items[i].d, items[i].c, items[i].params);
  }
}

}  // namespace

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kEgemmTC:
      return "EGEMM-TC";
    case Backend::kCublasFp32:
      return "cuBLAS-CUDA-FP32";
    case Backend::kCublasTcHalf:
      return "cuBLAS-TC-Half";
    case Backend::kCublasTcEmulation:
      return "cuBLAS-TC-Emulation";
    case Backend::kSdkFp32:
      return "SDK-CUDA-FP32";
    case Backend::kMarkidis:
      return "Markidis";
    case Backend::kDekker:
      return "Dekker";
  }
  return "?";
}

std::vector<Backend> all_backends() {
  return {Backend::kEgemmTC,       Backend::kCublasFp32,
          Backend::kCublasTcHalf,  Backend::kCublasTcEmulation,
          Backend::kSdkFp32,       Backend::kMarkidis,
          Backend::kDekker};
}

Matrix run_gemm(Backend backend, const Matrix& a, const Matrix& b,
                const Matrix* c) {
  return run_gemm(default_context(), backend, a, b, c);
}

Matrix run_gemm(GemmContext& ctx, Backend backend, const Matrix& a,
                const Matrix& b, const Matrix* c) {
  if (backend == Backend::kSdkFp32) EGEMM_EXPECTS(c == nullptr);
  return ctx.run(backend, a, b, c);
}

Matrix gemm_ex(Backend backend, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params) {
  return gemm_ex(default_context(), backend, a, b, c, params);
}

Matrix gemm_ex(GemmContext& ctx, Backend backend, const Matrix& a,
               const Matrix& b, const Matrix* c, const GemmExParams& params) {
  EGEMM_EXPECTS(params.beta == 0.0f || c != nullptr);
  const Matrix op_a =
      params.trans_a == Transpose::kTranspose ? transpose(a) : a;
  const Matrix op_b =
      params.trans_b == Transpose::kTranspose ? transpose(b) : b;
  EGEMM_EXPECTS(op_a.cols() == op_b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == op_a.rows() && c->cols() == op_b.cols()));

  // Fast paths keep the accumulation inside the kernel (beta = 1 rides the
  // Tensor Core accumulator; the SDK sample has no C input).
  if (params.alpha == 1.0f) {
    if (params.beta == 0.0f) {
      return run_gemm(ctx, backend, op_a, op_b, nullptr);
    }
    if (params.beta == 1.0f && backend != Backend::kSdkFp32) {
      return run_gemm(ctx, backend, op_a, op_b, c);
    }
  }

  // The (alpha, beta) scaling is a binary32 epilogue over the kernel
  // result, in place in D -- the epilogue needs no extra scratch.
  Matrix d = run_gemm(ctx, backend, op_a, op_b, nullptr);
  apply_epilogue(d, c, params);
  return d;
}

core::ContractResolution gemm_ex_contract_resolution(
    const Matrix& a, const Matrix& b, const Matrix* c,
    const GemmExParams& params, const core::AccuracyContract& contract) {
  EGEMM_EXPECTS(params.alpha != 0.0f);
  EGEMM_EXPECTS(params.beta == 0.0f || c != nullptr);
  // max |op(X)| == max |X|: transposition never changes the scale context,
  // so the scales come straight off the stored matrices.
  const std::size_t k =
      params.trans_a == Transpose::kTranspose ? a.rows() : a.cols();
  core::AccuracyContract resolved = contract;
  if (resolved.a_scale <= 0.0) resolved.a_scale = max_abs(a);
  if (resolved.b_scale <= 0.0) resolved.b_scale = max_abs(b);
  const bool use_c = c != nullptr && params.beta != 0.0f;
  if (resolved.c_abs <= 0.0) resolved.c_abs = use_c ? max_abs(*c) : 0.0;
  if (!use_c) resolved.c_abs = 0.0;

  const bool fast = params.alpha == 1.0f &&
                    (params.beta == 0.0f ||
                     (params.beta == 1.0f && c != nullptr));
  double target = contract.max_abs_error;
  double kernel_c_abs = 0.0;
  if (fast) {
    // beta == 1 rides C on the kernel accumulator; beta == 0 has no C.
    if (params.beta == 1.0f) kernel_c_abs = resolved.c_abs;
  } else {
    // Epilogue path: the kernel runs without C, then D = alpha * D0 (one
    // binary32 multiply) fma'd with beta * C (one more rounding). Both
    // roundings are at most u32 of the output scale; budget 4 u32 of it
    // out of the target and require the kernel to meet the rest (scaled
    // back by |alpha|, since its error is multiplied through).
    const double alpha = std::fabs(static_cast<double>(params.alpha));
    const double beta = std::fabs(static_cast<double>(params.beta));
    const double out_scale =
        alpha * static_cast<double>(k) * resolved.a_scale *
            resolved.b_scale +
        beta * resolved.c_abs;
    target = (target - 4.0 * 0x1.0p-24 * out_scale) / alpha;
  }
  core::AccuracyContract kernel_contract = resolved;
  kernel_contract.max_abs_error = target;
  kernel_contract.c_abs = kernel_c_abs;
  return core::resolve_contract(kernel_contract, k);
}

Matrix gemm_ex(GemmContext& ctx, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params,
               const core::AccuracyContract& contract) {
  const core::ContractResolution resolution =
      gemm_ex_contract_resolution(a, b, c, params, contract);
  if (!resolution.feasible) {
    throw_contract_infeasible(contract, resolution);
  }

  const Matrix op_a =
      params.trans_a == Transpose::kTranspose ? transpose(a) : a;
  const Matrix op_b =
      params.trans_b == Transpose::kTranspose ? transpose(b) : b;
  EGEMM_EXPECTS(op_a.cols() == op_b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == op_a.rows() && c->cols() == op_b.cols()));

  const bool fast = params.alpha == 1.0f &&
                    (params.beta == 0.0f ||
                     (params.beta == 1.0f && c != nullptr));
  const std::shared_ptr<const GemmPlan> plan = ctx.plan_scheme(
      resolution.scheme, op_a.rows(), op_b.cols(), op_a.cols());
  Matrix d;
  plan->execute(ctx, op_a, op_b,
                fast && params.beta == 1.0f ? c : nullptr, d);
  if (!fast) apply_epilogue(d, c, params);
  return d;
}

Matrix gemm_ex(const Matrix& a, const Matrix& b, const Matrix* c,
               const GemmExParams& params,
               const core::AccuracyContract& contract) {
  return gemm_ex(default_context(), a, b, c, params, contract);
}

void gemm_grouped(GemmContext& ctx, Backend backend,
                  std::span<const GroupedGemmItem> items) {
  run_grouped_items(ctx, items,
                    [&ctx, backend](std::size_t, std::size_t m, std::size_t n,
                                    std::size_t k) {
                      return ctx.plan(backend, m, n, k);
                    });
}

void gemm_grouped(Backend backend, std::span<const GroupedGemmItem> items) {
  gemm_grouped(default_context(), backend, items);
}

std::vector<Matrix> gemm_batched(GemmContext& ctx, Backend backend,
                                 std::span<const Matrix> a,
                                 std::span<const Matrix> b,
                                 std::span<const Matrix> c,
                                 const GemmExParams& params) {
  EGEMM_EXPECTS(a.size() == b.size());
  EGEMM_EXPECTS(c.empty() || c.size() == a.size());
  EGEMM_EXPECTS(params.beta == 0.0f || !c.empty());
  std::vector<Matrix> d(a.size());
  if (a.empty()) return d;
  for (std::size_t i = 1; i < a.size(); ++i) {
    EGEMM_EXPECTS(a[i].rows() == a[0].rows() && a[i].cols() == a[0].cols());
    EGEMM_EXPECTS(b[i].rows() == b[0].rows() && b[i].cols() == b[0].cols());
  }
  std::vector<GroupedGemmItem> items(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    items[i].a = &a[i];
    items[i].b = &b[i];
    items[i].c = c.empty() ? nullptr : &c[i];
    items[i].d = &d[i];
    items[i].params = params;
  }
  gemm_grouped(ctx, backend, items);
  return d;
}

std::vector<Matrix> gemm_batched(Backend backend, std::span<const Matrix> a,
                                 std::span<const Matrix> b,
                                 std::span<const Matrix> c,
                                 const GemmExParams& params) {
  return gemm_batched(default_context(), backend, a, b, c, params);
}

namespace {

/// Copies item `index` out of a (batch * rows) x cols row-major stack.
Matrix strided_slice(const Matrix& stack, std::size_t index,
                     std::size_t rows) {
  Matrix out(rows, stack.cols());
  const float* from = stack.row(index * rows);
  std::copy(from, from + rows * stack.cols(), out.data().begin());
  return out;
}

}  // namespace

Matrix gemm_batched_strided(GemmContext& ctx, Backend backend,
                            std::size_t batch, const Matrix& a,
                            const Matrix& b, const Matrix* c,
                            const GemmExParams& params) {
  if (batch == 0) return Matrix();
  EGEMM_EXPECTS(a.rows() % batch == 0);
  EGEMM_EXPECTS(b.rows() % batch == 0);
  EGEMM_EXPECTS(c == nullptr || c->rows() % batch == 0);
  const std::size_t rows_a = a.rows() / batch;
  const std::size_t rows_b = b.rows() / batch;
  std::vector<Matrix> a_items, b_items, c_items;
  a_items.reserve(batch);
  b_items.reserve(batch);
  if (c != nullptr) c_items.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    a_items.push_back(strided_slice(a, i, rows_a));
    b_items.push_back(strided_slice(b, i, rows_b));
    if (c != nullptr) {
      c_items.push_back(strided_slice(*c, i, c->rows() / batch));
    }
  }
  const std::vector<Matrix> d_items =
      gemm_batched(ctx, backend, a_items, b_items, c_items, params);
  const std::size_t m = d_items[0].rows();
  const std::size_t n = d_items[0].cols();
  Matrix d(batch * m, n);
  for (std::size_t i = 0; i < batch; ++i) {
    std::copy(d_items[i].data().begin(), d_items[i].data().end(),
              d.row(i * m));
  }
  return d;
}

Matrix gemm_batched_strided(Backend backend, std::size_t batch,
                            const Matrix& a, const Matrix& b, const Matrix* c,
                            const GemmExParams& params) {
  return gemm_batched_strided(default_context(), backend, batch, a, b, c,
                              params);
}

std::vector<Matrix> gemm_batched(GemmContext& ctx, std::span<const Matrix> a,
                                 std::span<const Matrix> b,
                                 std::span<const Matrix> c,
                                 const GemmExParams& params,
                                 const core::AccuracyContract& contract) {
  EGEMM_EXPECTS(a.size() == b.size());
  EGEMM_EXPECTS(c.empty() || c.size() == a.size());
  EGEMM_EXPECTS(params.beta == 0.0f || !c.empty());
  std::vector<Matrix> d(a.size());
  if (a.empty()) return d;
  for (std::size_t i = 1; i < a.size(); ++i) {
    EGEMM_EXPECTS(a[i].rows() == a[0].rows() && a[i].cols() == a[0].cols());
    EGEMM_EXPECTS(b[i].rows() == b[0].rows() && b[i].cols() == b[0].cols());
  }
  // One resolution against the batch-wide worst-case scale context: the
  // max over the items' |a|, |b|, |c| dominates every per-item context,
  // so the selected rung's bound is sound for the whole batch and all
  // items share one scheme (hence one plan).
  core::AccuracyContract resolved = contract;
  const bool use_c = !c.empty() && params.beta != 0.0f;
  if (resolved.a_scale <= 0.0) {
    for (const Matrix& item : a) {
      resolved.a_scale = std::max(resolved.a_scale, max_abs(item));
    }
  }
  if (resolved.b_scale <= 0.0) {
    for (const Matrix& item : b) {
      resolved.b_scale = std::max(resolved.b_scale, max_abs(item));
    }
  }
  if (resolved.c_abs <= 0.0 && use_c) {
    for (const Matrix& item : c) {
      resolved.c_abs = std::max(resolved.c_abs, max_abs(item));
    }
  }
  const core::ContractResolution resolution = gemm_ex_contract_resolution(
      a[0], b[0], use_c ? &c[0] : nullptr, params, resolved);
  if (!resolution.feasible) {
    throw_contract_infeasible(contract, resolution);
  }
  std::vector<GroupedGemmItem> items(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    items[i].a = &a[i];
    items[i].b = &b[i];
    items[i].c = c.empty() ? nullptr : &c[i];
    items[i].d = &d[i];
    items[i].params = params;
  }
  run_grouped_items(ctx, items,
                    [&ctx, &resolution](std::size_t, std::size_t m,
                                        std::size_t n, std::size_t k) {
                      return ctx.plan_scheme(resolution.scheme, m, n, k);
                    });
  return d;
}

std::vector<Matrix> gemm_batched(std::span<const Matrix> a,
                                 std::span<const Matrix> b,
                                 std::span<const Matrix> c,
                                 const GemmExParams& params,
                                 const core::AccuracyContract& contract) {
  return gemm_batched(default_context(), a, b, c, params, contract);
}

void gemm_grouped(GemmContext& ctx, std::span<const GroupedGemmItem> items,
                  const core::AccuracyContract& contract) {
  // Per-item resolution, exactly as the contract gemm_ex would do it, all
  // up front so an infeasible item throws before anything executes.
  std::vector<core::SchemeId> schemes;
  schemes.reserve(items.size());
  for (const GroupedGemmItem& item : items) {
    EGEMM_EXPECTS(item.a != nullptr && item.b != nullptr &&
                  item.d != nullptr);
    const core::ContractResolution resolution = gemm_ex_contract_resolution(
        *item.a, *item.b, item.c, item.params, contract);
    if (!resolution.feasible) {
      throw_contract_infeasible(contract, resolution);
    }
    schemes.push_back(resolution.scheme);
  }
  run_grouped_items(ctx, items,
                    [&ctx, &schemes](std::size_t i, std::size_t m,
                                     std::size_t n, std::size_t k) {
                      return ctx.plan_scheme(schemes[i], m, n, k);
                    });
}

void gemm_grouped(std::span<const GroupedGemmItem> items,
                  const core::AccuracyContract& contract) {
  gemm_grouped(default_context(), items, contract);
}

KernelTiming time_gemm(Backend backend, std::uint64_t m, std::uint64_t n,
                       std::uint64_t k, const tcsim::GpuSpec& spec) {
  switch (backend) {
    case Backend::kEgemmTC:
      return egemm_timing(m, n, k, spec);
    case Backend::kCublasFp32:
      return sgemm_fp32_timing(m, n, k, spec);
    case Backend::kCublasTcHalf:
      return tc_half_timing(m, n, k, spec);
    case Backend::kCublasTcEmulation:
      return tc_emulation_timing(m, n, k, spec);
    case Backend::kSdkFp32:
      return sdk_gemm_timing(m, n, k, spec);
    case Backend::kMarkidis:
      return markidis_timing(m, n, k, spec);
    case Backend::kDekker: {
      EgemmOptions opts;
      opts.emulation_instructions = 16;
      return egemm_timing(m, n, k, spec, opts);
    }
  }
  EGEMM_EXPECTS(!"unreachable backend");
  return KernelTiming{};
}

}  // namespace egemm::gemm
