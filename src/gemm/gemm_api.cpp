#include "gemm/gemm_api.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "gemm/plan.hpp"
#include "util/assert.hpp"

namespace egemm::gemm {

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kEgemmTC:
      return "EGEMM-TC";
    case Backend::kCublasFp32:
      return "cuBLAS-CUDA-FP32";
    case Backend::kCublasTcHalf:
      return "cuBLAS-TC-Half";
    case Backend::kCublasTcEmulation:
      return "cuBLAS-TC-Emulation";
    case Backend::kSdkFp32:
      return "SDK-CUDA-FP32";
    case Backend::kMarkidis:
      return "Markidis";
    case Backend::kDekker:
      return "Dekker";
  }
  return "?";
}

std::vector<Backend> all_backends() {
  return {Backend::kEgemmTC,       Backend::kCublasFp32,
          Backend::kCublasTcHalf,  Backend::kCublasTcEmulation,
          Backend::kSdkFp32,       Backend::kMarkidis,
          Backend::kDekker};
}

Matrix run_gemm(Backend backend, const Matrix& a, const Matrix& b,
                const Matrix* c) {
  return run_gemm(default_context(), backend, a, b, c);
}

Matrix run_gemm(GemmContext& ctx, Backend backend, const Matrix& a,
                const Matrix& b, const Matrix* c) {
  if (backend == Backend::kSdkFp32) EGEMM_EXPECTS(c == nullptr);
  return ctx.run(backend, a, b, c);
}

Matrix gemm_ex(Backend backend, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params) {
  return gemm_ex(default_context(), backend, a, b, c, params);
}

Matrix gemm_ex(GemmContext& ctx, Backend backend, const Matrix& a,
               const Matrix& b, const Matrix* c, const GemmExParams& params) {
  EGEMM_EXPECTS(params.beta == 0.0f || c != nullptr);
  const Matrix op_a =
      params.trans_a == Transpose::kTranspose ? transpose(a) : a;
  const Matrix op_b =
      params.trans_b == Transpose::kTranspose ? transpose(b) : b;
  EGEMM_EXPECTS(op_a.cols() == op_b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == op_a.rows() && c->cols() == op_b.cols()));

  // Fast paths keep the accumulation inside the kernel (beta = 1 rides the
  // Tensor Core accumulator; the SDK sample has no C input).
  if (params.alpha == 1.0f) {
    if (params.beta == 0.0f) {
      return run_gemm(ctx, backend, op_a, op_b, nullptr);
    }
    if (params.beta == 1.0f && backend != Backend::kSdkFp32) {
      return run_gemm(ctx, backend, op_a, op_b, c);
    }
  }

  // The (alpha, beta) scaling is a binary32 epilogue over the kernel
  // result, in place in D -- the epilogue needs no extra scratch.
  Matrix d = run_gemm(ctx, backend, op_a, op_b, nullptr);
  for (std::size_t i = 0; i < d.size(); ++i) {
    float value = params.alpha * d.data()[i];
    if (c != nullptr && params.beta != 0.0f) {
      value = std::fmaf(params.beta, c->data()[i], value);
    }
    d.data()[i] = value;
  }
  return d;
}

core::ContractResolution gemm_ex_contract_resolution(
    const Matrix& a, const Matrix& b, const Matrix* c,
    const GemmExParams& params, const core::AccuracyContract& contract) {
  EGEMM_EXPECTS(params.alpha != 0.0f);
  EGEMM_EXPECTS(params.beta == 0.0f || c != nullptr);
  // max |op(X)| == max |X|: transposition never changes the scale context,
  // so the scales come straight off the stored matrices.
  const std::size_t k =
      params.trans_a == Transpose::kTranspose ? a.rows() : a.cols();
  core::AccuracyContract resolved = contract;
  if (resolved.a_scale <= 0.0) resolved.a_scale = max_abs(a);
  if (resolved.b_scale <= 0.0) resolved.b_scale = max_abs(b);
  const bool use_c = c != nullptr && params.beta != 0.0f;
  if (resolved.c_abs <= 0.0) resolved.c_abs = use_c ? max_abs(*c) : 0.0;
  if (!use_c) resolved.c_abs = 0.0;

  const bool fast = params.alpha == 1.0f &&
                    (params.beta == 0.0f ||
                     (params.beta == 1.0f && c != nullptr));
  double target = contract.max_abs_error;
  double kernel_c_abs = 0.0;
  if (fast) {
    // beta == 1 rides C on the kernel accumulator; beta == 0 has no C.
    if (params.beta == 1.0f) kernel_c_abs = resolved.c_abs;
  } else {
    // Epilogue path: the kernel runs without C, then D = alpha * D0 (one
    // binary32 multiply) fma'd with beta * C (one more rounding). Both
    // roundings are at most u32 of the output scale; budget 4 u32 of it
    // out of the target and require the kernel to meet the rest (scaled
    // back by |alpha|, since its error is multiplied through).
    const double alpha = std::fabs(static_cast<double>(params.alpha));
    const double beta = std::fabs(static_cast<double>(params.beta));
    const double out_scale =
        alpha * static_cast<double>(k) * resolved.a_scale *
            resolved.b_scale +
        beta * resolved.c_abs;
    target = (target - 4.0 * 0x1.0p-24 * out_scale) / alpha;
  }
  core::AccuracyContract kernel_contract = resolved;
  kernel_contract.max_abs_error = target;
  kernel_contract.c_abs = kernel_c_abs;
  return core::resolve_contract(kernel_contract, k);
}

Matrix gemm_ex(GemmContext& ctx, const Matrix& a, const Matrix& b,
               const Matrix* c, const GemmExParams& params,
               const core::AccuracyContract& contract) {
  const core::ContractResolution resolution =
      gemm_ex_contract_resolution(a, b, c, params, contract);
  if (!resolution.feasible) {
    char message[192];
    std::snprintf(message, sizeof(message),
                  "no emulation scheme meets the accuracy contract: target "
                  "%.6g, tightest rung (%s) only proves %.6g",
                  contract.max_abs_error,
                  core::scheme_name(resolution.tightest),
                  resolution.tightest_worst_abs);
    throw std::invalid_argument(message);
  }

  const Matrix op_a =
      params.trans_a == Transpose::kTranspose ? transpose(a) : a;
  const Matrix op_b =
      params.trans_b == Transpose::kTranspose ? transpose(b) : b;
  EGEMM_EXPECTS(op_a.cols() == op_b.rows());
  EGEMM_EXPECTS(c == nullptr ||
                (c->rows() == op_a.rows() && c->cols() == op_b.cols()));

  const bool fast = params.alpha == 1.0f &&
                    (params.beta == 0.0f ||
                     (params.beta == 1.0f && c != nullptr));
  const std::shared_ptr<const GemmPlan> plan = ctx.plan_scheme(
      resolution.scheme, op_a.rows(), op_b.cols(), op_a.cols());
  Matrix d;
  plan->execute(ctx, op_a, op_b,
                fast && params.beta == 1.0f ? c : nullptr, d);
  if (!fast) {
    for (std::size_t i = 0; i < d.size(); ++i) {
      float value = params.alpha * d.data()[i];
      if (c != nullptr && params.beta != 0.0f) {
        value = std::fmaf(params.beta, c->data()[i], value);
      }
      d.data()[i] = value;
    }
  }
  return d;
}

Matrix gemm_ex(const Matrix& a, const Matrix& b, const Matrix* c,
               const GemmExParams& params,
               const core::AccuracyContract& contract) {
  return gemm_ex(default_context(), a, b, c, params, contract);
}

KernelTiming time_gemm(Backend backend, std::uint64_t m, std::uint64_t n,
                       std::uint64_t k, const tcsim::GpuSpec& spec) {
  switch (backend) {
    case Backend::kEgemmTC:
      return egemm_timing(m, n, k, spec);
    case Backend::kCublasFp32:
      return sgemm_fp32_timing(m, n, k, spec);
    case Backend::kCublasTcHalf:
      return tc_half_timing(m, n, k, spec);
    case Backend::kCublasTcEmulation:
      return tc_emulation_timing(m, n, k, spec);
    case Backend::kSdkFp32:
      return sdk_gemm_timing(m, n, k, spec);
    case Backend::kMarkidis:
      return markidis_timing(m, n, k, spec);
    case Backend::kDekker: {
      EgemmOptions opts;
      opts.emulation_instructions = 16;
      return egemm_timing(m, n, k, spec, opts);
    }
  }
  EGEMM_EXPECTS(!"unreachable backend");
  return KernelTiming{};
}

}  // namespace egemm::gemm
