#include "fp/half_batch.hpp"

#include "simd/dispatch.hpp"
#include "util/assert.hpp"

// The span fronts keep fp's typed API (spans + fp::Rounding) and route the
// flat loops through the runtime-dispatched SIMD kernel layer. The scalar
// conversion cores these kernels transcribe live in
// simd/half_convert_core.hpp (moved there from this file); every dispatched
// variant is bit-identical to them over the full input space, so this
// indirection never changes a result bit.

namespace egemm::fp {

void f32_to_f16_bits_span(std::span<const float> in,
                          std::span<std::uint16_t> out, Rounding mode) {
  EGEMM_EXPECTS(in.size() == out.size());
  simd::active_kernels().f32_to_f16_bits(in.data(), out.data(), in.size(),
                                         mode == Rounding::kNearestEven);
}

void f16_bits_to_f32_span(std::span<const std::uint16_t> in,
                          std::span<float> out) {
  EGEMM_EXPECTS(in.size() == out.size());
  simd::active_kernels().f16_bits_to_f32(in.data(), out.data(), in.size());
}

void f32_round_through_f16_span(std::span<const float> in,
                                std::span<float> out, Rounding mode) {
  EGEMM_EXPECTS(in.size() == out.size());
  simd::active_kernels().f32_round_through_f16(in.data(), out.data(),
                                               in.size(),
                                               mode == Rounding::kNearestEven);
}

}  // namespace egemm::fp
