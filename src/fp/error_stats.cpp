#include "fp/error_stats.hpp"

#include <algorithm>
#include <cmath>

#include "fp/float_bits.hpp"
#include "util/assert.hpp"

namespace egemm::fp {

void ErrorStats::accumulate(double reference, double candidate) noexcept {
  const double abs_err = std::fabs(candidate - reference);
  max_abs = std::max(max_abs, abs_err);
  sum_abs += abs_err;
  const double denom = std::max(std::fabs(reference), 1e-30);
  max_rel = std::max(max_rel, abs_err / denom);
  max_ulp = std::max(max_ulp, ulp_error(reference, candidate));
  ++count;
}

void ErrorStats::merge(const ErrorStats& other) noexcept {
  max_abs = std::max(max_abs, other.max_abs);
  max_rel = std::max(max_rel, other.max_rel);
  max_ulp = std::max(max_ulp, other.max_ulp);
  sum_abs += other.sum_abs;
  count += other.count;
}

ErrorStats compare(std::span<const double> reference,
                   std::span<const float> candidate) noexcept {
  EGEMM_EXPECTS(reference.size() == candidate.size());
  ErrorStats stats;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    stats.accumulate(reference[i], static_cast<double>(candidate[i]));
  }
  return stats;
}

ErrorStats compare(std::span<const float> reference,
                   std::span<const float> candidate) noexcept {
  EGEMM_EXPECTS(reference.size() == candidate.size());
  ErrorStats stats;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    stats.accumulate(static_cast<double>(reference[i]),
                     static_cast<double>(candidate[i]));
  }
  return stats;
}

}  // namespace egemm::fp
