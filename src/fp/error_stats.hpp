#pragma once
// Error statistics for the precision experiments (Fig. 7, §A.3).
//
// The paper reports MaxError(p) = max |V_p - V_single| (Eq. 10) over the
// output matrix, with the single-precision cuBLAS result as the reference.
// We additionally track the error against a binary64 reference and
// ULP-based measures, which the tests use for tighter invariants.

#include <cstddef>
#include <span>

namespace egemm::fp {

struct ErrorStats {
  double max_abs = 0.0;    ///< max |candidate - reference|
  double sum_abs = 0.0;    ///< for mean error
  double max_rel = 0.0;    ///< max |candidate - reference| / max(|reference|, eps)
  double max_ulp = 0.0;    ///< max error in binary32 ulps at the reference
  std::size_t count = 0;

  void accumulate(double reference, double candidate) noexcept;
  void merge(const ErrorStats& other) noexcept;
  double mean_abs() const noexcept {
    return count == 0 ? 0.0 : sum_abs / static_cast<double>(count);
  }
};

/// Element-wise comparison of two equally-sized spans.
ErrorStats compare(std::span<const double> reference,
                   std::span<const float> candidate) noexcept;
ErrorStats compare(std::span<const float> reference,
                   std::span<const float> candidate) noexcept;

}  // namespace egemm::fp
