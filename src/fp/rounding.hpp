#pragma once
// Rounding-mode selector for the software binary16 conversions.
//
// The paper's two data-split algorithms differ exactly in this mode:
// Markidis' truncate-split uses round-toward-zero, EGEMM-TC's round-split
// uses round-to-nearest-even (Fig. 4).

namespace egemm::fp {

enum class Rounding {
  kNearestEven,  ///< IEEE 754 roundTiesToEven (default binary16 rounding)
  kTowardZero,   ///< truncation of the significand magnitude
};

}  // namespace egemm::fp
