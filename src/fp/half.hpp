#pragma once
// Software IEEE 754-2008 binary16 ("half precision").
//
// This is the substrate that stands in for the GPU's native FP16 datatype
// (DESIGN.md §2). Conversions implement correct single rounding from
// binary32/binary64 under both roundTiesToEven and roundTowardZero,
// including subnormals, overflow and NaN propagation; arithmetic operators
// compute in binary64 (exact for any two binary16 operands) and round once.

#include <cstdint>
#include <string>

#include "fp/rounding.hpp"

namespace egemm::fp {

/// Converts a binary64 value to binary16 bits with a single rounding.
std::uint16_t f64_to_f16_bits(double value, Rounding mode) noexcept;

/// Converts a binary32 value to binary16 bits with a single rounding.
/// (binary32 -> binary64 is exact, so this delegates.)
std::uint16_t f32_to_f16_bits(float value, Rounding mode) noexcept;

/// Converts binary16 bits to the exactly-equal binary32 value.
float f16_bits_to_f32(std::uint16_t bits) noexcept;

/// Converts binary16 bits to the exactly-equal binary64 value.
double f16_bits_to_f64(std::uint16_t bits) noexcept;

/// Value type wrapping a binary16 bit pattern.
class Half {
 public:
  constexpr Half() noexcept = default;

  /// Rounds `value` to binary16 (roundTiesToEven unless specified).
  explicit Half(float value, Rounding mode = Rounding::kNearestEven) noexcept
      : bits_(f32_to_f16_bits(value, mode)) {}
  explicit Half(double value, Rounding mode = Rounding::kNearestEven) noexcept
      : bits_(f64_to_f16_bits(value, mode)) {}

  static constexpr Half from_bits(std::uint16_t bits) noexcept {
    Half h;
    h.bits_ = bits;
    return h;
  }

  constexpr std::uint16_t bits() const noexcept { return bits_; }

  float to_float() const noexcept { return f16_bits_to_f32(bits_); }
  double to_double() const noexcept { return f16_bits_to_f64(bits_); }

  // -- classification ------------------------------------------------------
  constexpr bool sign_bit() const noexcept { return (bits_ & 0x8000u) != 0; }
  constexpr bool is_zero() const noexcept { return (bits_ & 0x7fffu) == 0; }
  constexpr bool is_subnormal() const noexcept {
    return (bits_ & 0x7c00u) == 0 && (bits_ & 0x03ffu) != 0;
  }
  constexpr bool is_inf() const noexcept { return (bits_ & 0x7fffu) == 0x7c00u; }
  constexpr bool is_nan() const noexcept {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  constexpr bool is_finite() const noexcept {
    return (bits_ & 0x7c00u) != 0x7c00u;
  }

  // -- arithmetic (binary64 internally, one rounding to binary16) ----------
  friend Half operator+(Half a, Half b) noexcept {
    return Half(a.to_double() + b.to_double());
  }
  friend Half operator-(Half a, Half b) noexcept {
    return Half(a.to_double() - b.to_double());
  }
  friend Half operator*(Half a, Half b) noexcept {
    return Half(a.to_double() * b.to_double());
  }
  friend Half operator/(Half a, Half b) noexcept {
    return Half(a.to_double() / b.to_double());
  }
  friend Half operator-(Half a) noexcept {
    return Half::from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u));
  }

  /// IEEE equality (signed zeros equal, NaN != NaN).
  friend bool operator==(Half a, Half b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Half a, Half b) noexcept { return !(a == b); }
  friend bool operator<(Half a, Half b) noexcept {
    return a.to_double() < b.to_double();
  }

  // -- constants ------------------------------------------------------------
  static constexpr Half zero() noexcept { return from_bits(0x0000); }
  static constexpr Half one() noexcept { return from_bits(0x3c00); }
  static constexpr Half max() noexcept { return from_bits(0x7bff); }       // 65504
  static constexpr Half min_normal() noexcept { return from_bits(0x0400); }  // 2^-14
  static constexpr Half min_subnormal() noexcept { return from_bits(0x0001); }  // 2^-24
  static constexpr Half infinity() noexcept { return from_bits(0x7c00); }
  static constexpr Half quiet_nan() noexcept { return from_bits(0x7e00); }
  static constexpr int kMantissaBits = 10;   ///< explicit bits (11 with hidden)
  static constexpr int kExponentBits = 5;
  static constexpr int kExponentBias = 15;

  /// Hex bit-pattern, e.g. "0x3c00", for the profiling printouts.
  std::string hex() const;

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace egemm::fp
