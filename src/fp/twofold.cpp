#include "fp/twofold.hpp"

#include <cmath>

namespace egemm::fp {

TwoFold two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double bp = s - a;
  const double ap = s - bp;
  const double err = (a - ap) + (b - bp);
  return {s, err};
}

TwoFold fast_two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double err = b - (s - a);
  return {s, err};
}

TwoFold two_prod(double a, double b) noexcept {
  const double p = a * b;
  const double err = std::fma(a, b, -p);
  return {p, err};
}

std::pair<double, double> veltkamp_split(double a) noexcept {
  // 2^27 + 1: splits the 53-bit significand into 26 + 26 bits (the hidden
  // borrow makes both halves representable).
  constexpr double kSplitter = 134217729.0;  // 2^27 + 1
  const double c = kSplitter * a;
  const double hi = c - (c - a);
  const double lo = a - hi;
  return {hi, lo};
}

TwoFoldF two_sum_f(float a, float b) noexcept {
  const float s = a + b;
  const float bp = s - a;
  const float ap = s - bp;
  const float err = (a - ap) + (b - bp);
  return {s, err};
}

TwoFoldF two_prod_f(float a, float b) noexcept {
  const float p = a * b;
  const float err = std::fmaf(a, b, -p);
  return {p, err};
}

std::pair<float, float> veltkamp_split_f(float a) noexcept {
  constexpr float kSplitter = 4097.0f;  // 2^12 + 1: 12 + 12 bits
  const float c = kSplitter * a;
  const float hi = c - (c - a);
  const float lo = a - hi;
  return {hi, lo};
}

void dd_add(double& hi, double& lo, double x) noexcept {
  const TwoFold s = two_sum(hi, x);
  lo += s.error;
  const TwoFold n = fast_two_sum(s.value, lo);
  hi = n.value;
  lo = n.error;
}

}  // namespace egemm::fp
