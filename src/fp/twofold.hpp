#pragma once
// Error-free transformations (EFTs) over binary64/binary32.
//
// These are the classical CPU building blocks of extended-precision
// emulation (Dekker [7], Knuth [14], Priest [34], Shewchuk [36]) that the
// paper contrasts with its Tensor-Core-native design. They serve three
// roles here:
//   1. the CPU "ground truth" side of the generalized emulation-design
//      workflow (Fig. 2a computes reference results at higher precision);
//   2. the Dekker-16 baseline tile emulation (core/emulation.cpp);
//   3. property tests of the split algebra.

#include <utility>

namespace egemm::fp {

/// Sum with exact error term: a + b == sum + err (Knuth two-sum; no
/// ordering requirement on |a|, |b|).
struct TwoFold {
  double value;
  double error;
};

TwoFold two_sum(double a, double b) noexcept;

/// Faster variant requiring |a| >= |b| or a == 0.
TwoFold fast_two_sum(double a, double b) noexcept;

/// Product with exact error term via fused multiply-add:
/// a * b == value + error exactly.
TwoFold two_prod(double a, double b) noexcept;

/// Veltkamp split of a binary64 value into hi + lo where hi carries the top
/// 26 significand bits and lo the remaining 26 (both exactly representable).
std::pair<double, double> veltkamp_split(double a) noexcept;

/// Single-precision EFTs (used by the CPU-side references for the
/// half-precision pipeline, where binary32 plays the "wide" type).
struct TwoFoldF {
  float value;
  float error;
};

TwoFoldF two_sum_f(float a, float b) noexcept;
TwoFoldF two_prod_f(float a, float b) noexcept;
std::pair<float, float> veltkamp_split_f(float a) noexcept;

/// Double-double accumulation: adds `x` into the unevaluated sum (hi, lo).
void dd_add(double& hi, double& lo, double x) noexcept;

}  // namespace egemm::fp
