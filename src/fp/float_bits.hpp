#pragma once
// Bit-level utilities over IEEE binary32, used by the precision-profiling
// workflow (bitwise comparison of probing primitives, §3.1/Fig. 3) and by
// the error statistics.

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

namespace egemm::fp {

constexpr std::uint32_t f32_bits(float value) noexcept {
  return std::bit_cast<std::uint32_t>(value);
}

constexpr float f32_from_bits(std::uint32_t bits) noexcept {
  return std::bit_cast<float>(bits);
}

/// Number of leading mantissa bits on which `a` and `b` agree, assuming the
/// sign and exponent fields already agree; 24 when bit-identical (23
/// explicit bits + the hidden bit implied by the matching exponent), 0 when
/// sign or exponent differ. This is the comparison the paper's profiling
/// uses to state "identical bitwisely up to 21 mantissa bits".
constexpr int matching_mantissa_bits(float a, float b) noexcept {
  const std::uint32_t ba = f32_bits(a);
  const std::uint32_t bb = f32_bits(b);
  if (ba == bb) return 24;
  if ((ba >> 23) != (bb >> 23)) return 0;  // sign or exponent differ
  const std::uint32_t diff = (ba ^ bb) & 0x007fffffu;
  // diff != 0 here; count matching bits from the top of the 23-bit field.
  const int leading = std::countl_zero(diff) - 9;  // 32 - 23 = 9 header bits
  return 1 + leading;  // hidden bit matches via the equal exponent
}

/// Distance in units-in-the-last-place between two finite binary32 values,
/// computed on the monotone integer mapping (negative floats reflected).
constexpr std::int64_t ulp_distance(float a, float b) noexcept {
  auto ordered = [](float x) -> std::int64_t {
    const auto bits = static_cast<std::int32_t>(f32_bits(x));
    return bits >= 0 ? bits
                     : static_cast<std::int64_t>(0x80000000LL) - bits;
  };
  const std::int64_t d = ordered(a) - ordered(b);
  return d < 0 ? -d : d;
}

/// Size of one unit in the last place of the binary32 grid at `magnitude`
/// (a binary64 value): 2^(e-23) for normal magnitudes 2^e <= |x| < 2^(e+1),
/// the subnormal quantum 2^-149 below the normal range, and the ulp of the
/// top binade (2^104) at or beyond the overflow threshold. The verification
/// subsystem uses this to express absolute errors and a-priori bounds in
/// float ulps against a binary64/double-double reference.
inline double f32_ulp_at(double magnitude) noexcept {
  const double mag = magnitude < 0.0 ? -magnitude : magnitude;
  if (std::isnan(mag)) return std::numeric_limits<double>::quiet_NaN();
  if (mag < 0x1.0p-126) return 0x1.0p-149;  // subnormal quantum
  if (mag >= 0x1.0p128) return 0x1.0p104;   // ulp of the top binade
  int exp = 0;
  (void)std::frexp(mag, &exp);  // mag = f * 2^exp with f in [0.5, 1)
  return std::ldexp(1.0, exp - 24);
}

/// |candidate - reference| measured in binary32 ulps at the reference's
/// magnitude; +inf when exactly one side is non-finite, 0 when both are NaN
/// or both the same infinity. `candidate` is a binary64 value so callers
/// can pass a float exactly.
inline double ulp_error(double reference, double candidate) noexcept {
  if (std::isnan(reference) || std::isnan(candidate)) {
    return std::isnan(reference) && std::isnan(candidate)
               ? 0.0
               : std::numeric_limits<double>::infinity();
  }
  if (std::isinf(reference) || std::isinf(candidate)) {
    return reference == candidate ? 0.0
                                  : std::numeric_limits<double>::infinity();
  }
  const double diff = candidate - reference;
  return (diff < 0.0 ? -diff : diff) / f32_ulp_at(reference);
}

/// Hex bit-pattern, e.g. "0x3f800000", matching the artifact's printouts.
inline std::string f32_hex(float value) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "0x%08x", f32_bits(value));
  return buffer;
}

}  // namespace egemm::fp
