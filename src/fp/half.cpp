#include "fp/half.hpp"

#include <bit>
#include <cstdio>

namespace egemm::fp {

namespace {

constexpr std::uint64_t kF64AbsMask = 0x7fffffffffffffffULL;
constexpr std::uint64_t kF64InfBits = 0x7ff0000000000000ULL;
constexpr int kF64MantissaBits = 52;

}  // namespace

std::uint16_t f64_to_f16_bits(double value, Rounding mode) noexcept {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  const auto sign = static_cast<std::uint16_t>((bits >> 48) & 0x8000u);
  const std::uint64_t abs = bits & kF64AbsMask;

  if (abs >= kF64InfBits) {
    if (abs > kF64InfBits) {
      return static_cast<std::uint16_t>(sign | 0x7e00u);  // quiet NaN
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);  // +-inf (any mode)
  }
  if (abs == 0) return sign;

  const int exp64 = static_cast<int>(abs >> kF64MantissaBits);
  if (exp64 == 0) {
    // binary64 subnormal: |value| < 2^-1022, far below the smallest binary16
    // subnormal midpoint (2^-25); rounds to signed zero under both modes.
    return sign;
  }

  const int unbiased = exp64 - 1023;
  // value = sig * 2^(unbiased - 52), with sig holding the hidden bit.
  const std::uint64_t sig =
      (abs & ((1ULL << kF64MantissaBits) - 1)) | (1ULL << kF64MantissaBits);

  const int half_biased = unbiased + Half::kExponentBias;
  if (half_biased >= 31) {
    // |value| >= 2^16: above the largest finite/infinity midpoint.
    return static_cast<std::uint16_t>(
        sign | (mode == Rounding::kNearestEven ? 0x7c00u : 0x7bffu));
  }

  // Keep 11 significand bits for normals; for subnormal targets shift the
  // significand further right so the integer rounding below lands on the
  // fixed 2^-24 grid.
  int shift = kF64MantissaBits - Half::kMantissaBits;  // 42
  if (half_biased < 1) shift += 1 - half_biased;
  if (shift >= 64) return sign;  // |value| < 2^-35: rounds to zero

  const std::uint64_t floor = sig >> shift;
  std::uint64_t rounded = floor;
  if (mode == Rounding::kNearestEven) {
    const std::uint64_t rem = sig & ((1ULL << shift) - 1);
    const std::uint64_t midpoint = 1ULL << (shift - 1);
    if (rem > midpoint || (rem == midpoint && (floor & 1))) ++rounded;
  }

  std::uint16_t magnitude;
  if (half_biased >= 1) {
    // `rounded` carries the hidden bit at position 10; a carry out of the
    // significand (rounded == 0x800) bumps the exponent for free, including
    // the 65504 -> inf carry at half_biased == 30.
    magnitude = static_cast<std::uint16_t>(
        rounded + (static_cast<std::uint64_t>(half_biased - 1) << 10));
  } else {
    // Subnormal result; a carry to 0x400 is exactly the minimum normal.
    magnitude = static_cast<std::uint16_t>(rounded);
  }
  return static_cast<std::uint16_t>(sign | magnitude);
}

std::uint16_t f32_to_f16_bits(float value, Rounding mode) noexcept {
  return f64_to_f16_bits(static_cast<double>(value), mode);
}

float f16_bits_to_f32(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1fu;
  std::uint32_t man = bits & 0x3ffu;

  std::uint32_t out;
  if (exp == 0) {
    if (man == 0) {
      out = sign;
    } else {
      // Subnormal: normalize into binary32, which has headroom to spare.
      std::uint32_t biased = 127 - 14;
      while ((man & 0x400u) == 0) {
        man <<= 1;
        --biased;
      }
      man &= 0x3ffu;
      out = sign | (biased << 23) | (man << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7f800000u | (man << 13);  // inf / NaN (payload shifted)
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (man << 13);
  }
  return std::bit_cast<float>(out);
}

double f16_bits_to_f64(std::uint16_t bits) noexcept {
  return static_cast<double>(f16_bits_to_f32(bits));  // exact widening
}

std::string Half::hex() const {
  char buffer[8];
  std::snprintf(buffer, sizeof buffer, "0x%04x", bits_);
  return buffer;
}

}  // namespace egemm::fp
