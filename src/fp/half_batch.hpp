#pragma once
// Batched binary16 conversion kernels for the functional hot path.
//
// The scalar `fp::Half` constructor routes every conversion through
// binary64 (`f64_to_f16_bits`), which is convenient for the bit-accuracy
// proofs but costs a widening, a 64-bit shift cascade and a function call
// per element. The O(N^2) data-split pass (§3.2) converts every matrix
// element twice, so the GEMM front-end wants a flat, branch-light loop the
// compiler can vectorize.
//
// Every kernel here is BIT-IDENTICAL to its scalar counterpart -- the
// 32-bit integer rounding core (simd/half_convert_core.hpp) mirrors
// `f64_to_f16_bits` exactly (the binary32 -> binary64 widening is exact,
// so the rounding decisions are the same; verified exhaustively over all
// 2^32 inputs in both modes). tests/test_half.cpp pins the equivalence on
// boundary and random inputs.
//
// These fronts dispatch through the runtime SIMD layer (DESIGN.md §15):
// the flat loops run as scalar, AVX2 or AVX-512 lane-for-lane
// transcriptions of the same core, selected once per process from CPUID
// (overridable via EGEMM_FORCE_ISA). tests/test_simd_dispatch.cpp pins
// every variant against the scalar core over the full binary16 value
// space, so the dispatch never changes a result bit.

#include <cstdint>
#include <span>

#include "fp/rounding.hpp"

namespace egemm::fp {

/// Converts a contiguous span of binary32 values to binary16 bits with a
/// single rounding each; out[i] == f32_to_f16_bits(in[i], mode).
void f32_to_f16_bits_span(std::span<const float> in,
                          std::span<std::uint16_t> out, Rounding mode);

/// Widens a contiguous span of binary16 bit patterns to the exactly-equal
/// binary32 values; out[i] == f16_bits_to_f32(in[i]).
void f16_bits_to_f32_span(std::span<const std::uint16_t> in,
                          std::span<float> out);

/// Fused round-trip: rounds each binary32 value to its nearest (or
/// toward-zero) binary16 neighbour and widens back to binary32 in one
/// pass -- the data-split building block, with no uint16 staging buffer.
/// out[i] == f16_bits_to_f32(f32_to_f16_bits(in[i], mode)).
void f32_round_through_f16_span(std::span<const float> in,
                                std::span<float> out, Rounding mode);

}  // namespace egemm::fp
