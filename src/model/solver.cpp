#include "model/solver.hpp"

#include <algorithm>
#include <array>

#include "util/assert.hpp"

namespace egemm::model {

namespace {

constexpr int kBlockDims[] = {32, 64, 128, 256};
constexpr int kBlockK[] = {8, 16, 32, 64};
constexpr int kWarpM[] = {16, 32, 64, 128};
constexpr int kWarpN[] = {8, 16, 32, 64, 128};
constexpr int kWarpK[] = {8, 16, 32};

/// Scheduler-feed heuristic: an SM has four scheduler partitions; fewer
/// than two warps per partition cannot hide even ALU latency, so blocks
/// with < 8 warps are excluded from the search (Table 4 runs 8).
constexpr int kMinWarps = 8;
constexpr int kMaxWarps = 32;

double warp_compute_ratio(const ModelEval& eval) noexcept {
  return eval.t_mem2 > 0.0 ? eval.t_comp / eval.t_mem2 : 0.0;
}

}  // namespace

bool objective_less(const SolverCandidate& b, const SolverCandidate& a) {
  // Returns true when `a` is strictly better than `b`.
  if (a.eval.compute_intensity != b.eval.compute_intensity) {
    return a.eval.compute_intensity > b.eval.compute_intensity;
  }
  const double ra = warp_compute_ratio(a.eval);
  const double rb = warp_compute_ratio(b.eval);
  if (ra != rb) return ra > rb;
  if (a.eval.compute_margin() != b.eval.compute_margin()) {
    return a.eval.compute_margin() > b.eval.compute_margin();
  }
  // M-major warp assignment preference.
  const int da = a.config.wm - a.config.wn;
  const int db = b.config.wm - b.config.wn;
  if (da != db) return da > db;
  // Final deterministic tie-break: lexicographic on the tuple.
  const auto key = [](const gemm::TileConfig& c) {
    return std::array<int, 6>{c.bm, c.bn, c.bk, c.wm, c.wn, c.wk};
  };
  return key(a.config) < key(b.config);
}

SolverResult solve(const ResourceBudget& budget) {
  SolverResult result;
  for (const int bm : kBlockDims) {
    for (const int bn : kBlockDims) {
      for (const int bk : kBlockK) {
        for (const int wm : kWarpM) {
          for (const int wn : kWarpN) {
            for (const int wk : kWarpK) {
              const gemm::TileConfig config{bm, bn, bk, wm, wn, wk};
              if (!config.valid()) continue;
              const int warps = config.warps_per_block();
              if (warps < kMinWarps || warps > kMaxWarps) continue;
              ++result.explored;

              const ModelEval eval = evaluate_config(config, budget);
              if (!eval.feasible()) continue;
              result.feasible.push_back(SolverCandidate{config, eval});
            }
          }
        }
      }
    }
  }

  std::sort(result.feasible.begin(), result.feasible.end(),
            [](const SolverCandidate& x, const SolverCandidate& y) {
              return objective_less(y, x);  // best first
            });
  if (!result.feasible.empty()) {
    result.found = true;
    result.best = result.feasible.front().config;
    result.best_eval = result.feasible.front().eval;
  }
  return result;
}

}  // namespace egemm::model
