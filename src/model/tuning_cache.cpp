#include "model/tuning_cache.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "simd/isa.hpp"

namespace egemm::model {

namespace {

/// Largest bucketed extent: every axis above 1024 lands in one "large"
/// class, where the per-GEMM schedule already saturates the pool and a
/// tuned grain stops mattering.
constexpr std::uint32_t kLargeBucket = 2048;

std::uint32_t bucket_extent(std::size_t x) noexcept {
  if (x <= 1) return 1;
  if (x > 1024) return kLargeBucket;
  std::uint32_t b = 1;
  while (b < x) b <<= 1;
  return b;
}

// -- minimal JSON reader -----------------------------------------------------
// Hand-rolled for the tuning-file subset (objects, arrays, strings,
// numbers, bools, null); the repo bakes in no JSON dependency and the
// bench-side parser lives above this layer. Strict enough to reject
// truncated or trailing-garbage files.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JsonValue& out) {
    if (!parse_value(out)) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ != end_ &&
           std::isspace(static_cast<unsigned char>(*p_)) != 0) {
      ++p_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return parse_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return parse_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return parse_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(const char* lit) {
    for (; *lit != '\0'; ++lit, ++p_) {
      if (p_ == end_ || *p_ != *lit) return false;
    }
    return true;
  }

  bool parse_number(JsonValue& out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) != 0 ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p_)) != 0;
      ++p_;
    }
    if (!digits) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  bool parse_string(std::string& out) {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return false;  // \uXXXX never appears in tuning files
        }
        ++p_;
      } else {
        out += *p_++;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      if (consume(',')) continue;
      return consume('}');
    }
  }

  const char* p_;
  const char* end_;
};

bool json_size(const JsonValue* v, std::size_t* out) {
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber || v->number < 0) {
    return false;
  }
  *out = static_cast<std::size_t>(v->number);
  return true;
}

bool json_int(const JsonValue* v, int* out) {
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  *out = static_cast<int>(v->number);
  return true;
}

/// "MxNxK" -> bucketed class; the stored buckets must already be buckets
/// (a file keyed off-bucket would silently never hit).
bool parse_shape_class(const std::string& name, TuningShapeClass* out) {
  unsigned long m = 0;
  unsigned long n = 0;
  unsigned long k = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "%lux%lux%lu%c", &m, &n, &k, &tail) != 3) {
    return false;
  }
  if (m == 0 || n == 0 || k == 0) return false;
  out->m = static_cast<std::uint32_t>(m);
  out->n = static_cast<std::uint32_t>(n);
  out->k = static_cast<std::uint32_t>(k);
  return *out == tuning_shape_class(m, n, k);
}

bool parse_entry(const JsonValue& v, TuningEntry* out, std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = "entry is not an object";
    return false;
  }
  const JsonValue* shape = v.find("shape_class");
  if (shape == nullptr || shape->kind != JsonValue::Kind::kString ||
      !parse_shape_class(shape->string, &out->shape)) {
    *error = "entry has a missing or off-bucket shape_class";
    return false;
  }
  const JsonValue* tile = v.find("tile");
  if (tile == nullptr || tile->kind != JsonValue::Kind::kObject ||
      !json_int(tile->find("bm"), &out->tile.bm) ||
      !json_int(tile->find("bn"), &out->tile.bn) ||
      !json_int(tile->find("bk"), &out->tile.bk) ||
      !json_int(tile->find("wm"), &out->tile.wm) ||
      !json_int(tile->find("wn"), &out->tile.wn) ||
      !json_int(tile->find("wk"), &out->tile.wk)) {
    *error = "entry " + shape->string + " has an invalid tile";
    return false;
  }
  if (!json_size(v.find("grain"), &out->grain)) {
    *error = "entry " + shape->string + " has an invalid grain";
    return false;
  }
  const JsonValue* engine = v.find("engine");
  if (engine == nullptr || engine->kind != JsonValue::Kind::kString ||
      (engine->string != "packed" && engine->string != "reference")) {
    *error = "entry " + shape->string + " has an invalid engine";
    return false;
  }
  out->engine = engine->string;
  const JsonValue* isa = v.find("isa");
  if (isa == nullptr || isa->kind != JsonValue::Kind::kString ||
      !simd::parse_isa_name(isa->string)) {
    *error = "entry " + shape->string + " has an invalid isa";
    return false;
  }
  out->isa = isa->string;
  const JsonValue* ns = v.find("ns_per_call");
  if (ns != nullptr && ns->kind == JsonValue::Kind::kNumber) {
    out->ns_per_call = ns->number;
  }
  const JsonValue* gf = v.find("gflops");
  if (gf != nullptr && gf->kind == JsonValue::Kind::kNumber) {
    out->gflops = gf->number;
  }
  return true;
}

void count_lookup(TuningLookup outcome) {
  switch (outcome) {
    case TuningLookup::kHit:
      EGEMM_COUNTER_ADD("gemm.tune.hit", 1);
      break;
    case TuningLookup::kMiss:
      EGEMM_COUNTER_ADD("gemm.tune.miss", 1);
      break;
    case TuningLookup::kNoFile:
      EGEMM_COUNTER_ADD("gemm.tune.fallback", 1);
      break;
  }
}

void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

TuningShapeClass tuning_shape_class(std::size_t m, std::size_t n,
                                    std::size_t k) noexcept {
  return TuningShapeClass{bucket_extent(m), bucket_extent(n),
                          bucket_extent(k)};
}

std::string tuning_shape_class_name(const TuningShapeClass& cls) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%ux%ux%u", cls.m, cls.n, cls.k);
  return buf;
}

bool TuningCache::load_file(const std::string& path, std::string* error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return load_locked(path, error);
}

bool TuningCache::load_locked(const std::string& path,
                              std::string* error) const {
  env_checked_ = true;
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      loaded_ = false;
      entries_.clear();
      inline_threshold_.reset();
      source_.clear();
      if (error != nullptr) *error = "cannot open " + path;
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  std::string why;
  std::vector<TuningEntry> parsed;
  std::optional<std::size_t> threshold;
  JsonValue root;
  bool ok = JsonParser(text).parse(root) &&
            root.kind == JsonValue::Kind::kObject;
  if (!ok) why = "malformed JSON";
  if (ok) {
    const JsonValue* schema = root.find("schema");
    const JsonValue* version = root.find("version");
    int v = -1;
    if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
        schema->string != kTuningSchemaName) {
      ok = false;
      why = "schema tag is not " + std::string(kTuningSchemaName);
    } else if (!json_int(version, &v) || v != kTuningSchemaVersion) {
      ok = false;
      why = "stale schema version (want " +
            std::to_string(kTuningSchemaVersion) + ")";
    }
  }
  if (ok) {
    const JsonValue* thr = root.find("small_gemm_inline_threshold");
    if (thr != nullptr) {
      std::size_t value = 0;
      if (!json_size(thr, &value)) {
        ok = false;
        why = "invalid small_gemm_inline_threshold";
      } else {
        threshold = value;
      }
    }
  }
  if (ok) {
    const JsonValue* entries = root.find("entries");
    if (entries == nullptr || entries->kind != JsonValue::Kind::kArray) {
      ok = false;
      why = "missing entries array";
    } else {
      for (const JsonValue& v : entries->array) {
        TuningEntry entry;
        if (!parse_entry(v, &entry, &why)) {
          ok = false;
          break;
        }
        parsed.push_back(std::move(entry));
      }
    }
  }

  if (!ok) {
    loaded_ = false;
    entries_.clear();
    inline_threshold_.reset();
    source_.clear();
    if (error != nullptr) *error = path + ": " + why;
    return false;
  }
  loaded_ = true;
  source_ = path;
  entries_ = std::move(parsed);
  inline_threshold_ = threshold;
  return true;
}

void TuningCache::set_entries(std::vector<TuningEntry> entries) {
  const std::lock_guard<std::mutex> lock(mutex_);
  env_checked_ = true;
  loaded_ = true;
  source_ = "<direct>";
  entries_ = std::move(entries);
}

void TuningCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  env_checked_ = false;
  loaded_ = false;
  source_.clear();
  entries_.clear();
  inline_threshold_.reset();
}

bool TuningCache::loaded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  maybe_load_env_locked();
  return loaded_;
}

std::size_t TuningCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  maybe_load_env_locked();
  return entries_.size();
}

std::string TuningCache::source() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  maybe_load_env_locked();
  return source_;
}

void TuningCache::maybe_load_env_locked() const {
  if (env_checked_) return;
  env_checked_ = true;
  const char* path = std::getenv("EGEMM_TUNING_FILE");
  if (path == nullptr || *path == '\0') return;
  std::string error;
  if (!load_locked(path, &error)) {
    std::fprintf(stderr, "egemm: ignoring EGEMM_TUNING_FILE: %s\n",
                 error.c_str());
  }
}

TuningLookup TuningCache::lookup(std::size_t m, std::size_t n, std::size_t k,
                                 TuningEntry* out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  maybe_load_env_locked();
  if (!loaded_) {
    count_lookup(TuningLookup::kNoFile);
    return TuningLookup::kNoFile;
  }
  const TuningShapeClass cls = tuning_shape_class(m, n, k);
  const char* active = simd::active_isa_name();
  const TuningEntry* any = nullptr;
  const TuningEntry* tier = nullptr;
  for (const TuningEntry& entry : entries_) {
    if (!(entry.shape == cls)) continue;
    if (any == nullptr) any = &entry;
    if (tier == nullptr && entry.isa == active) tier = &entry;
  }
  const TuningEntry* best = tier != nullptr ? tier : any;
  if (best == nullptr) {
    count_lookup(TuningLookup::kMiss);
    return TuningLookup::kMiss;
  }
  if (out != nullptr) *out = *best;
  count_lookup(TuningLookup::kHit);
  return TuningLookup::kHit;
}

std::optional<std::size_t> TuningCache::inline_threshold() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  maybe_load_env_locked();
  return inline_threshold_;
}

TuningCache& TuningCache::global() {
  static TuningCache cache;
  return cache;
}

std::string TuningCache::to_json(std::span<const TuningEntry> entries,
                                 const std::string& generator,
                                 std::optional<std::size_t> inline_threshold) {
  std::string out = "{\n";
  out += "  \"schema\": \"";
  out += kTuningSchemaName;
  out += "\",\n  \"version\": ";
  out += std::to_string(kTuningSchemaVersion);
  out += ",\n  \"generator\": \"";
  out += generator;  // callers pass plain tool tags, no escaping needed
  out += "\",\n";
  if (inline_threshold) {
    out += "  \"small_gemm_inline_threshold\": ";
    out += std::to_string(*inline_threshold);
    out += ",\n";
  }
  out += "  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TuningEntry& e = entries[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"shape_class\": \"";
    out += tuning_shape_class_name(e.shape);
    out += "\",\n     \"tile\": {\"bm\": " + std::to_string(e.tile.bm) +
           ", \"bn\": " + std::to_string(e.tile.bn) +
           ", \"bk\": " + std::to_string(e.tile.bk) +
           ", \"wm\": " + std::to_string(e.tile.wm) +
           ", \"wn\": " + std::to_string(e.tile.wn) +
           ", \"wk\": " + std::to_string(e.tile.wk) + "},\n";
    out += "     \"grain\": " + std::to_string(e.grain);
    out += ", \"engine\": \"" + e.engine + "\"";
    out += ", \"isa\": \"" + e.isa + "\"";
    out += ", \"ns_per_call\": ";
    append_json_double(out, e.ns_per_call);
    out += ", \"gflops\": ";
    append_json_double(out, e.gflops);
    out += "}";
  }
  out += entries.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace egemm::model
