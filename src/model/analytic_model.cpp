#include "model/analytic_model.hpp"

#include "tcsim/register_alloc.hpp"
#include "util/assert.hpp"

namespace egemm::model {

ResourceBudget budget_from_spec(const tcsim::GpuSpec& spec) {
  ResourceBudget budget;
  budget.shared_memory_bytes = spec.shared_memory_per_sm;
  budget.register_bytes = spec.register_file_per_sm;
  budget.max_registers_per_thread = spec.max_registers_per_thread;
  budget.peak_tc_tflops = spec.peak_fp16_tc_tflops;
  budget.l2_gbps = spec.l2_bandwidth_gbps;
  budget.clock_ghz = spec.clock_ghz;
  budget.sm_count = spec.sm_count;
  return budget;
}

ModelTimes times_from_budget(const ResourceBudget& budget) {
  ModelTimes times;
  // One HMMA.1688 retires 2048 FLOPs; the per-SM peak rate fixes its issue
  // interval. One LDG.128 moves 512 bytes against this SM's L2 share.
  const double flops_per_cycle_per_sm =
      budget.peak_tc_tflops * 1e12 /
      (budget.clock_ghz * 1e9 * static_cast<double>(budget.sm_count));
  times.t_hmma = 2048.0 / flops_per_cycle_per_sm;
  const double l2_bytes_per_cycle_per_sm =
      budget.l2_gbps * 1e9 /
      (budget.clock_ghz * 1e9 * static_cast<double>(budget.sm_count));
  times.t_ldg128 = 512.0 / l2_bytes_per_cycle_per_sm;
  return times;
}

ModelEval evaluate_config(const gemm::TileConfig& config,
                          const ResourceBudget& budget) {
  EGEMM_EXPECTS(config.valid());
  const ModelTimes times = times_from_budget(budget);
  const double bm = config.bm, bn = config.bn, bk = config.bk;
  const double wm = config.wm, wn = config.wn, wk = config.wk;

  ModelEval eval;
  // Eq. 2: lo+hi halves of the A and B block tiles.
  eval.global_bytes_per_iter = 4.0 * (bm + bn) * bk;
  // Eq. 3: 4 Tensor Core calls per emulated operation.
  eval.flops_per_iter = 8.0 * bm * bn * bk;
  // Eq. 4.
  eval.compute_intensity = 2.0 * bm * bn / (bm + bn);

  // Eq. 5: #HMMA.1688 x T_HMMA.
  const double hmma_count = eval.flops_per_iter / 2048.0;
  eval.t_comp = hmma_count * times.t_hmma;
  // Eq. 6: the block tile travels global -> register -> shared in 128-bit
  // warp transactions (512 B each).
  const double ldg_count = eval.global_bytes_per_iter / 512.0;
  eval.t_mem1 = ldg_count * (times.t_ldg128 + times.t_sts128);
  // Eq. 7: per-warp fragment loads, 2(wm + wn)/8 LDS.32 per TC tile chain.
  eval.t_mem2 = (bm * bn * bk) / (wm * wn * wk) *
                (2.0 * wm / 8.0 + 2.0 * wn / 8.0) * times.t_lds32;

  // Eq. 8 first constraint: 4 bm bn (C accumulator FRAG) + 4(bm+bn)bk
  // (pipelined LDG staging) bytes of registers.
  eval.register_demand_bytes = static_cast<std::size_t>(
      4.0 * bm * bn + 4.0 * (bm + bn) * bk);
  eval.fits_registers = eval.register_demand_bytes <= budget.register_bytes;

  // Eq. 8 second constraint (with the Table 4 padding).
  eval.shared_demand_bytes = config.shared_memory_bytes();
  eval.fits_shared = eval.shared_demand_bytes <= budget.shared_memory_bytes;

  // Per-thread allocation through the §5.2 stage allocator.
  const tcsim::AllocationResult regs = tcsim::allocate_registers(
      tcsim::egemm_register_plan(config.bm, config.bn, config.bk, config.wm,
                                 config.wn, config.wk,
                                 config.threads_per_block()),
      budget.max_registers_per_thread);
  eval.registers_per_thread = regs.per_thread;
  eval.no_register_spill = !regs.spills;
  // The whole block's allocation must also fit the 256 KB register file
  // (threads x per-thread registers x 4 bytes) -- this is what rules out
  // wider-than-Table-4 block tiles whose accumulator spreads over more
  // threads but whose block total explodes.
  eval.fits_register_file =
      static_cast<std::size_t>(config.threads_per_block()) *
          static_cast<std::size_t>(regs.per_thread) * 4 <=
      budget.register_bytes;

  // Eq. 8 third constraint.
  eval.compute_bound = eval.t_mem1 + eval.t_mem2 <= eval.t_comp;
  return eval;
}

int estimated_registers_per_thread(const gemm::TileConfig& config,
                                   int max_registers_per_thread) {
  EGEMM_EXPECTS(config.valid());
  const tcsim::AllocationResult regs = tcsim::allocate_registers(
      tcsim::egemm_register_plan(config.bm, config.bn, config.bk, config.wm,
                                 config.wn, config.wk,
                                 config.threads_per_block()),
      max_registers_per_thread);
  return regs.per_thread;
}

}  // namespace egemm::model
