#pragma once
// Hardware-aware analytic model (§6): resource consumption (Eqs. 2-7) and
// feasibility of a tiling against a resource budget (Eq. 8's constraints).
//
// The model works per main-loop iteration of one GPU block:
//   global traffic   4(bm+bn)bk bytes                     (Eq. 2)
//   FLOPs            8 bm bn bk (the 4x emulation inside) (Eq. 3)
//   intensity        2 bm bn / (bm + bn)                  (Eq. 4)
//   T_comp           #HMMA x T_HMMA                       (Eq. 5)
//   T_mem1           #(LDG+STS).128 x (T_LDG + T_STS)     (Eq. 6)
//   T_mem2           #LDS.32 x T_LDS                      (Eq. 7)
// and declares a tiling feasible when registers and shared memory fit, the
// register allocator does not spill, at least one block is resident per
// SM, and T_mem1 + T_mem2 <= T_comp (compute bound, leaving latency-hiding
// headroom).

#include <cstddef>

#include "gemm/tiling.hpp"
#include "tcsim/gpu_spec.hpp"

namespace egemm::model {

/// Table 3: the small set of budgets the user supplies per GPU.
struct ResourceBudget {
  std::size_t shared_memory_bytes = 64 * 1024;
  std::size_t register_bytes = 256 * 1024;
  int max_registers_per_thread = 256;
  double peak_tc_tflops = 65.0;  ///< "Peak Computation 2^6 TFLOPS"
  double l2_gbps = 750.0;        ///< "L2 Cache Speed 750 GB/s"
  double clock_ghz = 1.59;
  int sm_count = 40;
};

ResourceBudget budget_from_spec(const tcsim::GpuSpec& spec);

/// Per-instruction costs used by Eqs. 5-7, derived from the budget.
struct ModelTimes {
  double t_hmma = 2.0;     ///< cycles per HMMA.1688 at SM aggregate rate
  double t_ldg128 = 43.0;  ///< cycles per LDG.128 at the L2 share
  double t_sts128 = 1.0;
  double t_lds32 = 1.0;
};
ModelTimes times_from_budget(const ResourceBudget& budget);

struct ModelEval {
  // Eq. 2-4.
  double global_bytes_per_iter = 0.0;
  double flops_per_iter = 0.0;
  double compute_intensity = 0.0;

  // Eq. 5-7, cycles per iteration.
  double t_comp = 0.0;
  double t_mem1 = 0.0;
  double t_mem2 = 0.0;

  // Resource demands.
  std::size_t register_demand_bytes = 0;
  std::size_t shared_demand_bytes = 0;
  int registers_per_thread = 0;

  // Constraint verdicts (Eq. 8).
  bool fits_registers = false;       ///< FRAG demand vs register file
  bool fits_register_file = false;   ///< threads x per-thread allocation
  bool fits_shared = false;
  bool no_register_spill = false;
  bool compute_bound = false;

  bool feasible() const noexcept {
    return fits_registers && fits_register_file && fits_shared &&
           no_register_spill && compute_bound;
  }
  /// Compute-over-memory headroom in cycles (latency-hiding slack).
  double compute_margin() const noexcept { return t_comp - (t_mem1 + t_mem2); }
};

/// Evaluates one tiling against a budget.
ModelEval evaluate_config(const gemm::TileConfig& config,
                          const ResourceBudget& budget);

/// The model's per-thread register estimate for a tiling (the §5.2 stage
/// plan fed through the simulator's allocator) -- the reference the EG403
/// lint pass cross-checks the SASS IR allocation against.
int estimated_registers_per_thread(const gemm::TileConfig& config,
                                   int max_registers_per_thread = 256);

}  // namespace egemm::model
