#pragma once
// Analytic solver (§6.2): turns hyper-parameter selection into a
// constrained maximization of the compute intensity (Eq. 8) over the
// six-parameter design space, replacing trial-and-error tuning.
//
// The objective hierarchy:
//   1. maximize compute intensity 2 bm bn / (bm + bn)   (Eq. 4)
//   2. maximize active warps per block (latency-hiding capacity)
//   3. maximize the compute-over-memory margin (more hiding headroom)
//   4. prefer wm >= wn (M-major warp assignment, matching the kernel)
// subject to every Eq. 8 constraint (registers, shared memory, per-thread
// allocation without spill, compute-bound iteration).
//
// On the Table 3 budget this reproduces Table 4 exactly:
// (128,128,32)/(64,32,8), 36 KB shared memory, 1 block/SM, 8 warps.

#include <vector>

#include "gemm/tiling.hpp"
#include "model/analytic_model.hpp"

namespace egemm::model {

struct SolverCandidate {
  gemm::TileConfig config;
  ModelEval eval;
};

struct SolverResult {
  bool found = false;
  gemm::TileConfig best;
  ModelEval best_eval;
  /// All feasible candidates, best first (for the design-space report).
  std::vector<SolverCandidate> feasible;
  std::size_t explored = 0;
};

/// Enumerates the design space (power-of-two tilings within hardware
/// plausibility) and returns the constrained maximizer.
SolverResult solve(const ResourceBudget& budget);

/// True when `a` beats `b` under the objective hierarchy above.
bool objective_less(const SolverCandidate& b, const SolverCandidate& a);

}  // namespace egemm::model
