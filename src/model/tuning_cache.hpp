#pragma once
// Shape-class autotuning cache (DESIGN.md §18).
//
// The analytic model (§6) predicts a good tiling from first principles;
// this layer complements it with *measured* winners, cuGemmProf-style:
// an offline sweep (bench_micro --tune) profiles engines x ISA tiers x
// scheduler grains per shape class and persists the winners to a
// versioned JSON tuning file. At plan time GemmPlan consults the cache
// first and falls back to the analytic model when the file is absent,
// stale (schema/version mismatch), or has no entry for the class --
// observable as the gemm.tune.{hit,miss,fallback} counters.
//
// Shape classes bucket each extent to its next power of two (64-1024
// covers the production small-GEMM traffic; everything above 1024 shares
// one class per axis). Buckets keep the file small and make a tuned entry
// apply to the whole neighborhood it was measured in.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gemm/tiling.hpp"

namespace egemm::model {

/// Bump when the entry layout changes incompatibly; readers reject other
/// versions as stale (the fallback counter, never a crash).
inline constexpr int kTuningSchemaVersion = 1;

/// The JSON "schema" tag every tuning file must carry.
inline constexpr const char* kTuningSchemaName = "egemm-tuning";

/// Power-of-two bucketed (m, n, k) equivalence class.
struct TuningShapeClass {
  std::uint32_t m = 0, n = 0, k = 0;

  friend bool operator==(const TuningShapeClass&,
                         const TuningShapeClass&) = default;
};

TuningShapeClass tuning_shape_class(std::size_t m, std::size_t n,
                                    std::size_t k) noexcept;

/// "128x128x128" -- the key format used in the JSON file.
std::string tuning_shape_class_name(const TuningShapeClass& cls);

/// One measured winner for a shape class. `tile` is the §6 tiling the
/// sweep ran under (informational on the host: the simulated-GPU timing
/// depends on it, host wall time does not); `grain` is the 2D scheduler
/// block size in output tiles (0 = pool default); `engine`/`isa` name the
/// configuration that won the sweep.
struct TuningEntry {
  TuningShapeClass shape;
  gemm::TileConfig tile{};
  std::size_t grain = 0;
  std::string engine;  ///< "packed" | "reference"
  std::string isa;     ///< "scalar" | "avx2" | "avx512"
  double ns_per_call = 0.0;
  double gflops = 0.0;
};

enum class TuningLookup {
  kHit,     ///< file loaded and an entry covers the class
  kMiss,    ///< file loaded but no entry for the class
  kNoFile,  ///< no usable file (absent, unparsable, or stale)
};

/// Process-wide tuning table. Thread-safe; loads at most one file. The
/// first lookup (or an explicit load) consumes EGEMM_TUNING_FILE when the
/// environment names a file.
class TuningCache {
 public:
  /// Parses and installs `path`. Returns false (and clears any previous
  /// table) when the file is missing, malformed, or carries a different
  /// schema/version; `error` then explains why.
  bool load_file(const std::string& path, std::string* error = nullptr);

  /// Installs entries directly (the sweep writer and the tests).
  void set_entries(std::vector<TuningEntry> entries);

  /// Drops the table and forgets the load attempt, so the next lookup
  /// re-consults EGEMM_TUNING_FILE.
  void clear();

  bool loaded() const;
  std::size_t size() const;
  std::string source() const;

  /// Finds the entry for the bucketed (m, n, k). Prefers an entry measured
  /// on the active ISA tier; any-tier entries still hit (a tuned grain
  /// transfers across tiers far better than no entry at all). Bumps the
  /// gemm.tune.{hit,miss,fallback} counter matching the outcome.
  TuningLookup lookup(std::size_t m, std::size_t n, std::size_t k,
                      TuningEntry* out = nullptr) const;

  /// The file-level small-GEMM inline threshold override (satellite knob;
  /// consumed by gemm::small_gemm_inline_threshold), when the loaded file
  /// sets one.
  std::optional<std::size_t> inline_threshold() const;

  static TuningCache& global();

  /// Serializes entries to the versioned tuning-file JSON (sweep writer).
  static std::string to_json(std::span<const TuningEntry> entries,
                             const std::string& generator,
                             std::optional<std::size_t> inline_threshold =
                                 std::nullopt);

 private:
  /// Consumes EGEMM_TUNING_FILE once, lazily, under mutex_.
  void maybe_load_env_locked() const;

  /// load_file body; assumes mutex_ is held (cold path, file IO included).
  bool load_locked(const std::string& path, std::string* error) const;

  mutable std::mutex mutex_;
  mutable bool env_checked_ = false;
  mutable bool loaded_ = false;
  mutable std::string source_;
  mutable std::vector<TuningEntry> entries_;
  mutable std::optional<std::size_t> inline_threshold_;
};

}  // namespace egemm::model
