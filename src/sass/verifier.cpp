#include "sass/verifier.hpp"

#include <string>

#include "sass/analysis/diagnostics.hpp"
#include "sass/analysis/passes.hpp"

namespace egemm::sass {

// The scoreboard itself lives in sass/analysis/scoreboard.cpp as the
// EG101-EG105 lint pass; this entry point keeps the original Violation
// interface (and exact message text) for callers that want a plain list.
std::vector<Violation> verify_kernel(const Kernel& kernel, int unroll) {
  // Unlimited per-code cap: verification wants every occurrence, not the
  // lint renderers' truncated view.
  analysis::DiagnosticEngine engine(0);
  analysis::AnalysisOptions options;
  options.unroll = unroll;
  analysis::run_scoreboard_pass(kernel, options, engine);

  std::vector<Violation> violations;
  violations.reserve(engine.diagnostics().size());
  for (const analysis::Diagnostic& diagnostic : engine.diagnostics()) {
    std::string where = analysis::section_name(diagnostic.loc.section);
    if (diagnostic.loc.section == analysis::Section::kBody) {
      where += "[" + std::to_string(diagnostic.loc.trip) + "]";
    }
    violations.push_back(
        Violation{std::move(where), diagnostic.loc.index, diagnostic.message});
  }
  return violations;
}

}  // namespace egemm::sass
