#include "sass/codegen.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace egemm::sass {

namespace {

// Dependency-barrier conventions used by the generated kernels.
// (The schedule pass adds 4 and 5 for the double-buffered fragments.)
constexpr int kBarFragReady = 0;   ///< LDS wrote the fragment buffer
constexpr int kBarFragRead = 1;    ///< HMMA finished reading the buffer
constexpr int kBarStaged = 2;      ///< LDG filled the staging registers
constexpr int kBarStagingRead = 3; ///< STS drained the staging registers

std::uint8_t wait(int barrier) {
  return static_cast<std::uint8_t>(1u << barrier);
}

}  // namespace

EmulationScheme emulation_scheme(int emulation_instructions) noexcept {
  EmulationScheme scheme;
  switch (emulation_instructions) {
    case 1:
      scheme = {true, 1, 1};
      break;
    case 4:
      scheme = {true, 2, 1};
      break;
    case 9:
      scheme = {true, 3, 1};
      break;
    case 16:
      scheme = {true, 2, 4};
      break;
    default:
      break;
  }
  return scheme;
}

Rounding plane_rounding(core::SplitMethod split, bool half_only) noexcept {
  if (half_only) return Rounding::kHalfDirect;
  switch (split) {
    case core::SplitMethod::kRoundSplit:
      return Rounding::kRoundNearest;
    case core::SplitMethod::kTruncateSplit:
      return Rounding::kTruncate;
  }
  return Rounding::kNone;
}

std::uint8_t plane_mask_for_buffer(std::uint32_t index, std::uint32_t count,
                                   int planes) noexcept {
  std::uint8_t mask = 0;
  if (count == 0 || planes <= 0) return mask;
  for (std::uint32_t p = 0; p < static_cast<std::uint32_t>(planes); ++p) {
    const std::uint32_t lo = p * count / static_cast<std::uint32_t>(planes);
    const std::uint32_t hi =
        std::max(lo + 1, (p + 1) * count / static_cast<std::uint32_t>(planes));
    if (index >= lo && index < hi) mask |= static_cast<std::uint8_t>(1u << p);
  }
  return mask;
}

WarpShape warp_shape(const gemm::TileConfig& tile,
                     int emulation_instructions) {
  EGEMM_EXPECTS(tile.valid());
  EGEMM_EXPECTS(emulation_instructions >= 1);
  const auto warps = static_cast<std::uint32_t>(tile.warps_per_block());

  WarpShape shape;
  shape.steps = static_cast<std::uint32_t>(tile.bk / tile.wk);
  // Global block-tile bytes (Eq. 2) split across the warps; one
  // LDG/STS.128 warp instruction moves 512 B.
  const auto global_bytes =
      static_cast<std::uint32_t>(4 * (tile.bm + tile.bn) * tile.bk);
  shape.ldg_per_iter = global_bytes / 512 / warps;
  shape.sts_per_iter = shape.ldg_per_iter;
  // Per-warp fragment bytes per k'-step: lo+hi halves of the A (wm x wk)
  // and B (wk x wn) fragments.
  const auto frag_bytes =
      static_cast<std::uint32_t>(4 * tile.wk * (tile.wm + tile.wn));
  shape.lds_per_step = frag_bytes / 512;
  // m16n8 accumulator tiles owned by the warp; each is one HMMA.1688 per
  // wk/8 k-slices per emulation term.
  shape.tile_positions =
      static_cast<std::uint32_t>((tile.wm / 16) * (tile.wn / 8));
  shape.hmma_per_step = shape.tile_positions *
                        static_cast<std::uint32_t>(tile.wk / 8) *
                        static_cast<std::uint32_t>(emulation_instructions);
  return shape;
}

Kernel generate_egemm_kernel(const CodegenParams& params) {
  const gemm::TileConfig& tile = params.tile;
  const WarpShape ws = warp_shape(tile, params.emulation_instructions);
  EGEMM_EXPECTS(params.k_iterations >= 1);

  // Numeric provenance (EG5xx): decode the emulation scheme so every
  // plane-carrying instruction can be stamped with what it moves and every
  // HMMA with which split-product term it computes. An unknown scheme
  // leaves the kernel untagged (no derived precision profile).
  const EmulationScheme scheme =
      emulation_scheme(params.emulation_instructions);
  const Rounding rounding =
      scheme.known ? plane_rounding(params.split, scheme.planes == 1)
                   : Rounding::kNone;
  // A staging buffer's payload is a slice of the interleaved global tile:
  // 2*planes slots ordered [A planes..., B planes...].
  auto staging_tag = [&](std::uint32_t i) {
    NumericTag tag;
    if (!scheme.known) return tag;
    const std::uint8_t slots =
        plane_mask_for_buffer(i, ws.ldg_per_iter, 2 * scheme.planes);
    tag.a_planes = static_cast<std::uint8_t>(
        slots & ((1u << scheme.planes) - 1u));
    tag.b_planes = static_cast<std::uint8_t>(slots >> scheme.planes);
    tag.rounding = rounding;
    return tag;
  };

  Kernel kernel;
  kernel.name = "egemm_tc_" + tile.describe();
  kernel.loop_trips = params.k_iterations;

  auto alloc = [&kernel](std::int32_t width) {
    const RegRange range{kernel.virtual_regs, width};
    kernel.virtual_regs += width;
    return range;
  };

  // -- stage 0: context --------------------------------------------------
  // Addressing state: matrix pointers, shared-memory bases, loop counter.
  std::vector<RegRange> addr;
  for (int i = 0; i < 6; ++i) addr.push_back(alloc(1));
  for (std::size_t i = 0; i < addr.size(); ++i) {
    Instr mov;
    mov.op = Op::kMov;
    mov.dst = addr[i];
    mov.stage = 0;
    mov.comment = "ctx";
    kernel.prologue.push_back(mov);
  }

  // -- stage 1: accumulator init -----------------------------------------
  std::vector<RegRange> acc;
  for (std::uint32_t t = 0; t < ws.tile_positions; ++t) {
    acc.push_back(alloc(4));
    Instr mov;
    mov.op = Op::kMov;
    mov.dst = acc.back();
    mov.stage = 1;
    mov.comment = "acc zero-init";
    kernel.prologue.push_back(mov);
  }

  // -- stage 2 registers ---------------------------------------------------
  std::vector<RegRange> staging;
  for (std::uint32_t i = 0; i < ws.ldg_per_iter; ++i) staging.push_back(alloc(4));
  // Single-buffered fragments (the naive kernel's defining limitation).
  const std::uint32_t a_lds = ws.lds_per_step * 2 / 3;  // A is 2/3 of bytes
  const std::uint32_t b_lds = ws.lds_per_step - a_lds;
  std::vector<RegRange> afrag, bfrag;
  for (std::uint32_t i = 0; i < a_lds; ++i) afrag.push_back(alloc(4));
  for (std::uint32_t i = 0; i < b_lds; ++i) bfrag.push_back(alloc(4));

  // Cold start: first block tile global -> registers -> shared.
  for (std::uint32_t i = 0; i < ws.ldg_per_iter; ++i) {
    Instr ldg;
    ldg.op = Op::kLdg;
    ldg.dst = staging[i];
    ldg.srcs = {addr[0]};
    ldg.stage = 2;
    ldg.comment = "cold-start load";
    ldg.num = staging_tag(i);
    if (i + 1 == ws.ldg_per_iter) ldg.ctrl.write_barrier = kBarStaged;
    kernel.prologue.push_back(ldg);
  }
  for (std::uint32_t i = 0; i < ws.sts_per_iter; ++i) {
    Instr sts;
    sts.op = Op::kSts;
    sts.dst = RegRange{};  // stores have no register destination
    sts.srcs = {addr[2], staging[i]};
    sts.stage = 2;
    sts.num = staging_tag(i);
    if (i == 0) sts.ctrl.wait_mask = wait(kBarStaged);
    if (i + 1 == ws.sts_per_iter) sts.ctrl.read_barrier = kBarStagingRead;
    kernel.prologue.push_back(sts);
  }
  {
    Instr bar;
    bar.op = Op::kBar;
    bar.stage = 2;
    kernel.prologue.push_back(bar);
  }

  // -- main loop body (naive order) ----------------------------------------
  // The next tile's global loads lead the iteration: even the naive
  // (CUDA-level) kernel double-buffers across global memory; what it lacks
  // is the *instruction-level* interleave inside the compute (§5.1).
  for (std::uint32_t i = 0; i < ws.ldg_per_iter; ++i) {
    Instr ldg;
    ldg.op = Op::kLdg;
    ldg.dst = staging[i];
    ldg.srcs = {addr[0]};
    ldg.stage = 2;
    ldg.num = staging_tag(i);
    if (i == 0) ldg.ctrl.wait_mask = wait(kBarStagingRead);
    if (i + 1 == ws.ldg_per_iter) ldg.ctrl.write_barrier = kBarStaged;
    kernel.body.push_back(ldg);
  }
  // Fragment buffers cover their matrix's planes in contiguous runs; the
  // HMMA burst below picks its operands from the run holding the plane its
  // term multiplies, so the split -> STS/LDS -> HMMA plane routing is
  // explicit in the instruction stream (what the EG5xx pass certifies).
  auto a_frag_mask = [&](std::uint32_t i) {
    return scheme.known ? plane_mask_for_buffer(i, a_lds, scheme.planes)
                        : std::uint8_t{0};
  };
  auto b_frag_mask = [&](std::uint32_t i) {
    return scheme.known ? plane_mask_for_buffer(i, b_lds, scheme.planes)
                        : std::uint8_t{0};
  };
  std::vector<std::vector<std::uint32_t>> a_bufs_of_plane;
  std::vector<std::vector<std::uint32_t>> b_bufs_of_plane;
  if (scheme.known) {
    a_bufs_of_plane.resize(static_cast<std::size_t>(scheme.planes));
    b_bufs_of_plane.resize(static_cast<std::size_t>(scheme.planes));
    for (std::uint32_t i = 0; i < a_lds; ++i) {
      for (int p = 0; p < scheme.planes; ++p) {
        if (a_frag_mask(i) & (1u << p)) {
          a_bufs_of_plane[static_cast<std::size_t>(p)].push_back(i);
        }
      }
    }
    for (std::uint32_t i = 0; i < b_lds; ++i) {
      for (int p = 0; p < scheme.planes; ++p) {
        if (b_frag_mask(i) & (1u << p)) {
          b_bufs_of_plane[static_cast<std::size_t>(p)].push_back(i);
        }
      }
    }
  }
  for (std::uint32_t s = 0; s < ws.steps; ++s) {
    // Fragment loads: overwrite the single buffer, so the first LDS must
    // wait until the previous step's HMMAs have read it (WAR) -- the
    // serialization Fig. 6 eliminates.
    for (std::uint32_t i = 0; i < ws.lds_per_step; ++i) {
      Instr lds;
      lds.op = Op::kLds;
      lds.dst = i < a_lds ? afrag[i] : bfrag[i - a_lds];
      lds.srcs = {addr[3]};
      lds.stage = 2;
      lds.step = static_cast<std::int32_t>(s);
      if (scheme.known) {
        if (i < a_lds) {
          lds.num.a_planes = a_frag_mask(i);
        } else {
          lds.num.b_planes = b_frag_mask(i - a_lds);
        }
        lds.num.rounding = rounding;
      }
      if (i == 0) lds.ctrl.wait_mask = wait(kBarFragRead);
      if (i + 1 == ws.lds_per_step) lds.ctrl.write_barrier = kBarFragReady;
      kernel.body.push_back(lds);
    }
    // The HMMA burst: tile positions x k-slices x emulation terms.
    const std::uint32_t k_slices = static_cast<std::uint32_t>(tile.wk / 8);
    const auto emu = static_cast<std::uint32_t>(params.emulation_instructions);
    std::uint32_t emitted = 0;
    for (std::uint32_t t = 0; t < ws.tile_positions; ++t) {
      const std::uint32_t jt = t % static_cast<std::uint32_t>(tile.wn / 8);
      for (std::uint32_t kk = 0; kk < k_slices; ++kk) {
        for (std::uint32_t e = 0; e < emu; ++e) {
          Instr hmma;
          hmma.op = Op::kHmma;
          hmma.dst = acc[t];
          RegRange a_src = afrag[(t / 4 + kk) % afrag.size()];
          RegRange b_src = bfrag[(jt / 2 + kk) % bfrag.size()];
          if (scheme.known) {
            const std::uint32_t term =
                e / static_cast<std::uint32_t>(scheme.instrs_per_term);
            const auto ta = static_cast<std::int8_t>(
                term / static_cast<std::uint32_t>(scheme.planes));
            const auto tb = static_cast<std::int8_t>(
                term % static_cast<std::uint32_t>(scheme.planes));
            const auto& a_run = a_bufs_of_plane[static_cast<std::size_t>(ta)];
            const auto& b_run = b_bufs_of_plane[static_cast<std::size_t>(tb)];
            a_src = afrag[a_run[(t / 4 + kk) % a_run.size()]];
            b_src = bfrag[b_run[(jt / 2 + kk) % b_run.size()]];
            hmma.num.term_a = ta;
            hmma.num.term_b = tb;
          }
          hmma.srcs = {a_src, b_src, acc[t]};
          hmma.stage = 2;
          hmma.step = static_cast<std::int32_t>(s);
          if (emitted == 0) hmma.ctrl.wait_mask = wait(kBarFragReady);
          if (++emitted == ws.hmma_per_step) {
            hmma.ctrl.read_barrier = kBarFragRead;
          }
          kernel.body.push_back(hmma);
        }
      }
    }
  }
  {
    Instr bar;
    bar.op = Op::kBar;
    bar.stage = 2;
    // All warps must have consumed the shared tile before it is replaced.
    kernel.body.push_back(bar);
  }
  for (std::uint32_t i = 0; i < ws.sts_per_iter; ++i) {
    Instr sts;
    sts.op = Op::kSts;
    sts.srcs = {addr[2], staging[i]};
    sts.stage = 2;
    sts.num = staging_tag(i);
    if (i == 0) sts.ctrl.wait_mask = wait(kBarStaged);
    if (i + 1 == ws.sts_per_iter) sts.ctrl.read_barrier = kBarStagingRead;
    kernel.body.push_back(sts);
  }
  {
    Instr bar;
    bar.op = Op::kBar;
    bar.stage = 2;
    kernel.body.push_back(bar);
  }
  for (int i = 0; i < 2; ++i) {
    Instr iadd;
    iadd.op = Op::kIadd;
    iadd.dst = addr[static_cast<std::size_t>(i)];
    iadd.srcs = {addr[static_cast<std::size_t>(i)]};
    iadd.stage = 2;
    iadd.comment = "advance pointers";
    kernel.body.push_back(iadd);
  }
  {
    Instr bra;
    bra.op = Op::kBra;
    bra.target = "LOOP";
    bra.stage = 2;
    kernel.body.push_back(bra);
  }

  // -- stage 3: epilogue, C leaves the FRAG -------------------------------
  const auto c_stores = static_cast<std::uint32_t>(
      static_cast<std::size_t>(tile.wm) * static_cast<std::size_t>(tile.wn) *
      4 / 32 / 16);
  for (std::uint32_t i = 0; i < c_stores; ++i) {
    Instr stg;
    stg.op = Op::kStg;
    stg.srcs = {addr[4], acc[i % acc.size()]};
    stg.stage = 3;
    kernel.epilogue.push_back(stg);
  }
  {
    Instr exit;
    exit.op = Op::kExit;
    exit.stage = 3;
    kernel.epilogue.push_back(exit);
  }
  return kernel;
}

}  // namespace egemm::sass
