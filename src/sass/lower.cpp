#include "sass/lower.hpp"

#include <array>
#include <bit>

#include "util/assert.hpp"

namespace egemm::sass {

namespace {

struct LoweringState {
  tcsim::SimProgram program;
  /// Current token per dependency barrier (-1 when never armed).
  std::array<std::int32_t, kNumDepBarriers> barrier_token;

  LoweringState() { barrier_token.fill(-1); }

  void lower(const Instr& instr, int warps) {
    // Resolve waits first (up to two distinct barriers per mask).
    std::int32_t wait1 = -1, wait2 = -1;
    for (int b = 0; b < kNumDepBarriers; ++b) {
      if ((instr.ctrl.wait_mask & (1u << b)) == 0) continue;
      if (barrier_token[static_cast<std::size_t>(b)] < 0) continue;
      if (wait1 < 0) {
        wait1 = barrier_token[static_cast<std::size_t>(b)];
      } else if (wait2 < 0) {
        wait2 = barrier_token[static_cast<std::size_t>(b)];
      } else {
        EGEMM_EXPECTS(!"wait mask names more than two armed barriers");
      }
    }

    // A fresh token per arming keeps iterations independent.
    std::int32_t produce = -1;
    const std::int32_t armed = instr.ctrl.write_barrier >= 0
                                   ? instr.ctrl.write_barrier
                                   : instr.ctrl.read_barrier;
    if (armed >= 0) {
      produce = program.new_token();
      barrier_token[static_cast<std::size_t>(armed)] = produce;
    }

    tcsim::Opcode op = tcsim::Opcode::kFfma;
    auto count = static_cast<std::uint32_t>(warps);
    switch (instr.op) {
      case Op::kLdg:
      case Op::kStg:
        op = tcsim::Opcode::kLdg;
        break;
      case Op::kSts:
        op = tcsim::Opcode::kSts;
        break;
      case Op::kLds:
        op = tcsim::Opcode::kLds;
        count *= 4;  // LDS.128 = 4 x 128-byte LDS.32 warp units
        break;
      case Op::kHmma:
        op = tcsim::Opcode::kHmma;
        break;
      case Op::kFfma:
      case Op::kIadd:
      case Op::kMov:
        op = tcsim::Opcode::kFfma;
        break;
      case Op::kBar:
        op = tcsim::Opcode::kBar;
        count = 1;
        break;
      case Op::kBra:
      case Op::kExit:
        return;  // control flow handled by the unrolling
    }
    // Read barriers fire once the sources are consumed (issue end), write
    // barriers once the result lands (completion).
    const bool at_issue =
        instr.ctrl.write_barrier < 0 && instr.ctrl.read_barrier >= 0;

    // Coalesce runs of identical-op instructions into one aggregate group:
    // the in-order cursor models the *inter-warp* issue stream, and other
    // warps keep issuing while one warp's back-to-back loads queue on
    // their port -- a per-instruction lowering would wrongly let port
    // backlog stall the whole SM. A new group starts whenever the
    // instruction carries waits, and a group closes once it produced a
    // token.
    if (!program.instrs.empty()) {
      tcsim::SimInstr& last = program.instrs.back();
      if (last.op == op && wait1 < 0 && wait2 < 0 &&
          last.produce_token < 0 && produce < 0 &&
          op != tcsim::Opcode::kBar) {
        last.count += count;
        return;
      }
      if (last.op == op && wait1 < 0 && wait2 < 0 &&
          last.produce_token < 0 && produce >= 0 &&
          op != tcsim::Opcode::kBar) {
        last.count += count;
        last.produce_token = produce;
        last.produce_at_issue = at_issue;
        return;
      }
    }
    program.instrs.push_back(
        tcsim::SimInstr{op, wait1, produce, count, wait2, at_issue});
  }
};

}  // namespace

tcsim::SimProgram lower_kernel(const Kernel& kernel, int warps_per_block) {
  EGEMM_EXPECTS(warps_per_block >= 1);
  LoweringState state;
  for (const Instr& instr : kernel.prologue) {
    state.lower(instr, warps_per_block);
  }
  for (std::uint32_t trip = 0; trip < kernel.loop_trips; ++trip) {
    for (const Instr& instr : kernel.body) {
      state.lower(instr, warps_per_block);
    }
  }
  for (const Instr& instr : kernel.epilogue) {
    state.lower(instr, warps_per_block);
  }
  return state.program;
}

}  // namespace egemm::sass
