#pragma once
// The §5.1 register-enhanced instruction-scheduling pass (Fig. 6).
//
// Input: the naive-order kernel from codegen. The pass rewrites the loop
// body so that
//   * the A/B fragment buffer is double-buffered (new virtual registers;
//     the "register-enhanced" part -- registers substitute for the shared
//     memory the T4 does not have),
//   * each k'-step's LDS group is hoisted ahead of the *previous* step's
//     HMMA burst, killing the WAR stall,
//   * the next tile's LDG clump is broken up and spread across the
//     compute steps,
//   * the STS group stays deferred at the iteration end (Fig. 6's "delay
//     STS"), and
//   * control codes are reassigned (barriers 4/5 serve the second buffer).
//
// The instruction multiset is preserved except for operand renaming; the
// verifier must pass on both versions and the lowered cycle count is what
// Fig. 11 measures.

#include "sass/ir.hpp"

namespace egemm::sass {

struct ScheduleStats {
  std::size_t hoisted_lds = 0;
  std::size_t spread_ldg = 0;
  std::int32_t added_registers = 0;  ///< double-buffer cost
};

/// Applies the latency-hiding schedule in place; returns what it did.
ScheduleStats schedule_latency_hiding(Kernel& kernel);

}  // namespace egemm::sass
