#pragma once
// One-call kernel build pipeline: codegen -> §5.1 schedule -> §5.2
// regalloc, with the static-analysis passes run over the result. This is
// the entry the sass_lint tool and the GEMM layer's debug self-check
// share, so "the kernel we time is the kernel the lint passes bless"
// holds by construction.

#include "sass/analysis/diagnostics.hpp"
#include "sass/analysis/precision.hpp"
#include "sass/codegen.hpp"
#include "sass/regalloc.hpp"
#include "sass/schedule.hpp"

namespace egemm::sass {

struct BuildOptions {
  gemm::TileConfig tile = gemm::table4_config();
  std::uint32_t k_iterations = 256;
  int emulation_instructions = 4;  ///< Alg. 1 (4) or Dekker-style (16)
  /// Split method the host-side plane pass will use for this kernel;
  /// stamped into the numeric tags and enforced by the EG5xx pass.
  core::SplitMethod split = core::SplitMethod::kRoundSplit;
  /// Apply the §5.1 latency-hiding schedule (false = the naive ablation).
  bool latency_hiding = true;
  /// Run the §5.2 register allocator (false leaves operands virtual).
  bool allocate = true;
  int register_budget = 255;
  /// Body trips the trace-based lint passes walk.
  int lint_unroll = 3;
  /// Run the precision-dataflow certification (EG5xx) on the scheduled,
  /// still-virtual kernel. The derived profile lands in
  /// BuiltKernel::precision; its diagnostics join the shared engine.
  bool certify_precision = true;
};

struct BuiltKernel {
  Kernel kernel;
  ScheduleStats schedule;      ///< zeroes when latency_hiding is off
  AllocationReport alloc;      ///< success=false when allocate is off
  analysis::PrecisionProfile precision;  ///< EG5xx derived profile
  analysis::DiagnosticEngine diagnostics;
};

/// Runs the pipeline and lints the result.
BuiltKernel build_egemm_kernel(const BuildOptions& options);

/// True when `engine` holds an error-severity hazard, liveness, or
/// precision finding (EG1xx/EG2xx/EG5xx) -- the classes that mean the
/// generated kernel would compute wrong answers, as opposed to resource
/// findings (EG4xx) that merely mean the tiling does not fit. The debug
/// self-check asserts on exactly these.
bool has_blocking_errors(const analysis::DiagnosticEngine& engine);

}  // namespace egemm::sass
