#pragma once
// Lowering: kernel IR -> tcsim::SimProgram for the cycle model.
//
// Each per-warp IR instruction becomes an SM-aggregate instruction group
// (count = warps per block; LDS.128 expands to 4 LDS.32-sized units), the
// dependency barriers become pipeline tokens (a fresh token per arming, so
// loop iterations stay independent), and the loop is unrolled to the trip
// count. This is how a *generated and scheduled* kernel gets timed by the
// same machinery as the hand-built streams in tcsim/instruction.cpp.

#include "sass/ir.hpp"
#include "tcsim/instruction.hpp"

namespace egemm::sass {

tcsim::SimProgram lower_kernel(const Kernel& kernel, int warps_per_block);

}  // namespace egemm::sass
