#pragma once
// Scoreboard verifier for the control codes of a generated kernel.
//
// Walks prologue + (body x unroll) + epilogue simulating the dependency
// barriers and flags:
//   * RAW: reading a register whose producing load is still in flight
//     (its barrier neither signaled-and-waited nor attached yet),
//   * WAR: overwriting a register with a pending guarded read,
//   * WAW: overwriting a register with an in-flight load,
//   * barrier reuse: arming a dependency barrier that still guards
//     un-waited registers.
//
// HMMA accumulator chaining (same dst back to back) is hardware-forwarded
// and exempt from RAW tracking; memory loads (LDG/LDS) are the tracked
// variable-latency producers, exactly the hazards the §5.1 schedule has to
// get right.

#include <string>
#include <vector>

#include "sass/ir.hpp"

namespace egemm::sass {

struct Violation {
  std::string where;       ///< "prologue"/"body[i]"/"epilogue"
  std::size_t index = 0;   ///< instruction index within that section
  std::string message;
};

/// Verifies the kernel; empty result means hazard-free. `unroll` controls
/// how many body iterations are walked (2 catches cross-iteration WAR).
std::vector<Violation> verify_kernel(const Kernel& kernel, int unroll = 2);

}  // namespace egemm::sass
