#include "sass/ir.hpp"

namespace egemm::sass {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kLdg:
      return "LDG.E.128";
    case Op::kStg:
      return "STG.E.128";
    case Op::kSts:
      return "STS.128";
    case Op::kLds:
      return "LDS.128";
    case Op::kHmma:
      return "HMMA.1688.F32";
    case Op::kFfma:
      return "FFMA";
    case Op::kIadd:
      return "IADD3";
    case Op::kMov:
      return "MOV";
    case Op::kBar:
      return "BAR.SYNC";
    case Op::kBra:
      return "BRA";
    case Op::kExit:
      return "EXIT";
  }
  return "?";
}

const char* rounding_name(Rounding rounding) noexcept {
  switch (rounding) {
    case Rounding::kNone:
      return "none";
    case Rounding::kRoundNearest:
      return "rn";
    case Rounding::kTruncate:
      return "rz";
    case Rounding::kHalfDirect:
      return "h16";
  }
  return "?";
}

bool is_variable_latency(Op op) noexcept {
  switch (op) {
    case Op::kLdg:
    case Op::kStg:
    case Op::kLds:
    case Op::kSts:
    case Op::kHmma:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) noexcept { return op == Op::kSts || op == Op::kStg; }

}  // namespace egemm::sass
