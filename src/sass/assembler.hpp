#pragma once
// Text form of the kernel IR, in a TuringAs-flavored syntax.
//
// One instruction per line:
//
//   LDS.128 R40.4, R3 ; @W0 @wait=0x2 @stall=1 @stage=2 @step=0 // comment
//
// `Rn.w` is a run of w consecutive registers starting at Rn; @W / @R arm
// the write/read dependency barrier, @wait gives the pre-issue wait mask.
// Sections are headed by `.prologue:`, `.body(trips=N):`, `.epilogue:`.
//
// emit_text/parse_text round-trip exactly (modulo whitespace), which the
// tests verify -- the same property TuringAs gives the artifact's
// hand-written kernels.

#include <optional>
#include <string>

#include "sass/ir.hpp"

namespace egemm::sass {

std::string emit_text(const Kernel& kernel);

struct ParseResult {
  bool success = false;
  Kernel kernel;
  std::string error;  ///< first diagnostic when !success
};

ParseResult parse_text(const std::string& text);

/// Single-instruction helpers (used by the parser and tests).
std::string emit_instr(const Instr& instr);
std::optional<Instr> parse_instr(const std::string& line, std::string* error);

}  // namespace egemm::sass
