// EG110-EG112: dependency-barrier lifetime analysis.
//
// Two static checks over the whole kernel:
//   EG110  a barrier is armed (write or read side) at some site but no
//          instruction anywhere carries its bit in a wait mask -- the
//          synchronization is lost and the barrier slot leaks;
//   EG111  a wait mask names a barrier no instruction ever arms -- the
//          wait is either dead weight or, worse, a missing arm.
//
// One dynamic check over the unrolled trace:
//   EG112  "wait-mask liveness": a wait site never finds its barrier
//          pending in ANY walked trip. First-trip-only emptiness (the
//          steady-state pattern of waits whose arm rides the loop back
//          edge, e.g. the fragment-read barrier) is deliberately not
//          reported -- a site must be redundant in every encounter.
#include <algorithm>
#include <array>
#include <map>
#include <string>

#include "sass/analysis/dataflow.hpp"
#include "sass/analysis/passes.hpp"

namespace egemm::sass::analysis {

namespace {

struct WaitSiteStats {
  SourceLoc loc;
  int encounters = 0;
  int redundant = 0;
};

}  // namespace

void run_barrier_lifetime_pass(const Kernel& kernel,
                               const AnalysisOptions& options,
                               DiagnosticEngine& engine) {
  const int unroll = std::max(options.unroll, 2);

  // Static masks: which barriers are armed / waited anywhere.
  std::uint8_t armed_mask = 0;
  std::uint8_t waited_mask = 0;
  const auto scan = [&](const std::vector<Instr>& instrs) {
    for (const Instr& instr : instrs) {
      if (instr.ctrl.write_barrier >= 0) {
        armed_mask |= static_cast<std::uint8_t>(1u << instr.ctrl.write_barrier);
      }
      if (instr.ctrl.read_barrier >= 0) {
        armed_mask |= static_cast<std::uint8_t>(1u << instr.ctrl.read_barrier);
      }
      waited_mask |= instr.ctrl.wait_mask;
    }
  };
  scan(kernel.prologue);
  scan(kernel.body);
  scan(kernel.epilogue);

  const auto static_checks = [&](const std::vector<Instr>& instrs,
                                 Section section) {
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const Instr& instr = instrs[i];
      const SourceLoc loc{section, i, -1};
      for (const int b : {instr.ctrl.write_barrier, instr.ctrl.read_barrier}) {
        if (b >= 0 && (waited_mask & (1u << b)) == 0) {
          engine.report("EG110", Severity::kWarning, loc,
                        "dependency barrier " + std::to_string(b) +
                            " armed here but never waited anywhere in the "
                            "kernel");
        }
      }
      for (int b = 0; b < kNumDepBarriers; ++b) {
        if ((instr.ctrl.wait_mask & (1u << b)) != 0 &&
            (armed_mask & (1u << b)) == 0) {
          engine.report("EG111", Severity::kError, loc,
                        "waits on dependency barrier " + std::to_string(b) +
                            " which no instruction arms");
        }
      }
    }
  };
  static_checks(kernel.prologue, Section::kPrologue);
  static_checks(kernel.body, Section::kBody);
  static_checks(kernel.epilogue, Section::kEpilogue);

  // Dynamic redundancy: track per-barrier pending state through the trace
  // and aggregate per wait site (section + index).
  std::array<bool, kNumDepBarriers> pending{};
  std::map<std::pair<int, std::size_t>, WaitSiteStats> wait_sites;
  for_each_trace_instr(
      kernel, unroll, [&](const Instr& instr, const SourceLoc& loc) {
        if (instr.ctrl.wait_mask != 0) {
          const auto key = std::make_pair(static_cast<int>(loc.section),
                                          loc.index);
          WaitSiteStats& stats = wait_sites[key];
          stats.loc = SourceLoc{loc.section, loc.index, -1};
          ++stats.encounters;
          bool any_pending = false;
          for (int b = 0; b < kNumDepBarriers; ++b) {
            if ((instr.ctrl.wait_mask & (1u << b)) == 0) continue;
            any_pending = any_pending || pending[static_cast<std::size_t>(b)];
            pending[static_cast<std::size_t>(b)] = false;
          }
          if (!any_pending) ++stats.redundant;
        }
        for (const int b :
             {instr.ctrl.write_barrier, instr.ctrl.read_barrier}) {
          if (b >= 0) pending[static_cast<std::size_t>(b)] = true;
        }
      });
  for (const auto& [key, stats] : wait_sites) {
    (void)key;
    if (stats.encounters > 0 && stats.redundant == stats.encounters) {
      engine.report("EG112", Severity::kNote, stats.loc,
                    "wait mask never finds a pending barrier in any of " +
                        std::to_string(unroll) +
                        " walked trips (redundant wait)");
    }
  }
}

}  // namespace egemm::sass::analysis
