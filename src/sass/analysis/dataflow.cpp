#include "sass/analysis/dataflow.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace egemm::sass::analysis {

namespace {

#if defined(__GNUC__) || defined(__clang__)
int popcount64(std::uint64_t word) { return __builtin_popcountll(word); }
#else
int popcount64(std::uint64_t word) {
  int bits = 0;
  while (word != 0) {
    word &= word - 1;
    ++bits;
  }
  return bits;
}
#endif

template <typename Fn>
void for_each_reg(const RegRange& range, Fn&& fn) {
  if (!range.valid()) return;
  for (std::int32_t r = range.index; r < range.index + range.width; ++r) {
    fn(r);
  }
}

}  // namespace

void Dataflow::Bitset::fill() {
  std::fill(words.begin(), words.end(), ~std::uint64_t{0});
  if (bits % 64 != 0 && !words.empty()) {
    words.back() &= (std::uint64_t{1} << (bits % 64)) - 1;
  }
}

bool Dataflow::Bitset::merge_or(const Bitset& other) {
  bool changed = false;
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::uint64_t merged = words[w] | other.words[w];
    changed = changed || merged != words[w];
    words[w] = merged;
  }
  return changed;
}

bool Dataflow::Bitset::merge_and(const Bitset& other) {
  bool changed = false;
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::uint64_t merged = words[w] & other.words[w];
    changed = changed || merged != words[w];
    words[w] = merged;
  }
  return changed;
}

std::size_t Dataflow::Bitset::count() const {
  std::size_t total = 0;
  for (const std::uint64_t word : words) {
    total += static_cast<std::size_t>(popcount64(word));
  }
  return total;
}

Dataflow::Dataflow(const Kernel& kernel) {
  flatten(kernel);
  compute_liveness();
  compute_initialization();
  compute_def_use();
}

void Dataflow::flatten(const Kernel& kernel) {
  instrs_.reserve(kernel.size());
  for (std::size_t i = 0; i < kernel.prologue.size(); ++i) {
    instrs_.push_back(
        FlatInstr{&kernel.prologue[i], SourceLoc{Section::kPrologue, i, -1}});
  }
  body_begin_ = instrs_.size();
  for (std::size_t i = 0; i < kernel.body.size(); ++i) {
    instrs_.push_back(
        FlatInstr{&kernel.body[i], SourceLoc{Section::kBody, i, -1}});
  }
  body_end_ = instrs_.size();
  for (std::size_t i = 0; i < kernel.epilogue.size(); ++i) {
    instrs_.push_back(
        FlatInstr{&kernel.epilogue[i], SourceLoc{Section::kEpilogue, i, -1}});
  }

  num_regs_ = 0;
  for (const FlatInstr& flat : instrs_) {
    const Instr& instr = *flat.instr;
    const auto observe = [this](const RegRange& range) {
      if (range.valid()) {
        num_regs_ = std::max(num_regs_, range.index + range.width);
      }
    };
    observe(instr.dst);
    for (const RegRange& src : instr.srcs) observe(src);
  }
}

std::vector<std::size_t> Dataflow::successors(std::size_t i) const {
  std::vector<std::size_t> succs;
  const bool has_body = body_begin_ != body_end_;
  const bool last_of_prologue = i + 1 == body_begin_;
  const bool last_of_body = has_body && i + 1 == body_end_;
  if (last_of_body) {
    // Loop back edge plus the loop exit.
    succs.push_back(body_begin_);
    if (body_end_ < instrs_.size()) succs.push_back(body_end_);
  } else if (last_of_prologue && !has_body) {
    if (body_end_ < instrs_.size()) succs.push_back(body_end_);
  } else if (i + 1 < instrs_.size()) {
    succs.push_back(i + 1);
  }
  return succs;
}

std::vector<std::size_t> Dataflow::predecessors(std::size_t i) const {
  std::vector<std::size_t> preds;
  const bool has_body = body_begin_ != body_end_;
  if (i == body_begin_ && has_body) {
    if (body_begin_ > 0) preds.push_back(body_begin_ - 1);
    preds.push_back(body_end_ - 1);  // back edge
  } else if (i == body_end_) {
    // First epilogue instruction: falls in from the loop exit (or straight
    // from the prologue when the body is empty).
    if (has_body) {
      preds.push_back(body_end_ - 1);
    } else if (body_begin_ > 0) {
      preds.push_back(body_begin_ - 1);
    }
  } else if (i > 0) {
    preds.push_back(i - 1);
  }
  return preds;
}

void Dataflow::compute_liveness() {
  const std::size_t n = instrs_.size();
  const auto regs = static_cast<std::size_t>(num_regs_);
  live_in_.assign(n, Bitset(regs));
  live_out_.assign(n, Bitset(regs));

  std::vector<Bitset> defs(n, Bitset(regs));
  std::vector<Bitset> uses(n, Bitset(regs));
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = *instrs_[i].instr;
    for_each_reg(instr.dst, [&](std::int32_t r) {
      defs[i].set(static_cast<std::size_t>(r));
    });
    for (const RegRange& src : instr.srcs) {
      for_each_reg(src, [&](std::int32_t r) {
        uses[i].set(static_cast<std::size_t>(r));
      });
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t step = n; step > 0; --step) {
      const std::size_t i = step - 1;
      Bitset out(regs);
      for (const std::size_t s : successors(i)) out.merge_or(live_in_[s]);
      Bitset in = out;
      for (std::size_t w = 0; w < in.words.size(); ++w) {
        in.words[w] = (in.words[w] & ~defs[i].words[w]) | uses[i].words[w];
      }
      if (!(out == live_out_[i])) {
        live_out_[i] = std::move(out);
        changed = true;
      }
      if (!(in == live_in_[i])) {
        live_in_[i] = std::move(in);
        changed = true;
      }
    }
  }

  peak_live_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    peak_live_ = std::max(peak_live_, static_cast<int>(live_in_[i].count()));
  }
}

void Dataflow::compute_initialization() {
  const std::size_t n = instrs_.size();
  const auto regs = static_cast<std::size_t>(num_regs_);
  init_in_.assign(n, Bitset(regs));
  std::vector<Bitset> init_out(n, Bitset(regs));
  // Must-analysis: start from "everything initialized" (top) everywhere and
  // shrink via intersection; the entry point alone starts empty.
  for (std::size_t i = 0; i < n; ++i) {
    init_in_[i].fill();
    init_out[i].fill();
  }
  if (n != 0) init_in_[0] = Bitset(regs);

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      Bitset in(regs);
      const std::vector<std::size_t> preds = predecessors(i);
      if (i == 0) {
        // Kernel entry: no register starts initialized.
      } else if (preds.empty()) {
        in.fill();  // unreachable
      } else {
        in.fill();
        for (const std::size_t p : preds) in.merge_and(init_out[p]);
      }
      if (!(in == init_in_[i])) {
        init_in_[i] = in;
        changed = true;
      }
      Bitset out = in;
      for_each_reg(instrs_[i].instr->dst, [&](std::int32_t r) {
        out.set(static_cast<std::size_t>(r));
      });
      if (!(out == init_out[i])) {
        init_out[i] = std::move(out);
        changed = true;
      }
    }
  }
}

void Dataflow::compute_def_use() {
  const std::size_t n = instrs_.size();
  uses_of_def_.assign(n, {});
  defs_of_use_.assign(n, {});

  // Register-granular reaching definitions: reach[r] = def sites whose
  // write to r may still be visible. The loop head merges the prologue
  // exit with the body exit; iterate body sweeps until that merged state
  // stabilizes, then run one recording sweep over every section.
  std::vector<Bitset> reach(static_cast<std::size_t>(num_regs_), Bitset(n));

  const auto transfer = [&](std::size_t i, bool record) {
    const Instr& instr = *instrs_[i].instr;
    if (record) {
      for (const RegRange& src : instr.srcs) {
        for_each_reg(src, [&](std::int32_t r) {
          const Bitset& sites = reach[static_cast<std::size_t>(r)];
          for (std::size_t d = 0; d < n; ++d) {
            if (sites.test(d)) {
              defs_of_use_[i].push_back(static_cast<std::uint32_t>(d));
            }
          }
        });
      }
    }
    for_each_reg(instr.dst, [&](std::int32_t r) {
      Bitset& sites = reach[static_cast<std::size_t>(r)];
      sites = Bitset(n);
      sites.set(i);
    });
  };

  for (std::size_t i = 0; i < body_begin_; ++i) transfer(i, false);
  const std::vector<Bitset> prologue_exit = reach;
  std::vector<Bitset> loop_head = prologue_exit;
  bool head_changed = true;
  while (head_changed) {
    reach = loop_head;
    for (std::size_t i = body_begin_; i < body_end_; ++i) transfer(i, false);
    head_changed = false;
    for (std::size_t r = 0; r < reach.size(); ++r) {
      head_changed = loop_head[r].merge_or(reach[r]) || head_changed;
    }
  }

  // Recording sweep: prologue from the empty entry state, body from the
  // stabilized loop-head state, epilogue continuing from the body exit.
  for (auto& sites : reach) sites = Bitset(n);
  for (std::size_t i = 0; i < body_begin_; ++i) transfer(i, true);
  reach = loop_head;
  for (std::size_t i = body_begin_; i < body_end_; ++i) transfer(i, true);
  for (std::size_t i = body_end_; i < n; ++i) transfer(i, true);

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint32_t>& defs = defs_of_use_[i];
    std::sort(defs.begin(), defs.end());
    defs.erase(std::unique(defs.begin(), defs.end()), defs.end());
    for (const std::uint32_t d : defs) uses_of_def_[d].push_back(
        static_cast<std::uint32_t>(i));
  }
}

bool Dataflow::live_out(std::size_t i, std::int32_t reg) const {
  EGEMM_EXPECTS(i < instrs_.size() && reg >= 0 && reg < num_regs_);
  return live_out_[i].test(static_cast<std::size_t>(reg));
}

bool Dataflow::live_in(std::size_t i, std::int32_t reg) const {
  EGEMM_EXPECTS(i < instrs_.size() && reg >= 0 && reg < num_regs_);
  return live_in_[i].test(static_cast<std::size_t>(reg));
}

bool Dataflow::definitely_initialized(std::size_t i, std::int32_t reg) const {
  EGEMM_EXPECTS(i < instrs_.size() && reg >= 0 && reg < num_regs_);
  return init_in_[i].test(static_cast<std::size_t>(reg));
}

}  // namespace egemm::sass::analysis
