// EG401-EG403: register pressure, and the run_all_passes driver.
//
// The demand figure prefers the strongest evidence available: a completed
// regalloc report, else the physical index span, else the dataflow
// engine's peak-live bound (a floor on any allocation). EG403 cross-checks
// that demand against the analytic model's per-thread estimate for the
// tiling (the no-spill input to Eq. 8) -- a divergence beyond 2x in either
// direction means the IR and the model are no longer describing the same
// kernel.
#include <algorithm>
#include <string>

#include "model/analytic_model.hpp"
#include "sass/analysis/dataflow.hpp"
#include "sass/analysis/passes.hpp"

namespace egemm::sass::analysis {

void run_register_pressure_pass(const Kernel& kernel, const Dataflow& dataflow,
                                const AnalysisOptions& options,
                                DiagnosticEngine& engine) {
  (void)kernel;
  // Kernel-level findings anchor on the first instruction.
  const SourceLoc loc{Section::kPrologue, 0, -1};
  const int budget = options.register_budget;

  int demand = 0;
  std::string basis;
  if (options.alloc != nullptr && options.alloc->success) {
    demand = options.alloc->physical_registers;
    basis = "allocated";
  } else if (options.alloc != nullptr) {
    engine.report("EG402", Severity::kError, loc,
                  "register allocation failed against a budget of " +
                      std::to_string(budget) + " registers" +
                      (options.alloc->errors.empty()
                           ? std::string()
                           : ": " + options.alloc->errors.front()));
    demand = dataflow.peak_live();
    basis = "peak-live";
  } else if (options.physical_registers) {
    demand = dataflow.num_regs();
    basis = "physical-span";
  } else {
    demand = dataflow.peak_live();
    basis = "peak-live";
  }

  if (demand > budget) {
    engine.report("EG402", Severity::kError, loc,
                  basis + " register demand " + std::to_string(demand) +
                      " exceeds the per-thread budget of " +
                      std::to_string(budget));
  } else if (demand * 10 >= budget * 9) {
    engine.report("EG401", Severity::kWarning, loc,
                  basis + " register demand " + std::to_string(demand) +
                      " is within 10% of the budget of " +
                      std::to_string(budget) + " (near-spill)");
  }

  if (options.has_tile) {
    const int estimate = model::estimated_registers_per_thread(
        options.tile, std::max(budget, 1));
    if (estimate > 0 && (demand > 2 * estimate || estimate > 2 * demand)) {
      engine.report("EG403", Severity::kWarning, loc,
                    basis + " register demand " + std::to_string(demand) +
                        " diverges from the analytic model's estimate of " +
                        std::to_string(estimate) + " for tile " +
                        options.tile.describe());
    }
  }
}

void run_all_passes(const Kernel& kernel, const AnalysisOptions& options,
                    DiagnosticEngine& engine) {
  const Dataflow dataflow(kernel);
  run_scoreboard_pass(kernel, options, engine);
  run_barrier_lifetime_pass(kernel, options, engine);
  run_uninitialized_read_pass(kernel, dataflow, engine);
  run_dead_code_pass(kernel, dataflow, options, engine);
  run_bank_conflict_pass(kernel, options, engine);
  run_register_pressure_pass(kernel, dataflow, options, engine);
  if (options.precision.enabled && !options.physical_registers) {
    const PrecisionProfile profile =
        run_precision_dataflow_pass(kernel, dataflow, options.precision,
                                    engine);
    if (options.precision_profile != nullptr) {
      *options.precision_profile = profile;
    }
  }
}

}  // namespace egemm::sass::analysis
