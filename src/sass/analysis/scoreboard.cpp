// EG101-EG105: the dependency-barrier scoreboard, rehosted from the
// original src/sass/verifier.cpp as the first analysis pass. The hazard
// model is unchanged (see verifier.hpp); what moved is the reporting --
// findings flow through the DiagnosticEngine with stable codes so the
// scoreboard composes with the other passes in one lint run.
#include <set>
#include <string>
#include <utility>

#include "sass/analysis/dataflow.hpp"
#include "sass/analysis/passes.hpp"

namespace egemm::sass::analysis {

namespace {

struct Scoreboard {
  /// In-flight load results not yet attached to a barrier (earlier members
  /// of a load group; the group's last member arms the barrier for all).
  /// Tracked per pipe -- the shared-memory (LDS) and global (LDG) pipes
  /// each complete in order internally but not relative to each other, so
  /// a barrier armed by an LDS must not adopt in-flight LDG results.
  std::set<std::int32_t> unguarded_lds;
  std::set<std::int32_t> unguarded_ldg;
  /// Register -> barrier guarding its in-flight write.
  std::set<std::pair<std::int32_t, std::int32_t>> pending_writes;  // (reg, b)
  /// Register -> barrier guarding its pending read (WAR protection).
  std::set<std::pair<std::int32_t, std::int32_t>> pending_reads;
  DiagnosticEngine* engine = nullptr;

  bool write_pending(std::int32_t reg) const {
    for (const auto& [r, b] : pending_writes) {
      (void)b;
      if (r == reg) return true;
    }
    return false;
  }
  bool read_pending(std::int32_t reg) const {
    for (const auto& [r, b] : pending_reads) {
      (void)b;
      if (r == reg) return true;
    }
    return false;
  }
  bool barrier_busy(std::int32_t barrier) const {
    for (const auto& [r, b] : pending_writes) {
      (void)r;
      if (b == barrier) return true;
    }
    for (const auto& [r, b] : pending_reads) {
      (void)r;
      if (b == barrier) return true;
    }
    return false;
  }

  void clear_barrier(std::int32_t barrier) {
    for (auto it = pending_writes.begin(); it != pending_writes.end();) {
      it = it->second == barrier ? pending_writes.erase(it) : std::next(it);
    }
    for (auto it = pending_reads.begin(); it != pending_reads.end();) {
      it = it->second == barrier ? pending_reads.erase(it) : std::next(it);
    }
  }

  void step(const Instr& instr, const SourceLoc& loc) {
    // 1. Waits clear barriers before issue.
    for (int b = 0; b < kNumDepBarriers; ++b) {
      if (instr.ctrl.wait_mask & (1u << b)) clear_barrier(b);
    }

    // 2. Source hazards.
    for (const RegRange& src : instr.srcs) {
      if (!src.valid()) continue;
      for (std::int32_t r = src.index; r < src.index + src.width; ++r) {
        if (write_pending(r)) {
          engine->report("EG101", Severity::kError, loc,
                         "RAW: reads R" + std::to_string(r) +
                             " before waiting on its load barrier");
        } else if (unguarded_lds.count(r) != 0 ||
                   unguarded_ldg.count(r) != 0) {
          engine->report("EG102", Severity::kError, loc,
                         "RAW: reads R" + std::to_string(r) +
                             " from an in-flight load with no barrier armed");
        }
      }
    }

    // 3. Destination hazards.
    if (instr.dst.valid() && instr.op != Op::kMov) {
      for (std::int32_t r = instr.dst.index;
           r < instr.dst.index + instr.dst.width; ++r) {
        if (read_pending(r)) {
          engine->report("EG103", Severity::kError, loc,
                         "WAR: overwrites R" + std::to_string(r) +
                             " with a pending guarded read");
        }
        if (write_pending(r) || unguarded_lds.count(r) != 0 ||
            unguarded_ldg.count(r) != 0) {
          engine->report("EG104", Severity::kError, loc,
                         "WAW: overwrites R" + std::to_string(r) +
                             " while a load into it is in flight");
        }
      }
    }

    // 4. Arm this instruction's effects.
    const bool is_load = instr.op == Op::kLdg || instr.op == Op::kLds;
    std::set<std::int32_t>* pipe =
        instr.op == Op::kLds ? &unguarded_lds
        : instr.op == Op::kLdg ? &unguarded_ldg
                               : nullptr;
    if (is_load && instr.dst.valid()) {
      for (std::int32_t r = instr.dst.index;
           r < instr.dst.index + instr.dst.width; ++r) {
        pipe->insert(r);
      }
    }
    if (instr.ctrl.write_barrier >= 0) {
      if (barrier_busy(instr.ctrl.write_barrier)) {
        engine->report("EG105", Severity::kError, loc,
                       "barrier " + std::to_string(instr.ctrl.write_barrier) +
                           " re-armed while still guarding registers");
      }
      // The barrier adopts every unguarded in-flight load of this pipe
      // (in-order completion within a pipe: the group's last completion
      // implies the earlier ones).
      if (pipe != nullptr) {
        for (const std::int32_t r : *pipe) {
          pending_writes.emplace(r, instr.ctrl.write_barrier);
        }
        pipe->clear();
      }
    }
    if (instr.ctrl.read_barrier >= 0) {
      for (const RegRange& src : instr.srcs) {
        if (!src.valid()) continue;
        // An accumulator that is both source and destination (HMMA's
        // D = A x B + C with D == C) is read-then-written inside the
        // pipeline; it needs no WAR protection against later writers.
        if (src.overlaps(instr.dst)) continue;
        for (std::int32_t r = src.index; r < src.index + src.width; ++r) {
          pending_reads.emplace(r, instr.ctrl.read_barrier);
        }
      }
    }
  }
};

}  // namespace

void run_scoreboard_pass(const Kernel& kernel, const AnalysisOptions& options,
                         DiagnosticEngine& engine) {
  Scoreboard board;
  board.engine = &engine;
  for_each_trace_instr(kernel, options.unroll,
                       [&board](const Instr& instr, const SourceLoc& loc) {
                         board.step(instr, loc);
                       });
}

}  // namespace egemm::sass::analysis
