// EG201-EG203: the liveness-family passes built on the Dataflow engine.
//
//   EG201  a source register is read at a point where the must-initialize
//          analysis cannot prove a prior write on every path -- on real
//          hardware this reads whatever the previous kernel left in the
//          register file (the classic uninitialized-HMMA-source bug);
//   EG202  a register write none of whose destination registers is live
//          afterwards -- the value is unreachable by any reader;
//   EG203  an STS whose staged data no LDS ever consumes in the walked
//          trace. The IR carries no shared-memory addresses, so the model
//          is coarse: a store site is dead only when EVERY dynamic
//          instance is past the last LDS of the trace (body stores that
//          feed the next trip's fragment loads via the back edge are
//          therefore live, as they should be).
#include <algorithm>
#include <string>

#include "sass/analysis/dataflow.hpp"
#include "sass/analysis/passes.hpp"

namespace egemm::sass::analysis {

void run_uninitialized_read_pass(const Kernel& kernel, const Dataflow& dataflow,
                                 DiagnosticEngine& engine) {
  (void)kernel;
  for (std::size_t i = 0; i < dataflow.size(); ++i) {
    const FlatInstr& flat = dataflow.at(i);
    for (const RegRange& src : flat.instr->srcs) {
      if (!src.valid()) continue;
      for (std::int32_t r = src.index; r < src.index + src.width; ++r) {
        if (!dataflow.definitely_initialized(i, r)) {
          engine.report("EG201", Severity::kError, flat.loc,
                        std::string(op_name(flat.instr->op)) + " reads R" +
                            std::to_string(r) +
                            " which is not initialized on every path from "
                            "kernel entry");
        }
      }
    }
  }
}

void run_dead_code_pass(const Kernel& kernel, const Dataflow& dataflow,
                        const AnalysisOptions& options,
                        DiagnosticEngine& engine) {
  // EG202: dead register writes.
  for (std::size_t i = 0; i < dataflow.size(); ++i) {
    const FlatInstr& flat = dataflow.at(i);
    const RegRange& dst = flat.instr->dst;
    if (!dst.valid()) continue;
    bool any_live = false;
    for (std::int32_t r = dst.index; r < dst.index + dst.width; ++r) {
      any_live = any_live || dataflow.live_out(i, r);
    }
    if (!any_live) {
      engine.report("EG202", Severity::kWarning, flat.loc,
                    std::string(op_name(flat.instr->op)) + " writes R" +
                        std::to_string(dst.index) +
                        (dst.width > 1 ? "." + std::to_string(dst.width) : "") +
                        " but no instruction can ever read it (dead write)");
    }
  }

  // EG203: dead shared stores, aggregated per site over the walked trace.
  const int unroll = std::max(options.unroll, 2);
  std::size_t position = 0;
  std::size_t last_lds_position = 0;
  bool any_lds = false;
  struct StsSite {
    SourceLoc loc;
    std::size_t first_position = 0;
  };
  std::vector<StsSite> sts_sites;
  for_each_trace_instr(
      kernel, unroll, [&](const Instr& instr, const SourceLoc& loc) {
        if (instr.op == Op::kLds) {
          last_lds_position = position;
          any_lds = true;
        } else if (instr.op == Op::kSts) {
          const SourceLoc site{loc.section, loc.index, -1};
          const auto found =
              std::find_if(sts_sites.begin(), sts_sites.end(),
                           [&site](const StsSite& s) { return s.loc == site; });
          if (found == sts_sites.end()) {
            sts_sites.push_back(StsSite{site, position});
          }
        }
        ++position;
      });
  for (const StsSite& site : sts_sites) {
    if (!any_lds || site.first_position > last_lds_position) {
      engine.report("EG203", Severity::kWarning, site.loc,
                    "STS stores data that no LDS ever consumes (dead "
                    "shared-memory store)");
    }
  }
}

}  // namespace egemm::sass::analysis
