#pragma once
// Dataflow engine over the SASS kernel IR.
//
// The kernel's three sections form a three-block CFG:
//
//   prologue -> body <-+        (back edge: the loop executes >= 1 trip)
//                 |____|
//                 v
//              epilogue
//
// On that graph the engine computes, to a fixpoint across the loop back
// edge:
//   * per-register liveness (backward, may-analysis),
//   * definite initialization (forward, must-analysis: a register counts as
//     initialized only when every path from kernel entry defines it),
//   * reaching definitions at register granularity, exposed as def-use
//     chains (which instructions may read the value a given instruction
//     wrote, and which definitions may feed a given read).
//
// Passes built on top: uninitialized-read detection (EG201), dead-write
// detection (EG202), and the register-pressure peak-live estimate (EG4xx).
//
// Register indexes may be virtual (pre-regalloc) or physical; the engine
// does not care -- it sizes its sets from the largest index observed.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sass/analysis/diagnostics.hpp"
#include "sass/ir.hpp"

namespace egemm::sass::analysis {

/// One instruction of the flattened kernel (prologue, body, epilogue
/// concatenated) with its section-relative location.
struct FlatInstr {
  const Instr* instr = nullptr;
  SourceLoc loc;
};

class Dataflow {
 public:
  explicit Dataflow(const Kernel& kernel);

  std::size_t size() const noexcept { return instrs_.size(); }
  const FlatInstr& at(std::size_t i) const { return instrs_[i]; }
  /// 1 + the largest register index any operand touches.
  std::int32_t num_regs() const noexcept { return num_regs_; }

  /// May `reg` still be read after instruction `i` executes?
  bool live_out(std::size_t i, std::int32_t reg) const;
  /// May `reg` be read by an instruction at or after `i`'s program point?
  bool live_in(std::size_t i, std::int32_t reg) const;
  /// Is `reg` definitely written on every path reaching instruction `i`?
  bool definitely_initialized(std::size_t i, std::int32_t reg) const;

  /// Flattened indexes of instructions that may read the value written by
  /// definition site `def` (empty when the write is dead).
  const std::vector<std::uint32_t>& uses_of_def(std::size_t def) const {
    return uses_of_def_[def];
  }
  /// Flattened indexes of definitions that may feed any source register of
  /// instruction `use` (sorted, deduplicated).
  const std::vector<std::uint32_t>& defs_of_use(std::size_t use) const {
    return defs_of_use_[use];
  }

  /// Peak number of simultaneously live registers at any program point --
  /// the analytic floor on the register allocation.
  int peak_live() const noexcept { return peak_live_; }

 private:
  struct Bitset {
    std::vector<std::uint64_t> words;
    std::size_t bits = 0;

    explicit Bitset(std::size_t n = 0) : words((n + 63) / 64, 0), bits(n) {}
    void set(std::size_t i) { words[i >> 6] |= std::uint64_t{1} << (i & 63); }
    void reset(std::size_t i) {
      words[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }
    bool test(std::size_t i) const {
      return ((words[i >> 6] >> (i & 63)) & 1) != 0;
    }
    void fill();
    /// this |= other; returns true when any bit changed.
    bool merge_or(const Bitset& other);
    /// this &= other; returns true when any bit changed.
    bool merge_and(const Bitset& other);
    std::size_t count() const;
    friend bool operator==(const Bitset&, const Bitset&) = default;
  };

  void flatten(const Kernel& kernel);
  void compute_liveness();
  void compute_initialization();
  void compute_def_use();
  std::vector<std::size_t> successors(std::size_t i) const;
  std::vector<std::size_t> predecessors(std::size_t i) const;

  std::vector<FlatInstr> instrs_;
  std::size_t body_begin_ = 0;   ///< flattened index of the first body instr
  std::size_t body_end_ = 0;     ///< one past the last body instr
  std::int32_t num_regs_ = 0;
  int peak_live_ = 0;

  std::vector<Bitset> live_in_;
  std::vector<Bitset> live_out_;
  std::vector<Bitset> init_in_;
  std::vector<std::vector<std::uint32_t>> uses_of_def_;
  std::vector<std::vector<std::uint32_t>> defs_of_use_;
};

/// Walks the execution trace -- prologue, `unroll` body trips, epilogue --
/// invoking `fn(instr, loc)` with `loc.trip` set for body instructions.
/// Trace-based passes (scoreboard, barrier lifetime, dead STS) share this.
template <typename Fn>
void for_each_trace_instr(const Kernel& kernel, int unroll, Fn&& fn) {
  for (std::size_t i = 0; i < kernel.prologue.size(); ++i) {
    fn(kernel.prologue[i], SourceLoc{Section::kPrologue, i, -1});
  }
  for (int trip = 0; trip < unroll; ++trip) {
    for (std::size_t i = 0; i < kernel.body.size(); ++i) {
      fn(kernel.body[i], SourceLoc{Section::kBody, i, trip});
    }
  }
  for (std::size_t i = 0; i < kernel.epilogue.size(); ++i) {
    fn(kernel.epilogue[i], SourceLoc{Section::kEpilogue, i, -1});
  }
}

}  // namespace egemm::sass::analysis
